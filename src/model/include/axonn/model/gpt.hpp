#pragma once

// GPT-style transformer architecture descriptions.
//
// Table II of the paper defines the model zoo (GPT-5B .. GPT-640B); this
// header reproduces those architectures, the analytical parameter count and
// the Narayanan et al. flop-count formulation the paper uses to report
// sustained flop/s ("model flops"), and the per-layer matmul shapes the 3D
// PMM algorithm parallelizes.

#include <cstdint>
#include <string>
#include <vector>

#include "axonn/tensor/gemm.hpp"

namespace axonn::model {

struct GPTConfig {
  std::string name;
  int layers = 0;
  int hidden = 0;
  int heads = 0;
  int vocab = 51200;    ///< Megatron-LM's padded GPT-2 vocabulary
  int seq_len = 2048;

  /// Exact trainable parameter count from the layer-wise sum:
  /// per layer 12 h^2 + 13 h (QKV + attention out + 2 MLP + layernorms +
  /// biases), plus token and position embeddings.
  std::uint64_t parameter_count() const;

  /// Approximate count 12 l h^2 — the headline "number of parameters" used
  /// in model names (GPT-5B etc.).
  std::uint64_t parameter_count_approx() const;

  /// Narayanan et al.'s analytical flop count for one iteration over
  /// `batch_tokens` tokens:
  ///   F = 6 B s l h^2 (factor) (1 + s/(6h) + V/(16 l h))
  /// with factor 16 when activation checkpointing recomputes the forward
  /// pass (96 B s l h^2 form) and 12 without (72 B s l h^2 form).
  double flops_per_iteration(double batch_tokens,
                             bool activation_checkpointing = true) const;

  /// The FC-layer weight shapes within one transformer layer, in execution
  /// order. These are the units Algorithm 1 parallelizes; attention BMMs
  /// and softmax are accounted separately in the flop model.
  struct FCLayer {
    std::string name;   ///< "qkv", "attn_out", "mlp_up", "mlp_down"
    std::uint64_t in_features = 0;   ///< k: rows of W
    std::uint64_t out_features = 0;  ///< n: cols of W
  };
  std::vector<FCLayer> fc_layers_per_block() const;

  /// Total FC weight parameters in one transformer block (sum of k*n).
  std::uint64_t fc_params_per_block() const;
};

/// Table II: the nine GPT configurations used in the performance study.
std::vector<GPTConfig> gpt_zoo();

/// Looks up a zoo entry by name ("GPT-80B"); throws if unknown.
GPTConfig gpt_by_name(const std::string& name);

/// Llama-family architectures used in the memorization study (§VIII-B).
/// Hyperparameters follow the public model cards; vocab sizes are the
/// published tokenizer sizes.
std::vector<GPTConfig> llama_zoo();

/// Hardware-agnostic training job description used by the simulator and the
/// performance model.
struct TrainingJob {
  GPTConfig model;
  double batch_tokens = 16.8e6;  ///< the paper's global batch size
  bool activation_checkpointing = true;
  /// Tokens processed per micro-batch within a data-parallel group
  /// (gradient accumulation). Activation memory scales with this, not with
  /// the full batch; communication volumes per batch are unaffected.
  double microbatch_tokens = 16384;

  double batch_sequences() const {
    return batch_tokens / static_cast<double>(model.seq_len);
  }

  /// Tokens a data-parallel group holds live at once.
  double live_tokens(int gdata) const {
    const double local = batch_tokens / static_cast<double>(gdata);
    return local < microbatch_tokens ? local : microbatch_tokens;
  }
};

/// Per-GPU memory footprint (bytes) of a training job under a given tensor
/// parallel sharding. Mixed-precision accounting:
///   bf16 weights + bf16 grads          : 4 bytes/param, sharded over
///                                        Gx*Gy*Gz (W is 2D-decomposed over
///                                        X x Y and sharded over Z)
///   fp32 master + Adam m + v           : 12 bytes/param, sharded likewise
///   checkpointed activations           : one h-wide tensor per layer
///                                        boundary plus one layer's working
///                                        set, sharded over Gy (columns) and
///                                        Gz (rows), replicated over X
struct MemoryEstimate {
  double parameter_bytes = 0;
  double gradient_bytes = 0;
  double optimizer_bytes = 0;
  double activation_bytes = 0;
  double total() const {
    return parameter_bytes + gradient_bytes + optimizer_bytes + activation_bytes;
  }
};

MemoryEstimate memory_per_gpu(const TrainingJob& job, int gx, int gy, int gz,
                              int gdata);

}  // namespace axonn::model
