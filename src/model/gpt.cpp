#include "axonn/model/gpt.hpp"

#include "axonn/base/error.hpp"

namespace axonn::model {

std::uint64_t GPTConfig::parameter_count() const {
  const auto h = static_cast<std::uint64_t>(hidden);
  const auto l = static_cast<std::uint64_t>(layers);
  const auto v = static_cast<std::uint64_t>(vocab);
  const auto s = static_cast<std::uint64_t>(seq_len);
  // Per block: QKV (3h^2 + 3h) + attention out (h^2 + h) + MLP up
  // (4h^2 + 4h) + MLP down (4h^2 + h) + two layernorms (4h).
  const std::uint64_t per_block = 12 * h * h + 13 * h;
  // Embeddings: token (v*h) + position (s*h) + final layernorm (2h).
  return l * per_block + v * h + s * h + 2 * h;
}

std::uint64_t GPTConfig::parameter_count_approx() const {
  const auto h = static_cast<std::uint64_t>(hidden);
  return 12 * static_cast<std::uint64_t>(layers) * h * h;
}

double GPTConfig::flops_per_iteration(double batch_tokens,
                                      bool activation_checkpointing) const {
  const double h = hidden;
  const double l = layers;
  const double v = vocab;
  const double s = seq_len;
  // Narayanan et al. [6]: 96 B s l h^2 (1 + s/6h + V/16lh) with activation
  // recomputation; the leading coefficient is 72 without it (fwd 24 + bwd
  // 48). batch_tokens = B * s, so the B*s product is batch_tokens directly.
  const double coeff = activation_checkpointing ? 96.0 : 72.0;
  return coeff * batch_tokens * l * h * h *
         (1.0 + s / (6.0 * h) + v / (16.0 * l * h));
}

std::vector<GPTConfig::FCLayer> GPTConfig::fc_layers_per_block() const {
  const auto h = static_cast<std::uint64_t>(hidden);
  return {
      {"qkv", h, 3 * h},
      {"attn_out", h, h},
      {"mlp_up", h, 4 * h},
      {"mlp_down", 4 * h, h},
  };
}

std::uint64_t GPTConfig::fc_params_per_block() const {
  std::uint64_t total = 0;
  for (const auto& fc : fc_layers_per_block()) {
    total += fc.in_features * fc.out_features;
  }
  return total;
}

std::vector<GPTConfig> gpt_zoo() {
  // Table II of the paper.
  return {
      {"GPT-5B", 24, 4096, 32},    {"GPT-10B", 32, 5120, 40},
      {"GPT-20B", 32, 7168, 56},   {"GPT-40B", 38, 9216, 72},
      {"GPT-60B", 56, 9216, 72},   {"GPT-80B", 42, 12288, 96},
      {"GPT-160B", 84, 12288, 96}, {"GPT-320B", 96, 16384, 128},
      {"GPT-640B", 192, 16384, 128},
  };
}

GPTConfig gpt_by_name(const std::string& name) {
  for (const auto& config : gpt_zoo()) {
    if (config.name == name) return config;
  }
  for (const auto& config : llama_zoo()) {
    if (config.name == name) return config;
  }
  throw Error("unknown model: " + name);
}

std::vector<GPTConfig> llama_zoo() {
  // Published architectures; Llama vocab sizes: 32000 (Llama 2 family,
  // TinyLlama) and 128256 (Llama 3.1). Sequence length set to the training
  // context used in the memorization experiments.
  std::vector<GPTConfig> zoo = {
      {"TinyLlama-1B", 22, 2048, 32},   {"Llama-2-7B", 32, 4096, 32},
      {"Llama-2-13B", 40, 5120, 40},    {"Llama-2-70B", 80, 8192, 64},
      {"Llama-3.1-8B", 32, 4096, 32},   {"Llama-3.1-70B", 80, 8192, 64},
      {"Llama-3.1-405B", 126, 16384, 128},
  };
  for (auto& config : zoo) {
    config.vocab = config.name.find("3.1") != std::string::npos ? 128256 : 32000;
    config.seq_len = 2048;
  }
  return zoo;
}

MemoryEstimate memory_per_gpu(const TrainingJob& job, int gx, int gy, int gz,
                              int gdata) {
  AXONN_CHECK_MSG(gx >= 1 && gy >= 1 && gz >= 1 && gdata >= 1,
                  "grid dimensions must be positive");
  const double params = static_cast<double>(job.model.parameter_count());
  const double tensor_shards = static_cast<double>(gx) * gy * gz;

  MemoryEstimate est;
  est.parameter_bytes = 2.0 * params / tensor_shards;  // bf16
  est.gradient_bytes = 2.0 * params / tensor_shards;   // bf16
  est.optimizer_bytes = 12.0 * params / tensor_shards; // fp32 master + m + v

  // Activations. Input rows per data-parallel group: B_local = B / Gdata
  // sequences of s tokens. The activation tensor of one layer boundary is
  // (B_local * s) x h, 2D-decomposed over Gz (rows) x Gy (cols) and
  // replicated over X. With activation checkpointing only layer boundaries
  // persist; the working set of the layer being (re)computed adds roughly a
  // 4h-wide MLP activation plus attention scores.
  const double local_tokens = job.live_tokens(gdata);
  const double h = job.model.hidden;
  const double boundary =
      2.0 * local_tokens * h / (static_cast<double>(gy) * gz);
  if (job.activation_checkpointing) {
    const double working_set = 8.0 * boundary;  // one layer fully live
    est.activation_bytes = boundary * job.model.layers + working_set;
  } else {
    // All intermediate tensors of all layers stay live (~8 h-wide tensors
    // per layer between QKV, attention and MLP).
    est.activation_bytes = 8.0 * boundary * job.model.layers;
  }
  return est;
}

}  // namespace axonn::model
