#include "axonn/tensor/ops.hpp"

#include <algorithm>
#include <cmath>

namespace axonn {

namespace {
constexpr float kSqrt2OverPi = 0.7978845608028654f;
constexpr float kGeluCubic = 0.044715f;
}  // namespace

float gelu(float x) {
  const float inner = kSqrt2OverPi * (x + kGeluCubic * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

float gelu_grad(float x) {
  const float inner = kSqrt2OverPi * (x + kGeluCubic * x * x * x);
  const float t = std::tanh(inner);
  const float dinner = kSqrt2OverPi * (1.0f + 3.0f * kGeluCubic * x * x);
  return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * dinner;
}

Matrix gelu(const Matrix& in) {
  Matrix out(in.rows(), in.cols());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out.data()[i] = gelu(in.data()[i]);
  }
  return out;
}

Matrix gelu_backward(const Matrix& dout, const Matrix& in) {
  AXONN_CHECK(dout.rows() == in.rows() && dout.cols() == in.cols());
  Matrix din(in.rows(), in.cols());
  for (std::size_t i = 0; i < in.size(); ++i) {
    din.data()[i] = dout.data()[i] * gelu_grad(in.data()[i]);
  }
  return din;
}

Matrix softmax_rows(const Matrix& logits) {
  Matrix out(logits.rows(), logits.cols());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const float* in_row = logits.row(r);
    float* out_row = out.row(r);
    const float row_max = *std::max_element(in_row, in_row + logits.cols());
    float denom = 0.0f;
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      out_row[c] = std::exp(in_row[c] - row_max);
      denom += out_row[c];
    }
    const float inv = 1.0f / denom;
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      out_row[c] *= inv;
    }
  }
  return out;
}

Matrix softmax_rows_backward(const Matrix& dout, const Matrix& softmax_out) {
  AXONN_CHECK(dout.rows() == softmax_out.rows() &&
              dout.cols() == softmax_out.cols());
  Matrix din(dout.rows(), dout.cols());
  for (std::size_t r = 0; r < dout.rows(); ++r) {
    const float* y = softmax_out.row(r);
    const float* dy = dout.row(r);
    float dot = 0.0f;
    for (std::size_t c = 0; c < dout.cols(); ++c) {
      dot += y[c] * dy[c];
    }
    float* dx = din.row(r);
    for (std::size_t c = 0; c < dout.cols(); ++c) {
      dx[c] = y[c] * (dy[c] - dot);
    }
  }
  return din;
}

Matrix layernorm(const Matrix& x, const std::vector<float>& gamma,
                 const std::vector<float>& beta, LayerNormCache& cache,
                 float eps) {
  const std::size_t features = x.cols();
  AXONN_CHECK(gamma.size() == features && beta.size() == features);
  Matrix out(x.rows(), features);
  cache.normalized = Matrix(x.rows(), features);
  cache.inv_std.assign(x.rows(), 0.0f);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const float* in_row = x.row(r);
    double mean = 0.0;
    for (std::size_t c = 0; c < features; ++c) mean += in_row[c];
    mean /= static_cast<double>(features);
    double var = 0.0;
    for (std::size_t c = 0; c < features; ++c) {
      const double d = in_row[c] - mean;
      var += d * d;
    }
    var /= static_cast<double>(features);
    const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps);
    cache.inv_std[r] = inv_std;
    float* norm_row = cache.normalized.row(r);
    float* out_row = out.row(r);
    for (std::size_t c = 0; c < features; ++c) {
      norm_row[c] = (in_row[c] - static_cast<float>(mean)) * inv_std;
      out_row[c] = norm_row[c] * gamma[c] + beta[c];
    }
  }
  return out;
}

Matrix layernorm_backward(const Matrix& dout, const LayerNormCache& cache,
                          const std::vector<float>& gamma,
                          std::vector<float>& dgamma,
                          std::vector<float>& dbeta) {
  const std::size_t features = dout.cols();
  AXONN_CHECK(gamma.size() == features);
  AXONN_CHECK(cache.normalized.rows() == dout.rows() &&
              cache.normalized.cols() == features);
  dgamma.resize(features, 0.0f);
  dbeta.resize(features, 0.0f);
  Matrix din(dout.rows(), features);
  const float inv_n = 1.0f / static_cast<float>(features);
  for (std::size_t r = 0; r < dout.rows(); ++r) {
    const float* dy = dout.row(r);
    const float* xhat = cache.normalized.row(r);
    float* dx = din.row(r);
    float sum_dxhat = 0.0f;
    float sum_dxhat_xhat = 0.0f;
    for (std::size_t c = 0; c < features; ++c) {
      const float dxhat = dy[c] * gamma[c];
      sum_dxhat += dxhat;
      sum_dxhat_xhat += dxhat * xhat[c];
      dgamma[c] += dy[c] * xhat[c];
      dbeta[c] += dy[c];
    }
    for (std::size_t c = 0; c < features; ++c) {
      const float dxhat = dy[c] * gamma[c];
      dx[c] = cache.inv_std[r] *
              (dxhat - inv_n * sum_dxhat - xhat[c] * inv_n * sum_dxhat_xhat);
    }
  }
  return din;
}

float cross_entropy(const Matrix& logits, const std::vector<std::int32_t>& targets,
                    const std::vector<std::uint8_t>& mask, Matrix& dlogits) {
  AXONN_CHECK(targets.size() == logits.rows());
  AXONN_CHECK(mask.empty() || mask.size() == logits.rows());
  dlogits = softmax_rows(logits);
  double loss = 0.0;
  std::size_t active = 0;
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const bool row_active = mask.empty() || mask[r] != 0;
    if (!row_active) {
      // Masked tokens contribute neither loss nor gradient.
      float* row = dlogits.row(r);
      std::fill(row, row + logits.cols(), 0.0f);
      continue;
    }
    const auto target = static_cast<std::size_t>(targets[r]);
    AXONN_CHECK(target < logits.cols());
    const float p = std::max(dlogits(r, target), 1e-12f);
    loss -= std::log(p);
    dlogits(r, target) -= 1.0f;
    ++active;
  }
  if (active == 0) {
    dlogits.set_zero();
    return 0.0f;
  }
  const float inv_active = 1.0f / static_cast<float>(active);
  dlogits.scale_inplace(inv_active);
  return static_cast<float>(loss) * inv_active;
}

float cross_entropy_loss(const Matrix& logits,
                         const std::vector<std::int32_t>& targets,
                         const std::vector<std::uint8_t>& mask) {
  Matrix scratch;
  return cross_entropy(logits, targets, mask, scratch);
}

}  // namespace axonn
