#include "axonn/tensor/gemm.hpp"

#include <algorithm>

#include "axonn/tensor/bf16.hpp"
#include "axonn/tensor/gemm_tiled.hpp"

namespace axonn {

const char* to_string(GemmMode mode) {
  switch (mode) {
    case GemmMode::kNN: return "NN";
    case GemmMode::kNT: return "NT";
    case GemmMode::kTN: return "TN";
    case GemmMode::kTT: return "TT";
  }
  return "??";
}

const char* to_string(GemmBackend backend) {
  switch (backend) {
    case GemmBackend::kReference: return "reference";
    case GemmBackend::kTiled: return "tiled";
  }
  return "??";
}

GemmShape gemm_shape(GemmMode mode, const Matrix& a, const Matrix& b) {
  const bool ta = (mode == GemmMode::kTN || mode == GemmMode::kTT);
  const bool tb = (mode == GemmMode::kNT || mode == GemmMode::kTT);
  const std::size_t m = ta ? a.cols() : a.rows();
  const std::size_t ka = ta ? a.rows() : a.cols();
  const std::size_t kb = tb ? b.cols() : b.rows();
  const std::size_t n = tb ? b.rows() : b.cols();
  AXONN_CHECK_MSG(ka == kb, std::string("GEMM inner dimensions mismatch in mode ") +
                                to_string(mode));
  return GemmShape{m, n, ka};
}

namespace {

// Kernel over a generic element loader. `load_a(i, l)` reads op(A)[i][l] and
// `load_b(l, j)` reads op(B)[l][j]. The loop nest is i-l-j so the innermost
// loop streams both op(B) rows and C rows contiguously for the NN layout,
// which keeps the fp32 path fast enough for the real training experiments.
template <typename LoadA, typename LoadB>
void gemm_kernel(const GemmShape& s, float alpha, LoadA load_a, LoadB load_b,
                 float beta, Matrix& c) {
  AXONN_CHECK_MSG(c.rows() == s.m && c.cols() == s.n,
                  "GEMM output shape does not match operands");
  if (beta == 0.0f) {
    c.set_zero();
  } else if (beta != 1.0f) {
    c.scale_inplace(beta);
  }
  // BLAS semantics: alpha == 0 means C = beta * C without reading A or B.
  // There is deliberately NO per-element zero skip below: 0 * NaN and
  // 0 * inf must produce NaN in C, or a poisoned activation silently
  // vanishes instead of propagating to the loss where it can be detected.
  if (alpha == 0.0f) return;
  for (std::size_t i = 0; i < s.m; ++i) {
    float* crow = c.row(i);
    for (std::size_t l = 0; l < s.k; ++l) {
      const float aval = alpha * load_a(i, l);
      for (std::size_t j = 0; j < s.n; ++j) {
        crow[j] += aval * load_b(l, j);
      }
    }
  }
}

template <bool kRoundBf16>
void gemm_impl(GemmMode mode, float alpha, const Matrix& a, const Matrix& b,
               float beta, Matrix& c) {
  const GemmShape s = gemm_shape(mode, a, b);
  const bool ta = (mode == GemmMode::kTN || mode == GemmMode::kTT);
  const bool tb = (mode == GemmMode::kNT || mode == GemmMode::kTT);

  auto load = [](const Matrix& m, std::size_t r, std::size_t col) {
    const float v = m(r, col);
    if constexpr (kRoundBf16) {
      return bf16_round(v);
    } else {
      return v;
    }
  };

  auto load_a = [&](std::size_t i, std::size_t l) {
    return ta ? load(a, l, i) : load(a, i, l);
  };
  auto load_b = [&](std::size_t l, std::size_t j) {
    return tb ? load(b, j, l) : load(b, l, j);
  };
  gemm_kernel(s, alpha, load_a, load_b, beta, c);
}

// Per-thread dispatch statistics (see gemm.hpp). `depth` implements the
// outermost-frame-only rule: the registry thunks and gemm_tiled delegate to
// other public entry points, which must not double-count.
struct DispatchState {
  GemmStats last;
  std::uint64_t count = 0;
  std::uint64_t flops = 0;
  int depth = 0;
};

thread_local DispatchState t_dispatch;

}  // namespace

const GemmStats& last_gemm_stats() { return t_dispatch.last; }
std::uint64_t gemm_dispatch_count() { return t_dispatch.count; }
std::uint64_t gemm_dispatch_flops() { return t_dispatch.flops; }
void reset_gemm_dispatch_stats() {
  const int depth = t_dispatch.depth;
  t_dispatch = DispatchState{};
  t_dispatch.depth = depth;
}

namespace detail {

GemmDispatchScope::GemmDispatchScope(GemmBackend backend, GemmMode mode,
                                     const GemmShape& shape, bool bf16,
                                     GemmIsa isa, int threads) {
  DispatchState& st = t_dispatch;
  if (st.depth++ == 0) {
    st.last =
        GemmStats{backend, mode, shape, gemm_flops(shape), bf16, isa, threads};
    st.count += 1;
    st.flops += st.last.flops;
  }
}

GemmDispatchScope::~GemmDispatchScope() { --t_dispatch.depth; }

}  // namespace detail

void gemm(GemmMode mode, float alpha, const Matrix& a, const Matrix& b,
          float beta, Matrix& c) {
  detail::GemmDispatchScope stats(GemmBackend::kReference, mode,
                                  gemm_shape(mode, a, b), /*bf16=*/false);
  gemm_impl<false>(mode, alpha, a, b, beta, c);
}

Matrix gemm(GemmMode mode, const Matrix& a, const Matrix& b) {
  const GemmShape s = gemm_shape(mode, a, b);
  Matrix c(s.m, s.n);
  gemm(mode, 1.0f, a, b, 0.0f, c);
  return c;
}

void gemm_bf16(GemmMode mode, float alpha, const Matrix& a, const Matrix& b,
               float beta, Matrix& c) {
  detail::GemmDispatchScope stats(GemmBackend::kReference, mode,
                                  gemm_shape(mode, a, b), /*bf16=*/true);
  gemm_impl<true>(mode, alpha, a, b, beta, c);
}

Matrix gemm_bf16(GemmMode mode, const Matrix& a, const Matrix& b) {
  const GemmShape s = gemm_shape(mode, a, b);
  Matrix c(s.m, s.n);
  gemm_bf16(mode, 1.0f, a, b, 0.0f, c);
  return c;
}

namespace {

void run_reference_fp32(GemmMode mode, float alpha, const Matrix& a,
                        const Matrix& b, float beta, Matrix& c) {
  gemm(mode, alpha, a, b, beta, c);
}
void run_reference_bf16(GemmMode mode, float alpha, const Matrix& a,
                        const Matrix& b, float beta, Matrix& c) {
  gemm_bf16(mode, alpha, a, b, beta, c);
}
void run_tiled_fp32(GemmMode mode, float alpha, const Matrix& a,
                    const Matrix& b, float beta, Matrix& c) {
  gemm_tiled(mode, alpha, a, b, beta, c, /*round_bf16=*/false);
}
void run_tiled_bf16(GemmMode mode, float alpha, const Matrix& a,
                    const Matrix& b, float beta, Matrix& c) {
  gemm_tiled(mode, alpha, a, b, beta, c, /*round_bf16=*/true);
}

constexpr GemmBackendInfo kBackends[] = {
    {GemmBackend::kReference, "reference", &run_reference_fp32,
     &run_reference_bf16},
    {GemmBackend::kTiled, "tiled", &run_tiled_fp32, &run_tiled_bf16},
};

}  // namespace

std::span<const GemmBackendInfo> gemm_backends() { return kBackends; }

const GemmBackendInfo& gemm_backend_info(GemmBackend backend) {
  for (const GemmBackendInfo& info : kBackends) {
    if (info.id == backend) return info;
  }
  throw Error("unknown GEMM backend");
}

namespace {

// The reference backend has no ISA-specific kernels or worker lanes; only
// the tiled backend's dispatch state is meaningful in GemmStats.
GemmIsa stats_isa(GemmBackend backend) {
  return backend == GemmBackend::kTiled ? active_gemm_isa()
                                        : GemmIsa::kPortable;
}
int stats_threads(GemmBackend backend) {
  return backend == GemmBackend::kTiled ? gemm_threads() : 1;
}

}  // namespace

void gemm(GemmBackend backend, GemmMode mode, float alpha, const Matrix& a,
          const Matrix& b, float beta, Matrix& c) {
  detail::GemmDispatchScope stats(backend, mode, gemm_shape(mode, a, b),
                                  /*bf16=*/false, stats_isa(backend),
                                  stats_threads(backend));
  gemm_backend_info(backend).run_fp32(mode, alpha, a, b, beta, c);
}

void gemm_bf16(GemmBackend backend, GemmMode mode, float alpha,
               const Matrix& a, const Matrix& b, float beta, Matrix& c) {
  detail::GemmDispatchScope stats(backend, mode, gemm_shape(mode, a, b),
                                  /*bf16=*/true, stats_isa(backend),
                                  stats_threads(backend));
  gemm_backend_info(backend).run_bf16(mode, alpha, a, b, beta, c);
}

}  // namespace axonn
