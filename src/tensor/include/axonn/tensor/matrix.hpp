#pragma once

// Dense row-major fp32 matrix.
//
// This is the numeric workhorse behind the real (thread-rank) execution of
// Algorithm 1: activations, weights and gradients are all Matrix instances.
// The 2D block helpers (block/set_block with row/col Ranges) implement the
// decompositions that map sub-blocks of I and W onto planes of the 3D GPU
// grid (Fig. 1 of the paper).

#include <cassert>
#include <cstddef>
#include <vector>

#include "axonn/base/aligned.hpp"
#include "axonn/base/arena.hpp"
#include "axonn/base/error.hpp"
#include "axonn/base/partition.hpp"
#include "axonn/base/rng.hpp"

namespace axonn {

class Matrix {
 public:
  /// Storage is cache-line aligned (see base/arena.hpp) so GEMM panel
  /// packing and vector loads start on 64-byte boundaries, and routed
  /// through axonn::mem so every tensor is charged to the ambient
  /// ArenaScope tag (weights, activations, grads, ...).
  using Storage = mem::TrackedVector<float>;

  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {
    assert(is_cache_aligned(data_.data()));
  }
  Matrix(std::size_t rows, std::size_t cols, float fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {
    assert(is_cache_aligned(data_.data()));
  }

  static Matrix zeros(std::size_t rows, std::size_t cols) {
    return Matrix(rows, cols);
  }

  static Matrix full(std::size_t rows, std::size_t cols, float value) {
    return Matrix(rows, cols, value);
  }

  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0f;
    return m;
  }

  /// Gaussian init, the standard scheme for transformer weights.
  static Matrix randn(std::size_t rows, std::size_t cols, Rng& rng,
                      float mean = 0.0f, float stddev = 1.0f) {
    Matrix m(rows, cols);
    for (auto& v : m.data_) {
      v = static_cast<float>(rng.normal(mean, stddev));
    }
    return m;
  }

  static Matrix uniform(std::size_t rows, std::size_t cols, Rng& rng,
                        float lo = -1.0f, float hi = 1.0f) {
    Matrix m(rows, cols);
    for (auto& v : m.data_) {
      v = static_cast<float>(rng.uniform(lo, hi));
    }
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked accessor for tests and assertions.
  float at(std::size_t r, std::size_t c) const {
    AXONN_CHECK(r < rows_ && c < cols_);
    return (*this)(r, c);
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(std::size_t r) { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const { return data_.data() + r * cols_; }

  Storage& storage() { return data_; }
  const Storage& storage() const { return data_; }

  /// Extracts the sub-matrix covering `rows x cols` index ranges.
  Matrix block(Range row_range, Range col_range) const;

  /// Writes `value` into the sub-matrix position anchored at the ranges.
  void set_block(Range row_range, Range col_range, const Matrix& value);

  /// The (i, j) block when this matrix is split into a row_parts x col_parts
  /// grid of nearly-equal blocks — the paper's 2D decomposition of I and W.
  Matrix grid_block(std::size_t row_parts, std::size_t col_parts,
                    std::size_t i, std::size_t j) const {
    return block(chunk_range(rows_, row_parts, i),
                 chunk_range(cols_, col_parts, j));
  }

  Matrix transposed() const;

  void fill(float value) { data_.assign(data_.size(), value); }
  void set_zero() { fill(0.0f); }

  /// this += other (shapes must match).
  void add_inplace(const Matrix& other);
  /// this += alpha * other.
  void axpy_inplace(float alpha, const Matrix& other);
  /// this *= alpha.
  void scale_inplace(float alpha);

  /// Rounds every element through bf16 (mixed-precision emulation).
  void round_to_bf16();

  /// max_ij |a_ij - b_ij| — the comparison metric in numerical tests.
  static float max_abs_diff(const Matrix& a, const Matrix& b);

  /// max_ij |a_ij|.
  float max_abs() const;

  /// Frobenius-ish sum of all entries (used for cheap invariants).
  double sum() const;

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  Storage data_;
};

}  // namespace axonn
