#pragma once

// Runtime ISA dispatch and the intra-rank GEMM thread budget (DESIGN.md §13).
//
// The tiled backend's micro-kernel is a DispatchStub-style function table
// resolved once per process: the build compiles a portable tier always, and
// AVX2 / AVX-512 tiers in their own translation units with the matching
// -m flags when the compiler supports them; at runtime cpuid
// (__builtin_cpu_supports) picks the widest tier the host executes. The
// portable tier is the correctness oracle — every wider tier must agree with
// it within accumulation-order tolerance, and AXONN_GEMM_ISA=portable forces
// it so CI exercises the fallback on any host.
//
// The thread budget is deliberately per-rank and conservative: ranks are
// already threads in this runtime, and each rank can own comm-progress lane
// workers (§12), so the default is 1 (serial — bit-identical to the
// pre-threaded backend by construction) and parallelism is opted into via
// AXONN_GEMM_THREADS, set_gemm_threads(), WorldOptions::gemm_threads (which
// divides the host's cores by the rank count) or a per-layer
// FCOptions::gemm_threads scope. Results are bitwise identical at any thread
// count (see gemm_tiled.hpp), so the knob is pure performance.

#include <cstddef>

namespace axonn {

/// Micro-kernel ISA tiers, narrowest first. Ordering is meaningful:
/// a tier can always be forced *down*, never above what the host + build
/// support.
enum class GemmIsa {
  kPortable,  ///< scalar/auto-vectorized kernels; compiled everywhere
  kAvx2,      ///< 256-bit FMA register tiles
  kAvx512,    ///< 512-bit register tiles, 6x32 C tile, native bf16 rounding
};

const char* to_string(GemmIsa isa);

/// Widest tier both compiled into this binary and executable on this host
/// (cpuid). Cached after the first call.
GemmIsa detected_gemm_isa();

/// The tier the tiled backend dispatches to: detected_gemm_isa() clamped by
/// the AXONN_GEMM_ISA override (values: portable | avx2 | avx512; unknown
/// values are ignored with a warning) and by force_gemm_isa(). Cached;
/// force_gemm_isa() invalidates.
GemmIsa active_gemm_isa();

/// Test hook: clamps dispatch to min(tier, detected). Affects subsequent
/// packs/kernels process-wide; call reset_gemm_isa() to restore the
/// env-resolved default. Not thread-safe against concurrent GEMMs — flip it
/// only between calls (tests do).
void force_gemm_isa(GemmIsa isa);
void reset_gemm_isa();

/// True when the active tier rounds bf16 with native conversion instructions
/// (AVX512-BF16 VCVTNE2PS2BF16) instead of the scalar round-to-nearest-even.
/// The native path flushes denormal inputs to zero (hardware semantics);
/// everything at trainable magnitudes rounds identically.
bool gemm_native_bf16();

// ---------------------------------------------------------------------------
// Intra-rank GEMM thread budget
// ---------------------------------------------------------------------------

/// Threads the tiled backend may use for the calling thread's next GEMM:
/// the innermost of (GemmThreadScope on this thread) > set_gemm_threads() >
/// AXONN_GEMM_THREADS > 1. Always >= 1.
int gemm_threads();

/// Sets the process-global budget (clamped to >= 1). 0 restores the
/// AXONN_GEMM_THREADS / default-1 resolution.
void set_gemm_threads(int threads);

/// Per-rank budget for a world of `ranks` compute threads on this host:
/// max(1, (hardware_concurrency - 1) / ranks). The reserved core keeps the
/// comm-progress lanes (§12) from queueing behind a fully-subscribed GEMM —
/// the "never oversubscribe" rule WorldOptions::gemm_threads = -1 applies.
int auto_gemm_threads(int ranks);

/// RAII thread-local override: the budget seen by gemm_threads() on this
/// thread while the scope lives. threads <= 0 leaves the ambient budget in
/// effect (a no-op scope), so call sites can pass an optional knob through
/// unconditionally.
class GemmThreadScope {
 public:
  explicit GemmThreadScope(int threads);
  ~GemmThreadScope();
  GemmThreadScope(const GemmThreadScope&) = delete;
  GemmThreadScope& operator=(const GemmThreadScope&) = delete;

 private:
  int previous_;
};

}  // namespace axonn
