#pragma once

// Elementwise and row-wise neural-network primitives.
//
// These are the non-GEMM operations a GPT block needs: GELU, row softmax,
// layer normalization, and the cross-entropy loss with optional token
// masking (the hook the Goldfish loss uses). Forward/backward pairs are kept
// adjacent so their contracts stay in sync.

#include <cstdint>
#include <vector>

#include "axonn/tensor/matrix.hpp"

namespace axonn {

/// Tanh-approximation GELU, the activation used by GPT-style transformers.
float gelu(float x);
/// d(gelu)/dx for the same approximation.
float gelu_grad(float x);

/// out = gelu(in), elementwise.
Matrix gelu(const Matrix& in);
/// din = dout ⊙ gelu'(in).
Matrix gelu_backward(const Matrix& dout, const Matrix& in);

/// Numerically stable softmax applied to each row independently.
Matrix softmax_rows(const Matrix& logits);

/// Backward of row softmax: given y = softmax(x) and dy, returns dx.
Matrix softmax_rows_backward(const Matrix& dout, const Matrix& softmax_out);

/// Per-row LayerNorm state cached for the backward pass.
struct LayerNormCache {
  Matrix normalized;          ///< (x - mean) / std, per row
  std::vector<float> inv_std; ///< 1 / sqrt(var + eps), per row
};

/// y = normalize(x) * gamma + beta, row-wise over features.
Matrix layernorm(const Matrix& x, const std::vector<float>& gamma,
                 const std::vector<float>& beta, LayerNormCache& cache,
                 float eps = 1e-5f);

/// Gradients for layernorm. Returns dx; accumulates dgamma/dbeta.
Matrix layernorm_backward(const Matrix& dout, const LayerNormCache& cache,
                          const std::vector<float>& gamma,
                          std::vector<float>& dgamma, std::vector<float>& dbeta);

/// Mean cross-entropy over rows of `logits` against integer `targets`,
/// skipping rows where mask[i] == 0 (Goldfish-dropped tokens). If mask is
/// empty every row participates. Returns the loss; writes dlogits
/// (already divided by the number of unmasked rows).
float cross_entropy(const Matrix& logits, const std::vector<std::int32_t>& targets,
                    const std::vector<std::uint8_t>& mask, Matrix& dlogits);

/// Cross-entropy loss only (no gradient) — used by evaluation loops.
float cross_entropy_loss(const Matrix& logits,
                         const std::vector<std::int32_t>& targets,
                         const std::vector<std::uint8_t>& mask);

}  // namespace axonn
