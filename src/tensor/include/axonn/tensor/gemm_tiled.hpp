#pragma once

// The `tiled` GEMM backend: packed panels + a register-blocked micro-kernel.
//
// The reference kernel in gemm.cpp streams op(B) rows straight out of the
// operand matrix, so every transpose mode pays a different (sometimes
// strided) access pattern and no value is ever reused from registers. This
// backend does what a real BLAS does instead (the paper's §V-C tuning story
// only has teeth when genuinely different kernels exist):
//
//   1. op(B) is packed once into column panels of kTileNR contiguous
//      columns, blocked over the contraction dimension in kBlockK slabs.
//      Transposition is resolved at pack time, so NN/NT/TN/TT all run the
//      identical micro-kernel. The bf16 path rounds elements as they are
//      packed — the same values the reference bf16 kernel consumes.
//   2. op(A) is packed per (kBlockM x kBlockK) block into row panels of
//      kTileMR contiguous rows, zero-padded at the edges so the micro-kernel
//      never branches on tile bounds.
//   3. The micro-kernel accumulates a kTileMR x kTileNR tile of C in local
//      fp32 accumulators over one k-slab; the innermost loop runs over the
//      kTileNR contiguous packed-B columns, which the compiler
//      auto-vectorizes into broadcast-FMA vector code.
//
// Because each k-slab is accumulated in registers before being added to C,
// the floating-point grouping differs from the reference kernel: results
// match within accumulation-order tolerance, not bitwise.
//
// PackedB is exposed so weight matrices can be packed once and reused across
// every GEMM that consumes them (TensorParallelFC packs W per layer and
// invalidates on optimizer step — the pack-once weight panel cache).

#include <cstddef>
#include <vector>

#include "axonn/base/arena.hpp"
#include "axonn/tensor/gemm.hpp"
#include "axonn/tensor/matrix.hpp"

namespace axonn {

/// Micro-kernel tile: kTileMR rows of C by kTileNR columns, accumulated in
/// registers (6 x 16 fp32 = 6 AVX-512 or 12 AVX2 accumulators).
inline constexpr std::size_t kTileMR = 6;
inline constexpr std::size_t kTileNR = 16;
/// Cache blocking: op(A) blocks of kBlockM x kBlockK are packed so the
/// working set (A block + one B panel) stays in cache across micro-kernels.
inline constexpr std::size_t kBlockM = 96;   // multiple of kTileMR
inline constexpr std::size_t kBlockK = 256;

/// op(B) packed into cache-blocked panels, ready for the micro-kernel.
/// Layout: for each k-slab kb (kBlockK rows of op(B)), for each column tile
/// jt (kTileNR columns, zero-padded past n), a contiguous panel of
/// kc * kTileNR floats stored l-major: panel[l * kTileNR + j].
class PackedB {
 public:
  PackedB() = default;

  std::size_t k() const { return k_; }
  std::size_t n() const { return n_; }
  bool empty() const { return data_.empty(); }
  bool rounded_bf16() const { return rounded_bf16_; }
  void clear() { *this = PackedB(); }

  /// Number of k-slabs and kTileNR column tiles.
  std::size_t k_blocks() const;
  std::size_t n_tiles() const;
  /// Rows in k-slab `kb` (kBlockK except possibly the last).
  std::size_t k_block_rows(std::size_t kb) const;
  /// The (kb, jt) micro-panel: k_block_rows(kb) * kTileNR floats.
  const float* panel(std::size_t kb, std::size_t jt) const;

 private:
  friend PackedB pack_b(const Matrix& b, bool transpose, bool round_bf16);

  std::size_t k_ = 0;
  std::size_t n_ = 0;
  std::size_t padded_n_ = 0;
  bool rounded_bf16_ = false;
  mem::TrackedVector<float> data_;  ///< charged to mem::Tag::kPackedPanels
};

/// Packs op(B) (= B or B^T) into panels. O(k*n) — one pass over the operand.
PackedB pack_b(const Matrix& b, bool transpose, bool round_bf16);

/// C = alpha * op(A) x packed-op(B) + beta * C with op(B) pre-packed.
/// `trans_a` selects op(A) = A^T. Shapes are validated against the pack.
void gemm_tiled_packed(bool trans_a, float alpha, const Matrix& a,
                       const PackedB& packed_b, float beta, Matrix& c,
                       bool round_bf16);

/// Convenience form that packs op(B) internally (pack cost included — the
/// honest per-call cost the KernelTuner measures when no reusable pack
/// exists).
void gemm_tiled(GemmMode mode, float alpha, const Matrix& a, const Matrix& b,
                float beta, Matrix& c, bool round_bf16);

}  // namespace axonn
