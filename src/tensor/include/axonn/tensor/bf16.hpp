#pragma once

// Emulated bfloat16.
//
// The paper trains in mixed precision (bf16 compute, fp32 master weights).
// We emulate bf16 on the CPU: 1 sign + 8 exponent + 7 mantissa bits, i.e.
// the top half of an IEEE-754 float. Conversion uses round-to-nearest-even,
// matching hardware bf16 units. Arithmetic is performed in float and
// rounded back, which is how GEMM kernels with fp32 accumulators behave at
// the input/output boundary.

#include <cstdint>
#include <cstring>

namespace axonn {

class Bf16 {
 public:
  Bf16() = default;

  /// Round-to-nearest-even conversion from float.
  explicit Bf16(float value) : bits_(round_from_float(value)) {}

  /// Exact widening conversion to float (bf16 values are all representable).
  float to_float() const {
    const std::uint32_t wide = static_cast<std::uint32_t>(bits_) << 16;
    float out;
    std::memcpy(&out, &wide, sizeof(out));
    return out;
  }

  explicit operator float() const { return to_float(); }

  std::uint16_t bits() const { return bits_; }
  static Bf16 from_bits(std::uint16_t bits) {
    Bf16 v;
    v.bits_ = bits;
    return v;
  }

  friend bool operator==(const Bf16&, const Bf16&) = default;

 private:
  static std::uint16_t round_from_float(float value) {
    std::uint32_t wide;
    std::memcpy(&wide, &value, sizeof(wide));
    // NaN must stay NaN: truncation could zero all mantissa bits and turn a
    // NaN into infinity, so force a quiet-NaN payload bit instead.
    if ((wide & 0x7F800000u) == 0x7F800000u && (wide & 0x007FFFFFu) != 0) {
      return static_cast<std::uint16_t>((wide >> 16) | 0x0040u);
    }
    // Round to nearest even on the 16 discarded bits.
    const std::uint32_t lsb = (wide >> 16) & 1u;
    const std::uint32_t rounding_bias = 0x7FFFu + lsb;
    return static_cast<std::uint16_t>((wide + rounding_bias) >> 16);
  }

  std::uint16_t bits_ = 0;
};

/// Round-trips a float through bf16 — the precision loss a value suffers
/// when stored in half precision.
inline float bf16_round(float value) { return Bf16(value).to_float(); }

}  // namespace axonn
