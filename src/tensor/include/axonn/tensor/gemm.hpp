#pragma once

// General matrix multiply in the three transpose modes transformers use.
//
// Every FC layer performs one GEMM forward (NN: I x W) and two backward
// (NT: dL/dO x W^T, and TN: I^T x dL/dO). BLAS libraries optimize these
// modes unevenly — the paper found a TN kernel on MI250X running at 6% of
// peak — which is why AxoNN auto-tunes the mode per matmul (§V-C). Here the
// same operand-major layouts exist and the mode choice is observable, so the
// tuner has something real to measure.

#include <cstdint>
#include <span>
#include <string>

#include "axonn/tensor/gemm_dispatch.hpp"
#include "axonn/tensor/matrix.hpp"

namespace axonn {

/// Which operands are logically transposed: C = op(A) x op(B).
enum class GemmMode {
  kNN,  ///< C = A x B
  kNT,  ///< C = A x B^T
  kTN,  ///< C = A^T x B
  kTT,  ///< C = A^T x B^T (unused by transformers; completes the set)
};

const char* to_string(GemmMode mode);

/// True when op(A) (resp. op(B)) is the transpose of the stored operand.
inline bool gemm_transposes_a(GemmMode mode) {
  return mode == GemmMode::kTN || mode == GemmMode::kTT;
}
inline bool gemm_transposes_b(GemmMode mode) {
  return mode == GemmMode::kNT || mode == GemmMode::kTT;
}

/// Which kernel implementation computes the product. `kReference` is the
/// original scalar i-l-j loop (kept as the numerical baseline: plain gemm()
/// always routes here, bit-identical to the seed). `kTiled` packs op(A) and
/// op(B) into cache-blocked panels and runs a register-blocked micro-kernel
/// (see gemm_tiled.hpp) — same math, different accumulation grouping, so
/// results agree within accumulation-order tolerance only.
enum class GemmBackend {
  kReference,
  kTiled,
};

const char* to_string(GemmBackend backend);

/// The backend registry: every entry computes C = alpha * op(A) x op(B) +
/// beta * C in fp32 (`run_fp32`) or with operands rounded through bf16 as
/// consumed (`run_bf16`). The KernelTuner and the benches iterate this table
/// so a new backend only needs one registration.
struct GemmBackendInfo {
  GemmBackend id;
  const char* name;
  void (*run_fp32)(GemmMode, float, const Matrix&, const Matrix&, float,
                   Matrix&);
  void (*run_bf16)(GemmMode, float, const Matrix&, const Matrix&, float,
                   Matrix&);
};

/// All registered backends, reference first.
std::span<const GemmBackendInfo> gemm_backends();

/// Registry lookup by id (throws on unknown backend).
const GemmBackendInfo& gemm_backend_info(GemmBackend backend);

/// Explicit-backend entry points.
void gemm(GemmBackend backend, GemmMode mode, float alpha, const Matrix& a,
          const Matrix& b, float beta, Matrix& c);
void gemm_bf16(GemmBackend backend, GemmMode mode, float alpha,
               const Matrix& a, const Matrix& b, float beta, Matrix& c);

/// C = alpha * op(A) x op(B) + beta * C. Shapes are validated against the
/// mode. Accumulation is fp32 regardless of input rounding.
void gemm(GemmMode mode, float alpha, const Matrix& a, const Matrix& b,
          float beta, Matrix& c);

/// Convenience allocating form with alpha=1, beta=0.
Matrix gemm(GemmMode mode, const Matrix& a, const Matrix& b);

/// Mixed-precision GEMM: operands are rounded through bf16 element-by-element
/// as they are consumed, accumulation stays fp32 — the numerical contract of
/// a bf16 tensor-core GEMM.
void gemm_bf16(GemmMode mode, float alpha, const Matrix& a, const Matrix& b,
               float beta, Matrix& c);

Matrix gemm_bf16(GemmMode mode, const Matrix& a, const Matrix& b);

/// Output rows/cols and inner dimension of op(A) x op(B) under `mode`.
struct GemmShape {
  std::size_t m = 0;  ///< rows of C
  std::size_t n = 0;  ///< cols of C
  std::size_t k = 0;  ///< contraction length
};

/// Computes the (m, n, k) of a GEMM; throws if the operand shapes are
/// incompatible under the mode.
GemmShape gemm_shape(GemmMode mode, const Matrix& a, const Matrix& b);

/// 2*m*n*k — the flop count convention used throughout the paper.
inline std::uint64_t gemm_flops(const GemmShape& s) {
  return 2ull * s.m * s.n * s.k;
}

// ---------------------------------------------------------------------------
// Per-call dispatch statistics
// ---------------------------------------------------------------------------

/// What one GEMM dispatch actually ran. Before this existed only the
/// KernelTuner recorded backend choices, so a trace could not attribute
/// checksum (ABFT) overhead to the kernel it guarded; now every entry point —
/// plain, explicit-backend, tiled and prepacked — records one of these per
/// call on the calling thread.
struct GemmStats {
  GemmBackend backend = GemmBackend::kReference;
  GemmMode mode = GemmMode::kNN;
  GemmShape shape;
  std::uint64_t flops = 0;  ///< gemm_flops(shape)
  bool bf16 = false;        ///< operands rounded through bf16
  /// Micro-kernel tier the tiled backend dispatched to (kPortable for the
  /// reference backend, which has no ISA-specific kernels).
  GemmIsa isa = GemmIsa::kPortable;
  /// Intra-rank thread budget in effect at dispatch (gemm_threads(); the
  /// tiled backend may use fewer lanes when the task grid is smaller).
  int threads = 1;
};

/// Stats of the most recent GEMM dispatched on the calling thread.
/// Meaningless until gemm_dispatch_count() > 0.
const GemmStats& last_gemm_stats();

/// GEMMs dispatched on the calling thread since start/reset. A nested
/// dispatch (gemm_tiled calling gemm_tiled_packed, registry thunks calling
/// the plain entry points) counts once, at the outermost public entry.
std::uint64_t gemm_dispatch_count();

/// Cumulative gemm_flops over those dispatches.
std::uint64_t gemm_dispatch_flops();

/// Zeroes the calling thread's dispatch statistics.
void reset_gemm_dispatch_stats();

namespace detail {

/// RAII reentrancy guard behind the per-call stats: records at construction
/// when (and only when) it is the outermost dispatch frame on this thread.
class GemmDispatchScope {
 public:
  GemmDispatchScope(GemmBackend backend, GemmMode mode, const GemmShape& shape,
                    bool bf16, GemmIsa isa = GemmIsa::kPortable,
                    int threads = 1);
  ~GemmDispatchScope();
  GemmDispatchScope(const GemmDispatchScope&) = delete;
  GemmDispatchScope& operator=(const GemmDispatchScope&) = delete;
};

}  // namespace detail

}  // namespace axonn
