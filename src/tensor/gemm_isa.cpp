#include "axonn/tensor/gemm_dispatch.hpp"

#include "gemm_kernels.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

namespace axonn {

namespace {

// Which tiers this binary carries. The portable tier is unconditional; the
// wider tiers exist only when CMake found the compiler flags (per-TU
// -mavx2/-mavx512*, see src/tensor/CMakeLists.txt).
constexpr bool kHaveAvx2 =
#if defined(AXONN_HAVE_AVX2_KERNELS)
    true;
#else
    false;
#endif
constexpr bool kHaveAvx512 =
#if defined(AXONN_HAVE_AVX512_KERNELS)
    true;
#else
    false;
#endif

bool cpu_supports(const char* feature) {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  __builtin_cpu_init();
  if (std::strcmp(feature, "avx2") == 0) return __builtin_cpu_supports("avx2");
  if (std::strcmp(feature, "avx512") == 0) {
    return __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512bw") &&
           __builtin_cpu_supports("avx512vl");
  }
  return false;
#else
  (void)feature;
  return false;
#endif
}

GemmIsa parse_isa_env(const char* value, GemmIsa fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  if (std::strcmp(value, "portable") == 0) return GemmIsa::kPortable;
  if (std::strcmp(value, "avx2") == 0) return GemmIsa::kAvx2;
  if (std::strcmp(value, "avx512") == 0) return GemmIsa::kAvx512;
  std::fprintf(stderr,
               "[axonn] AXONN_GEMM_ISA=%s not recognized "
               "(expected portable|avx2|avx512); ignoring\n",
               value);
  return fallback;
}

GemmIsa min_isa(GemmIsa a, GemmIsa b) {
  return static_cast<int>(a) < static_cast<int>(b) ? a : b;
}

// force_gemm_isa() state: -1 = no forced tier, else the GemmIsa value.
std::atomic<int> g_forced{-1};

}  // namespace

const char* to_string(GemmIsa isa) {
  switch (isa) {
    case GemmIsa::kPortable:
      return "portable";
    case GemmIsa::kAvx2:
      return "avx2";
    case GemmIsa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

GemmIsa detected_gemm_isa() {
  static const GemmIsa detected = [] {
    if (kHaveAvx512 && cpu_supports("avx512")) return GemmIsa::kAvx512;
    if (kHaveAvx2 && cpu_supports("avx2")) return GemmIsa::kAvx2;
    return GemmIsa::kPortable;
  }();
  return detected;
}

GemmIsa active_gemm_isa() {
  const int forced = g_forced.load(std::memory_order_acquire);
  if (forced >= 0) {
    return min_isa(static_cast<GemmIsa>(forced), detected_gemm_isa());
  }
  static const GemmIsa from_env =
      min_isa(parse_isa_env(std::getenv("AXONN_GEMM_ISA"), detected_gemm_isa()),
              detected_gemm_isa());
  return from_env;
}

void force_gemm_isa(GemmIsa isa) {
  g_forced.store(static_cast<int>(isa), std::memory_order_release);
}

void reset_gemm_isa() { g_forced.store(-1, std::memory_order_release); }

bool gemm_native_bf16() { return detail::active_gemm_kernels().native_bf16; }

// ---------------------------------------------------------------------------
// Thread budget
// ---------------------------------------------------------------------------

namespace {

int parse_threads_env() {
  const char* value = std::getenv("AXONN_GEMM_THREADS");
  if (value == nullptr || *value == '\0') return 1;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed < 1 || parsed > 1024) {
    std::fprintf(stderr,
                 "[axonn] AXONN_GEMM_THREADS=%s not a thread count in "
                 "[1, 1024]; using 1\n",
                 value);
    return 1;
  }
  return static_cast<int>(parsed);
}

// 0 = defer to AXONN_GEMM_THREADS / default.
std::atomic<int> g_global_threads{0};

// Innermost GemmThreadScope override on this thread; 0 = none.
thread_local int t_scope_threads = 0;

}  // namespace

int gemm_threads() {
  if (t_scope_threads > 0) return t_scope_threads;
  const int global = g_global_threads.load(std::memory_order_acquire);
  if (global > 0) return global;
  static const int from_env = parse_threads_env();
  return from_env;
}

void set_gemm_threads(int threads) {
  g_global_threads.store(threads > 0 ? threads : 0,
                         std::memory_order_release);
}

int auto_gemm_threads(int ranks) {
  if (ranks < 1) ranks = 1;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw <= 1) return 1;
  const int budget = (hw - 1) / ranks;  // reserve a core for comm lanes
  return budget > 0 ? budget : 1;
}

GemmThreadScope::GemmThreadScope(int threads) : previous_(t_scope_threads) {
  if (threads > 0) t_scope_threads = threads;
}

GemmThreadScope::~GemmThreadScope() { t_scope_threads = previous_; }

}  // namespace axonn
