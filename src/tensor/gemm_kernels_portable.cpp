// Portable micro-kernel tier: no intrinsics, fixed trip counts the compiler
// unrolls and auto-vectorizes for whatever the build targets. This is the
// numerical oracle — the wider tiers must agree with it within accumulation-
// order tolerance — and the tier AXONN_GEMM_ISA=portable forces so CI
// exercises it on every host. It also hosts gemm_kernels_for()/
// active_gemm_kernels(), the one place that sees every compiled tier.

#include "gemm_kernels.hpp"

#include "axonn/tensor/bf16.hpp"

namespace axonn::detail {

namespace {

// Identical loop nest to the pre-dispatch micro_kernel (PR 3): j innermost
// over the contiguous packed-B row becomes broadcast-FMA vector code.
void tile1_portable(std::size_t kc, const float* __restrict a_panel,
                    const float* __restrict b_panel, float* __restrict acc) {
  float local[kTileMR * kTileNR] = {};
  for (std::size_t l = 0; l < kc; ++l) {
    const float* a = a_panel + l * kTileMR;
    const float* b = b_panel + l * kTileNR;
    for (std::size_t i = 0; i < kTileMR; ++i) {
      const float av = a[i];
      for (std::size_t j = 0; j < kTileNR; ++j) {
        local[i * kTileNR + j] += av * b[j];
      }
    }
  }
  for (std::size_t x = 0; x < kTileMR * kTileNR; ++x) acc[x] = local[x];
}

void round_bf16_portable(const float* src, float* dst, std::size_t count) {
  for (std::size_t x = 0; x < count; ++x) dst[x] = bf16_round(src[x]);
}

}  // namespace

const GemmMicroKernels& portable_gemm_kernels() {
  static const GemmMicroKernels kernels{
      &tile1_portable, nullptr, &round_bf16_portable,
      /*native_bf16=*/false, "portable"};
  return kernels;
}

const GemmMicroKernels& gemm_kernels_for(GemmIsa isa) {
  switch (isa) {
#if defined(AXONN_HAVE_AVX512_KERNELS)
    case GemmIsa::kAvx512:
      return avx512_gemm_kernels();
#endif
#if defined(AXONN_HAVE_AVX2_KERNELS)
    case GemmIsa::kAvx2:
      return avx2_gemm_kernels();
#endif
    default:
      return portable_gemm_kernels();
  }
}

const GemmMicroKernels& active_gemm_kernels() {
  return gemm_kernels_for(active_gemm_isa());
}

}  // namespace axonn::detail
