// AVX-512 micro-kernel tier. Compiled with its own -mavx512* flags (see
// src/tensor/CMakeLists.txt); dispatched only when the host reports
// avx512f/bw/vl at runtime.
//
// With 32 zmm registers the profitable shape is a paired-column-tile kernel:
// tile2 computes a 6 x 32 block of C (two adjacent kTileNR=16 packed-B
// panels sharing one A panel) in 12 zmm accumulators + 2 zmm B rows + the
// A broadcast — the B loads amortize across twice the FMAs of the 6 x 16
// tile. tile1 covers the odd trailing column tile.
//
// bf16 rounding: when both the compiler (-mavx512bf16) and the host
// (avx512bf16 cpuid) have it, packed panels round through VCVTNE2PS2BF16 —
// 32 values per instruction — and widen back by a 16-bit shift. The
// instruction rounds to nearest-even and quiets NaNs exactly like the scalar
// bf16_round, but flushes denormal *inputs* to zero (hardware semantics,
// independent of MXCSR). Trainable-magnitude values round identically;
// cross-tier comparisons are tolerance-based for this reason, bitwise
// guarantees hold only within a tier.

#include "gemm_kernels.hpp"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VL__)

#include <immintrin.h>

#include "axonn/tensor/bf16.hpp"

namespace axonn::detail {

namespace {

void tile1_avx512(std::size_t kc, const float* __restrict a_panel,
                  const float* __restrict b_panel, float* __restrict acc) {
  static_assert(kTileMR == 6 && kTileNR == 16,
                "AVX-512 kernel is specialized for the 6x16 tile");
  __m512 c[kTileMR];
  for (std::size_t i = 0; i < kTileMR; ++i) c[i] = _mm512_setzero_ps();
  for (std::size_t l = 0; l < kc; ++l) {
    const float* a = a_panel + l * kTileMR;
    const __m512 b = _mm512_loadu_ps(b_panel + l * kTileNR);
    for (std::size_t i = 0; i < kTileMR; ++i) {
      c[i] = _mm512_fmadd_ps(_mm512_set1_ps(a[i]), b, c[i]);
    }
  }
  for (std::size_t i = 0; i < kTileMR; ++i) {
    _mm512_store_ps(acc + i * kTileNR, c[i]);
  }
}

void tile2_avx512(std::size_t kc, const float* __restrict a_panel,
                  const float* __restrict b_panel0,
                  const float* __restrict b_panel1, float* __restrict acc) {
  __m512 c0[kTileMR];
  __m512 c1[kTileMR];
  for (std::size_t i = 0; i < kTileMR; ++i) {
    c0[i] = _mm512_setzero_ps();
    c1[i] = _mm512_setzero_ps();
  }
  for (std::size_t l = 0; l < kc; ++l) {
    const float* a = a_panel + l * kTileMR;
    const __m512 b0 = _mm512_loadu_ps(b_panel0 + l * kTileNR);
    const __m512 b1 = _mm512_loadu_ps(b_panel1 + l * kTileNR);
    for (std::size_t i = 0; i < kTileMR; ++i) {
      const __m512 av = _mm512_set1_ps(a[i]);
      c0[i] = _mm512_fmadd_ps(av, b0, c0[i]);
      c1[i] = _mm512_fmadd_ps(av, b1, c1[i]);
    }
  }
  for (std::size_t i = 0; i < kTileMR; ++i) {
    _mm512_store_ps(acc + i * kTileNR, c0[i]);
    _mm512_store_ps(acc + (kTileMR + i) * kTileNR, c1[i]);
  }
}

void round_bf16_scalar(const float* src, float* dst, std::size_t count) {
  for (std::size_t x = 0; x < count; ++x) dst[x] = bf16_round(src[x]);
}

#if defined(__AVX512BF16__)

void round_bf16_native(const float* src, float* dst, std::size_t count) {
  std::size_t x = 0;
  for (; x + 32 <= count; x += 32) {
    // Two 16-float vectors -> 32 bf16 lanes (cvtne2 packs its *second*
    // operand into the low 16 lanes), then widen each lane back to fp32 by
    // zero-extending to 32 bits and shifting into the exponent/mantissa
    // high half.
    const __m512 lo = _mm512_loadu_ps(src + x);
    const __m512 hi = _mm512_loadu_ps(src + x + 16);
    const __m512i bits = (__m512i)_mm512_cvtne2ps_pbh(hi, lo);
    const __m512i w_lo = _mm512_slli_epi32(
        _mm512_cvtepu16_epi32(_mm512_castsi512_si256(bits)), 16);
    const __m512i w_hi = _mm512_slli_epi32(
        _mm512_cvtepu16_epi32(_mm512_extracti64x4_epi64(bits, 1)), 16);
    _mm512_storeu_ps(dst + x, _mm512_castsi512_ps(w_lo));
    _mm512_storeu_ps(dst + x + 16, _mm512_castsi512_ps(w_hi));
  }
  for (; x < count; ++x) dst[x] = bf16_round(src[x]);
}

#endif  // __AVX512BF16__

RoundBf16Fn pick_round_bf16(bool* native) {
#if defined(__AVX512BF16__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512bf16")) {
    *native = true;
    return &round_bf16_native;
  }
#endif
  *native = false;
  return &round_bf16_scalar;
}

}  // namespace

const GemmMicroKernels& avx512_gemm_kernels() {
  static const GemmMicroKernels kernels = [] {
    GemmMicroKernels k;
    k.tile1 = &tile1_avx512;
    k.tile2 = &tile2_avx512;
    k.round_bf16 = pick_round_bf16(&k.native_bf16);
    k.name = "avx512";
    return k;
  }();
  return kernels;
}

}  // namespace axonn::detail

#else  // compiled without AVX-512 flags; keep the link sane

namespace axonn::detail {
const GemmMicroKernels& avx512_gemm_kernels() {
  return portable_gemm_kernels();
}
}  // namespace axonn::detail

#endif
