#include "axonn/tensor/gemm_tiled.hpp"

#include <algorithm>

#include "axonn/base/error.hpp"
#include "axonn/tensor/bf16.hpp"

namespace axonn {

namespace {

inline std::size_t ceil_div(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}

// Packs op(A)[i0..i0+mc) x [l0..l0+kc) into row panels of kTileMR, each
// stored l-major (panel[l * kTileMR + i]) and zero-padded past mc so the
// micro-kernel runs full tiles unconditionally.
template <bool kRound>
void pack_a_block(const Matrix& a, bool trans_a, std::size_t i0,
                  std::size_t mc, std::size_t l0, std::size_t kc, float* buf) {
  const auto maybe_round = [](float v) {
    if constexpr (kRound) {
      return bf16_round(v);
    } else {
      return v;
    }
  };
  const std::size_t m_tiles = ceil_div(mc, kTileMR);
  for (std::size_t it = 0; it < m_tiles; ++it) {
    const std::size_t i_base = i0 + it * kTileMR;
    const std::size_t mr = std::min(kTileMR, i0 + mc - i_base);
    float* panel = buf + it * (kc * kTileMR);
    for (std::size_t l = 0; l < kc; ++l) {
      float* out = panel + l * kTileMR;
      if (!trans_a) {
        for (std::size_t ii = 0; ii < kTileMR; ++ii) {
          out[ii] = ii < mr ? maybe_round(a(i_base + ii, l0 + l)) : 0.0f;
        }
      } else {
        const float* src = a.row(l0 + l) + i_base;  // op(A)(i, l) = A(l, i)
        for (std::size_t ii = 0; ii < kTileMR; ++ii) {
          out[ii] = ii < mr ? maybe_round(src[ii]) : 0.0f;
        }
      }
    }
  }
}

// One kTileMR x kTileNR tile of C over a k-slab: acc holds the tile in fp32.
// Fixed trip counts on i/j let the compiler unroll fully and keep acc in
// vector registers; the j loop over the contiguous packed-B row becomes
// broadcast-FMA vector code.
inline void micro_kernel(std::size_t kc, const float* __restrict a_panel,
                         const float* __restrict b_panel,
                         float (&acc)[kTileMR * kTileNR]) {
  for (std::size_t l = 0; l < kc; ++l) {
    const float* a = a_panel + l * kTileMR;
    const float* b = b_panel + l * kTileNR;
    for (std::size_t i = 0; i < kTileMR; ++i) {
      const float av = a[i];
      for (std::size_t j = 0; j < kTileNR; ++j) {
        acc[i * kTileNR + j] += av * b[j];
      }
    }
  }
}

template <bool kRound>
void pack_b_impl(const Matrix& b, bool transpose, std::size_t k, std::size_t n,
                 std::size_t padded_n, float* dst) {
  const auto maybe_round = [](float v) {
    if constexpr (kRound) {
      return bf16_round(v);
    } else {
      return v;
    }
  };
  for (std::size_t l0 = 0; l0 < k; l0 += kBlockK) {
    const std::size_t kc = std::min(kBlockK, k - l0);
    for (std::size_t j0 = 0; j0 < padded_n; j0 += kTileNR) {
      const std::size_t jn = j0 < n ? std::min(kTileNR, n - j0) : 0;
      for (std::size_t l = 0; l < kc; ++l) {
        if (!transpose) {
          const float* src = b.row(l0 + l) + j0;
          for (std::size_t j = 0; j < jn; ++j) dst[j] = maybe_round(src[j]);
        } else {
          for (std::size_t j = 0; j < jn; ++j) {
            dst[j] = maybe_round(b(j0 + j, l0 + l));  // op(B)(l, j) = B(j, l)
          }
        }
        for (std::size_t j = jn; j < kTileNR; ++j) dst[j] = 0.0f;
        dst += kTileNR;
      }
    }
  }
}

}  // namespace

std::size_t PackedB::k_blocks() const { return ceil_div(k_, kBlockK); }

std::size_t PackedB::n_tiles() const { return padded_n_ / kTileNR; }

std::size_t PackedB::k_block_rows(std::size_t kb) const {
  return std::min(kBlockK, k_ - kb * kBlockK);
}

const float* PackedB::panel(std::size_t kb, std::size_t jt) const {
  // Every slab before kb is full, so its rows contribute kBlockK * padded_n_.
  return data_.data() + kb * kBlockK * padded_n_ +
         jt * (k_block_rows(kb) * kTileNR);
}

PackedB pack_b(const Matrix& b, bool transpose, bool round_bf16) {
  PackedB out;
  out.k_ = transpose ? b.cols() : b.rows();
  out.n_ = transpose ? b.rows() : b.cols();
  out.padded_n_ = ceil_div(out.n_, kTileNR) * kTileNR;
  out.rounded_bf16_ = round_bf16;
  out.data_.assign(out.k_ * out.padded_n_, 0.0f);
  if (out.data_.empty()) return out;
  if (round_bf16) {
    pack_b_impl<true>(b, transpose, out.k_, out.n_, out.padded_n_,
                      out.data_.data());
  } else {
    pack_b_impl<false>(b, transpose, out.k_, out.n_, out.padded_n_,
                       out.data_.data());
  }
  return out;
}

void gemm_tiled_packed(bool trans_a, float alpha, const Matrix& a,
                       const PackedB& packed_b, float beta, Matrix& c,
                       bool round_bf16) {
  const std::size_t m = trans_a ? a.cols() : a.rows();
  const std::size_t ka = trans_a ? a.rows() : a.cols();
  AXONN_CHECK_MSG(ka == packed_b.k(),
                  "tiled GEMM inner dimension does not match packed op(B)");
  AXONN_CHECK_MSG(c.rows() == m && c.cols() == packed_b.n(),
                  "GEMM output shape does not match operands");
  // op(B)'s transposition was resolved at pack time, so the recorded mode
  // can only reflect op(A); prepacked calls report kNN/kTN.
  detail::GemmDispatchScope stats(
      GemmBackend::kTiled, trans_a ? GemmMode::kTN : GemmMode::kNN,
      GemmShape{m, packed_b.n(), packed_b.k()}, round_bf16);
  if (beta == 0.0f) {
    c.set_zero();
  } else if (beta != 1.0f) {
    c.scale_inplace(beta);
  }
  // BLAS semantics: alpha == 0 means C = beta * C without touching A or B.
  if (alpha == 0.0f || m == 0 || packed_b.n() == 0 || packed_b.k() == 0) {
    return;
  }

  AlignedVector<float> a_pack(ceil_div(kBlockM, kTileMR) * kTileMR * kBlockK);
  const std::size_t n_tiles = packed_b.n_tiles();
  for (std::size_t kb = 0; kb < packed_b.k_blocks(); ++kb) {
    const std::size_t l0 = kb * kBlockK;
    const std::size_t kc = packed_b.k_block_rows(kb);
    for (std::size_t i0 = 0; i0 < m; i0 += kBlockM) {
      const std::size_t mc = std::min(kBlockM, m - i0);
      if (round_bf16) {
        pack_a_block<true>(a, trans_a, i0, mc, l0, kc, a_pack.data());
      } else {
        pack_a_block<false>(a, trans_a, i0, mc, l0, kc, a_pack.data());
      }
      const std::size_t m_tiles = ceil_div(mc, kTileMR);
      for (std::size_t jt = 0; jt < n_tiles; ++jt) {
        const float* b_panel = packed_b.panel(kb, jt);
        const std::size_t j0 = jt * kTileNR;
        const std::size_t jn = std::min(kTileNR, packed_b.n() - j0);
        for (std::size_t it = 0; it < m_tiles; ++it) {
          float acc[kTileMR * kTileNR] = {};
          micro_kernel(kc, a_pack.data() + it * (kc * kTileMR), b_panel, acc);
          const std::size_t i_base = i0 + it * kTileMR;
          const std::size_t mr = std::min(kTileMR, i0 + mc - i_base);
          for (std::size_t ii = 0; ii < mr; ++ii) {
            float* crow = c.row(i_base + ii) + j0;
            for (std::size_t j = 0; j < jn; ++j) {
              crow[j] += alpha * acc[ii * kTileNR + j];
            }
          }
        }
      }
    }
  }
}

void gemm_tiled(GemmMode mode, float alpha, const Matrix& a, const Matrix& b,
                float beta, Matrix& c, bool round_bf16) {
  detail::GemmDispatchScope stats(GemmBackend::kTiled, mode,
                                  gemm_shape(mode, a, b), round_bf16);
  const PackedB packed = pack_b(b, gemm_transposes_b(mode), round_bf16);
  gemm_tiled_packed(gemm_transposes_a(mode), alpha, a, packed, beta, c,
                    round_bf16);
}

}  // namespace axonn
