#include "axonn/tensor/gemm_tiled.hpp"

#include <algorithm>
#include <vector>

#include "axonn/base/arena.hpp"
#include "axonn/base/error.hpp"
#include "axonn/base/metrics.hpp"
#include "axonn/base/worker_pool.hpp"
#include "axonn/tensor/gemm_dispatch.hpp"
#include "gemm_kernels.hpp"

namespace axonn {

namespace {

inline std::size_t ceil_div(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}

// Threaded task grid (DESIGN.md §13): a task is one (kBlockM row block,
// kGroupNTiles column-tile group) rectangle of C. The grid is a pure function
// of the problem shape — never of the thread count — and task t is owned by
// lane t % lanes, so which lane computes a task changes with the budget but
// the work inside it (and the kb-ascending order of += into its disjoint C
// rectangle) never does: output is bitwise identical at any thread count.
// 8 tiles x kTileNR = 128 columns per group keeps A-pack duplication across
// tasks under ~1% of the FMA work while giving 512^2 x 512 a 6x4 = 24-task
// grid — enough slack to balance 4..8 lanes.
constexpr std::size_t kGroupNTiles = 8;

// gemm.pool.* registry entries recorded per threaded call; the spawn/park
// counters live with the WorkerTeam in src/base.
obs::metrics::Counter& tiles_counter() {
  static obs::metrics::Counter c("gemm.pool.tiles");
  return c;
}
obs::metrics::Histogram& imbalance_hist() {
  static obs::metrics::Histogram h("gemm.pool.imbalance_pct");
  return h;
}

// Packs op(A)[i0..i0+mc) x [l0..l0+kc) into row panels of kTileMR, each
// stored l-major (panel[l * kTileMR + i]) and zero-padded past mc so the
// micro-kernel runs full tiles unconditionally. bf16 rounding is applied by
// the caller to the packed buffer afterwards (contiguous, so the dispatched
// round_bf16 kernel vectorizes; the padding zeros round to zero).
void pack_a_block(const Matrix& a, bool trans_a, std::size_t i0,
                  std::size_t mc, std::size_t l0, std::size_t kc, float* buf) {
  const std::size_t m_tiles = ceil_div(mc, kTileMR);
  for (std::size_t it = 0; it < m_tiles; ++it) {
    const std::size_t i_base = i0 + it * kTileMR;
    const std::size_t mr = std::min(kTileMR, i0 + mc - i_base);
    float* panel = buf + it * (kc * kTileMR);
    for (std::size_t l = 0; l < kc; ++l) {
      float* out = panel + l * kTileMR;
      if (!trans_a) {
        for (std::size_t ii = 0; ii < kTileMR; ++ii) {
          out[ii] = ii < mr ? a(i_base + ii, l0 + l) : 0.0f;
        }
      } else {
        const float* src = a.row(l0 + l) + i_base;  // op(A)(i, l) = A(l, i)
        for (std::size_t ii = 0; ii < kTileMR; ++ii) {
          out[ii] = ii < mr ? src[ii] : 0.0f;
        }
      }
    }
  }
}

void pack_b_impl(const Matrix& b, bool transpose, std::size_t k, std::size_t n,
                 std::size_t padded_n, float* dst) {
  for (std::size_t l0 = 0; l0 < k; l0 += kBlockK) {
    const std::size_t kc = std::min(kBlockK, k - l0);
    for (std::size_t j0 = 0; j0 < padded_n; j0 += kTileNR) {
      const std::size_t jn = j0 < n ? std::min(kTileNR, n - j0) : 0;
      for (std::size_t l = 0; l < kc; ++l) {
        if (!transpose) {
          const float* src = b.row(l0 + l) + j0;
          for (std::size_t j = 0; j < jn; ++j) dst[j] = src[j];
        } else {
          for (std::size_t j = 0; j < jn; ++j) {
            dst[j] = b(j0 + j, l0 + l);  // op(B)(l, j) = B(j, l)
          }
        }
        for (std::size_t j = jn; j < kTileNR; ++j) dst[j] = 0.0f;
        dst += kTileNR;
      }
    }
  }
}

// C[i_base.., j0..] += alpha * acc tile, clipped to the mr x jn valid region.
inline void add_tile(float alpha, const float* __restrict acc, Matrix& c,
                     std::size_t i_base, std::size_t mr, std::size_t j0,
                     std::size_t jn) {
  for (std::size_t ii = 0; ii < mr; ++ii) {
    float* crow = c.row(i_base + ii) + j0;
    const float* arow = acc + ii * kTileNR;
    for (std::size_t j = 0; j < jn; ++j) {
      crow[j] += alpha * arow[j];
    }
  }
}

}  // namespace

std::size_t PackedB::k_blocks() const { return ceil_div(k_, kBlockK); }

std::size_t PackedB::n_tiles() const { return padded_n_ / kTileNR; }

std::size_t PackedB::k_block_rows(std::size_t kb) const {
  return std::min(kBlockK, k_ - kb * kBlockK);
}

const float* PackedB::panel(std::size_t kb, std::size_t jt) const {
  // Every slab before kb is full, so its rows contribute kBlockK * padded_n_.
  return data_.data() + kb * kBlockK * padded_n_ +
         jt * (k_block_rows(kb) * kTileNR);
}

PackedB pack_b(const Matrix& b, bool transpose, bool round_bf16) {
  PackedB out;
  out.k_ = transpose ? b.cols() : b.rows();
  out.n_ = transpose ? b.rows() : b.cols();
  out.padded_n_ = ceil_div(out.n_, kTileNR) * kTileNR;
  out.rounded_bf16_ = round_bf16;
  // Panels tag themselves: packs happen lazily under whatever scope the
  // triggering GEMM runs in (usually activations), but the bytes belong to
  // the packed-panel budget.
  const mem::ArenaScope scope(mem::Tag::kPackedPanels);
  out.data_.assign(out.k_ * out.padded_n_, 0.0f);
  if (out.data_.empty()) return out;
  pack_b_impl(b, transpose, out.k_, out.n_, out.padded_n_, out.data_.data());
  if (round_bf16) {
    const detail::GemmMicroKernels& kernels = detail::active_gemm_kernels();
    kernels.round_bf16(out.data_.data(), out.data_.data(), out.data_.size());
  }
  return out;
}

void gemm_tiled_packed(bool trans_a, float alpha, const Matrix& a,
                       const PackedB& packed_b, float beta, Matrix& c,
                       bool round_bf16) {
  const std::size_t m = trans_a ? a.cols() : a.rows();
  const std::size_t ka = trans_a ? a.rows() : a.cols();
  AXONN_CHECK_MSG(ka == packed_b.k(),
                  "tiled GEMM inner dimension does not match packed op(B)");
  AXONN_CHECK_MSG(c.rows() == m && c.cols() == packed_b.n(),
                  "GEMM output shape does not match operands");
  const detail::GemmMicroKernels& kernels = detail::active_gemm_kernels();
  const int budget = gemm_threads();
  // op(B)'s transposition was resolved at pack time, so the recorded mode
  // can only reflect op(A); prepacked calls report kNN/kTN.
  detail::GemmDispatchScope stats(
      GemmBackend::kTiled, trans_a ? GemmMode::kTN : GemmMode::kNN,
      GemmShape{m, packed_b.n(), packed_b.k()}, round_bf16, active_gemm_isa(),
      budget);
  if (beta == 0.0f) {
    c.set_zero();
  } else if (beta != 1.0f) {
    c.scale_inplace(beta);
  }
  // BLAS semantics: alpha == 0 means C = beta * C without touching A or B.
  if (alpha == 0.0f || m == 0 || packed_b.n() == 0 || packed_b.k() == 0) {
    return;
  }

  const std::size_t n = packed_b.n();
  const std::size_t n_tiles = packed_b.n_tiles();
  const std::size_t k_blocks = packed_b.k_blocks();
  const std::size_t m_blocks = ceil_div(m, kBlockM);
  const std::size_t groups = ceil_div(n_tiles, kGroupNTiles);
  const std::size_t tasks = m_blocks * groups;
  const int lanes = static_cast<int>(
      std::min<std::size_t>(tasks, static_cast<std::size_t>(budget)));

  std::vector<std::size_t> lane_tiles(static_cast<std::size_t>(lanes), 0);
  auto run_lane = [&](int lane) {
    // Worker-local A pack: tasks sharing a row block each pack their own
    // copy, trading ~groups/(2n) duplicated pack work for zero sharing.
    const mem::ArenaScope scope(mem::Tag::kPackedPanels);
    mem::TrackedVector<float> a_pack(ceil_div(kBlockM, kTileMR) * kTileMR *
                                     kBlockK);
    std::size_t my_tiles = 0;
    for (std::size_t t = static_cast<std::size_t>(lane); t < tasks;
         t += static_cast<std::size_t>(lanes)) {
      const std::size_t mi = t / groups;
      const std::size_t g = t % groups;
      const std::size_t i0 = mi * kBlockM;
      const std::size_t mc = std::min(kBlockM, m - i0);
      const std::size_t m_tiles = ceil_div(mc, kTileMR);
      const std::size_t jt_begin = g * kGroupNTiles;
      const std::size_t jt_end = std::min(jt_begin + kGroupNTiles, n_tiles);
      for (std::size_t kb = 0; kb < k_blocks; ++kb) {
        const std::size_t l0 = kb * kBlockK;
        const std::size_t kc = packed_b.k_block_rows(kb);
        pack_a_block(a, trans_a, i0, mc, l0, kc, a_pack.data());
        if (round_bf16) {
          kernels.round_bf16(a_pack.data(), a_pack.data(),
                             m_tiles * kc * kTileMR);
        }
        std::size_t jt = jt_begin;
        if (kernels.tile2 != nullptr) {
          for (; jt + 1 < jt_end; jt += 2) {
            const float* b0 = packed_b.panel(kb, jt);
            const float* b1 = packed_b.panel(kb, jt + 1);
            const std::size_t j0 = jt * kTileNR;
            const std::size_t jn0 = std::min(kTileNR, n - j0);
            const std::size_t j1 = j0 + kTileNR;
            const std::size_t jn1 = std::min(kTileNR, n - j1);
            for (std::size_t it = 0; it < m_tiles; ++it) {
              alignas(64) float acc[2 * kTileMR * kTileNR];
              kernels.tile2(kc, a_pack.data() + it * (kc * kTileMR), b0, b1,
                            acc);
              const std::size_t i_base = i0 + it * kTileMR;
              const std::size_t mr = std::min(kTileMR, i0 + mc - i_base);
              add_tile(alpha, acc, c, i_base, mr, j0, jn0);
              add_tile(alpha, acc + kTileMR * kTileNR, c, i_base, mr, j1,
                       jn1);
              my_tiles += 2;
            }
          }
        }
        for (; jt < jt_end; ++jt) {
          const float* b_panel = packed_b.panel(kb, jt);
          const std::size_t j0 = jt * kTileNR;
          const std::size_t jn = std::min(kTileNR, n - j0);
          for (std::size_t it = 0; it < m_tiles; ++it) {
            alignas(64) float acc[kTileMR * kTileNR];
            kernels.tile1(kc, a_pack.data() + it * (kc * kTileMR), b_panel,
                          acc);
            const std::size_t i_base = i0 + it * kTileMR;
            const std::size_t mr = std::min(kTileMR, i0 + mc - i_base);
            add_tile(alpha, acc, c, i_base, mr, j0, jn);
            my_tiles += 1;
          }
        }
      }
    }
    lane_tiles[static_cast<std::size_t>(lane)] = my_tiles;
  };

  WorkerTeam::this_thread().run(lanes, run_lane);

  std::size_t total = 0;
  for (std::size_t count : lane_tiles) total += count;
  tiles_counter().add(static_cast<double>(total));
  if (lanes > 1) {
    const auto [lo, hi] = std::minmax_element(lane_tiles.begin(),
                                              lane_tiles.end());
    if (*hi > 0) {
      imbalance_hist().observe(100.0 *
                               static_cast<double>(*hi - *lo) /
                               static_cast<double>(*hi));
    }
  }
}

void gemm_tiled(GemmMode mode, float alpha, const Matrix& a, const Matrix& b,
                float beta, Matrix& c, bool round_bf16) {
  detail::GemmDispatchScope stats(GemmBackend::kTiled, mode,
                                  gemm_shape(mode, a, b), round_bf16,
                                  active_gemm_isa(), gemm_threads());
  const PackedB packed = pack_b(b, gemm_transposes_b(mode), round_bf16);
  gemm_tiled_packed(gemm_transposes_a(mode), alpha, a, packed, beta, c,
                    round_bf16);
}

}  // namespace axonn
