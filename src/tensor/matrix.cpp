#include "axonn/tensor/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "axonn/tensor/bf16.hpp"

namespace axonn {

Matrix Matrix::block(Range row_range, Range col_range) const {
  AXONN_CHECK(row_range.end <= rows_ && col_range.end <= cols_);
  Matrix out(row_range.size(), col_range.size());
  for (std::size_t r = 0; r < out.rows(); ++r) {
    const float* src = row(row_range.begin + r) + col_range.begin;
    std::copy(src, src + out.cols(), out.row(r));
  }
  return out;
}

void Matrix::set_block(Range row_range, Range col_range, const Matrix& value) {
  AXONN_CHECK(row_range.end <= rows_ && col_range.end <= cols_);
  AXONN_CHECK_MSG(value.rows() == row_range.size() &&
                      value.cols() == col_range.size(),
                  "set_block value shape does not match target ranges");
  for (std::size_t r = 0; r < value.rows(); ++r) {
    const float* src = value.row(r);
    std::copy(src, src + value.cols(), row(row_range.begin + r) + col_range.begin);
  }
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out(c, r) = (*this)(r, c);
    }
  }
  return out;
}

void Matrix::add_inplace(const Matrix& other) {
  AXONN_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i];
  }
}

void Matrix::axpy_inplace(float alpha, const Matrix& other) {
  AXONN_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

void Matrix::scale_inplace(float alpha) {
  for (auto& v : data_) v *= alpha;
}

void Matrix::round_to_bf16() {
  for (auto& v : data_) v = bf16_round(v);
}

float Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  AXONN_CHECK(a.rows_ == b.rows_ && a.cols_ == b.cols_);
  float worst = 0.0f;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    worst = std::max(worst, std::fabs(a.data_[i] - b.data_[i]));
  }
  return worst;
}

float Matrix::max_abs() const {
  float worst = 0.0f;
  for (float v : data_) worst = std::max(worst, std::fabs(v));
  return worst;
}

double Matrix::sum() const {
  double total = 0.0;
  for (float v : data_) total += v;
  return total;
}

}  // namespace axonn
