// AVX2+FMA micro-kernel tier. Compiled with -mavx2 -mfma regardless of the
// global arch flags (see src/tensor/CMakeLists.txt); dispatched only when
// __builtin_cpu_supports("avx2") at runtime.
//
// Register budget: one kTileMR x kTileNR (6 x 16) C tile needs 12 ymm
// accumulators + 2 ymm B columns + 1 ymm A broadcast = 15 of the 16
// architectural ymm registers, so there is no room for a two-tile variant —
// tile2 stays nullptr and the caller loops tile1.

#include "gemm_kernels.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include "axonn/tensor/bf16.hpp"

namespace axonn::detail {

namespace {

void tile1_avx2(std::size_t kc, const float* __restrict a_panel,
                const float* __restrict b_panel, float* __restrict acc) {
  static_assert(kTileMR == 6 && kTileNR == 16,
                "AVX2 kernel is specialized for the 6x16 tile");
  __m256 c_lo[kTileMR];
  __m256 c_hi[kTileMR];
  for (std::size_t i = 0; i < kTileMR; ++i) {
    c_lo[i] = _mm256_setzero_ps();
    c_hi[i] = _mm256_setzero_ps();
  }
  for (std::size_t l = 0; l < kc; ++l) {
    const float* a = a_panel + l * kTileMR;
    const float* b = b_panel + l * kTileNR;
    const __m256 b_lo = _mm256_loadu_ps(b);
    const __m256 b_hi = _mm256_loadu_ps(b + 8);
    for (std::size_t i = 0; i < kTileMR; ++i) {
      const __m256 av = _mm256_broadcast_ss(a + i);
      c_lo[i] = _mm256_fmadd_ps(av, b_lo, c_lo[i]);
      c_hi[i] = _mm256_fmadd_ps(av, b_hi, c_hi[i]);
    }
  }
  for (std::size_t i = 0; i < kTileMR; ++i) {
    _mm256_store_ps(acc + i * kTileNR, c_lo[i]);
    _mm256_store_ps(acc + i * kTileNR + 8, c_hi[i]);
  }
}

// AVX2 has no bf16 conversion instructions; the rounding itself is integer
// bit arithmetic, which the compiler vectorizes fine from the scalar form.
void round_bf16_avx2(const float* src, float* dst, std::size_t count) {
  for (std::size_t x = 0; x < count; ++x) dst[x] = bf16_round(src[x]);
}

}  // namespace

const GemmMicroKernels& avx2_gemm_kernels() {
  static const GemmMicroKernels kernels{&tile1_avx2, nullptr, &round_bf16_avx2,
                                        /*native_bf16=*/false, "avx2"};
  return kernels;
}

}  // namespace axonn::detail

#else  // the TU was compiled without -mavx2 -mfma somehow; keep the link sane

namespace axonn::detail {
const GemmMicroKernels& avx2_gemm_kernels() { return portable_gemm_kernels(); }
}  // namespace axonn::detail

#endif
