#pragma once

// Private micro-kernel table behind the tiled backend's runtime ISA dispatch
// (DESIGN.md §13). Each tier lives in its own translation unit compiled with
// exactly the -m flags it needs (see src/tensor/CMakeLists.txt), so a generic
// build still carries AVX2/AVX-512 kernels and picks per host at runtime —
// the DispatchStub idiom. Only gemm_tiled.cpp and the tier TUs include this.
//
// Contracts shared by every tier (gemm_tiled.cpp relies on all of them):
//   - tile1 computes one kTileMR x kTileNR C tile over a k-slab: it fully
//     writes acc[kTileMR * kTileNR] (no caller zeroing) with
//     sum_l a_panel[l*kTileMR + i] * b_panel[l*kTileNR + j] at [i*kTileNR+j].
//   - tile2 (optional, nullptr when a tier has no wide variant) does the same
//     for two adjacent column tiles sharing one A panel: the first tile lands
//     at acc[0..], the second at acc[kTileMR*kTileNR..], so the caller writes
//     both back with the same per-tile code. Pairing never changes any
//     element's accumulation order, so tile2-vs-tile1 coverage of a row is
//     a pure register-reuse optimization.
//   - round_bf16 rounds `count` fp32 values through bf16 (round-to-nearest-
//     even, NaN quieted) from src to dst; src == dst is allowed. Applied to
//     whole packed panels, never to strided operand views.
//   - acc is 64-byte aligned (callers use alignas(64) locals).
//
// Determinism: for a fixed tier, every function here is a pure function of
// its inputs — no tier consults thread ids or global state — which is half of
// the bitwise thread-count-invariance guarantee (the other half is the fixed
// task->lane ownership in gemm_tiled.cpp).

#include <cstddef>

#include "axonn/tensor/gemm_dispatch.hpp"
#include "axonn/tensor/gemm_tiled.hpp"

namespace axonn::detail {

using GemmTile1Fn = void (*)(std::size_t kc, const float* a_panel,
                             const float* b_panel, float* acc);
using GemmTile2Fn = void (*)(std::size_t kc, const float* a_panel,
                             const float* b_panel0, const float* b_panel1,
                             float* acc);
using RoundBf16Fn = void (*)(const float* src, float* dst, std::size_t count);

struct GemmMicroKernels {
  GemmTile1Fn tile1 = nullptr;
  GemmTile2Fn tile2 = nullptr;  ///< nullptr: caller loops tile1
  RoundBf16Fn round_bf16 = nullptr;
  bool native_bf16 = false;  ///< round_bf16 uses conversion instructions
  const char* name = "";
};

/// Always present; the correctness oracle every wider tier is tested against.
const GemmMicroKernels& portable_gemm_kernels();

#if defined(AXONN_HAVE_AVX2_KERNELS)
const GemmMicroKernels& avx2_gemm_kernels();
#endif
#if defined(AXONN_HAVE_AVX512_KERNELS)
/// round_bf16 is resolved at runtime inside the TU: native VCVTNE2PS2BF16
/// when the host has AVX512-BF16, scalar otherwise.
const GemmMicroKernels& avx512_gemm_kernels();
#endif

/// Table row for active_gemm_isa() — what gemm_tiled.cpp dispatches to.
const GemmMicroKernels& active_gemm_kernels();

/// Table row for an explicit tier, clamped to what this binary carries.
const GemmMicroKernels& gemm_kernels_for(GemmIsa isa);

}  // namespace axonn::detail
