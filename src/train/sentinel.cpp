#include "axonn/train/sentinel.hpp"

#include <cmath>
#include <span>
#include <string>

#include "axonn/base/arena.hpp"
#include "axonn/base/log.hpp"
#include "axonn/base/trace.hpp"

namespace axonn::train {

namespace {

std::string escalation_message(std::uint64_t step, int replays) {
  return "sentinel escalation at step " + std::to_string(step) + " after " +
         std::to_string(replays) +
         " replay(s): unhealthy step could not be healed in-run";
}

}  // namespace

SdcEscalationError::SdcEscalationError(std::uint64_t step, int replays)
    : Error(escalation_message(step, replays)), step_(step), replays_(replays) {}

TrainingSentinel::TrainingSentinel(const SentinelConfig& config,
                                   comm::Communicator& world, GPTModel& model,
                                   Adam& adam)
    : config_(config),
      mode_(integrity::effective_mode(config.mode)),
      world_(world),
      model_(model),
      adam_(adam) {
  AXONN_CHECK(config_.journal_depth >= 1);
  AXONN_CHECK(config_.max_replays >= 0);
}

void TrainingSentinel::journal(const TrainCursor& cursor) {
  if (!enabled()) return;
  // Snapshot copies (weights + both Adam moments, journal_depth deep) are
  // the journal budget — ~3x the parameter bytes per retained snapshot.
  const mem::ArenaScope scope(mem::Tag::kJournal);
  Snapshot snap;
  snap.step = cursor.step;
  snap.cursor = cursor;
  snap.adam_step = adam_.step_count();
  model_.for_each_parameter(
      [&snap](Matrix& w) { snap.weights.push_back(w); });
  snap.m.reserve(adam_.num_params());
  snap.v.reserve(adam_.num_params());
  for (std::size_t p = 0; p < adam_.num_params(); ++p) {
    snap.m.push_back(adam_.moment1(p));
    snap.v.push_back(adam_.moment2(p));
  }
  journal_.push_back(std::move(snap));
  while (journal_.size() > static_cast<std::size_t>(config_.journal_depth)) {
    journal_.pop_front();
  }
}

void TrainingSentinel::local_health(float loss, double out[2]) const {
  bool bad = !std::isfinite(loss);
  double sumsq = 0.0;
  model_.for_each_gradient([&](Matrix& g) {
    for (const float v : g.storage()) {
      if (!std::isfinite(v)) bad = true;
      sumsq += static_cast<double>(v) * static_cast<double>(v);
    }
  });
  if (!std::isfinite(sumsq)) bad = true;
  out[0] = bad ? 1.0 : 0.0;
  out[1] = sumsq;
}

bool TrainingSentinel::check_step(float loss, TrainCursor& cursor) {
  if (!enabled()) return true;
  integrity::Counters& ctr = integrity::counters();
  ctr.sentinel_checks.fetch_add(1, std::memory_order_relaxed);

  double local[2];
  local_health(loss, local);
  // Consensus: one small all_reduce; the sum of flags is > 0 iff any rank
  // saw NaN/inf, and the summed sumsq is the global gradient norm² (a NaN
  // contribution propagates through kSum, so it is self-signaling). float on
  // the wire is fine: overflow to inf reads as a spike.
  float word[2] = {static_cast<float>(local[0]),
                   static_cast<float>(local[1])};
  world_.all_reduce(std::span<float>(word, 2), comm::ReduceOp::kSum);

  const double global_sumsq = word[1];
  const bool non_finite = word[0] != 0.0f || !std::isfinite(global_sumsq);
  const bool spike = healthy_steps_ >= config_.warmup_steps && ema_ > 0.0 &&
                     global_sumsq > config_.spike_factor * ema_;

  if (!non_finite && !spike) {
    ema_ = healthy_steps_ == 0
               ? global_sumsq
               : (1.0 - config_.ema_decay) * ema_ +
                     config_.ema_decay * global_sumsq;
    ++healthy_steps_;
    if (consecutive_failures_ > 0) {
      // A previously-unhealthy step replayed clean: the corruption is healed.
      integrity::note_sdc_recovered("sentinel");
      if (obs::enabled()) {
        obs::instant(obs::kCatIntegrity, "sentinel_recovered");
      }
      consecutive_failures_ = 0;
    }
    return true;
  }

  ctr.sentinel_unhealthy.fetch_add(1, std::memory_order_relaxed);
  integrity::note_sdc_detected("sentinel");
  const std::uint64_t step = cursor.step;
  if (consecutive_failures_ > 0 && failing_step_ == step) {
    ++consecutive_failures_;
  } else {
    failing_step_ = step;
    consecutive_failures_ = 1;
  }
  AXONN_LOG_WARN << "sentinel: unhealthy step " << step << " ("
                 << (non_finite ? "non-finite" : "grad-norm spike")
                 << ", grad sumsq " << global_sumsq << ", ema " << ema_
                 << "), failure " << consecutive_failures_;

  if (mode_ == integrity::IntegrityMode::kDetect || journal_.empty() ||
      consecutive_failures_ > config_.max_replays) {
    throw SdcEscalationError(step, consecutive_failures_ - 1);
  }
  rollback(cursor);
  ++replays_;
  ctr.step_replays.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void TrainingSentinel::rollback(TrainCursor& cursor) {
  obs::SpanGuard span;
  if (obs::enabled()) {
    span.open(obs::kCatIntegrity, "step_replay");
  }
  // Restore the newest snapshot without popping it — a replay may fail again
  // and restore the same state. for_each_parameter hands out the FC shards
  // via mutable_weight_shard(), which also invalidates the gathered-weight
  // and packed-panel caches, so the replayed forward re-gathers honestly.
  const Snapshot& snap = journal_.back();
  std::size_t i = 0;
  model_.for_each_parameter([&](Matrix& w) { w = snap.weights[i++]; });
  for (std::size_t p = 0; p < adam_.num_params(); ++p) {
    adam_.moment1(p) = snap.m[p];
    adam_.moment2(p) = snap.v[p];
  }
  adam_.set_step_count(snap.adam_step);
  cursor = snap.cursor;
}

}  // namespace axonn::train
