#pragma once

// Adam optimizer over a heterogeneous set of parameter tensors.
//
// Mirrors the paper's mixed-precision setup: compute may run in emulated
// bf16, but the optimizer holds fp32 parameters and fp32 first/second
// moments (the "master weights + m + v" that dominate the 16 bytes/param
// memory budget of §VI). Parameters register as (weight, gradient) pairs;
// sharded FC weights and replicated embedding/layernorm tensors go through
// the same interface.

#include <cstddef>
#include <vector>

#include "axonn/base/error.hpp"
#include "axonn/tensor/matrix.hpp"

namespace axonn::train {

struct AdamConfig {
  float lr = 3e-4f;
  float beta1 = 0.9f;
  float beta2 = 0.95f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
  float grad_clip = 0.0f;  ///< 0 disables elementwise clipping
};

class Adam {
 public:
  explicit Adam(AdamConfig config = {}) : config_(config) {}

  /// Registers a parameter; the pointers must stay valid for the optimizer's
  /// lifetime. Returns the parameter index.
  std::size_t add_param(Matrix* weight, Matrix* grad);

  /// One Adam step over every registered parameter, with bias correction.
  void step();

  /// Adjusts the learning rate (warmup/decay schedules live in the caller).
  void set_lr(float lr) { config_.lr = lr; }
  float lr() const { return config_.lr; }

  std::size_t num_params() const { return params_.size(); }
  std::int64_t step_count() const { return t_; }

  /// Checkpoint access: first/second moment of parameter `i` (registration
  /// order), and restoring the step counter so bias correction resumes
  /// exactly where the saved run left off.
  Matrix& moment1(std::size_t i) {
    AXONN_CHECK(i < params_.size());
    return params_[i].m;
  }
  Matrix& moment2(std::size_t i) {
    AXONN_CHECK(i < params_.size());
    return params_[i].v;
  }
  void set_step_count(std::int64_t t) { t_ = t; }

  /// Total scalar parameters under management.
  std::size_t total_parameter_count() const;

 private:
  struct Slot {
    Matrix* weight;
    Matrix* grad;
    Matrix m;
    Matrix v;
  };

  AdamConfig config_;
  std::vector<Slot> params_;
  std::int64_t t_ = 0;
};

}  // namespace axonn::train
