#pragma once

// Resilient training driver: the supervisor loop that makes the training
// stack survive the fault classes ChaosComm can inject.
//
// One call runs `total_steps` of GPT training across a thread-rank world,
// checkpointing every `checkpoint_every` steps (per-rank files, atomic
// writes, CRC-protected — see checkpoint.hpp). If a rank fails mid-run
// (e.g. an injected RankFailure) the world aborts, every surviving rank
// unblocks, and the driver re-spawns the world via run_ranks, restores the
// latest checkpoint whose files all validate (skipping torn or corrupted
// ones), and replays forward. Because the snapshot is bit-exact and all
// training arithmetic is deterministic, the recovered run finishes with a
// loss bit-identical to an uninterrupted run — the property the end-to-end
// test asserts.

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "axonn/base/step_telemetry.hpp"
#include "axonn/comm/chaos_comm.hpp"
#include "axonn/integrity/integrity.hpp"
#include "axonn/sim/grid_shape.hpp"
#include "axonn/train/adam.hpp"
#include "axonn/train/corpus.hpp"
#include "axonn/train/gpt_model.hpp"
#include "axonn/train/sentinel.hpp"

namespace axonn::train {

struct ResilientTrainConfig {
  TinyGPTConfig model;
  sim::GridShape grid{1, 1, 1, 2};  ///< gx == gy == 1 (GPTModel's contract)
  AdamConfig adam;
  CorpusConfig corpus;

  int total_steps = 12;
  int batch_per_rank = 2;
  int checkpoint_every = 4;
  std::string checkpoint_dir;  ///< created if missing

  /// Restart budget: how many failed attempts may be retried before the
  /// driver gives up and rethrows the last failure.
  int max_restarts = 4;

  /// Fault injection applied to every rank's world communicator. The crash
  /// fault only fires on the first attempt — a restart models the failed
  /// node being replaced by a healthy one.
  bool enable_chaos = false;
  comm::ChaosConfig chaos;

  /// Collective watchdog budget for the spawned worlds (0 = off).
  std::chrono::milliseconds collective_timeout{0};

  /// Self-healing ring transport for the spawned worlds: CRC-stamped ring
  /// segments with NACK/retransmit under kHeal (see WorldOptions::ring_crc,
  /// DESIGN.md §9). AXONN_INTEGRITY overrides at world construction.
  integrity::IntegrityMode ring_crc = integrity::IntegrityMode::kOff;
  int crc_max_retries = 3;

  /// Step-level health sentinel + in-memory replay (see sentinel.hpp). An
  /// escalation (SdcEscalationError) is handled like a rank failure: the
  /// supervisor restarts from the latest on-disk checkpoint.
  SentinelConfig sentinel;

  /// Straggler policy for the live step telemetry (only consulted when
  /// obs::metrics is enabled, e.g. under a MetricsSession / AXONN_METRICS).
  /// Each healthy step folds a StepTelemetry across ranks; rank 0 streams it
  /// to the metrics session and feeds the StragglerMonitor.
  obs::StragglerMonitor::Config straggler;

  /// Seed for the data-order RNG (part of the checkpointed cursor).
  std::uint64_t data_seed = 0xDA7A0DD5ULL;
};

struct ResilientTrainResult {
  float final_loss = 0.0f;  ///< rank 0's eval loss after the last step
  int restarts = 0;
  std::uint64_t checkpoints_written = 0;  ///< files written across all ranks
  std::uint64_t steps_executed = 0;  ///< rank-0 steps incl. replays
  std::uint64_t step_replays = 0;  ///< rank-0 sentinel rollback+replays
  std::uint64_t telemetry_steps = 0;   ///< StepTelemetry folds performed
  std::vector<int> straggler_ranks;    ///< ranks the monitor flagged (order)
};

/// Runs the supervisor loop to completion (or rethrows after the restart
/// budget is exhausted). Collective: spawns config.grid.total() thread
/// ranks internally.
ResilientTrainResult run_resilient_training(const ResilientTrainConfig& config);

}  // namespace axonn::train
