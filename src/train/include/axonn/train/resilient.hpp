#pragma once

// Resilient training driver: the supervisor loop that makes the training
// stack survive the fault classes ChaosComm can inject.
//
// One call runs `total_steps` of GPT training across a thread-rank world,
// checkpointing every `checkpoint_every` steps (per-rank files, atomic
// writes, CRC-protected — see checkpoint.hpp). If a rank fails mid-run
// (e.g. an injected RankFailure) the world aborts, every surviving rank
// unblocks, and the driver re-spawns the world via run_ranks, restores the
// latest checkpoint whose files all validate (skipping torn or corrupted
// ones), and replays forward. Because the snapshot is bit-exact and all
// training arithmetic is deterministic, the recovered run finishes with a
// loss bit-identical to an uninterrupted run — the property the end-to-end
// test asserts.

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "axonn/base/step_telemetry.hpp"
#include "axonn/comm/chaos_comm.hpp"
#include "axonn/integrity/integrity.hpp"
#include "axonn/sim/grid_shape.hpp"
#include "axonn/train/adam.hpp"
#include "axonn/train/corpus.hpp"
#include "axonn/train/gpt_model.hpp"
#include "axonn/train/sentinel.hpp"

namespace axonn::train {

struct ResilientTrainConfig {
  TinyGPTConfig model;
  sim::GridShape grid{1, 1, 1, 2};  ///< gx == gy == 1 (GPTModel's contract)
  AdamConfig adam;
  CorpusConfig corpus;

  int total_steps = 12;
  int batch_per_rank = 2;
  int checkpoint_every = 4;
  std::string checkpoint_dir;  ///< created if missing

  /// Restart budget: how many failed attempts may be retried before the
  /// driver gives up and rethrows the last failure.
  int max_restarts = 4;

  /// Supervisor restart backoff (full restarts only — in-job elastic
  /// recovery never waits). Attempt k sleeps
  ///   min(cap, base << k) * jitter,   jitter in [0.5, 1.0)
  /// with the jitter drawn deterministically from (data_seed, k) so runs
  /// are reproducible. base == 0 keeps the legacy immediate-respawn
  /// behavior. Waits are counted in ResilientTrainResult and the metrics
  /// registry (resilient.backoff_waits / resilient.backoff_wait_ms).
  std::chrono::milliseconds restart_backoff_base{0};
  std::chrono::milliseconds restart_backoff_cap{2000};

  /// Elastic fault tolerance (DESIGN.md §11). When enabled the driver runs
  /// the world with membership tracking: heartbeats on the comm progress
  /// path detect crashes *and* hangs in-job, survivors reconfigure at a
  /// bumped epoch (hot-swapping a spare into the dead rank's grid slot, or
  /// shrinking gz to the survivor count), and training resumes from the
  /// peer-replicated in-memory checkpoints — no full-world respawn. A
  /// failure the elastic layer cannot absorb (replica lost, below
  /// min_ranks) falls back to the supervisor's disk-checkpoint restart.
  struct ElasticConfig {
    bool enabled = false;
    /// Extra ranks spawned beyond grid.total(); parked until a failure.
    int spares = 0;
    /// Heartbeat staleness threshold for hang detection (0 = crash-only).
    /// Keep generous under sanitizers (TSan slows ranks ~5-15x).
    std::chrono::milliseconds heartbeat_timeout{0};
    /// Shrink gz to the survivor count when no spare is available.
    bool allow_shrink = true;
    /// Smallest world the shrink path may produce.
    int min_ranks = 1;
  };
  ElasticConfig elastic;

  /// Fault injection applied to every rank's world communicator. The crash
  /// fault only fires on the first attempt — a restart models the failed
  /// node being replaced by a healthy one.
  bool enable_chaos = false;
  comm::ChaosConfig chaos;

  /// Collective watchdog budget for the spawned worlds (0 = off).
  std::chrono::milliseconds collective_timeout{0};

  /// Self-healing ring transport for the spawned worlds: CRC-stamped ring
  /// segments with NACK/retransmit under kHeal (see WorldOptions::ring_crc,
  /// DESIGN.md §9). AXONN_INTEGRITY overrides at world construction.
  integrity::IntegrityMode ring_crc = integrity::IntegrityMode::kOff;
  int crc_max_retries = 3;

  /// Step-level health sentinel + in-memory replay (see sentinel.hpp). An
  /// escalation (SdcEscalationError) is handled like a rank failure: the
  /// supervisor restarts from the latest on-disk checkpoint.
  SentinelConfig sentinel;

  /// Straggler policy for the live step telemetry (only consulted when
  /// obs::metrics is enabled, e.g. under a MetricsSession / AXONN_METRICS).
  /// Each healthy step folds a StepTelemetry across ranks; rank 0 streams it
  /// to the metrics session and feeds the StragglerMonitor.
  obs::StragglerMonitor::Config straggler;

  /// Seed for the data-order RNG (part of the checkpointed cursor).
  std::uint64_t data_seed = 0xDA7A0DD5ULL;
};

struct ResilientTrainResult {
  float final_loss = 0.0f;  ///< rank 0's eval loss after the last step
  int restarts = 0;
  std::uint64_t checkpoints_written = 0;  ///< files written across all ranks
  std::uint64_t steps_executed = 0;  ///< rank-0 steps incl. replays
  std::uint64_t step_replays = 0;  ///< rank-0 sentinel rollback+replays
  std::uint64_t telemetry_steps = 0;   ///< StepTelemetry folds performed
  std::vector<int> straggler_ranks;    ///< ranks the monitor flagged (order)

  // Supervisor backoff (satellite of the elastic work; also active for
  // non-elastic configs with restart_backoff_base > 0).
  std::uint64_t backoff_waits = 0;    ///< sleeps taken before restarts
  std::uint64_t backoff_wait_ms = 0;  ///< total milliseconds slept

  // Elastic recovery accounting (all zero unless config.elastic.enabled).
  std::uint64_t epoch_bumps = 0;       ///< world reconfigurations performed
  std::uint64_t spare_swaps = 0;       ///< dead slots refilled by spares
  std::uint64_t shrinks = 0;           ///< reconfigurations that shrank gz
  std::uint64_t replica_pushes = 0;    ///< in-memory snapshot pushes
  std::uint64_t replica_restores = 0;  ///< ranks restored from replicas
  std::uint64_t fenced_messages = 0;   ///< stale-epoch messages dropped
  double recovery_ms = -1.0;  ///< failure -> first post-recovery step (MTTR)
  int final_world_size = 0;   ///< active ranks at finish (shrink visible)
};

/// Runs the supervisor loop to completion (or rethrows after the restart
/// budget is exhausted). Collective: spawns config.grid.total() thread
/// ranks internally.
ResilientTrainResult run_resilient_training(const ResilientTrainConfig& config);

}  // namespace axonn::train
