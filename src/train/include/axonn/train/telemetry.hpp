#pragma once

// Per-step telemetry collection for the training loop (DESIGN.md §10).
//
// StepTelemetryCollector brackets one training step on one rank:
// begin_step() snapshots the local clocks and counters (steady clock, the
// metrics stall clock, GEMM dispatch flops, wire bytes, integrity events);
// end_step() turns the deltas into this rank's StepField vector and folds it
// across ranks with ONE small all-reduce (the sentinel consensus pattern),
// returning the identical StepTelemetry on every rank.
//
// The whole collector is gated on obs::metrics::enabled(), which is
// process-global and therefore consistent across thread ranks — either every
// rank folds or none does, so the extra collective can never deadlock a
// subset of the world.

#include <cstdint>

#include "axonn/base/step_telemetry.hpp"
#include "axonn/comm/communicator.hpp"

namespace axonn::core {
class Grid4D;
}

namespace axonn::train {

class StepTelemetryCollector {
 public:
  /// `world` performs the fold; `grid` (optional) scopes wire-byte deltas to
  /// the grid's four sub-communicators instead of the world communicator.
  explicit StepTelemetryCollector(comm::Communicator& world,
                                  core::Grid4D* grid = nullptr)
      : world_(world), grid_(grid) {}

  /// True when metrics are enabled (the collector records and folds).
  bool active() const { return obs::metrics::enabled(); }

  void begin_step();

  /// Collective when active (one world all-reduce): every rank returns the
  /// same StepTelemetry. Returns an empty (world == 0) telemetry when
  /// inactive — callers skip it without a second flag.
  obs::StepTelemetry end_step(std::uint64_t step, float loss);

 private:
  std::uint64_t wire_bytes() const;

  comm::Communicator& world_;
  core::Grid4D* grid_ = nullptr;
  bool open_ = false;
  double t0_s_ = 0;
  double stall0_s_ = 0;
  std::uint64_t flops0_ = 0;
  std::uint64_t wire0_ = 0;
  std::uint64_t integrity0_ = 0;
};

}  // namespace axonn::train
