#pragma once

// A complete, trainable GPT-style decoder built on the 4D parallel engine.
//
// This is the "AxoNN as a backend in a serial training codebase" story of
// §VI-A, at laptop scale: embeddings, pre-norm transformer blocks with
// causal multi-head attention and GELU MLPs, and a language-model head,
// with full manual backpropagation. The four FC sublayers of every block
// are core::TensorParallelFC instances, so the model runs on any Z x data
// grid — the exact setup of the paper's memorization study ("8-way
// Z-tensor parallelism", §VIII-B): with Gx = Gy = 1 the Z dimension shards
// weights FSDP-style while every rank processes its own batch shard, and
// attention operates on full (unsplit) hidden states.
//
// Replicated parameters (embeddings, layernorms, LM head) are kept
// identical across ranks by summing their gradients over the Z and data
// groups in sync_gradients().

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "axonn/core/fc_layer.hpp"
#include "axonn/core/grid4d.hpp"
#include "axonn/tensor/ops.hpp"
#include "axonn/train/adam.hpp"
#include "axonn/train/corpus.hpp"
#include "axonn/train/goldfish.hpp"

namespace axonn::train {

struct TinyGPTConfig {
  int vocab = 64;
  int max_seq = 64;
  int layers = 2;
  int hidden = 64;
  int heads = 4;
  float init_std = 0.06f;
  bool mixed_precision = false;
  std::uint64_t seed = 1;
  /// ORS/OAR/OAG on the FC sublayers.
  bool overlap_collectives = true;
  /// §V-C kernel tuning on the FC sublayers' GEMMs (see FCOptions).
  bool kernel_tuning = false;
  /// Fixed GEMM backend for the FC sublayers when kernel_tuning is off
  /// (ignored otherwise — the tuner picks per shape). kTiled exercises the
  /// packed-panel path deterministically, which the memory benches/checker
  /// use to make the packed_panels tag observable.
  GemmBackend gemm_backend = GemmBackend::kReference;
  /// ABFT checksum verification on every FC GEMM (see FCOptions::abft and
  /// DESIGN.md §9). Off by default; AXONN_INTEGRITY overrides per process.
  integrity::AbftOptions abft;
};

class GPTModel {
 public:
  /// Collective: all ranks of the grid construct with the same config.
  /// Supports grids with gx == gy == 1 (Z-sharding x data parallelism);
  /// X/Y tensor parallelism of attention is out of scope for this model.
  GPTModel(core::Grid4D& grid, const TinyGPTConfig& config);

  const TinyGPTConfig& config() const { return config_; }
  std::uint64_t parameter_count() const;

  /// Registers every parameter (FC shards + replicated tensors) with the
  /// optimizer. Call once.
  void register_params(Adam& adam);

  /// Visits every parameter tensor in the exact order register_params()
  /// registers them — the serialization order of the checkpoint format.
  /// Note: with gz > 1 the FC tensors are this rank's Z-shards, so
  /// checkpoints are per-rank.
  void for_each_parameter(const std::function<void(Matrix&)>& fn);

  /// Visits every gradient tensor in register_params() order. Requires no
  /// reduce-scatter in flight on the FC sublayers (call after
  /// sync_gradients()). Used by the training sentinel's health checks.
  void for_each_gradient(const std::function<void(Matrix&)>& fn);

  /// Global shape of one parameter, in register_params() order.
  /// Z-sharded tensors (the FC weights) are stored per-rank as a contiguous
  /// row chunk of the (full_rows x cols) global tensor, partitioned over the
  /// Z group by base::chunk_range; replicated tensors are stored whole. This
  /// is the schema the elastic shrink path uses to re-shard a gz=N snapshot
  /// onto gz=M survivors without constructing the old model.
  struct ParamSpec {
    bool z_sharded = false;
    std::size_t full_rows = 0;  ///< global rows (shard rows summed over Z)
    std::size_t cols = 0;
  };
  std::vector<ParamSpec> parameter_specs() const;

  /// Forward + backward + gradient sync over this rank's batch of
  /// equal-length sequences. Returns the mean next-token cross-entropy over
  /// this rank's unmasked targets. If `goldfish` is non-null the goldfish
  /// mask drops 1/k targets. The caller then runs adam.step().
  float train_step(const std::vector<TokenSeq>& sequences,
                   const GoldfishConfig* goldfish = nullptr);

  /// Mean next-token loss without gradients. NOTE: like every forward pass,
  /// this is collective when gz > 1 (weight all-gathers over the Z group);
  /// all ranks of the grid must call it — the same applies to
  /// greedy_generate / exact_match / probe_accuracy.
  float evaluate_loss(const std::vector<TokenSeq>& sequences);

  /// Greedy decoding: extends `prompt` by `new_tokens` tokens.
  TokenSeq greedy_generate(const TokenSeq& prompt, int new_tokens);

  /// True iff greedily prompting with the first (doc size - probe) tokens
  /// reproduces the final `probe` tokens exactly — the §VIII-B metric.
  bool exact_match(const TokenSeq& document, int probe_tokens);

  /// Fraction of the probe positions whose teacher-forced argmax is correct
  /// — a graded memorization signal (1.0 iff exact_match).
  double probe_accuracy(const TokenSeq& document, int probe_tokens);

  void zero_grad();
  /// Completes ORS, sums sharded grads over data groups and replicated
  /// grads over Z x data, and normalizes so the update equals the global
  /// batch mean.
  void sync_gradients();

 private:
  struct Block {
    // Layernorm parameters as (1 x hidden) matrices so Adam manages them
    // uniformly; converted to vectors at the op boundary.
    Matrix ln1_gamma, ln1_beta, ln2_gamma, ln2_beta;
    Matrix ln1_gamma_grad, ln1_beta_grad, ln2_gamma_grad, ln2_beta_grad;
    std::unique_ptr<core::TensorParallelFC> qkv;
    std::unique_ptr<core::TensorParallelFC> attn_out;
    std::unique_ptr<core::TensorParallelFC> mlp_up;
    std::unique_ptr<core::TensorParallelFC> mlp_down;
  };

  struct BlockCache {
    Matrix block_input;
    LayerNormCache ln1;
    Matrix ln1_out;
    Matrix qkv_out;
    std::vector<Matrix> head_p;  ///< softmax probs, per (seq, head)
    Matrix attn_concat;
    Matrix after_attn;  ///< residual + attn projection
    LayerNormCache ln2;
    Matrix ln2_out;
    Matrix mlp_pre_gelu;
  };

  Matrix embed(const std::vector<TokenSeq>& sequences, std::size_t input_len);
  Matrix forward_blocks(const Matrix& x0, std::size_t batch,
                        std::size_t input_len,
                        std::vector<BlockCache>* caches);
  Matrix attention_forward(Block& block, const Matrix& qkv_out,
                           std::size_t batch, std::size_t input_len,
                           BlockCache* cache);
  Matrix attention_backward(Block& block, const BlockCache& cache,
                            const Matrix& d_concat, std::size_t batch,
                            std::size_t input_len);
  Matrix forward_logits(const std::vector<TokenSeq>& sequences,
                        std::size_t input_len,
                        std::vector<BlockCache>* caches, Matrix* x0_out,
                        LayerNormCache* final_ln_cache, Matrix* final_in,
                        Matrix* final_out);

  void all_reduce_replicated(Matrix& grad);

  core::Grid4D& grid_;
  TinyGPTConfig config_;
  int head_dim_;

  Matrix tok_emb_, tok_emb_grad_;
  Matrix pos_emb_, pos_emb_grad_;
  std::vector<Block> blocks_;
  Matrix final_gamma_, final_beta_, final_gamma_grad_, final_beta_grad_;
  Matrix lm_head_, lm_head_grad_;
};

}  // namespace axonn::train
