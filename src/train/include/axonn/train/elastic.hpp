#pragma once

// Elastic in-job recovery driver (DESIGN.md §11).
//
// run_elastic_attempt is one attempt of run_resilient_training with
// config.elastic.enabled: it spawns grid.total() active thread ranks plus
// config.elastic.spares parked spares over an elastic ThreadWorld, trains to
// total_steps, and — instead of tearing the world down on a rank failure —
// recovers in-job: the membership layer detects the failure (crash
// announcement or heartbeat-timed-out hang), survivors rendezvous and
// reconfigure at a bumped epoch (hot-swapping a spare into the dead slot, or
// shrinking gz to the survivor count), and every rank restores from the
// peer-replicated in-memory checkpoints before continuing. The function
// throws only when in-job recovery is impossible (replica lost, shrink
// disallowed / below min_ranks, unrecoverable error) — the supervisor then
// falls back to the classic disk-checkpoint full restart.
//
// Declared separately from run_resilient_training so tests and benchmarks
// can drive a single elastic attempt directly.

#include <mutex>

#include "axonn/train/resilient.hpp"

namespace axonn::train {

void run_elastic_attempt(const ResilientTrainConfig& config,
                         const comm::ChaosConfig& chaos,
                         ResilientTrainResult& result,
                         std::mutex& result_mutex);

}  // namespace axonn::train
