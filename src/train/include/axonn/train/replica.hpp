#pragma once

// Peer-replicated in-memory checkpoints (DESIGN.md §11).
//
// Disk checkpoints bound the blast radius of a failure to `checkpoint_every`
// steps — but only if the filesystem cooperates. At the paper's scale the
// parallel filesystem is itself a failure domain (stale snapshot, lost
// files), so the elastic layer adds a second, storage-free tier: every
// `checkpoint_every` steps each active slot pushes its CRC-framed snapshot
// (CheckpointWriter::to_bytes() — byte-identical to the on-disk format) to a
// buddy slot's memory. Recovery then restores from RAM: a swapped-in spare
// decodes the dead slot's blob from the buddy that holds it, and survivors
// decode their own — no disk read on the recovery path at all.
//
// The store keeps a two-deep history per slot. Pushes are not atomic across
// ranks: a crash *during* the push wave leaves some slots at step S and
// others still at S - k. The recovery step is therefore the newest step
// every slot holds (`common_step`), which the history guarantees exists as
// long as at most one push wave was torn.
//
// A slot's replica survives the failure iff someone still holding its bytes
// is alive: the slot's own occupant (local copy) or its buddy, slot
// (slot + 1) % slots (pushed copy). Both dead => the replica is lost and
// recovery falls back to the supervisor's disk-checkpoint full restart —
// the "lost checkpoint replica" row of the fault-model table.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "axonn/base/arena.hpp"
#include "axonn/train/adam.hpp"
#include "axonn/train/checkpoint.hpp"
#include "axonn/train/gpt_model.hpp"

namespace axonn::train {

/// Thread-safe per-slot snapshot-blob store shared by the rank threads of
/// one elastic run (the in-process stand-in for buddy ranks' RAM).
class ReplicaStore {
 public:
  explicit ReplicaStore(int slots);

  int slots() const;

  /// The buddy (holder) of `slot`'s pushed copy.
  static int buddy_slot(int slot, int slots) {
    return (slot + 1) % slots;
  }

  /// Drops all history and resizes to `slots` (used when the world shrinks:
  /// old-gz blobs cannot seed a new-gz buddy scheme).
  void reset(int slots);

  /// Stores `blob` as slot `slot`'s snapshot at `step`, keeping at most the
  /// two newest steps per slot.
  void push(int slot, std::uint64_t step, std::vector<std::byte> blob);

  /// Newest step every slot holds a blob for, or nullopt if some slot has
  /// no blob at the common step (empty store, or more than one torn wave).
  std::optional<std::uint64_t> common_step() const;

  bool has(int slot, std::uint64_t step) const;

  /// Copy of slot `slot`'s blob at `step`; throws CheckpointError if absent.
  std::vector<std::byte> blob(int slot, std::uint64_t step) const;

  /// Total pushes accepted (telemetry / tests).
  std::uint64_t pushes() const;

 private:
  struct Entry {
    std::uint64_t step = 0;
    // Retained replica blobs are the only checkpoint bytes that stay
    // resident, so they are charged to the journal arena tag; the transient
    // encode/decode copies on the push/restore paths are not.
    mem::TrackedVector<std::byte> bytes;
  };

  mutable std::mutex mutex_;
  std::vector<std::deque<Entry>> history_;  ///< per slot, newest last
  std::uint64_t pushes_ = 0;
};

/// Rebuilds this rank's live state for a `new_world`-way grid from the full
/// set of `old_blobs.size()`-way snapshot blobs taken at one step — the
/// elastic shrink restore. Replicated tensors are taken from old slot 0;
/// Z-sharded tensors (per GPTModel::parameter_specs()) are reassembled from
/// every old slot's row chunk and re-cut for new rank `new_rank`. Adam step
/// count and the cursor come from old slot 0 (the cursor is identical across
/// ranks; the corpus re-partitions deterministically because document
/// assignment is a pure function of cursor, rank and world size).
void reshard_restore(const std::vector<std::vector<std::byte>>& old_blobs,
                     GPTModel& model, Adam& adam, TrainCursor& cursor,
                     int new_rank, int new_world);

}  // namespace axonn::train
