#pragma once

// The memorization study of §VIII at laptop scale.
//
// Protocol (§VIII-B): warm up on background text with the learning rate
// ramping up, then inject the bucketed probe documents — bucket 1 for one
// epoch, bucket 2 for four, bucket 3 for six, bucket 0 held out — while the
// learning rate decays. After training, report the exact-match rate (the
// model reproduces the final probe tokens of a document verbatim) for every
// bucket. Sweeping model size reproduces the emergence of memorization with
// scale (Fig. 10); enabling the Goldfish loss reproduces its mitigation
// (Fig. 11).

#include <string>
#include <vector>

#include "axonn/core/grid4d.hpp"
#include "axonn/train/corpus.hpp"
#include "axonn/train/goldfish.hpp"
#include "axonn/train/gpt_model.hpp"

namespace axonn::train {

struct MemorizationConfig {
  TinyGPTConfig model;
  CorpusConfig corpus;
  int warmup_steps = 150;      ///< pretraining on the background language
  int warmup_batch_size = 4;   ///< background sequences per warmup step
  int batch_size = 1;          ///< injection sequences per optimization step
  float lr_max = 1e-2f;
  float lr_min = 3.3e-3f;
  /// The paper probes the last 50 of 2048 tokens (2.4%); we probe the last
  /// 4 of 48 (8%), with at least one guaranteed off-grammar token so the
  /// probe can only pass through memorization.
  int probe_tokens = 4;
  bool use_goldfish = false;
  GoldfishConfig goldfish;
  std::uint64_t shuffle_seed = 7;
  int trial = 0;  ///< offsets the corpus and shuffle seeds

  /// Applies the calibrated corpus/model coupling: vocab 64 (so model width
  /// gates grammar capacity), 48-token documents, 4 docs per bucket, 20%
  /// grammar deviations, probe-region deviation guarantee, and seeds offset
  /// by the trial index. Call after setting `model` and `trial`.
  void finalize() {
    corpus.vocab = 64;
    corpus.doc_tokens = 48;
    corpus.docs_per_bucket = 4;
    corpus.noise_probability = 0.2;
    corpus.tail_tokens = probe_tokens;
    corpus.min_tail_deviations = 1;
    corpus.seed = 2024 + static_cast<std::uint64_t>(trial);
    shuffle_seed = 7 + static_cast<std::uint64_t>(trial);
    model.vocab = corpus.vocab;
    model.max_seq = corpus.doc_tokens;
  }
};

struct MemorizationResult {
  std::string model_name;
  std::uint64_t parameter_count = 0;
  /// Exact-match fraction per bucket; epochs_per_bucket gives the paper's
  /// {0 (control), 1, 4, 6} repetition counts.
  std::vector<double> exact_match_per_bucket;
  /// Mean teacher-forced probe-token accuracy per bucket (graded signal).
  std::vector<double> probe_accuracy_per_bucket;
  std::vector<int> epochs_per_bucket;
  float final_train_loss = 0.0f;
  int total_steps = 0;
};

/// Runs the full protocol on an existing grid (collective: every rank of
/// the grid calls it). Deterministic given the configs.
MemorizationResult run_memorization_experiment(core::Grid4D& grid,
                                               const std::string& model_name,
                                               const MemorizationConfig& config);

/// Convenience wrapper: single-rank run (the benches use this; the gtest
/// integration test exercises the multi-rank path).
MemorizationResult run_memorization_experiment_serial(
    const std::string& model_name, const MemorizationConfig& config);

/// The scaled-down model family standing in for TinyLlama-1B ... Llama-405B
/// (name, config) — capacity grows ~10x between steps so memorization
/// emerges within the family.
struct ZooEntry {
  std::string name;
  TinyGPTConfig model;
};
std::vector<ZooEntry> memorization_model_zoo();

}  // namespace axonn::train
