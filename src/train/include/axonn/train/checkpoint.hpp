#pragma once

// Versioned binary checkpoint/restart for the training loop.
//
// Multi-day runs at the paper's scale (§VII: up to 32,768 GCDs) survive rank
// failures only through checkpoint/restart, so the reproduction needs the
// same layer: a self-describing binary snapshot of everything the training
// loop would otherwise lose — model weights, Adam moments and step counter,
// the corpus cursor and the data-order RNG — restored bit-exactly so a
// resumed run converges to the identical loss as an uninterrupted one.
//
// File layout (host-endian; see DESIGN.md "Fault model and recovery"):
//   magic "AXCK" | u32 version | u32 section_count
//   then per section:
//   u32 name_len | name bytes | u64 payload_len | u32 crc32(payload) | payload
//
// Every section carries its own CRC32, so a torn write, truncation, or bit
// flip is detected at restore time; writes are atomic (tmp file + rename) so
// a crash mid-checkpoint can never destroy the previous good snapshot.
// Checkpoints are per-rank ("ckpt-<step>.r<rank>.axck") because with gz > 1
// each rank's FC tensors are Z-shards; a step is restorable only when every
// rank's file for it validates.

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "axonn/base/error.hpp"
#include "axonn/base/rng.hpp"
#include "axonn/train/adam.hpp"
#include "axonn/train/gpt_model.hpp"

namespace axonn::train {

/// Thrown on any restore failure: bad magic/version, CRC mismatch,
/// truncation, or state-shape mismatch with the live model/optimizer.
class CheckpointError : public Error {
 public:
  using Error::Error;
};

inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Little typed append-only buffer used to build section payloads.
class ByteWriter {
 public:
  void put_u32(std::uint32_t v) { put_raw(&v, sizeof(v)); }
  void put_u64(std::uint64_t v) { put_raw(&v, sizeof(v)); }
  void put_i64(std::int64_t v) { put_raw(&v, sizeof(v)); }
  void put_floats(std::span<const float> v) {
    put_raw(v.data(), v.size_bytes());
  }
  void put_bytes(std::span<const std::byte> v) { put_raw(v.data(), v.size()); }

  std::vector<std::byte> take() { return std::move(bytes_); }

 private:
  void put_raw(const void* data, std::size_t size);
  std::vector<std::byte> bytes_;
};

/// Cursor-based reader over a section payload; throws CheckpointError on
/// over-read (truncated payload).
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::int64_t get_i64();
  void get_floats(std::span<float> out);
  void get_bytes(std::span<std::byte> out);
  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  void get_raw(void* out, std::size_t size);
  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

/// A checkpoint under construction: named CRC-protected sections, written
/// atomically.
class CheckpointWriter {
 public:
  void add_section(const std::string& name, std::vector<std::byte> payload);

  /// Serializes the checkpoint into a memory image — byte-identical to the
  /// file write() produces. This is the payload a rank pushes to its buddy's
  /// in-memory replica store (DESIGN.md §11): the CRC framing travels with
  /// the bytes, so a replica validates exactly like an on-disk file.
  std::vector<std::byte> to_bytes() const;

  /// Writes to `path` atomically: the bytes land in `path + ".tmp"` first
  /// and are renamed over `path` only once complete, so readers never see a
  /// half-written checkpoint under the final name.
  void write(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::vector<std::byte>>> sections_;
};

/// A parsed-and-verified checkpoint. The constructors validate the magic,
/// version and every section CRC, throwing CheckpointError otherwise.
class CheckpointReader {
 public:
  explicit CheckpointReader(const std::string& path);
  /// Parses an in-memory image (CheckpointWriter::to_bytes(), or a buddy's
  /// replica blob) with identical validation.
  explicit CheckpointReader(std::span<const std::byte> bytes);

  bool has_section(const std::string& name) const;
  std::span<const std::byte> section(const std::string& name) const;

 private:
  void parse(std::span<const std::byte> bytes, const std::string& origin);

  std::map<std::string, std::vector<std::byte>> sections_;
};

/// True iff `path` parses and every section CRC validates (no state is
/// restored). Used to skip torn/corrupted files during restart.
bool validate_checkpoint(const std::string& path);

// ---------------------------------------------------------------------------
// Training-loop snapshot
// ---------------------------------------------------------------------------

/// Everything the training driver needs beyond model/optimizer state to
/// resume deterministically.
struct TrainCursor {
  std::uint64_t step = 0;      ///< steps completed
  std::uint64_t next_doc = 0;  ///< next background-document index
  Rng rng{0};                  ///< data-order RNG (uniform draws only)
};

/// Serializes model weights, Adam moments + step count, and the cursor.
void save_checkpoint(const std::string& path, GPTModel& model, Adam& adam,
                     const TrainCursor& cursor, int rank, int world_size);

/// Restores state saved by save_checkpoint into live objects; the model and
/// optimizer must already be constructed with the same architecture, rank
/// and world size. Throws CheckpointError on any mismatch.
void load_checkpoint(const std::string& path, GPTModel& model, Adam& adam,
                     TrainCursor& cursor, int rank, int world_size);

/// The in-memory twins of save/load_checkpoint: identical bytes, no file.
/// encode produces the blob a rank hands to its buddy's replica store;
/// decode restores from such a blob (validating every section CRC first).
std::vector<std::byte> encode_train_snapshot(GPTModel& model, Adam& adam,
                                             const TrainCursor& cursor,
                                             int rank, int world_size);
void decode_train_snapshot(std::span<const std::byte> bytes, GPTModel& model,
                           Adam& adam, TrainCursor& cursor, int rank,
                           int world_size);

/// "ckpt-<step padded to 8>.r<rank>.axck".
std::string checkpoint_filename(std::uint64_t step, int rank);

/// Highest step for which every rank 0..world_size-1 has a file in `dir`
/// that fully validates, or -1 if none. Torn or corrupted steps are skipped
/// (logged at warn level) — the fall-back-past-a-bad-checkpoint path.
std::int64_t find_latest_valid_step(const std::string& dir, int world_size);

}  // namespace axonn::train
