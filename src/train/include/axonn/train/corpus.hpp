#pragma once

// Synthetic document corpus with the bucket protocol of §VIII-B.
//
// SUBSTITUTION (see DESIGN.md): the paper trains Llama checkpoints on
// English Wikipedia pages; we train scaled-down models from scratch on
// synthetic documents. Documents are random token sequences with a mild
// bigram structure (so models can learn *something* generalizable from the
// background corpus), and the probe documents are fully random — the only
// way a model reproduces one verbatim is memorization, which makes the
// exact-match metric a pure memorization signal.
//
// The protocol: four disjoint buckets of documents. During continued
// training, bucket 1 is repeated for 1 epoch, bucket 2 for 4, bucket 3 for
// 6; bucket 0 ("0 Ep") is the held-out control. After training, the model
// is prompted with the beginning of every document and must greedily
// reproduce the final `probe_tokens` tokens exactly.

#include <cstdint>
#include <vector>

#include "axonn/base/rng.hpp"

namespace axonn::train {

using TokenSeq = std::vector<std::int32_t>;

struct CorpusConfig {
  int vocab = 64;
  int doc_tokens = 48;        ///< length of every document
  int docs_per_bucket = 6;
  int num_buckets = 4;        ///< bucket 0 is the control ("0 Ep")
  /// Fraction of tokens that deviate (uniformly at random) from the bigram
  /// grammar — the per-document "surprise" a model must memorize to
  /// reproduce the document verbatim.
  double noise_probability = 0.3;
  /// Probe documents are rejection-sampled until the last `tail_tokens`
  /// contain at least `min_tail_deviations` off-grammar tokens, so a
  /// document can never be reproduced by grammar-following luck — the
  /// exact-match probe measures memorization only.
  int tail_tokens = 16;
  int min_tail_deviations = 3;
  std::uint64_t seed = 2024;
};

class BucketCorpus {
 public:
  explicit BucketCorpus(const CorpusConfig& config);

  const CorpusConfig& config() const { return config_; }

  /// Documents of bucket b (0 = control, never trained on).
  const std::vector<TokenSeq>& bucket(int b) const;

  /// Epoch counts per bucket in the paper's protocol: {0, 1, 4, 6}.
  std::vector<int> epochs_per_bucket() const;

  /// A fresh background (non-bucketed) document for warmup steps, generated
  /// from a bigram chain so there is signal to learn. Deterministic in
  /// `index`.
  TokenSeq background_doc(std::uint64_t index) const;

  /// Number of off-grammar tokens in the final tail_tokens of `doc`
  /// (public for tests and the memorization analyses).
  int tail_deviations(const TokenSeq& doc) const;

 private:
  /// One document sampled from the bigram chain with the given deviation
  /// probability.
  TokenSeq chain_doc(Rng& rng, double noise_probability) const;

  CorpusConfig config_;
  std::vector<std::vector<TokenSeq>> buckets_;
  std::vector<std::int32_t> bigram_next_;  ///< preferred successor per token
};

/// Exact-match probe: true iff greedy generation after `prompt` reproduces
/// `target` exactly. (Generation is supplied by the caller as a callback so
/// the corpus stays model-agnostic.)
bool sequences_equal(const TokenSeq& a, const TokenSeq& b);

}  // namespace axonn::train
