#pragma once

// Goldfish loss (Hans et al. [50], deployed in §VIII-D).
//
// Language-model training minimizes cross-entropy over every next-token
// prediction; the Goldfish loss deterministically drops 1/k of the tokens
// from the loss so the model can never learn them in context — breaking
// verbatim regurgitation of long training sequences. The mask must be a
// *deterministic function of the local context* (the preceding h tokens) so
// that the same passage is masked identically every epoch; a per-step
// random mask would leak every token eventually.

#include <cstdint>
#include <vector>

namespace axonn::train {

struct GoldfishConfig {
  int k = 2;   ///< drop one token in k (the paper runs k=2)
  int h = 13;  ///< hash-context width (the paper runs h=13)
  std::uint64_t salt = 0x60147F15ULL;  ///< keyed hash; fixed per run
};

/// Mask over next-token targets: mask[i] == 1 means target position i
/// participates in the loss, 0 means dropped by the goldfish rule. The
/// decision for position i hashes tokens [i-h+1 .. i] of the *input* stream
/// (clamped at the sequence start), so identical contexts always mask
/// identically.
std::vector<std::uint8_t> goldfish_mask(const std::vector<std::int32_t>& tokens,
                                        const GoldfishConfig& config);

/// Fraction of positions kept by the mask (diagnostics; ~ (k-1)/k).
double goldfish_keep_fraction(const std::vector<std::uint8_t>& mask);

}  // namespace axonn::train
