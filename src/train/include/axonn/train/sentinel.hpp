#pragma once

// Training health sentinel + in-memory step replay — the last line of the
// silent-data-corruption defense (DESIGN.md §9).
//
// ABFT covers the GEMMs and the ring CRC covers the wire, but corruption can
// still land where neither looks: an HBM bit flip in a result buffer after
// delivery, an ALU fault in a non-GEMM op, a bad reduction on one rank. The
// sentinel closes that gap at step granularity: every step it journals the
// full pre-step training state in memory (weights, Adam moments + counter,
// data cursor), runs the step, and then checks the step's *outputs* — the
// loss and the synchronized gradients — for NaN/inf and for a gradient-norm
// spike against a running EMA. The per-rank verdict is reduced to a world
// consensus with one small all_reduce, so every rank agrees on health and
// acts in lockstep (an unhealthy step on one rank is unhealthy everywhere —
// gradients are already synchronized, so a corrupted contribution has
// poisoned every rank's update anyway).
//
// On an unhealthy step in kHeal mode the sentinel rolls the model, optimizer
// and cursor back to the journal snapshot and the driver replays the step.
// Replay is deterministic-but-not-identical at the fault layer: ChaosComm's
// per-rank collective counters keep advancing, so a one-shot injected fault
// does not re-fire and the replayed step goes through clean. After
// `max_replays` consecutive failures of the same step the sentinel escalates
// with SdcEscalationError, handing control to the PR 1 checkpoint/restart
// supervisor (the fail-stop path). kDetect escalates on first detection;
// kOff disables the sentinel (and its journal) entirely.

#include <cstdint>
#include <deque>
#include <vector>

#include "axonn/base/error.hpp"
#include "axonn/comm/communicator.hpp"
#include "axonn/integrity/integrity.hpp"
#include "axonn/tensor/matrix.hpp"
#include "axonn/train/adam.hpp"
#include "axonn/train/checkpoint.hpp"
#include "axonn/train/gpt_model.hpp"

namespace axonn::train {

/// Thrown when the sentinel cannot heal in-run: kDetect saw an unhealthy
/// step, or kHeal exhausted its replay budget. The resilient-training
/// supervisor treats it like any rank failure and restarts from the latest
/// on-disk checkpoint.
class SdcEscalationError : public Error {
 public:
  SdcEscalationError(std::uint64_t step, int replays);
  std::uint64_t step() const { return step_; }
  int replays() const { return replays_; }

 private:
  std::uint64_t step_;
  int replays_;
};

struct SentinelConfig {
  /// kOff disables all checks and journaling; kDetect checks and escalates;
  /// kHeal checks, rolls back and replays. Resolved against the
  /// AXONN_INTEGRITY env override at construction.
  integrity::IntegrityMode mode = integrity::IntegrityMode::kOff;

  /// A step is unhealthy when its global gradient sum-of-squares exceeds
  /// `spike_factor` x the EMA of previous healthy steps (or is NaN/inf, or
  /// the loss is). 1e3 tolerates two decades of ordinary growth while a
  /// high-exponent bit flip overshoots by many more.
  double spike_factor = 1e3;
  /// EMA weight of the newest healthy observation.
  double ema_decay = 0.5;
  /// Steps observed before the spike check arms (the EMA needs samples;
  /// NaN/inf checks are always armed).
  int warmup_steps = 2;

  /// Journal ring depth: how many pre-step snapshots stay in memory.
  int journal_depth = 2;
  /// Consecutive failed replays of one step before escalating.
  int max_replays = 2;
};

class TrainingSentinel {
 public:
  /// `world` carries the consensus all_reduce — pass the (possibly
  /// chaos-wrapped) communicator the training loop itself uses, so fault
  /// schedules see a consistent collective sequence. All references must
  /// outlive the sentinel.
  TrainingSentinel(const SentinelConfig& config, comm::Communicator& world,
                   GPTModel& model, Adam& adam);

  /// The mode after the AXONN_INTEGRITY override.
  integrity::IntegrityMode mode() const { return mode_; }
  bool enabled() const { return mode_ != integrity::IntegrityMode::kOff; }

  /// Snapshots the pre-step state (weights, Adam moments + step counter,
  /// cursor) into the journal ring. Call before every train_step. No-op when
  /// disabled. Collective-free.
  void journal(const TrainCursor& cursor);

  /// Post-step health check + consensus (one all_reduce over `world`; every
  /// rank must call with its own loss). Healthy: updates the EMA, returns
  /// true. Unhealthy: kDetect throws SdcEscalationError; kHeal rolls back to
  /// the newest journal snapshot (restoring `cursor`), counts a replay, and
  /// returns false — the caller re-runs the step. Escalates after
  /// max_replays consecutive failures of the same step.
  bool check_step(float loss, TrainCursor& cursor);

  /// Steps replayed so far (rank-local view of a world-consistent count).
  std::uint64_t replays() const { return replays_; }

 private:
  struct Snapshot {
    std::uint64_t step = 0;
    std::vector<Matrix> weights;  ///< for_each_parameter order
    std::vector<Matrix> m, v;     ///< Adam moments, registration order
    std::int64_t adam_step = 0;
    TrainCursor cursor;
  };

  /// Local health word: [0] = NaN/inf flag (0 or 1), [1] = gradient sumsq.
  void local_health(float loss, double out[2]) const;
  void rollback(TrainCursor& cursor);

  SentinelConfig config_;
  integrity::IntegrityMode mode_;
  comm::Communicator& world_;
  GPTModel& model_;
  Adam& adam_;

  std::deque<Snapshot> journal_;
  double ema_ = 0.0;
  int healthy_steps_ = 0;  ///< healthy observations so far (arms the EMA)
  std::uint64_t replays_ = 0;
  std::uint64_t failing_step_ = 0;  ///< step of the current failure streak
  int consecutive_failures_ = 0;
};

}  // namespace axonn::train
