#include "axonn/train/gpt_model.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "axonn/base/arena.hpp"
#include "axonn/base/error.hpp"
#include "axonn/base/trace.hpp"

namespace axonn::train {

namespace {

std::vector<float> row_vector(const Matrix& row_matrix) {
  const auto& s = row_matrix.storage();
  return std::vector<float>(s.begin(), s.end());
}

void accumulate_row(Matrix& row_matrix, const std::vector<float>& values) {
  AXONN_CHECK(row_matrix.size() == values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    row_matrix.data()[i] += values[i];
  }
}

constexpr float kNegInf = -1e9f;

}  // namespace

GPTModel::GPTModel(core::Grid4D& grid, const TinyGPTConfig& config)
    : grid_(grid), config_(config) {
  AXONN_CHECK_MSG(grid.shape().gx == 1 && grid.shape().gy == 1,
                  "GPTModel supports Z x data grids (the memorization-study "
                  "setup); X/Y tensor parallelism is exercised by "
                  "core::TensorParallelMLP");
  AXONN_CHECK(config.hidden % config.heads == 0);
  head_dim_ = config.hidden / config.heads;

  // Construction charges the weights tag; gradient tensors get their own
  // scope so the grads budget is visible separately from step one.
  const mem::ArenaScope weights_scope(mem::Tag::kWeights);
  const auto h = static_cast<std::size_t>(config.hidden);
  Rng rng(hash_combine(config.seed, 0xE3BEDull));
  tok_emb_ = Matrix::randn(static_cast<std::size_t>(config.vocab), h, rng,
                           0.0f, config.init_std);
  pos_emb_ = Matrix::randn(static_cast<std::size_t>(config.max_seq), h, rng,
                           0.0f, config.init_std);
  {
    const mem::ArenaScope grads_scope(mem::Tag::kGrads);
    tok_emb_grad_ = Matrix::zeros(tok_emb_.rows(), h);
    pos_emb_grad_ = Matrix::zeros(pos_emb_.rows(), h);
  }

  core::FCOptions fc;
  fc.mixed_precision = config.mixed_precision;
  fc.overlap_input_grad_all_reduce = config.overlap_collectives;
  fc.overlap_weight_grad_reduce_scatter = config.overlap_collectives;
  fc.kernel_tuning = config.kernel_tuning;
  fc.gemm_backend = config.gemm_backend;
  fc.init_std = config.init_std;
  fc.abft = config.abft;

  blocks_.resize(static_cast<std::size_t>(config.layers));
  for (int l = 0; l < config.layers; ++l) {
    Block& block = blocks_[static_cast<std::size_t>(l)];
    block.ln1_gamma = Matrix::full(1, h, 1.0f);
    block.ln1_beta = Matrix::zeros(1, h);
    block.ln2_gamma = Matrix::full(1, h, 1.0f);
    block.ln2_beta = Matrix::zeros(1, h);
    {
      const mem::ArenaScope grads_scope(mem::Tag::kGrads);
      block.ln1_gamma_grad = Matrix::zeros(1, h);
      block.ln1_beta_grad = Matrix::zeros(1, h);
      block.ln2_gamma_grad = Matrix::zeros(1, h);
      block.ln2_beta_grad = Matrix::zeros(1, h);
    }
    const std::uint64_t ls = hash_combine(config.seed, l);
    block.qkv = std::make_unique<core::TensorParallelFC>(
        grid, h, 3 * h, hash_combine(ls, 1), fc);
    block.attn_out = std::make_unique<core::TensorParallelFC>(
        grid, h, h, hash_combine(ls, 2), fc);
    block.mlp_up = std::make_unique<core::TensorParallelFC>(
        grid, h, 4 * h, hash_combine(ls, 3), fc);
    block.mlp_down = std::make_unique<core::TensorParallelFC>(
        grid, 4 * h, h, hash_combine(ls, 4), fc);
  }

  final_gamma_ = Matrix::full(1, h, 1.0f);
  final_beta_ = Matrix::zeros(1, h);
  lm_head_ = Matrix::randn(h, static_cast<std::size_t>(config.vocab), rng,
                           0.0f, config.init_std);
  {
    const mem::ArenaScope grads_scope(mem::Tag::kGrads);
    final_gamma_grad_ = Matrix::zeros(1, h);
    final_beta_grad_ = Matrix::zeros(1, h);
    lm_head_grad_ = Matrix::zeros(h, static_cast<std::size_t>(config.vocab));
  }
}

std::uint64_t GPTModel::parameter_count() const {
  const auto h = static_cast<std::uint64_t>(config_.hidden);
  const auto v = static_cast<std::uint64_t>(config_.vocab);
  const auto s = static_cast<std::uint64_t>(config_.max_seq);
  const std::uint64_t per_block = 12 * h * h + 4 * h;  // FCs + 2 layernorms
  return static_cast<std::uint64_t>(config_.layers) * per_block + v * h +
         s * h + 2 * h + h * v;
}

void GPTModel::register_params(Adam& adam) {
  adam.add_param(&tok_emb_, &tok_emb_grad_);
  adam.add_param(&pos_emb_, &pos_emb_grad_);
  for (Block& block : blocks_) {
    adam.add_param(&block.ln1_gamma, &block.ln1_gamma_grad);
    adam.add_param(&block.ln1_beta, &block.ln1_beta_grad);
    adam.add_param(&block.ln2_gamma, &block.ln2_gamma_grad);
    adam.add_param(&block.ln2_beta, &block.ln2_beta_grad);
    for (auto* fc : {block.qkv.get(), block.attn_out.get(), block.mlp_up.get(),
                     block.mlp_down.get()}) {
      adam.add_param(&fc->mutable_weight_shard(),
                     &fc->mutable_weight_grad_shard());
    }
  }
  adam.add_param(&final_gamma_, &final_gamma_grad_);
  adam.add_param(&final_beta_, &final_beta_grad_);
  adam.add_param(&lm_head_, &lm_head_grad_);
}

void GPTModel::for_each_parameter(const std::function<void(Matrix&)>& fn) {
  // Must mirror register_params() exactly: checkpoints serialize tensors in
  // this order and restore them positionally.
  fn(tok_emb_);
  fn(pos_emb_);
  for (Block& block : blocks_) {
    fn(block.ln1_gamma);
    fn(block.ln1_beta);
    fn(block.ln2_gamma);
    fn(block.ln2_beta);
    for (auto* fc : {block.qkv.get(), block.attn_out.get(), block.mlp_up.get(),
                     block.mlp_down.get()}) {
      fn(fc->mutable_weight_shard());
    }
  }
  fn(final_gamma_);
  fn(final_beta_);
  fn(lm_head_);
}

void GPTModel::for_each_gradient(const std::function<void(Matrix&)>& fn) {
  // Mirrors for_each_parameter(): same tensors, gradient side.
  fn(tok_emb_grad_);
  fn(pos_emb_grad_);
  for (Block& block : blocks_) {
    fn(block.ln1_gamma_grad);
    fn(block.ln1_beta_grad);
    fn(block.ln2_gamma_grad);
    fn(block.ln2_beta_grad);
    for (auto* fc : {block.qkv.get(), block.attn_out.get(), block.mlp_up.get(),
                     block.mlp_down.get()}) {
      fn(fc->mutable_weight_grad_shard());
    }
  }
  fn(final_gamma_grad_);
  fn(final_beta_grad_);
  fn(lm_head_grad_);
}

std::vector<GPTModel::ParamSpec> GPTModel::parameter_specs() const {
  // Must mirror register_params() exactly, like for_each_parameter().
  std::vector<ParamSpec> specs;
  const auto replicated = [&](const Matrix& m) {
    specs.push_back({false, m.rows(), m.cols()});
  };
  replicated(tok_emb_);
  replicated(pos_emb_);
  for (const Block& block : blocks_) {
    replicated(block.ln1_gamma);
    replicated(block.ln1_beta);
    replicated(block.ln2_gamma);
    replicated(block.ln2_beta);
    for (const auto* fc : {block.qkv.get(), block.attn_out.get(),
                           block.mlp_up.get(), block.mlp_down.get()}) {
      // gx == gy == 1 (the supported grid family): the shard is a row chunk
      // of the full (in x out) weight, partitioned over Z.
      specs.push_back({true, fc->in_features(), fc->out_features()});
    }
  }
  replicated(final_gamma_);
  replicated(final_beta_);
  replicated(lm_head_);
  return specs;
}

Matrix GPTModel::embed(const std::vector<TokenSeq>& sequences,
                       std::size_t input_len) {
  const auto h = static_cast<std::size_t>(config_.hidden);
  Matrix x(sequences.size() * input_len, h);
  for (std::size_t s = 0; s < sequences.size(); ++s) {
    AXONN_CHECK_MSG(sequences[s].size() >= input_len,
                    "sequence shorter than requested input length");
    AXONN_CHECK_MSG(input_len <= static_cast<std::size_t>(config_.max_seq),
                    "sequence longer than max_seq");
    for (std::size_t i = 0; i < input_len; ++i) {
      const auto token = static_cast<std::size_t>(sequences[s][i]);
      AXONN_CHECK(token < tok_emb_.rows());
      float* row = x.row(s * input_len + i);
      const float* te = tok_emb_.row(token);
      const float* pe = pos_emb_.row(i);
      for (std::size_t c = 0; c < h; ++c) {
        row[c] = te[c] + pe[c];
      }
    }
  }
  return x;
}

Matrix GPTModel::attention_forward(Block& block, const Matrix& qkv_out,
                                   std::size_t batch, std::size_t input_len,
                                   BlockCache* cache) {
  (void)block;
  obs::SpanGuard span(obs::kCatCompute, "attn_fwd");
  const auto h = static_cast<std::size_t>(config_.hidden);
  const auto dh = static_cast<std::size_t>(head_dim_);
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  Matrix concat(batch * input_len, h);
  if (cache) {
    cache->head_p.assign(batch * static_cast<std::size_t>(config_.heads),
                         Matrix());
  }
  for (std::size_t s = 0; s < batch; ++s) {
    const std::size_t base = s * input_len;
    for (int head = 0; head < config_.heads; ++head) {
      const std::size_t q_off = static_cast<std::size_t>(head) * dh;
      const std::size_t k_off = h + q_off;
      const std::size_t v_off = 2 * h + q_off;
      // Scores with causal mask, then row softmax.
      Matrix scores(input_len, input_len);
      for (std::size_t i = 0; i < input_len; ++i) {
        const float* qi = qkv_out.row(base + i) + q_off;
        for (std::size_t j = 0; j < input_len; ++j) {
          if (j > i) {
            scores(i, j) = kNegInf;
            continue;
          }
          const float* kj = qkv_out.row(base + j) + k_off;
          float dot = 0.0f;
          for (std::size_t c = 0; c < dh; ++c) dot += qi[c] * kj[c];
          scores(i, j) = dot * inv_sqrt;
        }
      }
      Matrix p = softmax_rows(scores);
      // ctx = P x V.
      for (std::size_t i = 0; i < input_len; ++i) {
        float* out = concat.row(base + i) + q_off;
        std::fill(out, out + dh, 0.0f);
        for (std::size_t j = 0; j <= i; ++j) {
          const float pij = p(i, j);
          if (pij == 0.0f) continue;
          const float* vj = qkv_out.row(base + j) + v_off;
          for (std::size_t c = 0; c < dh; ++c) out[c] += pij * vj[c];
        }
      }
      if (cache) {
        cache->head_p[s * static_cast<std::size_t>(config_.heads) +
                      static_cast<std::size_t>(head)] = std::move(p);
      }
    }
  }
  return concat;
}

Matrix GPTModel::attention_backward(Block& block, const BlockCache& cache,
                                    const Matrix& d_concat, std::size_t batch,
                                    std::size_t input_len) {
  (void)block;
  obs::SpanGuard span(obs::kCatCompute, "attn_bwd");
  const auto h = static_cast<std::size_t>(config_.hidden);
  const auto dh = static_cast<std::size_t>(head_dim_);
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  const Matrix& qkv_out = cache.qkv_out;
  Matrix d_qkv(batch * input_len, 3 * h);
  for (std::size_t s = 0; s < batch; ++s) {
    const std::size_t base = s * input_len;
    for (int head = 0; head < config_.heads; ++head) {
      const std::size_t q_off = static_cast<std::size_t>(head) * dh;
      const std::size_t k_off = h + q_off;
      const std::size_t v_off = 2 * h + q_off;
      const Matrix& p =
          cache.head_p[s * static_cast<std::size_t>(config_.heads) +
                       static_cast<std::size_t>(head)];

      // dP(i,j) = dctx_i . V_j ; dV_j = sum_i P(i,j) dctx_i.
      Matrix dp(input_len, input_len);
      for (std::size_t i = 0; i < input_len; ++i) {
        const float* dctx = d_concat.row(base + i) + q_off;
        for (std::size_t j = 0; j <= i; ++j) {
          const float* vj = qkv_out.row(base + j) + v_off;
          float dot = 0.0f;
          for (std::size_t c = 0; c < dh; ++c) dot += dctx[c] * vj[c];
          dp(i, j) = dot;
          const float pij = p(i, j);
          float* dv = d_qkv.row(base + j) + v_off;
          for (std::size_t c = 0; c < dh; ++c) dv[c] += pij * dctx[c];
        }
      }
      const Matrix ds = softmax_rows_backward(dp, p);
      // dQ_i = inv_sqrt * sum_j dS(i,j) K_j ; dK_j = inv_sqrt * sum_i
      // dS(i,j) Q_i.
      for (std::size_t i = 0; i < input_len; ++i) {
        float* dq = d_qkv.row(base + i) + q_off;
        const float* qi = qkv_out.row(base + i) + q_off;
        for (std::size_t j = 0; j <= i; ++j) {
          const float dsij = ds(i, j) * inv_sqrt;
          if (dsij == 0.0f) continue;
          const float* kj = qkv_out.row(base + j) + k_off;
          float* dk = d_qkv.row(base + j) + k_off;
          for (std::size_t c = 0; c < dh; ++c) {
            dq[c] += dsij * kj[c];
            dk[c] += dsij * qi[c];
          }
        }
      }
    }
  }
  return d_qkv;
}

Matrix GPTModel::forward_blocks(const Matrix& x0, std::size_t batch,
                                std::size_t input_len,
                                std::vector<BlockCache>* caches) {
  if (caches) caches->assign(blocks_.size(), BlockCache());
  if (config_.overlap_collectives) {
    // OAG (§V-D): enqueue every weight all-gather in topological order
    // before compute starts; the progress thread streams them while the
    // compute below proceeds.
    for (Block& block : blocks_) {
      block.qkv->begin_weight_gather();
      block.attn_out->begin_weight_gather();
      block.mlp_up->begin_weight_gather();
      block.mlp_down->begin_weight_gather();
    }
  }
  Matrix x = x0;
  for (std::size_t l = 0; l < blocks_.size(); ++l) {
    Block& block = blocks_[l];
    BlockCache* cache = caches ? &(*caches)[l] : nullptr;
    BlockCache scratch;
    BlockCache& c = cache ? *cache : scratch;

    c.block_input = x;
    c.ln1_out = layernorm(x, row_vector(block.ln1_gamma),
                          row_vector(block.ln1_beta), c.ln1);
    c.qkv_out = block.qkv->forward(c.ln1_out);
    c.attn_concat =
        attention_forward(block, c.qkv_out, batch, input_len, cache ? &c : &c);
    Matrix attn_proj = block.attn_out->forward(c.attn_concat);
    c.after_attn = x;
    c.after_attn.add_inplace(attn_proj);
    c.ln2_out = layernorm(c.after_attn, row_vector(block.ln2_gamma),
                          row_vector(block.ln2_beta), c.ln2);
    c.mlp_pre_gelu = block.mlp_up->forward(c.ln2_out);
    const Matrix mlp_act = gelu(c.mlp_pre_gelu);
    Matrix mlp_out = block.mlp_down->forward(mlp_act);
    x = c.after_attn;
    x.add_inplace(mlp_out);
  }
  return x;
}

Matrix GPTModel::forward_logits(const std::vector<TokenSeq>& sequences,
                                std::size_t input_len,
                                std::vector<BlockCache>* caches, Matrix* x0_out,
                                LayerNormCache* final_ln_cache,
                                Matrix* final_in, Matrix* final_out) {
  AXONN_CHECK(!sequences.empty());
  // All forward-pass tensors are activations unless an inner scope (packed
  // panels, comm staging) says otherwise. Covers generate/probe callers that
  // bypass train_step.
  const mem::ArenaScope scope(mem::Tag::kActivations);
  const Matrix x0 = embed(sequences, input_len);
  if (x0_out) *x0_out = x0;
  Matrix x = forward_blocks(x0, sequences.size(), input_len, caches);
  if (final_in) *final_in = x;
  LayerNormCache scratch;
  LayerNormCache& flc = final_ln_cache ? *final_ln_cache : scratch;
  Matrix normed = layernorm(x, row_vector(final_gamma_),
                            row_vector(final_beta_), flc);
  if (final_out) *final_out = normed;
  return config_.mixed_precision ? gemm_bf16(GemmMode::kNN, normed, lm_head_)
                                 : gemm(GemmMode::kNN, normed, lm_head_);
}

float GPTModel::train_step(const std::vector<TokenSeq>& sequences,
                           const GoldfishConfig* goldfish) {
  // One flight-recorder iteration window per training step (Fig. 5). The
  // whole step runs under the activations tag: forward caches, backward d_*
  // temporaries, attention probs — anything a longer-lived subsystem owns
  // re-tags itself in an inner scope.
  obs::IterationScope iteration;
  const mem::ArenaScope scope(mem::Tag::kActivations);
  AXONN_CHECK(!sequences.empty());
  const std::size_t full_len = sequences.front().size();
  for (const auto& seq : sequences) {
    AXONN_CHECK_MSG(seq.size() == full_len,
                    "train_step expects equal-length sequences");
  }
  const std::size_t input_len = full_len - 1;
  const std::size_t batch = sequences.size();

  // Weights may have changed since the last gather (optimizer step through
  // Adam's retained pointers): refresh the caches.
  for (Block& block : blocks_) {
    for (auto* fc : {block.qkv.get(), block.attn_out.get(), block.mlp_up.get(),
                     block.mlp_down.get()}) {
      fc->invalidate_weight_cache();
    }
  }

  std::vector<BlockCache> caches;
  Matrix x0, final_in, final_out;
  LayerNormCache final_ln;
  const Matrix logits = forward_logits(sequences, input_len, &caches, &x0,
                                       &final_ln, &final_in, &final_out);

  // Targets and (optional) goldfish mask over next-token positions.
  std::vector<std::int32_t> targets(batch * input_len);
  std::vector<std::uint8_t> mask;
  if (goldfish) mask.resize(batch * input_len, 1);
  for (std::size_t s = 0; s < batch; ++s) {
    std::vector<std::uint8_t> doc_mask;
    if (goldfish) doc_mask = goldfish_mask(sequences[s], *goldfish);
    for (std::size_t i = 0; i < input_len; ++i) {
      targets[s * input_len + i] = sequences[s][i + 1];
      if (goldfish) {
        mask[s * input_len + i] = doc_mask[i + 1];
      }
    }
  }

  Matrix dlogits;
  const float loss = cross_entropy(logits, targets, mask, dlogits);

  // ---- backward -----------------------------------------------------------
  // LM head.
  Matrix d_normed = gemm(GemmMode::kNT, dlogits, lm_head_);
  lm_head_grad_.add_inplace(gemm(GemmMode::kTN, final_out, dlogits));
  std::vector<float> dgamma, dbeta;
  Matrix dx = layernorm_backward(d_normed, final_ln,
                                 row_vector(final_gamma_), dgamma, dbeta);
  accumulate_row(final_gamma_grad_, dgamma);
  accumulate_row(final_beta_grad_, dbeta);

  // Transformer blocks in reverse.
  for (std::size_t l = blocks_.size(); l-- > 0;) {
    Block& block = blocks_[l];
    BlockCache& c = caches[l];

    Matrix d_after_attn = dx;  // residual branch
    // MLP branch.
    Matrix d_mlp_act = block.mlp_down->backward(dx);
    Matrix d_mlp_pre = gelu_backward(d_mlp_act, c.mlp_pre_gelu);
    Matrix d_ln2_out = block.mlp_up->backward(d_mlp_pre);
    std::vector<float> dg2, db2;
    Matrix d_ln2_in = layernorm_backward(d_ln2_out, c.ln2,
                                         row_vector(block.ln2_gamma), dg2, db2);
    accumulate_row(block.ln2_gamma_grad, dg2);
    accumulate_row(block.ln2_beta_grad, db2);
    d_after_attn.add_inplace(d_ln2_in);

    // Attention branch.
    Matrix d_concat = block.attn_out->backward(d_after_attn);
    Matrix d_qkv = attention_backward(block, c, d_concat, batch, input_len);
    Matrix d_ln1_out = block.qkv->backward(d_qkv);
    std::vector<float> dg1, db1;
    Matrix d_ln1_in = layernorm_backward(d_ln1_out, c.ln1,
                                         row_vector(block.ln1_gamma), dg1, db1);
    accumulate_row(block.ln1_gamma_grad, dg1);
    accumulate_row(block.ln1_beta_grad, db1);

    dx = d_after_attn;
    dx.add_inplace(d_ln1_in);
  }

  // Embedding scatter-add.
  for (std::size_t s = 0; s < batch; ++s) {
    for (std::size_t i = 0; i < input_len; ++i) {
      const auto token = static_cast<std::size_t>(sequences[s][i]);
      const float* src = dx.row(s * input_len + i);
      float* te = tok_emb_grad_.row(token);
      float* pe = pos_emb_grad_.row(i);
      for (std::size_t col = 0; col < tok_emb_.cols(); ++col) {
        te[col] += src[col];
        pe[col] += src[col];
      }
    }
  }

  sync_gradients();
  return loss;
}

float GPTModel::evaluate_loss(const std::vector<TokenSeq>& sequences) {
  AXONN_CHECK(!sequences.empty());
  for (Block& block : blocks_) {
    for (auto* fc : {block.qkv.get(), block.attn_out.get(), block.mlp_up.get(),
                     block.mlp_down.get()}) {
      fc->invalidate_weight_cache();
    }
  }
  const std::size_t input_len = sequences.front().size() - 1;
  const Matrix logits =
      forward_logits(sequences, input_len, nullptr, nullptr, nullptr, nullptr,
                     nullptr);
  std::vector<std::int32_t> targets(sequences.size() * input_len);
  for (std::size_t s = 0; s < sequences.size(); ++s) {
    for (std::size_t i = 0; i < input_len; ++i) {
      targets[s * input_len + i] = sequences[s][i + 1];
    }
  }
  return cross_entropy_loss(logits, targets, {});
}

TokenSeq GPTModel::greedy_generate(const TokenSeq& prompt, int new_tokens) {
  AXONN_CHECK(!prompt.empty());
  for (Block& block : blocks_) {
    for (auto* fc : {block.qkv.get(), block.attn_out.get(), block.mlp_up.get(),
                     block.mlp_down.get()}) {
      fc->invalidate_weight_cache();
    }
  }
  TokenSeq sequence = prompt;
  for (int step = 0; step < new_tokens; ++step) {
    AXONN_CHECK(sequence.size() <= static_cast<std::size_t>(config_.max_seq));
    const Matrix logits = forward_logits({sequence}, sequence.size(), nullptr,
                                         nullptr, nullptr, nullptr, nullptr);
    const float* last = logits.row(logits.rows() - 1);
    std::int32_t best = 0;
    for (std::size_t v = 1; v < logits.cols(); ++v) {
      if (last[v] > last[static_cast<std::size_t>(best)]) {
        best = static_cast<std::int32_t>(v);
      }
    }
    sequence.push_back(best);
  }
  return sequence;
}

double GPTModel::probe_accuracy(const TokenSeq& document, int probe_tokens) {
  AXONN_CHECK(probe_tokens > 0 &&
              document.size() > static_cast<std::size_t>(probe_tokens));
  for (Block& block : blocks_) {
    for (auto* fc : {block.qkv.get(), block.attn_out.get(), block.mlp_up.get(),
                     block.mlp_down.get()}) {
      fc->invalidate_weight_cache();
    }
  }
  const std::size_t input_len = document.size() - 1;
  const Matrix logits = forward_logits({document}, input_len, nullptr, nullptr,
                                       nullptr, nullptr, nullptr);
  const std::size_t probe_begin =
      document.size() - static_cast<std::size_t>(probe_tokens);
  int correct = 0;
  for (std::size_t pos = probe_begin; pos < document.size(); ++pos) {
    const float* row = logits.row(pos - 1);
    std::size_t best = 0;
    for (std::size_t v = 1; v < logits.cols(); ++v) {
      if (row[v] > row[best]) best = v;
    }
    if (static_cast<std::int32_t>(best) == document[pos]) ++correct;
  }
  return static_cast<double>(correct) / probe_tokens;
}

bool GPTModel::exact_match(const TokenSeq& document, int probe_tokens) {
  AXONN_CHECK(probe_tokens > 0 &&
              document.size() > static_cast<std::size_t>(probe_tokens));
  // Greedy generation reproduces the document iff, at every probe position,
  // the argmax given the *correct* prefix is the true next token (if all
  // argmaxes are correct, greedy decoding sees exactly the true prefix at
  // every step). One teacher-forced forward pass therefore decides the
  // §VIII-B exact-match event without token-by-token generation.
  for (Block& block : blocks_) {
    for (auto* fc : {block.qkv.get(), block.attn_out.get(), block.mlp_up.get(),
                     block.mlp_down.get()}) {
      fc->invalidate_weight_cache();
    }
  }
  const std::size_t input_len = document.size() - 1;
  const Matrix logits = forward_logits({document}, input_len, nullptr, nullptr,
                                       nullptr, nullptr, nullptr);
  const std::size_t probe_begin =
      document.size() - static_cast<std::size_t>(probe_tokens);
  for (std::size_t pos = probe_begin; pos < document.size(); ++pos) {
    const float* row = logits.row(pos - 1);  // logits[i] predicts token i+1
    std::size_t best = 0;
    for (std::size_t v = 1; v < logits.cols(); ++v) {
      if (row[v] > row[best]) best = v;
    }
    if (static_cast<std::int32_t>(best) != document[pos]) return false;
  }
  return true;
}

void GPTModel::zero_grad() {
  tok_emb_grad_.set_zero();
  pos_emb_grad_.set_zero();
  for (Block& block : blocks_) {
    block.ln1_gamma_grad.set_zero();
    block.ln1_beta_grad.set_zero();
    block.ln2_gamma_grad.set_zero();
    block.ln2_beta_grad.set_zero();
    block.qkv->zero_grad();
    block.attn_out->zero_grad();
    block.mlp_up->zero_grad();
    block.mlp_down->zero_grad();
  }
  final_gamma_grad_.set_zero();
  final_beta_grad_.set_zero();
  lm_head_grad_.set_zero();
}

void GPTModel::all_reduce_replicated(Matrix& grad) {
  if (grid_.shape().gz > 1) {
    grid_.z_comm().all_reduce(std::span<float>(grad.storage()),
                              comm::ReduceOp::kSum);
  }
  if (grid_.shape().gdata > 1) {
    grid_.data_comm().all_reduce(std::span<float>(grad.storage()),
                                 comm::ReduceOp::kSum);
  }
}

void GPTModel::sync_gradients() {
  const int replicas = grid_.shape().gz * grid_.shape().gdata;
  const float inv = 1.0f / static_cast<float>(replicas);

  for (Block& block : blocks_) {
    for (auto* fc : {block.qkv.get(), block.attn_out.get(), block.mlp_up.get(),
                     block.mlp_down.get()}) {
      fc->finish_gradients();
      Matrix& grad = fc->mutable_weight_grad_shard();
      if (grid_.shape().gdata > 1) {
        grid_.data_comm().all_reduce(std::span<float>(grad.storage()),
                                     comm::ReduceOp::kSum);
      }
      // The Z reduce-scatter already summed over the Z data shards.
      grad.scale_inplace(inv);
    }
    all_reduce_replicated(block.ln1_gamma_grad);
    all_reduce_replicated(block.ln1_beta_grad);
    all_reduce_replicated(block.ln2_gamma_grad);
    all_reduce_replicated(block.ln2_beta_grad);
    block.ln1_gamma_grad.scale_inplace(inv);
    block.ln1_beta_grad.scale_inplace(inv);
    block.ln2_gamma_grad.scale_inplace(inv);
    block.ln2_beta_grad.scale_inplace(inv);
  }
  all_reduce_replicated(tok_emb_grad_);
  all_reduce_replicated(pos_emb_grad_);
  all_reduce_replicated(final_gamma_grad_);
  all_reduce_replicated(final_beta_grad_);
  all_reduce_replicated(lm_head_grad_);
  tok_emb_grad_.scale_inplace(inv);
  pos_emb_grad_.scale_inplace(inv);
  final_gamma_grad_.scale_inplace(inv);
  final_beta_grad_.scale_inplace(inv);
  lm_head_grad_.scale_inplace(inv);
}

}  // namespace axonn::train
