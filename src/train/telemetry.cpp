#include "axonn/train/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <span>
#include <vector>

#include "axonn/base/arena.hpp"
#include "axonn/core/grid4d.hpp"
#include "axonn/integrity/integrity.hpp"
#include "axonn/tensor/gemm.hpp"

namespace axonn::train {

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::uint64_t StepTelemetryCollector::wire_bytes() const {
  const comm::CommStats stats =
      grid_ ? grid_->total_stats() : world_.stats();
  return stats.wire_bytes_sent + stats.crc_bytes_sent;
}

void StepTelemetryCollector::begin_step() {
  if (!active()) {
    open_ = false;
    return;
  }
  open_ = true;
  t0_s_ = steady_seconds();
  stall0_s_ = obs::metrics::thread_stall_seconds();
  flops0_ = axonn::gemm_dispatch_flops();
  wire0_ = wire_bytes();
  // Process-global at thread-rank scale: every rank reads the same counter,
  // so the per-rank delta is really "events seen by the process during my
  // step window". Good enough to localize a step; the argmax identifies the
  // straggler fields, not this one.
  integrity0_ = integrity::counters().snapshot().sdc_detected;
}

obs::StepTelemetry StepTelemetryCollector::end_step(std::uint64_t step,
                                                    float loss) {
  if (!active() || !open_) return {};
  open_ = false;

  const double wall_s = steady_seconds() - t0_s_;
  const double stall_s = obs::metrics::thread_stall_seconds() - stall0_s_;
  const double exposed_s = std::min(stall_s, wall_s);
  const double self_s = wall_s - exposed_s;
  const double gflop =
      static_cast<double>(axonn::gemm_dispatch_flops() - flops0_) * 1e-9;
  const double wire_mb = static_cast<double>(wire_bytes() - wire0_) * 1e-6;
  const double integrity_events = static_cast<double>(
      integrity::counters().snapshot().sdc_detected - integrity0_);

  const int world = world_.size();
  const int rank = world_.rank();
  std::vector<float> fold(obs::fold_size(world), 0.0f);
  auto slot = [&](obs::StepField f) -> float& {
    return fold[static_cast<std::size_t>(f) * static_cast<std::size_t>(world) +
                static_cast<std::size_t>(rank)];
  };
  slot(obs::StepField::kWallS) = static_cast<float>(wall_s);
  slot(obs::StepField::kExposedCommS) = static_cast<float>(exposed_s);
  slot(obs::StepField::kSelfS) = static_cast<float>(self_s);
  slot(obs::StepField::kGemmGflop) = static_cast<float>(gflop);
  slot(obs::StepField::kWireMB) = static_cast<float>(wire_mb);
  slot(obs::StepField::kIntegrityEvents) = static_cast<float>(integrity_events);
  // Process-global like the integrity counter: the arena's total HWM since
  // the last reset_high_water_marks(), so operators see peak footprint per
  // step window without a per-rank attribution (ranks are threads here).
  slot(obs::StepField::kMemHwmMB) =
      static_cast<float>(static_cast<double>(mem::total_hwm_bytes()) * 1e-6);
  slot(obs::StepField::kLoss) = loss;

  // The fold: one fixed-layout all-reduce, every slot owned by exactly one
  // rank, kSum — afterwards all ranks hold the exact per-rank vectors.
  world_.all_reduce(std::span<float>(fold.data(), fold.size()),
                    comm::ReduceOp::kSum);
  return obs::fold_to_telemetry(step, world, fold);
}

}  // namespace axonn::train
