#include "axonn/train/corpus.hpp"

#include "axonn/base/error.hpp"

namespace axonn::train {

BucketCorpus::BucketCorpus(const CorpusConfig& config) : config_(config) {
  AXONN_CHECK(config.vocab >= 4 && config.doc_tokens >= 8);
  AXONN_CHECK(config.num_buckets >= 1 && config.docs_per_bucket >= 1);

  Rng rng(config.seed);
  // A fixed bigram "grammar" shared by the background stream.
  bigram_next_.resize(static_cast<std::size_t>(config.vocab));
  for (auto& next : bigram_next_) {
    next = static_cast<std::int32_t>(rng.uniform_int(config.vocab));
  }

  buckets_.resize(static_cast<std::size_t>(config.num_buckets));
  for (int b = 0; b < config.num_buckets; ++b) {
    for (int d = 0; d < config.docs_per_bucket; ++d) {
      // Probe documents follow the same bigram "language" as the background
      // stream (as Wikipedia articles follow English): a pretrained model
      // predicts the structured majority of tokens, and reproducing a whole
      // document verbatim additionally requires memorizing its random
      // deviations. This mirrors the paper's natural-text probes and gives
      // greedy decoding a small non-zero base rate on held-out documents.
      Rng doc_rng(hash_combine(hash_combine(config.seed, 0xD0C5ULL + b), d));
      TokenSeq doc;
      do {
        doc = chain_doc(doc_rng, config.noise_probability);
      } while (tail_deviations(doc) < config.min_tail_deviations);
      buckets_[static_cast<std::size_t>(b)].push_back(std::move(doc));
    }
  }
}

const std::vector<TokenSeq>& BucketCorpus::bucket(int b) const {
  AXONN_CHECK(b >= 0 && b < config_.num_buckets);
  return buckets_[static_cast<std::size_t>(b)];
}

std::vector<int> BucketCorpus::epochs_per_bucket() const {
  std::vector<int> epochs(static_cast<std::size_t>(config_.num_buckets), 0);
  const int schedule[4] = {0, 1, 4, 6};
  for (int b = 0; b < config_.num_buckets && b < 4; ++b) {
    epochs[static_cast<std::size_t>(b)] = schedule[b];
  }
  return epochs;
}

TokenSeq BucketCorpus::background_doc(std::uint64_t index) const {
  Rng rng(hash_combine(config_.seed, 0xBACC0000ULL + index));
  return chain_doc(rng, config_.noise_probability);
}

int BucketCorpus::tail_deviations(const TokenSeq& doc) const {
  const auto n = doc.size();
  const auto tail = static_cast<std::size_t>(config_.tail_tokens);
  const std::size_t begin = n > tail ? n - tail : 1;
  int deviations = 0;
  for (std::size_t i = begin; i < n; ++i) {
    if (doc[i] != bigram_next_[static_cast<std::size_t>(doc[i - 1])]) {
      ++deviations;
    }
  }
  return deviations;
}

TokenSeq BucketCorpus::chain_doc(Rng& rng, double noise_probability) const {
  TokenSeq doc(static_cast<std::size_t>(config_.doc_tokens));
  std::int32_t prev = static_cast<std::int32_t>(rng.uniform_int(config_.vocab));
  for (auto& token : doc) {
    // Follow the bigram grammar except with probability noise_probability:
    // learnable structure without being trivially predictable.
    if (rng.uniform() < noise_probability) {
      token = static_cast<std::int32_t>(rng.uniform_int(config_.vocab));
    } else {
      token = bigram_next_[static_cast<std::size_t>(prev)];
    }
    prev = token;
  }
  return doc;
}

bool sequences_equal(const TokenSeq& a, const TokenSeq& b) {
  return a == b;
}

}  // namespace axonn::train
