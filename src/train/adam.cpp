#include "axonn/train/adam.hpp"

#include "axonn/base/arena.hpp"
#include "axonn/base/trace.hpp"

#include <algorithm>
#include <cmath>

namespace axonn::train {

std::size_t Adam::add_param(Matrix* weight, Matrix* grad) {
  AXONN_CHECK(weight != nullptr && grad != nullptr);
  AXONN_CHECK_MSG(weight->rows() == grad->rows() &&
                      weight->cols() == grad->cols(),
                  "weight and gradient shapes must match");
  // The two moment tensors are the optimizer-state memory budget.
  const mem::ArenaScope scope(mem::Tag::kAdam);
  Slot slot{weight, grad, Matrix::zeros(weight->rows(), weight->cols()),
            Matrix::zeros(weight->rows(), weight->cols())};
  params_.push_back(std::move(slot));
  return params_.size() - 1;
}

void Adam::step() {
  obs::SpanGuard span(obs::kCatCompute, "optimizer_step");
  ++t_;
  const float bias1 = 1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(config_.beta2, static_cast<float>(t_));
  for (Slot& slot : params_) {
    float* w = slot.weight->data();
    const float* g = slot.grad->data();
    float* m = slot.m.data();
    float* v = slot.v.data();
    const std::size_t n = slot.weight->size();
    for (std::size_t i = 0; i < n; ++i) {
      float grad = g[i];
      if (config_.grad_clip > 0.0f) {
        grad = std::clamp(grad, -config_.grad_clip, config_.grad_clip);
      }
      if (config_.weight_decay > 0.0f) {
        grad += config_.weight_decay * w[i];
      }
      m[i] = config_.beta1 * m[i] + (1.0f - config_.beta1) * grad;
      v[i] = config_.beta2 * v[i] + (1.0f - config_.beta2) * grad * grad;
      const float m_hat = m[i] / bias1;
      const float v_hat = v[i] / bias2;
      w[i] -= config_.lr * m_hat / (std::sqrt(v_hat) + config_.eps);
    }
  }
}

std::size_t Adam::total_parameter_count() const {
  std::size_t total = 0;
  for (const Slot& slot : params_) total += slot.weight->size();
  return total;
}

}  // namespace axonn::train
