#include "axonn/train/replica.hpp"

#include <algorithm>
#include <array>

#include "axonn/base/error.hpp"
#include "axonn/base/partition.hpp"

namespace axonn::train {

ReplicaStore::ReplicaStore(int slots) { reset(slots); }

int ReplicaStore::slots() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(history_.size());
}

void ReplicaStore::reset(int slots) {
  AXONN_CHECK_MSG(slots >= 1, "ReplicaStore needs at least one slot");
  std::lock_guard<std::mutex> lock(mutex_);
  history_.assign(static_cast<std::size_t>(slots), {});
}

void ReplicaStore::push(int slot, std::uint64_t step,
                        std::vector<std::byte> blob) {
  std::lock_guard<std::mutex> lock(mutex_);
  AXONN_CHECK(slot >= 0 && slot < static_cast<int>(history_.size()));
  const mem::ArenaScope scope(mem::Tag::kJournal);
  auto& h = history_[static_cast<std::size_t>(slot)];
  if (!h.empty() && h.back().step == step) {
    // Re-push of the same step: replace.
    h.back().bytes.assign(blob.begin(), blob.end());
  } else {
    h.push_back({step, {blob.begin(), blob.end()}});
    while (h.size() > 2) h.pop_front();
  }
  ++pushes_;
}

std::optional<std::uint64_t> ReplicaStore::common_step() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::optional<std::uint64_t> common;
  for (const auto& h : history_) {
    if (h.empty()) return std::nullopt;
    const std::uint64_t newest = h.back().step;
    common = common ? std::min(*common, newest) : newest;
  }
  for (const auto& h : history_) {
    const bool holds = std::any_of(h.begin(), h.end(), [&](const Entry& e) {
      return e.step == *common;
    });
    if (!holds) return std::nullopt;  // more than one push wave torn
  }
  return common;
}

bool ReplicaStore::has(int slot, std::uint64_t step) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (slot < 0 || slot >= static_cast<int>(history_.size())) return false;
  const auto& h = history_[static_cast<std::size_t>(slot)];
  return std::any_of(h.begin(), h.end(),
                     [&](const Entry& e) { return e.step == step; });
}

std::vector<std::byte> ReplicaStore::blob(int slot, std::uint64_t step) const {
  std::lock_guard<std::mutex> lock(mutex_);
  AXONN_CHECK(slot >= 0 && slot < static_cast<int>(history_.size()));
  const auto& h = history_[static_cast<std::size_t>(slot)];
  for (const Entry& e : h) {
    if (e.step == step) return {e.bytes.begin(), e.bytes.end()};
  }
  throw CheckpointError("replica store holds no blob for slot " +
                        std::to_string(slot) + " at step " +
                        std::to_string(step));
}

std::uint64_t ReplicaStore::pushes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pushes_;
}

// ---------------------------------------------------------------------------
// Shrink restore
// ---------------------------------------------------------------------------

void reshard_restore(const std::vector<std::vector<std::byte>>& old_blobs,
                     GPTModel& model, Adam& adam, TrainCursor& cursor,
                     int new_rank, int new_world) {
  const int old_world = static_cast<int>(old_blobs.size());
  AXONN_CHECK_MSG(old_world >= 1, "reshard_restore needs at least one blob");
  AXONN_CHECK(new_world >= 1 && new_rank >= 0 && new_rank < new_world);

  std::vector<CheckpointReader> readers;
  readers.reserve(static_cast<std::size_t>(old_world));
  for (const auto& blob : old_blobs) {
    readers.emplace_back(std::span<const std::byte>(blob));
  }
  for (int s = 0; s < old_world; ++s) {
    ByteReader meta(readers[static_cast<std::size_t>(s)].section("meta"));
    const std::uint32_t saved_rank = meta.get_u32();
    const std::uint32_t saved_world = meta.get_u32();
    if (saved_rank != static_cast<std::uint32_t>(s) ||
        saved_world != static_cast<std::uint32_t>(old_world)) {
      throw CheckpointError(
          "reshard_restore: blob " + std::to_string(s) + " was written by " +
          std::to_string(saved_rank) + "/" + std::to_string(saved_world) +
          ", expected " + std::to_string(s) + "/" + std::to_string(old_world));
    }
  }

  const std::vector<GPTModel::ParamSpec> specs = model.parameter_specs();
  std::vector<Matrix*> params;
  model.for_each_parameter([&](Matrix& m) { params.push_back(&m); });
  AXONN_CHECK(params.size() == specs.size());
  AXONN_CHECK(adam.num_params() == specs.size());

  // One cursor per old slot per stream, advanced over the specs in lockstep
  // (every slot serialized the same parameter sequence).
  std::vector<ByteReader> w_in, m_in, v_in;
  for (int s = 0; s < old_world; ++s) {
    const auto& r = readers[static_cast<std::size_t>(s)];
    w_in.emplace_back(r.section("weights"));
    m_in.emplace_back(r.section("adam.m"));
    v_in.emplace_back(r.section("adam.v"));
  }

  std::vector<float> scratch;
  const auto restore_param = [&](std::vector<ByteReader>& stream,
                                 const GPTModel::ParamSpec& spec,
                                 std::span<float> dst) {
    if (!spec.z_sharded) {
      // Replicated: every old slot stored an identical full copy — take
      // slot 0's, drain the rest to keep the streams aligned.
      const std::size_t n = spec.full_rows * spec.cols;
      if (dst.size() != n) {
        throw CheckpointError("reshard_restore: replicated tensor shape "
                              "mismatch with the live model");
      }
      stream[0].get_floats(dst);
      scratch.resize(n);
      for (int s = 1; s < old_world; ++s) {
        stream[static_cast<std::size_t>(s)].get_floats(scratch);
      }
      return;
    }
    // Z-sharded: reassemble the full tensor from the old row chunks, then
    // cut this rank's new chunk. Row ownership on both sides follows
    // chunk_range, so the assembly is exact (no interpolation, bit-identical
    // data movement).
    std::vector<float> full(spec.full_rows * spec.cols);
    for (int s = 0; s < old_world; ++s) {
      const Range rows = chunk_range(spec.full_rows,
                                     static_cast<std::size_t>(old_world),
                                     static_cast<std::size_t>(s));
      stream[static_cast<std::size_t>(s)].get_floats(
          std::span<float>(full.data() + rows.begin * spec.cols,
                           rows.size() * spec.cols));
    }
    const Range mine = chunk_range(spec.full_rows,
                                   static_cast<std::size_t>(new_world),
                                   static_cast<std::size_t>(new_rank));
    if (dst.size() != mine.size() * spec.cols) {
      throw CheckpointError("reshard_restore: re-cut shard shape mismatch "
                            "with the live model");
    }
    std::copy_n(full.data() + mine.begin * spec.cols, dst.size(),
                dst.begin());
  };

  for (std::size_t i = 0; i < specs.size(); ++i) {
    restore_param(w_in, specs[i], params[i]->storage());
    restore_param(m_in, specs[i], adam.moment1(i).storage());
    restore_param(v_in, specs[i], adam.moment2(i).storage());
  }
  for (int s = 0; s < old_world; ++s) {
    if (w_in[static_cast<std::size_t>(s)].remaining() != 0 ||
        m_in[static_cast<std::size_t>(s)].remaining() != 0 ||
        v_in[static_cast<std::size_t>(s)].remaining() != 0) {
      throw CheckpointError("reshard_restore: blob " + std::to_string(s) +
                            " has trailing tensor bytes (layout mismatch)");
    }
  }

  {
    ByteReader t(readers[0].section("adam.t"));
    adam.set_step_count(t.get_i64());
  }
  {
    ByteReader cur(readers[0].section("cursor"));
    cursor.step = cur.get_u64();
    cursor.next_doc = cur.get_u64();
    std::array<std::uint64_t, 4> state;
    for (auto& word : state) word = cur.get_u64();
    cursor.rng.set_state(state);
  }
}

}  // namespace axonn::train
