#include "axonn/train/goldfish.hpp"

#include "axonn/base/error.hpp"
#include "axonn/base/rng.hpp"

namespace axonn::train {

std::vector<std::uint8_t> goldfish_mask(const std::vector<std::int32_t>& tokens,
                                        const GoldfishConfig& config) {
  AXONN_CHECK_MSG(config.k >= 1, "goldfish k must be >= 1");
  AXONN_CHECK_MSG(config.h >= 1, "goldfish h must be >= 1");
  std::vector<std::uint8_t> mask(tokens.size(), 1);
  if (config.k == 1) {
    // k=1 would drop everything; treat as "goldfish off" (keep all): the
    // useful range is k >= 2 and the paper's setting is k=2.
    return mask;
  }
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    // Hash the h tokens strictly preceding position i: the drop decision
    // depends only on the context, so repeated passages mask identically.
    std::uint64_t hash = config.salt;
    const std::size_t begin =
        i >= static_cast<std::size_t>(config.h) ? i - config.h : 0;
    for (std::size_t j = begin; j < i; ++j) {
      hash = hash_combine(hash, static_cast<std::uint64_t>(tokens[j]) + 1);
    }
    if (hash % static_cast<std::uint64_t>(config.k) == 0) {
      mask[i] = 0;
    }
  }
  return mask;
}

double goldfish_keep_fraction(const std::vector<std::uint8_t>& mask) {
  if (mask.empty()) return 1.0;
  std::size_t kept = 0;
  for (auto m : mask) kept += m;
  return static_cast<double>(kept) / static_cast<double>(mask.size());
}

}  // namespace axonn::train
