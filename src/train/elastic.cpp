#include "axonn/train/elastic.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "axonn/base/log.hpp"
#include "axonn/base/metrics.hpp"
#include "axonn/comm/fault.hpp"
#include "axonn/comm/thread_comm.hpp"
#include "axonn/core/grid4d.hpp"
#include "axonn/train/checkpoint.hpp"
#include "axonn/train/replica.hpp"
#include "axonn/train/telemetry.hpp"

namespace axonn::train {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// State shared by every rank thread of one elastic attempt. The replica
/// store is the in-process stand-in for the survivors' RAM; whether a dead
/// slot's bytes are *usable* is decided by the buddy-liveness rule in
/// restore_from_replicas, not by physical presence here.
struct ElasticShared {
  explicit ElasticShared(int slots) : replicas(slots) {}

  ReplicaStore replicas;
  std::atomic<int> final_world{0};

  std::mutex fatal_mutex;
  std::exception_ptr fatal;

  void store_fatal(std::exception_ptr e) {
    std::lock_guard<std::mutex> lock(fatal_mutex);
    if (!fatal) fatal = std::move(e);
  }
};

/// How one epoch segment of a rank's life ended.
enum class Segment {
  kDone,         ///< training + eval completed
  kDead,         ///< this rank is the casualty (crash or detected hang)
  kReconfigure,  ///< a peer died / epoch moved on: rendezvous and retry
};

using Plan = comm::ThreadWorld::ReconfigurePlan;

/// Restores this rank's state at the start of a post-failure epoch from the
/// in-memory replicas: survivors and swapped-in spares decode their own
/// slot's blob (a swap keeps the world size, so blobs fit verbatim); a
/// shrunk world re-shards every old slot's blob onto the survivor grid.
/// Throws CheckpointError when the replica tier cannot serve the recovery —
/// the caller escalates to the supervisor's disk restart.
void restore_from_replicas(const Plan& plan, ElasticShared& shared,
                           comm::ThreadComm& active, GPTModel& model,
                           Adam& adam, TrainCursor& cursor) {
  const int slot = active.rank();
  const int nslots = active.size();
  const int old_n = static_cast<int>(plan.old_active.size());

  // Buddy rule: a dead slot's replica is usable only if someone who held its
  // bytes survived — the slot's occupant (dead by definition) or the buddy
  // it pushed to. Occupant and buddy both dead => the replica died with
  // them, even though this in-process store still has the bytes.
  for (const int dead : plan.dead_slots) {
    const int buddy = ReplicaStore::buddy_slot(dead, old_n);
    if (std::find(plan.dead_slots.begin(), plan.dead_slots.end(), buddy) !=
        plan.dead_slots.end()) {
      throw CheckpointError(
          "elastic: slot " + std::to_string(dead) +
          "'s in-memory replica was lost (occupant and buddy slot " +
          std::to_string(buddy) + " both failed) — escalating to a disk "
          "restart");
    }
  }

  const std::optional<std::uint64_t> step = shared.replicas.common_step();
  if (!step) {
    throw CheckpointError(
        "elastic: replica store has no step common to every slot — "
        "escalating to a disk restart");
  }

  if (plan.shrunk) {
    std::vector<std::vector<std::byte>> blobs;
    blobs.reserve(static_cast<std::size_t>(old_n));
    for (int s = 0; s < old_n; ++s) {
      blobs.push_back(shared.replicas.blob(s, *step));
    }
    reshard_restore(blobs, model, adam, cursor, slot, nslots);
    // The old-gz blobs cannot seed the new-gz buddy scheme: barrier until
    // every survivor has read its inputs, reset the store to the new slot
    // count, then re-seed it with fresh snapshots so a second failure can
    // still recover from RAM.
    active.barrier();
    if (slot == 0) shared.replicas.reset(nslots);
    active.barrier();
    shared.replicas.push(slot, cursor.step,
                         encode_train_snapshot(model, adam, cursor, slot,
                                               nslots));
  } else {
    decode_train_snapshot(shared.replicas.blob(slot, *step), model, adam,
                          cursor, slot, nslots);
  }
}

/// One epoch of one rank's life: build the active communicator and the full
/// training stack on it, restore (disk at epoch 0, replicas afterwards),
/// train until completion or failure. The progress stream is drained while
/// the comm/grid/model objects are still alive — queued collective tasks
/// reference them, so they must run down before the destructors.
Segment run_epoch_segment(const ResilientTrainConfig& config,
                          const comm::ChaosConfig& chaos_template,
                          comm::ThreadWorld& world, int my,
                          const std::optional<Plan>& plan,
                          ElasticShared& shared, ResilientTrainResult& result,
                          std::mutex& result_mutex) {
  namespace fs = std::filesystem;
  Segment outcome = Segment::kReconfigure;
  std::exception_ptr fatal;
  {
    std::unique_ptr<comm::ThreadComm> active = world.active_comm(my);
    std::unique_ptr<comm::ChaosComm> chaos_comm;
    std::unique_ptr<core::Grid4D> grid;
    std::unique_ptr<GPTModel> model;
    std::unique_ptr<Adam> adam;
    std::unique_ptr<TrainingSentinel> sentinel;
    std::unique_ptr<StepTelemetryCollector> telemetry;
    try {
      const std::uint64_t epoch = active->epoch();
      const int slot = active->rank();
      const int nslots = active->size();

      // Chaos wraps the *active* communicator, so the crash/hang/slow rank
      // of the schedule is a grid slot (stable across spare swaps), and the
      // counters restart with each epoch like a fresh-booted replacement.
      comm::Communicator* comm = active.get();
      if (config.enable_chaos) {
        comm::ChaosConfig chaos = chaos_template;
        if (epoch > 0) {
          // Post-recovery epochs model the failed hardware as gone: the
          // crash, the hang and the one-shot memory corruption (all tied to
          // the dead node) do not re-fire; latency/probabilistic chaos and
          // the watchdog stay armed.
          chaos.crash_rank = -1;
          chaos.hang_rank = -1;
          chaos.corrupt_once_rank = -1;
        }
        chaos_comm = std::make_unique<comm::ChaosComm>(*active, chaos);
        comm = chaos_comm.get();
      }

      sim::GridShape shape = config.grid;
      shape.gz = nslots;  // a shrunk epoch keeps pure Z-sharding
      grid = std::make_unique<core::Grid4D>(*comm, shape);
      model = std::make_unique<GPTModel>(*grid, config.model);
      adam = std::make_unique<Adam>(config.adam);
      model->register_params(*adam);
      const BucketCorpus corpus(config.corpus);

      TrainCursor cursor;
      cursor.rng = Rng(config.data_seed);

      bool just_recovered = false;
      if (epoch == 0) {
        const std::int64_t restored =
            find_latest_valid_step(config.checkpoint_dir, nslots);
        if (restored >= 0) {
          const std::string path =
              (fs::path(config.checkpoint_dir) /
               checkpoint_filename(static_cast<std::uint64_t>(restored),
                                   slot))
                  .string();
          load_checkpoint(path, *model, *adam, cursor, slot, nslots);
          if (slot == 0) {
            AXONN_LOG_INFO << "elastic: restored step " << restored
                           << " from " << config.checkpoint_dir;
          }
        }
        // Baseline replica push: from the very first step every slot's
        // snapshot lives in a buddy's RAM, so the first failure can already
        // recover without touching disk.
        shared.replicas.push(slot, cursor.step,
                             encode_train_snapshot(*model, *adam, cursor,
                                                   slot, nslots));
        {
          std::lock_guard<std::mutex> lock(result_mutex);
          ++result.replica_pushes;
        }
      } else {
        AXONN_CHECK(plan && plan->epoch == epoch);
        restore_from_replicas(*plan, shared, *active, *model, *adam, cursor);
        just_recovered = true;
        {
          std::lock_guard<std::mutex> lock(result_mutex);
          ++result.replica_restores;
          if (plan->shrunk) ++result.replica_pushes;  // the re-seed push
          if (slot == 0) {
            ++result.epoch_bumps;
            if (plan->shrunk) {
              ++result.shrinks;
            } else {
              result.spare_swaps +=
                  static_cast<std::uint64_t>(plan->swapped_in.size());
            }
          }
        }
        if (slot == 0) {
          AXONN_LOG_INFO << "elastic: epoch " << epoch
                         << " resumed from in-memory replicas at step "
                         << cursor.step
                         << (plan->shrunk ? " (shrunk to " : " (world ")
                         << nslots << " ranks)";
        }
      }

      sentinel = std::make_unique<TrainingSentinel>(config.sentinel, *comm,
                                                    *model, *adam);
      // Telemetry folds over the raw active communicator (fault injection
      // must not corrupt the instrument reporting on it).
      telemetry = std::make_unique<StepTelemetryCollector>(*active,
                                                           grid.get());
      obs::StragglerMonitor stragglers(config.straggler);

      const auto batch = static_cast<std::uint64_t>(config.batch_per_rank);
      while (cursor.step < static_cast<std::uint64_t>(config.total_steps)) {
        sentinel->journal(cursor);
        telemetry->begin_step();

        const std::uint64_t jitter = cursor.rng.uniform_int(1u << 16);
        std::vector<TokenSeq> sequences;
        sequences.reserve(batch);
        for (std::uint64_t b = 0; b < batch; ++b) {
          sequences.push_back(corpus.background_doc(
              cursor.next_doc + jitter +
              static_cast<std::uint64_t>(slot) * batch + b));
        }

        model->zero_grad();
        const float loss = model->train_step(sequences);
        if (!sentinel->check_step(loss, cursor)) {
          if (slot == 0) {
            std::lock_guard<std::mutex> lock(result_mutex);
            ++result.step_replays;
          }
          continue;
        }
        adam->step();

        cursor.step += 1;
        cursor.next_doc += static_cast<std::uint64_t>(nslots) * batch;
        if (slot == 0) {
          std::lock_guard<std::mutex> lock(result_mutex);
          ++result.steps_executed;
          AXONN_LOG_DEBUG << "elastic: step " << cursor.step << " loss "
                          << loss;
        }

        if (just_recovered) {
          // First completed post-recovery step: the world is productive
          // again, so the failure→recovery window closes here (the elastic
          // MTTR bench_recovery compares against a full restart).
          just_recovered = false;
          if (slot == 0 && world.last_failure_ns() > 0) {
            const double mttr_ms =
                static_cast<double>(steady_now_ns() -
                                    world.last_failure_ns()) /
                1e6;
            if (obs::metrics::enabled()) {
              static obs::metrics::Gauge mttr("elastic.recovery_ms");
              mttr.set(mttr_ms);
            }
            AXONN_LOG_INFO << "elastic: first post-recovery step done, "
                           << mttr_ms << " ms after the failure";
            std::lock_guard<std::mutex> lock(result_mutex);
            if (result.recovery_ms < 0) result.recovery_ms = mttr_ms;
          }
        }

        if (telemetry->active()) {
          const obs::StepTelemetry t =
              telemetry->end_step(cursor.step, loss);
          if (slot == 0) {
            obs::emit_step(t);
            const std::vector<int> newly = stragglers.observe(t);
            std::lock_guard<std::mutex> lock(result_mutex);
            ++result.telemetry_steps;
            result.straggler_ranks.insert(result.straggler_ranks.end(),
                                          newly.begin(), newly.end());
          }
        }

        if (config.checkpoint_every > 0 &&
            cursor.step %
                    static_cast<std::uint64_t>(config.checkpoint_every) ==
                0) {
          // RAM tier first (the recovery path), then the disk tier (the
          // full-restart fallback).
          shared.replicas.push(slot, cursor.step,
                               encode_train_snapshot(*model, *adam, cursor,
                                                     slot, nslots));
          const std::string path = (fs::path(config.checkpoint_dir) /
                                    checkpoint_filename(cursor.step, slot))
                                       .string();
          save_checkpoint(path, *model, *adam, cursor, slot, nslots);
          std::lock_guard<std::mutex> lock(result_mutex);
          ++result.replica_pushes;
          ++result.checkpoints_written;
        }
      }

      // Fixed eval batch (independent of the cursor) so the final loss is
      // comparable across faulted, recovered and fault-free runs.
      std::vector<TokenSeq> eval_batch;
      for (std::uint64_t b = 0; b < batch; ++b) {
        eval_batch.push_back(corpus.background_doc(
            1'000'000 + static_cast<std::uint64_t>(slot) * batch + b));
      }
      const float eval_loss = model->evaluate_loss(eval_batch);
      if (slot == 0) {
        std::lock_guard<std::mutex> lock(result_mutex);
        result.final_loss = eval_loss;
      }
      shared.final_world.store(nslots, std::memory_order_relaxed);
      outcome = Segment::kDone;
    } catch (const comm::RankFailure& e) {
      // This rank is the casualty (injected crash, or a hang whose peers
      // fenced it off). Announce the death — that is the failure broadcast
      // that unblocks the survivors — and unwind.
      world.declare_dead(my, e.what());
      outcome = Segment::kDead;
    } catch (const comm::RankDeadError& e) {
      AXONN_LOG_INFO << "elastic: rank " << my
                     << " abandoning the epoch: " << e.what();
      outcome = Segment::kReconfigure;
    } catch (const comm::EpochFencedError& e) {
      AXONN_LOG_INFO << "elastic: rank " << my
                     << " fenced out of a stale epoch: " << e.what();
      outcome = Segment::kReconfigure;
    } catch (...) {
      // Unrecoverable in-job (lost replica, SDC escalation, watchdog, ...):
      // abort the world *before* draining so every rank's pending work
      // fails fast, then hand the exception to the supervisor.
      fatal = std::current_exception();
      try {
        std::rethrow_exception(fatal);
      } catch (const std::exception& e) {
        world.abort("elastic: rank " + std::to_string(my) +
                    " failed unrecoverably: " + e.what());
      } catch (...) {
        world.abort("elastic: rank " + std::to_string(my) +
                    " failed unrecoverably");
      }
    }
    world.drain_progress(my);
  }
  if (fatal) std::rethrow_exception(fatal);
  return outcome;
}

/// A rank's whole life across epochs: spares park until assigned, actives
/// run epoch segments and rendezvous in reconfigure() after each failure.
void elastic_rank_main(const ResilientTrainConfig& config,
                       const comm::ChaosConfig& chaos,
                       comm::ThreadWorld& world, int my,
                       ElasticShared& shared, ResilientTrainResult& result,
                       std::mutex& result_mutex) {
  try {
    std::optional<Plan> plan;
    if (world.rank_state(my) == comm::ThreadWorld::RankState::kSpare) {
      plan = world.park_for_assignment(my);
      if (!plan) return;  // run finished before this spare was needed
    }
    for (;;) {
      const Segment outcome = run_epoch_segment(
          config, chaos, world, my, plan, shared, result, result_mutex);
      if (outcome == Segment::kDone) {
        world.finish();  // wake unneeded spares so they unwind
        return;
      }
      if (outcome == Segment::kDead) return;
      plan = world.reconfigure(my);
    }
  } catch (const std::exception& e) {
    if (world.is_dead(my)) return;  // fenced off while recovering: exit quietly
    shared.store_fatal(std::current_exception());
    if (!world.aborted()) {
      world.abort("elastic: rank " + std::to_string(my) + ": " + e.what());
    }
  } catch (...) {
    if (world.is_dead(my)) return;
    shared.store_fatal(std::current_exception());
    if (!world.aborted()) {
      world.abort("elastic: rank " + std::to_string(my) +
                  " threw a non-std exception");
    }
  }
}

}  // namespace

void run_elastic_attempt(const ResilientTrainConfig& config,
                         const comm::ChaosConfig& chaos,
                         ResilientTrainResult& result,
                         std::mutex& result_mutex) {
  const int active0 = static_cast<int>(config.grid.total());
  const int total = active0 + config.elastic.spares;

  comm::WorldOptions options;
  options.collective_timeout = config.collective_timeout;
  options.ring_crc = config.ring_crc;
  options.crc_max_retries = config.crc_max_retries;
  options.elastic = true;
  options.spare_ranks = config.elastic.spares;
  options.heartbeat_timeout = config.elastic.heartbeat_timeout;
  options.allow_shrink = config.elastic.allow_shrink;
  options.min_active = config.elastic.min_ranks;

  comm::ThreadWorld world(total, options);
  ElasticShared shared(active0);

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(total));
  for (int r = 0; r < total; ++r) {
    threads.emplace_back([&, r] {
      elastic_rank_main(config, chaos, world, r, shared, result,
                        result_mutex);
    });
  }
  for (auto& t : threads) t.join();

  if (shared.fatal) std::rethrow_exception(shared.fatal);
  if (world.aborted()) {
    throw Error(
        "elastic: world aborted with no survivor to report the failure — "
        "restarting from disk checkpoints");
  }

  std::lock_guard<std::mutex> lock(result_mutex);
  result.fenced_messages += world.fenced_messages();
  result.final_world_size = shared.final_world.load(std::memory_order_relaxed);
}

}  // namespace axonn::train
