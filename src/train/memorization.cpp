#include "axonn/train/memorization.hpp"

#include <algorithm>

#include "axonn/base/error.hpp"
#include "axonn/base/log.hpp"
#include "axonn/comm/thread_comm.hpp"

namespace axonn::train {

namespace {

/// Linear warmup to lr_max over the warmup phase, then linear decay to
/// lr_min over the injection phase — the §VIII-B schedule shape.
float scheduled_lr(const MemorizationConfig& config, int step,
                   int injection_steps) {
  if (step < config.warmup_steps) {
    return config.lr_max * static_cast<float>(step + 1) /
           static_cast<float>(config.warmup_steps);
  }
  const int into_decay = step - config.warmup_steps;
  const float frac = injection_steps <= 1
                         ? 1.0f
                         : static_cast<float>(into_decay) /
                               static_cast<float>(injection_steps - 1);
  return config.lr_max + (config.lr_min - config.lr_max) * frac;
}

}  // namespace

std::vector<ZooEntry> memorization_model_zoo() {
  // Width-scaled at fixed depth (capacity grows ~4x per step), standing in
  // for the paper's TinyLlama-1B .. Llama-405B ladder.
  std::vector<ZooEntry> zoo;
  auto make = [](int layers, int hidden, int heads) {
    TinyGPTConfig config;
    config.layers = layers;
    config.hidden = hidden;
    config.heads = heads;
    return config;
  };
  zoo.push_back({"GPT-XS", make(2, 12, 2)});
  zoo.push_back({"GPT-S", make(2, 24, 2)});
  zoo.push_back({"GPT-M", make(2, 48, 4)});
  zoo.push_back({"GPT-L", make(2, 96, 4)});
  zoo.push_back({"GPT-XL", make(2, 160, 4)});
  return zoo;
}

MemorizationResult run_memorization_experiment(core::Grid4D& grid,
                                               const std::string& model_name,
                                               const MemorizationConfig& config) {
  BucketCorpus corpus(config.corpus);
  GPTModel model(grid, config.model);
  Adam adam;
  model.register_params(adam);

  // Build the injection stream: every bucket-b document appears epochs[b]
  // times, shuffled so epochs interleave (one "epoch" = one pass over the
  // bucket, as in the paper).
  const auto epochs = corpus.epochs_per_bucket();
  std::vector<const TokenSeq*> injection;
  for (int b = 0; b < config.corpus.num_buckets; ++b) {
    for (int e = 0; e < epochs[static_cast<std::size_t>(b)]; ++e) {
      for (const TokenSeq& doc : corpus.bucket(b)) {
        injection.push_back(&doc);
      }
    }
  }
  Rng shuffle_rng(config.shuffle_seed);
  for (std::size_t i = injection.size(); i > 1; --i) {
    std::swap(injection[i - 1], injection[shuffle_rng.uniform_int(i)]);
  }
  const int injection_steps = static_cast<int>(
      (injection.size() + static_cast<std::size_t>(config.batch_size) - 1) /
      static_cast<std::size_t>(config.batch_size));

  const GoldfishConfig* goldfish =
      config.use_goldfish ? &config.goldfish : nullptr;

  float loss = 0.0f;
  int step = 0;
  // Phase 1: warmup on background text, ramping the learning rate.
  for (; step < config.warmup_steps; ++step) {
    adam.set_lr(scheduled_lr(config, step, injection_steps));
    std::vector<TokenSeq> batch;
    for (int i = 0; i < config.warmup_batch_size; ++i) {
      batch.push_back(corpus.background_doc(
          static_cast<std::uint64_t>(step * config.warmup_batch_size + i)));
    }
    model.zero_grad();
    loss = model.train_step(batch, goldfish);
    adam.step();
  }

  // Phase 2: inject the buckets while the learning rate decays.
  std::size_t cursor = 0;
  for (int inj = 0; inj < injection_steps; ++inj, ++step) {
    adam.set_lr(scheduled_lr(config, step, injection_steps));
    std::vector<TokenSeq> batch;
    for (int i = 0; i < config.batch_size && cursor < injection.size(); ++i) {
      batch.push_back(*injection[cursor++]);
    }
    if (batch.empty()) break;
    model.zero_grad();
    loss = model.train_step(batch, goldfish);
    adam.step();
  }

  // Probe: exact-match rate per bucket (including the held-out control).
  MemorizationResult result;
  result.model_name = model_name;
  result.parameter_count = model.parameter_count();
  result.epochs_per_bucket = epochs;
  result.final_train_loss = loss;
  result.total_steps = step;
  for (int b = 0; b < config.corpus.num_buckets; ++b) {
    int matched = 0;
    double accuracy = 0.0;
    for (const TokenSeq& doc : corpus.bucket(b)) {
      if (model.exact_match(doc, config.probe_tokens)) ++matched;
      accuracy += model.probe_accuracy(doc, config.probe_tokens);
    }
    const auto docs = static_cast<double>(corpus.bucket(b).size());
    result.exact_match_per_bucket.push_back(matched / docs);
    result.probe_accuracy_per_bucket.push_back(accuracy / docs);
  }
  AXONN_LOG_DEBUG << model_name << ": steps=" << result.total_steps
                  << " loss=" << loss;
  return result;
}

MemorizationResult run_memorization_experiment_serial(
    const std::string& model_name, const MemorizationConfig& config) {
  MemorizationResult result;
  comm::run_ranks(1, [&](comm::Communicator& world) {
    core::Grid4D grid(world, sim::GridShape{1, 1, 1, 1});
    result = run_memorization_experiment(grid, model_name, config);
  });
  return result;
}

}  // namespace axonn::train
