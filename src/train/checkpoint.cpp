#include "axonn/train/checkpoint.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "axonn/base/crc32.hpp"
#include "axonn/base/log.hpp"

namespace axonn::train {

namespace {

constexpr char kMagic[4] = {'A', 'X', 'C', 'K'};

}  // namespace

// ---------------------------------------------------------------------------
// ByteWriter / ByteReader
// ---------------------------------------------------------------------------

void ByteWriter::put_raw(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::byte*>(data);
  bytes_.insert(bytes_.end(), bytes, bytes + size);
}

void ByteReader::get_raw(void* out, std::size_t size) {
  if (pos_ + size > bytes_.size()) {
    throw CheckpointError("checkpoint payload truncated: need " +
                          std::to_string(size) + " bytes, have " +
                          std::to_string(bytes_.size() - pos_));
  }
  std::memcpy(out, bytes_.data() + pos_, size);
  pos_ += size;
}

std::uint32_t ByteReader::get_u32() {
  std::uint32_t v;
  get_raw(&v, sizeof(v));
  return v;
}

std::uint64_t ByteReader::get_u64() {
  std::uint64_t v;
  get_raw(&v, sizeof(v));
  return v;
}

std::int64_t ByteReader::get_i64() {
  std::int64_t v;
  get_raw(&v, sizeof(v));
  return v;
}

void ByteReader::get_floats(std::span<float> out) {
  get_raw(out.data(), out.size_bytes());
}

void ByteReader::get_bytes(std::span<std::byte> out) {
  get_raw(out.data(), out.size_bytes());
}

// ---------------------------------------------------------------------------
// CheckpointWriter / CheckpointReader
// ---------------------------------------------------------------------------

void CheckpointWriter::add_section(const std::string& name,
                                   std::vector<std::byte> payload) {
  sections_.emplace_back(name, std::move(payload));
}

std::vector<std::byte> CheckpointWriter::to_bytes() const {
  ByteWriter out;
  out.put_bytes(std::as_bytes(std::span<const char>(kMagic, sizeof(kMagic))));
  out.put_u32(kCheckpointVersion);
  out.put_u32(static_cast<std::uint32_t>(sections_.size()));
  for (const auto& [name, payload] : sections_) {
    out.put_u32(static_cast<std::uint32_t>(name.size()));
    out.put_bytes(
        std::as_bytes(std::span<const char>(name.data(), name.size())));
    out.put_u64(payload.size());
    out.put_u32(crc32(payload.data(), payload.size()));
    out.put_bytes(payload);
  }
  return out.take();
}

void CheckpointWriter::write(const std::string& path) const {
  const std::vector<std::byte> bytes = to_bytes();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw CheckpointError("cannot open checkpoint file for writing: " + tmp);
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) throw CheckpointError("short write to " + tmp);
  }
  // The rename is the commit point: the final name only ever refers to a
  // complete file.
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw CheckpointError("cannot rename " + tmp + " -> " + path + ": " +
                          ec.message());
  }
}

CheckpointReader::CheckpointReader(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw CheckpointError("cannot open checkpoint: " + path);
  std::vector<std::byte> bytes;
  in.seekg(0, std::ios::end);
  bytes.resize(static_cast<std::size_t>(in.tellg()));
  in.seekg(0, std::ios::beg);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!in) throw CheckpointError("cannot read checkpoint: " + path);
  parse(bytes, path);
}

CheckpointReader::CheckpointReader(std::span<const std::byte> bytes) {
  parse(bytes, "<in-memory image>");
}

void CheckpointReader::parse(std::span<const std::byte> bytes,
                             const std::string& origin) {
  ByteReader reader(bytes);
  char magic[4];
  reader.get_bytes(std::as_writable_bytes(std::span<char>(magic, 4)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw CheckpointError("bad checkpoint magic in " + origin);
  }
  const std::uint32_t version = reader.get_u32();
  if (version != kCheckpointVersion) {
    throw CheckpointError("unsupported checkpoint version " +
                          std::to_string(version) + " in " + origin +
                          " (expected " + std::to_string(kCheckpointVersion) +
                          ")");
  }
  const std::uint32_t count = reader.get_u32();
  for (std::uint32_t s = 0; s < count; ++s) {
    const std::uint32_t name_len = reader.get_u32();
    std::string name(name_len, '\0');
    reader.get_bytes(
        std::as_writable_bytes(std::span<char>(name.data(), name.size())));
    const std::uint64_t payload_len = reader.get_u64();
    const std::uint32_t expected_crc = reader.get_u32();
    std::vector<std::byte> payload(payload_len);
    reader.get_bytes(payload);
    const std::uint32_t actual_crc = crc32(payload.data(), payload.size());
    if (actual_crc != expected_crc) {
      throw CheckpointError("CRC mismatch in section \"" + name + "\" of " +
                            origin);
    }
    sections_[name] = std::move(payload);
  }
}

bool validate_checkpoint(const std::string& path) {
  try {
    CheckpointReader reader(path);
    return true;
  } catch (const CheckpointError&) {
    return false;
  }
}

bool CheckpointReader::has_section(const std::string& name) const {
  return sections_.find(name) != sections_.end();
}

std::span<const std::byte> CheckpointReader::section(
    const std::string& name) const {
  auto it = sections_.find(name);
  if (it == sections_.end()) {
    throw CheckpointError("checkpoint missing section \"" + name + "\"");
  }
  return it->second;
}

// ---------------------------------------------------------------------------
// Training-loop snapshot
// ---------------------------------------------------------------------------

namespace {

std::vector<std::byte> pack_tensors(GPTModel& model,
                                    void (*visit)(GPTModel&, ByteWriter&)) {
  ByteWriter writer;
  visit(model, writer);
  return writer.take();
}

void put_all_params(GPTModel& model, ByteWriter& writer) {
  model.for_each_parameter(
      [&](Matrix& m) { writer.put_floats(m.storage()); });
}

}  // namespace

namespace {

CheckpointWriter build_train_snapshot(GPTModel& model, Adam& adam,
                                      const TrainCursor& cursor, int rank,
                                      int world_size) {
  CheckpointWriter ckpt;

  {
    ByteWriter meta;
    meta.put_u32(static_cast<std::uint32_t>(rank));
    meta.put_u32(static_cast<std::uint32_t>(world_size));
    meta.put_u64(adam.num_params());
    meta.put_u64(adam.total_parameter_count());
    ckpt.add_section("meta", meta.take());
  }

  ckpt.add_section("weights", pack_tensors(model, put_all_params));

  {
    ByteWriter m_writer, v_writer;
    for (std::size_t i = 0; i < adam.num_params(); ++i) {
      m_writer.put_floats(adam.moment1(i).storage());
      v_writer.put_floats(adam.moment2(i).storage());
    }
    ckpt.add_section("adam.m", m_writer.take());
    ckpt.add_section("adam.v", v_writer.take());

    ByteWriter t_writer;
    t_writer.put_i64(adam.step_count());
    ckpt.add_section("adam.t", t_writer.take());
  }

  {
    ByteWriter cur;
    cur.put_u64(cursor.step);
    cur.put_u64(cursor.next_doc);
    for (const std::uint64_t word : cursor.rng.state()) cur.put_u64(word);
    ckpt.add_section("cursor", cur.take());
  }

  return ckpt;
}

void restore_train_snapshot(const CheckpointReader& ckpt,
                            const std::string& origin, GPTModel& model,
                            Adam& adam, TrainCursor& cursor, int rank,
                            int world_size) {
  {
    ByteReader meta(ckpt.section("meta"));
    const auto saved_rank = meta.get_u32();
    const auto saved_world = meta.get_u32();
    const auto saved_slots = meta.get_u64();
    const auto saved_scalars = meta.get_u64();
    if (saved_rank != static_cast<std::uint32_t>(rank) ||
        saved_world != static_cast<std::uint32_t>(world_size)) {
      throw CheckpointError(
          "checkpoint " + origin + " was written by rank " +
          std::to_string(saved_rank) + "/" + std::to_string(saved_world) +
          " but is being restored on rank " + std::to_string(rank) + "/" +
          std::to_string(world_size));
    }
    if (saved_slots != adam.num_params() ||
        saved_scalars != adam.total_parameter_count()) {
      throw CheckpointError("checkpoint " + origin +
                            " parameter layout does not match the live model");
    }
  }

  {
    ByteReader weights(ckpt.section("weights"));
    model.for_each_parameter(
        [&](Matrix& m) { weights.get_floats(m.storage()); });
    if (weights.remaining() != 0) {
      throw CheckpointError("checkpoint weights section has " +
                            std::to_string(weights.remaining()) +
                            " trailing bytes");
    }
  }

  {
    ByteReader m_reader(ckpt.section("adam.m"));
    ByteReader v_reader(ckpt.section("adam.v"));
    for (std::size_t i = 0; i < adam.num_params(); ++i) {
      m_reader.get_floats(adam.moment1(i).storage());
      v_reader.get_floats(adam.moment2(i).storage());
    }
    if (m_reader.remaining() != 0 || v_reader.remaining() != 0) {
      throw CheckpointError("checkpoint optimizer sections do not match the "
                            "live optimizer layout");
    }
    ByteReader t_reader(ckpt.section("adam.t"));
    adam.set_step_count(t_reader.get_i64());
  }

  {
    ByteReader cur(ckpt.section("cursor"));
    cursor.step = cur.get_u64();
    cursor.next_doc = cur.get_u64();
    std::array<std::uint64_t, 4> state;
    for (auto& word : state) word = cur.get_u64();
    cursor.rng.set_state(state);
  }
}

}  // namespace

void save_checkpoint(const std::string& path, GPTModel& model, Adam& adam,
                     const TrainCursor& cursor, int rank, int world_size) {
  build_train_snapshot(model, adam, cursor, rank, world_size).write(path);
}

void load_checkpoint(const std::string& path, GPTModel& model, Adam& adam,
                     TrainCursor& cursor, int rank, int world_size) {
  restore_train_snapshot(CheckpointReader(path), path, model, adam, cursor,
                         rank, world_size);
}

std::vector<std::byte> encode_train_snapshot(GPTModel& model, Adam& adam,
                                             const TrainCursor& cursor,
                                             int rank, int world_size) {
  return build_train_snapshot(model, adam, cursor, rank, world_size)
      .to_bytes();
}

void decode_train_snapshot(std::span<const std::byte> bytes, GPTModel& model,
                           Adam& adam, TrainCursor& cursor, int rank,
                           int world_size) {
  restore_train_snapshot(CheckpointReader(bytes), "<in-memory replica>",
                         model, adam, cursor, rank, world_size);
}

std::string checkpoint_filename(std::uint64_t step, int rank) {
  std::string digits = std::to_string(step);
  if (digits.size() < 8) digits.insert(0, 8 - digits.size(), '0');
  return "ckpt-" + digits + ".r" + std::to_string(rank) + ".axck";
}

std::int64_t find_latest_valid_step(const std::string& dir, int world_size) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return -1;

  // step -> count of rank files present for that step.
  std::map<std::uint64_t, int> step_files;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    // Expect "ckpt-<digits>.r<digits>.axck".
    if (name.rfind("ckpt-", 0) != 0) continue;
    const auto dot = name.find(".r");
    if (dot == std::string::npos || name.size() < dot + 2) continue;
    if (name.substr(name.size() - 5) != ".axck") continue;
    try {
      step_files[std::stoull(name.substr(5, dot - 5))] += 1;
    } catch (const std::exception&) {
      continue;
    }
  }

  for (auto it = step_files.rbegin(); it != step_files.rend(); ++it) {
    const std::uint64_t step = it->first;
    if (it->second < world_size) {
      AXONN_LOG_WARN << "checkpoint step " << step << " is incomplete ("
                     << it->second << "/" << world_size
                     << " rank files) — skipping";
      continue;
    }
    bool all_valid = true;
    for (int r = 0; r < world_size; ++r) {
      const std::string path =
          (fs::path(dir) / checkpoint_filename(step, r)).string();
      if (!validate_checkpoint(path)) {
        AXONN_LOG_WARN << "checkpoint " << path
                       << " failed validation — skipping step " << step;
        all_valid = false;
        break;
      }
    }
    if (all_valid) return static_cast<std::int64_t>(step);
  }
  return -1;
}

}  // namespace axonn::train
