#include "axonn/train/resilient.hpp"

#include <algorithm>
#include <filesystem>
#include <mutex>
#include <thread>

#include "axonn/base/log.hpp"
#include "axonn/base/metrics.hpp"
#include "axonn/comm/thread_comm.hpp"
#include "axonn/core/grid4d.hpp"
#include "axonn/train/checkpoint.hpp"
#include "axonn/train/elastic.hpp"
#include "axonn/train/telemetry.hpp"

namespace axonn::train {

namespace {

comm::WorldOptions world_options(const ResilientTrainConfig& config) {
  comm::WorldOptions options;
  options.collective_timeout = config.collective_timeout;
  options.ring_crc = config.ring_crc;
  options.crc_max_retries = config.crc_max_retries;
  return options;
}

/// One attempt: spawn the world, restore the newest fully-valid checkpoint,
/// train to total_steps, evaluate. Throws whatever a rank threw (RankFailure
/// under chaos, CommTimeoutError from the watchdog, ...).
void run_attempt(const ResilientTrainConfig& config,
                 const comm::ChaosConfig& chaos, ResilientTrainResult& result,
                 std::mutex& result_mutex) {
  namespace fs = std::filesystem;
  const int world_size = static_cast<int>(config.grid.total());

  comm::run_ranks(
      world_size,
      [&](comm::Communicator& world) {
        std::unique_ptr<comm::ChaosComm> chaos_comm;
        comm::Communicator* comm = &world;
        if (config.enable_chaos) {
          chaos_comm = std::make_unique<comm::ChaosComm>(world, chaos);
          comm = chaos_comm.get();
        }

        core::Grid4D grid(*comm, config.grid);
        GPTModel model(grid, config.model);
        Adam adam(config.adam);
        model.register_params(adam);
        const BucketCorpus corpus(config.corpus);

        const int rank = world.rank();
        TrainCursor cursor;
        cursor.rng = Rng(config.data_seed);

        // Restore: every rank loads its own file of the newest step whose
        // *entire* rank set validates — all ranks agree on the step because
        // the scan is deterministic over the same directory.
        const std::int64_t restored_step =
            find_latest_valid_step(config.checkpoint_dir, world_size);
        if (restored_step >= 0) {
          const std::string path =
              (fs::path(config.checkpoint_dir) /
               checkpoint_filename(static_cast<std::uint64_t>(restored_step),
                                   rank))
                  .string();
          load_checkpoint(path, model, adam, cursor, rank, world_size);
          if (rank == 0) {
            AXONN_LOG_INFO << "resilient: restored step " << restored_step
                           << " from " << config.checkpoint_dir;
          }
        }

        TrainingSentinel sentinel(config.sentinel, *comm, model, adam);

        // Live telemetry (DESIGN.md §10): no-ops unless obs::metrics is
        // enabled (AXONN_METRICS / MetricsSession). The fold runs on the raw
        // world communicator so fault injection cannot corrupt the telemetry
        // that is supposed to diagnose it — chaos-injected latency still
        // shows up, because it delays the *instrumented* step window.
        StepTelemetryCollector telemetry(world, &grid);
        obs::StragglerMonitor stragglers(config.straggler);

        const auto batch = static_cast<std::uint64_t>(config.batch_per_rank);
        while (cursor.step < static_cast<std::uint64_t>(config.total_steps)) {
          // Journal the pre-step state (weights, moments, cursor — including
          // the data RNG *before* the jitter draw) so an unhealthy step can
          // be rolled back and replayed on identical data.
          sentinel.journal(cursor);
          telemetry.begin_step();

          // One shared RNG draw per step jitters the document window; every
          // rank draws identically (same cursor state), then takes its own
          // slice — the data-parallel sharding.
          const std::uint64_t jitter = cursor.rng.uniform_int(1u << 16);
          std::vector<TokenSeq> sequences;
          sequences.reserve(batch);
          for (std::uint64_t b = 0; b < batch; ++b) {
            sequences.push_back(corpus.background_doc(
                cursor.next_doc + jitter +
                static_cast<std::uint64_t>(rank) * batch + b));
          }

          model.zero_grad();
          const float loss = model.train_step(sequences);
          // Health consensus before the optimizer applies the gradients. On
          // an unhealthy verdict (kHeal) the sentinel restored the journal
          // snapshot — including `cursor` — so the loop replays this step.
          if (!sentinel.check_step(loss, cursor)) {
            if (rank == 0) {
              std::lock_guard<std::mutex> lock(result_mutex);
              ++result.step_replays;
            }
            continue;
          }
          adam.step();

          cursor.step += 1;
          cursor.next_doc += static_cast<std::uint64_t>(world_size) * batch;
          if (rank == 0) {
            std::lock_guard<std::mutex> lock(result_mutex);
            ++result.steps_executed;
            AXONN_LOG_DEBUG << "resilient: step " << cursor.step << " loss "
                            << loss;
          }

          // Healthy step: fold the cross-rank telemetry (collective; gated
          // on the process-global metrics flag, so all ranks agree).
          if (telemetry.active()) {
            const obs::StepTelemetry t = telemetry.end_step(cursor.step, loss);
            if (rank == 0) {
              obs::emit_step(t);
              const std::vector<int> newly = stragglers.observe(t);
              std::lock_guard<std::mutex> lock(result_mutex);
              ++result.telemetry_steps;
              result.straggler_ranks.insert(result.straggler_ranks.end(),
                                            newly.begin(), newly.end());
            }
          }

          if (config.checkpoint_every > 0 &&
              cursor.step %
                      static_cast<std::uint64_t>(config.checkpoint_every) ==
                  0) {
            const std::string path =
                (fs::path(config.checkpoint_dir) /
                 checkpoint_filename(cursor.step, rank))
                    .string();
            save_checkpoint(path, model, adam, cursor, rank, world_size);
            std::lock_guard<std::mutex> lock(result_mutex);
            ++result.checkpoints_written;
          }
        }

        // Fixed eval batch (independent of the cursor) so the final loss is
        // comparable across faulted and fault-free runs.
        std::vector<TokenSeq> eval_batch;
        for (std::uint64_t b = 0; b < batch; ++b) {
          eval_batch.push_back(corpus.background_doc(
              1'000'000 + static_cast<std::uint64_t>(rank) * batch + b));
        }
        const float eval_loss = model.evaluate_loss(eval_batch);
        if (rank == 0) {
          std::lock_guard<std::mutex> lock(result_mutex);
          result.final_loss = eval_loss;
          result.final_world_size = world_size;
        }
      },
      world_options(config));
}

/// Satellite of the elastic work: exponential backoff with deterministic
/// jitter before a full restart, so a fleet of supervisors recovering from a
/// correlated failure does not hammer the scheduler/filesystem in lockstep.
/// base == 0 keeps the legacy immediate respawn.
void backoff_before_restart(const ResilientTrainConfig& config, int attempt,
                            ResilientTrainResult& result,
                            std::mutex& result_mutex) {
  if (config.restart_backoff_base.count() <= 0) return;
  const auto base =
      static_cast<std::uint64_t>(config.restart_backoff_base.count());
  const auto cap = std::max(
      base, static_cast<std::uint64_t>(
                std::max<long long>(0, config.restart_backoff_cap.count())));
  std::uint64_t raw = base;
  for (int i = 0; i < attempt && raw < cap; ++i) raw <<= 1;
  raw = std::min(raw, cap);
  // Jitter in [0.5, 1.0), a pure function of (data_seed, attempt): spreads
  // restarts across a fleet while keeping any one run reproducible.
  Rng rng(config.data_seed ^
          (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(attempt + 1)));
  const double jitter =
      0.5 + 0.5 * static_cast<double>(rng.uniform_int(1u << 20)) /
                static_cast<double>(1u << 20);
  const auto delay_ms = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(static_cast<double>(raw) * jitter));
  AXONN_LOG_INFO << "resilient: backing off " << delay_ms
                 << " ms before restart attempt " << attempt + 2;
  std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  if (obs::metrics::enabled()) {
    static obs::metrics::Counter waits("resilient.backoff_waits");
    static obs::metrics::Counter wait_ms("resilient.backoff_wait_ms");
    waits.add();
    wait_ms.add(static_cast<double>(delay_ms));
  }
  std::lock_guard<std::mutex> lock(result_mutex);
  ++result.backoff_waits;
  result.backoff_wait_ms += delay_ms;
}

}  // namespace

ResilientTrainResult run_resilient_training(
    const ResilientTrainConfig& config) {
  AXONN_CHECK_MSG(config.grid.gx == 1 && config.grid.gy == 1,
                  "GPTModel supports Z x data grids only");
  AXONN_CHECK_MSG(!config.checkpoint_dir.empty(),
                  "resilient training needs a checkpoint directory");
  if (config.elastic.enabled) {
    AXONN_CHECK_MSG(config.grid.gdata == 1,
                    "elastic mode re-shards over the Z dimension and "
                    "requires gdata == 1");
    AXONN_CHECK_MSG(config.elastic.spares >= 0 && config.elastic.min_ranks >= 1,
                    "elastic needs spares >= 0 and min_ranks >= 1");
  }
  std::filesystem::create_directories(config.checkpoint_dir);

  ResilientTrainResult result;
  std::mutex result_mutex;

  for (int attempt = 0;; ++attempt) {
    comm::ChaosConfig chaos = config.chaos;
    if (attempt > 0) {
      // The restarted world models the failed node having been replaced:
      // the crash, the hang and the one-shot memory corruption (all
      // transient, tied to the failed hardware) do not re-fire, but
      // latency/corruption chaos (and the watchdog) stay armed.
      chaos.crash_rank = -1;
      chaos.hang_rank = -1;
      chaos.corrupt_once_rank = -1;
    }
    try {
      if (config.elastic.enabled) {
        run_elastic_attempt(config, chaos, result, result_mutex);
      } else {
        run_attempt(config, chaos, result, result_mutex);
      }
      return result;
    } catch (const std::exception& e) {
      if (attempt >= config.max_restarts) {
        AXONN_LOG_ERROR << "resilient: restart budget exhausted after "
                        << attempt + 1 << " attempts: " << e.what();
        throw;
      }
      ++result.restarts;
      AXONN_LOG_WARN << "resilient: attempt " << attempt + 1 << " failed ("
                     << e.what() << ") — restarting from latest checkpoint";
      backoff_before_restart(config, attempt, result, result_mutex);
    }
  }
}

}  // namespace axonn::train
