#include "axonn/sim/bandwidth.hpp"

#include <algorithm>

#include "axonn/base/error.hpp"

namespace axonn::sim {

IntraNodeBandwidthDB IntraNodeBandwidthDB::profile(const MachineConfig& machine,
                                                   Measure measure) {
  if (!measure) {
    measure = [&machine](int g0, int g1) {
      return synthetic_measure(machine, g0, g1);
    };
  }
  IntraNodeBandwidthDB db;
  // All integer tuples fit in a node (G_node <= 8 in practice), so profile
  // every pair — non-power-of-two dimensions appear on Alps (6144 = 3*2^11).
  for (int g0 = 1; g0 <= machine.gpus_per_node; ++g0) {
    for (int g1 = 1; g0 * g1 <= machine.gpus_per_node; ++g1) {
      db.table_[{g0, g1}] = measure(g0, g1);
    }
  }
  return db;
}

double IntraNodeBandwidthDB::synthetic_measure(const MachineConfig& machine,
                                               int g0, int g1) {
  AXONN_CHECK(g0 >= 1 && g1 >= 1);
  // g1 == 1 means no communication at all; report the unloaded link.
  (void)g1;
  return machine.intranode_link_bandwidth /
         (1.0 + machine.fabric_sharing * static_cast<double>(g0 - 1));
}

double IntraNodeBandwidthDB::lookup(int preceding, int group_size) const {
  const auto it = table_.find({preceding, group_size});
  AXONN_CHECK_MSG(it != table_.end(),
                  "intra-node bandwidth tuple not profiled (" +
                      std::to_string(preceding) + ", " +
                      std::to_string(group_size) + ")");
  return it->second;
}

bool IntraNodeBandwidthDB::contains(int preceding, int group_size) const {
  return table_.count({preceding, group_size}) > 0;
}

double effective_bandwidth(const MachineConfig& machine,
                           const IntraNodeBandwidthDB& db, int preceding,
                           int group_size) {
  AXONN_CHECK(preceding >= 1 && group_size >= 1);
  if (group_size == 1) {
    // Degenerate group: collectives are no-ops. Return the unloaded link so
    // callers dividing by beta get well-defined (zero-volume) times.
    return machine.intranode_link_bandwidth;
  }
  const long long span = static_cast<long long>(preceding) * group_size;
  if (span <= machine.gpus_per_node) {
    return db.lookup(preceding, group_size);
  }
  // Eq. 7.
  const double rings =
      static_cast<double>(std::min<long long>(machine.gpus_per_node, preceding));
  return machine.internode_bandwidth / rings;
}

}  // namespace axonn::sim
