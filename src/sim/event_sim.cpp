#include "axonn/sim/event_sim.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>

namespace axonn::sim {

StreamId EventSimulator::add_stream(std::string name) {
  stream_names_.push_back(std::move(name));
  return stream_names_.size() - 1;
}

TaskId EventSimulator::add_task(StreamId stream, double duration,
                                std::vector<TaskId> deps, std::string name) {
  AXONN_CHECK_MSG(stream < stream_names_.size(), "unknown stream");
  AXONN_CHECK_MSG(duration >= 0.0, "task duration must be non-negative");
  for (TaskId dep : deps) {
    AXONN_CHECK_MSG(dep < tasks_.size(),
                    "dependency on a not-yet-submitted task");
  }
  tasks_.push_back(Task{stream, duration, std::move(deps), std::move(name)});
  return tasks_.size() - 1;
}

EventSimulator::Result EventSimulator::run() const {
  Result result;
  result.stream_names = stream_names_;
  result.stream_busy.assign(stream_names_.size(), 0.0);
  result.tasks.resize(tasks_.size());

  // Submission order == TaskId order, and dependencies always point
  // backwards (enforced in add_task), so a single forward pass suffices.
  std::vector<double> stream_available(stream_names_.size(), 0.0);
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    const Task& task = tasks_[id];
    double ready = stream_available[task.stream];
    for (TaskId dep : task.deps) {
      ready = std::max(ready, result.tasks[dep].finish);
    }
    TaskResult& tr = result.tasks[id];
    tr.start = ready;
    tr.finish = ready + task.duration;
    tr.stream = task.stream;
    tr.name = task.name;
    stream_available[task.stream] = tr.finish;
    result.stream_busy[task.stream] += task.duration;
    result.makespan = std::max(result.makespan, tr.finish);
  }
  return result;
}

namespace {
void write_json_string(std::ostream& out, const std::string& str) {
  out << '"';
  for (char c : str) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}
}  // namespace

void write_chrome_trace(const EventSimulator::Result& result,
                        std::ostream& out) {
  out << "{\"traceEvents\":[\n";
  bool first = true;
  // Stream-name metadata rows, then one complete event per task.
  for (std::size_t s = 0; s < result.stream_names.size(); ++s) {
    if (!first) out << ",\n";
    first = false;
    out << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":" << s
        << ",\"args\":{\"name\":";
    write_json_string(out, result.stream_names[s]);
    out << "}}";
  }
  constexpr double kSecToUs = 1e6;
  for (const EventSimulator::TaskResult& task : result.tasks) {
    if (!first) out << ",\n";
    first = false;
    out << "{\"ph\":\"X\",\"ts\":" << task.start * kSecToUs
        << ",\"dur\":" << (task.finish - task.start) * kSecToUs
        << ",\"pid\":0,\"tid\":" << task.stream << ",\"name\":";
    write_json_string(out, task.name.empty() ? std::string("task") : task.name);
    out << ",\"cat\":\"sim\"}";
  }
  out << "\n]}\n";
}

bool write_chrome_trace_file(const EventSimulator::Result& result,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(result, out);
  return out.good();
}

}  // namespace axonn::sim
