#include "axonn/sim/event_sim.hpp"

#include <algorithm>

namespace axonn::sim {

StreamId EventSimulator::add_stream(std::string name) {
  stream_names_.push_back(std::move(name));
  return stream_names_.size() - 1;
}

TaskId EventSimulator::add_task(StreamId stream, double duration,
                                std::vector<TaskId> deps, std::string name) {
  AXONN_CHECK_MSG(stream < stream_names_.size(), "unknown stream");
  AXONN_CHECK_MSG(duration >= 0.0, "task duration must be non-negative");
  for (TaskId dep : deps) {
    AXONN_CHECK_MSG(dep < tasks_.size(),
                    "dependency on a not-yet-submitted task");
  }
  tasks_.push_back(Task{stream, duration, std::move(deps), std::move(name)});
  return tasks_.size() - 1;
}

EventSimulator::Result EventSimulator::run() const {
  Result result;
  result.stream_names = stream_names_;
  result.stream_busy.assign(stream_names_.size(), 0.0);
  result.tasks.resize(tasks_.size());

  // Submission order == TaskId order, and dependencies always point
  // backwards (enforced in add_task), so a single forward pass suffices.
  std::vector<double> stream_available(stream_names_.size(), 0.0);
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    const Task& task = tasks_[id];
    double ready = stream_available[task.stream];
    for (TaskId dep : task.deps) {
      ready = std::max(ready, result.tasks[dep].finish);
    }
    TaskResult& tr = result.tasks[id];
    tr.start = ready;
    tr.finish = ready + task.duration;
    tr.stream = task.stream;
    tr.name = task.name;
    stream_available[task.stream] = tr.finish;
    result.stream_busy[task.stream] += task.duration;
    result.makespan = std::max(result.makespan, tr.finish);
  }
  return result;
}

}  // namespace axonn::sim
