#include "axonn/sim/grid_shape.hpp"

#include <algorithm>

namespace axonn::sim {

namespace {

std::vector<std::int64_t> divisors(std::int64_t n) {
  std::vector<std::int64_t> out;
  for (std::int64_t d = 1; d * d <= n; ++d) {
    if (n % d == 0) {
      out.push_back(d);
      if (d != n / d) out.push_back(n / d);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<GridShape> enumerate_grids(std::int64_t total_gpus) {
  AXONN_CHECK_MSG(total_gpus >= 1, "need at least one GPU");
  // All ordered factorizations total = gx * gy * gz * gdata. GPU counts in
  // practice are powers of two times a small factor (Alps runs use 6144 =
  // 3 * 2^11), so divisor enumeration stays tiny.
  const auto divs = divisors(total_gpus);
  std::vector<GridShape> grids;
  for (std::int64_t gx : divs) {
    const std::int64_t rem_x = total_gpus / gx;
    for (std::int64_t gy : divisors(rem_x)) {
      const std::int64_t rem_y = rem_x / gy;
      for (std::int64_t gz : divisors(rem_y)) {
        const std::int64_t gd = rem_y / gz;
        grids.push_back(GridShape{static_cast<int>(gx), static_cast<int>(gy),
                                  static_cast<int>(gz), static_cast<int>(gd)});
      }
    }
  }
  return grids;
}

}  // namespace axonn::sim
