#include "axonn/sim/iteration.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "axonn/base/rng.hpp"

namespace axonn::sim {

namespace {
constexpr double kBf16Bytes = 2.0;

// Attention BMMs run well below GEMM peak (small per-head inner dimensions).
constexpr double kAttentionEfficiencyFactor = 0.5;
}  // namespace

CollectiveCost ring_collective_cost(CollectiveKind kind, int group_size,
                                    double full_bytes, double beta,
                                    double per_message_latency) {
  AXONN_CHECK(group_size >= 1);
  AXONN_CHECK(beta > 0.0);
  CollectiveCost cost;
  if (group_size == 1 || full_bytes <= 0.0) {
    return cost;
  }
  const double p = group_size;
  switch (kind) {
    case CollectiveKind::kAllGather:
    case CollectiveKind::kReduceScatter:
      cost.steps = group_size - 1;
      cost.wire_bytes_per_rank = (p - 1.0) / p * full_bytes;
      break;
    case CollectiveKind::kAllReduce:
      cost.steps = 2 * (group_size - 1);
      cost.wire_bytes_per_rank = 2.0 * (p - 1.0) / p * full_bytes;
      break;
  }
  cost.seconds =
      cost.steps * per_message_latency + cost.wire_bytes_per_rank / beta;
  return cost;
}

bool fits_in_memory(const model::TrainingJob& job, const MachineConfig& machine,
                    const GridShape& grid, double usable_fraction) {
  const auto est =
      model::memory_per_gpu(job, grid.gx, grid.gy, grid.gz, grid.gdata);
  return est.total() <= machine.dram_bytes * usable_fraction;
}

namespace {

/// Everything precomputed about one FC sublayer instance.
struct SublayerPlan {
  std::uint64_t weight_rows = 0;  ///< k (in features)
  std::uint64_t weight_cols = 0;  ///< n (out features)
  bool transposed = false;        ///< swap X/Y roles (§V-A transpose trick)
};

class ScheduleBuilder {
 public:
  ScheduleBuilder(const model::TrainingJob& job, const MachineConfig& machine,
                  const IntraNodeBandwidthDB& db, const GridShape& grid,
                  const SimOptions& options)
      : job_(job), machine_(machine), grid_(grid), options_(options),
        rng_(options.noise_seed) {
    const double nodes = static_cast<double>(grid.total()) /
                         static_cast<double>(machine.gpus_per_node);
    const double congestion = machine.congestion_factor(nodes);
    for (int level = 0; level < 4; ++level) {
      beta_[level] = effective_bandwidth(machine, db, grid.preceding(level),
                                         grid.dim(level));
      // Groups that cross node boundaries additionally suffer job-scale
      // network congestion (simulator-only; see MachineConfig).
      const long long span = static_cast<long long>(grid.preceding(level)) *
                             grid.dim(level);
      if (span > machine.gpus_per_node) {
        beta_[level] *= congestion;
      }
    }
    compute_ = sim_.add_stream("compute");
    comm_ = sim_.add_stream("comm");
    tokens_local_ = job.batch_tokens / static_cast<double>(grid.gdata);
  }

  IterationBreakdown build_and_run(EventSimulator::Result* timeline) {
    const auto fcs = job_.model.fc_layers_per_block();
    std::vector<SublayerPlan> plan;
    std::size_t fc_index = 0;
    for (int block = 0; block < job_.model.layers; ++block) {
      for (const auto& fc : fcs) {
        plan.push_back(SublayerPlan{fc.in_features, fc.out_features,
                                    fc_index % 2 == 1});
        ++fc_index;
      }
    }

    forward_pass(plan);
    lm_head();
    backward_pass(plan);
    finish();

    const EventSimulator::Result r = sim_.run();
    if (timeline) *timeline = r;
    IterationBreakdown out;
    out.total_s = r.makespan;
    out.compute_s = r.stream_busy[compute_];
    out.exposed_comm_s = out.total_s - out.compute_s;
    out.comm_busy_s = r.stream_busy[comm_];
    out.num_tasks = sim_.num_tasks();
    return out;
  }

 private:
  using Deps = std::vector<TaskId>;

  double jitter(double seconds) {
    if (options_.noise_sigma <= 0.0) return seconds;
    return seconds * std::exp(options_.noise_sigma * rng_.normal());
  }

  TaskId add_compute(double seconds, Deps deps, const char* name) {
    // End-to-end steps sustain only framework_efficiency of raw kernel
    // throughput (launch overheads, small ops between GEMMs).
    return sim_.add_task(compute_,
                         jitter(seconds / machine_.framework_efficiency),
                         std::move(deps), name);
  }

  std::optional<TaskId> add_collective(CollectiveKind kind, int group_size,
                                       double full_bytes, double beta,
                                       Deps deps, const char* name) {
    const double latency =
        options_.include_latency ? machine_.message_latency_s : 0.0;
    const CollectiveCost cost =
        ring_collective_cost(kind, group_size, full_bytes, beta, latency);
    if (cost.seconds <= 0.0) return std::nullopt;
    return sim_.add_task(comm_, jitter(cost.seconds), std::move(deps), name);
  }

  /// The fastest transpose mode for a GEMM of this shape, or the framework
  /// default when tuning is off (§V-C). The quirk key is the model's hidden
  /// size: BLAS kernel selection keys on the global layer's leading
  /// dimensions, which survive AxoNN's sharding.
  double gemm_time(GemmMode default_mode, std::uint64_t m, std::uint64_t n,
                   std::uint64_t k) const {
    const auto quirk_dim = static_cast<std::uint64_t>(job_.model.hidden);
    if (!options_.kernel_tuning) {
      return machine_.gemm_seconds(default_mode, m, n, k, quirk_dim);
    }
    double best = machine_.gemm_seconds(GemmMode::kNN, m, n, k, quirk_dim);
    best = std::min(best,
                    machine_.gemm_seconds(GemmMode::kNT, m, n, k, quirk_dim));
    best = std::min(best,
                    machine_.gemm_seconds(GemmMode::kTN, m, n, k, quirk_dim));
    return best;
  }

  struct SublayerGeometry {
    std::uint64_t m_local, k_local, n_local;
    int sum_group, col_group;    ///< group sizes for fwd-AR / bwd-AR
    double beta_sum, beta_col;   ///< bandwidths of those groups
    double ag_bytes, ar_fwd_bytes, ar_bwd_bytes, rs_bytes, dp_bytes;
  };

  SublayerGeometry geometry(const SublayerPlan& sub) const {
    SublayerGeometry g{};
    const double k = static_cast<double>(sub.weight_rows);
    const double n = static_cast<double>(sub.weight_cols);
    const int g_row = sub.transposed ? grid_.gx : grid_.gy;
    const int g_col = sub.transposed ? grid_.gy : grid_.gx;
    const double beta_row = sub.transposed ? beta_[0] : beta_[1];
    const double beta_col = sub.transposed ? beta_[1] : beta_[0];

    g.m_local = static_cast<std::uint64_t>(
        std::max(1.0, tokens_local_ / grid_.gz));
    g.k_local = std::max<std::uint64_t>(
        1, sub.weight_rows / static_cast<std::uint64_t>(g_row));
    g.n_local = std::max<std::uint64_t>(
        1, sub.weight_cols / static_cast<std::uint64_t>(g_col));

    g.sum_group = g_row;
    g.col_group = g_col;
    g.beta_sum = beta_row;
    g.beta_col = beta_col;

    const double m = tokens_local_;
    const double gz = grid_.gz;
    // Eqs. 1-5, as bytes of logical payload per collective.
    g.ag_bytes = kBf16Bytes * k * n / (g_row * g_col);
    g.ar_fwd_bytes = kBf16Bytes * m * n / (gz * g_col);
    g.ar_bwd_bytes = kBf16Bytes * m * k / (gz * g_row);
    g.rs_bytes = kBf16Bytes * k * n / (g_row * g_col);
    g.dp_bytes = kBf16Bytes * k * n / (static_cast<double>(grid_.gx) *
                                       grid_.gy * grid_.gz);
    return g;
  }

  double attention_flops_fwd_per_gpu() const {
    // 4 * B_tok * s * h per layer (QK^T and AV), split over tensor ranks;
    // tokens_local_ is already the per-data-group share.
    return 4.0 * tokens_local_ * job_.model.seq_len * job_.model.hidden /
           (static_cast<double>(grid_.gx) * grid_.gy * grid_.gz);
  }

  double attention_seconds(double flops) const {
    const double eff =
        machine_.gemm.peak_fraction * kAttentionEfficiencyFactor;
    return flops / (machine_.advertised_peak_flops * eff);
  }

  // ---- forward pass -------------------------------------------------------
  void forward_pass(const std::vector<SublayerPlan>& plan) {
    std::optional<TaskId> prev_ready;  // task producing this sublayer's input
    std::size_t index = 0;
    for (const auto& sub : plan) {
      const SublayerGeometry g = geometry(sub);

      Deps ag_deps;
      if (!options_.overlap.all_gather && prev_ready) {
        // Blocking all-gather: cannot be issued before the previous
        // sublayer's computation reaches this layer.
        ag_deps.push_back(*prev_ready);
      }
      const auto ag = add_collective(CollectiveKind::kAllGather, grid_.gz,
                                     g.ag_bytes, beta_[2], std::move(ag_deps),
                                     "AG_z");

      Deps gemm_deps;
      if (ag) gemm_deps.push_back(*ag);
      if (prev_ready) gemm_deps.push_back(*prev_ready);
      const TaskId fwd = add_compute(
          gemm_time(GemmMode::kNN, g.m_local, g.n_local, g.k_local),
          std::move(gemm_deps), "fwd_gemm");

      const auto ar = add_collective(CollectiveKind::kAllReduce, g.sum_group,
                                     g.ar_fwd_bytes, g.beta_sum, {fwd},
                                     "AR_fwd");
      prev_ready = ar ? *ar : fwd;

      // Attention BMMs + softmax after the QKV sublayer of each block.
      if (index % 4 == 0) {
        const TaskId attn =
            add_compute(attention_seconds(attention_flops_fwd_per_gpu()),
                        {*prev_ready}, "attn_fwd");
        prev_ready = attn;
      }
      ++index;
    }
    fwd_tail_ = prev_ready;
  }

  // ---- LM head + loss -----------------------------------------------------
  void lm_head() {
    const double v = job_.model.vocab;
    const double h = job_.model.hidden;
    const double tensor = static_cast<double>(grid_.gx) * grid_.gy * grid_.gz;
    const double fwd_flops = 2.0 * tokens_local_ * v * h / tensor;
    Deps deps;
    if (fwd_tail_) deps.push_back(*fwd_tail_);
    const TaskId head_fwd = add_compute(
        fwd_flops / (machine_.advertised_peak_flops *
                     machine_.gemm.peak_fraction),
        std::move(deps), "lm_head_fwd");
    const TaskId head_bwd = add_compute(
        2.0 * fwd_flops / (machine_.advertised_peak_flops *
                           machine_.gemm.peak_fraction),
        {head_fwd}, "lm_head_bwd");
    grad_ready_ = head_bwd;
  }

  // ---- backward pass ------------------------------------------------------
  void backward_pass(const std::vector<SublayerPlan>& plan) {
    // Walk blocks in reverse; recompute each block's forward first when
    // activation checkpointing is on (Megatron-style: the recompute redoes
    // the forward GEMMs *and* their output all-reduces).
    const int sublayers_per_block = 4;
    const int blocks = static_cast<int>(plan.size()) / sublayers_per_block;
    std::optional<TaskId> blocking_rs;  // only set when ORS is off

    for (int block = blocks - 1; block >= 0; --block) {
      if (job_.activation_checkpointing) {
        recompute_block(plan, block, blocking_rs);
      }
      for (int f = sublayers_per_block - 1; f >= 0; --f) {
        const auto& sub =
            plan[static_cast<std::size_t>(block * sublayers_per_block + f)];
        const SublayerGeometry g = geometry(sub);

        // Attention backward sits between attn_out (f=1) and qkv (f=0).
        if (f == 0) {
          Deps deps{*grad_ready_};
          if (blocking_rs) deps.push_back(*blocking_rs);
          blocking_rs.reset();
          const TaskId attn_bwd = add_compute(
              attention_seconds(2.0 * attention_flops_fwd_per_gpu()),
              std::move(deps), "attn_bwd");
          grad_ready_ = attn_bwd;
        }

        Deps di_deps{*grad_ready_};
        if (f == sublayers_per_block - 1 && recompute_tail_) {
          // The recomputed activations (including their all-reduces on the
          // comm stream) must be ready before this block's backward starts.
          di_deps.push_back(*recompute_tail_);
        }
        if (blocking_rs) {
          di_deps.push_back(*blocking_rs);
          blocking_rs.reset();
        }
        const TaskId di = add_compute(
            gemm_time(GemmMode::kNT, g.m_local, g.k_local, g.n_local),
            std::move(di_deps), "bwd_dI_gemm");

        const auto ar_x =
            add_collective(CollectiveKind::kAllReduce, g.col_group,
                           g.ar_bwd_bytes, g.beta_col, {di}, "AR_bwd");

        Deps dw_deps{di};
        if (!options_.overlap.all_reduce && ar_x) {
          // Baseline: wait for the input-gradient all-reduce before the
          // weight-gradient GEMM (no OAR).
          dw_deps.push_back(*ar_x);
        }
        const TaskId dw = add_compute(
            gemm_time(GemmMode::kTN, g.k_local, g.n_local, g.m_local),
            std::move(dw_deps), "bwd_dW_gemm");

        const auto rs = add_collective(CollectiveKind::kReduceScatter,
                                       grid_.gz, g.rs_bytes, beta_[2], {dw},
                                       "RS_z");
        if (rs) {
          rs_tasks_.push_back(*rs);
          if (!options_.overlap.reduce_scatter) blocking_rs = *rs;
        }

        dp_bytes_total_ += g.dp_bytes;
        grad_ready_ = ar_x ? *ar_x : di;
      }
    }
    if (blocking_rs) final_blockers_.push_back(*blocking_rs);
  }

  void recompute_block(const std::vector<SublayerPlan>& plan, int block,
                       std::optional<TaskId>& blocking_rs) {
    std::optional<TaskId> prev;
    for (int f = 0; f < 4; ++f) {
      const auto& sub = plan[static_cast<std::size_t>(block * 4 + f)];
      const SublayerGeometry g = geometry(sub);
      Deps deps;
      if (prev) deps.push_back(*prev);
      if (blocking_rs) {
        deps.push_back(*blocking_rs);
        blocking_rs.reset();
      }
      const TaskId gemm = add_compute(
          gemm_time(GemmMode::kNN, g.m_local, g.n_local, g.k_local),
          std::move(deps), "recompute_gemm");
      const auto ar = add_collective(CollectiveKind::kAllReduce, g.sum_group,
                                     g.ar_fwd_bytes, g.beta_sum, {gemm},
                                     "recompute_AR");
      prev = ar ? *ar : gemm;
      if (f == 0) {
        prev = add_compute(attention_seconds(attention_flops_fwd_per_gpu()),
                           {*prev}, "recompute_attn");
      }
    }
    recompute_tail_ = prev;
  }

  // ---- data-parallel all-reduce + optimizer -------------------------------
  void finish() {
    Deps deps = rs_tasks_;
    for (TaskId t : final_blockers_) deps.push_back(t);
    if (grad_ready_) deps.push_back(*grad_ready_);
    std::optional<TaskId> dp;
    if (grid_.gdata > 1) {
      dp = add_collective(CollectiveKind::kAllReduce, grid_.gdata,
                          dp_bytes_total_, beta_[3], std::move(deps), "AR_data");
    }
    // Optimizer: 16 bytes/param of fp32 state streamed through HBM.
    const double local_params =
        static_cast<double>(job_.model.parameter_count()) /
        (static_cast<double>(grid_.gx) * grid_.gy * grid_.gz);
    Deps opt_deps;
    if (dp) {
      opt_deps.push_back(*dp);
    } else if (grad_ready_) {
      opt_deps.push_back(*grad_ready_);
    }
    add_compute(16.0 * local_params / machine_.hbm_bandwidth,
                std::move(opt_deps), "optimizer");
  }

  const model::TrainingJob& job_;
  const MachineConfig& machine_;
  GridShape grid_;
  SimOptions options_;
  Rng rng_;

  EventSimulator sim_;
  StreamId compute_ = 0;
  StreamId comm_ = 0;
  double beta_[4] = {};
  double tokens_local_ = 0;

  std::optional<TaskId> fwd_tail_;
  std::optional<TaskId> grad_ready_;
  std::optional<TaskId> recompute_tail_;
  std::vector<TaskId> rs_tasks_;
  std::vector<TaskId> final_blockers_;
  double dp_bytes_total_ = 0;
};

}  // namespace

IterationBreakdown simulate_iteration(const model::TrainingJob& job,
                                      const MachineConfig& machine,
                                      const IntraNodeBandwidthDB& db,
                                      const GridShape& grid,
                                      const SimOptions& options,
                                      EventSimulator::Result* timeline) {
  AXONN_CHECK_MSG(grid.total() >= 1, "empty grid");
  ScheduleBuilder builder(job, machine, db, grid, options);
  return builder.build_and_run(timeline);
}

obs::StepTelemetry to_step_telemetry(const IterationBreakdown& breakdown,
                                     std::uint64_t step, int world) {
  AXONN_CHECK_MSG(world >= 1, "to_step_telemetry needs world >= 1");
  // The event simulator models one representative GCD; every simulated rank
  // sees the same schedule, so the fold buffer is world identical copies.
  std::vector<float> fold(obs::fold_size(world), 0.0f);
  auto fill = [&](obs::StepField f, double value) {
    for (int r = 0; r < world; ++r) {
      fold[static_cast<std::size_t>(f) * static_cast<std::size_t>(world) +
           static_cast<std::size_t>(r)] = static_cast<float>(value);
    }
  };
  fill(obs::StepField::kWallS, breakdown.total_s);
  fill(obs::StepField::kExposedCommS, breakdown.exposed_comm_s);
  fill(obs::StepField::kSelfS, breakdown.compute_s);
  return obs::fold_to_telemetry(step, world, fold);
}

}  // namespace axonn::sim
