#pragma once

// Effective bandwidth model for process groups in a hierarchical 4D grid
// (§V-B of the paper).
//
// A process group at level i of the hierarchy (X innermost, then Y, Z,
// data) sees bandwidth that depends on whether the group fits inside a node
// and on how many sibling collectives run concurrently:
//
//  Case 1 (prod_{j<=i} G_j <= G_node): intra-node. The paper profiles all
//  (G0, G1) two-level hierarchies with G0*G1 <= G_node into a database; we
//  reproduce that structure with IntraNodeBandwidthDB, whose default
//  "profiler" is a synthetic fabric-contention model (the substitution for
//  running micro-benchmarks on real NVLink/Infinity Fabric).
//
//  Case 2 (otherwise): inter-node. Eq. 7:
//      beta_i = beta_inter / min(G_node, prod_{j<i} G_j)
//  because each preceding-group member adds a ring that must cross the node
//  boundary, up to the number of GPUs in a node.

#include <map>
#include <functional>

#include "axonn/sim/machine.hpp"

namespace axonn::sim {

class IntraNodeBandwidthDB {
 public:
  /// A measurement function: achieved per-peer bandwidth when groups of
  /// size g1 run simultaneous 1 GB collectives with g0 concurrent rings
  /// (g0 = product of preceding group sizes).
  using Measure = std::function<double(int g0, int g1)>;

  /// Profiles every (g0, g1) with g0 * g1 <= gpus_per_node. With no
  /// explicit `measure`, uses the synthetic fabric model below.
  static IntraNodeBandwidthDB profile(const MachineConfig& machine,
                                      Measure measure = {});

  /// The synthetic measurement the default profiler uses:
  ///   link_bw / (1 + fabric_sharing * (g0 - 1))
  /// — concurrent rings over disjoint GPU subsets contend on the shared
  /// fabric in proportion to the machine's fabric_sharing factor.
  static double synthetic_measure(const MachineConfig& machine, int g0, int g1);

  /// Recorded bandwidth for (g0 = preceding product, g1 = group size).
  /// Throws if the tuple was not profiled.
  double lookup(int preceding, int group_size) const;

  bool contains(int preceding, int group_size) const;
  std::size_t num_entries() const { return table_.size(); }

 private:
  std::map<std::pair<int, int>, double> table_;
};

/// The beta_i of Eq. 7 and Case 1 combined: effective peer-to-peer bandwidth
/// for a group of `group_size` GPUs whose preceding hierarchy levels
/// multiply to `preceding`.
double effective_bandwidth(const MachineConfig& machine,
                           const IntraNodeBandwidthDB& db, int preceding,
                           int group_size);

}  // namespace axonn::sim
