#pragma once

// Deterministic discrete-event engine with CUDA-stream semantics.
//
// The simulated GPU exposes two resources: a compute stream and a
// communication stream (NCCL/RCCL collectives run on their own stream).
// Tasks submitted to a stream execute in submission order; a task
// additionally waits for its cross-stream dependencies (the analogue of
// cudaStreamWaitEvent). The engine computes start/finish times for every
// task, the makespan, and per-stream busy time — which is exactly the
// "computation vs non-overlapped communication" breakdown of Figs. 5 and 7.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "axonn/base/error.hpp"

namespace axonn::sim {

using StreamId = std::size_t;
using TaskId = std::size_t;

class EventSimulator {
 public:
  StreamId add_stream(std::string name);

  /// Submits a task of `duration` seconds to `stream`; it starts when the
  /// stream is free AND every dependency has finished. Tasks on one stream
  /// run in submission order (a later submission never starts before an
  /// earlier one on the same stream).
  TaskId add_task(StreamId stream, double duration,
                  std::vector<TaskId> deps = {}, std::string name = {});

  struct TaskResult {
    double start = 0;
    double finish = 0;
    StreamId stream = 0;
    std::string name;
  };

  struct Result {
    double makespan = 0;
    std::vector<TaskResult> tasks;          ///< indexed by TaskId
    std::vector<double> stream_busy;        ///< total executing time per stream
    std::vector<std::string> stream_names;

    /// Time a given stream spends executing while another stream is idle at
    /// the same instant is not tracked per-pair; the standard breakdown used
    /// by the benches is:
    ///   compute = stream_busy[compute_stream]
    ///   exposed_comm = makespan - compute
    double exposed_time(StreamId busy_stream) const {
      return makespan - stream_busy[busy_stream];
    }
  };

  /// Runs the schedule. Deterministic; may be called once per built graph.
  Result run() const;

  std::size_t num_tasks() const { return tasks_.size(); }
  std::size_t num_streams() const { return stream_names_.size(); }

 private:
  struct Task {
    StreamId stream;
    double duration;
    std::vector<TaskId> deps;
    std::string name;
  };

  std::vector<std::string> stream_names_;
  std::vector<Task> tasks_;
};

/// Chrome-trace ("chrome://tracing" / Perfetto) JSON for a simulated
/// timeline: one complete ('X') event per task, pid 0, one tid per stream
/// (named from stream_names). Simulated seconds become trace microseconds
/// scaled by 1e6, so real-runtime traces from axonn::obs and simulated ones
/// are visually comparable side by side.
void write_chrome_trace(const EventSimulator::Result& result,
                        std::ostream& out);
/// Convenience file variant; returns false if the file cannot be written.
bool write_chrome_trace_file(const EventSimulator::Result& result,
                             const std::string& path);

}  // namespace axonn::sim
