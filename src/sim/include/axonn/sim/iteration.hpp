#pragma once

// Detailed simulation of one training iteration (batch) of the 4D hybrid
// parallel algorithm on a described machine.
//
// This is the "observed" side of the paper's evaluation: where the
// analytical performance model (axonn::perf) only sums Eqs. 1–5, this
// simulator builds the full per-layer task graph of Algorithm 1 — forward
// all-gathers and all-reduces, backward all-reduces / reduce-scatters,
// activation-checkpointing recomputation, the data-parallel gradient
// all-reduce and the optimizer step — places compute on a compute stream
// and collectives on a communication stream, honours the OAR/ORS/OAG
// overlap optimizations (§V-D), per-message latency, GEMM mode efficiency
// and the kernel-tuning pass (§V-C), and reports the makespan plus the
// computation / exposed-communication breakdown of Figs. 5 and 7.

#include <cstdint>

#include "axonn/base/step_telemetry.hpp"
#include "axonn/model/gpt.hpp"
#include "axonn/sim/bandwidth.hpp"
#include "axonn/sim/event_sim.hpp"
#include "axonn/sim/grid_shape.hpp"
#include "axonn/sim/machine.hpp"

namespace axonn::sim {

/// Which of §V-D's overlap optimizations are active.
struct OverlapFlags {
  bool all_reduce = false;      ///< OAR: overlap backward AR_x with dW GEMM
  bool reduce_scatter = false;  ///< ORS: defer RS_z waits to end of backward
  bool all_gather = false;      ///< OAG: preemptively enqueue forward AG_z

  static OverlapFlags none() { return {}; }
  static OverlapFlags all() { return {true, true, true}; }
};

struct SimOptions {
  OverlapFlags overlap = OverlapFlags::all();
  /// §V-C automated BLAS tuning: pick the fastest transpose mode per matmul
  /// instead of the framework defaults (NN fwd, NT for dL/dI, TN for dL/dW).
  bool kernel_tuning = false;
  /// Include the per-message startup latency (the analytical model drops it
  /// per Assumption-3).
  bool include_latency = true;
  /// Multiplicative log-normal-ish jitter applied per task, emulating the
  /// run-to-run variability the paper reports (network congestion,
  /// filesystem interference). 0 disables; 0.03 is a realistic sigma.
  double noise_sigma = 0.0;
  std::uint64_t noise_seed = 0;
};

struct IterationBreakdown {
  double total_s = 0;         ///< batch time (makespan)
  double compute_s = 0;       ///< compute-stream busy time
  double exposed_comm_s = 0;  ///< total_s - compute_s
  double comm_busy_s = 0;     ///< comm-stream busy time (incl. hidden part)
  std::size_t num_tasks = 0;
};

/// Simulates one iteration. Throws if grid.total() is not consistent with a
/// whole number of nodes or the model does not fit in device memory is NOT
/// checked here — use fits_in_memory() to pre-filter. When `timeline` is
/// non-null it receives the full task-level schedule, exportable with
/// write_chrome_trace() for side-by-side comparison with real-runtime
/// traces from axonn::obs.
IterationBreakdown simulate_iteration(const model::TrainingJob& job,
                                      const MachineConfig& machine,
                                      const IntraNodeBandwidthDB& db,
                                      const GridShape& grid,
                                      const SimOptions& options = {},
                                      EventSimulator::Result* timeline = nullptr);

/// Memory feasibility filter: the per-GPU footprint of the job under this
/// grid, compared against usable device DRAM (with a fragmentation margin).
bool fits_in_memory(const model::TrainingJob& job, const MachineConfig& machine,
                    const GridShape& grid, double usable_fraction = 0.92);

/// Time of one ring collective of `wire kind` on a group of `group_size`
/// with effective bandwidth `beta`, moving `full_bytes` of logical payload.
/// Exposed for tests and the GEMM/collective micro-benches.
struct CollectiveCost {
  double seconds = 0;
  double wire_bytes_per_rank = 0;
  int steps = 0;
};
enum class CollectiveKind { kAllGather, kReduceScatter, kAllReduce };
CollectiveCost ring_collective_cost(CollectiveKind kind, int group_size,
                                    double full_bytes, double beta,
                                    double per_message_latency);

/// Bridges the simulator into the live-telemetry pipeline (DESIGN.md §10):
/// one simulated iteration becomes the same StepTelemetry the real training
/// loop folds, with identical per-rank values (the event simulator models a
/// straggler-free machine), so sim-vs-real runs stream into one JSONL file
/// and are directly comparable field by field.
obs::StepTelemetry to_step_telemetry(const IterationBreakdown& breakdown,
                                     std::uint64_t step, int world);

}  // namespace axonn::sim
