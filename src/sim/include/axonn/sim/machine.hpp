#pragma once

// Machine descriptions for the three supercomputers in the paper's
// evaluation, plus the per-architecture GEMM efficiency model.
//
// SUBSTITUTION NOTE (see DESIGN.md): absolute bandwidth and efficiency
// parameters are calibrated from the numbers the paper publishes (§VI-B,
// §VI-C): 4 Slingshot-11 NICs x 25 GB/s per node on all systems, advertised
// vs empirical GEMM peaks of 312/280 (A100), 191.5/125 (MI250X GCD) and
// 989/813 (H100) Tflop/s, and the pathological TN kernel on MI250X at large
// hidden sizes (6% of peak vs 55%, §V-C).

#include <cstdint>
#include <string>
#include <vector>

#include "axonn/tensor/gemm.hpp"

namespace axonn::sim {

/// Smooth saturating model of GEMM efficiency as a fraction of the
/// advertised peak, with per-transpose-mode multipliers and optional
/// architecture quirks (a mode that collapses above a dimension threshold).
struct GemmEfficiencyModel {
  /// Fraction of advertised peak reached by the best possible kernel on a
  /// huge square GEMM (empirical_peak / advertised_peak).
  double peak_fraction = 0.9;
  /// Dimension at which the size roll-off reaches half of peak_fraction.
  double half_dim = 1536.0;
  /// Baseline multipliers per mode (NN is the reference).
  double nt_penalty = 0.95;
  double tn_penalty = 0.90;

  struct ModeQuirk {
    GemmMode mode = GemmMode::kTN;
    /// Triggers when the quirk key reaches this value. The key is the
    /// caller-supplied `quirk_dim` when nonzero (AxoNN passes the layer's
    /// full hidden size — BLAS kernel-selection heuristics key on leading
    /// dimensions/strides, which follow the global layer shape, not the
    /// local shard), else min(m, n, k).
    std::uint64_t min_dim = 1ull << 62;
    double efficiency = 1.0;  ///< absolute fraction of advertised peak
  };
  std::vector<ModeQuirk> quirks;

  /// Efficiency (fraction of advertised peak) of a GEMM of the given mode
  /// and shape. `quirk_dim`, when nonzero, overrides the shape-derived key
  /// used to match quirks (see ModeQuirk::min_dim).
  double efficiency(GemmMode mode, std::uint64_t m, std::uint64_t n,
                    std::uint64_t k, std::uint64_t quirk_dim = 0) const;
};

struct MachineConfig {
  std::string name;
  int gpus_per_node = 4;
  double advertised_peak_flops = 0;  ///< per GPU/GCD, bf16
  double empirical_peak_flops = 0;   ///< measured GEMM peak (§VI-C)
  double dram_bytes = 0;             ///< per GPU/GCD

  /// beta_inter: peer-to-peer bidirectional bandwidth between node pairs
  /// (Assumption-5). 4 NICs x 25 GB/s on all three systems.
  double internode_bandwidth = 100e9;

  /// Peer-to-peer bandwidth of the intra-node fabric link a single ring can
  /// use with no contention.
  double intranode_link_bandwidth = 0;

  /// How strongly concurrent intra-node rings share fabric bandwidth:
  /// 0 = full crossbar (NVSwitch-like), 1 = a single shared bus.
  double fabric_sharing = 0.3;

  /// Per-message startup overhead used by the detailed simulator (the
  /// analytical perf model ignores it per Assumption-3).
  double message_latency_s = 10e-6;

  /// Device memory bandwidth — drives the (memory-bound) optimizer step.
  double hbm_bandwidth = 1.5e12;

  /// Global network congestion (simulator only; the paper's analytical
  /// model stops at Eq. 7): inter-node bandwidth degrades by this fraction
  /// per doubling of the job's node count beyond congestion_free_nodes —
  /// the "rising overheads of communication" the paper observes at 16K-32K
  /// GCDs (§VII-A) and the run-to-run congestion of §VI-B.
  double congestion_per_doubling = 0.0;
  double congestion_free_nodes = 512.0;

  /// Multiplier (<= 1) on inter-node bandwidth for a job spanning `nodes`.
  double congestion_factor(double nodes) const;

  /// Fraction of kernel throughput an end-to-end training step sustains on
  /// this software stack (framework overheads: kernel launches, optimizer
  /// glue, small ops). Applied to compute-task durations by the simulator;
  /// pure-GEMM surveys are unaffected. Calibrated against Table III.
  double framework_efficiency = 1.0;

  GemmEfficiencyModel gemm;

  /// Seconds to execute a GEMM of the given mode/shape on one GPU/GCD.
  double gemm_seconds(GemmMode mode, std::uint64_t m, std::uint64_t n,
                      std::uint64_t k, std::uint64_t quirk_dim = 0) const;
};

/// NERSC Perlmutter: 4x NVIDIA A100-40GB per node.
MachineConfig perlmutter();
/// OLCF Frontier: 4x AMD MI250X per node = 8 independently-managed GCDs.
MachineConfig frontier();
/// CSCS Alps: 4x GH200 per node (H100 GPUs).
MachineConfig alps();

/// All three, for sweep drivers.
std::vector<MachineConfig> all_machines();

/// Looks a machine up by name; throws on unknown.
MachineConfig machine_by_name(const std::string& name);

}  // namespace axonn::sim
