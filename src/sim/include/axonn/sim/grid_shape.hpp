#pragma once

// The 4D virtual grid shape (Gx, Gy, Gz, Gdata) — §V-A/§V-B of the paper.
//
// The hierarchy order is fixed: X-tensor parallelism innermost, then Y, Z,
// and data parallelism outermost. `preceding(i)` is the product of all
// dimensions inside level i, which Eq. 7 uses to model bandwidth sharing.

#include <cstdint>
#include <string>
#include <vector>

#include "axonn/base/error.hpp"

namespace axonn::sim {

struct GridShape {
  int gx = 1;
  int gy = 1;
  int gz = 1;
  int gdata = 1;

  int tensor() const { return gx * gy * gz; }
  std::int64_t total() const {
    return static_cast<std::int64_t>(gx) * gy * gz * gdata;
  }

  /// Product of the hierarchy levels preceding level i (0=X, 1=Y, 2=Z,
  /// 3=data).
  int preceding(int level) const {
    AXONN_CHECK(level >= 0 && level < 4);
    int product = 1;
    const int dims[4] = {gx, gy, gz, gdata};
    for (int j = 0; j < level; ++j) product *= dims[j];
    return product;
  }

  int dim(int level) const {
    AXONN_CHECK(level >= 0 && level < 4);
    const int dims[4] = {gx, gy, gz, gdata};
    return dims[level];
  }

  std::string to_string() const {
    return "(" + std::to_string(gx) + "x" + std::to_string(gy) + "x" +
           std::to_string(gz) + ", d=" + std::to_string(gdata) + ")";
  }

  friend bool operator==(const GridShape&, const GridShape&) = default;
};

/// Enumerates every ordered factorization gx*gy*gz*gdata == total_gpus.
/// This is the configuration space the performance model ranks (§V-B).
std::vector<GridShape> enumerate_grids(std::int64_t total_gpus);

/// Degenerate-grid helpers for the equivalence claims of §V-A.
inline GridShape fsdp_grid(int gpus) { return GridShape{1, 1, gpus, 1}; }
inline GridShape megatron_grid(int tensor, int data) {
  return GridShape{tensor, 1, 1, data};
}
inline GridShape hybrid_sharded_grid(int shard, int data) {
  return GridShape{1, 1, shard, data};
}
inline GridShape pure_data_parallel_grid(int gpus) {
  return GridShape{1, 1, 1, gpus};
}

}  // namespace axonn::sim
