#include "axonn/sim/machine.hpp"

#include <algorithm>
#include <cmath>

#include "axonn/base/error.hpp"
#include "axonn/base/units.hpp"

namespace axonn::sim {

double GemmEfficiencyModel::efficiency(GemmMode mode, std::uint64_t m,
                                       std::uint64_t n, std::uint64_t k,
                                       std::uint64_t quirk_dim) const {
  const std::uint64_t min_dim = std::min({m, n, k});
  const std::uint64_t quirk_key = quirk_dim != 0 ? quirk_dim : min_dim;
  for (const auto& quirk : quirks) {
    if (quirk.mode == mode && quirk_key >= quirk.min_dim) {
      return quirk.efficiency;
    }
  }
  // Saturating size roll-off: small GEMMs cannot fill the device.
  const double d = static_cast<double>(min_dim);
  const double size_factor = d / (d + half_dim);
  double mode_factor = 1.0;
  if (mode == GemmMode::kNT) mode_factor = nt_penalty;
  if (mode == GemmMode::kTN) mode_factor = tn_penalty;
  return peak_fraction * size_factor * mode_factor;
}

double MachineConfig::gemm_seconds(GemmMode mode, std::uint64_t m,
                                   std::uint64_t n, std::uint64_t k,
                                   std::uint64_t quirk_dim) const {
  const double eff = gemm.efficiency(mode, m, n, k, quirk_dim);
  AXONN_CHECK_MSG(eff > 0.0, "GEMM efficiency must be positive");
  const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                       static_cast<double>(k);
  return flops / (advertised_peak_flops * eff);
}

double MachineConfig::congestion_factor(double nodes) const {
  if (congestion_per_doubling <= 0.0 || nodes <= congestion_free_nodes) {
    return 1.0;
  }
  const double doublings = std::log2(nodes / congestion_free_nodes);
  return 1.0 / (1.0 + congestion_per_doubling * doublings);
}

MachineConfig perlmutter() {
  MachineConfig m;
  m.name = "Perlmutter";
  m.gpus_per_node = 4;
  m.advertised_peak_flops = 312e12;
  m.empirical_peak_flops = 280e12;  // 90% of peak at 32768^2 (§VI-C)
  m.dram_bytes = 40.0 * units::kGB;
  m.internode_bandwidth = 100e9;       // 4 NICs x 25 GB/s
  m.intranode_link_bandwidth = 200e9;  // NVLink3 pairwise
  m.fabric_sharing = 0.15;             // NVLink is close to a crossbar
  m.hbm_bandwidth = 1.55e12;
  m.framework_efficiency = 0.72;
  m.gemm.peak_fraction = 280.0 / 312.0;
  m.gemm.half_dim = 1200.0;
  return m;
}

MachineConfig frontier() {
  MachineConfig m;
  m.name = "Frontier";
  m.gpus_per_node = 8;  // 4 MI250X = 8 GCDs, each managed by one process
  m.advertised_peak_flops = 191.5e12;
  m.empirical_peak_flops = 125e12;  // 65% of peak at 32768^2 (§VI-C)
  m.dram_bytes = 64.0 * units::kGB;
  m.internode_bandwidth = 100e9;
  m.intranode_link_bandwidth = 100e9;  // Infinity Fabric between GCDs
  m.fabric_sharing = 0.45;             // IF mesh shares links more heavily
  m.hbm_bandwidth = 1.6e12;
  m.congestion_per_doubling = 0.35;
  m.framework_efficiency = 0.95;
  m.gemm.peak_fraction = 125.0 / 191.5;
  m.gemm.half_dim = 1800.0;
  m.gemm.tn_penalty = 0.85;
  // §V-C: the rocBLAS TN kernel collapses to 6% of the theoretical peak for
  // transformer matmuls with very large hidden sizes (observed on GPT-320B,
  // hidden 16384); other modes sustain ~55%.
  m.gemm.quirks.push_back({GemmMode::kTN, 16384, 0.06});
  return m;
}

MachineConfig alps() {
  MachineConfig m;
  m.name = "Alps";
  m.gpus_per_node = 4;
  m.advertised_peak_flops = 989e12;
  m.empirical_peak_flops = 813e12;  // NVIDIA GH200 benchmark guide (§VI-C)
  m.dram_bytes = 96.0 * units::kGB;
  m.internode_bandwidth = 100e9;
  m.intranode_link_bandwidth = 300e9;  // NVLink4
  m.fabric_sharing = 0.1;
  m.hbm_bandwidth = 3.35e12;
  m.congestion_per_doubling = 0.1;
  m.framework_efficiency = 0.60;
  m.gemm.peak_fraction = 813.0 / 989.0;
  m.gemm.half_dim = 2400.0;  // H100 needs bigger tiles to saturate
  return m;
}

std::vector<MachineConfig> all_machines() {
  return {perlmutter(), frontier(), alps()};
}

MachineConfig machine_by_name(const std::string& name) {
  for (const auto& machine : all_machines()) {
    if (machine.name == name) return machine;
  }
  throw Error("unknown machine: " + name);
}

}  // namespace axonn::sim
