#include "axonn/base/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "axonn/base/error.hpp"

namespace axonn {

namespace {

bool looks_numeric(const std::string& text) {
  if (text.empty()) return false;
  bool digit_seen = false;
  for (char c : text) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != '-' && c != '+' && c != '%' && c != 'e' &&
               c != 'E' && c != 'x') {
      return false;
    }
  }
  return digit_seen;
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  AXONN_CHECK_MSG(!headers_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  AXONN_CHECK_MSG(cells.size() <= headers_.size(),
                  "row has more cells than the table has columns");
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::cell(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string Table::cell(long long value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%lld", value);
  return buffer;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << " | ";
      const auto pad = widths[c] - row[c].size();
      if (looks_numeric(row[c])) {
        out << std::string(pad, ' ') << row[c];
      } else {
        out << row[c] << std::string(pad, ' ');
      }
    }
    out << '\n';
  };

  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) out << "-+-";
    out << std::string(widths[c], '-');
  }
  out << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

void Table::print(std::ostream& out) const { out << to_string(); }

}  // namespace axonn
