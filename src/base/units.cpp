#include "axonn/base/units.hpp"

#include <cmath>
#include <cstdio>

namespace axonn::units {

namespace {

std::string printf_string(const char* fmt, double value, const char* suffix) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), fmt, value, suffix);
  return buffer;
}

}  // namespace

std::string format_flops(double flops_per_sec) {
  if (flops_per_sec >= kExaflop) {
    return printf_string("%.3f %s", flops_per_sec / kExaflop, "Exaflop/s");
  }
  if (flops_per_sec >= kPetaflop) {
    return printf_string("%.1f %s", flops_per_sec / kPetaflop, "Pflop/s");
  }
  if (flops_per_sec >= kTeraflop) {
    return printf_string("%.1f %s", flops_per_sec / kTeraflop, "Tflop/s");
  }
  return printf_string("%.3g %s", flops_per_sec, "flop/s");
}

std::string format_count(double count) {
  if (count >= kTrillion) return printf_string("%.1f%s", count / kTrillion, "T");
  if (count >= kBillion) return printf_string("%.1f%s", count / kBillion, "B");
  if (count >= kMillion) return printf_string("%.1f%s", count / kMillion, "M");
  if (count >= kThousand) return printf_string("%.1f%s", count / kThousand, "K");
  return printf_string("%.0f%s", count, "");
}

std::string format_duration_long(double seconds) {
  const double days = seconds / kSecondsPerDay;
  if (days < 60.0) {
    return printf_string("%.1f %s", days, "days");
  }
  const double months = seconds / kSecondsPerMonth;
  if (months < 24.0) {
    return printf_string("%.1f %s", months, "months");
  }
  return printf_string("%.1f %s", months / 12.0, "years");
}

std::string format_duration_short(double seconds) {
  if (seconds < 1e-3) return printf_string("%.1f %s", seconds * 1e6, "us");
  if (seconds < 1.0) return printf_string("%.2f %s", seconds * 1e3, "ms");
  return printf_string("%.2f %s", seconds, "s");
}

std::string format_bandwidth(double bytes_per_sec) {
  return printf_string("%.1f %s", bytes_per_sec / kGB, "GB/s");
}

}  // namespace axonn::units
