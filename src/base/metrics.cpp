#include "axonn/base/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <limits>
#include <memory>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "axonn/base/log.hpp"

namespace axonn::obs::metrics {
namespace {

std::atomic<bool> g_enabled{false};

// Gauge writes are ordered by a global sequence so snapshot() can pick the
// most recent write across shards (a gauge may be set from several threads).
std::atomic<std::uint64_t> g_gauge_seq{0};

struct Descriptor {
  std::string name;
  std::string help;
  Kind kind;
};

struct NameTable {
  std::mutex mutex;
  std::vector<Descriptor> descriptors;  // index == Id
  std::unordered_map<std::string, Id> by_name;
};

NameTable& names() {
  static NameTable* t = new NameTable;  // leaked: outlives all threads
  return *t;
}

// One cell per registered metric per shard. The histogram bucket array is
// allocated lazily so counters/gauges stay one cache line of state.
struct Cell {
  double counter = 0;
  double gauge = 0;
  std::uint64_t gauge_seq = 0;  // 0: never set in this shard
  std::uint64_t hist_count = 0;
  double hist_sum = 0;
  double hist_min = std::numeric_limits<double>::infinity();
  double hist_max = -std::numeric_limits<double>::infinity();
  std::unique_ptr<std::array<std::uint64_t, kNumBuckets>> buckets;
};

// Per-thread shard, shared with the global registry so totals survive thread
// exit (rank threads from run_ranks() are gone before anyone snapshots).
struct Shard {
  std::mutex mutex;
  std::vector<Cell> cells;  // indexed by Id, grown on demand
};

struct ShardRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<Shard>> shards;
};

ShardRegistry& shard_registry() {
  static ShardRegistry* r = new ShardRegistry;  // leaked
  return *r;
}

Shard& local_shard() {
  thread_local std::shared_ptr<Shard> shard = [] {
    auto s = std::make_shared<Shard>();
    ShardRegistry& reg = shard_registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.shards.push_back(s);
    return s;
  }();
  return *shard;
}

Cell& cell_for(Shard& shard, Id id) {
  if (id >= shard.cells.size()) shard.cells.resize(id + 1);
  return shard.cells[static_cast<std::size_t>(id)];
}

std::size_t bucket_index(double value) {
  // Bucket i covers (2^(i-33), 2^(i-32)]; bucket 0 is the <= 2^-33 underflow
  // (incl. zero and negatives), bucket 63 the >= 2^30 overflow.
  if (!(value > 0)) return 0;  // also catches NaN
  int exp = 0;
  std::frexp(value, &exp);  // value = m * 2^exp, m in [0.5, 1)
  const int idx = exp + 32;
  if (idx < 1) return 0;
  if (idx > 63) return 63;
  return static_cast<std::size_t>(idx);
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

const char* to_string(Kind kind) {
  switch (kind) {
    case Kind::kCounter: return "counter";
    case Kind::kGauge: return "gauge";
    case Kind::kHistogram: return "histogram";
  }
  return "?";
}

Id register_metric(const std::string& name, Kind kind,
                   const std::string& help) {
  NameTable& t = names();
  std::lock_guard<std::mutex> lock(t.mutex);
  auto it = t.by_name.find(name);
  if (it != t.by_name.end()) {
    Descriptor& d = t.descriptors[it->second];
    if (d.kind != kind) {
      throw std::invalid_argument("metric '" + name + "' already registered as " +
                                  to_string(d.kind) + ", re-registered as " +
                                  to_string(kind));
    }
    // First non-empty description wins; a later call site may still attach
    // one to a metric that was registered bare.
    if (d.help.empty() && !help.empty()) d.help = help;
    return it->second;
  }
  const Id id = static_cast<Id>(t.descriptors.size());
  t.descriptors.push_back({name, help, kind});
  t.by_name.emplace(name, id);
  return id;
}

void add(Id id, double delta) {
  if (!enabled()) return;
  Shard& shard = local_shard();
  std::lock_guard<std::mutex> lock(shard.mutex);
  cell_for(shard, id).counter += delta;
}

void set(Id id, double value) {
  if (!enabled()) return;
  set_forced(id, value);
}

void set_forced(Id id, double value) {
  Shard& shard = local_shard();
  const std::uint64_t seq = 1 + g_gauge_seq.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(shard.mutex);
  Cell& c = cell_for(shard, id);
  c.gauge = value;
  c.gauge_seq = seq;
}

void observe(Id id, double value) {
  if (!enabled()) return;
  Shard& shard = local_shard();
  std::lock_guard<std::mutex> lock(shard.mutex);
  Cell& c = cell_for(shard, id);
  c.hist_count += 1;
  c.hist_sum += value;
  c.hist_min = std::min(c.hist_min, value);
  c.hist_max = std::max(c.hist_max, value);
  if (!c.buckets) c.buckets = std::make_unique<std::array<std::uint64_t, kNumBuckets>>();
  (*c.buckets)[bucket_index(value)] += 1;
}

double bucket_upper_bound(std::size_t i) {
  return std::ldexp(1.0, static_cast<int>(i) - 32);
}

double HistogramData::quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) >= target && cumulative > 0) {
      return std::clamp(bucket_upper_bound(i), min, max);
    }
  }
  return max;
}

const MetricValue* MetricsSnapshot::find(const std::string& name) const {
  for (const MetricValue& v : values) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

double MetricsSnapshot::value_of(const std::string& name) const {
  const MetricValue* v = find(name);
  return v ? v->value : 0;
}

MetricsSnapshot snapshot() {
  MetricsSnapshot snap;
  {
    NameTable& t = names();
    std::lock_guard<std::mutex> lock(t.mutex);
    snap.values.reserve(t.descriptors.size());
    for (const Descriptor& d : t.descriptors) {
      MetricValue v;
      v.name = d.name;
      v.help = d.help;
      v.kind = d.kind;
      snap.values.push_back(std::move(v));
    }
  }
  std::vector<std::uint64_t> gauge_seqs(snap.values.size(), 0);
  ShardRegistry& reg = shard_registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& shard : reg.shards) {
    std::lock_guard<std::mutex> shard_lock(shard->mutex);
    const std::size_t n = std::min(shard->cells.size(), snap.values.size());
    for (std::size_t id = 0; id < n; ++id) {
      const Cell& c = shard->cells[id];
      MetricValue& v = snap.values[id];
      switch (v.kind) {
        case Kind::kCounter:
          v.value += c.counter;
          break;
        case Kind::kGauge:
          if (c.gauge_seq > gauge_seqs[id]) {
            gauge_seqs[id] = c.gauge_seq;
            v.value = c.gauge;
          }
          break;
        case Kind::kHistogram: {
          if (c.hist_count == 0) break;
          HistogramData& h = v.hist;
          h.min = h.count ? std::min(h.min, c.hist_min) : c.hist_min;
          h.max = h.count ? std::max(h.max, c.hist_max) : c.hist_max;
          h.count += c.hist_count;
          h.sum += c.hist_sum;
          if (c.buckets) {
            for (std::size_t i = 0; i < kNumBuckets; ++i) {
              h.buckets[i] += (*c.buckets)[i];
            }
          }
          break;
        }
      }
    }
  }
  return snap;
}

void reset() {
  ShardRegistry& reg = shard_registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& shard : reg.shards) {
    std::lock_guard<std::mutex> shard_lock(shard->mutex);
    for (Cell& c : shard->cells) c = Cell{};
  }
}

// ---------------------------------------------------------------------------
// Prometheus exposition
// ---------------------------------------------------------------------------

namespace {

std::string prometheus_name(const std::string& name) {
  std::string out = "axonn_";
  for (char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_';
    out.push_back(ok ? ch : '_');
  }
  return out;
}

// HELP text runs to end of line in the exposition format, so the only
// characters needing escapes are backslash and newline.
std::string prometheus_help(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char ch : help) {
    if (ch == '\\') {
      out += "\\\\";
    } else if (ch == '\n') {
      out += "\\n";
    } else {
      out.push_back(ch);
    }
  }
  return out;
}

struct ExportHooks {
  std::mutex mutex;
  std::vector<void (*)()> hooks;
};

ExportHooks& export_hooks() {
  static ExportHooks* h = new ExportHooks;  // leaked: outlives all threads
  return *h;
}

}  // namespace

void add_export_hook(void (*hook)()) {
  if (hook == nullptr) return;
  ExportHooks& h = export_hooks();
  std::lock_guard<std::mutex> lock(h.mutex);
  h.hooks.push_back(hook);
}

void run_export_hooks() {
  // Copy under the lock, run outside it: a hook calling snapshot()/set_forced
  // must not deadlock against a concurrent add_export_hook().
  std::vector<void (*)()> hooks;
  {
    ExportHooks& h = export_hooks();
    std::lock_guard<std::mutex> lock(h.mutex);
    hooks = h.hooks;
  }
  for (void (*hook)() : hooks) hook();
}

void write_prometheus(std::ostream& out, const MetricsSnapshot& snap) {
  for (const MetricValue& v : snap.values) {
    const std::string name = prometheus_name(v.name);
    if (!v.help.empty()) {
      out << "# HELP " << name << ' ' << prometheus_help(v.help) << '\n';
    }
    out << "# TYPE " << name << ' ' << to_string(v.kind) << '\n';
    switch (v.kind) {
      case Kind::kCounter:
      case Kind::kGauge:
        out << name << ' ' << v.value << '\n';
        break;
      case Kind::kHistogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < kNumBuckets; ++i) {
          cumulative += v.hist.buckets[i];
          // Only emit buckets that advance the CDF (plus the final +Inf), so
          // 64 mostly-empty buckets don't balloon the exposition.
          if (v.hist.buckets[i] == 0) continue;
          out << name << "_bucket{le=\"" << bucket_upper_bound(i) << "\"} "
              << cumulative << '\n';
        }
        out << name << "_bucket{le=\"+Inf\"} " << v.hist.count << '\n';
        out << name << "_sum " << v.hist.sum << '\n';
        out << name << "_count " << v.hist.count << '\n';
        break;
      }
    }
  }
}

bool write_prometheus_file(const std::string& path) {
  run_export_hooks();
  std::ofstream out(path);
  if (!out) {
    AXONN_LOG_WARN << "metrics: cannot open '" << path << "' for writing";
    return false;
  }
  write_prometheus(out, snapshot());
  return out.good();
}

// ---------------------------------------------------------------------------
// Stall clock
// ---------------------------------------------------------------------------

namespace {

thread_local double t_stall_seconds = 0;

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

double thread_stall_seconds() { return t_stall_seconds; }

StallTimer::StallTimer() {
  if (enabled()) start_s_ = steady_seconds();
}

StallTimer::~StallTimer() {
  if (start_s_ < 0) return;
  const double elapsed = steady_seconds() - start_s_;
  t_stall_seconds += elapsed;
  static Counter stall_total(
      "comm.stall_s",
      "wall seconds threads spent stalled in blocking comm (StallTimer)");
  stall_total.add(elapsed);
}

}  // namespace axonn::obs::metrics
