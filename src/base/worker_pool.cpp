#include "axonn/base/worker_pool.hpp"

#include "axonn/base/metrics.hpp"

namespace axonn {

namespace {

// gemm.pool.* registry mirrors (DESIGN.md §13): team lifecycle events are
// rare (spawn once, park/unpark per job), so plain Counter handles suffice.
obs::metrics::Counter& spawned_counter() {
  static obs::metrics::Counter c("gemm.pool.workers_spawned");
  return c;
}
obs::metrics::Counter& unpark_counter() {
  static obs::metrics::Counter c("gemm.pool.unparks");
  return c;
}
obs::metrics::Counter& park_counter() {
  static obs::metrics::Counter c("gemm.pool.parks");
  return c;
}

}  // namespace

WorkerTeam::~WorkerTeam() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

int WorkerTeam::spawned() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(workers_.size());
}

void WorkerTeam::worker_loop(int index) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wake_.wait(lock, [&] {
      return stopping_ || (generation_ != seen && index < participants_);
    });
    if (stopping_) return;
    seen = generation_;
    const std::function<void(int)>* job = job_;
    unpark_counter().add();
    lock.unlock();
    try {
      (*job)(index + 1);  // lane 0 is the caller
    } catch (...) {
      std::lock_guard<std::mutex> elock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    lock.lock();
    park_counter().add();
    if (--remaining_ == 0) done_.notify_all();
  }
}

void WorkerTeam::run(int lanes, const std::function<void(int)>& fn) {
  if (lanes <= 1) {
    fn(0);
    return;
  }
  const int helpers = lanes - 1;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    while (static_cast<int>(workers_.size()) < helpers) {
      const int index = static_cast<int>(workers_.size());
      workers_.emplace_back([this, index] { worker_loop(index); });
      spawned_counter().add();
    }
    job_ = &fn;
    participants_ = helpers;
    remaining_ = helpers;
    first_error_ = nullptr;
    ++generation_;
  }
  wake_.notify_all();
  // Lane 0 runs on the caller; its exception propagates directly, but only
  // after the helper lanes drain — they hold references into fn's closure.
  std::exception_ptr caller_error;
  try {
    fn(0);
  } catch (...) {
    caller_error = std::current_exception();
  }
  std::exception_ptr helper_error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return remaining_ == 0; });
    helper_error = first_error_;
    first_error_ = nullptr;
    job_ = nullptr;
  }
  if (caller_error) std::rethrow_exception(caller_error);
  if (helper_error) std::rethrow_exception(helper_error);
}

WorkerTeam& WorkerTeam::this_thread() {
  thread_local WorkerTeam team;
  return team;
}

}  // namespace axonn
