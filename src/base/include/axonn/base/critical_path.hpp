#pragma once

// Cross-rank critical-path analysis (DESIGN.md §10).
//
// Blocking collectives are the synchronization points of one training
// iteration: the MPI ordering contract (every rank of a communicator issues
// the same collectives in the same order — the property ThreadComm's mailbox
// matching is built on) means the k-th top-level blocking collective on the
// compute stream of rank r is the *same operation* as the k-th on every other
// rank. Matching them by occurrence index stitches the per-rank span
// timelines of merged_events() into the iteration's dependency structure
// without any extra instrumentation.
//
// For each matched collective we know every rank's enter/exit time, so the
// iteration makespan decomposes exactly into three buckets:
//   compute        — before the first rank enters (somebody is still working)
//   straggler wait — from the first enter to the last enter: early ranks sit
//                    blocked purely because a peer is late
//   exposed comm   — from the last enter to the last exit: the transfer
//                    itself (the wire/protocol time Eqs. 1–7 predict)
// Walking the collectives in order with a cursor (overlaps clipped) yields
// CriticalPathReport; per-collective timings also feed compare_with_model(),
// which turns the runtime CommModelChecker's pass/fail into a quantitative
// "where the model and reality disagree" report.

#include <string>
#include <vector>

#include "axonn/base/trace.hpp"

namespace axonn::obs {

/// One matched collective across all ranks of one iteration.
struct CollectiveTiming {
  std::string name;        ///< e.g. "all_reduce(world)" (rank 0's label)
  double enter_min_us = 0; ///< first rank enters
  double enter_max_us = 0; ///< last rank enters (the straggler bound)
  double exit_max_us = 0;  ///< last rank exits
  int first_rank = -1;     ///< argmin of enter
  int last_rank = -1;      ///< argmax of enter
  double wait_s = 0;       ///< critical-path share: straggler wait
  double transfer_s = 0;   ///< critical-path share: wire/protocol time
};

struct CriticalPathReport {
  int iteration = -1;    ///< index of the analyzed kCatIter span
  int world = 0;
  bool consistent = true;  ///< ranks issued identical collective sequences
  double makespan_s = 0;   ///< latest iter end - earliest iter begin
  double compute_s = 0;
  double straggler_wait_s = 0;
  double exposed_comm_s = 0;  ///< sum of per-collective transfer shares
  std::vector<CollectiveTiming> collectives;

  std::string to_table() const;  ///< human-readable summary (base/table)
};

/// One report per iteration index present on ALL ranks 0..world-1 (ranks
/// missing an iteration truncate the report list). Ranks with mismatched
/// collective sequences mark the report !consistent; timings then cover the
/// common prefix only.
std::vector<CriticalPathReport> critical_path_reports(
    const std::vector<TraceEvent>& events, int world);

// ---------------------------------------------------------------------------
// Measured-vs-model gap (quantitative CommModelChecker)
// ---------------------------------------------------------------------------

/// A model prediction for every collective whose name contains `name_substr`
/// (e.g. {"all_gather(tp-z", eq2_seconds}). First match wins.
struct CollectivePrediction {
  std::string name_substr;
  double predicted_s = 0;
};

struct ModelGapEntry {
  std::string name;  ///< the prediction's name_substr
  int count = 0;     ///< matched collectives
  double measured_s = 0;   ///< summed transfer_s of the matches
  double predicted_s = 0;  ///< count * prediction
  double rel_gap = 0;      ///< (measured - predicted) / predicted
};

struct ModelGapReport {
  std::vector<ModelGapEntry> entries;  ///< prediction order; unmatched kept
  int unmatched_collectives = 0;       ///< measured spans with no prediction

  std::string to_table() const;
};

/// Compares the report's per-collective transfer times against Eq. 1–7 style
/// predictions supplied by the caller (perf::comm_model for the analytical
/// side, sim::ring_collective_cost for the simulator's β/latency view).
ModelGapReport compare_with_model(
    const CriticalPathReport& report,
    const std::vector<CollectivePrediction>& predictions);

}  // namespace axonn::obs
