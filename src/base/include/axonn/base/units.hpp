#pragma once

// Unit helpers shared by the simulator, performance model and benches.
//
// The paper reports bandwidths in GB/s (decimal), memory in GB/GiB, flop/s in
// Tflop/s–Exaflop/s, and token counts in millions. Keeping the conversions in
// one place avoids the classic 1e9-vs-2^30 mixups.

#include <cstdint>
#include <string>

namespace axonn::units {

inline constexpr double kKB = 1e3;
inline constexpr double kMB = 1e6;
inline constexpr double kGB = 1e9;
inline constexpr double kTB = 1e12;

inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

inline constexpr double kTeraflop = 1e12;
inline constexpr double kPetaflop = 1e15;
inline constexpr double kExaflop = 1e18;

inline constexpr double kThousand = 1e3;
inline constexpr double kMillion = 1e6;
inline constexpr double kBillion = 1e9;
inline constexpr double kTrillion = 1e12;

inline constexpr double kSecondsPerDay = 86400.0;
inline constexpr double kSecondsPerMonth = 86400.0 * 30.44;  // mean month

/// "1.381 Exaflop/s", "620.1 Pflop/s", "113 Tflop/s" — picks the natural
/// magnitude like the paper's prose.
std::string format_flops(double flops_per_sec);

/// "16.8M", "2.0T", "512" — compact count formatting for tokens/params.
std::string format_count(double count);

/// "25.5 days", "15 months", "4.2 years" — time-to-solution formatting.
std::string format_duration_long(double seconds);

/// "12.34 ms", "1.23 s" — per-iteration time formatting.
std::string format_duration_short(double seconds);

/// "25.0 GB/s" style bandwidth formatting (decimal GB).
std::string format_bandwidth(double bytes_per_sec);

}  // namespace axonn::units
