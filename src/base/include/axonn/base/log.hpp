#pragma once

// Minimal leveled logger.
//
// Benches and examples narrate progress through this logger rather than raw
// std::cout so that verbosity is controlled centrally (AXONN_LOG_LEVEL env
// var or set_level()). The logger is deliberately tiny: a single global
// level, stderr output, and printf-free streaming.

#include <mutex>
#include <sstream>
#include <string>

namespace axonn::log {

enum class Level : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global log threshold; messages below it are discarded.
void set_level(Level level);

/// Current global threshold. Initialized from AXONN_LOG_LEVEL
/// (debug|info|warn|error|off) on first use; defaults to kInfo.
Level level();

namespace detail {
void emit(Level level, const std::string& message);
bool enabled(Level level);

class LineLogger {
 public:
  explicit LineLogger(Level level) : level_(level) {}
  LineLogger(const LineLogger&) = delete;
  LineLogger& operator=(const LineLogger&) = delete;
  ~LineLogger() { emit(level_, oss_.str()); }

  template <typename T>
  LineLogger& operator<<(const T& value) {
    oss_ << value;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream oss_;
};
}  // namespace detail

}  // namespace axonn::log

#define AXONN_LOG(level_enum)                                  \
  if (!::axonn::log::detail::enabled(level_enum)) {            \
  } else                                                       \
    ::axonn::log::detail::LineLogger(level_enum)

#define AXONN_LOG_DEBUG AXONN_LOG(::axonn::log::Level::kDebug)
#define AXONN_LOG_INFO AXONN_LOG(::axonn::log::Level::kInfo)
#define AXONN_LOG_WARN AXONN_LOG(::axonn::log::Level::kWarn)
#define AXONN_LOG_ERROR AXONN_LOG(::axonn::log::Level::kError)
