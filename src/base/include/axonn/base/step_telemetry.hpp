#pragma once

// Cross-rank per-step telemetry (DESIGN.md §10).
//
// Once per training step every rank folds a small fixed-layout vector of
// local measurements — step wall time, exposed communication from the stall
// clock, GEMM flops, wire traffic, integrity events, loss — into ONE
// all-reduce (the same consensus pattern the training sentinel uses for its
// health verdicts). The fold buffer is field-major with one slot per rank
// (`buf[field * world + rank]`, reduced with kSum), so after the reduction
// every rank holds the exact per-rank vector of every field and can compute
// min/mean/max/argmax without approximation — and the StragglerMonitor can
// track per-rank streaks, not just the current argmax.
//
// The StragglerMonitor flags on *self time* (wall minus exposed comm), not
// wall time: blocking collectives synchronize ranks, so a straggler's extra
// latency shows up as everyone's wall time but only as ITS self time (the
// others spend it stalled inside the collective, which the stall clock
// subtracts). See tests/obs/test_telemetry.cpp for this under ChaosComm
// latency injection.
//
// MetricsSession mirrors TraceSession: `AXONN_METRICS=<path>` enables the
// metrics registry, streams one JSONL object per emitted StepTelemetry to
// <path>, and on destruction writes a Prometheus text exposition of the final
// registry snapshot to <path>.prom.

#include <array>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "axonn/base/metrics.hpp"

namespace axonn::obs {

enum class StepField : int {
  kWallS = 0,        ///< step wall time, seconds
  kExposedCommS,     ///< compute-thread comm stalls (metrics stall clock)
  kSelfS,            ///< wall - exposed comm: compute + any local slowness
  kGemmGflop,        ///< GEMM work issued this step, Gflop
  kWireMB,           ///< wire bytes sent this step, MB (payload + CRC)
  kIntegrityEvents,  ///< SDC detections (process-global counter delta)
  kMemHwmMB,         ///< arena total high-water MB (process-global gauge)
  kLoss,             ///< per-rank loss as seen by the trainer
};
inline constexpr int kNumStepFields = 8;
const char* to_string(StepField field);

struct StepStat {
  double min = 0;
  double mean = 0;
  double max = 0;
  int argmax_rank = 0;
};

struct StepTelemetry {
  std::uint64_t step = 0;
  int world = 0;
  std::array<StepStat, kNumStepFields> stats{};
  /// Exact per-rank values, field-major: per_rank[f * world + r]. Kept so
  /// consumers (straggler streaks, JSONL) see more than the extrema.
  std::vector<double> per_rank;

  const StepStat& stat(StepField field) const {
    return stats[static_cast<std::size_t>(field)];
  }
  double rank_value(StepField field, int rank) const {
    return per_rank[static_cast<std::size_t>(field) *
                        static_cast<std::size_t>(world) +
                    static_cast<std::size_t>(rank)];
  }
};

/// Required fold-buffer length for `world` ranks.
inline std::size_t fold_size(int world) {
  return static_cast<std::size_t>(kNumStepFields) *
         static_cast<std::size_t>(world);
}

/// Builds the telemetry from a reduced fold buffer (every slot now holds the
/// owning rank's value; see the header comment for the layout).
StepTelemetry fold_to_telemetry(std::uint64_t step, int world,
                                std::span<const float> fold);

/// One JSON object per line: step, world, per-field {min,mean,max,argmax}
/// and the per-rank wall/self vectors.
void write_step_jsonl(std::ostream& out, const StepTelemetry& t);

/// Human-readable one-step table (base/table) for consoles.
std::string step_table(const StepTelemetry& t);

// ---------------------------------------------------------------------------
// Straggler detection
// ---------------------------------------------------------------------------

class StragglerMonitor {
 public:
  struct Config {
    double factor = 1.5;        ///< flag when self_s > factor * mean(self_s)
    int consecutive_steps = 3;  ///< K: streak length required to flag
    double min_excess_s = 0;    ///< absolute floor on (self - mean) per step
  };

  StragglerMonitor() = default;
  explicit StragglerMonitor(Config config) : config_(config) {}

  /// Feeds one step; returns ranks *newly* flagged by it (empty most steps).
  std::vector<int> observe(const StepTelemetry& t);

  /// Every rank ever flagged, in flag order.
  const std::vector<int>& flagged() const { return flagged_; }
  /// Current consecutive-slow-step streak of `rank` (0 if never observed).
  int streak(int rank) const;
  const Config& config() const { return config_; }

 private:
  Config config_;
  std::vector<int> streaks_;
  std::vector<int> flagged_;
};

// ---------------------------------------------------------------------------
// MetricsSession (AXONN_METRICS)
// ---------------------------------------------------------------------------

/// True while a MetricsSession with a path is alive (i.e. emit_step goes
/// somewhere). Telemetry producers use this to skip JSONL formatting.
bool step_sink_active();

/// Appends `t` as one JSONL line to the active session (thread-safe; no-op
/// without an active session), and prints the step table every
/// `console_every` steps if the session asked for console output.
void emit_step(const StepTelemetry& t);

class MetricsSession {
 public:
  MetricsSession();                         ///< honour AXONN_METRICS
  explicit MetricsSession(std::string path);  ///< force a path ("" = inactive)
  MetricsSession(const MetricsSession&) = delete;
  MetricsSession& operator=(const MetricsSession&) = delete;
  ~MetricsSession();

  bool active() const { return !path_.empty(); }
  const std::string& path() const { return path_; }
  /// Print step_table() to stderr every n emitted steps (0 = never, default).
  void set_console_every(int n);

 private:
  std::string path_;
};

}  // namespace axonn::obs
