#pragma once

// Intra-rank worker team: a lazily-spawned, parked-when-idle set of helper
// threads for data-parallel loops inside one rank (DESIGN.md §13).
//
// In the thread-rank runtime every rank IS a thread, and each rank may also
// own up to kCommPriorityLanes comm-progress workers (DESIGN.md §12) — so a
// process-global work-stealing pool would let one rank's GEMM starve another
// rank's critical-path collective. Instead each calling thread owns its own
// team (WorkerTeam::this_thread()): lane 0 is the caller, lanes 1..N-1 are
// helper threads spawned on first use and parked on a condition variable
// between jobs. Teams never share work, so two ranks' GEMMs contend only for
// cores, bounded by the per-rank budget knob (gemm_threads() in
// tensor/gemm_dispatch.hpp).
//
// The job contract is a fixed-lane SPMD region: run(lanes, fn) invokes
// fn(lane) for lane in [0, lanes) — fn(0) on the caller — and returns when
// every lane has. Work partitioning (which lane owns which tile) is the
// caller's business; the pool guarantees only that each lane runs exactly
// once per job. Exceptions thrown by helper lanes are captured and the first
// one is rethrown on the caller after the job completes.

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace axonn {

class WorkerTeam {
 public:
  WorkerTeam() = default;
  /// Joins all helper threads (wakes them with a stop flag first).
  ~WorkerTeam();

  WorkerTeam(const WorkerTeam&) = delete;
  WorkerTeam& operator=(const WorkerTeam&) = delete;

  /// Runs fn(0..lanes-1), fn(0) on the calling thread. lanes <= 1 calls
  /// fn(0) inline with no locking — the serial fast path. Helper threads are
  /// spawned lazily up to lanes-1 and reused (parked) across calls. Not
  /// reentrant: fn must not call run() on the same team.
  void run(int lanes, const std::function<void(int)>& fn);

  /// Helper threads spawned so far (never shrinks until destruction).
  int spawned() const;

  /// The calling thread's team. Each thread that runs parallel regions gets
  /// its own lazily-constructed instance, torn down (threads joined) when the
  /// owning thread exits.
  static WorkerTeam& this_thread();

 private:
  void worker_loop(int index);

  mutable std::mutex mutex_;
  std::condition_variable wake_;  ///< workers park here between jobs
  std::condition_variable done_;  ///< caller waits here for lane completion
  std::vector<std::thread> workers_;

  // Current job, guarded by mutex_. generation_ bumps per job; a worker runs
  // the job iff its index is below participants_ and it has not seen this
  // generation yet.
  std::uint64_t generation_ = 0;
  int participants_ = 0;  ///< helper lanes in the current job (lanes - 1)
  int remaining_ = 0;     ///< helper lanes still running
  const std::function<void(int)>* job_ = nullptr;
  std::exception_ptr first_error_;
  bool stopping_ = false;
};

}  // namespace axonn
