#pragma once

// Block partitioning helpers.
//
// Both the ring collectives (which split a buffer into `nranks` chunks) and
// the 2D matrix decompositions of the 3D PMM algorithm need the same
// primitive: split n items into p nearly-equal contiguous parts, with the
// remainder spread over the leading parts. Keeping it here guarantees the
// communicator, the tensor layer and the performance model all agree on who
// owns which elements.

#include <cstddef>

#include "axonn/base/error.hpp"

namespace axonn {

/// Half-open index range [begin, end).
struct Range {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t size() const { return end - begin; }
  bool empty() const { return begin == end; }
  friend bool operator==(const Range&, const Range&) = default;
};

/// Range of part `index` when n items are split into `parts` contiguous
/// blocks. Blocks differ in size by at most one; the first n % parts blocks
/// get the extra element.
inline Range chunk_range(std::size_t n, std::size_t parts, std::size_t index) {
  AXONN_CHECK_MSG(parts > 0, "cannot partition into zero parts");
  AXONN_CHECK_MSG(index < parts, "partition index out of range");
  const std::size_t base = n / parts;
  const std::size_t extra = n % parts;
  const std::size_t begin =
      index * base + (index < extra ? index : extra);
  const std::size_t size = base + (index < extra ? 1 : 0);
  return Range{begin, begin + size};
}

/// Size of part `index` (convenience over chunk_range().size()).
inline std::size_t chunk_size(std::size_t n, std::size_t parts,
                              std::size_t index) {
  return chunk_range(n, parts, index).size();
}

/// Largest chunk size in the partition (chunk 0 by construction).
inline std::size_t max_chunk_size(std::size_t n, std::size_t parts) {
  return chunk_size(n, parts, 0);
}

}  // namespace axonn
