#pragma once

// ASCII table printer used by the bench binaries to emit the same rows the
// paper's tables and figures report. Columns auto-size to content; numeric
// cells are right-aligned, text cells left-aligned.

#include <iosfwd>
#include <string>
#include <vector>

namespace axonn {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row. Rows shorter than the header are padded with blanks;
  /// longer rows are an error.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats a double with the given precision.
  static std::string cell(double value, int precision = 2);
  static std::string cell(long long value);
  static std::string cell(long value) {
    return cell(static_cast<long long>(value));
  }
  static std::string cell(int value) { return cell(static_cast<long long>(value)); }
  static std::string cell(std::size_t value) {
    return cell(static_cast<long long>(value));
  }

  /// Renders the table with a header rule, e.g.
  ///   Model     | # GPUs | Pflop/s
  ///   ----------+--------+--------
  ///   GPT-40B   |   4096 |   620.1
  std::string to_string() const;

  /// Streams to_string() to out (typically std::cout in benches).
  void print(std::ostream& out) const;

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace axonn
