#pragma once

// CRC-32 (IEEE 802.3, polynomial 0xEDB88320).
//
// Used by the fault-tolerance layer: checkpoint sections carry a CRC so a
// torn or bit-flipped file is detected at restore time instead of silently
// poisoning a resumed run, and ChaosComm uses the same checksum to detect
// injected payload corruption after a collective. Incremental interface so
// large tensors can be folded in without a staging copy.

#include <cstddef>
#include <cstdint>

namespace axonn {

/// Folds `size` bytes into a running CRC. Start from crc32_init(), finish
/// with crc32_finish(). Standard reflected CRC-32: crc32("123456789") ==
/// 0xCBF43926.
std::uint32_t crc32_update(std::uint32_t state, const void* data,
                           std::size_t size);

inline std::uint32_t crc32_init() { return 0xFFFFFFFFu; }
inline std::uint32_t crc32_finish(std::uint32_t state) {
  return state ^ 0xFFFFFFFFu;
}

/// One-shot CRC-32 of a buffer.
inline std::uint32_t crc32(const void* data, std::size_t size) {
  return crc32_finish(crc32_update(crc32_init(), data, size));
}

}  // namespace axonn
