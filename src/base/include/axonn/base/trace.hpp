#pragma once

// axonn::obs — the flight recorder (observability layer).
//
// A lock-cheap per-rank span/counter recorder: every thread appends events to
// its own fixed-capacity ring buffer (one uncontended mutex per buffer, taken
// only against the rare snapshot), tagged with the thread's rank and stream
// kind. Rank threads are tagged kMain (the "compute stream"); ThreadWorld
// progress workers are tagged kProgress (the "communication stream"), so a
// merged trace shows — exactly like a GPU profiler — nonblocking collectives
// executing on the comm stream underneath GEMM spans on the compute stream.
//
// Consumers:
//   * write_chrome_trace(): chrome://tracing / Perfetto JSON (pid = rank,
//     tid = stream), visually comparable with the sim/ engine's export.
//   * iteration_reports(): Fig. 5's methodology on the real runtime — per
//     iteration compute time, exposed (non-overlapped) communication time and
//     overlap efficiency, derived from the merged spans (see DESIGN.md §7).
//
// Recording is off by default; enabled() is a single relaxed atomic load, so
// instrumentation costs ~nothing when tracing is disabled.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace axonn::obs {

enum class Phase : std::uint8_t { kBegin, kEnd, kCounter, kInstant };

/// Which role the recording thread plays on its rank. kMain is the rank's
/// compute thread; kProgress is the rank's progress worker (the analogue of
/// the NCCL communication stream).
enum class StreamKind : std::uint8_t { kMain = 0, kProgress = 1, kUnknown = 2 };

/// Sentinel depth for events that never went through record() (hand-built
/// test events, or a kEnd recorded while no span was open). Span rebuilding
/// falls back to plain stack matching for such events.
inline constexpr std::uint32_t kUnknownDepth = 0xffffffffu;

struct TraceEvent {
  double t_us = 0;  ///< microseconds since the process-wide trace epoch
  Phase phase = Phase::kInstant;
  StreamKind stream = StreamKind::kUnknown;
  int rank = -1;           ///< -1: thread never identified itself
  std::uint32_t tid = 0;   ///< registration id, unique per thread
  const char* category = "";  ///< static-lifetime taxonomy tag (see DESIGN §7)
  std::string name;
  double value = 0;  ///< kCounter payload
  /// Nesting depth at record time (begin: depth before push; end: depth of
  /// the begin it closes). Lets span rebuilding detect begin events lost to
  /// a full ring: an end whose depth does not match the open stack is an
  /// orphan and must not close someone else's begin. kUnknownDepth for
  /// events not produced by begin_span()/end_span().
  std::uint32_t depth = kUnknownDepth;
};

/// Span/counter taxonomy (the `category` field). Kept as constants so the
/// report builder and the instrumentation sites cannot drift apart.
inline constexpr const char* kCatComm = "comm";    ///< collective executing
inline constexpr const char* kCatWait = "wait";    ///< compute thread stalled
inline constexpr const char* kCatCompute = "compute";  ///< GEMM/attention/...
inline constexpr const char* kCatIter = "iter";    ///< one training iteration
inline constexpr const char* kCatTuner = "tuner";  ///< kernel-tuning decisions
inline constexpr const char* kCatCheck = "commcheck";  ///< Eq. 1–5 validation
inline constexpr const char* kCatIntegrity = "integrity";  ///< SDC detect/heal

bool enabled();
void set_enabled(bool on);

/// Tags the calling thread with a rank and stream kind; subsequent events it
/// records carry that identity. Called by ThreadWorld for rank threads and
/// progress workers; tests may call it directly.
void set_thread_ident(int rank, StreamKind stream);

/// Per-thread ring capacity (events). Takes effect for every buffer at the
/// next clear(); buffers created afterwards use it immediately.
void set_ring_capacity(std::size_t events);

/// Events dropped (overwritten) by full rings since the last clear().
std::uint64_t dropped_events();

/// Discards all recorded events (and applies a pending capacity change).
void clear();

void begin_span(const char* category, std::string name);
void end_span();
void counter(const char* category, std::string name, double value);
void instant(const char* category, std::string name);

/// RAII span. Default-constructed inactive so call sites can skip building
/// the name string entirely when tracing is off:
///   obs::SpanGuard span;
///   if (obs::enabled()) span.open(obs::kCatComm, "all_reduce(" + name + ")");
class SpanGuard {
 public:
  SpanGuard() = default;
  SpanGuard(const char* category, std::string name) {
    if (enabled()) open(category, std::move(name));
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;
  ~SpanGuard() { close(); }

  void open(const char* category, std::string name) {
    if (active_) return;
    begin_span(category, std::move(name));
    active_ = true;
  }
  void close() {
    if (!active_) return;
    end_span();
    active_ = false;
  }

 private:
  bool active_ = false;
};

/// Marks one training iteration on the calling rank (a kCatIter span);
/// iteration_reports() builds one IterationReport per such span.
class IterationScope {
 public:
  IterationScope() : guard_(kCatIter, "iteration") {}

 private:
  SpanGuard guard_;
};

/// Snapshot of every thread's ring, concatenated and stably sorted by
/// timestamp (per-thread event order is preserved for equal stamps). Safe to
/// call while other threads keep recording.
std::vector<TraceEvent> merged_events();

/// Chrome-trace ("chrome://tracing" / Perfetto) JSON. pid = rank, tid 0 is
/// the compute stream, tid 1 the comm stream; spans are B/E pairs, counters
/// are 'C' events, instants are 'i'.
void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events);

/// Convenience: merged_events() -> file. Returns false (and logs a warning)
/// if the file cannot be written. If events were dropped (full rings) it logs
/// a warning and appends a "trace.dropped_events" counter event to the trace
/// (and sets the metrics gauge of the same name), so truncated traces are
/// self-describing.
bool write_chrome_trace_file(const std::string& path);

/// Scoped tracing for binaries: reads AXONN_TRACE on construction (an empty
/// value means "axonn.trace.json"); if set, enables recording, and on
/// destruction writes the merged Chrome trace to that path and logs it.
class TraceSession {
 public:
  TraceSession();                      ///< honour AXONN_TRACE
  explicit TraceSession(std::string path);  ///< force a path ("" = inactive)
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;
  ~TraceSession();

  bool active() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ---------------------------------------------------------------------------
// Span reconstruction
// ---------------------------------------------------------------------------

/// One closed span of one thread, rebuilt from kBegin/kEnd events.
struct SpanRec {
  double begin_us = 0;
  double end_us = 0;
  StreamKind stream = StreamKind::kUnknown;
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;  ///< kUnknownDepth when the begin carried none
  const char* category = "";
  std::string name;
};

/// Result of build_spans(): closed spans plus accounting for everything a
/// malformed stream (ring wrap, span open at snapshot) forced it to repair.
struct SpanSet {
  std::vector<SpanRec> spans;       ///< closed non-iteration spans
  std::vector<SpanRec> iterations;  ///< closed kCatIter spans, by begin time
  std::uint64_t orphan_ends = 0;    ///< kEnd whose begin was lost (ring wrap)
  std::uint64_t force_closed = 0;   ///< non-iter spans still open at snapshot
  std::uint64_t dropped_open_iterations = 0;  ///< iter spans open at snapshot
};

/// Rebuilds `rank`'s spans from a merged event stream, tolerating unbalanced
/// begin/end pairs: an end whose recorded depth does not match the open stack
/// is counted as orphan and ignored (its begin was overwritten by a full
/// ring) instead of popping an unrelated begin; non-iteration spans still
/// open when the stream ends are closed at the last observed timestamp;
/// open iterations are dropped entirely so a partial iteration can never
/// skew exposed-communication accounting.
SpanSet build_spans(const std::vector<TraceEvent>& events, int rank);

// ---------------------------------------------------------------------------
// Iteration breakdowns (Fig. 5 on the real runtime)
// ---------------------------------------------------------------------------

/// Per-iteration breakdown of one rank, mirroring sim::IterationBreakdown.
/// Fig. 5's definition: compute_s = wall_s - exposed_comm_s, where exposed
/// communication is the time the compute thread was stalled inside blocking
/// collectives or Request waits. Communication that executed on the progress
/// stream while the compute thread kept working is "hidden".
struct IterationReport {
  double wall_s = 0;          ///< duration of the kCatIter span
  double exposed_comm_s = 0;  ///< compute-thread comm/wait stall time
  double compute_s = 0;       ///< wall_s - exposed_comm_s (Fig. 5)
  double instrumented_compute_s = 0;  ///< sum of explicit kCatCompute spans
  double comm_busy_s = 0;     ///< union of all comm activity, either stream
  double hidden_comm_s = 0;   ///< comm_busy_s - exposed_comm_s (>= 0)
  double overlap_efficiency = 0;  ///< hidden / comm_busy (0 when no comm)
};

/// One report per kCatIter span of `rank` in `events` (as produced by
/// merged_events()), in chronological order.
std::vector<IterationReport> iteration_reports(
    const std::vector<TraceEvent>& events, int rank);

/// Field-wise arithmetic mean (empty input -> all zeros).
IterationReport mean_report(const std::vector<IterationReport>& reports);

}  // namespace axonn::obs
