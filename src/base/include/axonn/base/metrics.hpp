#pragma once

// axonn::obs::metrics — the second observability pillar (DESIGN.md §10).
//
// Where the flight recorder (trace.hpp) answers "what happened, when" with a
// bounded ring of timestamped events, the metrics registry answers "how much,
// so far" with typed, named aggregates: monotonic counters, last-write-wins
// gauges, and log2-bucketed histograms. The recording design mirrors the
// trace rings: every thread owns a shard (one uncontended mutex, taken
// against the rare snapshot), so the hot path is a relaxed atomic load of
// enabled(), a thread_local lookup and an uncontended lock — ~free when
// metrics are off and cheap when on. snapshot() merges all shards and is safe
// to call while other threads keep recording.
//
// Metric identity is (name, kind): register_metric() returns a dense Id that
// is stable for the process lifetime; registering the same name with a
// different kind throws. Handle classes (Counter/Gauge/Histogram) register in
// their constructor, so the idiomatic call site is a function-local static:
//
//   static metrics::Counter calls("comm.all_reduce.calls");
//   calls.add();                     // no-op while metrics are disabled
//
// Export: write_prometheus() emits the standard text exposition format
// (counters/gauges as single samples, histograms as cumulative _bucket/_sum/
// _count series) so a scrape-time file drop is all an operator needs.

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace axonn::obs::metrics {

/// Recording gate: a single relaxed atomic load, so instrumentation costs
/// ~nothing when metrics are disabled (the default).
bool enabled();
void set_enabled(bool on);

enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
const char* to_string(Kind kind);

using Id = std::uint32_t;

/// Registers `name` with `kind` (idempotent) and returns its dense id.
/// Throws std::invalid_argument if `name` is already registered with a
/// different kind. `help` is a one-line description emitted as a Prometheus
/// `# HELP` line; the first non-empty help registered for a name wins, so
/// re-registration from another call site never clobbers a description.
Id register_metric(const std::string& name, Kind kind,
                   const std::string& help = {});

/// Recording primitives. No-ops while disabled; cheap (thread-shard) when on.
void add(Id id, double delta);      ///< counter += delta
void set(Id id, double value);      ///< gauge = value (last write wins)
void observe(Id id, double value);  ///< histogram sample

/// Like set(), but records even while disabled. For cold export-path
/// annotations (e.g. trace.dropped_events) that must land regardless of the
/// recording gate — never use on a hot path.
void set_forced(Id id, double value);

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

class Counter {
 public:
  explicit Counter(const std::string& name, const std::string& help = {})
      : id_(register_metric(name, Kind::kCounter, help)) {}
  void add(double delta = 1.0) const {
    if (enabled()) metrics::add(id_, delta);
  }
  Id id() const { return id_; }

 private:
  Id id_;
};

class Gauge {
 public:
  explicit Gauge(const std::string& name, const std::string& help = {})
      : id_(register_metric(name, Kind::kGauge, help)) {}
  void set(double value) const {
    if (enabled()) metrics::set(id_, value);
  }
  void set_forced(double value) const { metrics::set_forced(id_, value); }
  Id id() const { return id_; }

 private:
  Id id_;
};

class Histogram {
 public:
  explicit Histogram(const std::string& name, const std::string& help = {})
      : id_(register_metric(name, Kind::kHistogram, help)) {}
  void observe(double value) const {
    if (enabled()) metrics::observe(id_, value);
  }
  Id id() const { return id_; }

 private:
  Id id_;
};

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// Histograms bucket by power of two: bucket i covers (2^(i-33), 2^(i-32)]
/// for i in [1, 63]; bucket 0 holds values <= 2^-33 (incl. zero/negative).
/// That spans ~1e-10 .. ~2e9 with <=2x relative error per bucket — plenty for
/// latencies in seconds or payloads in bytes.
inline constexpr std::size_t kNumBuckets = 64;

/// Upper bound of bucket `i` (+inf-ish for the last one, by construction
/// anything representable as double fits below 2^31 scale used here).
double bucket_upper_bound(std::size_t i);

struct HistogramData {
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;  ///< 0 when count == 0
  double max = 0;
  std::array<std::uint64_t, kNumBuckets> buckets{};

  double mean() const { return count ? sum / static_cast<double>(count) : 0; }
  /// Quantile at bucket resolution (returns a bucket upper bound clamped to
  /// [min, max]); q in [0, 1]. Returns 0 when empty.
  double quantile(double q) const;
};

struct MetricValue {
  std::string name;
  std::string help;  ///< empty when no description was registered
  Kind kind = Kind::kCounter;
  double value = 0;  ///< counter total or gauge value
  HistogramData hist;  ///< kHistogram only
};

struct MetricsSnapshot {
  std::vector<MetricValue> values;  ///< in registration (id) order

  /// nullptr when `name` was never registered.
  const MetricValue* find(const std::string& name) const;
  /// Convenience: counter/gauge value (0 when absent).
  double value_of(const std::string& name) const;
};

/// Merged view of every shard; safe while threads keep recording.
MetricsSnapshot snapshot();

/// Zeroes every cell in every shard (names/ids stay registered).
void reset();

/// Prometheus text exposition format. Metric names are prefixed "axonn_" and
/// sanitized ([^a-zA-Z0-9_] -> '_'); registered descriptions come out as
/// `# HELP` lines ahead of each `# TYPE`.
void write_prometheus(std::ostream& out, const MetricsSnapshot& snap);

/// Runs export hooks, then snapshot() -> file. Returns false (and logs a
/// warning) on I/O failure.
bool write_prometheus_file(const std::string& path);

/// Registers a callback run by run_export_hooks() — and therefore before
/// every write_prometheus_file() — so subsystems that keep their own atomic
/// counters off the hot path (the mem arena, integrity::Counters) can mirror
/// them into the registry right before a scrape. Hooks run in registration
/// order, must be idempotent, and must not register further hooks.
void add_export_hook(void (*hook)());

/// Invokes every registered export hook (manual flush for callers that use
/// snapshot()/write_prometheus() directly).
void run_export_hooks();

// ---------------------------------------------------------------------------
// Exposed-communication stall clock
// ---------------------------------------------------------------------------
//
// Fig. 5's "exposed communication" is the time a rank's compute thread spends
// stalled inside blocking collectives or Request::wait(). The flight recorder
// derives it from merged spans after the fact; live telemetry needs it per
// step without a trace merge, so blocking comm paths wrap themselves in a
// StallTimer that charges wall time to a per-thread accumulator (and the
// "comm.stall_s" counter). Reading the accumulator at step boundaries yields
// the step's exposed comm on the calling (rank) thread.

/// Seconds the calling thread has spent under StallTimer since thread start.
double thread_stall_seconds();

/// RAII stall scope; inert (no clock read) when metrics are disabled.
class StallTimer {
 public:
  StallTimer();
  StallTimer(const StallTimer&) = delete;
  StallTimer& operator=(const StallTimer&) = delete;
  ~StallTimer();

 private:
  double start_s_ = -1;  ///< < 0: inactive
};

}  // namespace axonn::obs::metrics
