#pragma once

// Cache-line-aligned allocation.
//
// The tiled GEMM backend packs operand panels into contiguous buffers and
// reads them with vector loads; keeping every buffer on a 64-byte boundary
// means those loads never straddle cache lines and the compiler is free to
// emit aligned vector moves. Matrix storage uses the same allocator so
// packed panels, activations and weights all share the guarantee.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <new>
#include <vector>

namespace axonn {

/// Alignment for all numeric buffers: one x86 cache line, which is also a
/// whole AVX-512 vector.
inline constexpr std::size_t kCacheLineBytes = 64;

template <typename T, std::size_t Alignment = kCacheLineBytes>
struct AlignedAllocator {
  using value_type = T;
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");
  static_assert(Alignment >= alignof(T));

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/// True when `p` sits on a kCacheLineBytes boundary (null counts as aligned).
inline bool is_cache_aligned(const void* p) {
  return (reinterpret_cast<std::uintptr_t>(p) & (kCacheLineBytes - 1)) == 0;
}

}  // namespace axonn
