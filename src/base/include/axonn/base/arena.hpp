#pragma once

// axonn::mem — the tracked arena allocator (DESIGN.md §14).
//
// The paper's whole scaling argument is about fitting models per GPU, yet
// until this layer the repo could observe every wire byte (CommModelChecker)
// and not a single allocated one. axonn::mem closes that gap:
//
//   - Every tensor-sized allocation flows through allocate()/deallocate(),
//     stamped with a per-subsystem Tag (weights, activations, grads, adam,
//     packed_panels, comm_buffers, journal) taken from the ambient
//     thread-local ArenaScope at allocation time. The 64-byte block header
//     written in front of the payload records the tag, size and pooling
//     class, so accounting stays correct no matter which thread frees the
//     block or what the mode was when it was allocated — and the payload
//     keeps the kCacheLineBytes alignment the GEMM kernels assume.
//   - Per-tag live bytes, cumulative allocation counts/bytes and high-water
//     marks are lock-free atomics (relaxed adds + a CAS-max for the HWMs);
//     allocation sizes additionally feed the metrics registry's log2
//     histograms through its per-thread shards when metrics are enabled.
//   - AXONN_MEM=off|track|arena selects the mode: `off` is a plain aligned
//     allocation with no accounting, `track` (the default) adds the atomic
//     accounting, `arena` adds size-bucketed free-list pooling on top so
//     steady-state training reallocations (gathered weight blocks, packed
//     panels, ring frames) stop round-tripping through the system allocator.
//   - AXONN_MEM_TRACE=1 additionally emits per-tag live-byte counter events
//     into the Chrome trace (obs::counter) so the allocation timeline lines
//     up with the compute/comm spans of the flight recorder.
//
// Under AddressSanitizer builds the arena mode degrades to track: pooled
// blocks would keep freed ranges mapped and defeat ASan's use-after-free
// red-zones, so pooling is compiled out and every deallocate() really frees.
//
// perf::MemoryModel predicts the per-tag numbers this layer measures, and
// perf::MemoryModelChecker cross-validates the two — the memory twin of the
// CommModelChecker loop.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <new>
#include <string>
#include <vector>

#include "axonn/base/aligned.hpp"

namespace axonn::mem {

/// Subsystem tags. kUntagged is the ambient default (allocations outside any
/// ArenaScope); the named tags mirror the per-rank memory budget of a
/// training step.
enum class Tag : std::uint8_t {
  kUntagged = 0,
  kWeights,        ///< parameter shards, gathered weight blocks, OAG buffers
  kActivations,    ///< layer inputs/outputs, attention probs, backward d*
  kGrads,          ///< gradient shards and replicated gradient tensors
  kAdam,           ///< optimizer first/second moments
  kPackedPanels,   ///< tiled-GEMM packed operand panels
  kCommBuffers,    ///< ring segment frames, retained frames, RS staging
  kJournal,        ///< sentinel journal snapshots, checkpoint/replica blobs
};
inline constexpr std::size_t kNumTags = 8;
const char* to_string(Tag tag);

enum class Mode : std::uint8_t { kOff, kTrack, kArena };
const char* to_string(Mode mode);
/// Throws Error on anything but "off" | "track" | "arena".
Mode parse_mode(std::string_view text);

/// The process-wide mode: AXONN_MEM at first use, overridable for tests.
/// Changing the mode affects new allocations only — in-flight blocks carry
/// their mode in the header and free correctly regardless.
Mode mode();
void set_mode(Mode m);

/// True when the build runs under AddressSanitizer (pooling is disabled and
/// kArena silently behaves like kTrack).
bool pooling_available();

// ---------------------------------------------------------------------------
// Ambient tag
// ---------------------------------------------------------------------------

/// The calling thread's ambient tag (kUntagged outside every scope).
Tag current_tag();

/// RAII thread-local tag: allocations made by this thread while the scope is
/// alive are charged to `tag`. Scopes nest; the innermost wins.
class ArenaScope {
 public:
  explicit ArenaScope(Tag tag);
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;
  ~ArenaScope();

 private:
  Tag prev_;
};

// ---------------------------------------------------------------------------
// Raw allocation
// ---------------------------------------------------------------------------

/// Allocates `bytes` (may be 0 -> non-null unique pointer) aligned to
/// kCacheLineBytes, charged to current_tag(). Throws std::bad_alloc on
/// exhaustion.
void* allocate(std::size_t bytes);

/// Frees a pointer from allocate(). nullptr is a no-op. Safe from any thread
/// and across mode changes (the block header knows how it was allocated).
void deallocate(void* p) noexcept;

// ---------------------------------------------------------------------------
// Accounting
// ---------------------------------------------------------------------------

struct TagStats {
  std::uint64_t live_bytes = 0;   ///< currently allocated (requested bytes)
  std::uint64_t hwm_bytes = 0;    ///< high-water mark of live_bytes
  std::uint64_t allocs = 0;       ///< cumulative allocation count
  std::uint64_t alloc_bytes = 0;  ///< cumulative allocated bytes
};

TagStats tag_stats(Tag tag);
/// Sum of live bytes over all tags (maintained as its own atomic so the
/// total HWM is a true high-water of the sum, not a sum of per-tag HWMs).
std::uint64_t total_live_bytes();
std::uint64_t total_hwm_bytes();

/// Resets every high-water mark (per-tag and total) to the current live
/// bytes — opens a measurement window for MemoryModelChecker/benches.
/// Concurrent allocations continue to be folded in.
void reset_high_water_marks();

struct PoolStats {
  std::uint64_t hits = 0;          ///< allocations served from a free list
  std::uint64_t misses = 0;        ///< allocations that hit ::operator new
  std::uint64_t pooled_bytes = 0;  ///< capacity currently parked in pools
};
PoolStats pool_stats();

/// Releases every pooled free block back to the system (arena mode only;
/// no-op otherwise). Live blocks are unaffected.
void trim_pool();

// ---------------------------------------------------------------------------
// Process memory (/proc/self/status)
// ---------------------------------------------------------------------------

struct ProcessMemory {
  std::uint64_t rss_bytes = 0;     ///< VmRSS, 0 when unavailable
  std::uint64_t vm_hwm_bytes = 0;  ///< VmHWM, 0 when unavailable
};
/// Samples the kernel's view of the process. Returns zeros on platforms
/// without /proc (the tracked numbers above keep working everywhere).
ProcessMemory process_memory();

/// Mirrors the arena counters into the metrics registry as forced gauges
/// (mem.<tag>.live_bytes / mem.<tag>.hwm_bytes, totals, pool stats, process
/// RSS/VmHWM). Cold path: call at export points (a metrics export hook runs
/// it automatically before every Prometheus write).
void publish_metrics();

// ---------------------------------------------------------------------------
// Tracked STL storage
// ---------------------------------------------------------------------------

/// AlignedAllocator routed through the arena. Stateless: the tag is read
/// from the ambient ArenaScope at each allocation and recorded in the block
/// header, so containers may be moved, swapped or freed anywhere without
/// mis-accounting.
template <typename T>
struct TrackedAllocator {
  using value_type = T;
  static_assert(alignof(T) <= kCacheLineBytes);

  TrackedAllocator() = default;
  template <typename U>
  TrackedAllocator(const TrackedAllocator<U>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = TrackedAllocator<U>;
  };

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    return static_cast<T*>(mem::allocate(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t) noexcept { mem::deallocate(p); }

  friend bool operator==(const TrackedAllocator&, const TrackedAllocator&) {
    return true;
  }
};

template <typename T>
using TrackedVector = std::vector<T, TrackedAllocator<T>>;

}  // namespace axonn::mem
