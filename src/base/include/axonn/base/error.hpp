#pragma once

// Error handling for AxoNN-CPP.
//
// Library code reports contract violations and unrecoverable conditions by
// throwing axonn::Error. The AXONN_CHECK family mirrors the assert-style
// macros common in HPC codebases but is always on: checks guard distributed
// invariants (rank bounds, matching message sizes, grid factorizations) whose
// violation would otherwise surface as silent data corruption.

#include <stdexcept>
#include <string>

namespace axonn {

/// Exception thrown on any AxoNN contract violation or runtime failure.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

}  // namespace axonn

/// Always-on invariant check. Throws axonn::Error on failure.
#define AXONN_CHECK(expr)                                                  \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::axonn::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
    }                                                                      \
  } while (false)

/// Always-on invariant check with an explanatory message (std::string-able).
#define AXONN_CHECK_MSG(expr, msg)                                          \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::axonn::detail::throw_check_failure(#expr, __FILE__, __LINE__, msg); \
    }                                                                       \
  } while (false)
