#pragma once

// Deterministic random number generation.
//
// All stochastic behaviour in the library (weight init, synthetic corpora,
// dropout-style masks) flows through Rng so experiments are reproducible
// bit-for-bit across runs and rank counts. The generator is xoshiro256**,
// seeded through SplitMix64 so that small seed integers still produce
// well-mixed state.

#include <array>
#include <cstdint>
#include <limits>

namespace axonn {

/// SplitMix64 step — used for seeding and as a standalone stateless mixer
/// (e.g. the Goldfish-loss token hash).
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mixing hash of a single value (SplitMix64 finalizer).
constexpr std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// Combines a hash with a new value (boost::hash_combine style, 64-bit).
constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  return seed ^ (mix64(value) + 0x9E3779B97F4A7C15ULL + (seed << 12) + (seed >> 4));
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853C49E6748FEA9BULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      word = splitmix64(sm);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) {
    // Lemire's nearly-divisionless method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = (0 - n) % n;
      while (l < t) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal sample (Box–Muller; one value per call, cached pair).
  double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    do {
      u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = __builtin_sqrt(-2.0 * __builtin_log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * __builtin_sin(theta);
    has_cached_ = true;
    return r * __builtin_cos(theta);
  }

  /// Normal with explicit mean/stddev.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Full generator state for checkpoint/restart. Restoring via set_state()
  /// resumes the exact stream (the cached Box–Muller half is deliberately
  /// dropped: a restored generator re-draws the pair, which keeps the state
  /// a plain 4-word value at the cost of one discarded sample).
  std::array<std::uint64_t, 4> state() const { return state_; }
  void set_state(const std::array<std::uint64_t, 4>& state) {
    state_ = state;
    has_cached_ = false;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace axonn
