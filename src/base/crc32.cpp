#include "axonn/base/crc32.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace axonn {

namespace {

// Slicing-by-8 tables: kTables[0] is the classic byte-at-a-time table, and
// kTables[k][b] is the CRC of byte b followed by k zero bytes, so eight
// lookups advance the state by eight input bytes at once. The ring transport
// CRC-stamps every pipelined segment on the hot path, so this runs at
// word-per-iteration rates rather than byte-per-iteration.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    tables[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = tables[k - 1][i];
      tables[k][i] = tables[0][prev & 0xFFu] ^ (prev >> 8);
    }
  }
  return tables;
}

constexpr std::array<std::array<std::uint32_t, 256>, 8> kTables =
    make_tables();

inline std::uint32_t update_byte(std::uint32_t state, unsigned char byte) {
  return kTables[0][(state ^ byte) & 0xFFu] ^ (state >> 8);
}

}  // namespace

std::uint32_t crc32_update(std::uint32_t state, const void* data,
                           std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  if constexpr (std::endian::native == std::endian::little) {
    while (size >= 8) {
      std::uint32_t lo;
      std::uint32_t hi;
      std::memcpy(&lo, bytes, 4);
      std::memcpy(&hi, bytes + 4, 4);
      lo ^= state;
      state = kTables[7][lo & 0xFFu] ^ kTables[6][(lo >> 8) & 0xFFu] ^
              kTables[5][(lo >> 16) & 0xFFu] ^ kTables[4][lo >> 24] ^
              kTables[3][hi & 0xFFu] ^ kTables[2][(hi >> 8) & 0xFFu] ^
              kTables[1][(hi >> 16) & 0xFFu] ^ kTables[0][hi >> 24];
      bytes += 8;
      size -= 8;
    }
  }
  while (size > 0) {
    state = update_byte(state, *bytes++);
    --size;
  }
  return state;
}

}  // namespace axonn
