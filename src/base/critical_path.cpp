#include "axonn/base/critical_path.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "axonn/base/log.hpp"
#include "axonn/base/table.hpp"

namespace axonn::obs {
namespace {

constexpr double kUsToS = 1e-6;

/// Top-level blocking collectives of one rank's iteration window: kCatComm
/// spans on the compute stream that are not nested inside another comm span
/// of the same thread (Transport::recv_from opens nested "recv(src=N)"
/// spans; those are implementation detail, not collectives).
std::vector<const SpanRec*> top_level_comm(const SpanSet& set,
                                           double win_begin, double win_end) {
  std::vector<const SpanRec*> comm;
  for (const SpanRec& s : set.spans) {
    if (std::string_view{s.category} != kCatComm) continue;
    if (s.stream != StreamKind::kMain) continue;
    if (s.end_us <= win_begin || s.begin_us >= win_end) continue;
    comm.push_back(&s);
  }
  std::vector<const SpanRec*> top;
  for (const SpanRec* s : comm) {
    bool nested = false;
    for (const SpanRec* outer : comm) {
      if (outer == s || outer->tid != s->tid) continue;
      if (outer->begin_us <= s->begin_us && s->end_us <= outer->end_us &&
          (outer->begin_us < s->begin_us || outer->end_us > s->end_us)) {
        nested = true;
        break;
      }
    }
    if (!nested) top.push_back(s);
  }
  std::sort(top.begin(), top.end(), [](const SpanRec* a, const SpanRec* b) {
    return a->begin_us < b->begin_us;
  });
  return top;
}

}  // namespace

std::vector<CriticalPathReport> critical_path_reports(
    const std::vector<TraceEvent>& events, int world) {
  std::vector<SpanSet> sets;
  sets.reserve(static_cast<std::size_t>(world));
  std::size_t num_iters = SIZE_MAX;
  for (int r = 0; r < world; ++r) {
    sets.push_back(build_spans(events, r));
    num_iters = std::min(num_iters, sets.back().iterations.size());
  }
  if (world <= 0 || num_iters == SIZE_MAX) return {};

  std::vector<CriticalPathReport> reports;
  for (std::size_t it = 0; it < num_iters; ++it) {
    CriticalPathReport rep;
    rep.iteration = static_cast<int>(it);
    rep.world = world;

    double begin_min = sets[0].iterations[it].begin_us;
    double end_max = sets[0].iterations[it].end_us;
    std::vector<std::vector<const SpanRec*>> per_rank;
    std::size_t num_coll = SIZE_MAX;
    for (int r = 0; r < world; ++r) {
      const SpanRec& win = sets[static_cast<std::size_t>(r)].iterations[it];
      begin_min = std::min(begin_min, win.begin_us);
      end_max = std::max(end_max, win.end_us);
      per_rank.push_back(top_level_comm(sets[static_cast<std::size_t>(r)],
                                        win.begin_us, win.end_us));
      num_coll = std::min(num_coll, per_rank.back().size());
    }
    for (int r = 0; r < world; ++r) {
      if (per_rank[static_cast<std::size_t>(r)].size() != num_coll) {
        rep.consistent = false;  // common prefix only
      }
    }

    rep.makespan_s = (end_max - begin_min) * kUsToS;
    double cursor = begin_min;
    for (std::size_t k = 0; k < num_coll; ++k) {
      CollectiveTiming ct;
      ct.name = per_rank[0][k]->name;
      ct.enter_min_us = per_rank[0][k]->begin_us;
      ct.enter_max_us = per_rank[0][k]->begin_us;
      ct.exit_max_us = per_rank[0][k]->end_us;
      ct.first_rank = 0;
      ct.last_rank = 0;
      for (int r = 1; r < world; ++r) {
        const SpanRec* s = per_rank[static_cast<std::size_t>(r)][k];
        if (s->name != ct.name) rep.consistent = false;
        if (s->begin_us < ct.enter_min_us) {
          ct.enter_min_us = s->begin_us;
          ct.first_rank = r;
        }
        if (s->begin_us > ct.enter_max_us) {
          ct.enter_max_us = s->begin_us;
          ct.last_rank = r;
        }
        ct.exit_max_us = std::max(ct.exit_max_us, s->end_us);
      }
      // Cursor walk: [cursor, enter_min] someone still computes; [enter_min,
      // enter_max] early ranks blocked on the straggler; [enter_max,
      // exit_max] the transfer. Overlapping/out-of-order spans clip to >= 0.
      const double a = std::max(cursor, ct.enter_min_us);
      const double b = std::max(a, ct.enter_max_us);
      const double c = std::max(b, ct.exit_max_us);
      rep.compute_s += (a - cursor) * kUsToS;
      ct.wait_s = (b - a) * kUsToS;
      ct.transfer_s = (c - b) * kUsToS;
      rep.straggler_wait_s += ct.wait_s;
      rep.exposed_comm_s += ct.transfer_s;
      cursor = c;
      rep.collectives.push_back(std::move(ct));
    }
    rep.compute_s += std::max(0.0, end_max - cursor) * kUsToS;
    if (!rep.consistent) {
      AXONN_LOG_WARN << "critical path: ranks issued mismatched collective "
                     << "sequences in iteration " << it
                     << "; report covers the common prefix only";
    }
    reports.push_back(std::move(rep));
  }
  return reports;
}

std::string CriticalPathReport::to_table() const {
  Table summary({"iteration " + std::to_string(iteration), "seconds",
                 "% of makespan"});
  const double denom = makespan_s > 0 ? makespan_s : 1;
  auto row = [&](const char* label, double s) {
    summary.add_row({label, Table::cell(s, 6), Table::cell(100 * s / denom, 1)});
  };
  row("makespan", makespan_s);
  row("compute", compute_s);
  row("straggler wait", straggler_wait_s);
  row("exposed comm", exposed_comm_s);
  std::string out = summary.to_string();

  Table coll({"collective", "wait_ms", "transfer_ms", "last rank"});
  for (const CollectiveTiming& ct : collectives) {
    coll.add_row({ct.name, Table::cell(ct.wait_s * 1e3, 3),
                  Table::cell(ct.transfer_s * 1e3, 3),
                  Table::cell(ct.last_rank)});
  }
  if (!collectives.empty()) out += coll.to_string();
  return out;
}

ModelGapReport compare_with_model(
    const CriticalPathReport& report,
    const std::vector<CollectivePrediction>& predictions) {
  ModelGapReport gap;
  gap.entries.reserve(predictions.size());
  for (const CollectivePrediction& p : predictions) {
    ModelGapEntry e;
    e.name = p.name_substr;
    gap.entries.push_back(std::move(e));
  }
  for (const CollectiveTiming& ct : report.collectives) {
    bool matched = false;
    for (std::size_t i = 0; i < predictions.size(); ++i) {
      if (ct.name.find(predictions[i].name_substr) == std::string::npos) {
        continue;
      }
      ModelGapEntry& e = gap.entries[i];
      e.count += 1;
      e.measured_s += ct.transfer_s;
      e.predicted_s += predictions[i].predicted_s;
      matched = true;
      break;
    }
    if (!matched) ++gap.unmatched_collectives;
  }
  for (ModelGapEntry& e : gap.entries) {
    e.rel_gap =
        e.predicted_s > 0 ? (e.measured_s - e.predicted_s) / e.predicted_s : 0;
  }
  return gap;
}

std::string ModelGapReport::to_table() const {
  Table table({"collective", "n", "measured_ms", "predicted_ms", "rel gap"});
  for (const ModelGapEntry& e : entries) {
    table.add_row({e.name, Table::cell(e.count),
                   Table::cell(e.measured_s * 1e3, 3),
                   Table::cell(e.predicted_s * 1e3, 3),
                   Table::cell(e.rel_gap, 2)});
  }
  return table.to_string();
}

}  // namespace axonn::obs
