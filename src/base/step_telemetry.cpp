#include "axonn/base/step_telemetry.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <utility>

#include "axonn/base/error.hpp"
#include "axonn/base/log.hpp"
#include "axonn/base/table.hpp"

namespace axonn::obs {

const char* to_string(StepField field) {
  switch (field) {
    case StepField::kWallS: return "wall_s";
    case StepField::kExposedCommS: return "exposed_comm_s";
    case StepField::kSelfS: return "self_s";
    case StepField::kGemmGflop: return "gemm_gflop";
    case StepField::kWireMB: return "wire_mb";
    case StepField::kIntegrityEvents: return "integrity_events";
    case StepField::kMemHwmMB: return "mem_hwm_mb";
    case StepField::kLoss: return "loss";
  }
  return "?";
}

StepTelemetry fold_to_telemetry(std::uint64_t step, int world,
                                std::span<const float> fold) {
  AXONN_CHECK_MSG(world >= 1, "fold_to_telemetry needs world >= 1");
  AXONN_CHECK_MSG(fold.size() == fold_size(world),
                  "fold buffer size does not match kNumStepFields * world");
  StepTelemetry t;
  t.step = step;
  t.world = world;
  t.per_rank.resize(fold.size());
  for (std::size_t i = 0; i < fold.size(); ++i) {
    t.per_rank[i] = static_cast<double>(fold[i]);
  }
  const auto w = static_cast<std::size_t>(world);
  for (int f = 0; f < kNumStepFields; ++f) {
    const double* vals = t.per_rank.data() + static_cast<std::size_t>(f) * w;
    StepStat& s = t.stats[static_cast<std::size_t>(f)];
    s.min = vals[0];
    s.max = vals[0];
    s.argmax_rank = 0;
    double sum = 0;
    for (std::size_t r = 0; r < w; ++r) {
      sum += vals[r];
      s.min = std::min(s.min, vals[r]);
      if (vals[r] > s.max) {
        s.max = vals[r];
        s.argmax_rank = static_cast<int>(r);
      }
    }
    s.mean = sum / static_cast<double>(world);
  }
  return t;
}

void write_step_jsonl(std::ostream& out, const StepTelemetry& t) {
  out << "{\"step\":" << t.step << ",\"world\":" << t.world;
  for (int f = 0; f < kNumStepFields; ++f) {
    const StepStat& s = t.stats[static_cast<std::size_t>(f)];
    const char* name = to_string(static_cast<StepField>(f));
    out << ",\"" << name << "\":{\"min\":" << s.min << ",\"mean\":" << s.mean
        << ",\"max\":" << s.max << ",\"argmax_rank\":" << s.argmax_rank << '}';
  }
  auto per_rank_array = [&](StepField field, const char* name) {
    out << ",\"" << name << "\":[";
    for (int r = 0; r < t.world; ++r) {
      if (r) out << ',';
      out << t.rank_value(field, r);
    }
    out << ']';
  };
  per_rank_array(StepField::kWallS, "per_rank_wall_s");
  per_rank_array(StepField::kSelfS, "per_rank_self_s");
  out << "}\n";
}

std::string step_table(const StepTelemetry& t) {
  Table table({"step " + std::to_string(t.step), "min", "mean", "max",
               "argmax rank"});
  for (int f = 0; f < kNumStepFields; ++f) {
    const StepStat& s = t.stats[static_cast<std::size_t>(f)];
    table.add_row({to_string(static_cast<StepField>(f)), Table::cell(s.min, 6),
                   Table::cell(s.mean, 6), Table::cell(s.max, 6),
                   Table::cell(s.argmax_rank)});
  }
  return table.to_string();
}

// ---------------------------------------------------------------------------
// StragglerMonitor
// ---------------------------------------------------------------------------

std::vector<int> StragglerMonitor::observe(const StepTelemetry& t) {
  if (static_cast<int>(streaks_.size()) < t.world) {
    streaks_.resize(static_cast<std::size_t>(t.world), 0);
  }
  const double mean = t.stat(StepField::kSelfS).mean;
  std::vector<int> newly;
  for (int r = 0; r < t.world; ++r) {
    const double self = t.rank_value(StepField::kSelfS, r);
    const bool slow =
        self > config_.factor * mean && self - mean > config_.min_excess_s;
    int& streak = streaks_[static_cast<std::size_t>(r)];
    streak = slow ? streak + 1 : 0;
    if (streak >= config_.consecutive_steps &&
        std::find(flagged_.begin(), flagged_.end(), r) == flagged_.end()) {
      flagged_.push_back(r);
      newly.push_back(r);
      AXONN_LOG_WARN << "straggler: rank " << r << " self time " << self
                     << "s > " << config_.factor << "x mean " << mean
                     << "s for " << streak << " consecutive steps (step "
                     << t.step << ")";
    }
  }
  return newly;
}

int StragglerMonitor::streak(int rank) const {
  if (rank < 0 || rank >= static_cast<int>(streaks_.size())) return 0;
  return streaks_[static_cast<std::size_t>(rank)];
}

// ---------------------------------------------------------------------------
// MetricsSession
// ---------------------------------------------------------------------------

namespace {

// Process-global sink state. A second concurrent session with a path is
// rejected (logged) rather than interleaved.
struct StepSink {
  std::mutex mutex;
  std::ofstream out;
  bool open = false;
  int console_every = 0;
  std::uint64_t emitted = 0;
};

StepSink& step_sink() {
  static StepSink* s = new StepSink;  // leaked: outlives all threads
  return *s;
}

}  // namespace

bool step_sink_active() {
  StepSink& sink = step_sink();
  std::lock_guard<std::mutex> lock(sink.mutex);
  return sink.open;
}

void emit_step(const StepTelemetry& t) {
  StepSink& sink = step_sink();
  std::lock_guard<std::mutex> lock(sink.mutex);
  if (!sink.open) return;
  write_step_jsonl(sink.out, t);
  sink.out.flush();  // live telemetry: a tail -f must see the step now
  ++sink.emitted;
  if (sink.console_every > 0 && sink.emitted % static_cast<std::uint64_t>(
                                                  sink.console_every) == 0) {
    std::cerr << step_table(t);
  }
}

namespace {
std::string metrics_env_path() {
  if (const char* env = std::getenv("AXONN_METRICS")) {
    return *env ? env : "axonn.metrics.jsonl";
  }
  return {};
}
}  // namespace

MetricsSession::MetricsSession() : MetricsSession(metrics_env_path()) {}

MetricsSession::MetricsSession(std::string path) : path_(std::move(path)) {
  if (path_.empty()) return;
  StepSink& sink = step_sink();
  std::lock_guard<std::mutex> lock(sink.mutex);
  if (sink.open) {
    AXONN_LOG_WARN << "metrics: a MetricsSession is already streaming; '"
                   << path_ << "' will only collect registry metrics";
  } else {
    sink.out.open(path_);
    if (!sink.out) {
      AXONN_LOG_WARN << "metrics: cannot open '" << path_ << "' for writing";
    } else {
      sink.open = true;
      sink.emitted = 0;
    }
  }
  metrics::set_enabled(true);
}

void MetricsSession::set_console_every(int n) {
  StepSink& sink = step_sink();
  std::lock_guard<std::mutex> lock(sink.mutex);
  sink.console_every = n;
}

MetricsSession::~MetricsSession() {
  if (path_.empty()) return;
  metrics::set_enabled(false);
  {
    StepSink& sink = step_sink();
    std::lock_guard<std::mutex> lock(sink.mutex);
    if (sink.open) {
      sink.out.close();
      sink.open = false;
    }
  }
  const std::string prom = path_ + ".prom";
  if (metrics::write_prometheus_file(prom)) {
    AXONN_LOG_INFO << "metrics: wrote " << path_ << " (per-step JSONL) and "
                   << prom << " (Prometheus exposition)";
  }
}

}  // namespace axonn::obs
