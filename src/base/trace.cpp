#include "axonn/base/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string_view>
#include <utility>

#include "axonn/base/log.hpp"
#include "axonn/base/metrics.hpp"

namespace axonn::obs {
namespace {

using Clock = std::chrono::steady_clock;

std::atomic<bool> g_enabled{false};
std::atomic<std::size_t> g_capacity{std::size_t{1} << 16};
std::atomic<std::uint32_t> g_next_tid{0};

Clock::time_point trace_epoch() {
  // First use wins; every timestamp is relative to this instant.
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

double now_us() {
  return std::chrono::duration<double, std::micro>(Clock::now() - trace_epoch())
      .count();
}

// One per thread, shared with the global registry so events survive thread
// exit (progress workers are joined before traces are merged, but rank
// threads from run_ranks() are gone by then too).
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;  // ring once size reaches capacity
  std::size_t head = 0;            // next overwrite position when full
  std::size_t capacity = 0;
  std::uint64_t dropped = 0;
  int rank = -1;
  StreamKind stream = StreamKind::kUnknown;
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;  // live span nesting level (owner thread only)
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: outlives all threads
  return *r;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    b->capacity = g_capacity.load(std::memory_order_relaxed);
    b->tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

void record(Phase phase, const char* category, std::string name,
            double value) {
  ThreadBuffer& buf = local_buffer();
  TraceEvent ev;
  ev.t_us = now_us();
  ev.phase = phase;
  ev.stream = buf.stream;
  ev.rank = buf.rank;
  ev.tid = buf.tid;
  ev.category = category;
  ev.name = std::move(name);
  ev.value = value;
  // Depth annotation: a begin carries the level it opens, the matching end
  // carries the same level. Only the owner thread touches buf.depth.
  if (phase == Phase::kBegin) {
    ev.depth = buf.depth++;
  } else if (phase == Phase::kEnd) {
    ev.depth = buf.depth > 0 ? --buf.depth : kUnknownDepth;
  }
  std::lock_guard<std::mutex> lock(buf.mutex);
  if (buf.events.size() < buf.capacity) {
    buf.events.push_back(std::move(ev));
  } else if (buf.capacity > 0) {
    buf.events[buf.head] = std::move(ev);
    buf.head = (buf.head + 1) % buf.capacity;
    ++buf.dropped;
  } else {
    ++buf.dropped;
  }
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  trace_epoch();  // pin the epoch no later than the first enable
  g_enabled.store(on, std::memory_order_relaxed);
}

void set_thread_ident(int rank, StreamKind stream) {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.rank = rank;
  buf.stream = stream;
}

void set_ring_capacity(std::size_t events) {
  g_capacity.store(events, std::memory_order_relaxed);
}

std::uint64_t dropped_events() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::uint64_t total = 0;
  for (const auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    total += buf->dropped;
  }
  return total;
}

void clear() {
  const std::size_t capacity = g_capacity.load(std::memory_order_relaxed);
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    buf->events.clear();
    buf->head = 0;
    buf->dropped = 0;
    buf->capacity = capacity;
  }
}

void begin_span(const char* category, std::string name) {
  if (!enabled()) return;
  record(Phase::kBegin, category, std::move(name), 0);
}

void end_span() {
  if (!enabled()) return;
  record(Phase::kEnd, "", std::string(), 0);
}

void counter(const char* category, std::string name, double value) {
  if (!enabled()) return;
  record(Phase::kCounter, category, std::move(name), value);
}

void instant(const char* category, std::string name) {
  if (!enabled()) return;
  record(Phase::kInstant, category, std::move(name), 0);
}

std::vector<TraceEvent> merged_events() {
  std::vector<TraceEvent> merged;
  {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto& buf : reg.buffers) {
      std::lock_guard<std::mutex> buf_lock(buf->mutex);
      // Unroll the ring into chronological per-thread order.
      const std::size_t n = buf->events.size();
      for (std::size_t i = 0; i < n; ++i) {
        merged.push_back(buf->events[(buf->head + i) % n]);
      }
    }
  }
  // Stable: ties keep per-thread relative order (buffers were appended whole).
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.t_us < b.t_us;
                   });
  return merged;
}

// ---------------------------------------------------------------------------
// Chrome-trace JSON
// ---------------------------------------------------------------------------

namespace {

void write_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          out << hex;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

int chrome_pid(const TraceEvent& ev) { return ev.rank >= 0 ? ev.rank : 9999; }

int chrome_tid(const TraceEvent& ev) {
  switch (ev.stream) {
    case StreamKind::kMain: return 0;
    case StreamKind::kProgress: return 1;
    case StreamKind::kUnknown: break;
  }
  return 100 + static_cast<int>(ev.tid);
}

}  // namespace

void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events) {
  out << "{\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&](auto&& body) {
    if (!first) out << ",\n";
    first = false;
    out << '{';
    body();
    out << '}';
  };

  // Thread-name metadata for every (pid, tid) pair that appears.
  std::vector<std::pair<int, int>> named;
  for (const TraceEvent& ev : events) {
    const std::pair<int, int> key{chrome_pid(ev), chrome_tid(ev)};
    if (std::find(named.begin(), named.end(), key) != named.end()) continue;
    named.push_back(key);
    emit([&] {
      const char* label = key.second == 0   ? "compute"
                          : key.second == 1 ? "comm stream"
                                            : "untagged";
      out << "\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << key.first
          << ",\"tid\":" << key.second << ",\"args\":{\"name\":";
      write_json_string(out, label);
      out << "}";
    });
    if (key.second == 0) {
      emit([&] {
        out << "\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << key.first
            << ",\"tid\":0,\"args\":{\"name\":";
        write_json_string(out, "rank " + std::to_string(key.first));
        out << "}";
      });
    }
  }

  for (const TraceEvent& ev : events) {
    emit([&] {
      const char* ph = "i";
      switch (ev.phase) {
        case Phase::kBegin: ph = "B"; break;
        case Phase::kEnd: ph = "E"; break;
        case Phase::kCounter: ph = "C"; break;
        case Phase::kInstant: ph = "i"; break;
      }
      out << "\"ph\":\"" << ph << "\",\"ts\":" << ev.t_us
          << ",\"pid\":" << chrome_pid(ev) << ",\"tid\":" << chrome_tid(ev);
      if (ev.phase != Phase::kEnd) {
        out << ",\"name\":";
        write_json_string(out, ev.name);
        out << ",\"cat\":";
        write_json_string(out, ev.category);
      }
      if (ev.phase == Phase::kCounter) {
        out << ",\"args\":{\"value\":" << ev.value << "}";
      } else if (ev.phase == Phase::kInstant) {
        out << ",\"s\":\"t\"";
      }
    });
  }
  out << "\n]}\n";
}

bool write_chrome_trace_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    AXONN_LOG_WARN << "trace: cannot open '" << path << "' for writing";
    return false;
  }
  std::vector<TraceEvent> events = merged_events();
  // Dropped events make the trace (and anything derived from it, like
  // iteration reports) lossy; say so in the log, inside the trace itself,
  // and in the metrics registry so the truncation is never silent.
  const std::uint64_t dropped = dropped_events();
  if (dropped > 0) {
    AXONN_LOG_WARN << "trace: " << dropped << " events were dropped by full "
                   << "ring buffers; the trace at '" << path
                   << "' is incomplete (raise obs::set_ring_capacity)";
    TraceEvent marker;
    marker.t_us = events.empty() ? 0 : events.back().t_us;
    marker.phase = Phase::kCounter;
    marker.category = kCatIter;
    marker.name = "trace.dropped_events";
    marker.value = static_cast<double>(dropped);
    events.push_back(std::move(marker));
  }
  static metrics::Gauge dropped_gauge("trace.dropped_events");
  dropped_gauge.set_forced(static_cast<double>(dropped));
  write_chrome_trace(out, events);
  return out.good();
}

TraceSession::TraceSession() {
  if (const char* env = std::getenv("AXONN_TRACE")) {
    path_ = *env ? env : "axonn.trace.json";
    set_enabled(true);
  }
}

TraceSession::TraceSession(std::string path) : path_(std::move(path)) {
  if (!path_.empty()) set_enabled(true);
}

TraceSession::~TraceSession() {
  if (path_.empty()) return;
  set_enabled(false);
  if (write_chrome_trace_file(path_)) {
    AXONN_LOG_INFO << "trace: wrote " << path_
                   << " (open in chrome://tracing or Perfetto)";
  }
}

// ---------------------------------------------------------------------------
// Iteration breakdowns
// ---------------------------------------------------------------------------

namespace {

struct Interval {
  double begin = 0;
  double end = 0;
};

// Total measure of the union of `intervals`, clipped to [lo, hi].
double union_within(std::vector<Interval> intervals, double lo, double hi) {
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) {
              return a.begin < b.begin;
            });
  double total = 0;
  double cursor = lo;
  for (const Interval& iv : intervals) {
    const double b = std::max(iv.begin, std::max(cursor, lo));
    const double e = std::min(iv.end, hi);
    if (e > b) {
      total += e - b;
      cursor = e;
    } else {
      cursor = std::max(cursor, std::min(iv.end, hi));
    }
  }
  return total;
}

bool is_comm_category(const char* cat) {
  const std::string_view c{cat};
  return c == kCatComm || c == kCatWait;
}

}  // namespace

SpanSet build_spans(const std::vector<TraceEvent>& events, int rank) {
  double t_max = 0;
  for (const TraceEvent& ev : events) t_max = std::max(t_max, ev.t_us);

  SpanSet set;
  struct Open {
    double begin;
    std::uint32_t depth;
    const char* category;
    const std::string* name;
  };
  // Per-tid begin stacks; tids are small dense integers.
  std::vector<std::vector<Open>> stacks;
  auto stack_for = [&](std::uint32_t tid) -> std::vector<Open>& {
    if (tid >= stacks.size()) stacks.resize(tid + 1);
    return stacks[tid];
  };
  std::vector<StreamKind> streams;
  auto note_stream = [&](const TraceEvent& ev) {
    if (ev.tid >= streams.size())
      streams.resize(ev.tid + 1, StreamKind::kUnknown);
    streams[ev.tid] = ev.stream;
  };
  auto close_top = [&](std::uint32_t tid, double end) {
    auto& stack = stack_for(tid);
    const Open open = stack.back();
    stack.pop_back();
    SpanRec s;
    s.begin_us = open.begin;
    s.end_us = end;
    s.stream = tid < streams.size() ? streams[tid] : StreamKind::kUnknown;
    s.tid = tid;
    s.depth = open.depth;
    s.category = open.category;
    if (open.name) s.name = *open.name;
    if (std::string_view{open.category} == kCatIter) {
      set.iterations.push_back(std::move(s));
    } else {
      set.spans.push_back(std::move(s));
    }
  };
  for (const TraceEvent& ev : events) {
    if (ev.rank != rank) continue;
    note_stream(ev);
    if (ev.phase == Phase::kBegin) {
      stack_for(ev.tid).push_back({ev.t_us, ev.depth, ev.category, &ev.name});
    } else if (ev.phase == Phase::kEnd) {
      auto& stack = stack_for(ev.tid);
      if (stack.empty()) {
        // Its begin predates the surviving window (ring wrap): ignore rather
        // than popping an unrelated begin.
        ++set.orphan_ends;
        continue;
      }
      if (ev.depth == kUnknownDepth || stack.back().depth == kUnknownDepth) {
        // No depth information (hand-built events): classic stack matching.
        close_top(ev.tid, ev.t_us);
        continue;
      }
      // Depth-matched closing. Deeper opens whose ends were lost are closed
      // here (at this end's timestamp); an end deeper than the open stack is
      // an orphan whose begin was overwritten.
      while (!stack.empty() && stack.back().depth != kUnknownDepth &&
             stack.back().depth > ev.depth) {
        close_top(ev.tid, ev.t_us);
        ++set.force_closed;
      }
      if (!stack.empty() && stack.back().depth == ev.depth) {
        close_top(ev.tid, ev.t_us);
      } else {
        ++set.orphan_ends;
      }
    }
  }
  for (std::uint32_t tid = 0; tid < stacks.size(); ++tid) {
    auto& stack = stacks[tid];
    while (!stack.empty()) {
      if (std::string_view{stack.back().category} == kCatIter) {
        // A partial iteration must not produce a (misleading) report.
        stack.pop_back();
        ++set.dropped_open_iterations;
      } else {
        close_top(tid, t_max);
        ++set.force_closed;
      }
    }
  }
  std::sort(set.iterations.begin(), set.iterations.end(),
            [](const SpanRec& a, const SpanRec& b) {
              return a.begin_us < b.begin_us;
            });
  return set;
}

std::vector<IterationReport> iteration_reports(
    const std::vector<TraceEvent>& events, int rank) {
  const SpanSet set = build_spans(events, rank);

  std::vector<IterationReport> reports;
  reports.reserve(set.iterations.size());
  for (const SpanRec& iter_span : set.iterations) {
    const Interval iter{iter_span.begin_us, iter_span.end_us};
    std::vector<Interval> exposed;   // compute-thread comm/wait stalls
    std::vector<Interval> comm_any;  // comm activity on either stream
    std::vector<Interval> compute;   // explicit compute spans
    for (const SpanRec& s : set.spans) {
      const Interval iv{s.begin_us, s.end_us};
      if (iv.end <= iter.begin || iv.begin >= iter.end) continue;
      if (is_comm_category(s.category)) {
        comm_any.push_back(iv);
        if (s.stream == StreamKind::kMain) exposed.push_back(iv);
      } else if (std::string_view{s.category} == kCatCompute &&
                 s.stream == StreamKind::kMain) {
        compute.push_back(iv);
      }
    }
    IterationReport r;
    constexpr double kUsToS = 1e-6;
    r.wall_s = (iter.end - iter.begin) * kUsToS;
    r.exposed_comm_s =
        union_within(std::move(exposed), iter.begin, iter.end) * kUsToS;
    r.compute_s = r.wall_s - r.exposed_comm_s;
    r.instrumented_compute_s =
        union_within(std::move(compute), iter.begin, iter.end) * kUsToS;
    r.comm_busy_s =
        union_within(std::move(comm_any), iter.begin, iter.end) * kUsToS;
    r.hidden_comm_s = std::max(0.0, r.comm_busy_s - r.exposed_comm_s);
    r.overlap_efficiency =
        r.comm_busy_s > 0 ? r.hidden_comm_s / r.comm_busy_s : 0.0;
    reports.push_back(r);
  }
  return reports;
}

IterationReport mean_report(const std::vector<IterationReport>& reports) {
  IterationReport mean;
  if (reports.empty()) return mean;
  for (const IterationReport& r : reports) {
    mean.wall_s += r.wall_s;
    mean.exposed_comm_s += r.exposed_comm_s;
    mean.compute_s += r.compute_s;
    mean.instrumented_compute_s += r.instrumented_compute_s;
    mean.comm_busy_s += r.comm_busy_s;
    mean.hidden_comm_s += r.hidden_comm_s;
    mean.overlap_efficiency += r.overlap_efficiency;
  }
  const double n = static_cast<double>(reports.size());
  mean.wall_s /= n;
  mean.exposed_comm_s /= n;
  mean.compute_s /= n;
  mean.instrumented_compute_s /= n;
  mean.comm_busy_s /= n;
  mean.hidden_comm_s /= n;
  mean.overlap_efficiency /= n;
  return mean;
}

}  // namespace axonn::obs
