#include "axonn/base/log.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <string_view>

namespace axonn::log {

namespace {

Level parse_level(std::string_view text) {
  if (text == "debug") return Level::kDebug;
  if (text == "info") return Level::kInfo;
  if (text == "warn") return Level::kWarn;
  if (text == "error") return Level::kError;
  if (text == "off") return Level::kOff;
  return Level::kInfo;
}

Level initial_level() {
  if (const char* env = std::getenv("AXONN_LOG_LEVEL")) {
    return parse_level(env);
  }
  return Level::kInfo;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> storage{static_cast<int>(initial_level())};
  return storage;
}

const char* level_tag(Level level) {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF  ";
  }
  return "?????";
}

std::mutex& emit_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

void set_level(Level level) {
  level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

Level level() {
  return static_cast<Level>(level_storage().load(std::memory_order_relaxed));
}

namespace detail {

bool enabled(Level l) { return static_cast<int>(l) >= static_cast<int>(level()); }

void emit(Level l, const std::string& message) {
  std::lock_guard<std::mutex> lock(emit_mutex());
  std::cerr << "[axonn " << level_tag(l) << "] " << message << '\n';
}

}  // namespace detail

}  // namespace axonn::log
