#include "axonn/base/arena.hpp"

#include <array>
#include <atomic>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>

#include "axonn/base/error.hpp"
#include "axonn/base/metrics.hpp"
#include "axonn/base/trace.hpp"

// Pooling keeps freed ranges mapped and reuses them, which would blind
// AddressSanitizer's use-after-free detection; under ASan the arena mode
// degrades to plain tracked allocation (every deallocate really frees).
#if defined(__SANITIZE_ADDRESS__)
#define AXONN_MEM_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define AXONN_MEM_ASAN 1
#endif
#endif
#ifndef AXONN_MEM_ASAN
#define AXONN_MEM_ASAN 0
#endif

namespace axonn::mem {
namespace {

/// One cache line in front of every payload. The payload pointer handed out
/// is base + kHeaderBytes, so kCacheLineBytes alignment is preserved.
constexpr std::size_t kHeaderBytes = kCacheLineBytes;

constexpr std::uint64_t kMagic = 0xA40AB10CA7ED11EFull;
constexpr std::uint32_t kNoClass = 0xFFFFFFFFu;

struct Header {
  std::uint64_t magic;
  std::uint64_t bytes;       ///< requested payload bytes (accounting unit)
  std::uint32_t size_class;  ///< pool class; kNoClass when unpoolable
  std::uint8_t tag;
  std::uint8_t tracked;      ///< accounting was recorded at allocation
  std::uint8_t poolable;     ///< capacity is class-sized; free may pool it
};
static_assert(sizeof(Header) <= kHeaderBytes);

struct TagCell {
  std::atomic<std::uint64_t> live{0};
  std::atomic<std::uint64_t> hwm{0};
  std::atomic<std::uint64_t> allocs{0};
  std::atomic<std::uint64_t> alloc_bytes{0};
};

TagCell g_tag_cells[kNumTags];
std::atomic<std::uint64_t> g_total_live{0};
std::atomic<std::uint64_t> g_total_hwm{0};

thread_local Tag t_tag = Tag::kUntagged;

void raise_hwm(std::atomic<std::uint64_t>& hwm, std::uint64_t candidate) {
  std::uint64_t cur = hwm.load(std::memory_order_relaxed);
  while (candidate > cur &&
         !hwm.compare_exchange_weak(cur, candidate,
                                    std::memory_order_relaxed)) {
  }
}

Mode initial_mode() {
  const char* env = std::getenv("AXONN_MEM");
  if (env == nullptr || *env == '\0') return Mode::kTrack;
  return parse_mode(env);
}

std::atomic<Mode>& mode_cell() {
  static std::atomic<Mode> m{initial_mode()};
  return m;
}

bool trace_timeline_enabled() {
  static const bool on = [] {
    const char* env = std::getenv("AXONN_MEM_TRACE");
    return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
  }();
  return on;
}

// ---------------------------------------------------------------------------
// Size-bucketed pool (arena mode)
// ---------------------------------------------------------------------------

/// Power-of-two classes from 64 B to 4 GiB; larger blocks bypass the pool.
constexpr std::size_t kMinClassLog2 = 6;
constexpr std::size_t kMaxClassLog2 = 32;
constexpr std::size_t kNumClasses = kMaxClassLog2 - kMinClassLog2 + 1;
/// Free-list retention cap: past this the free falls through to the system
/// allocator, bounding how much an allocation spike stays parked.
constexpr std::uint64_t kPoolCapBytes = 256ull << 20;

struct Pool {
  std::mutex mutex;
  std::array<std::vector<void*>, kNumClasses> free_lists;
  std::uint64_t pooled_bytes = 0;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
};

Pool& pool() {
  static Pool* p = new Pool;  // leaked: outlives all threads
  return *p;
}

std::uint32_t size_class_for(std::size_t bytes) {
  std::size_t cls = kMinClassLog2;
  while (cls <= kMaxClassLog2 && (std::size_t{1} << cls) < bytes) ++cls;
  if (cls > kMaxClassLog2) return kNoClass;
  return static_cast<std::uint32_t>(cls - kMinClassLog2);
}

std::size_t class_bytes(std::uint32_t cls) {
  return std::size_t{1} << (cls + kMinClassLog2);
}

void system_free(void* base) noexcept {
  ::operator delete(base, std::align_val_t(kCacheLineBytes));
}

// ---------------------------------------------------------------------------
// Metrics mirroring
// ---------------------------------------------------------------------------

obs::metrics::Histogram& alloc_histogram(Tag tag) {
  static std::array<obs::metrics::Histogram, kNumTags>* hists = [] {
    auto make = [](Tag t) {
      return obs::metrics::Histogram(
          std::string("mem.") + to_string(t) + ".alloc_bytes",
          std::string("log2 allocation-size distribution of the '") +
              to_string(t) + "' arena tag, bytes per allocation");
    };
    return new std::array<obs::metrics::Histogram, kNumTags>{
        make(Tag::kUntagged),     make(Tag::kWeights),
        make(Tag::kActivations),  make(Tag::kGrads),
        make(Tag::kAdam),         make(Tag::kPackedPanels),
        make(Tag::kCommBuffers),  make(Tag::kJournal)};
  }();
  return (*hists)[static_cast<std::size_t>(tag)];
}

void ensure_export_hook() {
  static const bool registered = [] {
    obs::metrics::add_export_hook(&publish_metrics);
    return true;
  }();
  (void)registered;
}

// ---------------------------------------------------------------------------
// Accounting
// ---------------------------------------------------------------------------

void account_alloc(Tag tag, std::size_t bytes) {
  ensure_export_hook();
  TagCell& cell = g_tag_cells[static_cast<std::size_t>(tag)];
  const std::uint64_t live =
      cell.live.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  raise_hwm(cell.hwm, live);
  cell.allocs.fetch_add(1, std::memory_order_relaxed);
  cell.alloc_bytes.fetch_add(bytes, std::memory_order_relaxed);
  const std::uint64_t total =
      g_total_live.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  raise_hwm(g_total_hwm, total);
  alloc_histogram(tag).observe(static_cast<double>(bytes));
  if (trace_timeline_enabled() && obs::enabled()) {
    obs::counter("mem", std::string("live.") + to_string(tag),
                 static_cast<double>(live));
  }
}

void account_free(Tag tag, std::size_t bytes) noexcept {
  TagCell& cell = g_tag_cells[static_cast<std::size_t>(tag)];
  const std::uint64_t live =
      cell.live.fetch_sub(bytes, std::memory_order_relaxed) - bytes;
  g_total_live.fetch_sub(bytes, std::memory_order_relaxed);
  if (trace_timeline_enabled() && obs::enabled()) {
    obs::counter("mem", std::string("live.") + to_string(tag),
                 static_cast<double>(live));
  }
}

}  // namespace

const char* to_string(Tag tag) {
  switch (tag) {
    case Tag::kUntagged: return "untagged";
    case Tag::kWeights: return "weights";
    case Tag::kActivations: return "activations";
    case Tag::kGrads: return "grads";
    case Tag::kAdam: return "adam";
    case Tag::kPackedPanels: return "packed_panels";
    case Tag::kCommBuffers: return "comm_buffers";
    case Tag::kJournal: return "journal";
  }
  return "?";
}

const char* to_string(Mode mode) {
  switch (mode) {
    case Mode::kOff: return "off";
    case Mode::kTrack: return "track";
    case Mode::kArena: return "arena";
  }
  return "?";
}

Mode parse_mode(std::string_view text) {
  if (text == "off") return Mode::kOff;
  if (text == "track") return Mode::kTrack;
  if (text == "arena") return Mode::kArena;
  throw Error("AXONN_MEM: unknown mode '" + std::string(text) +
              "' (expected off|track|arena)");
}

Mode mode() { return mode_cell().load(std::memory_order_relaxed); }

void set_mode(Mode m) { mode_cell().store(m, std::memory_order_relaxed); }

bool pooling_available() { return !AXONN_MEM_ASAN; }

Tag current_tag() { return t_tag; }

ArenaScope::ArenaScope(Tag tag) : prev_(t_tag) { t_tag = tag; }

ArenaScope::~ArenaScope() { t_tag = prev_; }

void* allocate(std::size_t bytes) {
  const Mode m = mode();
  const Tag tag = t_tag;
  const bool tracked = m != Mode::kOff;
  const bool want_pool = m == Mode::kArena && pooling_available();

  std::uint32_t cls = kNoClass;
  std::size_t capacity = bytes;
  void* base = nullptr;
  if (want_pool) {
    cls = size_class_for(bytes);
    if (cls != kNoClass) {
      capacity = class_bytes(cls);
      Pool& p = pool();
      {
        std::lock_guard<std::mutex> lock(p.mutex);
        auto& list = p.free_lists[cls];
        if (!list.empty()) {
          base = list.back();
          list.pop_back();
          p.pooled_bytes -= capacity;
        }
      }
      (base ? p.hits : p.misses).fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (base == nullptr) {
    base = ::operator new(kHeaderBytes + capacity,
                          std::align_val_t(kCacheLineBytes));
  }
  Header* h = static_cast<Header*>(base);
  h->magic = kMagic;
  h->bytes = bytes;
  h->size_class = cls;
  h->tag = static_cast<std::uint8_t>(tag);
  h->tracked = tracked ? 1 : 0;
  h->poolable = (want_pool && cls != kNoClass) ? 1 : 0;
  if (tracked) account_alloc(tag, bytes);
  return static_cast<char*>(base) + kHeaderBytes;
}

void deallocate(void* p) noexcept {
  if (p == nullptr) return;
  void* base = static_cast<char*>(p) - kHeaderBytes;
  Header* h = static_cast<Header*>(base);
  assert(h->magic == kMagic && "mem::deallocate on a foreign pointer");
  if (h->tracked) {
    account_free(static_cast<Tag>(h->tag), static_cast<std::size_t>(h->bytes));
  }
  if (h->poolable && mode() == Mode::kArena) {
    const std::uint32_t cls = h->size_class;
    const std::size_t capacity = class_bytes(cls);
    Pool& p = pool();
    std::lock_guard<std::mutex> lock(p.mutex);
    if (p.pooled_bytes + capacity <= kPoolCapBytes) {
      h->magic = 0;  // poison the stale header against double frees
      p.free_lists[cls].push_back(base);
      p.pooled_bytes += capacity;
      return;
    }
  }
  system_free(base);
}

TagStats tag_stats(Tag tag) {
  const TagCell& cell = g_tag_cells[static_cast<std::size_t>(tag)];
  TagStats s;
  s.live_bytes = cell.live.load(std::memory_order_relaxed);
  s.hwm_bytes = cell.hwm.load(std::memory_order_relaxed);
  s.allocs = cell.allocs.load(std::memory_order_relaxed);
  s.alloc_bytes = cell.alloc_bytes.load(std::memory_order_relaxed);
  return s;
}

std::uint64_t total_live_bytes() {
  return g_total_live.load(std::memory_order_relaxed);
}

std::uint64_t total_hwm_bytes() {
  return g_total_hwm.load(std::memory_order_relaxed);
}

void reset_high_water_marks() {
  for (TagCell& cell : g_tag_cells) {
    cell.hwm.store(cell.live.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  }
  g_total_hwm.store(g_total_live.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
}

PoolStats pool_stats() {
  Pool& p = pool();
  PoolStats s;
  s.hits = p.hits.load(std::memory_order_relaxed);
  s.misses = p.misses.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(p.mutex);
  s.pooled_bytes = p.pooled_bytes;
  return s;
}

void trim_pool() {
  Pool& p = pool();
  std::lock_guard<std::mutex> lock(p.mutex);
  for (auto& list : p.free_lists) {
    for (void* base : list) system_free(base);
    list.clear();
  }
  p.pooled_bytes = 0;
}

ProcessMemory process_memory() {
  ProcessMemory pm;
  std::ifstream status("/proc/self/status");
  if (!status) return pm;
  std::string line;
  while (std::getline(status, line)) {
    const auto parse_kb = [&line](const char* key) -> std::uint64_t {
      const std::size_t len = std::strlen(key);
      if (line.compare(0, len, key) != 0) return 0;
      return std::strtoull(line.c_str() + len, nullptr, 10) * 1024;
    };
    if (const std::uint64_t rss = parse_kb("VmRSS:")) pm.rss_bytes = rss;
    if (const std::uint64_t hwm = parse_kb("VmHWM:")) pm.vm_hwm_bytes = hwm;
  }
  return pm;
}

void publish_metrics() {
  using obs::metrics::Gauge;
  struct TagGauges {
    Gauge live;
    Gauge hwm;
  };
  static std::array<TagGauges, kNumTags>* gauges = [] {
    auto make = [](Tag t) {
      return TagGauges{
          Gauge(std::string("mem.") + to_string(t) + ".live_bytes",
                std::string("bytes currently allocated under the '") +
                    to_string(t) + "' arena tag"),
          Gauge(std::string("mem.") + to_string(t) + ".hwm_bytes",
                std::string("high-water mark of '") + to_string(t) +
                    "' live bytes since process start (or the last reset)")};
    };
    return new std::array<TagGauges, kNumTags>{
        make(Tag::kUntagged),     make(Tag::kWeights),
        make(Tag::kActivations),  make(Tag::kGrads),
        make(Tag::kAdam),         make(Tag::kPackedPanels),
        make(Tag::kCommBuffers),  make(Tag::kJournal)};
  }();
  for (std::size_t t = 0; t < kNumTags; ++t) {
    const TagStats s = tag_stats(static_cast<Tag>(t));
    (*gauges)[t].live.set_forced(static_cast<double>(s.live_bytes));
    (*gauges)[t].hwm.set_forced(static_cast<double>(s.hwm_bytes));
  }
  static Gauge total_live("mem.total.live_bytes",
                          "bytes currently allocated across all arena tags");
  static Gauge total_hwm(
      "mem.total.hwm_bytes",
      "high-water mark of total tracked live bytes (true HWM of the sum)");
  total_live.set_forced(static_cast<double>(total_live_bytes()));
  total_hwm.set_forced(static_cast<double>(total_hwm_bytes()));

  const PoolStats ps = pool_stats();
  static Gauge pool_hits("mem.pool.hits",
                         "allocations served from an arena free list");
  static Gauge pool_misses(
      "mem.pool.misses", "arena-mode allocations that fell through to the "
                         "system allocator");
  static Gauge pool_parked("mem.pool.pooled_bytes",
                           "free-list capacity currently parked in the arena");
  pool_hits.set_forced(static_cast<double>(ps.hits));
  pool_misses.set_forced(static_cast<double>(ps.misses));
  pool_parked.set_forced(static_cast<double>(ps.pooled_bytes));

  const ProcessMemory pm = process_memory();
  static Gauge rss("mem.process.rss_bytes",
                   "kernel VmRSS of the whole process (0 when /proc is "
                   "unavailable)");
  static Gauge vm_hwm("mem.process.vm_hwm_bytes",
                      "kernel VmHWM (peak RSS) of the whole process");
  if (pm.rss_bytes != 0) rss.set_forced(static_cast<double>(pm.rss_bytes));
  if (pm.vm_hwm_bytes != 0) {
    vm_hwm.set_forced(static_cast<double>(pm.vm_hwm_bytes));
  }
}

}  // namespace axonn::mem
