#include "axonn/integrity/abft.hpp"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "axonn/base/trace.hpp"
#include "axonn/tensor/bf16.hpp"

namespace axonn::integrity {

namespace {

std::string sdc_message(const std::string& op, GemmMode mode,
                        GemmBackend backend, std::size_t bad_row,
                        std::size_t bad_col, double worst_rel) {
  return "SDC detected in GEMM '" + op + "' (mode " + to_string(mode) +
         ", backend " + to_string(backend) + "): checksum mismatch " +
         std::to_string(worst_rel) + "x tolerance at element (" +
         std::to_string(bad_row) + ", " + std::to_string(bad_col) + ")";
}

}  // namespace

SdcError::SdcError(std::string op, GemmMode mode, GemmBackend backend,
                   std::size_t bad_row, std::size_t bad_col, double worst_rel)
    : Error(sdc_message(op, mode, backend, bad_row, bad_col, worst_rel)),
      op_(std::move(op)),
      mode_(mode),
      backend_(backend),
      bad_row_(bad_row),
      bad_col_(bad_col) {}

namespace {

thread_local std::optional<AbftFaultPlan> t_fault;

// Everything needed to verify one GEMM, computed from the operands *before*
// the kernel runs (beta * C0 terms read C before it is overwritten).
// Accumulation is double so checksum-side rounding is negligible next to the
// kernel's fp32 accumulation — the tolerance only has to budget for the
// kernel.
struct Predicted {
  std::vector<double> col, abs_col;  // length n: predicted colsum(C), scale
  std::vector<double> row, abs_row;  // length m: predicted rowsum(C), scale
};

Predicted predict_checksums(GemmMode mode, float alpha, const Matrix& a,
                            const Matrix& b, float beta, const Matrix& c0,
                            bool bf16, const GemmShape& s) {
  const bool ta = gemm_transposes_a(mode);
  const bool tb = gemm_transposes_b(mode);
  auto load = [bf16](const Matrix& m, std::size_t r, std::size_t col) {
    const float v = m(r, col);
    return bf16 ? bf16_round(v) : v;
  };
  auto load_a = [&](std::size_t i, std::size_t l) {
    return ta ? load(a, l, i) : load(a, i, l);
  };
  auto load_b = [&](std::size_t l, std::size_t j) {
    return tb ? load(b, j, l) : load(b, l, j);
  };

  // Pass over op(B): sb[l] = sum_j op(B)(l, j) (for row checksums).
  std::vector<double> sb(s.k, 0.0), sb_abs(s.k, 0.0);
  for (std::size_t l = 0; l < s.k; ++l) {
    double acc = 0.0, acc_abs = 0.0;
    for (std::size_t j = 0; j < s.n; ++j) {
      const double v = load_b(l, j);
      acc += v;
      acc_abs += std::abs(v);
    }
    sb[l] = acc;
    sb_abs[l] = acc_abs;
  }

  Predicted p;
  p.row.assign(s.m, 0.0);
  p.abs_row.assign(s.m, 0.0);
  // Single pass over op(A) yields both sa[l] = sum_i op(A)(i, l) (for column
  // checksums) and the row predictions op(A)(i, :) . sb.
  std::vector<double> sa(s.k, 0.0), sa_abs(s.k, 0.0);
  const double da = alpha, da_abs = std::abs(static_cast<double>(alpha));
  for (std::size_t i = 0; i < s.m; ++i) {
    double acc = 0.0, acc_abs = 0.0;
    for (std::size_t l = 0; l < s.k; ++l) {
      const double v = load_a(i, l);
      sa[l] += v;
      sa_abs[l] += std::abs(v);
      acc += v * sb[l];
      acc_abs += std::abs(v) * sb_abs[l];
    }
    p.row[i] = da * acc;
    p.abs_row[i] = da_abs * acc_abs;
  }

  p.col.assign(s.n, 0.0);
  p.abs_col.assign(s.n, 0.0);
  for (std::size_t l = 0; l < s.k; ++l) {
    const double w = da * sa[l], w_abs = da_abs * sa_abs[l];
    for (std::size_t j = 0; j < s.n; ++j) {
      const double v = load_b(l, j);
      p.col[j] += w * v;
      p.abs_col[j] += w_abs * std::abs(v);
    }
  }

  if (beta != 0.0f) {
    const double db = beta, db_abs = std::abs(static_cast<double>(beta));
    for (std::size_t i = 0; i < s.m; ++i) {
      const float* row = c0.row(i);
      double acc = 0.0, acc_abs = 0.0;
      for (std::size_t j = 0; j < s.n; ++j) {
        const double v = row[j];
        acc += v;
        acc_abs += std::abs(v);
        p.col[j] += db * v;
        p.abs_col[j] += db_abs * std::abs(v);
      }
      p.row[i] += db * acc;
      p.abs_row[i] += db_abs * acc_abs;
    }
  }
  return p;
}

struct Violation {
  std::size_t row = 0;
  std::size_t col = 0;
  double worst_rel = 0;  ///< worst observed |diff| / tolerance (> 1)
};

// Compares observed row/column sums of C against the predictions. Returns the
// localized worst violation, or nullopt when every checksum is inside
// tolerance.
std::optional<Violation> verify_checksums(const Predicted& p, const Matrix& c,
                                          double rel_tol) {
  // Floor keeps all-zero (or denormal-scale) problems from dividing by zero;
  // any fault that matters at such scales flips the result far above it.
  constexpr double kTiny = 1e-30;
  // A fault that lands a NaN in C makes the observed sum NaN, and NaN
  // compares false against every threshold — coerce non-finite discrepancies
  // to an infinite violation so they cannot slip through the comparison.
  auto rel_error = [](double observed, double predicted, double tol) {
    const double rel = std::abs(observed - predicted) / tol;
    return std::isfinite(rel) ? rel : std::numeric_limits<double>::infinity();
  };
  const std::size_t m = c.rows(), n = c.cols();
  std::vector<double> col_sum(n, 0.0);
  double worst_row_rel = 0.0, worst_col_rel = 0.0;
  std::size_t worst_row = 0, worst_col = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = c.row(i);
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      acc += row[j];
      col_sum[j] += row[j];
    }
    const double tol = rel_tol * p.abs_row[i] + kTiny;
    const double rel = rel_error(acc, p.row[i], tol);
    if (rel > worst_row_rel) {
      worst_row_rel = rel;
      worst_row = i;
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    const double tol = rel_tol * p.abs_col[j] + kTiny;
    const double rel = rel_error(col_sum[j], p.col[j], tol);
    if (rel > worst_col_rel) {
      worst_col_rel = rel;
      worst_col = j;
    }
  }
  if (worst_row_rel <= 1.0 && worst_col_rel <= 1.0) return std::nullopt;
  // A single corrupted element breaks its row AND its column checksum, so
  // the pair of worst offenders localizes it.
  return Violation{worst_row, worst_col,
                   std::max(worst_row_rel, worst_col_rel)};
}

// Fires (and disarms) a pending simulated ALU fault against C.
void maybe_inject_fault(Matrix& c) {
  if (!t_fault) return;
  if (t_fault->after_checks > 0) {
    --t_fault->after_checks;
    return;
  }
  const AbftFaultPlan plan = *t_fault;
  t_fault.reset();
  if (c.rows() == 0 || c.cols() == 0) return;
  const std::size_t r = std::min(plan.row, c.rows() - 1);
  const std::size_t col = std::min(plan.col, c.cols() - 1);
  float v = c(r, col);
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  bits ^= (1u << (plan.bit & 31));
  std::memcpy(&v, &bits, sizeof(bits));
  c(r, col) = v;
}

}  // namespace

void arm_abft_fault(const AbftFaultPlan& plan) { t_fault = plan; }

bool disarm_abft_fault() {
  const bool was_armed = t_fault.has_value();
  t_fault.reset();
  return was_armed;
}

void abft_checked_gemm(const AbftOptions& opts, const char* op,
                       GemmBackend backend, GemmMode mode, float alpha,
                       const Matrix& a, const Matrix& b, float beta, Matrix& c,
                       bool bf16,
                       const std::function<void(Matrix&)>& compute) {
  const IntegrityMode mode_eff = effective_mode(opts.mode);
  if (mode_eff == IntegrityMode::kOff) {
    compute(c);
    return;
  }

  obs::SpanGuard span;
  if (obs::enabled()) {
    span.open(obs::kCatIntegrity, std::string("abft(") + op + ")");
  }

  const GemmShape s = gemm_shape(mode, a, b);
  const Predicted pred =
      predict_checksums(mode, alpha, a, b, beta, c, bf16, s);
  // Heal mode re-runs the kernel from the original accumulator when
  // beta != 0, so C0 must outlive the first (possibly corrupt) attempt.
  Matrix c0_copy;
  const bool need_c0 = mode_eff == IntegrityMode::kHeal && beta != 0.0f;
  if (need_c0) c0_copy = c;

  Counters& ctr = counters();
  compute(c);
  maybe_inject_fault(c);
  ctr.abft_checks.fetch_add(1, std::memory_order_relaxed);
  std::optional<Violation> bad =
      verify_checksums(pred, c, opts.rel_tolerance);
  if (!bad) return;

  ctr.abft_mismatches.fetch_add(1, std::memory_order_relaxed);
  note_sdc_detected(op);
  if (obs::enabled()) {
    obs::instant(obs::kCatIntegrity, std::string("abft_mismatch(") + op + ")");
  }

  if (mode_eff == IntegrityMode::kHeal) {
    for (int attempt = 0; attempt < opts.max_recomputes; ++attempt) {
      if (need_c0) {
        c = c0_copy;
      }
      ctr.abft_recomputes.fetch_add(1, std::memory_order_relaxed);
      compute(c);
      ctr.abft_checks.fetch_add(1, std::memory_order_relaxed);
      bad = verify_checksums(pred, c, opts.rel_tolerance);
      if (!bad) {
        note_sdc_recovered(op);
        return;
      }
      ctr.abft_mismatches.fetch_add(1, std::memory_order_relaxed);
    }
  }
  throw SdcError(op, mode, backend, bad->row, bad->col, bad->worst_rel);
}

}  // namespace axonn::integrity
