#pragma once

// axonn::integrity — silent-data-corruption (SDC) defense.
//
// PR 1's fault model stops at fail-stop faults: crashes, hangs and corrupt
// checkpoints are detected because something *visibly* breaks. At the scale
// of the paper's headline runs (32,768 GCDs on Frontier) the nastier failure
// mode is silent: a bad ALU result inside a GEMM or a flipped bit in a ring
// segment corrupts the loss without tripping any existing check. This module
// holds what the three integrity defenses share:
//
//   * IntegrityMode — off / detect / heal, resolved against the
//     AXONN_INTEGRITY environment override so a run can be hardened (or a
//     hardened binary disarmed) without recompiling.
//   * Process-global counters (sdc_detected, sdc_recovered, ...) that tests,
//     benches and the resilient supervisor can assert on even when the
//     flight recorder is disabled. When tracing *is* enabled the same events
//     are mirrored into axonn::obs so the trace shows what was healed.
//
// The defenses themselves live with the code they protect: ABFT checksums in
// integrity/abft.{hpp,cpp} (wrapped around tensor/ GEMM backends), CRC-stamped
// self-healing rings in comm/thread_comm.cpp, and the training sentinel in
// train/sentinel.{hpp,cpp}. See DESIGN.md §9.

#include <atomic>
#include <cstdint>
#include <optional>
#include <string_view>

namespace axonn::integrity {

/// How aggressively an integrity defense acts.
///  kOff:    no checksums computed; bit-identical to the pre-integrity code.
///  kDetect: checksums verified; a mismatch raises a structured error.
///  kHeal:   mismatch triggers in-run recovery (recompute / retransmit /
///           replay) before escalating to the detect-style error.
enum class IntegrityMode : std::uint8_t { kOff = 0, kDetect = 1, kHeal = 2 };

const char* to_string(IntegrityMode mode);

/// Parses "off" / "detect" / "heal" (throws axonn::Error on anything else).
IntegrityMode parse_mode(std::string_view text);

/// The AXONN_INTEGRITY environment override, parsed once per process.
/// Unset or empty -> nullopt (configured values stand).
std::optional<IntegrityMode> env_mode_override();

/// The mode a defense should actually run at: the AXONN_INTEGRITY override
/// when present, else the configured value.
IntegrityMode effective_mode(IntegrityMode configured);

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// Plain-value copy of the counters (safe to compare/print).
struct CountersSnapshot {
  std::uint64_t sdc_detected = 0;    ///< any defense saw corruption
  std::uint64_t sdc_recovered = 0;   ///< ...and healed it in-run
  std::uint64_t abft_checks = 0;     ///< checksummed GEMMs verified
  std::uint64_t abft_mismatches = 0; ///< GEMM checksum disagreements
  std::uint64_t abft_recomputes = 0; ///< heal-mode GEMM re-executions
  std::uint64_t ring_crc_checks = 0; ///< CRC-verified ring messages
  std::uint64_t ring_retransmits = 0;///< NACKed segments re-sent
  std::uint64_t wire_faults_injected = 0;  ///< ChaosComm wire-level flips
  std::uint64_t sentinel_checks = 0; ///< per-step health evaluations
  std::uint64_t sentinel_unhealthy = 0;  ///< consensus-unhealthy steps
  std::uint64_t step_replays = 0;    ///< journal rollback + replay events
};

/// Process-global atomic counters. Unlike obs counters these work with
/// tracing disabled, which is what lets the acceptance criterion
/// `sdc_recovered == sdc_detected` be asserted in ordinary test binaries.
struct Counters {
  std::atomic<std::uint64_t> sdc_detected{0};
  std::atomic<std::uint64_t> sdc_recovered{0};
  std::atomic<std::uint64_t> abft_checks{0};
  std::atomic<std::uint64_t> abft_mismatches{0};
  std::atomic<std::uint64_t> abft_recomputes{0};
  std::atomic<std::uint64_t> ring_crc_checks{0};
  std::atomic<std::uint64_t> ring_retransmits{0};
  std::atomic<std::uint64_t> wire_faults_injected{0};
  std::atomic<std::uint64_t> sentinel_checks{0};
  std::atomic<std::uint64_t> sentinel_unhealthy{0};
  std::atomic<std::uint64_t> step_replays{0};

  CountersSnapshot snapshot() const;
  void reset();
};

Counters& counters();

/// Bumps sdc_detected (and, with tracing on, mirrors the running total into
/// an obs counter plus an instant naming the detector site).
void note_sdc_detected(const char* what);

/// Bumps sdc_recovered, mirrored into obs like note_sdc_detected().
void note_sdc_recovered(const char* what);

}  // namespace axonn::integrity
