#pragma once

// Algorithm-based fault tolerance (ABFT) for GEMM — Huang & Abraham (1984).
//
// For C = alpha * op(A) x op(B) + beta * C0 the column checksum identity
//
//   colsum(C)[j] = alpha * sum_l colsum(op(A))[l] * op(B)(l, j)
//                + beta * colsum(C0)[j]
//
// (and the symmetric row identity via rowsum(op(B))) holds in exact
// arithmetic for *any* correct kernel, regardless of how it blocks or orders
// the accumulation. A single corrupted output element breaks exactly one row
// checksum and one column checksum, so verification both detects the fault
// and localizes it to a (row, col) tile. The checksums cost O(mk + kn + mn)
// next to the kernel's O(mnk) — a few percent at transformer shapes.
//
// Floating point makes the identity approximate: the predicted and observed
// checksums accumulate in different orders. Checksum accumulation here is
// double precision, so the budget is dominated by the kernel's fp32
// accumulation error, which is why tolerances scale with the *absolute-value*
// checksums (computed in the same passes): tol_j = rel_tolerance *
// abs_colsum[j] + tiny. That stays false-positive-free across the reference
// and tiled backends (different accumulation grouping) while still catching
// exponent-scale bit flips — the SDC class that actually poisons training.
//
// abft_checked_gemm() wraps any backend via a compute callback: kDetect
// verifies and throws SdcError on mismatch; kHeal re-runs the callback from
// the preserved inputs (bounded retries) before giving up, on the theory that
// an SDC-class fault is transient. arm_abft_fault() plants a one-shot
// post-kernel corruption on the calling thread so tests and demos can
// exercise the detect/heal paths deterministically.

#include <cstddef>
#include <functional>
#include <optional>

#include "axonn/base/error.hpp"
#include "axonn/integrity/integrity.hpp"
#include "axonn/tensor/gemm.hpp"
#include "axonn/tensor/matrix.hpp"

namespace axonn::integrity {

/// A verified silent-data-corruption event: checksum mismatch that detect
/// mode surfaces (or heal mode failed to repair within its retry budget).
class SdcError : public Error {
 public:
  SdcError(std::string op, GemmMode mode, GemmBackend backend,
           std::size_t bad_row, std::size_t bad_col, double worst_rel);

  const std::string& op() const { return op_; }
  GemmMode mode() const { return mode_; }
  GemmBackend backend() const { return backend_; }
  /// Row/column of the worst checksum violation — the corrupted tile.
  std::size_t bad_row() const { return bad_row_; }
  std::size_t bad_col() const { return bad_col_; }

 private:
  std::string op_;
  GemmMode mode_;
  GemmBackend backend_;
  std::size_t bad_row_ = 0;
  std::size_t bad_col_ = 0;
};

struct AbftOptions {
  IntegrityMode mode = IntegrityMode::kOff;
  /// Mismatch threshold relative to the absolute-value checksum magnitude.
  /// 1e-3 clears fp32 accumulation noise (~k * 2^-24 of the abs scale) with
  /// two orders of margin at transformer k, yet catches exponent-scale
  /// faults, which sit orders of magnitude above it.
  double rel_tolerance = 1e-3;
  /// kHeal: how many times to re-run the kernel before declaring the fault
  /// persistent and throwing SdcError anyway.
  int max_recomputes = 2;
};

/// Runs `compute(c)` — which must write C = alpha*op(A)xop(B) + beta*C (using
/// exactly the operands given here, rounded through bf16 when `bf16`) — under
/// Huang–Abraham verification per `opts.mode` (already env-resolved by the
/// caller or not; this applies effective_mode() itself). On kOff, calls
/// compute once with zero overhead. Throws SdcError as described above.
/// `op` names the call site for errors/traces (e.g. "fc:forward").
void abft_checked_gemm(const AbftOptions& opts, const char* op,
                       GemmBackend backend, GemmMode mode, float alpha,
                       const Matrix& a, const Matrix& b, float beta, Matrix& c,
                       bool bf16, const std::function<void(Matrix&)>& compute);

/// One-shot simulated ALU fault, armed per thread (rank identity is
/// per-thread under ThreadComm's run_ranks).
struct AbftFaultPlan {
  /// Fires on the N-th subsequent *checked* GEMM on this thread (0 = next).
  int after_checks = 0;
  /// Output element to corrupt (clamped into the output shape).
  std::size_t row = 0;
  std::size_t col = 0;
  /// Which bit of the float to flip. Bit 30 (top exponent bit) turns an
  /// ordinary activation into an astronomically wrong one — the loud end of
  /// the SDC spectrum, guaranteed detectable at any sane tolerance.
  int bit = 30;
};

/// Arms `plan` on the calling thread (replacing any armed plan). The fault is
/// applied to C after the kernel runs, then disarms — so a heal-mode
/// recompute observes the clean kernel and recovers bitwise-identically.
void arm_abft_fault(const AbftFaultPlan& plan);

/// Disarms without firing; returns true if a plan was pending.
bool disarm_abft_fault();

}  // namespace axonn::integrity
