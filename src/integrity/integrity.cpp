#include "axonn/integrity/integrity.hpp"

#include <cstdlib>
#include <mutex>
#include <string>

#include "axonn/base/error.hpp"
#include "axonn/base/metrics.hpp"
#include "axonn/base/trace.hpp"

namespace axonn::integrity {

const char* to_string(IntegrityMode mode) {
  switch (mode) {
    case IntegrityMode::kOff: return "off";
    case IntegrityMode::kDetect: return "detect";
    case IntegrityMode::kHeal: return "heal";
  }
  return "??";
}

IntegrityMode parse_mode(std::string_view text) {
  if (text == "off") return IntegrityMode::kOff;
  if (text == "detect") return IntegrityMode::kDetect;
  if (text == "heal") return IntegrityMode::kHeal;
  throw Error("AXONN_INTEGRITY: unknown mode '" + std::string(text) +
              "' (expected off|detect|heal)");
}

std::optional<IntegrityMode> env_mode_override() {
  // Parsed once: the override is a process-lifetime decision, and reading it
  // on every GEMM would put getenv (not thread-safe against setenv) on the
  // hot path.
  static const std::optional<IntegrityMode> cached = [] {
    const char* env = std::getenv("AXONN_INTEGRITY");
    if (env == nullptr || *env == '\0') return std::optional<IntegrityMode>{};
    return std::optional<IntegrityMode>{parse_mode(env)};
  }();
  return cached;
}

IntegrityMode effective_mode(IntegrityMode configured) {
  if (const auto forced = env_mode_override()) return *forced;
  return configured;
}

CountersSnapshot Counters::snapshot() const {
  CountersSnapshot s;
  s.sdc_detected = sdc_detected.load(std::memory_order_relaxed);
  s.sdc_recovered = sdc_recovered.load(std::memory_order_relaxed);
  s.abft_checks = abft_checks.load(std::memory_order_relaxed);
  s.abft_mismatches = abft_mismatches.load(std::memory_order_relaxed);
  s.abft_recomputes = abft_recomputes.load(std::memory_order_relaxed);
  s.ring_crc_checks = ring_crc_checks.load(std::memory_order_relaxed);
  s.ring_retransmits = ring_retransmits.load(std::memory_order_relaxed);
  s.wire_faults_injected = wire_faults_injected.load(std::memory_order_relaxed);
  s.sentinel_checks = sentinel_checks.load(std::memory_order_relaxed);
  s.sentinel_unhealthy = sentinel_unhealthy.load(std::memory_order_relaxed);
  s.step_replays = step_replays.load(std::memory_order_relaxed);
  return s;
}

void Counters::reset() {
  sdc_detected.store(0, std::memory_order_relaxed);
  sdc_recovered.store(0, std::memory_order_relaxed);
  abft_checks.store(0, std::memory_order_relaxed);
  abft_mismatches.store(0, std::memory_order_relaxed);
  abft_recomputes.store(0, std::memory_order_relaxed);
  ring_crc_checks.store(0, std::memory_order_relaxed);
  ring_retransmits.store(0, std::memory_order_relaxed);
  wire_faults_injected.store(0, std::memory_order_relaxed);
  sentinel_checks.store(0, std::memory_order_relaxed);
  sentinel_unhealthy.store(0, std::memory_order_relaxed);
  step_replays.store(0, std::memory_order_relaxed);
}

namespace {

// Mirrors the full Counters struct into the metrics registry as forced
// gauges so one Prometheus scrape sees every integrity number, not just the
// two the note_* hot paths increment. Gauges, not registry counters: the
// atomics are the source of truth (they run with metrics disabled and can be
// reset by tests), so the registry copy is a snapshot, not an accumulator.
void publish_integrity_metrics() {
  namespace metrics = obs::metrics;
  static const metrics::Gauge gauges[] = {
      metrics::Gauge("integrity.sdc_detected_total",
                     "corruption detections across all defenses"),
      metrics::Gauge("integrity.sdc_recovered_total",
                     "detections healed in-run"),
      metrics::Gauge("integrity.abft_checks_total",
                     "checksummed GEMMs verified"),
      metrics::Gauge("integrity.abft_mismatches_total",
                     "GEMM checksum disagreements"),
      metrics::Gauge("integrity.abft_recomputes_total",
                     "heal-mode GEMM re-executions"),
      metrics::Gauge("integrity.ring_crc_checks_total",
                     "CRC-verified ring messages"),
      metrics::Gauge("integrity.ring_retransmits_total",
                     "NACKed ring segments re-sent"),
      metrics::Gauge("integrity.wire_faults_injected_total",
                     "ChaosComm wire-level bit flips injected"),
      metrics::Gauge("integrity.sentinel_checks_total",
                     "per-step sentinel health evaluations"),
      metrics::Gauge("integrity.sentinel_unhealthy_total",
                     "consensus-unhealthy training steps"),
      metrics::Gauge("integrity.step_replays_total",
                     "journal rollback + replay events"),
  };
  const CountersSnapshot s = counters().snapshot();
  const std::uint64_t values[] = {
      s.sdc_detected,     s.sdc_recovered,        s.abft_checks,
      s.abft_mismatches,  s.abft_recomputes,      s.ring_crc_checks,
      s.ring_retransmits, s.wire_faults_injected, s.sentinel_checks,
      s.sentinel_unhealthy, s.step_replays,
  };
  for (std::size_t i = 0; i < std::size(values); ++i) {
    gauges[i].set_forced(static_cast<double>(values[i]));
  }
}

}  // namespace

Counters& counters() {
  static Counters instance;
  static const bool hooked = [] {
    obs::metrics::add_export_hook(&publish_integrity_metrics);
    return true;
  }();
  (void)hooked;
  return instance;
}

void note_sdc_detected(const char* what) {
  const std::uint64_t total =
      counters().sdc_detected.fetch_add(1, std::memory_order_relaxed) + 1;
  if (obs::enabled()) {
    obs::counter(obs::kCatIntegrity, "sdc_detected",
                 static_cast<double>(total));
    obs::instant(obs::kCatIntegrity, std::string("sdc_detected(") + what + ")");
  }
  static obs::metrics::Counter detected("integrity.sdc_detected");
  detected.add();
}

void note_sdc_recovered(const char* what) {
  const std::uint64_t total =
      counters().sdc_recovered.fetch_add(1, std::memory_order_relaxed) + 1;
  if (obs::enabled()) {
    obs::counter(obs::kCatIntegrity, "sdc_recovered",
                 static_cast<double>(total));
    obs::instant(obs::kCatIntegrity,
                 std::string("sdc_recovered(") + what + ")");
  }
  static obs::metrics::Counter recovered("integrity.sdc_recovered");
  recovered.add();
}

}  // namespace axonn::integrity
