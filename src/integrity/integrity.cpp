#include "axonn/integrity/integrity.hpp"

#include <cstdlib>
#include <mutex>
#include <string>

#include "axonn/base/error.hpp"
#include "axonn/base/metrics.hpp"
#include "axonn/base/trace.hpp"

namespace axonn::integrity {

const char* to_string(IntegrityMode mode) {
  switch (mode) {
    case IntegrityMode::kOff: return "off";
    case IntegrityMode::kDetect: return "detect";
    case IntegrityMode::kHeal: return "heal";
  }
  return "??";
}

IntegrityMode parse_mode(std::string_view text) {
  if (text == "off") return IntegrityMode::kOff;
  if (text == "detect") return IntegrityMode::kDetect;
  if (text == "heal") return IntegrityMode::kHeal;
  throw Error("AXONN_INTEGRITY: unknown mode '" + std::string(text) +
              "' (expected off|detect|heal)");
}

std::optional<IntegrityMode> env_mode_override() {
  // Parsed once: the override is a process-lifetime decision, and reading it
  // on every GEMM would put getenv (not thread-safe against setenv) on the
  // hot path.
  static const std::optional<IntegrityMode> cached = [] {
    const char* env = std::getenv("AXONN_INTEGRITY");
    if (env == nullptr || *env == '\0') return std::optional<IntegrityMode>{};
    return std::optional<IntegrityMode>{parse_mode(env)};
  }();
  return cached;
}

IntegrityMode effective_mode(IntegrityMode configured) {
  if (const auto forced = env_mode_override()) return *forced;
  return configured;
}

CountersSnapshot Counters::snapshot() const {
  CountersSnapshot s;
  s.sdc_detected = sdc_detected.load(std::memory_order_relaxed);
  s.sdc_recovered = sdc_recovered.load(std::memory_order_relaxed);
  s.abft_checks = abft_checks.load(std::memory_order_relaxed);
  s.abft_mismatches = abft_mismatches.load(std::memory_order_relaxed);
  s.abft_recomputes = abft_recomputes.load(std::memory_order_relaxed);
  s.ring_crc_checks = ring_crc_checks.load(std::memory_order_relaxed);
  s.ring_retransmits = ring_retransmits.load(std::memory_order_relaxed);
  s.wire_faults_injected = wire_faults_injected.load(std::memory_order_relaxed);
  s.sentinel_checks = sentinel_checks.load(std::memory_order_relaxed);
  s.sentinel_unhealthy = sentinel_unhealthy.load(std::memory_order_relaxed);
  s.step_replays = step_replays.load(std::memory_order_relaxed);
  return s;
}

void Counters::reset() {
  sdc_detected.store(0, std::memory_order_relaxed);
  sdc_recovered.store(0, std::memory_order_relaxed);
  abft_checks.store(0, std::memory_order_relaxed);
  abft_mismatches.store(0, std::memory_order_relaxed);
  abft_recomputes.store(0, std::memory_order_relaxed);
  ring_crc_checks.store(0, std::memory_order_relaxed);
  ring_retransmits.store(0, std::memory_order_relaxed);
  wire_faults_injected.store(0, std::memory_order_relaxed);
  sentinel_checks.store(0, std::memory_order_relaxed);
  sentinel_unhealthy.store(0, std::memory_order_relaxed);
  step_replays.store(0, std::memory_order_relaxed);
}

Counters& counters() {
  static Counters instance;
  return instance;
}

void note_sdc_detected(const char* what) {
  const std::uint64_t total =
      counters().sdc_detected.fetch_add(1, std::memory_order_relaxed) + 1;
  if (obs::enabled()) {
    obs::counter(obs::kCatIntegrity, "sdc_detected",
                 static_cast<double>(total));
    obs::instant(obs::kCatIntegrity, std::string("sdc_detected(") + what + ")");
  }
  static obs::metrics::Counter detected("integrity.sdc_detected");
  detected.add();
}

void note_sdc_recovered(const char* what) {
  const std::uint64_t total =
      counters().sdc_recovered.fetch_add(1, std::memory_order_relaxed) + 1;
  if (obs::enabled()) {
    obs::counter(obs::kCatIntegrity, "sdc_recovered",
                 static_cast<double>(total));
    obs::instant(obs::kCatIntegrity,
                 std::string("sdc_recovered(") + what + ")");
  }
  static obs::metrics::Counter recovered("integrity.sdc_recovered");
  recovered.add();
}

}  // namespace axonn::integrity
