#pragma once

// Ring algorithms for all-gather, reduce-scatter and all-reduce.
//
// Assumption-1 of the paper's performance model is that these collectives
// use the ring algorithm (Thakur et al. [28], Rabenseifner [29]); the wire
// traffic of the implementations here is exactly what Eqs. 1–5 predict:
//   all-gather      : each rank sends (p-1)/p of the full buffer
//   reduce-scatter  : each rank sends (p-1)/p of the full buffer
//   all-reduce      : reduce-scatter + all-gather = 2 (p-1)/p
//
// The algorithms are templates over a Transport so they can be unit-tested
// against reference implementations and reused by any rank runtime. The
// Transport contract:
//   int rank() const; int size() const;
//   void send_to(int dest_rank, std::span<const float> data);
//   void recv_from(int src_rank, std::span<float> out);
// send_to must be non-blocking (buffered) or at least not require the peer
// to have posted a receive; recv_from blocks until the matching message
// arrives. Messages between a fixed (src, dst) pair are delivered in order.
//
// Chunk pipelining: with segment_elems > 0 each per-rank chunk travels as
// fixed-size segments that are forwarded (all-gather) or reduced-then-
// forwarded (reduce-scatter) the moment they arrive, instead of waiting for
// the whole chunk. A segment therefore propagates across multiple ring hops
// while later segments of the same chunk are still in flight, which hides
// per-hop latency behind the stream of segments. The wire traffic is
// unchanged — the same elements cross the same edges, in more, smaller
// messages — so Eqs. 1–5 still hold, and the reduction order is identical to
// the unsegmented algorithm, so results are bitwise equal.

#include <cstddef>
#include <numeric>
#include <span>
#include <vector>

#include "axonn/base/error.hpp"
#include "axonn/base/partition.hpp"
#include "axonn/comm/communicator.hpp"

namespace axonn::comm {

namespace detail {

inline float reduce_one(ReduceOp op, float a, float b) {
  switch (op) {
    case ReduceOp::kSum: return a + b;
    case ReduceOp::kMax: return a > b ? a : b;
    case ReduceOp::kMin: return a < b ? a : b;
  }
  return a;
}

inline void reduce_into(ReduceOp op, std::span<float> acc,
                        std::span<const float> incoming) {
  AXONN_CHECK(acc.size() == incoming.size());
  for (std::size_t i = 0; i < acc.size(); ++i) {
    acc[i] = reduce_one(op, acc[i], incoming[i]);
  }
}

/// Chunk byte offsets from per-chunk element counts.
inline std::vector<std::size_t> chunk_offsets(
    std::span<const std::size_t> counts) {
  std::vector<std::size_t> offsets(counts.size() + 1, 0);
  std::partial_sum(counts.begin(), counts.end(), offsets.begin() + 1);
  return offsets;
}

/// Segments a chunk of `elems` elements into pieces of `segment_elems`.
/// A zero-element chunk has zero segments — consistently on the sending and
/// receiving rank, so message matching is preserved.
inline std::size_t segment_count(std::size_t elems,
                                 std::size_t segment_elems) {
  return (elems + segment_elems - 1) / segment_elems;
}

/// Invokes fn(offset, length) for each segment of [0, elems).
template <typename Fn>
void for_each_segment(std::size_t elems, std::size_t segment_elems, Fn&& fn) {
  for (std::size_t off = 0; off < elems; off += segment_elems) {
    fn(off, std::min(segment_elems, elems - off));
  }
}

}  // namespace detail

/// Ring all-gather with per-rank element counts. On entry rank r contributes
/// `send` (send.size() == counts[r]); on exit `recv` holds every rank's
/// contribution packed in rank order. p-1 steps; step s forwards the chunk
/// received at step s-1. With `segment_elems` > 0 each chunk is streamed as
/// fixed-size segments forwarded the moment they arrive (chunk pipelining).
template <typename Transport>
void ring_all_gatherv(Transport& t, std::span<const float> send,
                      std::span<float> recv,
                      std::span<const std::size_t> counts,
                      std::size_t segment_elems = 0) {
  const int p = t.size();
  const int r = t.rank();
  AXONN_CHECK(static_cast<int>(counts.size()) == p);
  const auto offsets = detail::chunk_offsets(counts);
  AXONN_CHECK_MSG(recv.size() == offsets.back(),
                  "all_gatherv recv buffer size != sum of counts");
  AXONN_CHECK_MSG(send.size() == counts[static_cast<std::size_t>(r)],
                  "all_gatherv send size != this rank's count");

  auto chunk = [&](int c) {
    return recv.subspan(offsets[static_cast<std::size_t>(c)],
                        counts[static_cast<std::size_t>(c)]);
  };

  // Place own contribution, then rotate the ring p-1 times.
  std::copy(send.begin(), send.end(), chunk(r).begin());
  if (p == 1) return;

  const int right = (r + 1) % p;
  const int left = (r - 1 + p) % p;

  if (segment_elems == 0) {
    for (int s = 0; s < p - 1; ++s) {
      const int send_chunk = (r - s + p) % p;
      const int recv_chunk = (r - s - 1 + p) % p;
      t.send_to(right, chunk(send_chunk));
      t.recv_from(left, chunk(recv_chunk));
    }
    return;
  }

  // Pipelined: inject the own chunk as a stream of segments, then at hop s
  // receive the segments of chunk (r-s-1) from the left and forward each
  // immediately — except at the last hop, where the chunk stops here. Every
  // send precedes the blocking receive it enables on the right neighbour, so
  // the schedule is deadlock-free, and per-edge in-order delivery makes the
  // segment streams match up without tags.
  detail::for_each_segment(
      chunk(r).size(), segment_elems,
      [&](std::size_t off, std::size_t len) {
        t.send_to(right, chunk(r).subspan(off, len));
      });
  for (int s = 0; s < p - 1; ++s) {
    const int c = (r - s - 1 + p) % p;
    const bool forward = s != p - 2;
    detail::for_each_segment(
        chunk(c).size(), segment_elems, [&](std::size_t off, std::size_t len) {
          auto seg = chunk(c).subspan(off, len);
          t.recv_from(left, seg);
          if (forward) t.send_to(right, seg);
        });
  }
}

/// Ring reduce-scatter with per-chunk element counts. `send` holds the full
/// vector (sum of counts); on exit rank r's `recv` holds the reduction of
/// chunk r across all ranks. p-1 steps; partial sums travel around the ring
/// so that chunk r completes exactly at rank r. With `segment_elems` > 0
/// partial sums are reduced and forwarded segment-by-segment (chunk
/// pipelining); the pairwise reduction order is unchanged, so the result is
/// bitwise identical to the unsegmented algorithm.
template <typename Transport>
void ring_reduce_scatterv(Transport& t, std::span<const float> send,
                          std::span<float> recv,
                          std::span<const std::size_t> counts, ReduceOp op,
                          std::size_t segment_elems = 0) {
  const int p = t.size();
  const int r = t.rank();
  AXONN_CHECK(static_cast<int>(counts.size()) == p);
  const auto offsets = detail::chunk_offsets(counts);
  AXONN_CHECK_MSG(send.size() == offsets.back(),
                  "reduce_scatterv send buffer size != sum of counts");
  AXONN_CHECK_MSG(recv.size() == counts[static_cast<std::size_t>(r)],
                  "reduce_scatterv recv size != this rank's count");

  if (p == 1) {
    std::copy(send.begin(), send.end(), recv.begin());
    return;
  }

  // Working copy: partial sums are accumulated in place per chunk.
  std::vector<float> work(send.begin(), send.end());
  auto chunk = [&](int c) {
    return std::span<float>(work).subspan(offsets[static_cast<std::size_t>(c)],
                                          counts[static_cast<std::size_t>(c)]);
  };

  const int right = (r + 1) % p;
  const int left = (r - 1 + p) % p;
  std::vector<float> incoming;

  if (segment_elems == 0) {
    for (int s = 0; s < p - 1; ++s) {
      const int send_chunk = (r - s - 1 + p) % p;
      const int recv_chunk = (r - s - 2 + 2 * p) % p;
      t.send_to(right, chunk(send_chunk));
      incoming.resize(counts[static_cast<std::size_t>(recv_chunk)]);
      t.recv_from(left, incoming);
      detail::reduce_into(op, chunk(recv_chunk), incoming);
    }
  } else {
    // Pipelined: inject the raw chunk (r-1) as segments, then at hop s
    // receive each partial-sum segment of chunk (r-s-2), reduce it into the
    // working copy, and forward the reduced segment immediately — except at
    // the last hop, where the fully reduced chunk r stays here. Same
    // pairwise reductions in the same order as the unsegmented loop.
    auto first = chunk((r - 1 + p) % p);
    detail::for_each_segment(first.size(), segment_elems,
                             [&](std::size_t off, std::size_t len) {
                               t.send_to(right, first.subspan(off, len));
                             });
    incoming.resize(std::min<std::size_t>(segment_elems, send.size()));
    for (int s = 0; s < p - 1; ++s) {
      const int c = (r - s - 2 + 2 * p) % p;
      const bool forward = s != p - 2;
      detail::for_each_segment(
          chunk(c).size(), segment_elems,
          [&](std::size_t off, std::size_t len) {
            auto seg = chunk(c).subspan(off, len);
            auto in = std::span<float>(incoming).first(len);
            t.recv_from(left, in);
            detail::reduce_into(op, seg, in);
            if (forward) t.send_to(right, seg);
          });
    }
  }
  auto mine = chunk(r);
  std::copy(mine.begin(), mine.end(), recv.begin());
}

/// Ring all-reduce: reduce-scatter followed by all-gather over the same
/// nearly-equal chunking of the buffer (Rabenseifner's algorithm). The
/// `segment_elems` pipelining knob is forwarded to both phases.
template <typename Transport>
void ring_all_reduce(Transport& t, std::span<float> buffer, ReduceOp op,
                     std::size_t segment_elems = 0) {
  const int p = t.size();
  if (p == 1) return;
  const auto n = buffer.size();
  std::vector<std::size_t> counts(static_cast<std::size_t>(p));
  for (int c = 0; c < p; ++c) {
    counts[static_cast<std::size_t>(c)] =
        ::axonn::chunk_size(n, static_cast<std::size_t>(p),
                            static_cast<std::size_t>(c));
  }
  const auto offsets = detail::chunk_offsets(counts);
  const auto r = static_cast<std::size_t>(t.rank());

  std::vector<float> mine(counts[r]);
  ring_reduce_scatterv(t, std::span<const float>(buffer), std::span<float>(mine),
                       counts, op, segment_elems);
  std::copy(mine.begin(), mine.end(), buffer.begin() + offsets[r]);
  ring_all_gatherv(t, std::span<const float>(mine), buffer, counts,
                   segment_elems);
}

/// Binomial-tree broadcast (log2(p) rounds). Broadcast is only used for
/// one-time weight distribution, so tree latency is irrelevant; it is not
/// part of the paper's steady-state communication model.
template <typename Transport>
void tree_broadcast(Transport& t, std::span<float> buffer, int root) {
  const int p = t.size();
  if (p == 1) return;
  AXONN_CHECK(root >= 0 && root < p);
  // Rotate ranks so the root is virtual rank 0.
  const int vrank = (t.rank() - root + p) % p;
  int mask = 1;
  // Find the round in which this rank receives.
  while (mask < p) {
    if (vrank & mask) {
      const int src = (vrank - mask + root) % p;
      t.recv_from(src, buffer);
      break;
    }
    mask <<= 1;
  }
  // Forward to children in decreasing mask order.
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < p) {
      const int dst = (vrank + mask + root) % p;
      t.send_to(dst, buffer);
    }
    mask >>= 1;
  }
}

}  // namespace axonn::comm
