#pragma once

// Model-driven ring segment sizing (DESIGN.md §12).
//
// The chunk-pipelined rings (ring.hpp) split every hop's chunk into segments
// of s elements so a downstream rank can start forwarding while the upstream
// rank is still sending — the same latency/bandwidth trade the paper's Eq. 6
// optimizes when it picks message sizes for the hierarchical collectives.
// With the alpha-beta cost model behind Eqs. 1–7 (alpha seconds of fixed
// per-message overhead, beta seconds per element of bandwidth time), a
// p-rank pipelined ring moving an N-element chunk per hop costs
//
//     T(s) = (h - 1 + N / s) * (alpha + s * beta),    h = p - 1 hops,
//
// the classic pipelining formula: N/s segments fill the pipe, h - 1 more
// stage-times drain it. dT/ds = 0 gives the optimum
//
//     s* = sqrt(N * alpha / ((h - 1) * beta)).
//
// Two regimes fall out that a flat default cannot serve at once:
//   - p == 2 (h == 1): there is no pipeline to fill — every segment adds
//     alpha of pure overhead, so the unsegmented schedule is optimal.
//   - p > 2: s* grows with sqrt(N) and with sqrt(alpha/beta), so small
//     collectives want small segments (hide latency) and large ones want
//     large segments (amortize per-message cost).

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace axonn::comm {

/// Alpha-beta transport constants feeding the segment-size model. Defaults
/// are calibrated to the in-process thread transport (a message costs a
/// mutex/cv round-trip, ~microseconds; payload moves at memcpy speed); the
/// perf layer derives machine-specific values from its DimensionBandwidths
/// (perf/comm_model.hpp).
struct RingSegmentModel {
  double alpha_s = 3e-6;          ///< fixed per-message cost (seconds)
  double beta_s_per_elem = 1e-9;  ///< per-element cost (seconds/element)
  std::size_t min_segment_elems = 256;  ///< floor: below this, overhead wins
};

/// Optimal segment size (elements) for a pipelined ring over `ring_size`
/// ranks whose per-hop chunk holds `chunk_elems` elements. Returns 0 —
/// the unsegmented schedule — when the ring has no pipeline to fill
/// (ring_size <= 2) or the chunk is too small to split profitably. Results
/// of the ring algorithms are bitwise independent of this value; only the
/// message schedule changes.
inline std::size_t model_ring_segment_elems(std::size_t chunk_elems,
                                            int ring_size,
                                            const RingSegmentModel& model = {}) {
  const int hops = ring_size - 1;
  if (hops <= 1 || chunk_elems == 0) return 0;  // no pipeline: unsegmented
  if (model.alpha_s <= 0.0 || model.beta_s_per_elem <= 0.0) return 0;
  const double optimum =
      std::sqrt(static_cast<double>(chunk_elems) * model.alpha_s /
                (static_cast<double>(hops - 1) * model.beta_s_per_elem));
  const auto s = static_cast<std::size_t>(optimum);
  if (s >= chunk_elems) return 0;  // one segment per chunk: don't split
  return std::clamp(s, model.min_segment_elems, chunk_elems);
}

}  // namespace axonn::comm
