#pragma once

// Typed failures for the fault-tolerance layer.
//
// At the scale of the paper's headline runs (up to 32,768 GCDs on Frontier)
// rank crashes and stuck collectives are routine operational events, not
// exceptional ones. Plain axonn::Error is too coarse for a supervisor that
// must decide between "restart from checkpoint" (a rank died), "escalate"
// (the network wedged), and "data is poisoned" (payload corruption): these
// subclasses carry the structured fields a recovery driver needs.

#include <cstdint>
#include <string>
#include <vector>

#include "axonn/base/error.hpp"

namespace axonn::comm {

namespace detail {
/// Renders an optional provenance note (e.g. "chaos seed=11 draw=25") as a
/// bracketed suffix so every fault message stays replayable from text alone.
inline std::string note_suffix(const std::string& note) {
  return note.empty() ? std::string() : " [" + note + "]";
}
}  // namespace detail

/// A rank terminated mid-collective (injected by ChaosComm, or raised by a
/// transport when a peer vanishes). Recoverable by restart-from-checkpoint.
class RankFailure : public Error {
 public:
  RankFailure(int rank, std::uint64_t collective_index,
              const std::string& note = "")
      : Error("rank " + std::to_string(rank) + " failed at collective #" +
              std::to_string(collective_index) + detail::note_suffix(note)),
        rank_(rank),
        collective_index_(collective_index) {}

  /// World rank that failed.
  int rank() const { return rank_; }
  /// Index of the collective (per-rank issue order) at which it failed.
  std::uint64_t collective_index() const { return collective_index_; }

 private:
  int rank_;
  std::uint64_t collective_index_;
};

/// A collective exceeded the watchdog budget: some peer never delivered.
/// Carries enough context to name the stuck communicator, the sequence
/// number of the wedged collective, and the peer being waited on.
class CommTimeoutError : public Error {
 public:
  CommTimeoutError(std::string communicator, std::uint64_t sequence,
                   int peer_world_rank, long long budget_ms,
                   const std::string& note = "")
      : Error("collective watchdog: timeout after " +
              std::to_string(budget_ms) + " ms on communicator \"" +
              communicator + "\" seq " + std::to_string(sequence) +
              " — no message from world rank " +
              std::to_string(peer_world_rank) + detail::note_suffix(note)),
        communicator_(std::move(communicator)),
        sequence_(sequence),
        peer_world_rank_(peer_world_rank) {}

  const std::string& communicator() const { return communicator_; }
  std::uint64_t sequence() const { return sequence_; }
  /// World rank of the peer whose message never arrived.
  int peer_world_rank() const { return peer_world_rank_; }

 private:
  std::string communicator_;
  std::uint64_t sequence_;
  int peer_world_rank_;
};

/// A collective's result buffer disagrees across ranks (detected by CRC
/// cross-check) — bit flips on the wire or a diverged reduction.
class DataCorruptionError : public Error {
 public:
  DataCorruptionError(std::string communicator, std::uint64_t collective_index)
      : DataCorruptionError(std::move(communicator), collective_index,
                            "result checksums differ across ranks") {}

  DataCorruptionError(std::string communicator, std::uint64_t collective_index,
                      const std::string& detail, const std::string& note = "")
      : Error("data corruption detected on communicator \"" + communicator +
              "\" at collective #" + std::to_string(collective_index) + ": " +
              detail + detail::note_suffix(note)),
        communicator_(std::move(communicator)),
        collective_index_(collective_index) {}

  const std::string& communicator() const { return communicator_; }
  std::uint64_t collective_index() const { return collective_index_; }

 private:
  std::string communicator_;
  std::uint64_t collective_index_;
};

// ---------------------------------------------------------------------------
// Elastic membership faults (DESIGN.md §11)
// ---------------------------------------------------------------------------

/// A peer was declared dead (crash announcement or heartbeat timeout) while
/// this rank had a collective in flight at the same epoch. Recoverable
/// in-job: drain the progress stream, then rendezvous in
/// ThreadWorld::reconfigure() for the next epoch.
class RankDeadError : public Error {
 public:
  RankDeadError(std::vector<int> dead_ranks, std::uint64_t epoch,
                const std::string& detail)
      : Error("collective abandoned at epoch " + std::to_string(epoch) +
              ": world rank(s) " + join(dead_ranks) + " declared dead (" +
              detail + ")"),
        dead_ranks_(std::move(dead_ranks)),
        epoch_(epoch) {}

  /// World ranks declared dead but not yet reconfigured around.
  const std::vector<int>& dead_ranks() const { return dead_ranks_; }
  /// Epoch at which the abandoned collective was issued.
  std::uint64_t epoch() const { return epoch_; }

 private:
  static std::string join(const std::vector<int>& ranks) {
    std::string s;
    for (const int r : ranks) {
      if (!s.empty()) s += ",";
      s += std::to_string(r);
    }
    return s.empty() ? "?" : s;
  }

  std::vector<int> dead_ranks_;
  std::uint64_t epoch_;
};

/// A communicator from a pre-failure epoch was used after the world
/// reconfigured: its traffic is fenced (dropped, never delivered), so the
/// operation cannot complete. The holder must rebuild its communicators from
/// ThreadWorld::active_comm() at the current epoch.
class EpochFencedError : public Error {
 public:
  EpochFencedError(std::uint64_t message_epoch, std::uint64_t current_epoch)
      : Error("epoch fence: message from epoch " +
              std::to_string(message_epoch) +
              " dropped — world reconfigured to epoch " +
              std::to_string(current_epoch)),
        message_epoch_(message_epoch),
        current_epoch_(current_epoch) {}

  std::uint64_t message_epoch() const { return message_epoch_; }
  std::uint64_t current_epoch() const { return current_epoch_; }

 private:
  std::uint64_t message_epoch_;
  std::uint64_t current_epoch_;
};

}  // namespace axonn::comm
