#pragma once

// Typed failures for the fault-tolerance layer.
//
// At the scale of the paper's headline runs (up to 32,768 GCDs on Frontier)
// rank crashes and stuck collectives are routine operational events, not
// exceptional ones. Plain axonn::Error is too coarse for a supervisor that
// must decide between "restart from checkpoint" (a rank died), "escalate"
// (the network wedged), and "data is poisoned" (payload corruption): these
// subclasses carry the structured fields a recovery driver needs.

#include <cstdint>
#include <string>

#include "axonn/base/error.hpp"

namespace axonn::comm {

/// A rank terminated mid-collective (injected by ChaosComm, or raised by a
/// transport when a peer vanishes). Recoverable by restart-from-checkpoint.
class RankFailure : public Error {
 public:
  RankFailure(int rank, std::uint64_t collective_index)
      : Error("rank " + std::to_string(rank) + " failed at collective #" +
              std::to_string(collective_index)),
        rank_(rank),
        collective_index_(collective_index) {}

  /// World rank that failed.
  int rank() const { return rank_; }
  /// Index of the collective (per-rank issue order) at which it failed.
  std::uint64_t collective_index() const { return collective_index_; }

 private:
  int rank_;
  std::uint64_t collective_index_;
};

/// A collective exceeded the watchdog budget: some peer never delivered.
/// Carries enough context to name the stuck communicator, the sequence
/// number of the wedged collective, and the peer being waited on.
class CommTimeoutError : public Error {
 public:
  CommTimeoutError(std::string communicator, std::uint64_t sequence,
                   int peer_world_rank, long long budget_ms)
      : Error("collective watchdog: timeout after " +
              std::to_string(budget_ms) + " ms on communicator \"" +
              communicator + "\" seq " + std::to_string(sequence) +
              " — no message from world rank " +
              std::to_string(peer_world_rank)),
        communicator_(std::move(communicator)),
        sequence_(sequence),
        peer_world_rank_(peer_world_rank) {}

  const std::string& communicator() const { return communicator_; }
  std::uint64_t sequence() const { return sequence_; }
  /// World rank of the peer whose message never arrived.
  int peer_world_rank() const { return peer_world_rank_; }

 private:
  std::string communicator_;
  std::uint64_t sequence_;
  int peer_world_rank_;
};

/// A collective's result buffer disagrees across ranks (detected by CRC
/// cross-check) — bit flips on the wire or a diverged reduction.
class DataCorruptionError : public Error {
 public:
  DataCorruptionError(std::string communicator, std::uint64_t collective_index)
      : DataCorruptionError(std::move(communicator), collective_index,
                            "result checksums differ across ranks") {}

  DataCorruptionError(std::string communicator, std::uint64_t collective_index,
                      const std::string& detail)
      : Error("data corruption detected on communicator \"" + communicator +
              "\" at collective #" + std::to_string(collective_index) + ": " +
              detail),
        communicator_(std::move(communicator)),
        collective_index_(collective_index) {}

  const std::string& communicator() const { return communicator_; }
  std::uint64_t collective_index() const { return collective_index_; }

 private:
  std::string communicator_;
  std::uint64_t collective_index_;
};

}  // namespace axonn::comm
