#pragma once

// Size-1 communicator.
//
// Whenever a dimension of the 4D grid has extent 1 (e.g. Gz = 1 turns off
// weight sharding), the corresponding process group contains only this rank
// and every collective degenerates to a local copy. SelfComm implements
// that degenerate case without touching the thread runtime, so serial and
// parallel code paths share one implementation of Algorithm 1.

#include <algorithm>
#include <memory>

#include "axonn/base/error.hpp"
#include "axonn/comm/communicator.hpp"

namespace axonn::comm {

class SelfComm final : public Communicator {
 public:
  SelfComm() = default;

  int rank() const override { return 0; }
  int size() const override { return 1; }

  void all_reduce(std::span<float>, ReduceOp) override {
    bump(&CommStats::all_reduce_calls);
  }

  void all_gather(std::span<const float> send, std::span<float> recv) override {
    AXONN_CHECK(recv.size() == send.size());
    std::copy(send.begin(), send.end(), recv.begin());
    bump(&CommStats::all_gather_calls);
  }

  void all_gatherv(std::span<const float> send, std::span<float> recv,
                   std::span<const std::size_t> recv_counts) override {
    AXONN_CHECK(recv_counts.size() == 1 && recv_counts[0] == send.size());
    all_gather(send, recv);
  }

  void reduce_scatter(std::span<const float> send, std::span<float> recv,
                      ReduceOp) override {
    AXONN_CHECK(recv.size() == send.size());
    std::copy(send.begin(), send.end(), recv.begin());
    bump(&CommStats::reduce_scatter_calls);
  }

  void reduce_scatterv(std::span<const float> send, std::span<float> recv,
                       std::span<const std::size_t> counts, ReduceOp op) override {
    AXONN_CHECK(counts.size() == 1 && counts[0] == send.size());
    reduce_scatter(send, recv, op);
  }

  void broadcast(std::span<float>, int root) override {
    AXONN_CHECK(root == 0);
    bump(&CommStats::broadcast_calls);
  }

  void barrier() override {}

  // Nonblocking variants run synchronously (there is nobody to overlap
  // with); the priority lane is irrelevant and ignored.
  Request iall_reduce(std::span<float> buffer, ReduceOp op,
                      CommPriority = CommPriority::kNormal) override {
    all_reduce(buffer, op);
    return completed_request();
  }
  Request iall_gather(std::span<const float> send, std::span<float> recv,
                      CommPriority = CommPriority::kNormal) override {
    all_gather(send, recv);
    return completed_request();
  }
  Request iall_gatherv(std::span<const float> send, std::span<float> recv,
                       std::span<const std::size_t> recv_counts,
                       CommPriority = CommPriority::kNormal) override {
    all_gatherv(send, recv, recv_counts);
    return completed_request();
  }
  Request ireduce_scatter(std::span<const float> send, std::span<float> recv,
                          ReduceOp op,
                          CommPriority = CommPriority::kNormal) override {
    reduce_scatter(send, recv, op);
    return completed_request();
  }
  Request ireduce_scatterv(std::span<const float> send, std::span<float> recv,
                           std::span<const std::size_t> counts, ReduceOp op,
                           CommPriority = CommPriority::kNormal) override {
    reduce_scatterv(send, recv, counts, op);
    return completed_request();
  }
  Request run_on_stream(std::function<void()> fn,
                        CommPriority = CommPriority::kNormal) override {
    fn();
    return completed_request();
  }

  std::unique_ptr<Communicator> split(int color, int) override {
    if (color < 0) return nullptr;
    return std::make_unique<SelfComm>();
  }

  const CommStats& stats() const override { return stats_; }
  void reset_stats() override { stats_ = CommStats{}; }
  std::string name() const override { return "self"; }

 private:
  static Request completed_request() {
    std::promise<void> promise;
    promise.set_value();
    return Request(promise.get_future().share());
  }

  void bump(std::uint64_t CommStats::*counter) { stats_.*counter += 1; }

  CommStats stats_;
};

}  // namespace axonn::comm
