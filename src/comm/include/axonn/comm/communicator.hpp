#pragma once

// Communicator abstraction (MPI/NCCL-flavoured).
//
// AxoNN issues five kinds of collectives (all-reduce, all-gather,
// reduce-scatter, broadcast, barrier) over four families of process groups
// (X/Y/Z tensor-parallel and data-parallel). This interface is the seam
// between the 4D algorithm and the transport: the in-process ThreadComm
// executes real ring algorithms between thread ranks; SelfComm handles the
// degenerate size-1 groups that appear whenever a grid dimension is 1.
//
// Semantics follow MPI: collectives must be called by every rank of the
// communicator, in the same order. Nonblocking variants return a Request;
// the operation is complete only after wait(). Buffers passed to nonblocking
// calls must stay alive and untouched until completion — exactly the NCCL
// contract the paper's overlap optimizations (OAR/ORS/OAG) are built on.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <span>
#include <string>

#include "axonn/base/metrics.hpp"

namespace axonn::comm {

enum class ReduceOp { kSum, kMax, kMin };

/// Priority class of a nonblocking collective — which progress lane runs it.
///
/// The ThreadComm runtime drains each priority class on its own dedicated
/// FIFO worker (the in-process analogue of issuing to separate CUDA streams
/// with stream priorities), so a critical-path collective is never serialized
/// behind a bulk transfer that happens to be ahead of it in a single queue.
/// Lane assignment must be identical on every member rank for any given
/// collective (it is, when it is fixed per call site): within one lane the
/// issue order is cross-rank consistent, which keeps the per-lane FIFO
/// deadlock-free by the same argument as a single progress stream.
///   kHigh   — the consumer blocks on the result almost immediately
///             (e.g. the backward dI all-reduce, OAR: the previous layer's
///             backward needs it next).
///   kNormal — prefetches consumed a layer ahead (e.g. the OAG weight
///             all-gather and its pre-pack).
///   kBulk   — results not needed until the end of the step (e.g. the dW
///             reduce-scatter, ORS: consumed at finish_gradients()).
enum class CommPriority { kHigh = 0, kNormal = 1, kBulk = 2 };
inline constexpr int kCommPriorityLanes = 3;

/// Byte/operation counters, accumulated per communicator. `wire_bytes` counts
/// bytes actually moved between ranks (what the network sees, and what the
/// paper's Eqs. 1–5 predict); `calls` counts collective invocations.
struct CommStats {
  std::uint64_t wire_bytes_sent = 0;
  std::uint64_t all_reduce_calls = 0;
  std::uint64_t all_gather_calls = 0;
  std::uint64_t reduce_scatter_calls = 0;
  std::uint64_t broadcast_calls = 0;
  std::uint64_t point_to_point_calls = 0;
  // Ring-CRC integrity accounting, kept out of wire_bytes_sent so the Eq. 1–5
  // CommModelChecker still sees exactly the payload bytes the model predicts.
  std::uint64_t crc_bytes_sent = 0;   ///< CRC stamps + retransmitted frames
  std::uint64_t crc_checks = 0;       ///< messages CRC-verified on receive
  std::uint64_t crc_retransmits = 0;  ///< NACK-triggered resends (this rank)

  CommStats& operator+=(const CommStats& other) {
    wire_bytes_sent += other.wire_bytes_sent;
    all_reduce_calls += other.all_reduce_calls;
    all_gather_calls += other.all_gather_calls;
    reduce_scatter_calls += other.reduce_scatter_calls;
    broadcast_calls += other.broadcast_calls;
    point_to_point_calls += other.point_to_point_calls;
    crc_bytes_sent += other.crc_bytes_sent;
    crc_checks += other.crc_checks;
    crc_retransmits += other.crc_retransmits;
    return *this;
  }
};

/// Completion handle for a nonblocking collective.
class Request {
 public:
  Request() = default;
  explicit Request(std::shared_future<void> done) : done_(std::move(done)) {}

  /// Blocks until the operation completes; rethrows any transport error.
  /// The blocked time is exposed communication, so it feeds the per-thread
  /// stall clock (obs::metrics::StallTimer; ~free when metrics are off).
  void wait() {
    if (!done_.valid()) return;
    obs::metrics::StallTimer stall;
    done_.get();
  }

  /// True if the operation has completed (does not rethrow).
  bool test() const {
    return !done_.valid() ||
           done_.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
  }

  bool valid() const { return done_.valid(); }

 private:
  std::shared_future<void> done_;
};

class Communicator {
 public:
  virtual ~Communicator() = default;

  virtual int rank() const = 0;
  virtual int size() const = 0;

  /// In-place sum/max/min across all ranks; every rank ends with the result.
  virtual void all_reduce(std::span<float> buffer, ReduceOp op) = 0;

  /// Gathers equal-size contributions: recv.size() == size() * send.size(),
  /// rank r's data lands at offset r * send.size().
  virtual void all_gather(std::span<const float> send,
                          std::span<float> recv) = 0;

  /// Variable-count gather: recv_counts[r] elements come from rank r, packed
  /// contiguously in rank order. send.size() must equal recv_counts[rank()].
  virtual void all_gatherv(std::span<const float> send, std::span<float> recv,
                           std::span<const std::size_t> recv_counts) = 0;

  /// Element-wise reduction of send across ranks, with rank r keeping the
  /// r-th equal chunk: send.size() == size() * recv.size().
  virtual void reduce_scatter(std::span<const float> send,
                              std::span<float> recv, ReduceOp op) = 0;

  /// Variable-count reduce-scatter; chunk r has counts[r] elements and
  /// sum(counts) == send.size(); recv.size() == counts[rank()].
  virtual void reduce_scatterv(std::span<const float> send,
                               std::span<float> recv,
                               std::span<const std::size_t> counts,
                               ReduceOp op) = 0;

  /// Root's buffer is copied to every rank.
  virtual void broadcast(std::span<float> buffer, int root) = 0;

  virtual void barrier() = 0;

  /// Nonblocking variants. Default implementations in concrete classes may
  /// run on a per-rank progress thread (the "communication stream");
  /// `priority` selects the progress lane (see CommPriority) and must be the
  /// same on every member rank for a given collective.
  virtual Request iall_reduce(std::span<float> buffer, ReduceOp op,
                              CommPriority priority = CommPriority::kNormal) = 0;
  virtual Request iall_gather(std::span<const float> send, std::span<float> recv,
                              CommPriority priority = CommPriority::kNormal) = 0;
  virtual Request iall_gatherv(std::span<const float> send,
                               std::span<float> recv,
                               std::span<const std::size_t> recv_counts,
                               CommPriority priority = CommPriority::kNormal) = 0;
  virtual Request ireduce_scatter(std::span<const float> send,
                                  std::span<float> recv, ReduceOp op,
                                  CommPriority priority = CommPriority::kNormal) = 0;
  virtual Request ireduce_scatterv(std::span<const float> send,
                                   std::span<float> recv,
                                   std::span<const std::size_t> counts,
                                   ReduceOp op,
                                   CommPriority priority = CommPriority::kNormal) = 0;

  /// Runs `fn` on this rank's progress lane for `priority`, FIFO-ordered
  /// after collectives already issued to the same lane — the in-process
  /// analogue of cudaLaunchHostFunc on a comm stream. Purely rank-local (no
  /// peer participates); the default runs inline on the calling thread,
  /// which is correct wherever there is no progress thread to defer to.
  virtual Request run_on_stream(std::function<void()> fn,
                                CommPriority priority = CommPriority::kNormal) {
    (void)priority;
    fn();
    return Request{};
  }

  /// Splits into disjoint sub-communicators by colour; ranks with the same
  /// colour form a group, ordered by key (ties broken by old rank). Must be
  /// called by all ranks. The returned communicator is owned by the caller
  /// rank (thread) only.
  virtual std::unique_ptr<Communicator> split(int color, int key) = 0;

  /// Cumulative traffic counters for this communicator on this rank.
  virtual const CommStats& stats() const = 0;
  virtual void reset_stats() = 0;

  /// Human-readable name for diagnostics ("world", "tp-x", ...).
  virtual std::string name() const { return "comm"; }
};

}  // namespace axonn::comm
