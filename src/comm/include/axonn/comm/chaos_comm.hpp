#pragma once

// Fault-injection decorator for any Communicator.
//
// At 32,768-GCD scale the paper's headline runs live in a regime where rank
// crashes, stragglers and flipped bits are operational events. ChaosComm
// makes those events reproducible at laptop scale: it wraps a communicator
// and, driven by a seeded deterministic schedule, injects
//   - added latency on a chosen rank before each collective (straggler),
//   - payload corruption (a single bit flip in the result buffer), and
//   - a hard rank crash at collective N (throwing RankFailure),
// so the watchdog, abort propagation, and checkpoint/restart layers can be
// exercised by ordinary unit tests. The same seed always produces the same
// fault sequence; every injected fault is recorded in fault_log().
//
// split() returns a ChaosComm-wrapped sub-communicator sharing this rank's
// schedule state, so the per-rank collective counter spans every process
// group the rank communicates over (as a real failure would).
//
// Corruption and result verification apply to blocking collectives; the
// nonblocking variants inject latency/crash at issue time and forward to the
// inner communicator untouched (hooking their completion would require a
// second progress thread for no extra test coverage).

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "axonn/comm/communicator.hpp"
#include "axonn/comm/fault.hpp"

namespace axonn::comm {

/// Transport-level (per-segment) chaos. The PR 3 pipelined rings move each
/// collective as many small hop messages; faults that only strike finished
/// result buffers (corrupt_probability below) cannot exercise the segment
/// CRC/retransmit protection, so these are applied *inside* the transport,
/// per wire message, via ThreadWorld::set_wire_fault_hook. Only effective
/// when the wrapped communicator is a ThreadComm (logged otherwise). All
/// draws are pure functions of (seed, message coordinates, attempt): the
/// same seed gives the same fault sequence, and a retransmission of the same
/// message redraws independently (so a healing ring escapes a probabilistic
/// fault), while the deterministic targeted flip fires on attempt 0 only.
struct WireChaosConfig {
  /// Per-message probability of flipping one schedule-chosen payload bit.
  double corrupt_probability = 0.0;

  /// Per-message probability of sleeping `delay` before delivery (per-hop
  /// straggler emulation, below the collective API).
  double delay_probability = 0.0;
  std::chrono::microseconds delay{0};

  /// Deterministic single-bit flip targeting exactly one message: collective
  /// sequence number `target_seq` on communicator id `target_comm_id` (0 =
  /// the world communicator), the `target_msg_index`-th message on the edge
  /// from `target_src_world_rank` (-1 = every matching sender edge). Flips
  /// `target_bit` of payload element 0 on the first transmission only.
  /// -1 disables.
  long long target_seq = -1;
  std::uint64_t target_comm_id = 0;
  std::uint64_t target_msg_index = 0;
  int target_src_world_rank = -1;
  int target_bit = 30;

  bool active() const {
    return corrupt_probability > 0.0 || delay_probability > 0.0 ||
           target_seq >= 0;
  }
};

struct ChaosConfig {
  /// Seed for the deterministic fault schedule (corruption draws).
  std::uint64_t seed = 0;

  /// World rank that crashes (throws RankFailure) when its per-rank
  /// collective counter reaches `crash_at_collective`. -1 disables.
  int crash_rank = -1;
  std::uint64_t crash_at_collective = 0;

  /// World rank that *hangs* (stops issuing collectives and stops making
  /// progress, without dying) when its per-rank collective counter reaches
  /// `hang_at_collective`. Unlike a crash there is no exception and no abort:
  /// the rank just goes silent — the failure mode heartbeat detection exists
  /// for. The hung rank spins until the world aborts or (in an elastic
  /// world) a peer declares it dead, then unwinds with RankFailure so its
  /// thread exits like a crashed rank's. -1 disables.
  int hang_rank = -1;
  std::uint64_t hang_at_collective = 0;

  /// World rank that sleeps `slow_delay` before every collective (straggler
  /// emulation for watchdog tests). -1 disables.
  int slow_rank = -1;
  std::chrono::microseconds slow_delay{0};

  /// Per-collective probability (decided by hash(seed, rank, op)) of
  /// flipping one deterministic bit in the collective's result buffer.
  double corrupt_probability = 0.0;

  /// One-shot targeted *memory* corruption: at this rank's first eligible
  /// collective (blocking, non-empty result) at or after collective
  /// #corrupt_once_collective, flip `corrupt_once_bit` of element 0 of the
  /// result buffer. Post-collective, so it models corruption after delivery
  /// (bad HBM, ALU writeback) that no transport CRC can see — the fault class
  /// the training sentinel exists for. Bit 30 turns an ordinary value into
  /// an astronomically wrong one, which makes detection deterministic for
  /// threshold-based checks. -1 disables.
  int corrupt_once_rank = -1;
  std::uint64_t corrupt_once_collective = 0;
  int corrupt_once_bit = 30;

  /// Transport-level per-segment faults (see WireChaosConfig).
  WireChaosConfig wire;

  /// Cross-check a CRC32 of result buffers that should be identical on all
  /// ranks (all_reduce / broadcast / all_gather) over the inner
  /// communicator; on mismatch every rank throws DataCorruptionError.
  bool verify_replicated_results = false;
};

struct FaultEvent {
  enum class Kind { kDelay, kCorruption, kCrash, kHang };
  Kind kind;
  std::uint64_t collective_index;
  std::string detail;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

class ChaosComm final : public Communicator {
 public:
  /// Wraps `inner` (not owned; must outlive this object) for the rank that
  /// owns it. The rank identity used by crash/slow/corruption schedules is
  /// inner.rank() at wrap time — wrap the *world* communicator.
  ChaosComm(Communicator& inner, const ChaosConfig& config);
  ~ChaosComm() override = default;

  int rank() const override { return inner_->rank(); }
  int size() const override { return inner_->size(); }

  void all_reduce(std::span<float> buffer, ReduceOp op) override;
  void all_gather(std::span<const float> send, std::span<float> recv) override;
  void all_gatherv(std::span<const float> send, std::span<float> recv,
                   std::span<const std::size_t> recv_counts) override;
  void reduce_scatter(std::span<const float> send, std::span<float> recv,
                      ReduceOp op) override;
  void reduce_scatterv(std::span<const float> send, std::span<float> recv,
                       std::span<const std::size_t> counts,
                       ReduceOp op) override;
  void broadcast(std::span<float> buffer, int root) override;
  void barrier() override;

  Request iall_reduce(std::span<float> buffer, ReduceOp op,
                      CommPriority priority = CommPriority::kNormal) override;
  Request iall_gather(std::span<const float> send, std::span<float> recv,
                      CommPriority priority = CommPriority::kNormal) override;
  Request iall_gatherv(std::span<const float> send, std::span<float> recv,
                       std::span<const std::size_t> recv_counts,
                       CommPriority priority = CommPriority::kNormal) override;
  Request ireduce_scatter(std::span<const float> send, std::span<float> recv,
                          ReduceOp op,
                          CommPriority priority = CommPriority::kNormal) override;
  Request ireduce_scatterv(std::span<const float> send, std::span<float> recv,
                           std::span<const std::size_t> counts, ReduceOp op,
                           CommPriority priority = CommPriority::kNormal) override;
  Request run_on_stream(std::function<void()> fn,
                        CommPriority priority = CommPriority::kNormal) override;

  std::unique_ptr<Communicator> split(int color, int key) override;

  const CommStats& stats() const override { return inner_->stats(); }
  void reset_stats() override { inner_->reset_stats(); }
  std::string name() const override { return inner_->name(); }

  /// Every fault injected so far on this rank, across this wrapper and all
  /// sub-communicators split from it, in injection order.
  const std::vector<FaultEvent>& fault_log() const;

  /// Collectives issued so far by this rank through chaos wrappers.
  std::uint64_t collectives_issued() const;

 private:
  // Per-rank schedule state, shared with split() children.
  struct State {
    ChaosConfig config;
    int world_rank;
    std::uint64_t next_collective = 0;
    bool corrupt_once_fired = false;
    std::vector<FaultEvent> log;
  };

  ChaosComm(std::unique_ptr<Communicator> owned, std::shared_ptr<State> state);

  /// Applies issue-time faults (latency, crash) and claims the op index.
  std::uint64_t begin_collective();
  void maybe_corrupt(std::uint64_t op, std::span<float> result);
  void verify_replicated(std::uint64_t op, std::span<const float> result);
  /// Installs the WireChaosConfig schedule on the inner ThreadComm's world
  /// (idempotent — every rank installs the same deterministic function).
  void maybe_install_wire_chaos();

  Communicator* inner_;
  std::unique_ptr<Communicator> owned_;  // set for split() children
  std::shared_ptr<State> state_;
};

}  // namespace axonn::comm
