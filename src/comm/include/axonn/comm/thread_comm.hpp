#pragma once

// In-process message-passing runtime: one OS thread per rank.
//
// ThreadWorld owns the shared state (mailboxes, the per-rank progress lanes
// that play the role of prioritized GPU communication streams, the abort
// flag). ThreadComm is the per-rank handle implementing the Communicator
// interface with the real ring algorithms from ring.hpp.
//
// Nonblocking collectives are executed on one of the rank's progress lanes
// (selected by CommPriority) so that the issuing thread can keep computing —
// the same concurrency structure the paper's OAR/ORS/OAG overlap
// optimizations rely on with NCCL/RCCL streams, with the lane split playing
// the role of stream priorities: a critical-path dI all-reduce never queues
// behind a bulk weight-gradient reduce-scatter.
// Collectives on one communicator must be issued in the same order by every
// member rank (the MPI/NCCL ordering contract); distinct communicators are
// independent.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "axonn/base/arena.hpp"
#include "axonn/comm/communicator.hpp"
#include "axonn/comm/segment_model.hpp"
#include "axonn/integrity/integrity.hpp"

namespace axonn::comm {

class ThreadComm;

/// Wire frame storage (ring segments, CRC-framed messages, retained
/// retransmission copies): routed through axonn::mem so in-flight comm bytes
/// show up under the comm_buffers tag. Allocation sites wrap themselves in
/// ArenaScope(kCommBuffers).
using FrameBuffer = mem::TrackedVector<float>;

/// Default ring pipelining granularity: 2048 floats = 8 KiB per segment,
/// small enough to put several segments in flight per chunk at the message
/// sizes the training path produces, large enough that per-message overhead
/// stays negligible.
inline constexpr std::size_t kDefaultRingSegmentElems = 2048;

/// Tunables for a ThreadWorld.
struct WorldOptions {
  /// Per-receive watchdog budget. A blocked receive (including one running
  /// inside a progress-stream task) that waits longer than this for a peer's
  /// message throws CommTimeoutError naming the stuck communicator, sequence
  /// number and peer. Zero disables the watchdog (wait forever).
  std::chrono::milliseconds collective_timeout{0};
  /// Chunk-pipelining segment size (elements) for the ring collectives; 0
  /// runs the unsegmented algorithms (see ring.hpp). Results are bitwise
  /// independent of this value. Overridable by the AXONN_RING_SEGMENT
  /// environment variable (an element count, or "auto" to enable
  /// ring_segment_auto; takes precedence when set).
  std::size_t ring_segment_elems = kDefaultRingSegmentElems;
  /// Model-driven segment sizing (DESIGN.md §12): size each ring collective's
  /// segments from the Eq. 1–7 alpha-beta model (segment_model.hpp) — per
  /// collective, from its chunk size and ring size — instead of the flat
  /// ring_segment_elems. Two-rank rings run unsegmented (no pipeline to
  /// fill). Off by default: the flat value keeps message counts stable for
  /// tests that pin exact wire traffic.
  bool ring_segment_auto = false;
  /// Transport constants for ring_segment_auto.
  RingSegmentModel ring_segment_model;
  /// Self-healing ring transport (see DESIGN.md §9). kDetect stamps every
  /// ring message (segment) with a crc32 word; a receiver-side mismatch
  /// throws DataCorruptionError. kHeal additionally NACKs: the sender keeps
  /// a clean retained copy of each in-flight message and retransmits it on
  /// demand (up to crc_max_retries times) before the receiver escalates —
  /// results are bitwise identical to a fault-free run. Resolved against the
  /// AXONN_INTEGRITY environment override at world construction.
  integrity::IntegrityMode ring_crc = integrity::IntegrityMode::kOff;
  /// kHeal retry budget per message before DataCorruptionError.
  int crc_max_retries = 3;

  // --- Elastic membership (DESIGN.md §11) ---------------------------------

  /// Enables the membership/epoch layer: declare_dead(), reconfigure(),
  /// active_comm(), epoch fencing, and heartbeat-based hang detection. Off
  /// (the default) the world behaves exactly as before this layer existed:
  /// any failure aborts every rank.
  bool elastic = false;
  /// Trailing ranks held out of the initial active set as hot spares. The
  /// initial active communicator spans world ranks [0, size - spare_ranks);
  /// spares park in park_for_assignment() until a reconfiguration swaps them
  /// into a dead rank's slot.
  int spare_ranks = 0;
  /// Peer-heartbeat staleness budget for hang detection. While a receive
  /// waits on a peer's message, a peer whose progress heartbeat is staler
  /// than this is declared dead (the receive then throws RankDeadError).
  /// Must comfortably exceed the longest compute gap between a rank's
  /// collectives, or healthy-but-slow ranks get fenced off as hung. 0
  /// disables hang detection (crashes still announce via declare_dead).
  std::chrono::milliseconds heartbeat_timeout{0};
  /// On failure without a spare available: true shrinks the active set to
  /// the survivors, false aborts the world (escalate to a full restart).
  bool allow_shrink = true;
  /// Reconfiguration refuses to shrink below this many active ranks (the
  /// world aborts instead).
  int min_active = 1;

  /// Intra-rank GEMM worker-lane budget installed process-wide at world
  /// construction (set_gemm_threads() in tensor/gemm_dispatch.hpp):
  ///   0   leave the ambient budget (AXONN_GEMM_THREADS or 1) in effect;
  ///  -1   auto: max(1, (hardware_concurrency - 1) / size) — ranks are
  ///       threads here, and the reserved core keeps the per-lane
  ///       comm-progress workers from queueing behind a fully subscribed
  ///       GEMM (never oversubscribe, DESIGN.md §13);
  ///  >0   exact lanes per rank.
  /// Results are bitwise identical at any value — it is a pure perf knob.
  int gemm_threads = 0;
};

/// Shared state for a group of thread ranks. Construct one, then either use
/// run_ranks() (preferred) or call world_comm(rank) from each rank thread.
class ThreadWorld {
 public:
  explicit ThreadWorld(int size, WorldOptions options = {});
  ~ThreadWorld();

  ThreadWorld(const ThreadWorld&) = delete;
  ThreadWorld& operator=(const ThreadWorld&) = delete;

  int size() const { return size_; }

  /// The world communicator handle for `rank`. Each rank thread must use its
  /// own handle; handles are not thread-safe across rank threads.
  std::unique_ptr<ThreadComm> world_comm(int rank);

  /// Marks the world as aborted (e.g. a rank threw). All pending and future
  /// receives wake up and throw, and queued progress-stream tasks fail their
  /// futures promptly, preventing deadlock of surviving ranks. Only the first
  /// reason is stored; subsequent reasons are logged (warn level) so
  /// multi-rank failure cascades stay diagnosable.
  void abort(const std::string& reason);

  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

  /// Adjusts the receive watchdog budget (see WorldOptions). Thread-safe.
  void set_collective_timeout(std::chrono::milliseconds budget) {
    timeout_ms_.store(budget.count(), std::memory_order_relaxed);
  }

  /// The ring segment size in effect (see WorldOptions::ring_segment_elems).
  std::size_t ring_segment_elems() const {
    return ring_segment_elems_.load(std::memory_order_relaxed);
  }

  /// Model-driven segment sizing in effect (WorldOptions::ring_segment_auto
  /// or AXONN_RING_SEGMENT=auto).
  bool ring_segment_auto() const {
    return ring_segment_auto_.load(std::memory_order_relaxed);
  }
  /// Same contract as set_ring_segment_elems: every member rank must observe
  /// the same value for any given collective.
  void set_ring_segment_auto(bool ring_auto) {
    ring_segment_auto_.store(ring_auto, std::memory_order_relaxed);
  }
  /// Transport constants for the auto mode (fixed at construction).
  const RingSegmentModel& ring_segment_model() const {
    return segment_model_;
  }

  /// The CRC protection level in effect (WorldOptions::ring_crc after the
  /// AXONN_INTEGRITY override). Fixed for the world's lifetime: every rank
  /// must frame messages identically.
  integrity::IntegrityMode ring_crc_mode() const { return ring_crc_mode_; }

  /// Identifies one wire transmission for the fault hook: which message (the
  /// msg_index-th from src to dest within collective `seq` on `comm_id`) and
  /// which attempt (0 = original send, n = n-th retransmit).
  struct WireContext {
    std::uint64_t comm_id = 0;
    std::uint64_t seq = 0;
    int src_world_rank = -1;
    int dest_world_rank = -1;
    std::uint64_t msg_index = 0;
    int attempt = 0;
  };

  /// Transit-fault injection seam: called (when installed) on every wire
  /// message — each pipelined ring segment is its own message — with a
  /// mutable view of the payload, *after* CRC stamping, so mutations model
  /// corruption on the wire that the receiver's CRC check can see. Runs on
  /// the sending thread (retransmits: on the receiving thread); must be
  /// thread-safe. ChaosComm installs its wire schedule here.
  using WireFaultHook = std::function<void(const WireContext&,
                                           std::span<float>)>;

  /// Installs (or, with nullptr, clears) the hook. Thread-safe; installing
  /// the same deterministic schedule from every rank is idempotent.
  void set_wire_fault_hook(WireFaultHook hook);

  /// Messages currently retained for possible retransmission (tests assert
  /// this drains back to zero once receives verify).
  std::size_t retained_messages() const;

  // --- Elastic membership (DESIGN.md §11) ---------------------------------
  //
  // Only meaningful when WorldOptions::elastic is set. The membership state
  // machine: ranks are kActive (hold a slot in the active communicator),
  // kSpare (parked, waiting for assignment), or kDead. A failure — a crash
  // announcing itself via declare_dead(), or a hang detected by a peer's
  // heartbeat check — marks the rank dead and poisons every in-flight
  // collective at the current epoch (survivors throw RankDeadError). The
  // survivors drain their progress streams and rendezvous in reconfigure(),
  // whose last arriver performs the transition: purge (fence) every mailbox
  // message from the dead epoch, bump the epoch, and fill dead slots with
  // spares (or shrink the active set). Traffic from the old epoch that is
  // still in flight is dropped at delivery time — the epoch fence.

  bool elastic() const { return elastic_; }
  /// Current membership epoch (0 until the first reconfiguration).
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  /// Messages dropped by the epoch fence (purged at reconfiguration or
  /// refused at delivery) — the counter the fencing test asserts.
  std::uint64_t fenced_messages() const {
    return fenced_messages_.load(std::memory_order_relaxed);
  }

  enum class RankState { kActive, kSpare, kDead };
  RankState rank_state(int world_rank) const;
  bool is_dead(int world_rank) const {
    return rank_state(world_rank) == RankState::kDead;
  }
  /// Dead ranks not yet reconfigured around (empty between recoveries).
  std::vector<int> pending_dead_ranks() const;

  /// Marks `world_rank` dead (idempotent; elastic worlds only). This is the
  /// failure broadcast: it wakes every blocked receive, progress worker and
  /// membership waiter, so survivors fail their in-flight collectives with
  /// RankDeadError and converge on reconfigure(). Never call while holding a
  /// mailbox lock. A crashing rank calls this on itself while unwinding;
  /// hang detection calls it from the waiting peer.
  void declare_dead(int world_rank, const std::string& reason);

  /// Stamps `world_rank`'s liveness clock. Piggybacked on the transport
  /// (send/recv/collective issue) and progress-task pickup, so any rank
  /// making communication progress beats automatically.
  void heartbeat(int world_rank);

  /// steady_clock timestamp (ns) of the first declare_dead of the current
  /// failure, or 0 — the MTTR measurement anchor.
  std::int64_t last_failure_ns() const {
    return last_failure_ns_.load(std::memory_order_relaxed);
  }

  /// The outcome of one reconfiguration, identical on every participant.
  struct ReconfigurePlan {
    std::uint64_t epoch = 0;        ///< the new epoch
    std::vector<int> active;        ///< slot -> world rank, post-transition
    std::vector<int> old_active;    ///< slot -> world rank, pre-transition
    std::vector<int> dead_slots;    ///< old slots whose occupant died
    std::vector<int> swapped_in;    ///< spare world ranks assigned, per dead slot
    bool shrunk = false;            ///< true: dead slots removed, no spares left
  };

  /// Survivor rendezvous. Every live active rank calls this after draining
  /// its progress stream; the last arriver performs the epoch transition
  /// (fence purge, epoch bump, spare assignment or shrink) and wakes
  /// everyone, including assigned spares parked in park_for_assignment().
  /// Throws if the world aborted, or if this rank was itself declared dead.
  ReconfigurePlan reconfigure(int my_world_rank);

  /// Spare parking: blocks until a reconfiguration assigns this rank a slot
  /// (returns the plan), or the run finished / this rank was declared dead
  /// (returns nullopt). Throws if the world aborted.
  std::optional<ReconfigurePlan> park_for_assignment(int my_world_rank);

  /// Marks the run finished (idempotent); wakes parked spares so they
  /// return nullopt and unwind.
  void finish();

  /// This rank's handle on the current active communicator: comm rank ==
  /// slot index, fresh communicator id and epoch stamp per reconfiguration
  /// (name "active.e<epoch>"). The caller must currently occupy a slot.
  std::unique_ptr<ThreadComm> active_comm(int my_world_rank);

  /// Blocks until every task queued on any of `my_world_rank`'s progress
  /// lanes has run. Call before destroying communicators whose collectives
  /// may still be queued (the tasks fail fast once a failure is pending, but
  /// they must finish before the objects they reference unwind).
  void drain_progress(int my_world_rank);

  /// Provenance note appended to watchdog/corruption error messages (e.g.
  /// "chaos seed=11" installed by ChaosComm) so injected-fault runs are
  /// replayable from error text. Thread-safe; last writer wins.
  void set_fault_note(const std::string& note);
  std::string fault_note() const;
  /// Adjusts the ring segment size. Thread-safe, but every member rank of a
  /// communicator must observe the same value for any given collective —
  /// change it only between collectives (e.g. from the driver thread while
  /// ranks are synchronized).
  void set_ring_segment_elems(std::size_t elems) {
    ring_segment_elems_.store(elems, std::memory_order_relaxed);
  }

 private:
  friend class ThreadComm;

  /// Context a receive carries so watchdog/abort errors can name the stuck
  /// collective instead of reporting a bare deadlock.
  struct RecvContext {
    const std::string* comm_name;
    std::uint64_t seq;
    int src_world_rank;
  };

  struct MessageKey {
    std::uint64_t comm_id;
    int src_world_rank;
    std::uint64_t tag;
    /// Membership epoch the sending communicator was built at (always 0 in
    /// non-elastic worlds). The epoch fence drops messages whose epoch is
    /// older than the world's current epoch.
    std::uint64_t epoch = 0;
    friend auto operator<=>(const MessageKey&, const MessageKey&) = default;
  };

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::map<MessageKey, std::deque<FrameBuffer>> queues;
  };

  // One progress lane: a worker thread draining FIFO tasks. Each rank owns
  // kCommPriorityLanes of these (one per CommPriority), so a critical-path
  // collective never queues behind a bulk transfer — the in-process analogue
  // of prioritized GPU comm streams. Workers are spawned lazily on the first
  // task posted to the lane (most ranks only ever use kNormal), and FIFO
  // order within a lane is cross-rank consistent whenever lane assignment is
  // fixed per call site, which keeps each lane deadlock-free by the same
  // argument as the original single stream.
  struct ProgressStream {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<std::function<void()>> tasks;
    std::thread worker;
    bool started = false;   ///< worker spawned (guarded by mutex)
    bool stopping = false;
  };

  void deliver(int dest_world_rank, const MessageKey& key,
               FrameBuffer payload);
  FrameBuffer collect(int my_world_rank, const MessageKey& key,
                      const RecvContext& context);

  /// One in-flight CRC-framed message, addressable for NACK/retransmit.
  struct RetainedKey {
    int dest_world_rank;
    MessageKey key;
    std::uint64_t msg_index;
    friend auto operator<=>(const RetainedKey&, const RetainedKey&) = default;
  };

  /// Stores the clean framed copy the sender keeps while kHeal is active.
  void retain(const RetainedKey& rkey, FrameBuffer frame);
  /// Drops the retained copy — the receiver's CRC verified, i.e. the ACK.
  void release_retained(const RetainedKey& rkey);
  /// Synchronous NACK: returns a fresh copy of the retained frame with the
  /// wire-fault hook re-applied under `context` (attempt >= 1, so one-shot
  /// deterministic faults do not re-fire). Called from the *receiving*
  /// thread — the in-process analogue of a NACK packet plus the sender's
  /// retransmission, delivered directly so later segments queued in the
  /// mailbox keep their order.
  FrameBuffer retransmit(const RetainedKey& rkey,
                         const WireContext& context);

  /// Applies the installed wire-fault hook (if any) to `payload`.
  void apply_wire_hook(const WireContext& context, std::span<float> payload);

  [[noreturn]] void throw_aborted();
  void throw_if_aborted() {
    if (aborted()) throw_aborted();
  }

  /// Returns a stable id for the subcommunicator created by the
  /// (parent, generation, color) split — every member rank gets the same id.
  std::uint64_t subcomm_id(std::uint64_t parent_id, std::uint64_t generation,
                           int color);

  void enqueue_task(int world_rank, CommPriority priority,
                    std::function<void()> task);
  void progress_loop(int rank, ProgressStream& stream);
  ProgressStream& lane(int world_rank, CommPriority priority) {
    return *streams_[static_cast<std::size_t>(world_rank) * kCommPriorityLanes +
                     static_cast<std::size_t>(priority)];
  }

  int size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  // rank-major, lane-minor: streams_[rank * kCommPriorityLanes + priority].
  std::vector<std::unique_ptr<ProgressStream>> streams_;

  std::mutex registry_mutex_;
  std::map<std::tuple<std::uint64_t, std::uint64_t, int>, std::uint64_t>
      subcomm_registry_;
  std::uint64_t next_comm_id_ = 1;  // 0 is the world communicator

  std::mutex abort_mutex_;
  std::atomic<bool> aborted_{false};
  std::string abort_reason_;
  std::atomic<long long> timeout_ms_{0};
  std::atomic<std::size_t> ring_segment_elems_{kDefaultRingSegmentElems};
  std::atomic<bool> ring_segment_auto_{false};
  RingSegmentModel segment_model_;

  integrity::IntegrityMode ring_crc_mode_ = integrity::IntegrityMode::kOff;
  int crc_max_retries_ = 3;

  // has_wire_hook_ keeps the no-chaos hot path lock-free: the mutex is only
  // taken when a hook is (being) installed.
  std::atomic<bool> has_wire_hook_{false};
  mutable std::mutex wire_mutex_;
  std::shared_ptr<const WireFaultHook> wire_hook_;

  mutable std::mutex retained_mutex_;
  std::map<RetainedKey, FrameBuffer> retained_;

  // --- Elastic membership state -------------------------------------------
  //
  // Lock order: membership_.mutex before any mailbox/stream/registry mutex;
  // never acquire membership_.mutex while holding a mailbox lock (collect()
  // unlocks its mailbox before calling declare_dead()).

  struct Membership {
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::vector<RankState> state;       ///< per world rank
    std::vector<std::string> reason;    ///< death reason, per world rank
    std::vector<int> active;            ///< slot -> world rank
    std::vector<int> pending_dead;      ///< deaths since the last transition
    std::vector<int> arrived;           ///< ranks waiting in reconfigure()
    bool finished = false;
    std::uint64_t active_comm_id = 0;   ///< comm id of the current epoch's comm
    ReconfigurePlan last_plan;          ///< result of the latest transition
  };

  /// Performs the epoch transition if every survivor has arrived; must be
  /// called with membership_.mutex held. Also invoked from declare_dead so a
  /// death *during* the rendezvous (crash-during-recovery) re-evaluates the
  /// arrival condition instead of deadlocking the survivors. Returns a
  /// non-empty abort reason when recovery is impossible (shrink disallowed or
  /// below min_active); the caller must invoke abort() after unlocking.
  std::string maybe_complete_reconfiguration_locked();
  [[noreturn]] void throw_rank_dead_locked(std::uint64_t comm_epoch);
  /// Fail-fast check used at collective issue and receive completion: throws
  /// EpochFencedError past an epoch bump, RankDeadError on a pending failure.
  void check_elastic_health(std::uint64_t comm_epoch);
  std::int64_t heartbeat_age_ms(int world_rank) const;

  bool elastic_ = false;
  long long heartbeat_ms_ = 0;
  bool allow_shrink_ = true;
  int min_active_ = 1;
  Membership membership_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<bool> failure_pending_{false};
  std::atomic<std::uint64_t> fenced_messages_{0};
  std::atomic<std::int64_t> last_failure_ns_{0};
  std::unique_ptr<std::atomic<std::int64_t>[]> heartbeats_;  ///< steady ns

  mutable std::mutex note_mutex_;
  std::string fault_note_;
};

class ThreadComm final : public Communicator {
 public:
  ~ThreadComm() override = default;

  int rank() const override { return rank_; }
  int size() const override { return static_cast<int>(members_.size()); }

  void all_reduce(std::span<float> buffer, ReduceOp op) override;
  void all_gather(std::span<const float> send, std::span<float> recv) override;
  void all_gatherv(std::span<const float> send, std::span<float> recv,
                   std::span<const std::size_t> recv_counts) override;
  void reduce_scatter(std::span<const float> send, std::span<float> recv,
                      ReduceOp op) override;
  void reduce_scatterv(std::span<const float> send, std::span<float> recv,
                       std::span<const std::size_t> counts,
                       ReduceOp op) override;
  void broadcast(std::span<float> buffer, int root) override;
  void barrier() override;

  Request iall_reduce(std::span<float> buffer, ReduceOp op,
                      CommPriority priority = CommPriority::kNormal) override;
  Request iall_gather(std::span<const float> send, std::span<float> recv,
                      CommPriority priority = CommPriority::kNormal) override;
  Request iall_gatherv(std::span<const float> send, std::span<float> recv,
                       std::span<const std::size_t> recv_counts,
                       CommPriority priority = CommPriority::kNormal) override;
  Request ireduce_scatter(std::span<const float> send, std::span<float> recv,
                          ReduceOp op,
                          CommPriority priority = CommPriority::kNormal) override;
  Request ireduce_scatterv(std::span<const float> send, std::span<float> recv,
                           std::span<const std::size_t> counts, ReduceOp op,
                           CommPriority priority = CommPriority::kNormal) override;
  Request run_on_stream(std::function<void()> fn,
                        CommPriority priority = CommPriority::kNormal) override;

  std::unique_ptr<Communicator> split(int color, int key) override;

  const CommStats& stats() const override;
  void reset_stats() override;
  std::string name() const override { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// World rank of communicator-rank r (diagnostics / tests).
  int world_rank_of(int r) const { return members_[static_cast<std::size_t>(r)]; }

  /// Membership epoch this communicator (and its split children) stamps on
  /// every message. 0 for world communicators and in non-elastic worlds.
  std::uint64_t epoch() const { return epoch_; }

  /// The owning world — the seam ChaosComm uses to install its wire-level
  /// fault schedule (per-segment corruption happens below the collective
  /// API, in the transport).
  ThreadWorld* thread_world() const { return world_; }

 private:
  friend class ThreadWorld;

  ThreadComm(ThreadWorld* world, std::uint64_t comm_id, std::vector<int> members,
             int rank, std::string name, std::uint64_t epoch = 0);

  // Transport bound to one collective invocation (a fixed sequence number),
  // passed to the ring algorithm templates. The per-peer message counters
  // index each wire message within the collective (per-edge delivery is
  // FIFO, so sender and receiver counts agree) — the coordinate the CRC
  // retransmit protocol and the wire-fault hook address messages by. A new
  // Transport per invocation means the counters reset with the collective.
  class Transport {
   public:
    Transport(ThreadComm* comm, std::uint64_t seq);
    int rank() const { return comm_->rank_; }
    int size() const { return comm_->size(); }
    void send_to(int dest, std::span<const float> data);
    void recv_from(int src, std::span<float> out);

   private:
    ThreadComm* comm_;
    std::uint64_t seq_;
    bool crc_;       ///< world ring_crc_mode() != kOff: frame with a CRC word
    std::vector<std::uint64_t> sent_;  ///< messages sent, per dest comm-rank
    std::vector<std::uint64_t> rcvd_;  ///< messages received, per src comm-rank
  };

  std::uint64_t next_seq();
  std::size_t segment_elems() const { return world_->ring_segment_elems(); }
  /// Segment size for one collective whose per-hop chunk holds `chunk_elems`
  /// elements: the Eq. 1–7 model value in auto mode, else the flat world
  /// setting. Deterministic from (chunk_elems, size()), so every member rank
  /// picks the same schedule.
  std::size_t segment_for(std::size_t chunk_elems) const {
    if (world_->ring_segment_auto()) {
      return model_ring_segment_elems(chunk_elems, size(),
                                      world_->ring_segment_model());
    }
    return segment_elems();
  }
  void add_wire_bytes(std::uint64_t bytes, std::uint64_t crc_bytes = 0);
  void bump(std::uint64_t CommStats::*counter);

  /// Emits the communicator's cumulative wire_bytes_sent as a trace counter
  /// (no-op when tracing is disabled).
  void trace_wire_total();

  // Executes `body` (which runs a ring algorithm) on the rank's progress
  // lane for `priority`, returning a Request. `op` names the collective in
  // the trace (the task body is recorded as a comm-stream span).
  Request post_async(const char* op, CommPriority priority,
                     std::function<void()> body);

  ThreadWorld* world_;
  std::uint64_t comm_id_;
  std::vector<int> members_;  // communicator rank -> world rank
  int rank_;
  std::string name_;

  // Sequence counter: identical across member ranks because collectives are
  // issued in the same order on every rank. Allocated at issue time (not
  // execution time) so blocking and nonblocking calls cannot race.
  std::uint64_t seq_ = 0;
  std::uint64_t split_generation_ = 0;
  std::uint64_t epoch_ = 0;

  mutable std::mutex stats_mutex_;
  CommStats stats_;
  mutable CommStats stats_snapshot_;
};

/// Spawns `nranks` threads, each running `body` with its own world
/// communicator, and joins them. If any rank throws, the world is aborted
/// (unblocking the other ranks) and the first exception is rethrown.
void run_ranks(int nranks, const std::function<void(Communicator&)>& body,
               const WorldOptions& options = {});

}  // namespace axonn::comm
