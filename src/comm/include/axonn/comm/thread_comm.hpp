#pragma once

// In-process message-passing runtime: one OS thread per rank.
//
// ThreadWorld owns the shared state (mailboxes, the per-rank progress thread
// that plays the role of the GPU communication stream, the abort flag).
// ThreadComm is the per-rank handle implementing the Communicator interface
// with the real ring algorithms from ring.hpp.
//
// Nonblocking collectives are executed on the rank's progress thread so that
// the issuing thread can keep computing — the same concurrency structure the
// paper's OAR/ORS/OAG overlap optimizations rely on with NCCL/RCCL streams.
// Collectives on one communicator must be issued in the same order by every
// member rank (the MPI/NCCL ordering contract); distinct communicators are
// independent.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "axonn/comm/communicator.hpp"
#include "axonn/integrity/integrity.hpp"

namespace axonn::comm {

class ThreadComm;

/// Default ring pipelining granularity: 2048 floats = 8 KiB per segment,
/// small enough to put several segments in flight per chunk at the message
/// sizes the training path produces, large enough that per-message overhead
/// stays negligible.
inline constexpr std::size_t kDefaultRingSegmentElems = 2048;

/// Tunables for a ThreadWorld.
struct WorldOptions {
  /// Per-receive watchdog budget. A blocked receive (including one running
  /// inside a progress-stream task) that waits longer than this for a peer's
  /// message throws CommTimeoutError naming the stuck communicator, sequence
  /// number and peer. Zero disables the watchdog (wait forever).
  std::chrono::milliseconds collective_timeout{0};
  /// Chunk-pipelining segment size (elements) for the ring collectives; 0
  /// runs the unsegmented algorithms (see ring.hpp). Results are bitwise
  /// independent of this value. Overridable by the AXONN_RING_SEGMENT
  /// environment variable (element count; takes precedence when set).
  std::size_t ring_segment_elems = kDefaultRingSegmentElems;
  /// Self-healing ring transport (see DESIGN.md §9). kDetect stamps every
  /// ring message (segment) with a crc32 word; a receiver-side mismatch
  /// throws DataCorruptionError. kHeal additionally NACKs: the sender keeps
  /// a clean retained copy of each in-flight message and retransmits it on
  /// demand (up to crc_max_retries times) before the receiver escalates —
  /// results are bitwise identical to a fault-free run. Resolved against the
  /// AXONN_INTEGRITY environment override at world construction.
  integrity::IntegrityMode ring_crc = integrity::IntegrityMode::kOff;
  /// kHeal retry budget per message before DataCorruptionError.
  int crc_max_retries = 3;
};

/// Shared state for a group of thread ranks. Construct one, then either use
/// run_ranks() (preferred) or call world_comm(rank) from each rank thread.
class ThreadWorld {
 public:
  explicit ThreadWorld(int size, WorldOptions options = {});
  ~ThreadWorld();

  ThreadWorld(const ThreadWorld&) = delete;
  ThreadWorld& operator=(const ThreadWorld&) = delete;

  int size() const { return size_; }

  /// The world communicator handle for `rank`. Each rank thread must use its
  /// own handle; handles are not thread-safe across rank threads.
  std::unique_ptr<ThreadComm> world_comm(int rank);

  /// Marks the world as aborted (e.g. a rank threw). All pending and future
  /// receives wake up and throw, and queued progress-stream tasks fail their
  /// futures promptly, preventing deadlock of surviving ranks. Only the first
  /// reason is stored; subsequent reasons are logged (warn level) so
  /// multi-rank failure cascades stay diagnosable.
  void abort(const std::string& reason);

  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

  /// Adjusts the receive watchdog budget (see WorldOptions). Thread-safe.
  void set_collective_timeout(std::chrono::milliseconds budget) {
    timeout_ms_.store(budget.count(), std::memory_order_relaxed);
  }

  /// The ring segment size in effect (see WorldOptions::ring_segment_elems).
  std::size_t ring_segment_elems() const {
    return ring_segment_elems_.load(std::memory_order_relaxed);
  }

  /// The CRC protection level in effect (WorldOptions::ring_crc after the
  /// AXONN_INTEGRITY override). Fixed for the world's lifetime: every rank
  /// must frame messages identically.
  integrity::IntegrityMode ring_crc_mode() const { return ring_crc_mode_; }

  /// Identifies one wire transmission for the fault hook: which message (the
  /// msg_index-th from src to dest within collective `seq` on `comm_id`) and
  /// which attempt (0 = original send, n = n-th retransmit).
  struct WireContext {
    std::uint64_t comm_id = 0;
    std::uint64_t seq = 0;
    int src_world_rank = -1;
    int dest_world_rank = -1;
    std::uint64_t msg_index = 0;
    int attempt = 0;
  };

  /// Transit-fault injection seam: called (when installed) on every wire
  /// message — each pipelined ring segment is its own message — with a
  /// mutable view of the payload, *after* CRC stamping, so mutations model
  /// corruption on the wire that the receiver's CRC check can see. Runs on
  /// the sending thread (retransmits: on the receiving thread); must be
  /// thread-safe. ChaosComm installs its wire schedule here.
  using WireFaultHook = std::function<void(const WireContext&,
                                           std::span<float>)>;

  /// Installs (or, with nullptr, clears) the hook. Thread-safe; installing
  /// the same deterministic schedule from every rank is idempotent.
  void set_wire_fault_hook(WireFaultHook hook);

  /// Messages currently retained for possible retransmission (tests assert
  /// this drains back to zero once receives verify).
  std::size_t retained_messages() const;
  /// Adjusts the ring segment size. Thread-safe, but every member rank of a
  /// communicator must observe the same value for any given collective —
  /// change it only between collectives (e.g. from the driver thread while
  /// ranks are synchronized).
  void set_ring_segment_elems(std::size_t elems) {
    ring_segment_elems_.store(elems, std::memory_order_relaxed);
  }

 private:
  friend class ThreadComm;

  /// Context a receive carries so watchdog/abort errors can name the stuck
  /// collective instead of reporting a bare deadlock.
  struct RecvContext {
    const std::string* comm_name;
    std::uint64_t seq;
    int src_world_rank;
  };

  struct MessageKey {
    std::uint64_t comm_id;
    int src_world_rank;
    std::uint64_t tag;
    friend auto operator<=>(const MessageKey&, const MessageKey&) = default;
  };

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::map<MessageKey, std::deque<std::vector<float>>> queues;
  };

  // The per-rank progress "stream": a worker thread draining FIFO tasks.
  struct ProgressStream {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<std::function<void()>> tasks;
    std::thread worker;
    bool stopping = false;
  };

  void deliver(int dest_world_rank, const MessageKey& key,
               std::vector<float> payload);
  std::vector<float> collect(int my_world_rank, const MessageKey& key,
                             const RecvContext& context);

  /// One in-flight CRC-framed message, addressable for NACK/retransmit.
  struct RetainedKey {
    int dest_world_rank;
    MessageKey key;
    std::uint64_t msg_index;
    friend auto operator<=>(const RetainedKey&, const RetainedKey&) = default;
  };

  /// Stores the clean framed copy the sender keeps while kHeal is active.
  void retain(const RetainedKey& rkey, std::vector<float> frame);
  /// Drops the retained copy — the receiver's CRC verified, i.e. the ACK.
  void release_retained(const RetainedKey& rkey);
  /// Synchronous NACK: returns a fresh copy of the retained frame with the
  /// wire-fault hook re-applied under `context` (attempt >= 1, so one-shot
  /// deterministic faults do not re-fire). Called from the *receiving*
  /// thread — the in-process analogue of a NACK packet plus the sender's
  /// retransmission, delivered directly so later segments queued in the
  /// mailbox keep their order.
  std::vector<float> retransmit(const RetainedKey& rkey,
                                const WireContext& context);

  /// Applies the installed wire-fault hook (if any) to `payload`.
  void apply_wire_hook(const WireContext& context, std::span<float> payload);

  [[noreturn]] void throw_aborted();
  void throw_if_aborted() {
    if (aborted()) throw_aborted();
  }

  /// Returns a stable id for the subcommunicator created by the
  /// (parent, generation, color) split — every member rank gets the same id.
  std::uint64_t subcomm_id(std::uint64_t parent_id, std::uint64_t generation,
                           int color);

  void enqueue_task(int world_rank, std::function<void()> task);
  void progress_loop(int rank, ProgressStream& stream);

  int size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<ProgressStream>> streams_;

  std::mutex registry_mutex_;
  std::map<std::tuple<std::uint64_t, std::uint64_t, int>, std::uint64_t>
      subcomm_registry_;
  std::uint64_t next_comm_id_ = 1;  // 0 is the world communicator

  std::mutex abort_mutex_;
  std::atomic<bool> aborted_{false};
  std::string abort_reason_;
  std::atomic<long long> timeout_ms_{0};
  std::atomic<std::size_t> ring_segment_elems_{kDefaultRingSegmentElems};

  integrity::IntegrityMode ring_crc_mode_ = integrity::IntegrityMode::kOff;
  int crc_max_retries_ = 3;

  // has_wire_hook_ keeps the no-chaos hot path lock-free: the mutex is only
  // taken when a hook is (being) installed.
  std::atomic<bool> has_wire_hook_{false};
  mutable std::mutex wire_mutex_;
  std::shared_ptr<const WireFaultHook> wire_hook_;

  mutable std::mutex retained_mutex_;
  std::map<RetainedKey, std::vector<float>> retained_;
};

class ThreadComm final : public Communicator {
 public:
  ~ThreadComm() override = default;

  int rank() const override { return rank_; }
  int size() const override { return static_cast<int>(members_.size()); }

  void all_reduce(std::span<float> buffer, ReduceOp op) override;
  void all_gather(std::span<const float> send, std::span<float> recv) override;
  void all_gatherv(std::span<const float> send, std::span<float> recv,
                   std::span<const std::size_t> recv_counts) override;
  void reduce_scatter(std::span<const float> send, std::span<float> recv,
                      ReduceOp op) override;
  void reduce_scatterv(std::span<const float> send, std::span<float> recv,
                       std::span<const std::size_t> counts,
                       ReduceOp op) override;
  void broadcast(std::span<float> buffer, int root) override;
  void barrier() override;

  Request iall_reduce(std::span<float> buffer, ReduceOp op) override;
  Request iall_gather(std::span<const float> send,
                      std::span<float> recv) override;
  Request iall_gatherv(std::span<const float> send, std::span<float> recv,
                       std::span<const std::size_t> recv_counts) override;
  Request ireduce_scatter(std::span<const float> send, std::span<float> recv,
                          ReduceOp op) override;
  Request ireduce_scatterv(std::span<const float> send, std::span<float> recv,
                           std::span<const std::size_t> counts,
                           ReduceOp op) override;

  std::unique_ptr<Communicator> split(int color, int key) override;

  const CommStats& stats() const override;
  void reset_stats() override;
  std::string name() const override { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// World rank of communicator-rank r (diagnostics / tests).
  int world_rank_of(int r) const { return members_[static_cast<std::size_t>(r)]; }

  /// The owning world — the seam ChaosComm uses to install its wire-level
  /// fault schedule (per-segment corruption happens below the collective
  /// API, in the transport).
  ThreadWorld* thread_world() const { return world_; }

 private:
  friend class ThreadWorld;

  ThreadComm(ThreadWorld* world, std::uint64_t comm_id, std::vector<int> members,
             int rank, std::string name);

  // Transport bound to one collective invocation (a fixed sequence number),
  // passed to the ring algorithm templates. The per-peer message counters
  // index each wire message within the collective (per-edge delivery is
  // FIFO, so sender and receiver counts agree) — the coordinate the CRC
  // retransmit protocol and the wire-fault hook address messages by. A new
  // Transport per invocation means the counters reset with the collective.
  class Transport {
   public:
    Transport(ThreadComm* comm, std::uint64_t seq);
    int rank() const { return comm_->rank_; }
    int size() const { return comm_->size(); }
    void send_to(int dest, std::span<const float> data);
    void recv_from(int src, std::span<float> out);

   private:
    ThreadComm* comm_;
    std::uint64_t seq_;
    bool crc_;       ///< world ring_crc_mode() != kOff: frame with a CRC word
    std::vector<std::uint64_t> sent_;  ///< messages sent, per dest comm-rank
    std::vector<std::uint64_t> rcvd_;  ///< messages received, per src comm-rank
  };

  std::uint64_t next_seq();
  std::size_t segment_elems() const { return world_->ring_segment_elems(); }
  void add_wire_bytes(std::uint64_t bytes, std::uint64_t crc_bytes = 0);
  void bump(std::uint64_t CommStats::*counter);

  /// Emits the communicator's cumulative wire_bytes_sent as a trace counter
  /// (no-op when tracing is disabled).
  void trace_wire_total();

  // Executes `body` (which runs a ring algorithm) on the rank's progress
  // stream, returning a Request. `op` names the collective in the trace
  // (the task body is recorded as a comm-stream span).
  Request post_async(const char* op, std::function<void()> body);

  ThreadWorld* world_;
  std::uint64_t comm_id_;
  std::vector<int> members_;  // communicator rank -> world rank
  int rank_;
  std::string name_;

  // Sequence counter: identical across member ranks because collectives are
  // issued in the same order on every rank. Allocated at issue time (not
  // execution time) so blocking and nonblocking calls cannot race.
  std::uint64_t seq_ = 0;
  std::uint64_t split_generation_ = 0;

  mutable std::mutex stats_mutex_;
  CommStats stats_;
  mutable CommStats stats_snapshot_;
};

/// Spawns `nranks` threads, each running `body` with its own world
/// communicator, and joins them. If any rank throws, the world is aborted
/// (unblocking the other ranks) and the first exception is rethrown.
void run_ranks(int nranks, const std::function<void(Communicator&)>& body,
               const WorldOptions& options = {});

}  // namespace axonn::comm
