#include "axonn/comm/chaos_comm.hpp"

#include <cstdint>
#include <thread>
#include <utility>

#include "axonn/base/crc32.hpp"
#include "axonn/base/error.hpp"
#include "axonn/base/log.hpp"
#include "axonn/base/rng.hpp"
#include "axonn/comm/thread_comm.hpp"
#include "axonn/integrity/integrity.hpp"

namespace axonn::comm {

namespace {

/// Deterministic per-(seed, rank, op) draw in [0, 1).
double schedule_draw(std::uint64_t seed, int rank, std::uint64_t op) {
  const std::uint64_t h = mix64(hash_combine(
      hash_combine(seed, static_cast<std::uint64_t>(rank)), op));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Deterministic bit index into a buffer of `n` floats.
std::size_t schedule_bit(std::uint64_t seed, int rank, std::uint64_t op,
                         std::size_t n) {
  const std::uint64_t h = mix64(hash_combine(
      hash_combine(hash_combine(seed, static_cast<std::uint64_t>(rank)), op),
      0xB17Full));
  return static_cast<std::size_t>(h % (n * 32));
}

void flip_payload_bit(std::span<float> payload, std::size_t bit) {
  auto* words = reinterpret_cast<std::uint32_t*>(payload.data());
  words[bit / 32] ^= (1u << (bit % 32));
}

/// Hash of one wire message's full identity. The attempt is folded in so a
/// retransmission of the same message redraws its probabilistic faults.
std::uint64_t wire_hash(std::uint64_t seed,
                        const ThreadWorld::WireContext& ctx) {
  std::uint64_t h = hash_combine(seed, ctx.comm_id);
  h = hash_combine(h, ctx.seq);
  h = hash_combine(h, (static_cast<std::uint64_t>(
                           static_cast<std::uint32_t>(ctx.src_world_rank))
                       << 32) |
                          static_cast<std::uint32_t>(ctx.dest_world_rank));
  h = hash_combine(h, ctx.msg_index);
  return hash_combine(h, static_cast<std::uint64_t>(ctx.attempt));
}

double wire_draw(std::uint64_t h, std::uint64_t salt) {
  return static_cast<double>(mix64(hash_combine(h, salt)) >> 11) * 0x1.0p-53;
}

/// The wire-fault schedule: a pure function of (config, message identity),
/// safe to call concurrently from rank/progress threads and identical no
/// matter which rank installed it.
void apply_wire_chaos(const ChaosConfig& cfg,
                      const ThreadWorld::WireContext& ctx,
                      std::span<float> payload) {
  const WireChaosConfig& w = cfg.wire;
  if (payload.empty()) return;
  const std::uint64_t h = wire_hash(cfg.seed, ctx);
  if (w.delay_probability > 0.0 && w.delay.count() > 0 &&
      wire_draw(h, 0xDE1Aull) < w.delay_probability) {
    std::this_thread::sleep_for(w.delay);
  }
  if (w.corrupt_probability > 0.0 &&
      wire_draw(h, 0xC0FFull) < w.corrupt_probability) {
    flip_payload_bit(payload,
                     static_cast<std::size_t>(mix64(hash_combine(h, 0xF11Bull))
                                              % (payload.size() * 32)));
    integrity::counters().wire_faults_injected.fetch_add(
        1, std::memory_order_relaxed);
  }
  if (w.target_seq >= 0 && ctx.attempt == 0 &&
      ctx.seq == static_cast<std::uint64_t>(w.target_seq) &&
      ctx.comm_id == w.target_comm_id && ctx.msg_index == w.target_msg_index &&
      (w.target_src_world_rank < 0 ||
       ctx.src_world_rank == w.target_src_world_rank)) {
    flip_payload_bit(payload, static_cast<std::size_t>(w.target_bit & 31));
    integrity::counters().wire_faults_injected.fetch_add(
        1, std::memory_order_relaxed);
  }
}

}  // namespace

namespace {
/// Provenance tag folded into every injected-fault report: the seed plus the
/// per-rank collective (draw) index reproduce the fault deterministically.
std::string chaos_note(std::uint64_t seed, std::uint64_t draw) {
  return "chaos seed=" + std::to_string(seed) + " draw=" + std::to_string(draw);
}
}  // namespace

ChaosComm::ChaosComm(Communicator& inner, const ChaosConfig& config)
    : inner_(&inner), state_(std::make_shared<State>()) {
  state_->config = config;
  state_->world_rank = inner.rank();
  maybe_install_wire_chaos();
  // Tag the world so even errors raised below the chaos layer (watchdog
  // timeouts, ring CRC escalations) carry the seed that provoked them.
  if (auto* thread_comm = dynamic_cast<ThreadComm*>(inner_)) {
    thread_comm->thread_world()->set_fault_note(
        "chaos seed=" + std::to_string(config.seed));
  }
}

void ChaosComm::maybe_install_wire_chaos() {
  if (!state_->config.wire.active()) return;
  auto* thread_comm = dynamic_cast<ThreadComm*>(inner_);
  if (thread_comm == nullptr) {
    AXONN_LOG_WARN << "ChaosComm: wire-level chaos configured but the inner "
                      "communicator is not a ThreadComm; per-segment faults "
                      "disabled";
    return;
  }
  // The hook is world-global and the schedule is a pure function of the
  // config, so every rank installing its own (identical) copy is idempotent.
  const ChaosConfig cfg = state_->config;
  thread_comm->thread_world()->set_wire_fault_hook(
      [cfg](const ThreadWorld::WireContext& ctx, std::span<float> payload) {
        apply_wire_chaos(cfg, ctx, payload);
      });
}

ChaosComm::ChaosComm(std::unique_ptr<Communicator> owned,
                     std::shared_ptr<State> state)
    : inner_(owned.get()), owned_(std::move(owned)), state_(std::move(state)) {}

const std::vector<FaultEvent>& ChaosComm::fault_log() const {
  return state_->log;
}

std::uint64_t ChaosComm::collectives_issued() const {
  return state_->next_collective;
}

std::uint64_t ChaosComm::begin_collective() {
  State& s = *state_;
  const std::uint64_t op = s.next_collective++;
  const std::string note = chaos_note(s.config.seed, op);
  if (s.config.slow_rank == s.world_rank && s.config.slow_delay.count() > 0) {
    s.log.push_back({FaultEvent::Kind::kDelay, op,
                     "delayed " + std::to_string(s.config.slow_delay.count()) +
                         "us on \"" + inner_->name() + "\" (" + note + ")"});
    std::this_thread::sleep_for(s.config.slow_delay);
  }
  if (s.config.hang_rank == s.world_rank &&
      op == s.config.hang_at_collective) {
    s.log.push_back({FaultEvent::Kind::kHang, op,
                     "rank " + std::to_string(s.world_rank) + " hung on \"" +
                         inner_->name() + "\" (" + note + ")"});
    AXONN_LOG_WARN << "ChaosComm: injecting hang of rank " << s.world_rank
                   << " at collective #" << op << " (" << note << ")";
    auto* thread_comm = dynamic_cast<ThreadComm*>(inner_);
    if (thread_comm == nullptr) {
      AXONN_LOG_WARN << "ChaosComm: hang fault needs a ThreadComm inner to "
                        "observe the world; degrading to a crash";
      throw RankFailure(s.world_rank, op, note);
    }
    // Go silent: no collective is issued, no heartbeat beats. Spin until the
    // world aborts (watchdog path) or a peer's heartbeat check declares this
    // rank dead (elastic path), then unwind like a crashed rank.
    ThreadWorld* world = thread_comm->thread_world();
    const int my_world = thread_comm->world_rank_of(thread_comm->rank());
    for (;;) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      if (world->aborted() || (world->elastic() && world->is_dead(my_world))) {
        throw RankFailure(s.world_rank, op, note);
      }
    }
  }
  if (s.config.crash_rank == s.world_rank &&
      op == s.config.crash_at_collective) {
    s.log.push_back({FaultEvent::Kind::kCrash, op,
                     "rank " + std::to_string(s.world_rank) + " crashed on \"" +
                         inner_->name() + "\" (" + note + ")"});
    AXONN_LOG_WARN << "ChaosComm: injecting crash of rank " << s.world_rank
                   << " at collective #" << op << " (" << note << ")";
    throw RankFailure(s.world_rank, op, note);
  }
  return op;
}

void ChaosComm::maybe_corrupt(std::uint64_t op, std::span<float> result) {
  State& s = *state_;
  if (!result.empty() && !s.corrupt_once_fired &&
      s.config.corrupt_once_rank == s.world_rank &&
      op >= s.config.corrupt_once_collective) {
    // ">=": fires at the first *eligible* collective (blocking, non-empty
    // result) at or after the configured index, so the target doesn't have
    // to dodge barriers and nonblocking issues.
    s.corrupt_once_fired = true;
    flip_payload_bit(result.subspan(0, 1),
                     static_cast<std::size_t>(s.config.corrupt_once_bit & 31));
    s.log.push_back({FaultEvent::Kind::kCorruption, op,
                     "one-shot flipped bit " +
                         std::to_string(s.config.corrupt_once_bit & 31) +
                         " of element 0 on \"" + inner_->name() + "\" (" +
                         chaos_note(s.config.seed, op) + ")"});
  }
  if (s.config.corrupt_probability <= 0.0 || result.empty()) return;
  if (schedule_draw(s.config.seed, s.world_rank, op) >=
      s.config.corrupt_probability) {
    return;
  }
  const std::size_t bit =
      schedule_bit(s.config.seed, s.world_rank, op, result.size());
  auto* words = reinterpret_cast<std::uint32_t*>(result.data());
  words[bit / 32] ^= (1u << (bit % 32));
  s.log.push_back({FaultEvent::Kind::kCorruption, op,
                   "flipped bit " + std::to_string(bit % 32) + " of element " +
                       std::to_string(bit / 32) + " on \"" + inner_->name() +
                       "\" (" + chaos_note(s.config.seed, op) + ")"});
}

void ChaosComm::verify_replicated(std::uint64_t op,
                                  std::span<const float> result) {
  if (!state_->config.verify_replicated_results) return;
  // CRC32 of the result, split into two 16-bit halves so the values are
  // exactly representable as floats, cross-checked with an all_gather on the
  // *inner* communicator (the check itself must not be chaos-targeted).
  const std::uint32_t crc = crc32(result.data(), result.size_bytes());
  const float mine[2] = {static_cast<float>(crc & 0xFFFFu),
                         static_cast<float>(crc >> 16)};
  std::vector<float> all(static_cast<std::size_t>(inner_->size()) * 2);
  inner_->all_gather(std::span<const float>(mine, 2), all);
  for (std::size_t i = 0; i < all.size(); i += 2) {
    if (all[i] != mine[0] || all[i + 1] != mine[1]) {
      throw DataCorruptionError(inner_->name(), op,
                                "result checksums differ across ranks",
                                chaos_note(state_->config.seed, op));
    }
  }
}

void ChaosComm::all_reduce(std::span<float> buffer, ReduceOp op) {
  const std::uint64_t index = begin_collective();
  inner_->all_reduce(buffer, op);
  maybe_corrupt(index, buffer);
  verify_replicated(index, buffer);
}

void ChaosComm::all_gather(std::span<const float> send,
                           std::span<float> recv) {
  const std::uint64_t index = begin_collective();
  inner_->all_gather(send, recv);
  maybe_corrupt(index, recv);
  verify_replicated(index, recv);
}

void ChaosComm::all_gatherv(std::span<const float> send, std::span<float> recv,
                            std::span<const std::size_t> recv_counts) {
  const std::uint64_t index = begin_collective();
  inner_->all_gatherv(send, recv, recv_counts);
  maybe_corrupt(index, recv);
  verify_replicated(index, recv);
}

void ChaosComm::reduce_scatter(std::span<const float> send,
                               std::span<float> recv, ReduceOp op) {
  const std::uint64_t index = begin_collective();
  inner_->reduce_scatter(send, recv, op);
  // Per-rank results differ by construction; no replication check.
  maybe_corrupt(index, recv);
}

void ChaosComm::reduce_scatterv(std::span<const float> send,
                                std::span<float> recv,
                                std::span<const std::size_t> counts,
                                ReduceOp op) {
  const std::uint64_t index = begin_collective();
  inner_->reduce_scatterv(send, recv, counts, op);
  maybe_corrupt(index, recv);
}

void ChaosComm::broadcast(std::span<float> buffer, int root) {
  const std::uint64_t index = begin_collective();
  inner_->broadcast(buffer, root);
  maybe_corrupt(index, buffer);
  verify_replicated(index, buffer);
}

void ChaosComm::barrier() {
  begin_collective();
  inner_->barrier();
}

Request ChaosComm::iall_reduce(std::span<float> buffer, ReduceOp op,
                               CommPriority priority) {
  begin_collective();
  return inner_->iall_reduce(buffer, op, priority);
}

Request ChaosComm::iall_gather(std::span<const float> send,
                               std::span<float> recv, CommPriority priority) {
  begin_collective();
  return inner_->iall_gather(send, recv, priority);
}

Request ChaosComm::iall_gatherv(std::span<const float> send,
                                std::span<float> recv,
                                std::span<const std::size_t> recv_counts,
                                CommPriority priority) {
  begin_collective();
  return inner_->iall_gatherv(send, recv, recv_counts, priority);
}

Request ChaosComm::ireduce_scatter(std::span<const float> send,
                                   std::span<float> recv, ReduceOp op,
                                   CommPriority priority) {
  begin_collective();
  return inner_->ireduce_scatter(send, recv, op, priority);
}

Request ChaosComm::ireduce_scatterv(std::span<const float> send,
                                    std::span<float> recv,
                                    std::span<const std::size_t> counts,
                                    ReduceOp op, CommPriority priority) {
  begin_collective();
  return inner_->ireduce_scatterv(send, recv, counts, op, priority);
}

Request ChaosComm::run_on_stream(std::function<void()> fn,
                                 CommPriority priority) {
  // A rank-local host function, not a collective: no chaos schedule step.
  return inner_->run_on_stream(std::move(fn), priority);
}

std::unique_ptr<Communicator> ChaosComm::split(int color, int key) {
  std::unique_ptr<Communicator> sub = inner_->split(color, key);
  if (!sub) return nullptr;
  return std::unique_ptr<Communicator>(
      new ChaosComm(std::move(sub), state_));
}

}  // namespace axonn::comm
