#include "axonn/comm/thread_comm.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <exception>
#include <future>
#include <string_view>
#include <utility>

#include "axonn/base/crc32.hpp"
#include "axonn/base/error.hpp"
#include "axonn/base/log.hpp"
#include "axonn/base/metrics.hpp"
#include "axonn/base/trace.hpp"
#include "axonn/comm/fault.hpp"
#include "axonn/comm/ring.hpp"
#include "axonn/tensor/gemm_dispatch.hpp"

namespace axonn::comm {

namespace {
// Opens `span` as "<op>(<comm name>)" in the comm category; the name string
// is only built when tracing is on.
void open_comm_span(obs::SpanGuard& span, const char* op,
                    const std::string& comm_name) {
  if (!obs::enabled()) return;
  span.open(obs::kCatComm, std::string(op) + "(" + comm_name + ")");
}

// Live-telemetry scope for blocking collectives (DESIGN.md §10): the whole
// call is a compute-thread stall, so its wall time feeds the per-thread
// stall clock (the per-step exposed-comm measurement), and the payload size
// feeds the comm.* metrics. ~Free when metrics are disabled.
struct BlockingCollectiveScope {
  obs::metrics::StallTimer stall;
  explicit BlockingCollectiveScope(std::size_t payload_bytes) {
    if (!obs::metrics::enabled()) return;
    static obs::metrics::Counter calls("comm.blocking_calls");
    static obs::metrics::Histogram payload("comm.payload_bytes");
    calls.add();
    payload.observe(static_cast<double>(payload_bytes));
  }
};

// CRC framing: a stamped message is payload || one float whose bit pattern
// is crc32 over the payload bytes. The word is never used arithmetically —
// bit_cast in, bit_cast out — so NaN-pattern CRCs round-trip bitwise.
float crc_stamp(std::span<const float> payload) {
  return std::bit_cast<float>(
      crc32(payload.data(), payload.size() * sizeof(float)));
}

bool crc_frame_ok(const FrameBuffer& frame) {
  const std::span<const float> payload(frame.data(), frame.size() - 1);
  return std::bit_cast<std::uint32_t>(frame.back()) ==
         crc32(payload.data(), payload.size() * sizeof(float));
}

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

// ---------------------------------------------------------------------------
// ThreadWorld
// ---------------------------------------------------------------------------

ThreadWorld::ThreadWorld(int size, WorldOptions options) : size_(size) {
  AXONN_CHECK_MSG(size >= 1, "ThreadWorld needs at least one rank");
  timeout_ms_.store(options.collective_timeout.count(),
                    std::memory_order_relaxed);
  std::size_t segment = options.ring_segment_elems;
  bool segment_auto = options.ring_segment_auto;
  if (const char* env = std::getenv("AXONN_RING_SEGMENT")) {
    if (std::string_view(env) == "auto") {
      segment_auto = true;
    } else {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(env, &end, 10);
      if (end != env && *end == '\0') {
        segment = static_cast<std::size_t>(parsed);
        segment_auto = false;
      }
    }
  }
  ring_segment_elems_.store(segment, std::memory_order_relaxed);
  ring_segment_auto_.store(segment_auto, std::memory_order_relaxed);
  segment_model_ = options.ring_segment_model;
  ring_crc_mode_ = integrity::effective_mode(options.ring_crc);
  crc_max_retries_ = options.crc_max_retries;
  if (options.gemm_threads != 0) {
    set_gemm_threads(options.gemm_threads > 0 ? options.gemm_threads
                                              : auto_gemm_threads(size));
  }
  elastic_ = options.elastic;
  heartbeat_ms_ = options.heartbeat_timeout.count();
  allow_shrink_ = options.allow_shrink;
  min_active_ = options.min_active;
  if (elastic_) {
    AXONN_CHECK_MSG(options.spare_ranks >= 0 && options.spare_ranks < size,
                    "spare_ranks must leave at least one active rank");
    const int actives = size - options.spare_ranks;
    AXONN_CHECK_MSG(actives >= min_active_,
                    "initial active set smaller than min_active");
    membership_.state.assign(static_cast<std::size_t>(size),
                             RankState::kActive);
    membership_.reason.assign(static_cast<std::size_t>(size), "");
    for (int r = 0; r < actives; ++r) membership_.active.push_back(r);
    for (int r = actives; r < size; ++r) {
      membership_.state[static_cast<std::size_t>(r)] = RankState::kSpare;
    }
    membership_.active_comm_id = next_comm_id_++;  // pre-thread: no lock yet
    membership_.last_plan.epoch = 0;
    membership_.last_plan.active = membership_.active;
    membership_.last_plan.old_active = membership_.active;
    heartbeats_ =
        std::make_unique<std::atomic<std::int64_t>[]>(static_cast<std::size_t>(size));
    const std::int64_t now = steady_now_ns();
    for (int r = 0; r < size; ++r) {
      heartbeats_[static_cast<std::size_t>(r)].store(now,
                                                     std::memory_order_relaxed);
    }
  }
  mailboxes_.reserve(static_cast<std::size_t>(size));
  streams_.reserve(static_cast<std::size_t>(size) * kCommPriorityLanes);
  for (int r = 0; r < size; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
    // One progress lane per priority class; workers spawn lazily on first
    // use (enqueue_task), so worlds that never overlap pay for no threads.
    for (int l = 0; l < kCommPriorityLanes; ++l) {
      streams_.push_back(std::make_unique<ProgressStream>());
    }
  }
}

ThreadWorld::~ThreadWorld() {
  for (auto& stream : streams_) {
    {
      std::lock_guard<std::mutex> lock(stream->mutex);
      stream->stopping = true;
    }
    stream->cv.notify_all();
  }
  for (auto& stream : streams_) {
    if (stream->worker.joinable()) stream->worker.join();
  }
}

std::unique_ptr<ThreadComm> ThreadWorld::world_comm(int rank) {
  AXONN_CHECK(rank >= 0 && rank < size_);
  // The caller is (by contract) rank's compute thread; tag it for the trace.
  obs::set_thread_ident(rank, obs::StreamKind::kMain);
  std::vector<int> members(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) members[static_cast<std::size_t>(r)] = r;
  return std::unique_ptr<ThreadComm>(
      new ThreadComm(this, /*comm_id=*/0, std::move(members), rank, "world"));
}

void ThreadWorld::abort(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(abort_mutex_);
    if (aborted_.load(std::memory_order_relaxed)) {
      // First reason wins, but later failures in the cascade are still worth
      // a trace: "rank 3 timed out" after "rank 1 crashed" tells the operator
      // the timeout was collateral damage, not an independent fault.
      AXONN_LOG_WARN << "ThreadWorld::abort: additional reason after \""
                     << abort_reason_ << "\": " << reason;
      return;
    }
    abort_reason_ = reason;
    aborted_.store(true, std::memory_order_release);
  }
  for (auto& mailbox : mailboxes_) {
    std::lock_guard<std::mutex> lock(mailbox->mutex);
    mailbox->cv.notify_all();
  }
  // Wake idle progress workers too so queued tasks drain (and fail) promptly.
  for (auto& stream : streams_) {
    std::lock_guard<std::mutex> lock(stream->mutex);
    stream->cv.notify_all();
  }
  if (elastic_) {
    // Ranks blocked in reconfigure()/park_for_assignment() must also wake.
    std::lock_guard<std::mutex> lock(membership_.mutex);
    membership_.cv.notify_all();
  }
}

void ThreadWorld::throw_aborted() {
  std::lock_guard<std::mutex> lock(abort_mutex_);
  throw Error("ThreadWorld aborted: " + abort_reason_);
}

void ThreadWorld::deliver(int dest_world_rank, const MessageKey& key,
                          FrameBuffer payload) {
  // Epoch fence, delivery side: traffic stamped before the latest
  // reconfiguration must never reach a post-reconfiguration receive (a stale
  // ring segment could silently corrupt a same-shape collective at the new
  // epoch). Purging at the transition handles what was already queued; this
  // handles what was still in flight.
  if (elastic_ && key.epoch < epoch_.load(std::memory_order_acquire)) {
    fenced_messages_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Mailbox& mailbox = *mailboxes_[static_cast<std::size_t>(dest_world_rank)];
  {
    std::lock_guard<std::mutex> lock(mailbox.mutex);
    mailbox.queues[key].push_back(std::move(payload));
  }
  mailbox.cv.notify_all();
}

FrameBuffer ThreadWorld::collect(int my_world_rank, const MessageKey& key,
                                 const RecvContext& context) {
  Mailbox& mailbox = *mailboxes_[static_cast<std::size_t>(my_world_rank)];
  const long long budget_ms = timeout_ms_.load(std::memory_order_relaxed);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(budget_ms);
  const bool hang_detect = elastic_ && heartbeat_ms_ > 0;
  std::unique_lock<std::mutex> lock(mailbox.mutex);
  const auto ready = [&] {
    const auto it = mailbox.queues.find(key);
    return it != mailbox.queues.end() && !it->second.empty();
  };
  const auto pred = [&] {
    if (aborted_.load(std::memory_order_acquire)) return true;
    if (elastic_ && (failure_pending_.load(std::memory_order_acquire) ||
                     epoch_.load(std::memory_order_acquire) > key.epoch)) {
      return true;
    }
    return ready();
  };
  for (;;) {
    if (hang_detect) {
      // Slice the wait so this thread (a) keeps beating its own liveness
      // clock — blocked-on-a-peer is healthy, not hung — and (b) keeps
      // re-checking the peer's clock: a peer that stops making progress for
      // longer than the heartbeat budget is declared dead, which turns this
      // silent hang into a structured RankDeadError for the survivors.
      const auto slice = std::chrono::milliseconds(
          std::clamp(heartbeat_ms_ / 4, 1LL, 50LL));
      while (!pred()) {
        if (budget_ms > 0 && std::chrono::steady_clock::now() >= deadline) {
          throw CommTimeoutError(*context.comm_name, context.seq,
                                 context.src_world_rank, budget_ms,
                                 fault_note());
        }
        mailbox.cv.wait_for(lock, slice, pred);
        heartbeat(my_world_rank);
        if (pred()) break;
        const std::int64_t age_ms = heartbeat_age_ms(context.src_world_rank);
        if (age_ms > heartbeat_ms_) {
          // Lock order: never call declare_dead under a mailbox lock.
          lock.unlock();
          declare_dead(context.src_world_rank,
                       "heartbeat timeout: no progress for " +
                           std::to_string(age_ms) + " ms (communicator \"" +
                           *context.comm_name + "\" seq " +
                           std::to_string(context.seq) + " waiting)");
          lock.lock();
          break;  // failure_pending_ is now set; fall through to triage
        }
      }
    } else if (budget_ms <= 0) {
      mailbox.cv.wait(lock, pred);
    } else {
      // The watchdog: a peer that never delivers turns a silent hang into a
      // structured error naming exactly which collective wedged on whom.
      if (!mailbox.cv.wait_until(lock, deadline, pred)) {
        throw CommTimeoutError(*context.comm_name, context.seq,
                               context.src_world_rank, budget_ms, fault_note());
      }
    }
    if (aborted_.load(std::memory_order_acquire)) throw_aborted();
    if (ready()) break;
    // Woken by the failure broadcast or an epoch bump with no message to
    // take: triage outside the mailbox lock (lock order), then re-wait if
    // the collective turns out to still be completable.
    lock.unlock();
    check_elastic_health(key.epoch);
    lock.lock();
  }
  auto it = mailbox.queues.find(key);
  FrameBuffer payload = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) mailbox.queues.erase(it);
  return payload;
}

void ThreadWorld::set_wire_fault_hook(WireFaultHook hook) {
  std::lock_guard<std::mutex> lock(wire_mutex_);
  if (hook) {
    wire_hook_ = std::make_shared<const WireFaultHook>(std::move(hook));
    has_wire_hook_.store(true, std::memory_order_release);
  } else {
    has_wire_hook_.store(false, std::memory_order_release);
    wire_hook_.reset();
  }
}

void ThreadWorld::apply_wire_hook(const WireContext& context,
                                  std::span<float> payload) {
  if (!has_wire_hook_.load(std::memory_order_acquire)) return;
  std::shared_ptr<const WireFaultHook> hook;
  {
    std::lock_guard<std::mutex> lock(wire_mutex_);
    hook = wire_hook_;
  }
  if (hook) (*hook)(context, payload);
}

std::size_t ThreadWorld::retained_messages() const {
  std::lock_guard<std::mutex> lock(retained_mutex_);
  return retained_.size();
}

void ThreadWorld::retain(const RetainedKey& rkey, FrameBuffer frame) {
  std::lock_guard<std::mutex> lock(retained_mutex_);
  retained_[rkey] = std::move(frame);
}

void ThreadWorld::release_retained(const RetainedKey& rkey) {
  std::lock_guard<std::mutex> lock(retained_mutex_);
  retained_.erase(rkey);
}

FrameBuffer ThreadWorld::retransmit(const RetainedKey& rkey,
                                    const WireContext& context) {
  const mem::ArenaScope scope(mem::Tag::kCommBuffers);
  FrameBuffer frame;
  {
    std::lock_guard<std::mutex> lock(retained_mutex_);
    const auto it = retained_.find(rkey);
    AXONN_CHECK_MSG(it != retained_.end(),
                    "ring CRC retransmit: no retained copy for NACKed message");
    frame = it->second;  // copy: the retained original must stay clean
  }
  // The retransmission crosses the same faulty wire (the hook runs again,
  // with attempt >= 1 so one-shot deterministic faults stay one-shot).
  apply_wire_hook(context,
                  std::span<float>(frame.data(), frame.size() - 1));
  return frame;
}

std::uint64_t ThreadWorld::subcomm_id(std::uint64_t parent_id,
                                      std::uint64_t generation, int color) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  const auto key = std::make_tuple(parent_id, generation, color);
  auto [it, inserted] = subcomm_registry_.try_emplace(key, next_comm_id_);
  if (inserted) ++next_comm_id_;
  return it->second;
}

void ThreadWorld::enqueue_task(int world_rank, CommPriority priority,
                               std::function<void()> task) {
  ProgressStream& stream = lane(world_rank, priority);
  {
    std::lock_guard<std::mutex> lock(stream.mutex);
    stream.tasks.push_back(std::move(task));
    if (!stream.started) {
      stream.started = true;
      ProgressStream* s = &stream;
      stream.worker =
          std::thread([this, world_rank, s] { progress_loop(world_rank, *s); });
    }
  }
  stream.cv.notify_all();
}

void ThreadWorld::progress_loop(int rank, ProgressStream& stream) {
  obs::set_thread_ident(rank, obs::StreamKind::kProgress);
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(stream.mutex);
      stream.cv.wait(lock,
                     [&] { return stream.stopping || !stream.tasks.empty(); });
      if (stream.tasks.empty()) {
        // stopping and drained
        return;
      }
      task = std::move(stream.tasks.front());
      stream.tasks.pop_front();
    }
    // Picking up a task is progress: the rank's comm stream is alive.
    heartbeat(rank);
    task();  // exceptions are captured inside the packaged task
  }
}

// ---------------------------------------------------------------------------
// Elastic membership (DESIGN.md §11)
// ---------------------------------------------------------------------------

ThreadWorld::RankState ThreadWorld::rank_state(int world_rank) const {
  AXONN_CHECK(world_rank >= 0 && world_rank < size_);
  if (!elastic_) return RankState::kActive;
  std::lock_guard<std::mutex> lock(membership_.mutex);
  return membership_.state[static_cast<std::size_t>(world_rank)];
}

std::vector<int> ThreadWorld::pending_dead_ranks() const {
  if (!elastic_) return {};
  std::lock_guard<std::mutex> lock(membership_.mutex);
  return membership_.pending_dead;
}

void ThreadWorld::heartbeat(int world_rank) {
  if (!elastic_) return;
  heartbeats_[static_cast<std::size_t>(world_rank)].store(
      steady_now_ns(), std::memory_order_relaxed);
}

std::int64_t ThreadWorld::heartbeat_age_ms(int world_rank) const {
  const std::int64_t beat =
      heartbeats_[static_cast<std::size_t>(world_rank)].load(
          std::memory_order_relaxed);
  return (steady_now_ns() - beat) / 1'000'000;
}

void ThreadWorld::declare_dead(int world_rank, const std::string& reason) {
  AXONN_CHECK_MSG(elastic_, "declare_dead requires WorldOptions::elastic");
  AXONN_CHECK(world_rank >= 0 && world_rank < size_);
  std::string abort_reason;
  {
    std::lock_guard<std::mutex> lock(membership_.mutex);
    RankState& state = membership_.state[static_cast<std::size_t>(world_rank)];
    if (state == RankState::kDead) return;  // idempotent: first report wins
    state = RankState::kDead;
    membership_.reason[static_cast<std::size_t>(world_rank)] = reason;
    membership_.pending_dead.push_back(world_rank);
    if (membership_.pending_dead.size() == 1) {
      // First death of this failure: the MTTR measurement anchor.
      last_failure_ns_.store(steady_now_ns(), std::memory_order_relaxed);
    }
    // Crash-during-recovery: a rank already waiting in reconfigure() no
    // longer counts toward the rendezvous.
    auto& arrived = membership_.arrived;
    arrived.erase(std::remove(arrived.begin(), arrived.end(), world_rank),
                  arrived.end());
    failure_pending_.store(true, std::memory_order_release);
    AXONN_LOG_WARN << "elastic: world rank " << world_rank
                   << " declared dead at epoch "
                   << epoch_.load(std::memory_order_relaxed) << " (" << reason
                   << ")";
    if (obs::metrics::enabled()) {
      static obs::metrics::Counter failures("elastic.rank_failures");
      failures.add();
    }
    abort_reason = maybe_complete_reconfiguration_locked();
    membership_.cv.notify_all();
  }
  if (!abort_reason.empty()) abort(abort_reason);
  // The failure broadcast: wake every blocked receive and progress worker so
  // in-flight collectives at this epoch fail fast with RankDeadError.
  for (auto& mailbox : mailboxes_) {
    std::lock_guard<std::mutex> lock(mailbox->mutex);
    mailbox->cv.notify_all();
  }
  for (auto& stream : streams_) {
    std::lock_guard<std::mutex> lock(stream->mutex);
    stream->cv.notify_all();
  }
}

std::string ThreadWorld::maybe_complete_reconfiguration_locked() {
  if (membership_.pending_dead.empty()) return {};
  int survivors = 0;
  for (const int r : membership_.active) {
    if (membership_.state[static_cast<std::size_t>(r)] == RankState::kActive) {
      ++survivors;
    }
  }
  if (survivors == 0) return "elastic: no surviving active ranks";
  if (static_cast<int>(membership_.arrived.size()) < survivors) return {};

  // Every survivor has abandoned its epoch-e work and arrived: perform the
  // transition to epoch e+1.
  const std::uint64_t old_epoch = epoch_.load(std::memory_order_relaxed);
  ReconfigurePlan plan;
  plan.epoch = old_epoch + 1;
  plan.old_active = membership_.active;
  std::vector<int> spares;
  for (int r = 0; r < size_; ++r) {
    if (membership_.state[static_cast<std::size_t>(r)] == RankState::kSpare) {
      spares.push_back(r);
    }
  }
  std::size_t next_spare = 0;
  for (std::size_t slot = 0; slot < membership_.active.size(); ++slot) {
    const int occupant = membership_.active[slot];
    if (membership_.state[static_cast<std::size_t>(occupant)] !=
        RankState::kDead) {
      plan.active.push_back(occupant);
      continue;
    }
    plan.dead_slots.push_back(static_cast<int>(slot));
    if (next_spare < spares.size()) {
      const int spare = spares[next_spare++];
      membership_.state[static_cast<std::size_t>(spare)] = RankState::kActive;
      plan.active.push_back(spare);
      plan.swapped_in.push_back(spare);
    } else {
      plan.shrunk = true;  // slot removed: survivors renumber densely
    }
  }
  if (plan.shrunk && !allow_shrink_) {
    return "elastic: rank failure with no spare available and shrink "
           "disallowed";
  }
  if (static_cast<int>(plan.active.size()) < min_active_) {
    return "elastic: surviving active set (" +
           std::to_string(plan.active.size()) + ") below min_active (" +
           std::to_string(min_active_) + ")";
  }

  // Epoch fence, transition side: purge queued traffic from the dead epoch —
  // undelivered ring segments of abandoned collectives — and the CRC-retained
  // copies that back them.
  std::uint64_t purged = 0;
  for (auto& mailbox : mailboxes_) {
    std::lock_guard<std::mutex> lock(mailbox->mutex);
    for (auto it = mailbox->queues.begin(); it != mailbox->queues.end();) {
      if (it->first.epoch <= old_epoch) {
        purged += it->second.size();
        it = mailbox->queues.erase(it);
      } else {
        ++it;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(retained_mutex_);
    for (auto it = retained_.begin(); it != retained_.end();) {
      if (it->first.key.epoch <= old_epoch) {
        it = retained_.erase(it);
      } else {
        ++it;
      }
    }
  }
  fenced_messages_.fetch_add(purged, std::memory_order_relaxed);
  {
    // Fresh communicator id for the new epoch: even identical (seq, src,
    // tag) coordinates can never collide across the fence.
    std::lock_guard<std::mutex> lock(registry_mutex_);
    membership_.active_comm_id = next_comm_id_++;
  }
  membership_.active = plan.active;
  membership_.last_plan = plan;
  membership_.pending_dead.clear();
  membership_.arrived.clear();
  // Fresh liveness clocks for the new epoch: a swapped-in spare was parked
  // (not beating), and survivors' clocks went stale during the rendezvous.
  const std::int64_t now = steady_now_ns();
  for (int r = 0; r < size_; ++r) {
    heartbeats_[static_cast<std::size_t>(r)].store(now,
                                                   std::memory_order_relaxed);
  }
  failure_pending_.store(false, std::memory_order_release);
  epoch_.store(plan.epoch, std::memory_order_release);
  AXONN_LOG_INFO << "elastic: reconfigured to epoch " << plan.epoch << " with "
                 << plan.active.size() << " active rank(s) ("
                 << plan.swapped_in.size() << " spare(s) swapped in"
                 << (plan.shrunk ? ", shrunk" : "") << "), " << purged
                 << " stale message(s) fenced";
  if (obs::metrics::enabled()) {
    static obs::metrics::Counter bumps("elastic.epoch_bumps");
    static obs::metrics::Counter fenced("elastic.fenced_messages");
    static obs::metrics::Counter swaps("elastic.spare_swaps");
    static obs::metrics::Counter shrinks("elastic.shrinks");
    bumps.add();
    if (purged > 0) fenced.add(static_cast<double>(purged));
    if (!plan.swapped_in.empty()) {
      swaps.add(static_cast<double>(plan.swapped_in.size()));
    }
    if (plan.shrunk) shrinks.add();
  }
  membership_.cv.notify_all();
  for (auto& mailbox : mailboxes_) {
    std::lock_guard<std::mutex> lock(mailbox->mutex);
    mailbox->cv.notify_all();
  }
  return {};
}

void ThreadWorld::throw_rank_dead_locked(std::uint64_t comm_epoch) {
  std::vector<int> dead = membership_.pending_dead;
  std::string detail;
  for (const int r : dead) {
    if (!detail.empty()) detail += "; ";
    detail += "rank " + std::to_string(r) + ": " +
              membership_.reason[static_cast<std::size_t>(r)];
  }
  if (detail.empty()) detail = "failure pending";
  throw RankDeadError(std::move(dead), comm_epoch, detail);
}

void ThreadWorld::check_elastic_health(std::uint64_t comm_epoch) {
  if (!elastic_) return;
  const std::uint64_t now_epoch = epoch_.load(std::memory_order_acquire);
  if (now_epoch > comm_epoch) throw EpochFencedError(comm_epoch, now_epoch);
  if (!failure_pending_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(membership_.mutex);
  if (!membership_.pending_dead.empty()) throw_rank_dead_locked(comm_epoch);
  // The failure resolved between the two loads: re-check for an epoch bump.
  const std::uint64_t after = epoch_.load(std::memory_order_acquire);
  if (after > comm_epoch) throw EpochFencedError(comm_epoch, after);
}

ThreadWorld::ReconfigurePlan ThreadWorld::reconfigure(int my_world_rank) {
  AXONN_CHECK_MSG(elastic_, "reconfigure requires WorldOptions::elastic");
  std::unique_lock<std::mutex> lock(membership_.mutex);
  const auto my = static_cast<std::size_t>(my_world_rank);
  if (membership_.state[my] == RankState::kDead) {
    throw_rank_dead_locked(epoch_.load(std::memory_order_relaxed));
  }
  const std::uint64_t target = epoch_.load(std::memory_order_relaxed) + 1;
  membership_.arrived.push_back(my_world_rank);
  const std::string abort_reason = maybe_complete_reconfiguration_locked();
  if (!abort_reason.empty()) {
    lock.unlock();
    abort(abort_reason);
    throw_aborted();
  }
  membership_.cv.wait(lock, [&] {
    return aborted_.load(std::memory_order_acquire) ||
           epoch_.load(std::memory_order_acquire) >= target ||
           membership_.state[my] == RankState::kDead;
  });
  if (aborted_.load(std::memory_order_acquire)) {
    lock.unlock();
    throw_aborted();
  }
  if (membership_.state[my] == RankState::kDead) {
    auto& arrived = membership_.arrived;
    arrived.erase(std::remove(arrived.begin(), arrived.end(), my_world_rank),
                  arrived.end());
    throw_rank_dead_locked(epoch_.load(std::memory_order_relaxed));
  }
  return membership_.last_plan;
}

std::optional<ThreadWorld::ReconfigurePlan> ThreadWorld::park_for_assignment(
    int my_world_rank) {
  AXONN_CHECK_MSG(elastic_,
                  "park_for_assignment requires WorldOptions::elastic");
  std::unique_lock<std::mutex> lock(membership_.mutex);
  const auto my = static_cast<std::size_t>(my_world_rank);
  membership_.cv.wait(lock, [&] {
    return aborted_.load(std::memory_order_acquire) || membership_.finished ||
           membership_.state[my] != RankState::kSpare;
  });
  if (aborted_.load(std::memory_order_acquire)) {
    lock.unlock();
    throw_aborted();
  }
  if (membership_.state[my] == RankState::kActive) return membership_.last_plan;
  return std::nullopt;  // run finished, or this spare was declared dead
}

void ThreadWorld::finish() {
  if (!elastic_) return;
  std::lock_guard<std::mutex> lock(membership_.mutex);
  membership_.finished = true;
  membership_.cv.notify_all();
}

std::unique_ptr<ThreadComm> ThreadWorld::active_comm(int my_world_rank) {
  AXONN_CHECK_MSG(elastic_, "active_comm requires WorldOptions::elastic");
  std::lock_guard<std::mutex> lock(membership_.mutex);
  int slot = -1;
  for (std::size_t i = 0; i < membership_.active.size(); ++i) {
    if (membership_.active[i] == my_world_rank) {
      slot = static_cast<int>(i);
      break;
    }
  }
  AXONN_CHECK_MSG(slot >= 0,
                  "active_comm: rank does not occupy an active slot");
  obs::set_thread_ident(my_world_rank, obs::StreamKind::kMain);
  const std::uint64_t e = epoch_.load(std::memory_order_acquire);
  return std::unique_ptr<ThreadComm>(
      new ThreadComm(this, membership_.active_comm_id, membership_.active,
                     slot, "active.e" + std::to_string(e), e));
}

void ThreadWorld::drain_progress(int my_world_rank) {
  // Sentinel every lane that has a worker (only the rank's own thread posts
  // to its lanes, so an unstarted lane cannot start concurrently), then wait
  // for all sentinels: tasks already queued on any lane run first.
  std::vector<std::future<void>> drained;
  for (int l = 0; l < kCommPriorityLanes; ++l) {
    const auto priority = static_cast<CommPriority>(l);
    {
      std::lock_guard<std::mutex> lock(lane(my_world_rank, priority).mutex);
      if (!lane(my_world_rank, priority).started) continue;
    }
    auto done = std::make_shared<std::promise<void>>();
    drained.push_back(done->get_future());
    enqueue_task(my_world_rank, priority, [done] { done->set_value(); });
  }
  for (auto& d : drained) d.wait();
}

void ThreadWorld::set_fault_note(const std::string& note) {
  std::lock_guard<std::mutex> lock(note_mutex_);
  fault_note_ = note;
}

std::string ThreadWorld::fault_note() const {
  std::lock_guard<std::mutex> lock(note_mutex_);
  return fault_note_;
}

// ---------------------------------------------------------------------------
// ThreadComm
// ---------------------------------------------------------------------------

ThreadComm::ThreadComm(ThreadWorld* world, std::uint64_t comm_id,
                       std::vector<int> members, int rank, std::string name,
                       std::uint64_t epoch)
    : world_(world),
      comm_id_(comm_id),
      members_(std::move(members)),
      rank_(rank),
      name_(std::move(name)),
      epoch_(epoch) {
  AXONN_CHECK(rank_ >= 0 && rank_ < static_cast<int>(members_.size()));
}

ThreadComm::Transport::Transport(ThreadComm* comm, std::uint64_t seq)
    : comm_(comm),
      seq_(seq),
      crc_(comm->world_->ring_crc_mode() != integrity::IntegrityMode::kOff),
      sent_(static_cast<std::size_t>(comm->size()), 0),
      rcvd_(static_cast<std::size_t>(comm->size()), 0) {}

void ThreadComm::Transport::send_to(int dest, std::span<const float> data) {
  ThreadWorld::MessageKey key{comm_->comm_id_, comm_->rank_, seq_,
                              comm_->epoch_};
  comm_->bump(&CommStats::point_to_point_calls);
  ThreadWorld* world = comm_->world_;
  const int src_world =
      comm_->members_[static_cast<std::size_t>(comm_->rank_)];
  world->heartbeat(src_world);
  const int dest_world = comm_->members_[static_cast<std::size_t>(dest)];
  const std::uint64_t msg_index = sent_[static_cast<std::size_t>(dest)]++;

  const mem::ArenaScope mem_scope(mem::Tag::kCommBuffers);
  FrameBuffer frame(data.begin(), data.end());
  std::uint64_t crc_bytes = 0;
  if (crc_) {
    frame.push_back(crc_stamp(data));
    crc_bytes = sizeof(float);
    if (world->ring_crc_mode() == integrity::IntegrityMode::kHeal) {
      // The clean stamped copy survives until the receiver's CRC verifies —
      // the retransmission source if the wire corrupts this transmission.
      world->retain({dest_world, key, msg_index}, frame);
    }
  }
  // Transit faults strike after stamping/retention: the hook mutates only
  // what travels, never the retained copy, exactly like a wire would.
  const ThreadWorld::WireContext ctx{comm_->comm_id_, seq_,       src_world,
                                     dest_world,     msg_index, /*attempt=*/0};
  world->apply_wire_hook(ctx, std::span<float>(frame.data(), data.size()));
  world->deliver(dest_world, key, std::move(frame));
  comm_->add_wire_bytes(data.size() * sizeof(float), crc_bytes);
}

void ThreadComm::Transport::recv_from(int src, std::span<float> out) {
  ThreadWorld::MessageKey key{comm_->comm_id_, src, seq_, comm_->epoch_};
  comm_->bump(&CommStats::point_to_point_calls);
  // A nested span per ring hop: receives are where a ring step blocks, so
  // these make the ring's pipeline structure visible in the trace.
  obs::SpanGuard span;
  if (obs::enabled()) {
    span.open(obs::kCatComm, "recv(src=" + std::to_string(src) + ")");
  }
  const int src_world = comm_->members_[static_cast<std::size_t>(src)];
  const int my_world =
      comm_->members_[static_cast<std::size_t>(comm_->rank_)];
  const ThreadWorld::RecvContext context{&comm_->name_, seq_, src_world};
  const std::uint64_t msg_index = rcvd_[static_cast<std::size_t>(src)]++;
  FrameBuffer frame = comm_->world_->collect(my_world, key, context);
  if (!crc_) {
    AXONN_CHECK_MSG(frame.size() == out.size(),
                    "ring message size mismatch — mismatched collective call?");
    std::copy(frame.begin(), frame.end(), out.begin());
    return;
  }

  AXONN_CHECK_MSG(frame.size() == out.size() + 1,
                  "ring message size mismatch — mismatched collective call?");
  ThreadWorld* world = comm_->world_;
  const bool heal =
      world->ring_crc_mode() == integrity::IntegrityMode::kHeal;
  const ThreadWorld::RetainedKey rkey{my_world, key, msg_index};
  integrity::Counters& ctr = integrity::counters();

  ctr.ring_crc_checks.fetch_add(1, std::memory_order_relaxed);
  comm_->bump(&CommStats::crc_checks);
  if (crc_frame_ok(frame)) {
    if (heal) world->release_retained(rkey);
    std::copy(frame.begin(), frame.end() - 1, out.begin());
    return;
  }

  // Corruption confirmed. One detection per corrupted message (retransmit
  // re-checks below do not re-count), so a fully healed run satisfies
  // sdc_recovered == sdc_detected.
  integrity::note_sdc_detected("ring_crc");
  if (obs::enabled()) {
    obs::instant(obs::kCatIntegrity,
                 "ring_crc_mismatch(" + comm_->name_ + " seq " +
                     std::to_string(seq_) + " src " +
                     std::to_string(src_world) + ")");
  }
  if (!heal) {
    throw DataCorruptionError(
        comm_->name_, seq_,
        "ring segment CRC mismatch (message " + std::to_string(msg_index) +
            " from world rank " + std::to_string(src_world) + ")",
        world->fault_note());
  }

  // NACK loop: pull fresh copies of the retained frame across the (still
  // faulty) wire until one verifies or the retry budget is spent.
  for (int attempt = 1; attempt <= world->crc_max_retries_; ++attempt) {
    ctr.ring_retransmits.fetch_add(1, std::memory_order_relaxed);
    comm_->bump(&CommStats::crc_retransmits);
    const ThreadWorld::WireContext ctx{comm_->comm_id_, seq_,      src_world,
                                       my_world,        msg_index, attempt};
    frame = world->retransmit(rkey, ctx);
    // Retransmitted bytes are integrity overhead, not modelled payload
    // traffic — they land in crc_bytes_sent (receiver-side attribution;
    // the "sender" executes synchronously on this thread).
    comm_->add_wire_bytes(0, frame.size() * sizeof(float));
    ctr.ring_crc_checks.fetch_add(1, std::memory_order_relaxed);
    comm_->bump(&CommStats::crc_checks);
    if (crc_frame_ok(frame)) {
      integrity::note_sdc_recovered("ring_crc");
      world->release_retained(rkey);
      std::copy(frame.begin(), frame.end() - 1, out.begin());
      return;
    }
  }
  throw DataCorruptionError(
      comm_->name_, seq_,
      "ring segment CRC mismatch persisted after " +
          std::to_string(world->crc_max_retries_) +
          " retransmits (message " + std::to_string(msg_index) +
          " from world rank " + std::to_string(src_world) + ")",
      world->fault_note());
}

std::uint64_t ThreadComm::next_seq() {
  // Issue-time abort check: once the world is aborted, every further
  // collective (blocking or nonblocking) fails fast instead of queueing work
  // that could never complete.
  world_->throw_if_aborted();
  if (world_->elastic()) {
    // Issuing a collective is progress (beats the liveness clock), and a
    // fail-fast point: a pending failure or an epoch bump makes every further
    // collective on this epoch's communicators pointless.
    world_->heartbeat(members_[static_cast<std::size_t>(rank_)]);
    world_->check_elastic_health(epoch_);
  }
  return seq_++;
}

void ThreadComm::add_wire_bytes(std::uint64_t bytes, std::uint64_t crc_bytes) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.wire_bytes_sent += bytes;
    stats_.crc_bytes_sent += crc_bytes;
  }
  if (obs::metrics::enabled()) {
    // Process-wide mirrors of the per-communicator CommStats (summed over
    // every communicator and rank in this process).
    static obs::metrics::Counter wire("comm.wire_bytes");
    static obs::metrics::Counter crc("comm.crc_bytes");
    wire.add(static_cast<double>(bytes));
    if (crc_bytes > 0) crc.add(static_cast<double>(crc_bytes));
  }
}

void ThreadComm::bump(std::uint64_t CommStats::*counter) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_.*counter += 1;
}

void ThreadComm::trace_wire_total() {
  if (!obs::enabled()) return;
  std::uint64_t total = 0;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    total = stats_.wire_bytes_sent;
  }
  obs::counter(obs::kCatComm, "wire_bytes(" + name_ + ")",
               static_cast<double>(total));
}

Request ThreadComm::post_async(const char* op, CommPriority priority,
                               std::function<void()> body) {
  // The task re-checks the abort flag when the progress worker picks it up:
  // a collective queued behind others when the world aborts must fail its
  // future promptly rather than run a ring algorithm whose peers are gone
  // (otherwise Request::wait() can hang on a dead world).
  ThreadWorld* world = world_;
  std::string label;
  if (obs::enabled()) label = std::string(op) + "(" + name_ + ")";
  auto task = std::make_shared<std::packaged_task<void()>>(
      [this, world, label = std::move(label), body = std::move(body)] {
        world->throw_if_aborted();
        {
          // Recorded on the progress thread: this is the comm-stream span
          // that overlaps compute spans on the rank's main thread.
          obs::SpanGuard span;
          if (!label.empty() && obs::enabled()) span.open(obs::kCatComm, label);
          body();
        }
        trace_wire_total();
      });
  std::shared_future<void> done = task->get_future().share();
  world_->enqueue_task(members_[static_cast<std::size_t>(rank_)], priority,
                       [task] { (*task)(); });
  return Request(std::move(done));
}

Request ThreadComm::run_on_stream(std::function<void()> fn,
                                  CommPriority priority) {
  // A rank-local host function on the lane: FIFO-ordered after collectives
  // already posted there (e.g. packing a weight block right after its
  // all-gather lands). No peer participates, so no sequence number.
  return post_async("host_fn", priority, std::move(fn));
}

namespace {
std::vector<std::size_t> equal_counts(int parts, std::size_t each) {
  return std::vector<std::size_t>(static_cast<std::size_t>(parts), each);
}

// Rank-invariant chunk-size hint for the segment model: per-rank counts
// differ in the v-variants, so the model must see the same N on every member
// rank (mismatched segment schedules would mismatch message counts).
std::size_t mean_count(std::span<const std::size_t> counts) {
  std::size_t total = 0;
  for (const std::size_t c : counts) total += c;
  return counts.empty() ? 0 : total / counts.size();
}
}  // namespace

void ThreadComm::all_reduce(std::span<float> buffer, ReduceOp op) {
  BlockingCollectiveScope telemetry(buffer.size() * sizeof(float));
  bump(&CommStats::all_reduce_calls);
  obs::SpanGuard span;
  open_comm_span(span, "all_reduce", name_);
  Transport t(this, next_seq());
  ring_all_reduce(t, buffer, op,
                  segment_for(buffer.size() / static_cast<std::size_t>(size())));
  span.close();
  trace_wire_total();
}

void ThreadComm::all_gather(std::span<const float> send,
                            std::span<float> recv) {
  AXONN_CHECK_MSG(recv.size() == send.size() * static_cast<std::size_t>(size()),
                  "all_gather recv size must be size() * send size");
  const auto counts = equal_counts(size(), send.size());
  BlockingCollectiveScope telemetry(send.size() * sizeof(float));
  bump(&CommStats::all_gather_calls);
  obs::SpanGuard span;
  open_comm_span(span, "all_gather", name_);
  Transport t(this, next_seq());
  ring_all_gatherv(t, send, recv, counts, segment_for(send.size()));
  span.close();
  trace_wire_total();
}

void ThreadComm::all_gatherv(std::span<const float> send, std::span<float> recv,
                             std::span<const std::size_t> recv_counts) {
  BlockingCollectiveScope telemetry(send.size() * sizeof(float));
  bump(&CommStats::all_gather_calls);
  obs::SpanGuard span;
  open_comm_span(span, "all_gatherv", name_);
  Transport t(this, next_seq());
  ring_all_gatherv(t, send, recv, recv_counts,
                   segment_for(mean_count(recv_counts)));
  span.close();
  trace_wire_total();
}

void ThreadComm::reduce_scatter(std::span<const float> send,
                                std::span<float> recv, ReduceOp op) {
  AXONN_CHECK_MSG(send.size() == recv.size() * static_cast<std::size_t>(size()),
                  "reduce_scatter send size must be size() * recv size");
  const auto counts = equal_counts(size(), recv.size());
  BlockingCollectiveScope telemetry(send.size() * sizeof(float));
  bump(&CommStats::reduce_scatter_calls);
  obs::SpanGuard span;
  open_comm_span(span, "reduce_scatter", name_);
  Transport t(this, next_seq());
  ring_reduce_scatterv(t, send, recv, counts, op, segment_for(recv.size()));
  span.close();
  trace_wire_total();
}

void ThreadComm::reduce_scatterv(std::span<const float> send,
                                 std::span<float> recv,
                                 std::span<const std::size_t> counts,
                                 ReduceOp op) {
  BlockingCollectiveScope telemetry(send.size() * sizeof(float));
  bump(&CommStats::reduce_scatter_calls);
  obs::SpanGuard span;
  open_comm_span(span, "reduce_scatterv", name_);
  Transport t(this, next_seq());
  ring_reduce_scatterv(t, send, recv, counts, op,
                       segment_for(mean_count(counts)));
  span.close();
  trace_wire_total();
}

void ThreadComm::broadcast(std::span<float> buffer, int root) {
  BlockingCollectiveScope telemetry(buffer.size() * sizeof(float));
  bump(&CommStats::broadcast_calls);
  obs::SpanGuard span;
  open_comm_span(span, "broadcast", name_);
  Transport t(this, next_seq());
  tree_broadcast(t, buffer, root);
  span.close();
  trace_wire_total();
}

void ThreadComm::barrier() {
  BlockingCollectiveScope telemetry(sizeof(float));
  float token = 0.0f;
  obs::SpanGuard span;
  open_comm_span(span, "barrier", name_);
  Transport t(this, next_seq());
  ring_all_reduce(t, std::span<float>(&token, 1), ReduceOp::kSum);
}

Request ThreadComm::iall_reduce(std::span<float> buffer, ReduceOp op,
                                CommPriority priority) {
  bump(&CommStats::all_reduce_calls);
  const std::uint64_t seq = next_seq();
  // Ring all-reduce moves one 1/p chunk per hop — the model's N.
  const std::size_t seg =
      segment_for(buffer.size() / static_cast<std::size_t>(size()));
  return post_async("iall_reduce", priority, [this, buffer, op, seq, seg] {
    Transport t(this, seq);
    ring_all_reduce(t, buffer, op, seg);
  });
}

Request ThreadComm::iall_gather(std::span<const float> send,
                                std::span<float> recv, CommPriority priority) {
  AXONN_CHECK_MSG(recv.size() == send.size() * static_cast<std::size_t>(size()),
                  "iall_gather recv size must be size() * send size");
  bump(&CommStats::all_gather_calls);
  const std::uint64_t seq = next_seq();
  auto counts = equal_counts(size(), send.size());
  const std::size_t seg = segment_for(send.size());
  return post_async(
      "iall_gather", priority,
      [this, send, recv, counts = std::move(counts), seq, seg] {
        Transport t(this, seq);
        ring_all_gatherv(t, send, recv, counts, seg);
      });
}

Request ThreadComm::iall_gatherv(std::span<const float> send,
                                 std::span<float> recv,
                                 std::span<const std::size_t> recv_counts,
                                 CommPriority priority) {
  bump(&CommStats::all_gather_calls);
  const std::uint64_t seq = next_seq();
  std::vector<std::size_t> counts(recv_counts.begin(), recv_counts.end());
  const std::size_t seg = segment_for(mean_count(recv_counts));
  return post_async(
      "iall_gatherv", priority,
      [this, send, recv, counts = std::move(counts), seq, seg] {
        Transport t(this, seq);
        ring_all_gatherv(t, send, recv, counts, seg);
      });
}

Request ThreadComm::ireduce_scatter(std::span<const float> send,
                                    std::span<float> recv, ReduceOp op,
                                    CommPriority priority) {
  AXONN_CHECK_MSG(send.size() == recv.size() * static_cast<std::size_t>(size()),
                  "ireduce_scatter send size must be size() * recv size");
  bump(&CommStats::reduce_scatter_calls);
  const std::uint64_t seq = next_seq();
  auto counts = equal_counts(size(), recv.size());
  const std::size_t seg = segment_for(recv.size());
  return post_async(
      "ireduce_scatter", priority,
      [this, send, recv, counts = std::move(counts), op, seq, seg] {
        Transport t(this, seq);
        ring_reduce_scatterv(t, send, recv, counts, op, seg);
      });
}

Request ThreadComm::ireduce_scatterv(std::span<const float> send,
                                     std::span<float> recv,
                                     std::span<const std::size_t> counts_in,
                                     ReduceOp op, CommPriority priority) {
  bump(&CommStats::reduce_scatter_calls);
  const std::uint64_t seq = next_seq();
  std::vector<std::size_t> counts(counts_in.begin(), counts_in.end());
  const std::size_t seg = segment_for(mean_count(counts_in));
  return post_async(
      "ireduce_scatterv", priority,
      [this, send, recv, counts = std::move(counts), op, seq, seg] {
        Transport t(this, seq);
        ring_reduce_scatterv(t, send, recv, counts, op, seg);
      });
}

std::unique_ptr<Communicator> ThreadComm::split(int color, int key) {
  // Exchange (color, key) across the parent communicator. Encoded as floats;
  // exact for |values| < 2^24, far beyond any grid dimension in practice.
  const float mine[2] = {static_cast<float>(color), static_cast<float>(key)};
  std::vector<float> all(static_cast<std::size_t>(size()) * 2);
  all_gather(std::span<const float>(mine, 2), all);

  const std::uint64_t generation = split_generation_++;
  if (color < 0) {
    return nullptr;  // this rank opted out (MPI_UNDEFINED semantics)
  }

  // Membership: ranks with my colour, ordered by (key, parent rank).
  struct Member {
    int key;
    int parent_rank;
  };
  std::vector<Member> group;
  for (int r = 0; r < size(); ++r) {
    const auto c = static_cast<int>(all[static_cast<std::size_t>(r) * 2]);
    const auto k = static_cast<int>(all[static_cast<std::size_t>(r) * 2 + 1]);
    if (c == color) group.push_back(Member{k, r});
  }
  std::stable_sort(group.begin(), group.end(), [](const Member& a, const Member& b) {
    return a.key != b.key ? a.key < b.key : a.parent_rank < b.parent_rank;
  });

  std::vector<int> members;
  members.reserve(group.size());
  int my_new_rank = -1;
  for (std::size_t i = 0; i < group.size(); ++i) {
    members.push_back(members_[static_cast<std::size_t>(group[i].parent_rank)]);
    if (group[i].parent_rank == rank_) my_new_rank = static_cast<int>(i);
  }
  AXONN_CHECK(my_new_rank >= 0);

  const std::uint64_t id = world_->subcomm_id(comm_id_, generation, color);
  // Children inherit the parent's epoch stamp: a split of an active-epoch
  // communicator is fenced together with its parent.
  return std::unique_ptr<Communicator>(new ThreadComm(
      world_, id, std::move(members), my_new_rank,
      name_ + "/split" + std::to_string(generation) + "." + std::to_string(color),
      epoch_));
}

const CommStats& ThreadComm::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_snapshot_ = stats_;
  return stats_snapshot_;
}

void ThreadComm::reset_stats() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_ = CommStats{};
}

// ---------------------------------------------------------------------------
// run_ranks
// ---------------------------------------------------------------------------

void run_ranks(int nranks, const std::function<void(Communicator&)>& body,
               const WorldOptions& options) {
  ThreadWorld world(nranks, options);
  std::mutex error_mutex;
  std::exception_ptr first_error;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        auto comm = world.world_comm(r);
        body(*comm);
      } catch (const std::exception& e) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        world.abort("rank " + std::to_string(r) + " threw: " + e.what());
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        world.abort("rank " + std::to_string(r) + " threw");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace axonn::comm
