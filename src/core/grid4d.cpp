#include "axonn/core/grid4d.hpp"

#include "axonn/base/error.hpp"

namespace axonn::core {

Grid4D::Grid4D(comm::Communicator& world, const sim::GridShape& shape)
    : world_(world), shape_(shape) {
  AXONN_CHECK_MSG(shape.total() == world.size(),
                  "grid shape " + shape.to_string() + " does not match " +
                      std::to_string(world.size()) + " ranks");
  const int r = world.rank();
  x_ = r % shape.gx;
  y_ = (r / shape.gx) % shape.gy;
  z_ = (r / (shape.gx * shape.gy)) % shape.gz;
  d_ = r / (shape.gx * shape.gy * shape.gz);

  // Colour = the flattened coordinates of the *other* three dimensions, so
  // ranks differing only in the split dimension share a group. Key = the
  // coordinate along the split dimension, preserving coordinate order.
  const int cx = y_ + shape.gy * (z_ + shape.gz * d_);
  x_comm_ = world.split(cx, x_);
  const int cy = x_ + shape.gx * (z_ + shape.gz * d_);
  y_comm_ = world.split(cy, y_);
  const int cz = x_ + shape.gx * (y_ + shape.gy * d_);
  z_comm_ = world.split(cz, z_);
  const int cd = x_ + shape.gx * (y_ + shape.gy * z_);
  data_comm_ = world.split(cd, d_);

  AXONN_CHECK(x_comm_ && y_comm_ && z_comm_ && data_comm_);
  AXONN_CHECK(x_comm_->size() == shape.gx);
  AXONN_CHECK(y_comm_->size() == shape.gy);
  AXONN_CHECK(z_comm_->size() == shape.gz);
  AXONN_CHECK(data_comm_->size() == shape.gdata);
  AXONN_CHECK(x_comm_->rank() == x_);
  AXONN_CHECK(y_comm_->rank() == y_);
  AXONN_CHECK(z_comm_->rank() == z_);
  AXONN_CHECK(data_comm_->rank() == d_);
}

comm::CommStats Grid4D::total_stats() const {
  comm::CommStats total;
  total += x_comm_->stats();
  total += y_comm_->stats();
  total += z_comm_->stats();
  total += data_comm_->stats();
  return total;
}

void Grid4D::reset_stats() {
  x_comm_->reset_stats();
  y_comm_->reset_stats();
  z_comm_->reset_stats();
  data_comm_->reset_stats();
}

}  // namespace axonn::core
