#include "axonn/core/mlp.hpp"

#include <span>

#include "axonn/base/error.hpp"
#include "axonn/base/trace.hpp"
#include "axonn/tensor/ops.hpp"

namespace axonn::core {

TensorParallelMLP::TensorParallelMLP(Grid4D& grid,
                                     const std::vector<std::size_t>& dims,
                                     std::uint64_t seed, MLPOptions options)
    : grid_(grid), options_(options) {
  AXONN_CHECK_MSG(dims.size() >= 2, "an MLP needs at least one layer");
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    FCOptions fc;
    fc.transposed = options.first_layer_transposed ? (i % 2 == 0) : (i % 2 == 1);
    fc.mixed_precision = options.mixed_precision;
    fc.overlap_input_grad_all_reduce = options.overlap_input_grad_all_reduce;
    fc.overlap_weight_grad_reduce_scatter =
        options.overlap_weight_grad_reduce_scatter;
    fc.kernel_tuning = options.kernel_tuning;
    fc.gemm_backend = options.gemm_backend;
    fc.init_std = options.init_std;
    layers_.push_back(std::make_unique<TensorParallelFC>(
        grid, dims[i], dims[i + 1], hash_combine(seed, i), fc));
  }
  if (options.validate_comm_model) {
    checker_ = std::make_unique<CommModelChecker>(
        grid, options.comm_model_tolerance);
  }
}

Matrix TensorParallelMLP::forward(const Matrix& input_local) {
  pre_activations_.assign(layers_.size(), Matrix());
  if (checker_) {
    // One window per gradient step: opened here, closed (and compared) in
    // sync_gradients_data_parallel(); repeated forwards (microbatches)
    // accumulate expectations into the open window.
    if (!checker_->active()) checker_->begin();
    const auto group_rows =
        input_local.rows() * static_cast<std::size_t>(grid_.shape().gz);
    const bool sync_data = grid_.shape().gdata > 1;
    for (const auto& layer : layers_) {
      checker_->expect(
          predicted_layer_wire_bytes(*layer, group_rows, sync_data));
    }
  }
  Matrix activation = input_local;
  if (options_.overlap_weight_all_gather) {
    // OAG: the first gather cannot hide behind anything, but every later
    // layer's gather is enqueued while the preceding layer computes. The
    // enqueue order follows the (topologically sorted) execution order.
    layers_.front()->begin_weight_gather();
  }
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (options_.overlap_weight_all_gather && i + 1 < layers_.size()) {
      layers_[i + 1]->begin_weight_gather();
    }
    Matrix out = layers_[i]->forward(activation);
    if (options_.gelu_between_layers && i + 1 < layers_.size()) {
      obs::SpanGuard span(obs::kCatCompute, "gelu");
      pre_activations_[i] = out;
      activation = gelu(out);
    } else {
      activation = std::move(out);
    }
  }
  return activation;
}

Matrix TensorParallelMLP::backward(const Matrix& grad_output_local) {
  Matrix grad = grad_output_local;
  for (std::size_t idx = layers_.size(); idx-- > 0;) {
    if (options_.gelu_between_layers && idx + 1 < layers_.size()) {
      obs::SpanGuard span(obs::kCatCompute, "gelu_bwd");
      grad = gelu_backward(grad, pre_activations_[idx]);
    }
    grad = layers_[idx]->backward(grad);
  }
  return grad;
}

void TensorParallelMLP::sync_gradients_data_parallel() {
  for (auto& layer : layers_) {
    layer->finish_gradients();
  }
  if (grid_.shape().gdata > 1) {
    const float inv_groups = 1.0f / static_cast<float>(grid_.shape().gdata);
    for (auto& layer : layers_) {
      // The paper issues one all-reduce per gradient buffer at batch end.
      Matrix& grad = layer->mutable_weight_grad_shard();
      grid_.data_comm().all_reduce(std::span<float>(grad.storage()),
                                   comm::ReduceOp::kSum);
      grad.scale_inplace(inv_groups);
    }
  }
  if (checker_ && checker_->active()) checker_->finish();
}

void TensorParallelMLP::zero_grad() {
  for (auto& layer : layers_) layer->zero_grad();
}

void TensorParallelMLP::apply_sgd(float lr) {
  for (auto& layer : layers_) layer->apply_sgd(lr);
}

}  // namespace axonn::core
