#pragma once

// The 4D virtual process grid (§V-A/§V-B).
//
// G ranks are arranged as Gx x Gy x Gz x Gdata with X innermost: rank r has
// coordinates
//   x = r % Gx, y = (r/Gx) % Gy, z = (r/(Gx*Gy)) % Gz, d = r/(Gx*Gy*Gz).
// This matches the paper's hierarchical placement assumption (X groups are
// consecutive ranks, so they land inside a node first). Grid4D splits the
// world communicator into the four families of process groups Algorithm 1
// communicates over; each rank holds its own Grid4D instance.

#include <memory>

#include "axonn/comm/communicator.hpp"
#include "axonn/sim/grid_shape.hpp"

namespace axonn::core {

class Grid4D {
 public:
  /// Collective over `world`: every rank of the world communicator must
  /// construct the Grid4D with the same shape. shape.total() must equal
  /// world.size().
  Grid4D(comm::Communicator& world, const sim::GridShape& shape);

  const sim::GridShape& shape() const { return shape_; }

  int x() const { return x_; }
  int y() const { return y_; }
  int z() const { return z_; }
  int d() const { return d_; }

  /// Process-group communicators. Size-1 dimensions still yield a valid
  /// (single-member) communicator so Algorithm 1 needs no special cases.
  comm::Communicator& x_comm() { return *x_comm_; }
  comm::Communicator& y_comm() { return *y_comm_; }
  comm::Communicator& z_comm() { return *z_comm_; }
  comm::Communicator& data_comm() { return *data_comm_; }

  comm::Communicator& world() { return world_; }

  /// Combined wire traffic of the four sub-communicators on this rank.
  comm::CommStats total_stats() const;
  void reset_stats();

 private:
  comm::Communicator& world_;
  sim::GridShape shape_;
  int x_ = 0, y_ = 0, z_ = 0, d_ = 0;
  std::unique_ptr<comm::Communicator> x_comm_;
  std::unique_ptr<comm::Communicator> y_comm_;
  std::unique_ptr<comm::Communicator> z_comm_;
  std::unique_ptr<comm::Communicator> data_comm_;
};

}  // namespace axonn::core
