#pragma once

// Automated BLAS kernel tuning (§V-C), over kernel modes AND backends.
//
// Every product C = op_A(A) x op_B(B) can be computed by any of the three
// kernel modes by materializing operand transposes: e.g. an NN product can
// run through the TN kernel as gemm_TN(A^T_copy, B). BLAS libraries
// optimize the modes unevenly — the paper found a rocBLAS TN kernel at 6%
// of peak — so AxoNN times all three variants during the first batch and
// locks in the fastest for the rest of training. This tuner does the same
// with the real CPU kernels, and additionally times each registered GEMM
// backend (see GemmBackend): the reference scalar kernel in its three
// transpose-copy variants, plus the tiled packed-panel backend, which
// resolves transposition at pack time and therefore needs no copies. The
// winner — a (kernel mode, backend) pair — runs thereafter.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "axonn/tensor/gemm.hpp"
#include "axonn/tensor/gemm_tiled.hpp"
#include "axonn/tensor/matrix.hpp"

namespace axonn::core {

class KernelTuner {
 public:
  struct Key {
    GemmMode semantic_mode;  ///< the product the caller wants
    std::size_t m, n, k;
    friend auto operator<=>(const Key&, const Key&) = default;
  };

  struct Choice {
    GemmMode kernel_mode = GemmMode::kNN;  ///< the kernel actually run
    GemmBackend backend = GemmBackend::kReference;  ///< the backend run
    double measured_seconds = 0;           ///< winner's time
    double default_seconds = 0;            ///< semantic (untuned) mode's time
    double speedup() const {
      return measured_seconds > 0 ? default_seconds / measured_seconds : 1.0;
    }
  };

  /// `mixed_precision` selects the bf16 kernels. Numerical contract: all
  /// reference-backend variants share one i-l-j loop nest whose summation
  /// order over the contraction dimension is layout-independent, so they are
  /// bit-identical to the untuned kernel; the tiled backend accumulates each
  /// k-slab in registers before adding it to C, so a tiled winner matches
  /// within accumulation-order tolerance instead. With tuning disabled the
  /// layer runs the reference kernel unchanged (bit-identical to the seed).
  explicit KernelTuner(int timing_repeats = 3, bool mixed_precision = false)
      : timing_repeats_(timing_repeats), mixed_precision_(mixed_precision) {}

  /// Computes op(A) x op(B) under `semantic_mode`. The first call for a
  /// given (mode, shape) times every variant and records the winner; later
  /// calls run the winner directly. `packed_b` optionally supplies a
  /// pre-packed op(B) (a layer's pack-once weight panel cache): the tiled
  /// variant is then timed and executed through the prepacked path, so the
  /// pack cost — amortized across batches in the hot path — is not charged
  /// per call.
  Matrix run(GemmMode semantic_mode, const Matrix& a, const Matrix& b,
             const PackedB* packed_b = nullptr);

  /// Times all variants for this product without caching.
  Choice tune(GemmMode semantic_mode, const Matrix& a, const Matrix& b,
              const PackedB* packed_b = nullptr) const;

  /// The decision table built so far (key -> winning kernel).
  const std::map<Key, Choice>& decisions() const { return decisions_; }

  /// The cached decision for (mode, m, n, k), or nullptr before the first
  /// batch tunes it. Lets callers prepare backend-specific resources (e.g.
  /// pack weight panels) only when the tiled backend won or might win.
  const Choice* find_decision(GemmMode semantic_mode, std::size_t m,
                              std::size_t n, std::size_t k) const;

  /// One-line summary per decision, in the spirit of the paper's §V-C
  /// anecdote ("TN -> NN, 8x faster").
  std::vector<std::string> report() const;

 private:
  /// Executes the product with a specific (kernel mode, backend) variant,
  /// materializing transposed copies as needed so the math is unchanged.
  Matrix run_with_kernel(GemmMode semantic_mode, GemmMode kernel_mode,
                         GemmBackend backend, const Matrix& a, const Matrix& b,
                         const PackedB* packed_b) const;

  double time_variant(GemmMode semantic_mode, GemmMode kernel_mode,
                      GemmBackend backend, const Matrix& a, const Matrix& b,
                      const PackedB* packed_b) const;

  /// True when `packed_b` is usable for this product (matching op(B) shape
  /// and precision).
  bool pack_usable(const PackedB* packed_b, const GemmShape& shape) const;

  int timing_repeats_;
  bool mixed_precision_ = false;
  std::map<Key, Choice> decisions_;
};

}  // namespace axonn::core
