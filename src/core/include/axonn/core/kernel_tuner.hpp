#pragma once

// Automated BLAS kernel tuning (§V-C).
//
// Every product C = op_A(A) x op_B(B) can be computed by any of the three
// kernel modes by materializing operand transposes: e.g. an NN product can
// run through the TN kernel as gemm_TN(A^T_copy, B). BLAS libraries
// optimize the modes unevenly — the paper found a rocBLAS TN kernel at 6%
// of peak — so AxoNN times all three variants during the first batch and
// locks in the fastest for the rest of training. This tuner does the same
// with the real CPU kernels: it measures each variant (including the
// transpose-copy cost it incurs) and executes the winner thereafter.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "axonn/tensor/gemm.hpp"
#include "axonn/tensor/matrix.hpp"

namespace axonn::core {

class KernelTuner {
 public:
  struct Key {
    GemmMode semantic_mode;  ///< the product the caller wants
    std::size_t m, n, k;
    friend auto operator<=>(const Key&, const Key&) = default;
  };

  struct Choice {
    GemmMode kernel_mode = GemmMode::kNN;  ///< the kernel actually run
    double measured_seconds = 0;           ///< winner's time
    double default_seconds = 0;            ///< semantic (untuned) mode's time
    double speedup() const {
      return measured_seconds > 0 ? default_seconds / measured_seconds : 1.0;
    }
  };

  /// `mixed_precision` selects the bf16 kernels (gemm_bf16). The tuned
  /// kernel choice never changes results in either precision: the kernels
  /// share one i-l-j loop nest whose summation order over the contraction
  /// dimension is layout-independent, so every variant is bit-identical.
  explicit KernelTuner(int timing_repeats = 3, bool mixed_precision = false)
      : timing_repeats_(timing_repeats), mixed_precision_(mixed_precision) {}

  /// Computes op(A) x op(B) under `semantic_mode`. The first call for a
  /// given (mode, shape) times all three kernel variants and records the
  /// winner; later calls run the winner directly.
  Matrix run(GemmMode semantic_mode, const Matrix& a, const Matrix& b);

  /// Times the three variants for this product without caching.
  Choice tune(GemmMode semantic_mode, const Matrix& a, const Matrix& b) const;

  /// The decision table built so far (key -> winning kernel).
  const std::map<Key, Choice>& decisions() const { return decisions_; }

  /// One-line summary per decision, in the spirit of the paper's §V-C
  /// anecdote ("TN -> NN, 8x faster").
  std::vector<std::string> report() const;

 private:
  /// Executes the product with a specific kernel mode, materializing
  /// transposed copies as needed so the math is unchanged.
  Matrix run_with_kernel(GemmMode semantic_mode, GemmMode kernel_mode,
                         const Matrix& a, const Matrix& b) const;

  double time_variant(GemmMode semantic_mode, GemmMode kernel_mode,
                      const Matrix& a, const Matrix& b) const;

  int timing_repeats_;
  bool mixed_precision_ = false;
  std::map<Key, Choice> decisions_;
};

}  // namespace axonn::core
