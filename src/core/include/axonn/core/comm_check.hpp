#pragma once

// Runtime cross-validation of the communication performance model.
//
// The paper validates its §V-B model against observed runs (Fig. 2); this
// header does the same continuously: predicted_layer_wire_bytes() evaluates
// Eqs. 1–5 for a live TensorParallelFC, and CommModelChecker compares the
// accumulated predictions against the wire_bytes_sent deltas the ThreadComm
// runtime actually counted on the four grid communicators, logging any
// divergence (and emitting trace counters under the "commcheck" category).
//
// Granularity: one checker window should span whole iterations (all layers,
// forward + backward + gradient sync). Per-layer windows are not meaningful
// under OAG, where layer N+1's prefetched weight all-gather executes on the
// shared z communicator while layer N is still computing.

#include <cstddef>

#include "axonn/comm/communicator.hpp"
#include "axonn/core/fc_layer.hpp"
#include "axonn/core/grid4d.hpp"

namespace axonn::core {

/// Predicted fp32 wire bytes per rank, split by grid dimension.
struct LayerWireBytes {
  double x = 0, y = 0, z = 0, data = 0;

  LayerWireBytes& operator+=(const LayerWireBytes& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    data += o.data;
    return *this;
  }
  double total() const { return x + y + z + data; }
};

/// Eqs. 1–5 for one fwd+bwd of `fc` with `group_rows` input rows in this
/// data-parallel group (the paper's m = batch_tokens / Gdata). The model's
/// row/column groups map onto grid dimensions per the layer's transposed
/// flag (row = Y, col = X; swapped when transposed), and the model's bf16
/// element size is rescaled to the runtime's fp32 floats. Eq. 5 (the
/// data-parallel gradient all-reduce share) is included iff
/// `include_data_grad_sync` — set it when the measurement window covers the
/// data-parallel gradient synchronization.
LayerWireBytes predicted_layer_wire_bytes(const TensorParallelFC& fc,
                                          std::size_t group_rows,
                                          bool include_data_grad_sync);

/// Measures wire_bytes_sent deltas of the four grid communicators across a
/// begin()..finish() window and compares them with accumulated expect()
/// predictions.
class CommModelChecker {
 public:
  struct Result {
    LayerWireBytes predicted;
    LayerWireBytes measured;
    double worst_rel_error = 0;  ///< max over dimensions with traffic
    bool ok = true;              ///< every dimension within tolerance
  };

  explicit CommModelChecker(Grid4D& grid, double tolerance = 0.02)
      : grid_(grid), tolerance_(tolerance) {}

  /// Opens a measurement window: snapshots the communicators' byte counters
  /// and clears accumulated expectations.
  void begin();
  bool active() const { return active_; }

  /// Accumulates a prediction for work executing inside the open window.
  void expect(const LayerWireBytes& bytes);

  /// Closes the window: compares measured deltas against the expectation,
  /// warns (AXONN_LOG_WARN) on divergence beyond the tolerance, and emits
  /// per-dimension relative errors as trace counters.
  Result finish();

  /// The most recent finish()ed result.
  const Result& last_result() const { return last_; }

 private:
  Grid4D& grid_;
  double tolerance_;
  bool active_ = false;
  LayerWireBytes expected_;
  std::uint64_t base_x_ = 0, base_y_ = 0, base_z_ = 0, base_data_ = 0;
  Result last_;
};

}  // namespace axonn::core
