#pragma once

// Tensor-parallel fully-connected layer — Algorithm 1 of the paper, executed
// on real data over the communicator runtime.
//
// The weight W (in_features x out_features) is 2D-decomposed over the
// row-group x column-group planes of the 3D grid and further sharded along
// Z (the memory-saving modification of Agarwal's algorithm). The input I is
// row-sharded over Z and column-sharded over the row group; it is
// replicated across the column group. Forward:
//     W_block = all-gather_z(W_shard)            (line 2)
//     O_hat   = I_local x W_block                (line 3)
//     O       = all-reduce_row(O_hat)            (line 4)
// Backward:
//     dI_hat  = dO x W_block^T                   (line 11)
//     dI      = all-reduce_col(dI_hat)           (line 12; overlappable, OAR)
//     dW_hat  = I_local^T x dO                   (line 13)
//     dW_shard+= reduce-scatter_z(dW_hat)        (line 14; deferrable, ORS)
//
// For 'transposed' layers (every other FC layer, §V-A) the row group is the
// X dimension and the column group is Y; otherwise row = Y, column = X.
// The forward weight all-gather can be issued ahead of time with
// begin_weight_gather() (OAG).

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "axonn/base/rng.hpp"
#include "axonn/core/grid4d.hpp"
#include "axonn/core/kernel_tuner.hpp"
#include "axonn/integrity/abft.hpp"
#include "axonn/tensor/gemm.hpp"
#include "axonn/tensor/gemm_tiled.hpp"
#include "axonn/tensor/matrix.hpp"

namespace axonn::core {

struct FCOptions {
  bool transposed = false;
  /// Round GEMM operands through bf16 (mixed-precision emulation).
  bool mixed_precision = false;
  /// OAR: overlap the dI all-reduce with the dW GEMM.
  bool overlap_input_grad_all_reduce = false;
  /// ORS: issue the dW reduce-scatter asynchronously; completed only at
  /// finish_gradients().
  bool overlap_weight_grad_reduce_scatter = false;
  /// §V-C kernel tuning: route the layer's three GEMMs (NN forward, NT dI,
  /// TN dW) through a per-layer KernelTuner that times all (kernel mode x
  /// backend) variants on the first batch and locks in the fastest.
  /// Respects mixed_precision. Reference-backend variants are bit-identical
  /// to the untuned kernel; a tiled-backend winner matches within
  /// accumulation-order tolerance (see KernelTuner).
  bool kernel_tuning = false;
  /// Timing repeats per variant when tuning (first batch only).
  int kernel_tuner_repeats = 3;
  /// GEMM backend when kernel_tuning is off: kReference runs the seed's
  /// scalar kernel unchanged (bit-identical results); kTiled runs the
  /// packed-panel backend, reusing the layer's pack-once weight panel cache
  /// for the forward (NN) and dI (NT) products.
  GemmBackend gemm_backend = GemmBackend::kReference;
  /// Intra-rank GEMM worker lanes for this layer's three GEMMs: a
  /// GemmThreadScope installed around multiply() while > 0, overriding the
  /// ambient budget (WorldOptions::gemm_threads / AXONN_GEMM_THREADS).
  /// 0 (default) defers to the ambient budget. Bitwise-neutral — the tiled
  /// backend's output is identical at any lane count (DESIGN.md §13).
  int gemm_threads = 0;
  /// Weight init: N(0, init_std^2), identical on every rank by seed.
  float init_std = 0.02f;
  /// ABFT (Huang–Abraham checksum) verification around the layer's three
  /// GEMMs — forward NN, backward-dI NT, backward-dW TN — covering every
  /// execution path (reference, tiled, prepacked panels, tuner-selected,
  /// bf16). abft.mode is resolved against the AXONN_INTEGRITY override per
  /// call; kHeal recomputes a mismatching GEMM in place of failing. See
  /// integrity/abft.hpp and DESIGN.md §9.
  integrity::AbftOptions abft;
};

class TensorParallelFC {
 public:
  /// Collective over the grid: all ranks construct with identical
  /// arguments. `seed` determines the (globally consistent) full weight.
  TensorParallelFC(Grid4D& grid, std::size_t in_features,
                   std::size_t out_features, std::uint64_t seed,
                   FCOptions options = {});

  std::size_t in_features() const { return in_features_; }
  std::size_t out_features() const { return out_features_; }
  const FCOptions& options() const { return options_; }
  const sim::GridShape& grid_shape() const { return grid_.shape(); }

  /// Local tile sizes this rank works with.
  std::size_t in_local() const { return in_range_.size(); }
  std::size_t out_local() const { return out_range_.size(); }

  /// Column range of the global input this rank consumes / produces.
  Range input_col_range() const { return in_range_; }
  Range output_col_range() const { return out_range_; }

  /// Extracts this rank's local input block from a full (rows x in) matrix
  /// whose rows belong to this data-parallel group.
  Matrix scatter_input(const Matrix& full_input) const;
  /// Row range of the group input this rank processes (Z sharding).
  Range input_row_range(std::size_t total_rows) const;

  /// OAG: start the weight all-gather for the next forward pass. Idempotent;
  /// forward() consumes the pending gather. Safe to interleave with weight
  /// updates: the gather reads a snapshot of the shard taken here (on the
  /// calling thread), lands in a prefetch buffer that is never the in-use
  /// cache, and is version-checked at consumption — a gather made stale by
  /// invalidate_weight_cache() is drained, discarded and reissued rather
  /// than adopted. Collective over the Z group: every member rank must call
  /// it in the same order with the same invalidation history (true for the
  /// SPMD training loop).
  void begin_weight_gather();

  /// Algorithm 1 lines 1-7. input_local: (m_local x in_local).
  Matrix forward(const Matrix& input_local);

  /// Algorithm 1 lines 9-16. Returns dL/dI_local; accumulates the weight
  /// gradient shard. Requires a preceding forward() (caches I and W).
  ///
  /// OAG-in-backward audit: the paper prefetches weight all-gathers in the
  /// backward pass too, because its implementation frees the gathered W
  /// block after forward to save memory. This runtime keeps the gathered
  /// block cached across forward+backward (weight_cache_valid_), so
  /// backward never re-gathers — there is no communication to prefetch and
  /// the optimization is intentionally absent. If a future memory
  /// optimization drops the cache after forward, backward must gain a
  /// begin_weight_gather() prefetch driven by the *next* layer's backward
  /// (mirroring mlp.cpp's forward-time OAG). Asserted by the
  /// BackwardIssuesNoWeightGather test.
  Matrix backward(const Matrix& grad_output_local);

  /// Completes any outstanding reduce-scatter (ORS). Must be called before
  /// reading gradients or starting the data-parallel all-reduce.
  void finish_gradients();

  /// Local Z-shard of the weight (shard_rows x out_local) and its gradient.
  const Matrix& weight_shard() const { return weight_shard_; }
  Matrix& mutable_weight_shard();

  /// Marks the gathered-weight cache stale — and with it the packed weight
  /// panels, which are derived from the gathered block. Must be called after
  /// mutating the shard through a retained pointer (e.g. an optimizer step);
  /// mutable_weight_shard() does this automatically for direct access.
  /// Non-blocking: an in-flight OAG prefetch keeps running (it reads its own
  /// snapshot of the shard, never the live storage), but the version bump
  /// marks it stale so it is discarded — never adopted — at the next
  /// begin_weight_gather()/forward().
  void invalidate_weight_cache() {
    weight_cache_valid_ = false;
    ++weight_version_;
    packed_weight_n_.clear();
    packed_weight_t_.clear();
  }
  const Matrix& weight_grad_shard() const;
  /// Mutable gradient access for optimizers / the data-parallel all-reduce.
  /// Requires no reduce-scatter in flight.
  Matrix& mutable_weight_grad_shard();

  void zero_grad();

  /// Plain SGD step on the shard (tests and the quickstart example; the
  /// train module brings Adam).
  void apply_sgd(float lr);

  /// Reconstructs this rank's full W block (collective over Z). For tests
  /// and checkpointing.
  Matrix gather_weight_block();

  /// Wire-traffic predictions cross-checked in tests: rows of the W block
  /// each Z rank contributes.
  const std::vector<std::size_t>& z_shard_counts() const { return z_counts_; }

  /// The layer's kernel tuner, or nullptr when FCOptions::kernel_tuning is
  /// off. Decisions accumulate as the real training path runs.
  const KernelTuner* kernel_tuner() const { return tuner_.get(); }

 private:
  comm::Communicator& row_comm() {
    return options_.transposed ? grid_.x_comm() : grid_.y_comm();
  }
  comm::Communicator& col_comm() {
    return options_.transposed ? grid_.y_comm() : grid_.x_comm();
  }
  int row_coord() const { return options_.transposed ? grid_.x() : grid_.y(); }
  int col_coord() const { return options_.transposed ? grid_.y() : grid_.x(); }
  int row_dim() const {
    return options_.transposed ? grid_.shape().gx : grid_.shape().gy;
  }
  int col_dim() const {
    return options_.transposed ? grid_.shape().gy : grid_.shape().gx;
  }

  /// Runs one of the layer's GEMMs. `b_is_weight` marks products whose
  /// op(B) is the gathered weight block (forward NN, backward-dI NT): those
  /// reuse the pack-once weight panel cache when the tiled backend runs.
  Matrix multiply(GemmMode mode, const Matrix& a, const Matrix& b,
                  bool b_is_weight = false);
  /// The packed-panel slot for `mode` (kNN packs W, kNT packs W^T), packing
  /// the gathered weight block lazily on first use.
  const PackedB* weight_pack_for(GemmMode mode);
  void gather_weights_into_cache();
  /// Completes and drops an in-flight prefetch whose snapshot predates the
  /// current weight version (the buffers must not be reused while the
  /// progress lane still writes them).
  void discard_stale_prefetch();

  Grid4D& grid_;
  std::size_t in_features_;
  std::size_t out_features_;
  FCOptions options_;
  std::unique_ptr<KernelTuner> tuner_;  ///< non-null iff kernel_tuning

  Range in_range_;   ///< rows of W / cols of I owned by this row coordinate
  Range out_range_;  ///< cols of W owned by this column coordinate

  Matrix weight_shard_;      ///< Z-shard: (z_counts_[z] rows x out_local)
  Matrix weight_grad_shard_; ///< same shape, accumulated
  std::vector<std::size_t> z_counts_;       ///< W-block rows per Z rank
  std::vector<std::size_t> z_elem_counts_;  ///< elements per Z rank

  // Forward caches (Algorithm 1 line 5).
  Matrix cached_weight_block_;  ///< gathered (in_local x out_local)
  bool weight_cache_valid_ = false;
  Matrix cached_input_;
  // Pack-once weight panel cache for the tiled backend: op(B) = W for the
  // forward NN product and op(B) = W^T for the backward-dI NT product.
  // Packed lazily per gathered weight, invalidated with the gathered cache.
  PackedB packed_weight_n_;
  PackedB packed_weight_t_;

  // OAG prefetch double-buffer (DESIGN.md §12). The async gather owns these
  // three buffers exclusively until its Request completes: it reads
  // prefetch_send_buffer_ (a snapshot of the shard copied on the issuing
  // thread — the progress lane never touches the live weight_shard_, so an
  // optimizer step cannot race it) and writes prefetch_block_ (never the
  // in-use cached_weight_block_). The version pair detects staleness:
  // invalidate_weight_cache() bumps weight_version_; a prefetch stamped with
  // an older prefetch_version_ is drained and discarded, never adopted.
  Matrix prefetch_send_buffer_;
  Matrix prefetch_block_;
  PackedB prefetch_packed_n_;  ///< pre-packed on the lane after the gather
  std::uint64_t weight_version_ = 0;
  std::uint64_t prefetch_version_ = 0;

  // In-flight collectives.
  std::optional<comm::Request> pending_weight_gather_;
  std::optional<comm::Request> pending_weight_pack_;  ///< same lane, after gather
  std::optional<comm::Request> pending_reduce_scatter_;
  Matrix rs_send_buffer_;  ///< must outlive the async reduce-scatter
  Matrix rs_recv_buffer_;
};

}  // namespace axonn::core
