#pragma once

// A stack of tensor-parallel FC layers — "parallelizing an entire network"
// from §V-A.
//
// Consecutive layers alternate the 'transposed' weight decomposition so the
// output distribution of layer i (rows over Z, columns over layer i's
// column group) is exactly the input distribution layer i+1 expects; no
// redistribution is ever needed. The stack also hosts the cross-layer
// overlap optimizations: OAG prefetches the next layer's weight all-gather
// while the current layer computes, and the data-parallel gradient
// all-reduce runs once per batch over all shards (§V-D).

#include <cstdint>
#include <memory>
#include <vector>

#include "axonn/core/comm_check.hpp"
#include "axonn/core/fc_layer.hpp"

namespace axonn::core {

struct MLPOptions {
  bool mixed_precision = false;
  bool overlap_input_grad_all_reduce = false;   ///< OAR
  bool overlap_weight_grad_reduce_scatter = false;  ///< ORS
  bool overlap_weight_all_gather = false;       ///< OAG
  /// §V-C kernel tuning in every layer's GEMMs (see FCOptions).
  bool kernel_tuning = false;
  /// GEMM backend when kernel_tuning is off (see FCOptions::gemm_backend).
  GemmBackend gemm_backend = GemmBackend::kReference;
  bool gelu_between_layers = true;
  float init_std = 0.02f;
  /// First layer 'transposed' flag; subsequent layers alternate.
  bool first_layer_transposed = false;
  /// Cross-check measured wire_bytes against Eqs. 1–5 every iteration: a
  /// window opens at the first forward() and closes (comparing + logging
  /// divergence) at sync_gradients_data_parallel(). See CommModelChecker.
  bool validate_comm_model = false;
  double comm_model_tolerance = 0.02;
};

class TensorParallelMLP {
 public:
  /// feature_dims = {in, hidden..., out}: layer i maps dims[i] -> dims[i+1].
  TensorParallelMLP(Grid4D& grid, const std::vector<std::size_t>& feature_dims,
                    std::uint64_t seed, MLPOptions options = {});

  std::size_t num_layers() const { return layers_.size(); }
  TensorParallelFC& layer(std::size_t i) { return *layers_[i]; }
  const TensorParallelFC& layer(std::size_t i) const { return *layers_[i]; }

  /// Scatters a full (group) input to this rank's block for layer 0.
  Matrix scatter_input(const Matrix& full_input) const {
    return layers_.front()->scatter_input(full_input);
  }

  Matrix forward(const Matrix& input_local);
  Matrix backward(const Matrix& grad_output_local);

  /// Completes deferred reduce-scatters (ORS) and performs the data-parallel
  /// all-reduce, averaging gradients over the Gdata groups.
  void sync_gradients_data_parallel();

  void zero_grad();
  void apply_sgd(float lr);

  /// The Eq. 1–5 runtime checker (nullptr unless validate_comm_model).
  /// last_result() is meaningful after sync_gradients_data_parallel().
  const CommModelChecker* comm_checker() const { return checker_.get(); }

 private:
  Grid4D& grid_;
  MLPOptions options_;
  std::vector<std::unique_ptr<TensorParallelFC>> layers_;
  std::vector<Matrix> pre_activations_;  ///< inputs to each GELU
  std::unique_ptr<CommModelChecker> checker_;
};

}  // namespace axonn::core
