#include "axonn/core/kernel_tuner.hpp"

#include <chrono>
#include <cstdio>
#include <limits>

#include "axonn/base/error.hpp"
#include "axonn/base/trace.hpp"

namespace axonn::core {

namespace {

bool transposes_a(GemmMode mode) {
  return mode == GemmMode::kTN || mode == GemmMode::kTT;
}
bool transposes_b(GemmMode mode) {
  return mode == GemmMode::kNT || mode == GemmMode::kTT;
}

}  // namespace

Matrix KernelTuner::run_with_kernel(GemmMode semantic_mode,
                                    GemmMode kernel_mode, const Matrix& a,
                                    const Matrix& b) const {
  const auto multiply = [this](GemmMode mode, const Matrix& x,
                               const Matrix& y) {
    return mixed_precision_ ? gemm_bf16(mode, x, y) : gemm(mode, x, y);
  };
  if (kernel_mode == semantic_mode) {
    return multiply(semantic_mode, a, b);
  }
  // Pass operands so that op_kernel(passed) == op_semantic(original): when
  // the transpose flags differ, materialize a transposed copy — the layout
  // change a real framework performs to reach a different BLAS kernel.
  const bool copy_a = transposes_a(kernel_mode) != transposes_a(semantic_mode);
  const bool copy_b = transposes_b(kernel_mode) != transposes_b(semantic_mode);
  const Matrix& a_eff = copy_a ? a.transposed() : a;
  const Matrix& b_eff = copy_b ? b.transposed() : b;
  return multiply(kernel_mode, a_eff, b_eff);
}

double KernelTuner::time_variant(GemmMode semantic_mode, GemmMode kernel_mode,
                                 const Matrix& a, const Matrix& b) const {
  using Clock = std::chrono::steady_clock;
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < timing_repeats_; ++rep) {
    const auto start = Clock::now();
    const Matrix c = run_with_kernel(semantic_mode, kernel_mode, a, b);
    const auto stop = Clock::now();
    // Touch the result so the compiler cannot elide the work.
    volatile float sink = c(0, 0);
    (void)sink;
    best = std::min(best,
                    std::chrono::duration<double>(stop - start).count());
  }
  return best;
}

KernelTuner::Choice KernelTuner::tune(GemmMode semantic_mode, const Matrix& a,
                                      const Matrix& b) const {
  AXONN_CHECK_MSG(semantic_mode != GemmMode::kTT,
                  "transformers use NN/NT/TN products only");
  Choice choice;
  choice.default_seconds = time_variant(semantic_mode, semantic_mode, a, b);
  choice.measured_seconds = choice.default_seconds;
  choice.kernel_mode = semantic_mode;
  for (GemmMode km : {GemmMode::kNN, GemmMode::kNT, GemmMode::kTN}) {
    if (km == semantic_mode) continue;
    const double t = time_variant(semantic_mode, km, a, b);
    if (t < choice.measured_seconds) {
      choice.measured_seconds = t;
      choice.kernel_mode = km;
    }
  }
  return choice;
}

Matrix KernelTuner::run(GemmMode semantic_mode, const Matrix& a,
                        const Matrix& b) {
  const GemmShape shape = gemm_shape(semantic_mode, a, b);
  const Key key{semantic_mode, shape.m, shape.n, shape.k};
  auto it = decisions_.find(key);
  if (it == decisions_.end()) {
    // First batch: measure, then remember (§V-C).
    it = decisions_.emplace(key, tune(semantic_mode, a, b)).first;
    if (obs::enabled()) {
      const Choice& choice = it->second;
      // Counter per kernel mode: how many products tuned to it so far.
      int same_kernel = 0;
      for (const auto& [k, c] : decisions_) {
        if (c.kernel_mode == choice.kernel_mode) ++same_kernel;
      }
      obs::counter(obs::kCatTuner,
                   std::string("tuner_choice_") + to_string(choice.kernel_mode),
                   same_kernel);
      char line[160];
      std::snprintf(line, sizeof(line),
                    "tune %s (m=%zu n=%zu k=%zu) -> %s kernel (%.2fx)",
                    to_string(semantic_mode), key.m, key.n, key.k,
                    to_string(choice.kernel_mode), choice.speedup());
      obs::instant(obs::kCatTuner, line);
    }
  }
  return run_with_kernel(semantic_mode, it->second.kernel_mode, a, b);
}

std::vector<std::string> KernelTuner::report() const {
  std::vector<std::string> lines;
  for (const auto& [key, choice] : decisions_) {
    char buffer[160];
    std::snprintf(buffer, sizeof(buffer),
                  "%s (m=%zu n=%zu k=%zu): kernel %s, %.2fx vs default",
                  to_string(key.semantic_mode), key.m, key.n, key.k,
                  to_string(choice.kernel_mode), choice.speedup());
    lines.emplace_back(buffer);
  }
  return lines;
}

}  // namespace axonn::core
