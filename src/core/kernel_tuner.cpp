#include "axonn/core/kernel_tuner.hpp"

#include <chrono>
#include <cstdio>
#include <limits>

#include "axonn/base/error.hpp"
#include "axonn/base/metrics.hpp"
#include "axonn/base/trace.hpp"

namespace axonn::core {

bool KernelTuner::pack_usable(const PackedB* packed_b,
                              const GemmShape& shape) const {
  // The caller promises the pack holds op(B) for *this* product; the shape
  // and precision checks are a safety net against stale or mismatched packs.
  return packed_b != nullptr && !packed_b->empty() &&
         packed_b->k() == shape.k && packed_b->n() == shape.n &&
         packed_b->rounded_bf16() == mixed_precision_;
}

Matrix KernelTuner::run_with_kernel(GemmMode semantic_mode,
                                    GemmMode kernel_mode, GemmBackend backend,
                                    const Matrix& a, const Matrix& b,
                                    const PackedB* packed_b) const {
  if (backend == GemmBackend::kTiled) {
    // The tiled backend resolves transposition at pack time, so it has no
    // transpose-copy variants: its single variant runs at the semantic mode,
    // through the caller's pack-once weight panel cache when one is usable.
    const GemmShape shape = gemm_shape(semantic_mode, a, b);
    Matrix c(shape.m, shape.n);
    if (pack_usable(packed_b, shape)) {
      gemm_tiled_packed(gemm_transposes_a(semantic_mode), 1.0f, a, *packed_b,
                        0.0f, c, mixed_precision_);
    } else {
      gemm_tiled(semantic_mode, 1.0f, a, b, 0.0f, c, mixed_precision_);
    }
    return c;
  }
  const auto multiply = [this](GemmMode mode, const Matrix& x,
                               const Matrix& y) {
    return mixed_precision_ ? gemm_bf16(mode, x, y) : gemm(mode, x, y);
  };
  if (kernel_mode == semantic_mode) {
    return multiply(semantic_mode, a, b);
  }
  // Pass operands so that op_kernel(passed) == op_semantic(original): when
  // the transpose flags differ, materialize a transposed copy — the layout
  // change a real framework performs to reach a different BLAS kernel.
  const bool copy_a =
      gemm_transposes_a(kernel_mode) != gemm_transposes_a(semantic_mode);
  const bool copy_b =
      gemm_transposes_b(kernel_mode) != gemm_transposes_b(semantic_mode);
  const Matrix& a_eff = copy_a ? a.transposed() : a;
  const Matrix& b_eff = copy_b ? b.transposed() : b;
  return multiply(kernel_mode, a_eff, b_eff);
}

double KernelTuner::time_variant(GemmMode semantic_mode, GemmMode kernel_mode,
                                 GemmBackend backend, const Matrix& a,
                                 const Matrix& b,
                                 const PackedB* packed_b) const {
  using Clock = std::chrono::steady_clock;
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < timing_repeats_; ++rep) {
    const auto start = Clock::now();
    const Matrix c =
        run_with_kernel(semantic_mode, kernel_mode, backend, a, b, packed_b);
    const auto stop = Clock::now();
    // Touch the result so the compiler cannot elide the work.
    volatile float sink = c(0, 0);
    (void)sink;
    best = std::min(best,
                    std::chrono::duration<double>(stop - start).count());
  }
  return best;
}

KernelTuner::Choice KernelTuner::tune(GemmMode semantic_mode, const Matrix& a,
                                      const Matrix& b,
                                      const PackedB* packed_b) const {
  AXONN_CHECK_MSG(semantic_mode != GemmMode::kTT,
                  "transformers use NN/NT/TN products only");
  Choice choice;
  choice.default_seconds = time_variant(semantic_mode, semantic_mode,
                                        GemmBackend::kReference, a, b, nullptr);
  choice.measured_seconds = choice.default_seconds;
  choice.kernel_mode = semantic_mode;
  choice.backend = GemmBackend::kReference;
  for (GemmMode km : {GemmMode::kNN, GemmMode::kNT, GemmMode::kTN}) {
    if (km == semantic_mode) continue;
    const double t =
        time_variant(semantic_mode, km, GemmBackend::kReference, a, b, nullptr);
    if (t < choice.measured_seconds) {
      choice.measured_seconds = t;
      choice.kernel_mode = km;
    }
  }
  // The tiled backend has exactly one variant (transposition is resolved in
  // the pack). Timed through the prepacked path when the caller supplies a
  // reusable weight pack — the cost the hot path will actually pay.
  const double tiled = time_variant(semantic_mode, semantic_mode,
                                    GemmBackend::kTiled, a, b, packed_b);
  if (tiled < choice.measured_seconds) {
    choice.measured_seconds = tiled;
    choice.kernel_mode = semantic_mode;
    choice.backend = GemmBackend::kTiled;
  }
  return choice;
}

Matrix KernelTuner::run(GemmMode semantic_mode, const Matrix& a,
                        const Matrix& b, const PackedB* packed_b) {
  const GemmShape shape = gemm_shape(semantic_mode, a, b);
  const Key key{semantic_mode, shape.m, shape.n, shape.k};
  auto it = decisions_.find(key);
  if (it == decisions_.end()) {
    // First batch: measure, then remember (§V-C).
    it = decisions_.emplace(key, tune(semantic_mode, a, b, packed_b)).first;
    {
      // Registry mirror of the trace counters: tuning decisions and how
      // often the tuner overruled the framework-default kernel mode.
      static obs::metrics::Counter tuned("tuner.decisions");
      static obs::metrics::Counter overrides("tuner.kernel_overrides");
      tuned.add();
      if (it->second.kernel_mode != semantic_mode ||
          it->second.backend != GemmBackend::kReference) {
        overrides.add();
      }
    }
    if (obs::enabled()) {
      const Choice& choice = it->second;
      // Counter per kernel mode: how many products tuned to it so far.
      int same_kernel = 0;
      int same_backend = 0;
      for (const auto& [k, c] : decisions_) {
        if (c.kernel_mode == choice.kernel_mode) ++same_kernel;
        if (c.backend == choice.backend) ++same_backend;
      }
      obs::counter(obs::kCatTuner,
                   std::string("tuner_choice_") + to_string(choice.kernel_mode),
                   same_kernel);
      obs::counter(obs::kCatTuner,
                   std::string("tuner_backend_") + to_string(choice.backend),
                   same_backend);
      // The tiled backend's timing (and thus the decision) depends on the
      // dispatched micro-kernel tier; stamp it so traces from different
      // hosts/overrides stay attributable.
      obs::counter(obs::kCatTuner,
                   std::string("tuner_isa_") + to_string(active_gemm_isa()),
                   static_cast<int>(decisions_.size()));
      char line[176];
      std::snprintf(line, sizeof(line),
                    "tune %s (m=%zu n=%zu k=%zu) -> %s/%s kernel (%.2fx, %s)",
                    to_string(semantic_mode), key.m, key.n, key.k,
                    to_string(choice.backend), to_string(choice.kernel_mode),
                    choice.speedup(), to_string(active_gemm_isa()));
      obs::instant(obs::kCatTuner, line);
    }
  }
  return run_with_kernel(semantic_mode, it->second.kernel_mode,
                         it->second.backend, a, b, packed_b);
}

const KernelTuner::Choice* KernelTuner::find_decision(GemmMode semantic_mode,
                                                      std::size_t m,
                                                      std::size_t n,
                                                      std::size_t k) const {
  const auto it = decisions_.find(Key{semantic_mode, m, n, k});
  return it == decisions_.end() ? nullptr : &it->second;
}

std::vector<std::string> KernelTuner::report() const {
  std::vector<std::string> lines;
  for (const auto& [key, choice] : decisions_) {
    char buffer[160];
    std::snprintf(buffer, sizeof(buffer),
                  "%s (m=%zu n=%zu k=%zu): %s kernel %s, %.2fx vs default",
                  to_string(key.semantic_mode), key.m, key.n, key.k,
                  to_string(choice.backend), to_string(choice.kernel_mode),
                  choice.speedup());
    lines.emplace_back(buffer);
  }
  return lines;
}

}  // namespace axonn::core
