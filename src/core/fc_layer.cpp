#include "axonn/core/fc_layer.hpp"

#include <span>
#include <string>

#include "axonn/base/arena.hpp"
#include "axonn/base/error.hpp"
#include "axonn/base/trace.hpp"

namespace axonn::core {

TensorParallelFC::TensorParallelFC(Grid4D& grid, std::size_t in_features,
                                   std::size_t out_features, std::uint64_t seed,
                                   FCOptions options)
    : grid_(grid),
      in_features_(in_features),
      out_features_(out_features),
      options_(options) {
  AXONN_CHECK(in_features >= 1 && out_features >= 1);
  if (options_.kernel_tuning) {
    tuner_ = std::make_unique<KernelTuner>(options_.kernel_tuner_repeats,
                                           options_.mixed_precision);
  }
  in_range_ = chunk_range(in_features, static_cast<std::size_t>(row_dim()),
                          static_cast<std::size_t>(row_coord()));
  out_range_ = chunk_range(out_features, static_cast<std::size_t>(col_dim()),
                           static_cast<std::size_t>(col_coord()));

  // Every rank draws the same full weight from the seed, then keeps only its
  // block's Z-shard. This guarantees all shards are consistent views of one
  // global W without any startup communication. The full-matrix draw and its
  // block are construction-time transients, but they are still charged to the
  // weights tag — they dominate the weights HWM at init.
  const mem::ArenaScope scope(mem::Tag::kWeights);
  Rng rng(seed);
  const Matrix full =
      Matrix::randn(in_features, out_features, rng, 0.0f, options_.init_std);
  const Matrix block = full.block(in_range_, out_range_);

  const auto gz = static_cast<std::size_t>(grid_.shape().gz);
  z_counts_.resize(gz);
  z_elem_counts_.resize(gz);
  for (std::size_t zr = 0; zr < gz; ++zr) {
    z_counts_[zr] = chunk_size(block.rows(), gz, zr);
    z_elem_counts_[zr] = z_counts_[zr] * block.cols();
  }
  const Range my_rows = chunk_range(block.rows(), gz,
                                    static_cast<std::size_t>(grid_.z()));
  weight_shard_ = block.block(my_rows, Range{0, block.cols()});
  {
    const mem::ArenaScope grad_scope(mem::Tag::kGrads);
    weight_grad_shard_ =
        Matrix::zeros(weight_shard_.rows(), weight_shard_.cols());
  }
}

Matrix TensorParallelFC::scatter_input(const Matrix& full_input) const {
  AXONN_CHECK_MSG(full_input.cols() == in_features_,
                  "input feature count does not match layer");
  const Range rows = chunk_range(full_input.rows(),
                                 static_cast<std::size_t>(grid_.shape().gz),
                                 static_cast<std::size_t>(grid_.z()));
  return full_input.block(rows, in_range_);
}

Range TensorParallelFC::input_row_range(std::size_t total_rows) const {
  return chunk_range(total_rows, static_cast<std::size_t>(grid_.shape().gz),
                     static_cast<std::size_t>(grid_.z()));
}

const PackedB* TensorParallelFC::weight_pack_for(GemmMode mode) {
  AXONN_CHECK_MSG(mode == GemmMode::kNN || mode == GemmMode::kNT,
                  "only the forward (NN) and dI (NT) products consume W");
  const bool transpose = mode == GemmMode::kNT;
  PackedB& slot = transpose ? packed_weight_t_ : packed_weight_n_;
  if (slot.empty()) {
    obs::SpanGuard span(obs::kCatCompute, "pack_weight");
    slot = pack_b(cached_weight_block_, transpose, options_.mixed_precision);
  }
  return &slot;
}

Matrix TensorParallelFC::multiply(GemmMode mode, const Matrix& a,
                                  const Matrix& b, bool b_is_weight) {
  // §V-C: with kernel_tuning on, the tuner times every (kernel mode x
  // backend) variant for this (mode, shape) on the first batch and runs the
  // winner thereafter — this is the layer's real hot path, not a side
  // calibration.
  //
  // The per-layer lane budget (if any) wraps the whole dispatch, including
  // the tuner's timing runs, so tuning decisions are made at the thread
  // count the layer will actually run with.
  GemmThreadScope gemm_lanes(options_.gemm_threads);
  const GemmShape shape = gemm_shape(mode, a, b);
  const PackedB* pack = nullptr;
  if (b_is_weight) {
    // Pack ahead of tuning so the tiled variant is timed through the
    // pack-once path it would actually run; drop the pack if it loses.
    bool want_pack;
    if (tuner_) {
      const KernelTuner::Choice* decision =
          tuner_->find_decision(mode, shape.m, shape.n, shape.k);
      want_pack = decision == nullptr ||
                  decision->backend == GemmBackend::kTiled;
    } else {
      want_pack = options_.gemm_backend == GemmBackend::kTiled;
    }
    if (want_pack) pack = weight_pack_for(mode);
  }
  // ABFT (integrity/abft.hpp) wraps whichever kernel runs below: checksums
  // are predicted from (a, b) before the kernel and verified against c after,
  // so every path — tuner-selected, tiled prepacked, tiled, reference, bf16 —
  // is covered by the same identity. With abft.mode off (the default) the
  // wrapper invokes the kernel once and returns, bit-identical to the
  // unwrapped dispatch.
  GemmBackend report_backend = options_.gemm_backend;
  if (tuner_) {
    const KernelTuner::Choice* decision =
        tuner_->find_decision(mode, shape.m, shape.n, shape.k);
    report_backend =
        decision != nullptr ? decision->backend : GemmBackend::kTiled;
  }
  Matrix c(shape.m, shape.n);
  const auto compute = [&](Matrix& out) {
    if (tuner_) {
      out = tuner_->run(mode, a, b, pack);
      if (pack != nullptr) {
        const KernelTuner::Choice* decision =
            tuner_->find_decision(mode, shape.m, shape.n, shape.k);
        if (decision != nullptr && decision->backend != GemmBackend::kTiled) {
          (mode == GemmMode::kNT ? packed_weight_t_ : packed_weight_n_)
              .clear();
        }
      }
      return;
    }
    if (options_.gemm_backend == GemmBackend::kTiled) {
      if (pack != nullptr) {
        gemm_tiled_packed(gemm_transposes_a(mode), 1.0f, a, *pack, 0.0f, out,
                          options_.mixed_precision);
      } else {
        gemm_tiled(mode, 1.0f, a, b, 0.0f, out, options_.mixed_precision);
      }
      return;
    }
    if (options_.mixed_precision) {
      gemm_bf16(mode, 1.0f, a, b, 0.0f, out);
    } else {
      gemm(mode, 1.0f, a, b, 0.0f, out);
    }
  };
  const std::string op = std::string("fc:") + to_string(mode);
  integrity::abft_checked_gemm(options_.abft, op.c_str(), report_backend, mode,
                               1.0f, a, b, 0.0f, c, options_.mixed_precision,
                               compute);
  return c;
}

void TensorParallelFC::discard_stale_prefetch() {
  if (pending_weight_gather_) {
    pending_weight_gather_->wait();
    pending_weight_gather_.reset();
  }
  if (pending_weight_pack_) {
    pending_weight_pack_->wait();
    pending_weight_pack_.reset();
  }
  prefetch_packed_n_.clear();
}

void TensorParallelFC::begin_weight_gather() {
  if (weight_cache_valid_) return;
  if (pending_weight_gather_) {
    if (prefetch_version_ == weight_version_) return;  // still fresh
    // The weights changed under the in-flight prefetch (an optimizer step
    // between begin_weight_gather() and the next forward): drain it — its
    // buffers are lane-owned until completion — and reissue against the new
    // shard. Symmetric on every Z rank (same invalidation history), so the
    // collective order stays consistent.
    discard_stale_prefetch();
  }
  // Snapshot the shard on this (the owning) thread: the progress lane reads
  // only this copy, so a later in-place weight update cannot race the gather
  // or leak pre-update values into it.
  const mem::ArenaScope scope(mem::Tag::kWeights);
  prefetch_send_buffer_ = weight_shard_;
  prefetch_block_ = Matrix(in_range_.size(), out_range_.size());
  prefetch_version_ = weight_version_;
  pending_weight_gather_ = grid_.z_comm().iall_gatherv(
      std::span<const float>(prefetch_send_buffer_.storage()),
      std::span<float>(prefetch_block_.storage()), z_elem_counts_);
  // Pre-pack the forward (NN) panel on the same lane: FIFO order puts it
  // right after the gather lands, so the prefetch arrives ready for the
  // tiled kernel with no pack on the critical path. Tuned layers pack
  // lazily as before (the winning backend is shape-dependent).
  if (!tuner_ && options_.gemm_backend == GemmBackend::kTiled) {
    pending_weight_pack_ = grid_.z_comm().run_on_stream([this] {
      obs::SpanGuard span(obs::kCatCompute, "prefetch_pack_weight");
      prefetch_packed_n_ =
          pack_b(prefetch_block_, /*transpose=*/false, options_.mixed_precision);
    });
  }
}

void TensorParallelFC::gather_weights_into_cache() {
  if (weight_cache_valid_) return;
  // Fresh gather: any packed panels derived from the old block are stale.
  packed_weight_n_.clear();
  packed_weight_t_.clear();
  if (pending_weight_gather_) {
    const bool fresh = prefetch_version_ == weight_version_;
    {
      // OAG window closes: time the compute thread spends here is the
      // exposed remainder of the prefetched all-gather. Wait the gather
      // first so a transport error surfaces from the collective, not the
      // dependent pack.
      obs::SpanGuard wait(obs::kCatWait, "AG_z.wait");
      pending_weight_gather_->wait();
      pending_weight_gather_.reset();
      if (pending_weight_pack_) {
        pending_weight_pack_->wait();
        pending_weight_pack_.reset();
      }
    }
    if (fresh) {
      cached_weight_block_ = std::move(prefetch_block_);
      packed_weight_n_ = std::move(prefetch_packed_n_);
      prefetch_packed_n_.clear();
      weight_cache_valid_ = true;
      return;
    }
    // Stale (invalidated after issue): the gathered block reflects
    // pre-update weights — drop it and fall through to a fresh blocking
    // gather of the current shard. This is the bug the version pair exists
    // to close: the old path adopted whatever the prefetch brought back.
    prefetch_packed_n_.clear();
  }
  const mem::ArenaScope scope(mem::Tag::kWeights);
  cached_weight_block_ = Matrix(in_range_.size(), out_range_.size());
  grid_.z_comm().all_gatherv(
      std::span<const float>(weight_shard_.storage()),
      std::span<float>(cached_weight_block_.storage()), z_elem_counts_);
  weight_cache_valid_ = true;
}

Matrix TensorParallelFC::forward(const Matrix& input_local) {
  AXONN_CHECK_MSG(input_local.cols() == in_local(),
                  "local input columns must match this rank's W-row share");
  gather_weights_into_cache();
  Matrix output;
  {
    obs::SpanGuard span(obs::kCatCompute, "fwd_gemm");
    output = multiply(GemmMode::kNN, input_local, cached_weight_block_,
                      /*b_is_weight=*/true);
  }
  row_comm().all_reduce(std::span<float>(output.storage()),
                        comm::ReduceOp::kSum);
  cached_input_ = input_local;
  return output;
}

Matrix TensorParallelFC::backward(const Matrix& grad_output_local) {
  AXONN_CHECK_MSG(weight_cache_valid_,
                  "backward requires a preceding forward (cached W)");
  AXONN_CHECK(grad_output_local.rows() == cached_input_.rows());
  AXONN_CHECK(grad_output_local.cols() == out_local());

  // Wait for any previous layer-reuse of the RS buffers.
  if (pending_reduce_scatter_) finish_gradients();

  // Line 11: dI_hat = dO x W^T.
  Matrix grad_input;
  {
    obs::SpanGuard span(obs::kCatCompute, "bwd_dI_gemm");
    grad_input = multiply(GemmMode::kNT, grad_output_local,
                          cached_weight_block_, /*b_is_weight=*/true);
  }

  std::optional<comm::Request> dI_request;
  if (options_.overlap_input_grad_all_reduce) {
    // Line 12 issued asynchronously (OAR) on the high-priority lane: the
    // consumer blocks on it right after the dW GEMM, so it must never queue
    // behind a bulk reduce-scatter from a later (in backward order) layer.
    dI_request = col_comm().iall_reduce(std::span<float>(grad_input.storage()),
                                        comm::ReduceOp::kSum,
                                        comm::CommPriority::kHigh);
  } else {
    col_comm().all_reduce(std::span<float>(grad_input.storage()),
                          comm::ReduceOp::kSum);
  }

  // Line 13: dW_hat = I^T x dO — overlapped with the dI all-reduce when OAR
  // is on.
  {
    obs::SpanGuard span(obs::kCatCompute, "bwd_dW_gemm");
    rs_send_buffer_ = multiply(GemmMode::kTN, cached_input_, grad_output_local);
  }

  if (dI_request) {
    obs::SpanGuard wait(obs::kCatWait, "AR_col.wait");
    dI_request->wait();
  }

  // Line 14: dW_shard = reduce-scatter_z(dW_hat). The receive staging buffer
  // is comm plumbing, not a gradient tensor (the send side stays on the
  // activations tag: it is a GEMM output like any other).
  {
    const mem::ArenaScope scope(mem::Tag::kCommBuffers);
    rs_recv_buffer_ = Matrix(weight_shard_.rows(), weight_shard_.cols());
  }
  if (options_.overlap_weight_grad_reduce_scatter) {
    // ORS rides the bulk lane: nobody reads the result until
    // finish_gradients(), so it must never delay a dI all-reduce or an OAG
    // prefetch sharing the rank's progress engine.
    pending_reduce_scatter_ = grid_.z_comm().ireduce_scatterv(
        std::span<const float>(rs_send_buffer_.storage()),
        std::span<float>(rs_recv_buffer_.storage()), z_elem_counts_,
        comm::ReduceOp::kSum, comm::CommPriority::kBulk);
  } else {
    grid_.z_comm().reduce_scatterv(
        std::span<const float>(rs_send_buffer_.storage()),
        std::span<float>(rs_recv_buffer_.storage()), z_elem_counts_,
        comm::ReduceOp::kSum);
    weight_grad_shard_.add_inplace(rs_recv_buffer_);
  }
  return grad_input;
}

void TensorParallelFC::finish_gradients() {
  if (!pending_reduce_scatter_) return;
  {
    obs::SpanGuard wait(obs::kCatWait, "RS_z.wait");
    pending_reduce_scatter_->wait();
  }
  pending_reduce_scatter_.reset();
  weight_grad_shard_.add_inplace(rs_recv_buffer_);
}

Matrix& TensorParallelFC::mutable_weight_shard() {
  invalidate_weight_cache();  // any edit invalidates the gathered cache
  return weight_shard_;
}

const Matrix& TensorParallelFC::weight_grad_shard() const {
  AXONN_CHECK_MSG(!pending_reduce_scatter_,
                  "finish_gradients() before reading gradients");
  return weight_grad_shard_;
}

Matrix& TensorParallelFC::mutable_weight_grad_shard() {
  AXONN_CHECK_MSG(!pending_reduce_scatter_,
                  "finish_gradients() before mutating gradients");
  return weight_grad_shard_;
}

void TensorParallelFC::zero_grad() {
  finish_gradients();
  weight_grad_shard_.set_zero();
}

void TensorParallelFC::apply_sgd(float lr) {
  finish_gradients();
  weight_shard_.axpy_inplace(-lr, weight_grad_shard_);
  invalidate_weight_cache();
}

Matrix TensorParallelFC::gather_weight_block() {
  Matrix block(in_range_.size(), out_range_.size());
  grid_.z_comm().all_gatherv(std::span<const float>(weight_shard_.storage()),
                             std::span<float>(block.storage()),
                             z_elem_counts_);
  return block;
}

}  // namespace axonn::core
