#include "axonn/core/comm_check.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "axonn/base/log.hpp"
#include "axonn/base/trace.hpp"
#include "axonn/perf/comm_model.hpp"

namespace axonn::core {

namespace {
// The model prices bf16 elements (2 bytes); ThreadComm moves fp32 floats.
constexpr double kFp32OverBf16 = 4.0 / 2.0;
}  // namespace

LayerWireBytes predicted_layer_wire_bytes(const TensorParallelFC& fc,
                                          std::size_t group_rows,
                                          bool include_data_grad_sync) {
  // Bandwidths only shape predicted *times*; bytes are bandwidth-free.
  perf::DimensionBandwidths unit_beta{1.0, 1.0, 1.0, 1.0};
  const bool transposed = fc.options().transposed;
  const perf::LayerCommPrediction p = perf::predict_layer(
      static_cast<double>(group_rows), static_cast<double>(fc.in_features()),
      static_cast<double>(fc.out_features()), transposed, fc.grid_shape(),
      unit_beta);

  LayerWireBytes bytes;
  bytes.z = kFp32OverBf16 * (p.bytes_ag_z + p.bytes_rs_z);
  // Eq. 3 aggregates the forward output over the row group, Eq. 4 the input
  // gradient over the column group; row = Y and col = X unless transposed.
  double& row_bytes = transposed ? bytes.x : bytes.y;
  double& col_bytes = transposed ? bytes.y : bytes.x;
  row_bytes += kFp32OverBf16 * p.bytes_ar_fwd;
  col_bytes += kFp32OverBf16 * p.bytes_ar_bwd;
  if (include_data_grad_sync) {
    bytes.data = kFp32OverBf16 * p.bytes_ar_data;
  }
  return bytes;
}

void CommModelChecker::begin() {
  base_x_ = grid_.x_comm().stats().wire_bytes_sent;
  base_y_ = grid_.y_comm().stats().wire_bytes_sent;
  base_z_ = grid_.z_comm().stats().wire_bytes_sent;
  base_data_ = grid_.data_comm().stats().wire_bytes_sent;
  expected_ = LayerWireBytes{};
  active_ = true;
}

void CommModelChecker::expect(const LayerWireBytes& bytes) {
  expected_ += bytes;
}

CommModelChecker::Result CommModelChecker::finish() {
  active_ = false;
  Result result;
  result.predicted = expected_;
  result.measured.x = static_cast<double>(
      grid_.x_comm().stats().wire_bytes_sent - base_x_);
  result.measured.y = static_cast<double>(
      grid_.y_comm().stats().wire_bytes_sent - base_y_);
  result.measured.z = static_cast<double>(
      grid_.z_comm().stats().wire_bytes_sent - base_z_);
  result.measured.data = static_cast<double>(
      grid_.data_comm().stats().wire_bytes_sent - base_data_);

  struct Dim {
    const char* name;
    double predicted;
    double measured;
  };
  const Dim dims[] = {
      {"x", result.predicted.x, result.measured.x},
      {"y", result.predicted.y, result.measured.y},
      {"z", result.predicted.z, result.measured.z},
      {"data", result.predicted.data, result.measured.data},
  };
  for (const Dim& dim : dims) {
    const double scale = std::max(dim.predicted, dim.measured);
    if (scale <= 0) continue;  // no traffic predicted nor observed: agreed
    const double rel = std::abs(dim.measured - dim.predicted) / scale;
    result.worst_rel_error = std::max(result.worst_rel_error, rel);
    if (obs::enabled()) {
      obs::counter(obs::kCatCheck, std::string("rel_err_") + dim.name, rel);
    }
    if (rel > tolerance_) {
      result.ok = false;
      AXONN_LOG_WARN << "comm model divergence on " << dim.name
                     << ": Eq. 1-5 predict " << dim.predicted
                     << " wire bytes/rank, runtime counted " << dim.measured
                     << " (rel err " << rel << " > tol " << tolerance_ << ")";
      if (obs::enabled()) {
        char line[160];
        std::snprintf(line, sizeof(line),
                      "divergence %s: predicted %.0f measured %.0f", dim.name,
                      dim.predicted, dim.measured);
        obs::instant(obs::kCatCheck, line);
      }
    }
  }
  last_ = result;
  return result;
}

}  // namespace axonn::core
