#pragma once

// Per-rank memory estimator + high-water cross-validation (DESIGN.md §14).
//
// The comm model (comm_model.hpp) predicts where the *time* goes; this
// header predicts where the *bytes* go, tag by tag, for the tiny-GPT
// training runtime — and then checks itself against what the tracked arena
// (base/arena.hpp) actually measured. The prediction is analytic: every
// term below names a concrete allocation in gpt_model.cpp / fc_layer.cpp /
// adam.cpp / sentinel.cpp, so a divergence means either the model or the
// runtime changed and the other did not follow. That closed loop is the
// memory analogue of CommModelChecker's Eqs. 1-5 validation.
//
// Scope and accuracy: the model covers the gx == gy == 1 grid family the
// GPT runtime supports, counts fp32 Matrix / TrackedVector allocations
// (untracked std::vector scratch is invisible to the arena and therefore
// intentionally out of the model too), and predicts *process-total peak*
// bytes per tag — ranks are threads here, so the arena counters are
// process-wide sums. At world == 1 with a fixed backend the prediction is
// exact up to small per-allocation headers; tests pin that configuration
// and enforce <= 10% relative error.

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "axonn/base/arena.hpp"

namespace axonn::perf {

/// Shape of a tiny-GPT training run, mirrored from train::TinyGPTConfig +
/// the step shape (perf cannot depend on train: core links perf for the
/// comm checker, and train links core).
struct MemoryModelConfig {
  // Model shape (train::TinyGPTConfig fields).
  int vocab = 64;
  int max_seq = 64;
  int layers = 2;
  int hidden = 64;
  int heads = 4;
  // Step shape: each rank feeds `batch` sequences of `input_len` tokens
  // (input_len = document length - 1 in train_step terms).
  int batch = 4;
  int input_len = 16;
  // Grid (gx = gy = 1 family).
  int gz = 1;
  int gdata = 1;
  // Runtime knobs that change the allocation picture.
  bool overlap_collectives = false;  ///< OAG double-buffers the weight block
  bool tiled_backend = false;        ///< packed panels live iff kTiled
  int gemm_lanes = 1;                ///< concurrent A-pack scratch buffers
  int journal_depth = 0;             ///< sentinel snapshots retained (0 = off)
  int replica_slots = 0;             ///< in-memory checkpoint replicas (0 = off)
};

/// Predicted peak bytes per arena tag over a steady-state training window
/// (model + optimizer constructed, caches warm, >= 1 prior step taken).
struct MemoryPrediction {
  std::array<double, mem::kNumTags> tag_bytes{};

  double of(mem::Tag tag) const {
    return tag_bytes[static_cast<std::size_t>(tag)];
  }
  double total() const {
    double sum = 0;
    for (const double b : tag_bytes) sum += b;
    return sum;
  }
};

/// Evaluates the analytic model. Every term corresponds to a named
/// allocation site; see memory_model.cpp for the inventory.
MemoryPrediction predict_memory(const MemoryModelConfig& config);

/// Compares a MemoryPrediction against the arena's measured high-water
/// marks over a begin()..finish() window.
///
/// begin() resets the per-tag HWMs to the current live bytes, so a window
/// opened at a steady-state point measures "peak bytes while the window was
/// open" per tag — the quantity predict_memory() models. Tags where both
/// sides are < `floor_bytes` are reported but not checked (nothing to
/// validate); a tag the model predicts as zero but that measured above the
/// floor fails the check (the model is missing a subsystem).
class MemoryModelChecker {
 public:
  struct TagResult {
    mem::Tag tag = mem::Tag::kUntagged;
    double predicted_bytes = 0;
    double measured_bytes = 0;
    double rel_error = 0;  ///< |measured - predicted| / max(measured, pred)
    bool checked = false;  ///< above the floor on either side
    bool ok = true;        ///< checked => within tolerance
  };
  struct Result {
    std::array<TagResult, mem::kNumTags> tags{};
    double worst_rel_error = 0;  ///< over checked tags
    bool ok = true;              ///< every checked tag within tolerance

    const TagResult& of(mem::Tag tag) const {
      return tags[static_cast<std::size_t>(tag)];
    }
  };

  explicit MemoryModelChecker(double tolerance = 0.10,
                              double floor_bytes = 64.0 * 1024.0)
      : tolerance_(tolerance), floor_bytes_(floor_bytes) {}

  /// Opens a measurement window: resets every tag's HWM to its live bytes.
  void begin();
  bool active() const { return active_; }

  /// Closes the window: reads the per-tag HWMs, compares them against
  /// `expected`, warns (AXONN_LOG_WARN) on divergence beyond the tolerance,
  /// and mirrors per-tag predictions + relative errors into the metrics
  /// registry (memcheck.<tag>.predicted_bytes / .rel_error gauges).
  Result finish(const MemoryPrediction& expected);

  const Result& last_result() const { return last_; }

 private:
  double tolerance_;
  double floor_bytes_;
  bool active_ = false;
  Result last_;
};

/// Appends one JSON line per tag ({"tag","predicted_bytes","measured_bytes",
/// "rel_error","checked","ok"}) plus a trailing summary line to `path`.
/// Returns false (and logs a warning) on I/O failure.
bool append_memcheck_jsonl(const std::string& path,
                           const MemoryModelChecker::Result& result);

}  // namespace axonn::perf
