#pragma once

// Per-rank sustained-GEMM-rate calibration for the Eq. 1–7 perf model
// (DESIGN.md §13).
//
// The analytical model's compute terms divide flops by a machine's
// advertised peak scaled by the GemmEfficiencyModel — numbers calibrated
// from the paper's published A100/MI250X/H100 rates. When the model is asked
// about *this* host (config search for a local run, the simulator's
// what-if sweeps), those constants are fiction: the honest number is
// whatever the tiled backend actually sustains with the dispatched ISA tier
// and the configured worker lanes. calibrate_gemm_rate() measures exactly
// that — the same kernels, packing and thread budget the training hot path
// uses — and apply_gemm_calibration() folds it into a MachineConfig so
// gemm_seconds() (and everything stacked on it: Eq. 2/4/6 compute terms,
// best_configuration(), the simulator) predicts from measurement instead of
// spec sheets. This is the 4D-perf-estimator discipline of arXiv 2411.06465:
// feed measured rates back into the search loop so it stays honest.

#include <cstddef>

#include "axonn/sim/machine.hpp"
#include "axonn/tensor/gemm.hpp"

namespace axonn::perf {

/// What one calibration run measured, with enough provenance to refuse
/// stale application (a calibration taken under a different tier/threads is
/// a different machine as far as the model is concerned).
struct GemmCalibration {
  double sustained_gflops = 0;  ///< best-of-repeats, 2*m*n*k / seconds / 1e9
  std::size_t dim = 0;          ///< square problem size measured
  GemmBackend backend = GemmBackend::kTiled;
  GemmIsa isa = GemmIsa::kPortable;  ///< tier dispatched during measurement
  int threads = 1;                   ///< lane budget during measurement
  bool bf16 = false;
};

/// Times `repeats` NN tiled GEMMs of dim^3 (after one untimed warmup that
/// also absorbs lazy worker spawns) under the ambient ISA tier and thread
/// budget, and reports the best rate. Deterministic operand fill; ~dim^3
/// flops per repeat, so dim=256 keeps the whole call in the low milliseconds
/// on anything modern.
GemmCalibration calibrate_gemm_rate(std::size_t dim = 256, int repeats = 3,
                                    bool bf16 = false);

/// Rewrites `machine`'s peak-rate fields so its efficiency-scaled sustained
/// rate at large dimensions equals the measured rate: empirical_peak_flops
/// becomes the measurement and advertised_peak_flops is back-derived through
/// the machine's own gemm.peak_fraction (the model keeps its shape/mode
/// roll-offs — only the absolute scale is replaced). The name gains a
/// "+calibrated" suffix so reports show provenance.
void apply_gemm_calibration(sim::MachineConfig& machine,
                            const GemmCalibration& cal);

}  // namespace axonn::perf
