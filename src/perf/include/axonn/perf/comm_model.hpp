#pragma once

// The paper's communication performance model (§V-B, Eqs. 1–7).
//
// Given a neural network, training hyperparameters and a machine's
// bandwidths, the model predicts the time spent in each collective of
// Algorithm 1 for a candidate 4D grid configuration, sums them over the
// network (Eq. 6), and ranks all candidate configurations. Per the paper's
// assumptions: ring algorithms (A1), node-boundary-minimizing rings (A2),
// no message startup cost (A3), communication only (A4), uniform inter-node
// bandwidth (A5). Per-dimension bandwidths come from the intra-node
// database (Case 1) or Eq. 7 (Case 2) via sim::effective_bandwidth.

#include <vector>

#include "axonn/comm/segment_model.hpp"
#include "axonn/model/gpt.hpp"
#include "axonn/sim/bandwidth.hpp"
#include "axonn/sim/grid_shape.hpp"
#include "axonn/sim/machine.hpp"

namespace axonn::perf {

/// Predicted time and traffic of the five collectives of one FC layer
/// (Eqs. 1–5). For 'transposed' layers the X and Y roles are swapped.
struct LayerCommPrediction {
  double t_ag_z = 0;    ///< Eq. 1: all-gather of the W shard (Z groups)
  double t_rs_z = 0;    ///< Eq. 2: reduce-scatter of dW (Z groups)
  double t_ar_fwd = 0;  ///< Eq. 3: all-reduce of the output (row/Y groups)
  double t_ar_bwd = 0;  ///< Eq. 4: all-reduce of dI (column/X groups)
  double t_ar_data = 0; ///< Eq. 5: data-parallel gradient all-reduce share

  /// Wire bytes per rank for each collective — used by tests to cross-check
  /// against the instrumented ThreadComm byte counters.
  double bytes_ag_z = 0;
  double bytes_rs_z = 0;
  double bytes_ar_fwd = 0;
  double bytes_ar_bwd = 0;
  double bytes_ar_data = 0;

  /// Eq. 6.
  double total() const {
    return t_ag_z + t_rs_z + t_ar_fwd + t_ar_bwd + t_ar_data;
  }
};

/// Per-dimension effective bandwidths beta = (beta_x, beta_y, beta_z,
/// beta_data) for a grid on a machine (§V-B Case 1 + Eq. 7).
struct DimensionBandwidths {
  double x = 0, y = 0, z = 0, data = 0;
};

DimensionBandwidths dimension_bandwidths(const sim::MachineConfig& machine,
                                         const sim::IntraNodeBandwidthDB& db,
                                         const sim::GridShape& grid);

/// Ring pipelining granularity from the same alpha-beta cost terms the grid
/// ranker uses: alpha is the machine's per-message startup latency (the term
/// Assumption-3 drops from Eqs. 1-5 but which dominates small segments) and
/// beta comes from the dimension's effective bandwidth, converted to
/// seconds per float element. The transport minimizes
/// T(s) = (h - 1 + N/s)(alpha + s*beta) over segment size s — see
/// comm/segment_model.hpp. `dimension_bandwidth` is bytes/s for the grid
/// dimension the ring spans (a DimensionBandwidths field); non-positive
/// values fall back to the machine's inter-node bandwidth.
comm::RingSegmentModel ring_segment_model(const sim::MachineConfig& machine,
                                          double dimension_bandwidth);

/// Eqs. 1–5 for one FC layer with weight k x n and m input rows
/// (m = batch_tokens / Gdata), element size 2 bytes (bf16).
LayerCommPrediction predict_layer(double m_rows, double k, double n,
                                  bool transposed, const sim::GridShape& grid,
                                  const DimensionBandwidths& beta);

/// Whole-network predicted communication time: Eq. 6 applied to every FC
/// layer (alternating the transpose role) and summed.
double predict_comm_time(const model::TrainingJob& job,
                         const sim::MachineConfig& machine,
                         const sim::IntraNodeBandwidthDB& db,
                         const sim::GridShape& grid);

struct RankedConfig {
  sim::GridShape grid;
  double predicted_comm_s = 0;
  /// model::memory_per_gpu().total() for this grid — the per-rank footprint
  /// the feasibility filter compares against the machine/budget.
  double predicted_mem_bytes = 0;
  bool memory_feasible = true;
};

/// Enumerates every power-of-two grid over `total_gpus`, predicts each, and
/// returns them sorted fastest-first. When `require_memory_fit` is set,
/// infeasible configurations are dropped (the paper only runs feasible
/// ones). A positive `per_rank_mem_budget_bytes` additionally caps the
/// predicted per-rank footprint — tighter than the machine's HBM when an
/// operator reserves headroom, looser when testing hypothetical machines.
std::vector<RankedConfig> rank_configurations(
    const model::TrainingJob& job, const sim::MachineConfig& machine,
    const sim::IntraNodeBandwidthDB& db, std::int64_t total_gpus,
    bool require_memory_fit = true, double per_rank_mem_budget_bytes = 0);

/// The best configuration by the model — the paper's "Perf model" bars use
/// the best of the model's top-10 measured empirically; benches typically
/// simulate the top-10 and keep the fastest.
RankedConfig best_configuration(const model::TrainingJob& job,
                                const sim::MachineConfig& machine,
                                const sim::IntraNodeBandwidthDB& db,
                                std::int64_t total_gpus);

}  // namespace axonn::perf
