#include "axonn/perf/comm_model.hpp"

#include <algorithm>

#include "axonn/base/error.hpp"
#include "axonn/sim/iteration.hpp"

namespace axonn::perf {

namespace {
constexpr double kBf16Bytes = 2.0;
}

DimensionBandwidths dimension_bandwidths(const sim::MachineConfig& machine,
                                         const sim::IntraNodeBandwidthDB& db,
                                         const sim::GridShape& grid) {
  DimensionBandwidths beta;
  beta.x = sim::effective_bandwidth(machine, db, grid.preceding(0), grid.gx);
  beta.y = sim::effective_bandwidth(machine, db, grid.preceding(1), grid.gy);
  beta.z = sim::effective_bandwidth(machine, db, grid.preceding(2), grid.gz);
  beta.data =
      sim::effective_bandwidth(machine, db, grid.preceding(3), grid.gdata);
  return beta;
}

comm::RingSegmentModel ring_segment_model(const sim::MachineConfig& machine,
                                          double dimension_bandwidth) {
  comm::RingSegmentModel model;
  model.alpha_s = machine.message_latency_s;
  const double bw = dimension_bandwidth > 0.0 ? dimension_bandwidth
                                              : machine.internode_bandwidth;
  // The transport moves float payloads; beta is seconds per element.
  model.beta_s_per_elem = static_cast<double>(sizeof(float)) / bw;
  return model;
}

LayerCommPrediction predict_layer(double m_rows, double k, double n,
                                  bool transposed, const sim::GridShape& grid,
                                  const DimensionBandwidths& beta) {
  AXONN_CHECK(m_rows > 0 && k > 0 && n > 0);
  // For transposed layers the roles of the X and Y groups swap (§V-A):
  // the 'row' group holds W's rows and aggregates the forward output; the
  // 'col' group holds W's columns and aggregates dI in the backward pass.
  const double g_row = transposed ? grid.gx : grid.gy;
  const double g_col = transposed ? grid.gy : grid.gx;
  const double beta_row = transposed ? beta.x : beta.y;
  const double beta_col = transposed ? beta.y : beta.x;
  const double gz = grid.gz;
  const double gd = grid.gdata;

  LayerCommPrediction p;

  // Eq. 1: t_AG,z = (1/beta_z) (Gz-1) k n / (Gx Gy Gz).
  p.bytes_ag_z = kBf16Bytes * (gz - 1.0) * k * n / (g_row * g_col * gz);
  p.t_ag_z = p.bytes_ag_z / beta.z;

  // Eq. 2: t_RS,z = (1/beta_z) ((Gz-1)/Gz) k n / (Gx Gy).
  p.bytes_rs_z = kBf16Bytes * ((gz - 1.0) / gz) * k * n / (g_row * g_col);
  p.t_rs_z = p.bytes_rs_z / beta.z;

  // Eq. 3: t_AR,y = (2/beta_y) ((Gy-1)/Gy) m n / (Gz Gx).
  p.bytes_ar_fwd =
      2.0 * kBf16Bytes * ((g_row - 1.0) / g_row) * m_rows * n / (gz * g_col);
  p.t_ar_fwd = p.bytes_ar_fwd / beta_row;

  // Eq. 4: t_AR,x = (2/beta_x) ((Gx-1)/Gx) m k / (Gz Gy).
  p.bytes_ar_bwd =
      2.0 * kBf16Bytes * ((g_col - 1.0) / g_col) * m_rows * k / (gz * g_row);
  p.t_ar_bwd = p.bytes_ar_bwd / beta_col;

  // Eq. 5: t_AR,data = (2/beta_d) ((Gd-1)/Gd) k n / (Gx Gy Gz).
  p.bytes_ar_data =
      2.0 * kBf16Bytes * ((gd - 1.0) / gd) * k * n / (g_row * g_col * gz);
  p.t_ar_data = p.bytes_ar_data / beta.data;

  return p;
}

double predict_comm_time(const model::TrainingJob& job,
                         const sim::MachineConfig& machine,
                         const sim::IntraNodeBandwidthDB& db,
                         const sim::GridShape& grid) {
  const DimensionBandwidths beta = dimension_bandwidths(machine, db, grid);
  const double m_rows = job.batch_tokens / static_cast<double>(grid.gdata);

  double total = 0.0;
  std::size_t fc_index = 0;
  const auto fcs = job.model.fc_layers_per_block();
  for (int block = 0; block < job.model.layers; ++block) {
    for (const auto& fc : fcs) {
      const bool transposed = (fc_index % 2 == 1);
      total += predict_layer(m_rows, static_cast<double>(fc.in_features),
                             static_cast<double>(fc.out_features), transposed,
                             grid, beta)
                   .total();
      ++fc_index;
    }
  }
  return total;
}

std::vector<RankedConfig> rank_configurations(
    const model::TrainingJob& job, const sim::MachineConfig& machine,
    const sim::IntraNodeBandwidthDB& db, std::int64_t total_gpus,
    bool require_memory_fit, double per_rank_mem_budget_bytes) {
  std::vector<RankedConfig> ranked;
  for (const sim::GridShape& grid : sim::enumerate_grids(total_gpus)) {
    RankedConfig rc;
    rc.grid = grid;
    rc.predicted_mem_bytes =
        model::memory_per_gpu(job, grid.gx, grid.gy, grid.gz, grid.gdata)
            .total();
    rc.memory_feasible = sim::fits_in_memory(job, machine, grid) &&
                         (per_rank_mem_budget_bytes <= 0 ||
                          rc.predicted_mem_bytes <= per_rank_mem_budget_bytes);
    if (require_memory_fit && !rc.memory_feasible) continue;
    rc.predicted_comm_s = predict_comm_time(job, machine, db, grid);
    ranked.push_back(rc);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const RankedConfig& a, const RankedConfig& b) {
                     return a.predicted_comm_s < b.predicted_comm_s;
                   });
  return ranked;
}

RankedConfig best_configuration(const model::TrainingJob& job,
                                const sim::MachineConfig& machine,
                                const sim::IntraNodeBandwidthDB& db,
                                std::int64_t total_gpus) {
  const auto ranked = rank_configurations(job, machine, db, total_gpus, true);
  AXONN_CHECK_MSG(!ranked.empty(),
                  "no memory-feasible configuration for this GPU count");
  return ranked.front();
}

}  // namespace axonn::perf
