#include "axonn/perf/memory_model.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "axonn/base/error.hpp"
#include "axonn/base/log.hpp"
#include "axonn/base/metrics.hpp"

namespace axonn::perf {

namespace {

constexpr double kFloatBytes = 4.0;

double ru16(double n) { return std::ceil(n / 16.0) * 16.0; }

/// The four FC sublayers of one transformer block, (in, out).
struct FcDims {
  double in = 0, out = 0;
};
std::array<FcDims, 4> block_fcs(double h) {
  return {{{h, 3 * h}, {h, h}, {h, 4 * h}, {4 * h, h}}};
}

}  // namespace

MemoryPrediction predict_memory(const MemoryModelConfig& config) {
  const double h = config.hidden;
  const double v = config.vocab;
  const double s = config.max_seq;
  const double L = config.layers;
  const double B = config.batch;
  const double len = config.input_len;
  const double R = B * len;  // token rows per rank per step
  const double W = static_cast<double>(config.gz) * config.gdata;
  const double gdata = config.gdata;
  const double gz = config.gz;

  // Parameter inventory (elements), mirroring GPTModel's constructor:
  // replicated tensors live whole on every rank; the FC weights are row
  // chunks over the Z group, so one data replica's shards sum to the full
  // weights and the process holds gdata copies of them.
  const double p_repl = v * h + s * h + L * 4 * h + 2 * h + h * v;
  const double p_fc = L * 12 * h * h;  // sum of in*out over all FCs
  // Elements held once per rank (replicated) + once per data replica
  // (Z-sharded): the shape every parameter-sized subsystem shares.
  const double param_elems = W * p_repl + gdata * p_fc;

  MemoryPrediction pred;
  const auto set = [&pred](mem::Tag tag, double bytes) {
    pred.tag_bytes[static_cast<std::size_t>(tag)] = bytes;
  };

  // -- weights (fc_layer.cpp, gpt_model.cpp ctor) ---------------------------
  // Steady state per rank: the parameter tensors themselves plus one full
  // gathered weight block per FC (cached_weight_block_). OAG adds a
  // shard-sized send snapshot (prefetch_send_buffer_) and, at the adoption
  // instant, the freshly gathered block coexists with the block it replaces
  // — the double-buffer peak.
  const double max_fc_block = 4 * h * h;  // mlp_up / mlp_down, the largest
  double weight_elems = param_elems + W * p_fc;
  if (config.overlap_collectives) {
    weight_elems += gdata * p_fc + W * p_fc;
  } else {
    // gather_full_weights() constructs the replacement block before the
    // move-assignment frees the old one, so each per-step re-gather briefly
    // doubles that FC's block; the peak is the largest FC's block, per rank.
    weight_elems += W * max_fc_block;
  }
  set(mem::Tag::kWeights, kFloatBytes * weight_elems);

  // -- grads / adam (gpt_model.cpp ctor, adam.cpp add_param) ----------------
  // One gradient tensor per parameter; two Adam moments per parameter.
  set(mem::Tag::kGrads, kFloatBytes * param_elems);
  set(mem::Tag::kAdam, 2 * kFloatBytes * param_elems);

  // -- activations (gpt_model.cpp train_step, fc_layer.cpp) -----------------
  // Peak is at the end of block 0's backward iteration: every block's
  // forward cache is still retained (caches are freed only when train_step
  // returns), the FC layers hold their cached inputs and dW send buffers,
  // and the full backward working set of one block is live.
  //
  //   per-block cache: block_input(Rh) + ln1.normalized(Rh) + ln1_out(Rh) +
  //     qkv_out(3Rh) + attn_concat(Rh) + after_attn(Rh) + ln2.normalized(Rh)
  //     + ln2_out(Rh) + mlp_pre_gelu(4Rh) = 14Rh, plus the per-head softmax
  //     probs (B * heads * len^2).
  //   per-block FC state: cached_input_ (ln1_out + attn_concat + ln2_out +
  //     mlp_act = 7Rh) and rs_send_buffer_ (sum in*out = 12h^2).
  //   top level: x0 copy + final_in + final_out + d_normed = 4Rh, logits +
  //     dlogits = 2Rv, and the lm_head dW GEMM temporary (hv).
  //   block-0 backward set: d_after_attn + d_mlp_act(4) + d_mlp_pre(4) +
  //     d_ln2_out + d_ln2_in + d_concat + d_qkv(3) + d_ln1_out + d_ln1_in +
  //     dx = 18Rh.
  const double act_elems =
      L * (21 * R * h + B * config.heads * len * len + 12 * h * h) +
      22 * R * h + 2 * R * v + h * v;
  set(mem::Tag::kActivations, kFloatBytes * W * act_elems);

  // -- packed panels (gemm_tiled.cpp, fc_layer.cpp weight_pack_for) ---------
  // Steady state per rank (tiled backend): one NN pack (in x ru16(out)) and
  // one NT pack (out x ru16(in)) per FC, rebuilt every step after the
  // optimizer invalidates the weight cache. Peak adds the transient dO pack
  // of the last dW GEMM of the step (qkv: R x ru16(3h) — by then every
  // weight pack of the step has been rebuilt) and the per-lane A-pack
  // scratch (ceil(kBlockM/kTileMR)*kTileMR*kBlockK = 96*256 floats).
  if (config.tiled_backend) {
    double steady = 0;
    for (const FcDims& fc : block_fcs(h)) {
      steady += fc.in * ru16(fc.out) + fc.out * ru16(fc.in);
    }
    steady *= L;
    const double transient =
        R * ru16(3 * h) + static_cast<double>(config.gemm_lanes) * 96.0 * 256.0;
    set(mem::Tag::kPackedPanels, kFloatBytes * W * (steady + transient));
  }

  // -- comm buffers (fc_layer.cpp backward) ---------------------------------
  // One shard-sized reduce-scatter receive staging buffer per FC per rank;
  // shards over one data replica sum to the full weights. Each backward
  // rebuilds rs_recv_buffer_ with a fresh Matrix while the old one is still
  // alive — the same re-gather double-buffer transient as the weight cache,
  // shard-sized. Ring segment frames (thread_comm.cpp) only materialize on
  // multi-rank communicators and are transport-internal — at gz == gdata
  // == 1 this term is exact, beyond that it is a lower bound.
  set(mem::Tag::kCommBuffers,
      kFloatBytes * (gdata * p_fc + W * max_fc_block / gz));

  // -- journal (sentinel.cpp, replica.cpp) ----------------------------------
  // One sentinel snapshot = weights + both Adam moments = 3x the parameter
  // elements; the deque briefly holds depth + 1 snapshots while a push
  // displaces the oldest. Replica blobs serialize the same tensors at 4
  // bytes each plus ~2 KiB of section framing, two steps deep per slot.
  double journal_bytes = 0;
  if (config.journal_depth > 0) {
    journal_bytes += (config.journal_depth + 1) * 3 * kFloatBytes * param_elems;
  }
  if (config.replica_slots > 0) {
    const double blob =
        3 * kFloatBytes * (p_repl + p_fc / gz) + 2048.0;
    journal_bytes += config.replica_slots * 2.0 * blob;
  }
  set(mem::Tag::kJournal, journal_bytes);

  return pred;
}

// ---------------------------------------------------------------------------
// MemoryModelChecker
// ---------------------------------------------------------------------------

namespace {

namespace metrics = obs::metrics;

struct CheckGauges {
  metrics::Gauge predicted;
  metrics::Gauge measured;
  metrics::Gauge rel_error;
};

CheckGauges& check_gauges(mem::Tag tag) {
  static auto* gauges = [] {
    auto* arr = new std::array<CheckGauges*, mem::kNumTags>{};
    for (std::size_t t = 0; t < mem::kNumTags; ++t) {
      const std::string base =
          std::string("memcheck.") + mem::to_string(static_cast<mem::Tag>(t));
      (*arr)[t] = new CheckGauges{
          metrics::Gauge(base + ".predicted_bytes",
                         "MemoryModel predicted peak bytes for this tag"),
          metrics::Gauge(base + ".measured_bytes",
                         "arena high-water bytes measured over the window"),
          metrics::Gauge(base + ".rel_error",
                         "relative error |measured-predicted|/max of the two"),
      };
    }
    return arr;
  }();
  return *(*gauges)[static_cast<std::size_t>(tag)];
}

}  // namespace

void MemoryModelChecker::begin() {
  mem::reset_high_water_marks();
  active_ = true;
}

MemoryModelChecker::Result MemoryModelChecker::finish(
    const MemoryPrediction& expected) {
  AXONN_CHECK_MSG(active_, "MemoryModelChecker::finish() without begin()");
  active_ = false;

  Result result;
  for (std::size_t t = 0; t < mem::kNumTags; ++t) {
    const auto tag = static_cast<mem::Tag>(t);
    TagResult& tr = result.tags[t];
    tr.tag = tag;
    tr.predicted_bytes = expected.tag_bytes[t];
    tr.measured_bytes = static_cast<double>(mem::tag_stats(tag).hwm_bytes);
    const double denom = std::max(tr.predicted_bytes, tr.measured_bytes);
    tr.rel_error =
        denom > 0 ? std::abs(tr.measured_bytes - tr.predicted_bytes) / denom
                  : 0.0;
    // Tags with nothing on either side have nothing to validate; kUntagged
    // is ambient noise (metrics shards, registry strings) by construction.
    tr.checked = tag != mem::Tag::kUntagged && denom >= floor_bytes_;
    tr.ok = !tr.checked || tr.rel_error <= tolerance_;
    if (tr.checked) {
      result.worst_rel_error = std::max(result.worst_rel_error, tr.rel_error);
      if (!tr.ok) {
        result.ok = false;
        AXONN_LOG_WARN << "memory model divergence on tag "
                       << mem::to_string(tag) << ": predicted "
                       << tr.predicted_bytes << " B, measured "
                       << tr.measured_bytes << " B (rel error " << tr.rel_error
                       << " > " << tolerance_ << ")";
      }
    }
    const CheckGauges& g = check_gauges(tag);
    g.predicted.set_forced(tr.predicted_bytes);
    g.measured.set_forced(tr.measured_bytes);
    g.rel_error.set_forced(tr.rel_error);
  }
  last_ = result;
  return result;
}

bool append_memcheck_jsonl(const std::string& path,
                           const MemoryModelChecker::Result& result) {
  std::ofstream out(path, std::ios::app);
  if (!out) {
    AXONN_LOG_WARN << "memcheck: cannot open " << path;
    return false;
  }
  for (const auto& tr : result.tags) {
    out << "{\"tag\":\"" << mem::to_string(tr.tag) << "\",\"predicted_bytes\":"
        << tr.predicted_bytes << ",\"measured_bytes\":" << tr.measured_bytes
        << ",\"rel_error\":" << tr.rel_error
        << ",\"checked\":" << (tr.checked ? "true" : "false")
        << ",\"ok\":" << (tr.ok ? "true" : "false") << "}\n";
  }
  out << "{\"summary\":true,\"worst_rel_error\":" << result.worst_rel_error
      << ",\"ok\":" << (result.ok ? "true" : "false") << "}\n";
  return static_cast<bool>(out);
}

}  // namespace axonn::perf
