#include "axonn/perf/gemm_calibration.hpp"

#include <chrono>

#include "axonn/base/error.hpp"
#include "axonn/tensor/gemm_dispatch.hpp"
#include "axonn/tensor/gemm_tiled.hpp"

namespace axonn::perf {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Deterministic non-trivial fill (no RNG dependency): values in [-1, 1)
// with no structure a kernel could exploit.
Matrix calibration_operand(std::size_t rows, std::size_t cols,
                           std::uint32_t salt) {
  Matrix m(rows, cols);
  std::uint32_t state = 0x9e3779b9u + salt;
  for (std::size_t i = 0; i < rows; ++i) {
    float* row = m.row(i);
    for (std::size_t j = 0; j < cols; ++j) {
      state = state * 1664525u + 1013904223u;  // LCG, full period
      row[j] = static_cast<float>(state >> 8) * 0x1.0p-23f - 1.0f;
    }
  }
  return m;
}

}  // namespace

GemmCalibration calibrate_gemm_rate(std::size_t dim, int repeats, bool bf16) {
  AXONN_CHECK_MSG(dim >= kTileNR, "calibration dim too small to tile");
  if (repeats < 1) repeats = 1;
  const Matrix a = calibration_operand(dim, dim, 1);
  const Matrix b = calibration_operand(dim, dim, 2);
  Matrix c(dim, dim);
  // Measure the pack-once hot path (prepacked weight panels), the shape the
  // training loop actually runs per step.
  const PackedB packed = pack_b(b, /*transpose=*/false, bf16);

  GemmCalibration cal;
  cal.dim = dim;
  cal.backend = GemmBackend::kTiled;
  cal.isa = active_gemm_isa();
  cal.threads = gemm_threads();
  cal.bf16 = bf16;

  // Warmup: faults in operand pages and spawns the worker lanes, so the
  // timed repeats see steady state.
  gemm_tiled_packed(/*trans_a=*/false, 1.0f, a, packed, 0.0f, c, bf16);

  const double flops = 2.0 * static_cast<double>(dim) *
                       static_cast<double>(dim) * static_cast<double>(dim);
  double best_seconds = 0;
  for (int r = 0; r < repeats; ++r) {
    const double t0 = now_seconds();
    gemm_tiled_packed(/*trans_a=*/false, 1.0f, a, packed, 0.0f, c, bf16);
    const double elapsed = now_seconds() - t0;
    if (elapsed > 0 && (best_seconds == 0 || elapsed < best_seconds)) {
      best_seconds = elapsed;
    }
  }
  // A clock too coarse to see the GEMM would divide by zero; report a rate
  // of zero instead and let callers treat the calibration as unusable.
  cal.sustained_gflops = best_seconds > 0 ? flops / best_seconds / 1e9 : 0;
  return cal;
}

void apply_gemm_calibration(sim::MachineConfig& machine,
                            const GemmCalibration& cal) {
  AXONN_CHECK_MSG(cal.sustained_gflops > 0,
                  "cannot apply an empty GEMM calibration");
  AXONN_CHECK_MSG(machine.gemm.peak_fraction > 0,
                  "machine has a degenerate gemm.peak_fraction");
  const double measured = cal.sustained_gflops * 1e9;
  machine.empirical_peak_flops = measured;
  // The efficiency model's asymptote is advertised * peak_fraction; pin that
  // product to the measurement so large-GEMM predictions match reality while
  // the mode penalties and size roll-off keep their calibrated shape.
  machine.advertised_peak_flops = measured / machine.gemm.peak_fraction;
  machine.name += "+calibrated";
}

}  // namespace axonn::perf
