// Per-rank sustained-GEMM-rate calibration (DESIGN.md §13): the measured
// rate replaces the spec-sheet compute constants of Eqs. 1-7.

#include "axonn/perf/gemm_calibration.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "axonn/tensor/gemm_dispatch.hpp"

namespace axonn::perf {
namespace {

TEST(GemmCalibrationTest, MeasuresThePathItClaimsToMeasure) {
  GemmThreadScope lanes(2);
  const GemmCalibration cal = calibrate_gemm_rate(64, 2);
  EXPECT_GT(cal.sustained_gflops, 0.0);
  EXPECT_EQ(cal.dim, 64u);
  EXPECT_EQ(cal.backend, GemmBackend::kTiled);
  // Provenance must reflect the ambient dispatch state during measurement.
  EXPECT_EQ(cal.isa, active_gemm_isa());
  EXPECT_EQ(cal.threads, 2);
  EXPECT_FALSE(cal.bf16);
  EXPECT_TRUE(calibrate_gemm_rate(64, 2, true).bf16);
}

TEST(GemmCalibrationTest, ApplyRescalesThroughTheMachinesOwnPeakFraction) {
  sim::MachineConfig machine = sim::frontier();
  GemmCalibration cal;
  cal.sustained_gflops = 50.0;  // 5e10 flops/s
  cal.dim = 256;
  apply_gemm_calibration(machine, cal);
  EXPECT_DOUBLE_EQ(machine.empirical_peak_flops, 5e10);
  EXPECT_DOUBLE_EQ(machine.advertised_peak_flops,
                   5e10 / machine.gemm.peak_fraction);
  EXPECT_NE(machine.name.find("+calibrated"), std::string::npos);
}

TEST(GemmCalibrationTest, CalibratedMachinePredictsNearTheMeasuredRate) {
  // At the calibration dim the efficiency model's size roll-off is already
  // folded into peak_fraction's back-derivation only at the large-dim limit,
  // so predictions at large dims approach the measurement from below.
  sim::MachineConfig machine = sim::frontier();
  const GemmCalibration cal = calibrate_gemm_rate(64, 2);
  apply_gemm_calibration(machine, cal);
  const std::uint64_t big = 4096;
  const double secs = machine.gemm_seconds(GemmMode::kNN, big, big, big);
  const double predicted_gflops =
      2.0 * static_cast<double>(big * big * big) / secs * 1e-9;
  EXPECT_GT(predicted_gflops, 0.0);
  EXPECT_LE(predicted_gflops, cal.sustained_gflops * 1.01);
}

}  // namespace
}  // namespace axonn::perf
