#include "axonn/perf/memory_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "axonn/base/arena.hpp"
#include "axonn/base/rng.hpp"
#include "axonn/base/metrics.hpp"
#include "axonn/comm/thread_comm.hpp"
#include "axonn/core/grid4d.hpp"
#include "axonn/perf/comm_model.hpp"
#include "axonn/sim/iteration.hpp"
#include "axonn/tensor/gemm_dispatch.hpp"
#include "axonn/train/adam.hpp"
#include "axonn/train/checkpoint.hpp"
#include "axonn/train/gpt_model.hpp"
#include "axonn/train/sentinel.hpp"

namespace axonn::perf {
namespace {

/// Restores the arena mode on scope exit so tests compose in one binary.
class ModeGuard {
 public:
  explicit ModeGuard(mem::Mode m) : prev_(mem::mode()) { mem::set_mode(m); }
  ~ModeGuard() { mem::set_mode(prev_); }

 private:
  mem::Mode prev_;
};

// ---------------------------------------------------------------------------
// predict_memory unit behavior
// ---------------------------------------------------------------------------

TEST(PredictMemoryTest, ParameterTagsScaleTogether) {
  MemoryModelConfig config;  // defaults mirror TinyGPTConfig defaults
  const MemoryPrediction p = predict_memory(config);
  EXPECT_GT(p.of(mem::Tag::kWeights), 0.0);
  EXPECT_GT(p.of(mem::Tag::kActivations), 0.0);
  EXPECT_GT(p.of(mem::Tag::kCommBuffers), 0.0);
  // Adam holds two moments per gradient element.
  EXPECT_DOUBLE_EQ(p.of(mem::Tag::kAdam), 2.0 * p.of(mem::Tag::kGrads));
  // Weights >= grads: same parameter inventory plus the gathered blocks.
  EXPECT_GT(p.of(mem::Tag::kWeights), p.of(mem::Tag::kGrads));
  EXPECT_DOUBLE_EQ(p.total(), p.of(mem::Tag::kWeights) +
                                  p.of(mem::Tag::kGrads) +
                                  p.of(mem::Tag::kAdam) +
                                  p.of(mem::Tag::kActivations) +
                                  p.of(mem::Tag::kCommBuffers));
}

TEST(PredictMemoryTest, KnobsToggleTheirTags) {
  MemoryModelConfig config;
  const MemoryPrediction base = predict_memory(config);
  EXPECT_DOUBLE_EQ(base.of(mem::Tag::kPackedPanels), 0.0);
  EXPECT_DOUBLE_EQ(base.of(mem::Tag::kJournal), 0.0);

  config.tiled_backend = true;
  EXPECT_GT(predict_memory(config).of(mem::Tag::kPackedPanels), 0.0);

  config.overlap_collectives = true;
  EXPECT_GT(predict_memory(config).of(mem::Tag::kWeights),
            base.of(mem::Tag::kWeights));

  // The journal deque peaks at depth + 1 snapshots mid-push, so depth 2 vs
  // depth 1 differ by exactly one snapshot = one (depth 1 vs depth 0) gap.
  config.journal_depth = 1;
  const double j1 = predict_memory(config).of(mem::Tag::kJournal);
  config.journal_depth = 2;
  const double j2 = predict_memory(config).of(mem::Tag::kJournal);
  EXPECT_GT(j1, 0.0);
  EXPECT_DOUBLE_EQ(j2 - j1, j1 / 2.0);

  config.journal_depth = 0;
  config.replica_slots = 2;
  EXPECT_GT(predict_memory(config).of(mem::Tag::kJournal), 0.0);
}

// ---------------------------------------------------------------------------
// Checker window semantics (no model required)
// ---------------------------------------------------------------------------

TEST(MemoryModelCheckerTest, WindowMeasuresPeakAndFloorsSmallTags) {
  ModeGuard guard(mem::Mode::kTrack);
  MemoryModelChecker checker(/*tolerance=*/0.10, /*floor_bytes=*/64.0 * 1024);
  checker.begin();
  EXPECT_TRUE(checker.active());
  void* p = nullptr;
  {
    mem::ArenaScope scope(mem::Tag::kCommBuffers);
    p = mem::allocate(1 << 20);
  }
  mem::deallocate(p);  // freed before finish: the HWM still saw it

  MemoryPrediction expected;
  expected.tag_bytes[static_cast<std::size_t>(mem::Tag::kCommBuffers)] =
      static_cast<double>(1 << 20);
  const auto result = checker.finish(expected);
  EXPECT_FALSE(checker.active());

  const auto& comm = result.of(mem::Tag::kCommBuffers);
  EXPECT_TRUE(comm.checked);
  EXPECT_TRUE(comm.ok);
  EXPECT_GE(comm.measured_bytes, static_cast<double>(1 << 20));
  // Idle tags sit below the floor on both sides: reported, not checked.
  EXPECT_FALSE(result.of(mem::Tag::kUntagged).checked);

  // The registry mirror carries the same numbers.
  const auto snap = obs::metrics::snapshot();
  EXPECT_DOUBLE_EQ(snap.value_of("memcheck.comm_buffers.measured_bytes"),
                   comm.measured_bytes);
  EXPECT_DOUBLE_EQ(snap.value_of("memcheck.comm_buffers.predicted_bytes"),
                   comm.predicted_bytes);
}

TEST(MemoryModelCheckerTest, MissingSubsystemFailsTheCheck) {
  ModeGuard guard(mem::Mode::kTrack);
  MemoryModelChecker checker;
  checker.begin();
  void* p = nullptr;
  {
    mem::ArenaScope scope(mem::Tag::kJournal);
    p = mem::allocate(1 << 20);
  }
  // Predicted zero but measured a megabyte: the model is missing a
  // subsystem and must say so.
  const auto result = checker.finish(MemoryPrediction{});
  mem::deallocate(p);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.of(mem::Tag::kJournal).ok);
  EXPECT_GT(result.worst_rel_error, 0.10);
}

TEST(MemoryModelCheckerTest, JsonlAppendsTagsAndSummary) {
  ModeGuard guard(mem::Mode::kTrack);
  MemoryModelChecker checker;
  checker.begin();
  const auto result = checker.finish(MemoryPrediction{});
  const std::string path =
      testing::TempDir() + "/axonn_memcheck_test.jsonl";
  std::remove(path.c_str());
  ASSERT_TRUE(append_memcheck_jsonl(path, result));
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  std::string last;
  while (std::getline(in, line)) {
    ++lines;
    last = line;
  }
  EXPECT_EQ(lines, mem::kNumTags + 1);  // one per tag + summary
  EXPECT_NE(last.find("\"summary\":true"), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// The acceptance gate: <= 10% per-tag error on a real tiny-GPT run
// ---------------------------------------------------------------------------

TEST(MemoryModelVsRuntimeTest, TinyGPTWithin10Percent) {
  ModeGuard guard(mem::Mode::kTrack);
  comm::run_ranks(1, [](comm::Communicator& world) {
    // Lanes are part of the packed-panels prediction, so pin the budget the
    // same way the config states it.
    GemmThreadScope lanes(1);

    train::TinyGPTConfig model_config;  // vocab 64, L2, h64, 4 heads
    model_config.overlap_collectives = false;
    model_config.gemm_backend = GemmBackend::kTiled;

    core::Grid4D grid(world, sim::GridShape{1, 1, 1, 1});
    train::GPTModel model(grid, model_config);
    train::Adam adam;
    model.register_params(adam);

    train::SentinelConfig sentinel_config;
    sentinel_config.mode = integrity::IntegrityMode::kHeal;
    sentinel_config.journal_depth = 2;
    train::TrainingSentinel sentinel(sentinel_config, world, model, adam);
    ASSERT_TRUE(sentinel.enabled());

    constexpr std::size_t kBatch = 4;
    constexpr std::size_t kLen = 17;  // input_len 16 after the target shift
    std::vector<train::TokenSeq> batch(kBatch);
    Rng rng(7);
    for (auto& seq : batch) {
      seq.resize(kLen);
      for (auto& t : seq) {
        t = static_cast<std::int32_t>(rng.uniform_int(model_config.vocab));
      }
    }
    train::TrainCursor cursor;

    auto step = [&] {
      sentinel.journal(cursor);
      model.zero_grad();
      const float loss = model.train_step(batch);
      adam.step();
      sentinel.check_step(loss, cursor);
      ++cursor.step;
    };

    // Warm up until every steady-state allocation exists (caches, packed
    // panels, rs buffers, a full journal ring), then open the window.
    step();
    step();

    MemoryModelChecker checker(/*tolerance=*/0.10);
    checker.begin();
    step();
    step();
    step();

    MemoryModelConfig config;
    config.vocab = model_config.vocab;
    config.max_seq = model_config.max_seq;
    config.layers = model_config.layers;
    config.hidden = model_config.hidden;
    config.heads = model_config.heads;
    config.batch = static_cast<int>(kBatch);
    config.input_len = static_cast<int>(kLen) - 1;
    config.overlap_collectives = model_config.overlap_collectives;
    config.tiled_backend = true;
    config.gemm_lanes = 1;
    config.journal_depth = sentinel_config.journal_depth;
    const auto result = checker.finish(predict_memory(config));

    for (const auto& tr : result.tags) {
      std::printf("  %-14s predicted %12.0f  measured %12.0f  rel %.4f%s\n",
                  mem::to_string(tr.tag), tr.predicted_bytes,
                  tr.measured_bytes, tr.rel_error,
                  tr.checked ? "" : "  (unchecked)");
    }
    EXPECT_TRUE(result.ok);
    EXPECT_LE(result.worst_rel_error, 0.10);
    // The run must be big enough that the gate means something: the
    // parameter-shaped tags and the activations must all clear the floor.
    for (const mem::Tag tag :
         {mem::Tag::kWeights, mem::Tag::kGrads, mem::Tag::kAdam,
          mem::Tag::kActivations, mem::Tag::kPackedPanels,
          mem::Tag::kCommBuffers, mem::Tag::kJournal}) {
      EXPECT_TRUE(result.of(tag).checked) << mem::to_string(tag);
    }
  });
}

// ---------------------------------------------------------------------------
// The planner integration: per-rank budgets prune the config search
// ---------------------------------------------------------------------------

TEST(RankConfigurationsTest, MemoryBudgetPrunesAndPopulatesPrediction) {
  const auto machine = sim::frontier();
  const auto db = sim::IntraNodeBandwidthDB::profile(machine);
  model::TrainingJob job{model::gpt_by_name("GPT-20B"), 16.8e6, true};
  const auto all = rank_configurations(job, machine, db, 512, false);
  ASSERT_GT(all.size(), 5u);
  for (const auto& rc : all) {
    EXPECT_GT(rc.predicted_mem_bytes, 0.0);
  }
  // A budget at the median prediction must mark roughly the upper half
  // memory-infeasible while leaving the rest intact.
  std::vector<double> mem;
  mem.reserve(all.size());
  for (const auto& rc : all) mem.push_back(rc.predicted_mem_bytes);
  std::sort(mem.begin(), mem.end());
  const double budget = mem[mem.size() / 2];
  const auto capped = rank_configurations(job, machine, db, 512, false, budget);
  ASSERT_EQ(capped.size(), all.size());  // require_memory_fit=false keeps all
  std::size_t feasible = 0;
  for (const auto& rc : capped) {
    if (rc.predicted_mem_bytes > budget) {
      EXPECT_FALSE(rc.memory_feasible);
    } else {
      ++feasible;
    }
  }
  EXPECT_GT(feasible, 0u);
  EXPECT_LT(feasible, capped.size());
}

}  // namespace
}  // namespace axonn::perf
