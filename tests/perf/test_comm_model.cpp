#include "axonn/perf/comm_model.hpp"

#include "axonn/sim/iteration.hpp"

#include <gtest/gtest.h>

#include "axonn/base/error.hpp"

namespace axonn::perf {
namespace {

sim::MachineConfig flat_machine() {
  // A machine where every bandwidth is 100 GB/s so the Eq. 1-5 algebra can
  // be checked by hand without the bandwidth hierarchy interfering.
  sim::MachineConfig m = sim::frontier();
  m.intranode_link_bandwidth = 100e9;
  m.internode_bandwidth = 100e9;
  m.fabric_sharing = 0.0;
  return m;
}

TEST(DimensionBandwidthsTest, HierarchyOrderXYZData) {
  const auto machine = sim::frontier();
  const auto db = sim::IntraNodeBandwidthDB::profile(machine);
  const sim::GridShape grid{2, 2, 2, 2};  // spans 2 nodes of 8
  const auto beta = dimension_bandwidths(machine, db, grid);
  EXPECT_DOUBLE_EQ(beta.x, db.lookup(1, 2));
  EXPECT_DOUBLE_EQ(beta.y, db.lookup(2, 2));
  EXPECT_DOUBLE_EQ(beta.z, db.lookup(4, 2));
  EXPECT_DOUBLE_EQ(beta.data, machine.internode_bandwidth / 8.0);
}

TEST(PredictLayerTest, EquationOneByHand) {
  // Eq. 1: t = (1/beta) (Gz-1) k n / (Gx Gy Gz), elements are bf16.
  const sim::GridShape grid{2, 4, 8, 1};
  DimensionBandwidths beta{100e9, 100e9, 100e9, 100e9};
  const auto p = predict_layer(1e6, 4096, 16384, false, grid, beta);
  const double expected_bytes = 2.0 * 7.0 * 4096.0 * 16384.0 / (4 * 2 * 8);
  EXPECT_NEAR(p.bytes_ag_z, expected_bytes, 1.0);
  EXPECT_NEAR(p.t_ag_z, expected_bytes / 100e9, 1e-12);
}

TEST(PredictLayerTest, EquationTwoByHand) {
  const sim::GridShape grid{2, 4, 8, 1};
  DimensionBandwidths beta{100e9, 100e9, 100e9, 100e9};
  const auto p = predict_layer(1e6, 4096, 16384, false, grid, beta);
  const double expected_bytes = 2.0 * (7.0 / 8.0) * 4096.0 * 16384.0 / (4 * 2);
  EXPECT_NEAR(p.bytes_rs_z, expected_bytes, 1.0);
}

TEST(PredictLayerTest, EquationsThreeAndFourByHand) {
  const sim::GridShape grid{2, 4, 8, 1};
  DimensionBandwidths beta{50e9, 100e9, 100e9, 100e9};
  const double m = 1e6, k = 4096, n = 16384;
  const auto p = predict_layer(m, k, n, false, grid, beta);
  // Eq. 3 over Y (size 4): 2 * (3/4) * m*n/(Gz*Gx) bytes(bf16).
  EXPECT_NEAR(p.bytes_ar_fwd, 2.0 * 2.0 * 0.75 * m * n / (8 * 2), 1.0);
  EXPECT_NEAR(p.t_ar_fwd, p.bytes_ar_fwd / 100e9, 1e-12);
  // Eq. 4 over X (size 2, beta 50): 2 * (1/2) * m*k/(Gz*Gy).
  EXPECT_NEAR(p.bytes_ar_bwd, 2.0 * 2.0 * 0.5 * m * k / (8 * 4), 1.0);
  EXPECT_NEAR(p.t_ar_bwd, p.bytes_ar_bwd / 50e9, 1e-12);
}

TEST(PredictLayerTest, EquationFiveByHand) {
  const sim::GridShape grid{2, 4, 8, 16};
  DimensionBandwidths beta{100e9, 100e9, 100e9, 25e9};
  const auto p = predict_layer(1e6, 4096, 16384, false, grid, beta);
  const double expected_bytes =
      2.0 * 2.0 * (15.0 / 16.0) * 4096.0 * 16384.0 / (2 * 4 * 8);
  EXPECT_NEAR(p.bytes_ar_data, expected_bytes, 1.0);
  EXPECT_NEAR(p.t_ar_data, expected_bytes / 25e9, 1e-12);
}

TEST(PredictLayerTest, DegenerateDimensionsDropTerms) {
  DimensionBandwidths beta{100e9, 100e9, 100e9, 100e9};
  // Gz=1: no weight sharding -> no AG/RS.
  auto p = predict_layer(1e6, 1024, 1024, false, sim::GridShape{4, 2, 1, 2}, beta);
  EXPECT_EQ(p.t_ag_z, 0.0);
  EXPECT_EQ(p.t_rs_z, 0.0);
  // Gx=Gy=1: no tensor all-reduces.
  p = predict_layer(1e6, 1024, 1024, false, sim::GridShape{1, 1, 8, 2}, beta);
  EXPECT_EQ(p.t_ar_fwd, 0.0);
  EXPECT_EQ(p.t_ar_bwd, 0.0);
  // Gdata=1: no gradient all-reduce.
  p = predict_layer(1e6, 1024, 1024, false, sim::GridShape{2, 2, 2, 1}, beta);
  EXPECT_EQ(p.t_ar_data, 0.0);
}

TEST(PredictLayerTest, TransposedSwapsXAndYRoles) {
  DimensionBandwidths beta{40e9, 80e9, 100e9, 100e9};
  const sim::GridShape grid{2, 4, 8, 1};
  const auto normal = predict_layer(1e6, 4096, 4096, false, grid, beta);
  const auto transposed = predict_layer(1e6, 4096, 4096, true, grid, beta);
  // With square weights, swapping roles exchanges fwd and bwd AR terms.
  EXPECT_NEAR(normal.t_ar_fwd, transposed.t_ar_bwd, 1e-12);
  EXPECT_NEAR(normal.t_ar_bwd, transposed.t_ar_fwd, 1e-12);
  // Z-related terms are unaffected.
  EXPECT_NEAR(normal.t_ag_z, transposed.t_ag_z, 1e-12);
}

TEST(PredictLayerTest, TotalIsEquationSix) {
  DimensionBandwidths beta{40e9, 80e9, 100e9, 25e9};
  const auto p =
      predict_layer(1e6, 4096, 16384, false, sim::GridShape{2, 4, 8, 4}, beta);
  EXPECT_NEAR(p.total(),
              p.t_ag_z + p.t_rs_z + p.t_ar_fwd + p.t_ar_bwd + p.t_ar_data,
              1e-15);
}

TEST(PredictCommTimeTest, SumsOverAllLayers) {
  const auto machine = flat_machine();
  const auto db = sim::IntraNodeBandwidthDB::profile(machine);
  model::TrainingJob job{model::gpt_by_name("GPT-5B"), 1.05e6, true};
  const sim::GridShape grid{2, 2, 2, 4};
  const double total = predict_comm_time(job, machine, db, grid);
  EXPECT_GT(total, 0.0);
  // Doubling the layer count roughly doubles predicted comm time.
  auto doubled = job;
  doubled.model.layers *= 2;
  EXPECT_NEAR(predict_comm_time(doubled, machine, db, grid), 2.0 * total,
              total * 0.01);
}

TEST(RankConfigurationsTest, SortedAscending) {
  const auto machine = sim::frontier();
  const auto db = sim::IntraNodeBandwidthDB::profile(machine);
  model::TrainingJob job{model::gpt_by_name("GPT-20B"), 16.8e6, true};
  const auto ranked = rank_configurations(job, machine, db, 512);
  ASSERT_GT(ranked.size(), 5u);
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_LE(ranked[i - 1].predicted_comm_s, ranked[i].predicted_comm_s);
  }
}

TEST(RankConfigurationsTest, MemoryFilterDropsInfeasible) {
  const auto machine = sim::frontier();
  const auto db = sim::IntraNodeBandwidthDB::profile(machine);
  model::TrainingJob job{model::gpt_by_name("GPT-320B"), 16.8e6, true};
  const auto all = rank_configurations(job, machine, db, 1024, false);
  const auto feasible = rank_configurations(job, machine, db, 1024, true);
  EXPECT_LT(feasible.size(), all.size());
  for (const auto& rc : feasible) {
    EXPECT_TRUE(rc.memory_feasible);
    // A 320B model cannot live on a handful of GCDs.
    EXPECT_GE(rc.grid.tensor(), 64);
  }
}

TEST(BestConfigurationTest, ReturnsFeasibleMinimum) {
  const auto machine = sim::frontier();
  const auto db = sim::IntraNodeBandwidthDB::profile(machine);
  model::TrainingJob job{model::gpt_by_name("GPT-20B"), 16.8e6, true};
  const auto best = best_configuration(job, machine, db, 512);
  EXPECT_TRUE(best.memory_feasible);
  const auto ranked = rank_configurations(job, machine, db, 512);
  EXPECT_EQ(best.grid, ranked.front().grid);
}

TEST(BestConfigurationTest, ThrowsWhenNothingFits) {
  const auto machine = sim::frontier();
  const auto db = sim::IntraNodeBandwidthDB::profile(machine);
  model::TrainingJob job{model::gpt_by_name("GPT-640B"), 16.8e6, true};
  EXPECT_THROW(best_configuration(job, machine, db, 8), Error);
}

TEST(PerfModelRealismTest, BestFeasibleConfigUsesModelParallelism) {
  // Pure data parallelism cannot even hold a 20B model in one 64 GB GCD;
  // the best feasible configuration must shard the model, and by the
  // paper's own equations its communication time cannot exceed pure DP's
  // (full-Z sharding moves the same 4 bytes/param as the DP all-reduce).
  const auto machine = sim::frontier();
  const auto db = sim::IntraNodeBandwidthDB::profile(machine);
  model::TrainingJob job{model::gpt_by_name("GPT-20B"), 16.8e6, true};
  const sim::GridShape dp_grid{1, 1, 1, 512};
  EXPECT_FALSE(sim::fits_in_memory(job, machine, dp_grid));
  const double dp_only = predict_comm_time(job, machine, db, dp_grid);
  const auto best = best_configuration(job, machine, db, 512);
  EXPECT_LE(best.predicted_comm_s, dp_only * (1.0 + 1e-12));
  EXPECT_GT(best.grid.tensor(), 1);
}

}  // namespace
}  // namespace axonn::perf
