// Chunk-pipelined ring collectives (segment_elems > 0) against the golden
// unsegmented algorithms. The segmented schedules must be bitwise identical
// — same pairwise reduction order — and put exactly the same bytes on the
// wire, at chunk sizes that straddle the segment boundary (partial trailing
// segments, single-segment chunks, empty chunks).

#include "axonn/comm/ring.hpp"

#include <gtest/gtest.h>

#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "axonn/comm/thread_comm.hpp"

namespace axonn::comm {
namespace {

struct FakeNetwork {
  std::map<std::pair<int, int>, std::deque<std::vector<float>>> edges;
  std::uint64_t total_wire_bytes = 0;
  std::uint64_t total_messages = 0;
};

// Thread-per-rank transport over per-edge FIFO queues (same harness as
// test_ring_algorithms.cpp): send_to never blocks, recv_from waits on the
// edge's queue, per-edge order is FIFO — the Transport contract.
struct LockedTransport {
  FakeNetwork* net;
  std::mutex* mutex;
  std::condition_variable* cv;
  int rank_, size_;
  int rank() const { return rank_; }
  int size() const { return size_; }
  void send_to(int dest, std::span<const float> data) {
    {
      std::lock_guard<std::mutex> lock(*mutex);
      net->edges[{rank_, dest}].emplace_back(data.begin(), data.end());
      net->total_wire_bytes += data.size() * sizeof(float);
      ++net->total_messages;
    }
    cv->notify_all();
  }
  void recv_from(int src, std::span<float> out) {
    std::unique_lock<std::mutex> lock(*mutex);
    auto key = std::make_pair(src, rank_);
    cv->wait(lock, [&] {
      auto it = net->edges.find(key);
      return it != net->edges.end() && !it->second.empty();
    });
    auto& queue = net->edges[key];
    AXONN_CHECK(queue.front().size() == out.size());
    std::copy(queue.front().begin(), queue.front().end(), out.begin());
    queue.pop_front();
  }
};

template <typename Body>
void run_lockstep(int p, FakeNetwork& net, Body&& body) {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::thread> threads;
  for (int r = 0; r < p; ++r) {
    threads.emplace_back([&, r] {
      LockedTransport t{&net, &mutex, &cv, r, p};
      body(t, r);
    });
  }
  for (auto& thread : threads) thread.join();
}

// Per-rank contribution values chosen so any reordering of the reduction
// would change low-order bits: irrational-ish magnitudes, sign flips.
std::vector<float> contribution(int r, std::size_t n) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = (r % 2 == 0 ? 1.0f : -1.0f) *
           (0.3f + 0.7071f * static_cast<float>(r + 1) +
            0.333f * static_cast<float>(i));
  }
  return v;
}

struct PipelineCase {
  int p;
  std::vector<std::size_t> counts;
  std::size_t segment_elems;
};

// Chunk sizes straddle the segment boundary: exact multiples, one-over, one-
// under, sub-segment chunks and empty chunks.
std::vector<PipelineCase> pipeline_cases() {
  return {
      {2, {5, 3}, 4},         // partial trailing segments
      {3, {8, 8, 8}, 4},      // exact multiples
      {3, {9, 7, 8}, 4},      // one over / one under the boundary
      {4, {7, 8, 0, 3}, 4},   // empty chunk: zero segments on both sides
      {4, {1, 1, 1, 1}, 4},   // chunks smaller than a segment
      {5, {13, 0, 5, 27, 2}, 8},
      {2, {6, 6}, 1},         // degenerate: every element its own segment
      {3, {4, 4, 4}, 1024},   // segment larger than any chunk: 1 segment
  };
}

TEST(RingPipelineTest, AllGatherMatchesGoldenBitwise) {
  for (const auto& c : pipeline_cases()) {
    const auto offsets = detail::chunk_offsets(c.counts);
    const std::size_t total = offsets.back();
    std::vector<std::vector<float>> golden(static_cast<std::size_t>(c.p),
                                           std::vector<float>(total));
    std::vector<std::vector<float>> piped = golden;
    std::uint64_t golden_bytes = 0, piped_bytes = 0;
    {
      FakeNetwork net;
      run_lockstep(c.p, net, [&](auto& t, int r) {
        const auto mine = contribution(r, c.counts[static_cast<std::size_t>(r)]);
        ring_all_gatherv(t, mine, golden[static_cast<std::size_t>(r)], c.counts);
      });
      golden_bytes = net.total_wire_bytes;
    }
    {
      FakeNetwork net;
      run_lockstep(c.p, net, [&](auto& t, int r) {
        const auto mine = contribution(r, c.counts[static_cast<std::size_t>(r)]);
        ring_all_gatherv(t, mine, piped[static_cast<std::size_t>(r)], c.counts,
                         c.segment_elems);
      });
      piped_bytes = net.total_wire_bytes;
    }
    EXPECT_EQ(golden_bytes, piped_bytes) << "p=" << c.p;  // Eq. 1 unchanged
    for (int r = 0; r < c.p; ++r) {
      EXPECT_EQ(golden[static_cast<std::size_t>(r)],
                piped[static_cast<std::size_t>(r)])
          << "p=" << c.p << " seg=" << c.segment_elems << " rank=" << r;
    }
  }
}

TEST(RingPipelineTest, ReduceScatterMatchesGoldenBitwise) {
  for (const auto& c : pipeline_cases()) {
    const auto offsets = detail::chunk_offsets(c.counts);
    const std::size_t total = offsets.back();
    std::vector<std::vector<float>> golden(static_cast<std::size_t>(c.p));
    std::vector<std::vector<float>> piped(static_cast<std::size_t>(c.p));
    for (int r = 0; r < c.p; ++r) {
      golden[static_cast<std::size_t>(r)].resize(
          c.counts[static_cast<std::size_t>(r)]);
      piped[static_cast<std::size_t>(r)].resize(
          c.counts[static_cast<std::size_t>(r)]);
    }
    std::uint64_t golden_bytes = 0, piped_bytes = 0;
    {
      FakeNetwork net;
      run_lockstep(c.p, net, [&](auto& t, int r) {
        const auto send = contribution(r, total);
        ring_reduce_scatterv(t, send, golden[static_cast<std::size_t>(r)],
                             c.counts, ReduceOp::kSum);
      });
      golden_bytes = net.total_wire_bytes;
    }
    {
      FakeNetwork net;
      run_lockstep(c.p, net, [&](auto& t, int r) {
        const auto send = contribution(r, total);
        ring_reduce_scatterv(t, send, piped[static_cast<std::size_t>(r)],
                             c.counts, ReduceOp::kSum, c.segment_elems);
      });
      piped_bytes = net.total_wire_bytes;
    }
    EXPECT_EQ(golden_bytes, piped_bytes) << "p=" << c.p;  // Eq. 2 unchanged
    for (int r = 0; r < c.p; ++r) {
      EXPECT_EQ(golden[static_cast<std::size_t>(r)],
                piped[static_cast<std::size_t>(r)])
          << "p=" << c.p << " seg=" << c.segment_elems << " rank=" << r;
    }
  }
}

TEST(RingPipelineTest, AllReduceMatchesGoldenBitwiseAcrossOps) {
  for (int p : {2, 3, 5}) {
    for (std::size_t n : {7u, 16u, 65u}) {  // straddles seg=8 chunk splits
      for (ReduceOp op : {ReduceOp::kSum, ReduceOp::kMax, ReduceOp::kMin}) {
        std::vector<std::vector<float>> golden(static_cast<std::size_t>(p));
        std::vector<std::vector<float>> piped(static_cast<std::size_t>(p));
        {
          FakeNetwork net;
          run_lockstep(p, net, [&](auto& t, int r) {
            golden[static_cast<std::size_t>(r)] = contribution(r, n);
            ring_all_reduce(
                t, std::span<float>(golden[static_cast<std::size_t>(r)]), op);
          });
        }
        {
          FakeNetwork net;
          run_lockstep(p, net, [&](auto& t, int r) {
            piped[static_cast<std::size_t>(r)] = contribution(r, n);
            ring_all_reduce(
                t, std::span<float>(piped[static_cast<std::size_t>(r)]), op,
                /*segment_elems=*/8);
          });
        }
        for (int r = 0; r < p; ++r) {
          EXPECT_EQ(golden[static_cast<std::size_t>(r)],
                    piped[static_cast<std::size_t>(r)])
              << "p=" << p << " n=" << n << " rank=" << r;
        }
      }
    }
  }
}

TEST(RingPipelineTest, SegmentationSplitsMessagesWithoutExtraBytes) {
  // seg=4 over chunks of 10: each chunk crosses an edge in 3 messages
  // (4+4+2) instead of 1, with byte totals untouched.
  const int p = 3;
  const std::vector<std::size_t> counts{10, 10, 10};
  auto run = [&](std::size_t seg) {
    FakeNetwork net;
    std::vector<std::vector<float>> out(p, std::vector<float>(30));
    run_lockstep(p, net, [&](auto& t, int r) {
      const auto mine = contribution(r, 10);
      ring_all_gatherv(t, mine, out[static_cast<std::size_t>(r)], counts, seg);
    });
    return std::make_pair(net.total_wire_bytes, net.total_messages);
  };
  const auto [bytes_unseg, msgs_unseg] = run(0);
  const auto [bytes_seg, msgs_seg] = run(4);
  EXPECT_EQ(bytes_seg, bytes_unseg);
  EXPECT_EQ(msgs_seg, msgs_unseg * 3);
}

TEST(RingPipelineTest, ThreadCommRunsSegmentedRingsEndToEnd) {
  // The in-process runtime with pipelining on (the default) must produce
  // bitwise the same collectives as a world with segmentation disabled —
  // including through the nonblocking progress-stream path.
  const int p = 4;
  const std::size_t n = 4099;  // prime-ish: uneven chunks + partial segments
  auto run_world = [&](std::size_t seg) {
    WorldOptions options;
    options.ring_segment_elems = seg;
    std::vector<std::vector<float>> ar(static_cast<std::size_t>(p));
    std::vector<std::vector<float>> ag(static_cast<std::size_t>(p),
                                       std::vector<float>(n * p));
    std::vector<std::vector<float>> rs(static_cast<std::size_t>(p),
                                       std::vector<float>(n));
    run_ranks(
        p,
        [&](Communicator& world) {
          const int r = world.rank();
          ar[static_cast<std::size_t>(r)] = contribution(r, n);
          world.all_reduce(
              std::span<float>(ar[static_cast<std::size_t>(r)]),
              ReduceOp::kSum);
          const auto mine = contribution(r, n);
          Request req = world.iall_gather(
              mine, std::span<float>(ag[static_cast<std::size_t>(r)]));
          req.wait();
          const auto send = contribution(r, n * static_cast<std::size_t>(p));
          world.reduce_scatter(
              send, std::span<float>(rs[static_cast<std::size_t>(r)]),
              ReduceOp::kSum);
        },
        options);
    return std::make_tuple(ar, ag, rs);
  };
  const auto [ar0, ag0, rs0] = run_world(0);
  const auto [ar1, ag1, rs1] = run_world(512);
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(ar0[static_cast<std::size_t>(r)], ar1[static_cast<std::size_t>(r)]);
    EXPECT_EQ(ag0[static_cast<std::size_t>(r)], ag1[static_cast<std::size_t>(r)]);
    EXPECT_EQ(rs0[static_cast<std::size_t>(r)], rs1[static_cast<std::size_t>(r)]);
  }
}

TEST(RingPipelineTest, WorldOptionsAndSetterControlSegmentSize) {
  ThreadWorld world(1, WorldOptions{.collective_timeout = {},
                                    .ring_segment_elems = 77});
  EXPECT_EQ(world.ring_segment_elems(), 77u);
  world.set_ring_segment_elems(0);
  EXPECT_EQ(world.ring_segment_elems(), 0u);
}

}  // namespace
}  // namespace axonn::comm
