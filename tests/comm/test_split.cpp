// Communicator split: the mechanism that builds the X/Y/Z/data process
// groups of the 4D virtual grid out of the world communicator.

#include <gtest/gtest.h>

#include <vector>

#include "axonn/comm/thread_comm.hpp"

namespace axonn::comm {
namespace {

TEST(SplitTest, EvenOddGroups) {
  run_ranks(6, [](Communicator& comm) {
    auto sub = comm.split(comm.rank() % 2, comm.rank());
    ASSERT_NE(sub, nullptr);
    EXPECT_EQ(sub->size(), 3);
    EXPECT_EQ(sub->rank(), comm.rank() / 2);
    // Collectives inside the subgroup only see subgroup members.
    std::vector<float> buf{static_cast<float>(comm.rank())};
    sub->all_reduce(buf, ReduceOp::kSum);
    if (comm.rank() % 2 == 0) {
      EXPECT_EQ(buf[0], 0.0f + 2.0f + 4.0f);
    } else {
      EXPECT_EQ(buf[0], 1.0f + 3.0f + 5.0f);
    }
  });
}

TEST(SplitTest, KeyControlsRankOrder) {
  run_ranks(4, [](Communicator& comm) {
    // Reverse the rank order via descending keys.
    auto sub = comm.split(0, comm.size() - comm.rank());
    ASSERT_NE(sub, nullptr);
    EXPECT_EQ(sub->rank(), comm.size() - 1 - comm.rank());
  });
}

TEST(SplitTest, NegativeColorOptsOut) {
  run_ranks(4, [](Communicator& comm) {
    auto sub = comm.split(comm.rank() == 0 ? -1 : 7, comm.rank());
    if (comm.rank() == 0) {
      EXPECT_EQ(sub, nullptr);
    } else {
      ASSERT_NE(sub, nullptr);
      EXPECT_EQ(sub->size(), 3);
      std::vector<float> buf{1.0f};
      sub->all_reduce(buf, ReduceOp::kSum);
      EXPECT_EQ(buf[0], 3.0f);
    }
  });
}

TEST(SplitTest, NestedSplitsBuild4DGridGroups) {
  // 8 ranks as a 2x2x2 grid (x fastest): the hierarchical layout of §V-B.
  run_ranks(8, [](Communicator& comm) {
    const int r = comm.rank();
    const int x = r % 2;
    const int y = (r / 2) % 2;
    const int z = r / 4;
    // X groups: ranks with same (y, z).
    auto xg = comm.split(y * 2 + z, x);
    // Y groups: same (x, z).
    auto yg = comm.split(x * 2 + z, y);
    // Z groups: same (x, y).
    auto zg = comm.split(x * 2 + y, z);
    ASSERT_NE(xg, nullptr);
    ASSERT_NE(yg, nullptr);
    ASSERT_NE(zg, nullptr);
    EXPECT_EQ(xg->size(), 2);
    EXPECT_EQ(yg->size(), 2);
    EXPECT_EQ(zg->size(), 2);
    EXPECT_EQ(xg->rank(), x);
    EXPECT_EQ(yg->rank(), y);
    EXPECT_EQ(zg->rank(), z);

    // The X-group of rank r must pair (0,1), (2,3), (4,5), (6,7) — the
    // "innermost" groups from the paper's concrete 8-GPU example.
    std::vector<float> probe{static_cast<float>(r)};
    xg->all_reduce(probe, ReduceOp::kSum);
    const float expected_pair_sum = static_cast<float>((r / 2) * 4 + 1);
    EXPECT_EQ(probe[0], expected_pair_sum);

    // Y-groups pair (0,2),(1,3),(4,6),(5,7).
    std::vector<float> probe_y{static_cast<float>(r)};
    yg->all_reduce(probe_y, ReduceOp::kSum);
    const int y_peer = (y == 0) ? r + 2 : r - 2;
    EXPECT_EQ(probe_y[0], static_cast<float>(r + y_peer));
  });
}

TEST(SplitTest, SubcommunicatorsAreIndependentChannels) {
  // Simultaneous collectives on sibling subcommunicators must not interfere.
  run_ranks(8, [](Communicator& comm) {
    auto sub = comm.split(comm.rank() / 4, comm.rank());
    ASSERT_NE(sub, nullptr);
    for (int iter = 0; iter < 20; ++iter) {
      std::vector<float> buf{static_cast<float>(comm.rank() + iter)};
      sub->all_reduce(buf, ReduceOp::kSum);
      const float base = comm.rank() < 4 ? 0.0f + 1 + 2 + 3 : 4.0f + 5 + 6 + 7;
      EXPECT_FLOAT_EQ(buf[0], base + 4.0f * static_cast<float>(iter));
    }
  });
}

TEST(SplitTest, SplitOfSplit) {
  run_ranks(8, [](Communicator& comm) {
    auto half = comm.split(comm.rank() / 4, comm.rank());  // two groups of 4
    ASSERT_NE(half, nullptr);
    auto quarter = half->split(half->rank() / 2, half->rank());  // pairs
    ASSERT_NE(quarter, nullptr);
    EXPECT_EQ(quarter->size(), 2);
    std::vector<float> buf{static_cast<float>(comm.rank())};
    quarter->all_reduce(buf, ReduceOp::kSum);
    // Pairs are (0,1),(2,3),(4,5),(6,7) in world ranks.
    const int base = (comm.rank() / 2) * 2;
    EXPECT_EQ(buf[0], static_cast<float>(base + base + 1));
  });
}

TEST(SplitTest, AllSameColorClonesCommunicator) {
  run_ranks(4, [](Communicator& comm) {
    auto clone = comm.split(0, comm.rank());
    ASSERT_NE(clone, nullptr);
    EXPECT_EQ(clone->size(), comm.size());
    EXPECT_EQ(clone->rank(), comm.rank());
  });
}

}  // namespace
}  // namespace axonn::comm
