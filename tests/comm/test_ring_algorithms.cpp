// Tests the ring algorithm templates in isolation using an in-test transport
// backed by simple per-edge queues, including the wire-byte counts the
// paper's performance model assumes (Assumption-1 + Eqs. 1-2).

#include "axonn/comm/ring.hpp"

#include <gtest/gtest.h>

#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "axonn/base/partition.hpp"

namespace axonn::comm {
namespace {

// Deterministic single-threaded "network": messages are queued per (src,
// dst) edge. Ring steps are executed rank-by-rank in lockstep by the driver
// below, which works because send_to never blocks.
struct FakeNetwork {
  std::map<std::pair<int, int>, std::deque<std::vector<float>>> edges;
  std::uint64_t total_wire_bytes = 0;
};

class FakeTransport {
 public:
  FakeTransport(FakeNetwork* net, int rank, int size)
      : net_(net), rank_(rank), size_(size) {}

  int rank() const { return rank_; }
  int size() const { return size_; }

  void send_to(int dest, std::span<const float> data) {
    net_->edges[{rank_, dest}].emplace_back(data.begin(), data.end());
    net_->total_wire_bytes += data.size() * sizeof(float);
  }

  void recv_from(int src, std::span<float> out) {
    auto& queue = net_->edges[{src, rank_}];
    AXONN_CHECK_MSG(!queue.empty(),
                    "FakeTransport recv with empty queue — lockstep violated");
    AXONN_CHECK(queue.front().size() == out.size());
    std::copy(queue.front().begin(), queue.front().end(), out.begin());
    queue.pop_front();
  }

 private:
  FakeNetwork* net_;
  int rank_;
  int size_;
};

// Runs one ring collective across all ranks in lockstep. The ring algorithms
// alternate send/recv in matched steps, so executing rank bodies round-robin
// one step at a time is equivalent to true concurrency. We exploit that the
// templates only interleave (send, recv) pairs: running all sends of a step
// before any recv is achieved by running complete rank bodies sequentially —
// but a sequential run would block on recv of not-yet-sent data. Instead we
// drive each rank in its own coroutine-like pass: for the ring algorithms
// this works because rank r's step-s recv depends only on rank r-1's step-s
// send, and we execute ranks 0..p-1 in a cyclic order per step via threads.
//
// Simplest correct driver: a thread per rank (they are only p <= 8 in tests).
template <typename Body>
void run_lockstep(int p, FakeNetwork& net, Body&& body) {
  // The fake transport's queues are unsynchronized, so single-thread it:
  // interleave rank executions by running each rank's body in a fiber-like
  // manner is overkill — instead we exploit that our ring templates buffer
  // sends before receives *within a step* only across distinct ranks.
  // Run ranks as threads with a mutex around the network.
  struct LockedTransport {
    FakeNetwork* net;
    std::mutex* mutex;
    std::condition_variable* cv;
    int rank_, size_;
    int rank() const { return rank_; }
    int size() const { return size_; }
    void send_to(int dest, std::span<const float> data) {
      {
        std::lock_guard<std::mutex> lock(*mutex);
        net->edges[{rank_, dest}].emplace_back(data.begin(), data.end());
        net->total_wire_bytes += data.size() * sizeof(float);
      }
      cv->notify_all();
    }
    void recv_from(int src, std::span<float> out) {
      std::unique_lock<std::mutex> lock(*mutex);
      auto key = std::make_pair(src, rank_);
      cv->wait(lock, [&] {
        auto it = net->edges.find(key);
        return it != net->edges.end() && !it->second.empty();
      });
      auto& queue = net->edges[key];
      AXONN_CHECK(queue.front().size() == out.size());
      std::copy(queue.front().begin(), queue.front().end(), out.begin());
      queue.pop_front();
    }
  };

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::thread> threads;
  for (int r = 0; r < p; ++r) {
    threads.emplace_back([&, r] {
      LockedTransport t{&net, &mutex, &cv, r, p};
      body(t, r);
    });
  }
  for (auto& thread : threads) thread.join();
}

TEST(RingAllGatherTest, GathersInRankOrder) {
  const int p = 4;
  const std::vector<std::size_t> counts{2, 2, 2, 2};
  FakeNetwork net;
  std::vector<std::vector<float>> results(p, std::vector<float>(8));
  run_lockstep(p, net, [&](auto& t, int r) {
    const std::vector<float> mine{static_cast<float>(10 * r),
                                  static_cast<float>(10 * r + 1)};
    ring_all_gatherv(t, mine, results[static_cast<std::size_t>(r)], counts);
  });
  for (int r = 0; r < p; ++r) {
    const auto& out = results[static_cast<std::size_t>(r)];
    for (int src = 0; src < p; ++src) {
      EXPECT_EQ(out[static_cast<std::size_t>(2 * src)], 10.0f * src);
      EXPECT_EQ(out[static_cast<std::size_t>(2 * src + 1)], 10.0f * src + 1);
    }
  }
}

TEST(RingAllGatherTest, VariableCountsIncludingEmpty) {
  const int p = 3;
  const std::vector<std::size_t> counts{3, 0, 2};
  FakeNetwork net;
  std::vector<std::vector<float>> results(p, std::vector<float>(5));
  run_lockstep(p, net, [&](auto& t, int r) {
    std::vector<float> mine(counts[static_cast<std::size_t>(r)],
                            static_cast<float>(r + 1));
    ring_all_gatherv(t, mine, results[static_cast<std::size_t>(r)], counts);
  });
  const std::vector<float> expected{1, 1, 1, 3, 3};
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)], expected);
  }
}

TEST(RingAllGatherTest, WireBytesMatchEquationOne) {
  // Eq. 1 shape: each rank sends (p-1) chunks -> total p*(p-1)*chunk bytes.
  const int p = 4;
  const std::size_t chunk = 16;
  const std::vector<std::size_t> counts(p, chunk);
  FakeNetwork net;
  std::vector<std::vector<float>> results(p, std::vector<float>(p * chunk));
  run_lockstep(p, net, [&](auto& t, int r) {
    std::vector<float> mine(chunk, static_cast<float>(r));
    ring_all_gatherv(t, mine, results[static_cast<std::size_t>(r)], counts);
  });
  EXPECT_EQ(net.total_wire_bytes,
            static_cast<std::uint64_t>(p) * (p - 1) * chunk * sizeof(float));
}

TEST(RingReduceScatterTest, EachRankGetsItsReducedChunk) {
  const int p = 4;
  const std::vector<std::size_t> counts{2, 2, 2, 2};
  FakeNetwork net;
  std::vector<std::vector<float>> results(p, std::vector<float>(2));
  run_lockstep(p, net, [&](auto& t, int r) {
    // Rank r contributes vector [r, r, ..., r] of length 8.
    std::vector<float> send(8, static_cast<float>(r));
    ring_reduce_scatterv(t, send, results[static_cast<std::size_t>(r)], counts,
                         ReduceOp::kSum);
  });
  // Sum over ranks of r = 0+1+2+3 = 6 in every element of every chunk.
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)],
              (std::vector<float>{6.0f, 6.0f}));
  }
}

TEST(RingReduceScatterTest, ChunkContentsAreRankSpecific) {
  const int p = 3;
  const std::vector<std::size_t> counts{1, 1, 1};
  FakeNetwork net;
  std::vector<std::vector<float>> results(p, std::vector<float>(1));
  run_lockstep(p, net, [&](auto& t, int r) {
    // send[c] = 100*r + c, so reduced chunk c = sum_r(100 r) + p*c.
    std::vector<float> send{100.0f * r + 0, 100.0f * r + 1, 100.0f * r + 2};
    ring_reduce_scatterv(t, send, results[static_cast<std::size_t>(r)], counts,
                         ReduceOp::kSum);
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)][0], 300.0f + 3.0f * r);
  }
}

TEST(RingReduceScatterTest, MaxAndMinOps) {
  const int p = 3;
  const std::vector<std::size_t> counts{1, 1, 1};
  FakeNetwork net;
  std::vector<std::vector<float>> max_results(p, std::vector<float>(1));
  run_lockstep(p, net, [&](auto& t, int r) {
    std::vector<float> send{static_cast<float>(r), static_cast<float>(-r),
                            static_cast<float>(r * r)};
    ring_reduce_scatterv(t, send, max_results[static_cast<std::size_t>(r)],
                         counts, ReduceOp::kMax);
  });
  EXPECT_EQ(max_results[0][0], 2.0f);   // max over r of r
  EXPECT_EQ(max_results[1][0], 0.0f);   // max over r of -r
  EXPECT_EQ(max_results[2][0], 4.0f);   // max over r of r^2

  FakeNetwork net2;
  std::vector<std::vector<float>> min_results(p, std::vector<float>(1));
  run_lockstep(p, net2, [&](auto& t, int r) {
    std::vector<float> send{static_cast<float>(r), static_cast<float>(-r),
                            static_cast<float>(r * r)};
    ring_reduce_scatterv(t, send, min_results[static_cast<std::size_t>(r)],
                         counts, ReduceOp::kMin);
  });
  EXPECT_EQ(min_results[0][0], 0.0f);
  EXPECT_EQ(min_results[1][0], -2.0f);
  EXPECT_EQ(min_results[2][0], 0.0f);
}

TEST(RingReduceScatterTest, WireBytesMatchEquationTwo) {
  // Eq. 2 shape: each rank sends (p-1)/p of the buffer.
  const int p = 4;
  const std::size_t chunk = 8;
  const std::vector<std::size_t> counts(p, chunk);
  FakeNetwork net;
  std::vector<std::vector<float>> results(p, std::vector<float>(chunk));
  run_lockstep(p, net, [&](auto& t, int r) {
    std::vector<float> send(p * chunk, static_cast<float>(r));
    ring_reduce_scatterv(t, send, results[static_cast<std::size_t>(r)], counts,
                         ReduceOp::kSum);
  });
  EXPECT_EQ(net.total_wire_bytes,
            static_cast<std::uint64_t>(p) * (p - 1) * chunk * sizeof(float));
}

TEST(RingAllReduceTest, SumAcrossRanks) {
  const int p = 4;
  const std::size_t n = 10;  // not divisible by p: exercises uneven chunks
  FakeNetwork net;
  std::vector<std::vector<float>> buffers(p);
  run_lockstep(p, net, [&](auto& t, int r) {
    auto& buf = buffers[static_cast<std::size_t>(r)];
    buf.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      buf[i] = static_cast<float>(r + 1) * static_cast<float>(i);
    }
    ring_all_reduce(t, std::span<float>(buf), ReduceOp::kSum);
  });
  // sum over r of (r+1)*i = 10*i for p=4.
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_FLOAT_EQ(buffers[static_cast<std::size_t>(r)][i], 10.0f * i);
    }
  }
}

TEST(RingAllReduceTest, WireBytesMatchTwiceTheBuffer) {
  // All-reduce = RS + AG: 2 * p * (p-1)/p * n elements on the wire, i.e. the
  // 2x factor in Eqs. 3-5. Divisible case for exact equality.
  const int p = 4;
  const std::size_t n = 16;
  FakeNetwork net;
  std::vector<std::vector<float>> buffers(p, std::vector<float>(n, 1.0f));
  run_lockstep(p, net, [&](auto& t, int r) {
    ring_all_reduce(t, std::span<float>(buffers[static_cast<std::size_t>(r)]),
                    ReduceOp::kSum);
  });
  EXPECT_EQ(net.total_wire_bytes,
            2ull * (p - 1) * n * sizeof(float));  // per-rank bytes * p ranks / p
}

TEST(RingAllReduceTest, SingleRankIsIdentity) {
  FakeNetwork net;
  std::vector<float> buf{1.0f, 2.0f, 3.0f};
  FakeTransport t(&net, 0, 1);
  ring_all_reduce(t, std::span<float>(buf), ReduceOp::kSum);
  EXPECT_EQ(buf, (std::vector<float>{1.0f, 2.0f, 3.0f}));
  EXPECT_EQ(net.total_wire_bytes, 0u);
}

TEST(TreeBroadcastTest, RootValueReachesAllRanks) {
  for (int root = 0; root < 3; ++root) {
    const int p = 5;
    FakeNetwork net;
    std::vector<std::vector<float>> buffers(p, std::vector<float>(4, -1.0f));
    run_lockstep(p, net, [&](auto& t, int r) {
      if (r == root) {
        buffers[static_cast<std::size_t>(r)] = {1.0f, 2.0f, 3.0f, 4.0f};
      }
      tree_broadcast(t, std::span<float>(buffers[static_cast<std::size_t>(r)]),
                     root);
    });
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(buffers[static_cast<std::size_t>(r)],
                (std::vector<float>{1.0f, 2.0f, 3.0f, 4.0f}))
          << "root=" << root << " rank=" << r;
    }
  }
}

// Property sweep over rank counts and sizes: all-reduce equals the serial sum.
class RingAllReduceProperty
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(RingAllReduceProperty, MatchesSerialReduction) {
  const auto [p, n] = GetParam();
  FakeNetwork net;
  std::vector<std::vector<float>> buffers(static_cast<std::size_t>(p));
  std::vector<float> expected(n, 0.0f);
  for (int r = 0; r < p; ++r) {
    auto& buf = buffers[static_cast<std::size_t>(r)];
    buf.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      buf[i] = static_cast<float>((r * 31 + static_cast<int>(i) * 7) % 13);
      expected[i] += buf[i];
    }
  }
  run_lockstep(p, net, [&](auto& t, int r) {
    ring_all_reduce(t, std::span<float>(buffers[static_cast<std::size_t>(r)]),
                    ReduceOp::kSum);
  });
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_FLOAT_EQ(buffers[static_cast<std::size_t>(r)][i], expected[i])
          << "p=" << p << " n=" << n << " rank=" << r << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RingAllReduceProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 8),
                       ::testing::Values<std::size_t>(1, 2, 7, 16, 33)));

}  // namespace
}  // namespace axonn::comm
