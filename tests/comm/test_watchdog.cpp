// Collective watchdog and abort propagation: a hung collective raises a
// structured CommTimeoutError naming the stuck communicator/sequence/peer
// instead of deadlocking; queued and in-flight nonblocking collectives
// observe world aborts; p2p traffic is counted; the first abort reason wins.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "axonn/base/error.hpp"
#include "axonn/comm/fault.hpp"
#include "axonn/comm/thread_comm.hpp"

namespace axonn::comm {
namespace {

TEST(WatchdogTest, HungCollectiveRaisesStructuredTimeout) {
  WorldOptions options;
  options.collective_timeout = std::chrono::milliseconds(200);

  bool saw_timeout = false;
  try {
    run_ranks(
        2,
        [](Communicator& comm) {
          if (comm.rank() == 0) {
            // Rank 1 never shows up: without the watchdog this blocks
            // forever inside the ring step's receive.
            std::vector<float> buffer{1.0f};
            comm.all_reduce(buffer, ReduceOp::kSum);
          }
        },
        options);
  } catch (const CommTimeoutError& timeout) {
    saw_timeout = true;
    EXPECT_EQ(timeout.communicator(), "world");
    EXPECT_EQ(timeout.sequence(), 0u);
    EXPECT_EQ(timeout.peer_world_rank(), 1);
    EXPECT_NE(std::string(timeout.what()).find("world"), std::string::npos);
  }
  EXPECT_TRUE(saw_timeout);
}

TEST(WatchdogTest, InFlightProgressTaskObservesTimeout) {
  WorldOptions options;
  options.collective_timeout = std::chrono::milliseconds(200);

  run_ranks(
      2,
      [](Communicator& comm) {
        if (comm.rank() != 0) return;
        std::vector<float> buffer{1.0f};
        Request req = comm.iall_reduce(buffer, ReduceOp::kSum);
        // The ring runs on the progress stream; its receive must hit the
        // same watchdog and deliver the error through the future.
        try {
          req.wait();
          ADD_FAILURE() << "expected CommTimeoutError from wait()";
        } catch (const CommTimeoutError& timeout) {
          EXPECT_EQ(timeout.communicator(), "world");
          EXPECT_EQ(timeout.peer_world_rank(), 1);
        }
      },
      options);
}

TEST(WatchdogTest, QueuedNonblockingCollectivesObserveAbort) {
  // Two collectives queued on rank 0's progress stream when rank 1 dies:
  // the in-flight one is unblocked by the abort, and the one still queued
  // must fail its future promptly instead of running against a dead world.
  // run_ranks rethrows rank 1's deliberate failure once every rank joined.
  EXPECT_THROW(run_ranks(2,
                         [](Communicator& comm) {
                           if (comm.rank() == 0) {
                             std::vector<float> a{1.0f};
                             std::vector<float> b{2.0f};
                             Request ra =
                                 comm.iall_reduce(a, ReduceOp::kSum);
                             Request rb =
                                 comm.iall_reduce(b, ReduceOp::kSum);
                             EXPECT_THROW(ra.wait(), Error);
                             EXPECT_THROW(rb.wait(), Error);
                           } else {
                             // Give rank 0 a moment to enqueue, then fail
                             // without participating.
                             std::this_thread::sleep_for(
                                 std::chrono::milliseconds(50));
                             throw Error("rank 1 simulated failure");
                           }
                         }),
               Error);
}

TEST(WatchdogTest, CollectivesIssuedAfterAbortFailFast) {
  ThreadWorld world(2);
  world.abort("first failure");
  world.abort("second failure");  // logged, but the first reason wins
  auto comm = world.world_comm(0);
  std::vector<float> buffer{1.0f};
  try {
    comm->all_reduce(buffer, ReduceOp::kSum);
    ADD_FAILURE() << "expected abort error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("first failure"), std::string::npos);
    EXPECT_EQ(std::string(e.what()).find("second failure"), std::string::npos);
  }
}

TEST(WatchdogTest, SurvivorErrorNamesOriginalFailure) {
  try {
    run_ranks(2, [](Communicator& comm) {
      if (comm.rank() == 0) {
        std::vector<float> buffer{1.0f};
        comm.all_reduce(buffer, ReduceOp::kSum);  // blocks until abort
      } else {
        throw Error("disk on fire");
      }
    });
    ADD_FAILURE() << "expected the rank failure to propagate";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("disk on fire"), std::string::npos);
  }
}

TEST(WatchdogTest, PointToPointTrafficIsCounted) {
  run_ranks(2, [](Communicator& comm) {
    std::vector<float> buffer{1.0f, 2.0f};
    comm.all_reduce(buffer, ReduceOp::kSum);
    // Ring all-reduce at p=2: reduce-scatter (1 send + 1 recv) followed by
    // all-gather (1 send + 1 recv) — 4 point-to-point calls per rank.
    EXPECT_EQ(comm.stats().point_to_point_calls, 4u);
  });
}

TEST(WatchdogTest, TimeoutDisabledByDefaultStillCompletes) {
  run_ranks(3, [](Communicator& comm) {
    std::vector<float> buffer{static_cast<float>(comm.rank())};
    comm.all_reduce(buffer, ReduceOp::kSum);
    EXPECT_EQ(buffer[0], 3.0f);
  });
}

}  // namespace
}  // namespace axonn::comm
