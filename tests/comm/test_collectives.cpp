// Blocking collectives over the real thread runtime (ThreadComm).

#include <gtest/gtest.h>

#include <vector>

#include "axonn/base/error.hpp"
#include "axonn/comm/thread_comm.hpp"

namespace axonn::comm {
namespace {

TEST(ThreadCommTest, WorldRankAndSize) {
  run_ranks(4, [](Communicator& comm) {
    EXPECT_EQ(comm.size(), 4);
    EXPECT_GE(comm.rank(), 0);
    EXPECT_LT(comm.rank(), 4);
  });
}

TEST(ThreadCommTest, AllReduceSum) {
  run_ranks(4, [](Communicator& comm) {
    std::vector<float> buf{static_cast<float>(comm.rank()),
                           static_cast<float>(comm.rank() * 2)};
    comm.all_reduce(buf, ReduceOp::kSum);
    EXPECT_EQ(buf[0], 6.0f);   // 0+1+2+3
    EXPECT_EQ(buf[1], 12.0f);
  });
}

TEST(ThreadCommTest, AllReduceMax) {
  run_ranks(5, [](Communicator& comm) {
    std::vector<float> buf{static_cast<float>(comm.rank())};
    comm.all_reduce(buf, ReduceOp::kMax);
    EXPECT_EQ(buf[0], 4.0f);
  });
}

TEST(ThreadCommTest, AllReduceUnevenBufferSize) {
  // n=7 not divisible by p=4: chunking must still reconstruct exactly.
  run_ranks(4, [](Communicator& comm) {
    std::vector<float> buf(7);
    for (std::size_t i = 0; i < buf.size(); ++i) {
      buf[i] = static_cast<float>(comm.rank() + 1) * static_cast<float>(i + 1);
    }
    comm.all_reduce(buf, ReduceOp::kSum);
    for (std::size_t i = 0; i < buf.size(); ++i) {
      EXPECT_FLOAT_EQ(buf[i], 10.0f * static_cast<float>(i + 1));
    }
  });
}

TEST(ThreadCommTest, AllGather) {
  run_ranks(3, [](Communicator& comm) {
    const std::vector<float> mine{static_cast<float>(comm.rank() * 100)};
    std::vector<float> all(3);
    comm.all_gather(mine, all);
    EXPECT_EQ(all, (std::vector<float>{0.0f, 100.0f, 200.0f}));
  });
}

TEST(ThreadCommTest, AllGatherRejectsBadRecvSize) {
  run_ranks(2, [](Communicator& comm) {
    const std::vector<float> mine{1.0f};
    std::vector<float> too_small(1);
    EXPECT_THROW(comm.all_gather(mine, too_small), Error);
    // Recover the runtime with a matched collective on both ranks.
    std::vector<float> ok(2);
    comm.all_gather(mine, ok);
  });
}

TEST(ThreadCommTest, AllGathervUnequalContributions) {
  run_ranks(3, [](Communicator& comm) {
    const std::vector<std::size_t> counts{1, 2, 3};
    std::vector<float> mine(counts[static_cast<std::size_t>(comm.rank())],
                            static_cast<float>(comm.rank() + 1));
    std::vector<float> all(6);
    comm.all_gatherv(mine, all, counts);
    EXPECT_EQ(all, (std::vector<float>{1, 2, 2, 3, 3, 3}));
  });
}

TEST(ThreadCommTest, ReduceScatter) {
  run_ranks(4, [](Communicator& comm) {
    std::vector<float> send(8);
    for (std::size_t i = 0; i < 8; ++i) {
      send[i] = static_cast<float>(comm.rank()) + static_cast<float>(i) * 10.0f;
    }
    std::vector<float> recv(2);
    comm.reduce_scatter(send, recv, ReduceOp::kSum);
    // Reduced element i = sum_r (r + 10 i) = 6 + 40 i; rank r owns i in
    // {2r, 2r+1}.
    const auto r = static_cast<float>(comm.rank());
    EXPECT_FLOAT_EQ(recv[0], 6.0f + 40.0f * (2 * r));
    EXPECT_FLOAT_EQ(recv[1], 6.0f + 40.0f * (2 * r + 1));
  });
}

TEST(ThreadCommTest, ReduceScattervUnequalChunks) {
  run_ranks(3, [](Communicator& comm) {
    const std::vector<std::size_t> counts{3, 2, 1};
    std::vector<float> send{1, 1, 1, 2, 2, 3};  // same on every rank
    std::vector<float> recv(counts[static_cast<std::size_t>(comm.rank())]);
    comm.reduce_scatterv(send, recv, counts, ReduceOp::kSum);
    if (comm.rank() == 0) {
      EXPECT_EQ(recv, (std::vector<float>{3, 3, 3}));
    } else if (comm.rank() == 1) {
      EXPECT_EQ(recv, (std::vector<float>{6, 6}));
    } else {
      EXPECT_EQ(recv, (std::vector<float>{9}));
    }
  });
}

TEST(ThreadCommTest, BroadcastFromEveryRoot) {
  run_ranks(4, [](Communicator& comm) {
    for (int root = 0; root < 4; ++root) {
      std::vector<float> buf(3, comm.rank() == root ? 42.0f : 0.0f);
      comm.broadcast(buf, root);
      EXPECT_EQ(buf, (std::vector<float>{42.0f, 42.0f, 42.0f})) << root;
    }
  });
}

TEST(ThreadCommTest, BarrierCompletes) {
  run_ranks(6, [](Communicator& comm) {
    for (int i = 0; i < 3; ++i) comm.barrier();
  });
}

TEST(ThreadCommTest, StatsCountWireBytes) {
  run_ranks(4, [](Communicator& comm) {
    comm.reset_stats();
    std::vector<float> buf(16, 1.0f);
    comm.all_reduce(buf, ReduceOp::kSum);
    const CommStats& stats = comm.stats();
    EXPECT_EQ(stats.all_reduce_calls, 1u);
    // Ring all-reduce moves 2*(p-1)/p*n elements per rank.
    EXPECT_EQ(stats.wire_bytes_sent, 2u * 3 * 4 * sizeof(float));
  });
}

TEST(ThreadCommTest, ExceptionInOneRankUnblocksOthers) {
  EXPECT_THROW(
      run_ranks(3,
                [](Communicator& comm) {
                  if (comm.rank() == 1) {
                    throw Error("rank 1 exploded");
                  }
                  // Ranks 0 and 2 would deadlock here without abort support.
                  std::vector<float> buf(4, 1.0f);
                  comm.all_reduce(buf, ReduceOp::kSum);
                }),
      Error);
}

TEST(ThreadCommTest, ManySmallCollectivesStressOrdering) {
  run_ranks(4, [](Communicator& comm) {
    for (int iter = 0; iter < 50; ++iter) {
      std::vector<float> buf{static_cast<float>(comm.rank() + iter)};
      comm.all_reduce(buf, ReduceOp::kSum);
      EXPECT_FLOAT_EQ(buf[0], 6.0f + 4.0f * static_cast<float>(iter));
    }
  });
}

TEST(ThreadCommTest, LargeBuffer) {
  run_ranks(2, [](Communicator& comm) {
    std::vector<float> buf(1 << 16, 1.0f);
    comm.all_reduce(buf, ReduceOp::kSum);
    EXPECT_EQ(buf.front(), 2.0f);
    EXPECT_EQ(buf.back(), 2.0f);
  });
}

}  // namespace
}  // namespace axonn::comm
