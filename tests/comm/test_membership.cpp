// Elastic membership layer (DESIGN.md §11): a declared death wakes blocked
// collectives with RankDeadError, survivors reconfigure at a bumped epoch
// (shrinking or hot-swapping a spare), stale-epoch traffic is provably
// fenced, and a hung peer is detected by its stale heartbeat.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "axonn/comm/fault.hpp"
#include "axonn/comm/thread_comm.hpp"

namespace axonn::comm {
namespace {

WorldOptions elastic_options(int spares = 0) {
  WorldOptions options;
  options.elastic = true;
  options.spare_ranks = spares;
  options.allow_shrink = true;
  // Generous watchdog so only the membership layer decides outcomes here.
  options.collective_timeout = std::chrono::milliseconds(30000);
  return options;
}

/// Spawns one thread per world rank running `body(rank)` and joins them.
void spawn_ranks(int nranks, const std::function<void(int)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) threads.emplace_back([&body, r] { body(r); });
  for (auto& t : threads) t.join();
}

TEST(MembershipTest, DeclareDeadWakesBlockedCollectiveAndShrinks) {
  ThreadWorld world(3, elastic_options());
  std::atomic<int> rank_dead_errors{0};
  std::atomic<int> completed{0};

  spawn_ranks(3, [&](int my) {
    if (my == 2) {
      // The casualty: announce the death without ever joining the
      // collective — the failure broadcast every crash path ends in.
      world.declare_dead(my, "injected crash");
      world.drain_progress(my);
      return;
    }
    auto comm = world.active_comm(my);
    std::vector<float> buffer{1.0f};
    try {
      comm->all_reduce(buffer, ReduceOp::kSum);
      ADD_FAILURE() << "rank " << my << " completed a 3-way all-reduce "
                    << "missing rank 2";
    } catch (const RankDeadError& e) {
      ++rank_dead_errors;
      EXPECT_EQ(e.epoch(), 0u);
      ASSERT_EQ(e.dead_ranks().size(), 1u);
      EXPECT_EQ(e.dead_ranks()[0], 2);
    }
    world.drain_progress(my);

    const auto plan = world.reconfigure(my);
    EXPECT_EQ(plan.epoch, 1u);
    EXPECT_TRUE(plan.shrunk);
    EXPECT_EQ(plan.old_active, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(plan.active, (std::vector<int>{0, 1}));
    EXPECT_EQ(plan.dead_slots, (std::vector<int>{2}));
    EXPECT_TRUE(plan.swapped_in.empty());

    auto fresh = world.active_comm(my);
    EXPECT_EQ(fresh->size(), 2);
    EXPECT_EQ(fresh->epoch(), 1u);
    std::vector<float> again{1.0f};
    fresh->all_reduce(again, ReduceOp::kSum);
    EXPECT_EQ(again[0], 2.0f);
    world.drain_progress(my);
    ++completed;
  });

  EXPECT_EQ(rank_dead_errors.load(), 2);
  EXPECT_EQ(completed.load(), 2);
  EXPECT_EQ(world.epoch(), 1u);
  EXPECT_FALSE(world.aborted());
  EXPECT_EQ(world.rank_state(2), ThreadWorld::RankState::kDead);
  EXPECT_TRUE(world.pending_dead_ranks().empty());
}

TEST(MembershipTest, SpareSwapFencesStaleEpochTraffic) {
  // Active {0, 1}, spare {2}. Rank 1 dies after the first collective while
  // rank 0's second all-reduce is in flight: rank 0's already-delivered
  // message to rank 1 must be purged by the epoch fence, the spare must
  // inherit slot 1, and a handle from the dead epoch must refuse to issue.
  ThreadWorld world(3, elastic_options(/*spares=*/1));
  EXPECT_EQ(world.rank_state(2), ThreadWorld::RankState::kSpare);

  spawn_ranks(3, [&](int my) {
    if (my == 1) {
      auto comm = world.active_comm(my);
      std::vector<float> buffer{static_cast<float>(comm->rank())};
      comm->all_reduce(buffer, ReduceOp::kSum);
      EXPECT_EQ(buffer[0], 1.0f);
      // Give rank 0's second all-reduce time to put its ring message in
      // this rank's mailbox — the message the fence must drop.
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
      world.declare_dead(my, "injected crash");
      world.drain_progress(my);
      return;
    }
    if (my == 2) {
      const auto plan = world.park_for_assignment(my);
      ASSERT_TRUE(plan.has_value());
      EXPECT_EQ(plan->epoch, 1u);
      EXPECT_FALSE(plan->shrunk);
      EXPECT_EQ(plan->swapped_in, (std::vector<int>{2}));
      auto comm = world.active_comm(my);
      EXPECT_EQ(comm->rank(), 1);  // the dead rank's slot, not a new one
      std::vector<float> buffer{10.0f + static_cast<float>(comm->rank())};
      comm->all_reduce(buffer, ReduceOp::kSum);
      EXPECT_EQ(buffer[0], 21.0f);
      world.drain_progress(my);
      return;
    }
    auto stale = world.active_comm(my);
    std::vector<float> buffer{static_cast<float>(stale->rank())};
    stale->all_reduce(buffer, ReduceOp::kSum);
    EXPECT_EQ(buffer[0], 1.0f);
    // Large enough that both ring chunks are non-empty: this rank delivers a
    // real segment into rank 1's mailbox before blocking on the reply — the
    // stale message the fence must purge.
    std::vector<float> abandoned(64, 1.0f);
    EXPECT_THROW(stale->all_reduce(abandoned, ReduceOp::kSum), RankDeadError);
    world.drain_progress(my);

    const auto plan = world.reconfigure(my);
    EXPECT_EQ(plan.epoch, 1u);
    EXPECT_EQ(plan.active, (std::vector<int>{0, 2}));
    EXPECT_EQ(plan.dead_slots, (std::vector<int>{1}));

    // The pre-failure handle is fenced: it may not issue into the new epoch.
    std::vector<float> fenced{0.0f};
    EXPECT_THROW(stale->all_reduce(fenced, ReduceOp::kSum), EpochFencedError);

    auto fresh = world.active_comm(my);
    std::vector<float> again{10.0f + static_cast<float>(fresh->rank())};
    fresh->all_reduce(again, ReduceOp::kSum);
    EXPECT_EQ(again[0], 21.0f);
    world.drain_progress(my);
  });

  EXPECT_EQ(world.epoch(), 1u);
  EXPECT_FALSE(world.aborted());
  // Rank 0's abandoned second all-reduce delivered at least one ring message
  // into dead rank 1's mailbox at epoch 0 — the transition must have fenced
  // it (the acceptance-counter assertion for the epoch fence).
  EXPECT_GE(world.fenced_messages(), 1u);
  EXPECT_EQ(world.rank_state(1), ThreadWorld::RankState::kDead);
  EXPECT_EQ(world.rank_state(2), ThreadWorld::RankState::kActive);
}

TEST(MembershipTest, HeartbeatTimeoutDetectsHungPeer) {
  // Rank 1 never issues and never beats: rank 0, blocked waiting on its ring
  // message, must declare it dead once its heartbeat goes stale — no
  // watchdog, no abort, an in-job recovery to a 1-rank world.
  auto options = elastic_options();
  options.heartbeat_timeout = std::chrono::milliseconds(500);
  ThreadWorld world(2, options);
  std::string failure_reason;

  spawn_ranks(2, [&](int my) {
    if (my == 1) {
      // Hung: make no progress at all, then unwind once fenced off.
      while (!world.is_dead(my) && !world.aborted()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      world.drain_progress(my);
      return;
    }
    auto comm = world.active_comm(my);
    std::vector<float> buffer{1.0f};
    try {
      comm->all_reduce(buffer, ReduceOp::kSum);
      ADD_FAILURE() << "all-reduce completed without the hung peer";
    } catch (const RankDeadError& e) {
      failure_reason = e.what();
    }
    world.drain_progress(my);
    const auto plan = world.reconfigure(my);
    EXPECT_TRUE(plan.shrunk);
    EXPECT_EQ(plan.active, (std::vector<int>{0}));
    world.drain_progress(my);
  });

  EXPECT_FALSE(world.aborted());
  EXPECT_TRUE(world.is_dead(1));
  EXPECT_NE(failure_reason.find("heartbeat timeout"), std::string::npos)
      << failure_reason;
  EXPECT_GT(world.last_failure_ns(), 0);
}

TEST(MembershipTest, FinishWakesUnneededSpares) {
  ThreadWorld world(3, elastic_options(/*spares=*/1));
  std::atomic<bool> spare_released{false};

  spawn_ranks(3, [&](int my) {
    if (my == 2) {
      const auto plan = world.park_for_assignment(my);
      EXPECT_FALSE(plan.has_value());  // run finished, never assigned
      spare_released = true;
      return;
    }
    auto comm = world.active_comm(my);
    std::vector<float> buffer{1.0f};
    comm->all_reduce(buffer, ReduceOp::kSum);
    EXPECT_EQ(buffer[0], 2.0f);
    world.drain_progress(my);
    world.finish();  // idempotent: both actives may call it
  });

  EXPECT_TRUE(spare_released.load());
  EXPECT_EQ(world.epoch(), 0u);
  EXPECT_EQ(world.fenced_messages(), 0u);
  EXPECT_EQ(world.rank_state(2), ThreadWorld::RankState::kSpare);
}

}  // namespace
}  // namespace axonn::comm
