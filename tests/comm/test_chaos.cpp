// ChaosComm fault injection: corruption is caught by the CRC cross-check, a
// crashed rank unblocks every survivor with a structured error within the
// watchdog budget, and the same seed reproduces the same fault sequence.

#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <numeric>
#include <vector>

#include "axonn/comm/chaos_comm.hpp"
#include "axonn/comm/thread_comm.hpp"

namespace axonn::comm {
namespace {

ChaosConfig corrupting_config() {
  ChaosConfig config;
  config.seed = 99;
  config.corrupt_probability = 1.0;  // corrupt every collective
  config.verify_replicated_results = true;
  return config;
}

TEST(ChaosTest, CorruptionIsDetectedByChecksum) {
  EXPECT_THROW(
      run_ranks(4,
                [&](Communicator& world) {
                  ChaosComm chaos(world, corrupting_config());
                  std::vector<float> buffer(64, 1.0f);
                  chaos.all_reduce(buffer, ReduceOp::kSum);
                }),
      DataCorruptionError);
}

TEST(ChaosTest, CleanCollectivesPassVerification) {
  ChaosConfig config;
  config.seed = 5;
  config.verify_replicated_results = true;  // checks on, no faults armed
  run_ranks(4, [&](Communicator& world) {
    ChaosComm chaos(world, config);
    std::vector<float> buffer{static_cast<float>(world.rank())};
    chaos.all_reduce(buffer, ReduceOp::kSum);
    EXPECT_EQ(buffer[0], 6.0f);

    std::vector<float> recv(4);
    const std::vector<float> mine{static_cast<float>(world.rank() * 2)};
    chaos.all_gather(mine, recv);
    EXPECT_EQ(recv, (std::vector<float>{0.0f, 2.0f, 4.0f, 6.0f}));
    EXPECT_TRUE(chaos.fault_log().empty());
  });
}

TEST(ChaosTest, CrashedRankUnblocksSurvivorsWithinDeadline) {
  WorldOptions options;
  options.collective_timeout = std::chrono::milliseconds(2000);

  ChaosConfig config;
  config.crash_rank = 1;
  config.crash_at_collective = 3;

  const auto start = std::chrono::steady_clock::now();
  bool saw_rank_failure = false;
  try {
    run_ranks(
        4,
        [&](Communicator& world) {
          ChaosComm chaos(world, config);
          std::vector<float> buffer{1.0f};
          for (int i = 0; i < 10; ++i) {
            chaos.all_reduce(buffer, ReduceOp::kSum);
          }
        },
        options);
  } catch (const RankFailure& failure) {
    saw_rank_failure = true;
    EXPECT_EQ(failure.rank(), 1);
    EXPECT_EQ(failure.collective_index(), 3u);
  }
  // Survivors were mid-all-reduce when rank 1 died: the abort (or, at the
  // latest, the watchdog) must release them — the join in run_ranks would
  // otherwise hang far past the deadline.
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(saw_rank_failure);
  EXPECT_LT(elapsed, std::chrono::milliseconds(4000));
}

TEST(ChaosTest, SameSeedReproducesSameFaultSequence) {
  ChaosConfig config;
  config.seed = 1234;
  config.corrupt_probability = 0.35;

  auto run_once = [&config] {
    std::vector<FaultEvent> rank0_log;
    std::mutex log_mutex;
    run_ranks(2, [&](Communicator& world) {
      ChaosComm chaos(world, config);
      std::vector<float> buffer(16, 1.0f);
      for (int i = 0; i < 20; ++i) {
        chaos.all_reduce(buffer, ReduceOp::kSum);
      }
      if (world.rank() == 0) {
        std::lock_guard<std::mutex> lock(log_mutex);
        rank0_log = chaos.fault_log();
      }
    });
    return rank0_log;
  };

  const std::vector<FaultEvent> first = run_once();
  const std::vector<FaultEvent> second = run_once();
  EXPECT_FALSE(first.empty());  // p=0.35 over 20 ops: schedule fires
  EXPECT_EQ(first, second);

  // A different seed draws a different schedule.
  config.seed = 4321;
  const std::vector<FaultEvent> other = run_once();
  EXPECT_NE(first, other);
}

TEST(ChaosTest, OpCounterSpansSplitCommunicators) {
  // The crash index counts collectives across every communicator derived
  // from the wrapped world — exactly how a real rank failure behaves.
  ChaosConfig config;
  config.crash_rank = 0;
  config.crash_at_collective = 2;
  EXPECT_THROW(
      run_ranks(2,
                [&](Communicator& world) {
                  ChaosComm chaos(world, config);
                  auto sub = chaos.split(/*color=*/0, /*key=*/world.rank());
                  std::vector<float> buffer{1.0f};
                  chaos.all_reduce(buffer, ReduceOp::kSum);   // op 0
                  sub->all_reduce(buffer, ReduceOp::kSum);    // op 1
                  sub->all_reduce(buffer, ReduceOp::kSum);    // op 2: crash
                  ADD_FAILURE() << "rank 0 should have crashed";
                }),
      RankFailure);
}

TEST(ChaosTest, HangTripsWatchdogInNonElasticWorld) {
  // Without the elastic membership layer there is no heartbeat detection: a
  // hung rank (silent, no crash announcement) must still be caught — by the
  // collective watchdog — within its budget, not hang the join forever.
  WorldOptions options;
  options.collective_timeout = std::chrono::milliseconds(1500);

  ChaosConfig config;
  config.seed = 7;
  config.hang_rank = 1;
  config.hang_at_collective = 2;

  const auto start = std::chrono::steady_clock::now();
  bool saw_failure = false;
  try {
    run_ranks(
        2,
        [&](Communicator& world) {
          ChaosComm chaos(world, config);
          std::vector<float> buffer{1.0f};
          for (int i = 0; i < 6; ++i) {
            chaos.all_reduce(buffer, ReduceOp::kSum);
          }
        },
        options);
  } catch (const std::exception& e) {
    saw_failure = true;
    // Whichever error wins the race to be recorded first — the survivor's
    // CommTimeoutError (carrying the world's fault note) or the hung rank's
    // RankFailure — it must name the chaos seed for replayability.
    EXPECT_NE(std::string(e.what()).find("chaos seed=7"), std::string::npos)
        << e.what();
  }
  EXPECT_TRUE(saw_failure);
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(8000));
}

TEST(ChaosTest, FailureReportsCarrySeedAndDrawIndex) {
  // Replayability: the error text alone must pin down the fault schedule —
  // the chaos seed and the fault's draw (collective) index.
  ChaosConfig config;
  config.seed = 11;
  config.crash_rank = 0;
  config.crash_at_collective = 3;
  try {
    run_ranks(1, [&](Communicator& world) {
      ChaosComm chaos(world, config);
      std::vector<float> buffer{1.0f};
      for (int i = 0; i < 6; ++i) {
        chaos.all_reduce(buffer, ReduceOp::kSum);
      }
      ADD_FAILURE() << "rank 0 should have crashed at collective 3";
    });
    FAIL() << "expected RankFailure";
  } catch (const RankFailure& failure) {
    EXPECT_EQ(failure.rank(), 0);
    EXPECT_EQ(failure.collective_index(), 3u);
    EXPECT_NE(std::string(failure.what()).find("chaos seed=11 draw=3"),
              std::string::npos)
        << failure.what();
  }
}

TEST(ChaosTest, SlowRankDelaysButCompletes) {
  ChaosConfig config;
  config.slow_rank = 0;
  config.slow_delay = std::chrono::microseconds(2000);
  run_ranks(2, [&](Communicator& world) {
    ChaosComm chaos(world, config);
    std::vector<float> buffer{1.0f};
    chaos.all_reduce(buffer, ReduceOp::kSum);
    EXPECT_EQ(buffer[0], 2.0f);
    if (world.rank() == 0) {
      ASSERT_EQ(chaos.fault_log().size(), 1u);
      EXPECT_EQ(chaos.fault_log()[0].kind, FaultEvent::Kind::kDelay);
    }
  });
}

}  // namespace
}  // namespace axonn::comm
