// SelfComm: the degenerate size-1 communicator used when a grid dimension
// has extent 1.

#include <gtest/gtest.h>

#include <vector>

#include "axonn/base/error.hpp"
#include "axonn/comm/self_comm.hpp"

namespace axonn::comm {
namespace {

TEST(SelfCommTest, RankAndSize) {
  SelfComm comm;
  EXPECT_EQ(comm.rank(), 0);
  EXPECT_EQ(comm.size(), 1);
}

TEST(SelfCommTest, AllReduceIsIdentity) {
  SelfComm comm;
  std::vector<float> buf{1.0f, -2.0f, 3.0f};
  comm.all_reduce(buf, ReduceOp::kSum);
  EXPECT_EQ(buf, (std::vector<float>{1.0f, -2.0f, 3.0f}));
}

TEST(SelfCommTest, AllGatherCopies) {
  SelfComm comm;
  const std::vector<float> send{4.0f, 5.0f};
  std::vector<float> recv(2);
  comm.all_gather(send, recv);
  EXPECT_EQ(recv, send);
}

TEST(SelfCommTest, ReduceScatterCopies) {
  SelfComm comm;
  const std::vector<float> send{7.0f};
  std::vector<float> recv(1);
  comm.reduce_scatter(send, recv, ReduceOp::kSum);
  EXPECT_EQ(recv[0], 7.0f);
}

TEST(SelfCommTest, VariableCountVariants) {
  SelfComm comm;
  const std::vector<std::size_t> counts{3};
  const std::vector<float> send{1, 2, 3};
  std::vector<float> recv(3);
  comm.all_gatherv(send, recv, counts);
  EXPECT_EQ(recv, send);
  std::vector<float> rs(3);
  comm.reduce_scatterv(send, rs, counts, ReduceOp::kMax);
  EXPECT_EQ(rs, send);
}

TEST(SelfCommTest, MismatchedSizesThrow) {
  SelfComm comm;
  const std::vector<float> send{1.0f, 2.0f};
  std::vector<float> recv(1);
  EXPECT_THROW(comm.all_gather(send, recv), Error);
  EXPECT_THROW(comm.reduce_scatter(send, recv, ReduceOp::kSum), Error);
}

TEST(SelfCommTest, NonblockingCompletesImmediately) {
  SelfComm comm;
  std::vector<float> buf{9.0f};
  Request req = comm.iall_reduce(buf, ReduceOp::kSum);
  EXPECT_TRUE(req.test());
  req.wait();
  EXPECT_EQ(buf[0], 9.0f);
}

TEST(SelfCommTest, BroadcastValidatesRoot) {
  SelfComm comm;
  std::vector<float> buf{1.0f};
  EXPECT_NO_THROW(comm.broadcast(buf, 0));
  EXPECT_THROW(comm.broadcast(buf, 1), Error);
}

TEST(SelfCommTest, SplitReturnsSelfOrNull) {
  SelfComm comm;
  auto sub = comm.split(5, 0);
  ASSERT_NE(sub, nullptr);
  EXPECT_EQ(sub->size(), 1);
  EXPECT_EQ(comm.split(-1, 0), nullptr);
}

TEST(SelfCommTest, StatsTrackCallsWithZeroWireBytes) {
  SelfComm comm;
  std::vector<float> buf{1.0f};
  comm.all_reduce(buf, ReduceOp::kSum);
  comm.all_reduce(buf, ReduceOp::kSum);
  EXPECT_EQ(comm.stats().all_reduce_calls, 2u);
  EXPECT_EQ(comm.stats().wire_bytes_sent, 0u);
  comm.reset_stats();
  EXPECT_EQ(comm.stats().all_reduce_calls, 0u);
}

}  // namespace
}  // namespace axonn::comm
