// Nonblocking collectives: completion semantics, overlap with computation,
// ordering across multiple in-flight operations — the substrate for the
// paper's OAR/ORS/OAG overlap optimizations.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <vector>

#include "axonn/comm/thread_comm.hpp"

namespace axonn::comm {
namespace {

TEST(NonblockingTest, IAllReduceCompletesAfterWait) {
  run_ranks(4, [](Communicator& comm) {
    std::vector<float> buf{static_cast<float>(comm.rank())};
    Request req = comm.iall_reduce(buf, ReduceOp::kSum);
    req.wait();
    EXPECT_EQ(buf[0], 6.0f);
  });
}

TEST(NonblockingTest, ComputationProceedsWhileCollectiveInFlight) {
  run_ranks(2, [](Communicator& comm) {
    std::vector<float> buf(1 << 14, static_cast<float>(comm.rank() + 1));
    Request req = comm.iall_reduce(buf, ReduceOp::kSum);
    // Simulated compute on independent data while the collective runs on the
    // progress thread.
    double acc = 0.0;
    for (int i = 0; i < 100000; ++i) acc += static_cast<double>(i % 7);
    EXPECT_GT(acc, 0.0);
    req.wait();
    EXPECT_EQ(buf[0], 3.0f);
    EXPECT_EQ(buf.back(), 3.0f);
  });
}

TEST(NonblockingTest, IAllGather) {
  run_ranks(3, [](Communicator& comm) {
    const std::vector<float> mine{static_cast<float>(comm.rank() * 5)};
    std::vector<float> all(3);
    Request req = comm.iall_gather(mine, all);
    req.wait();
    EXPECT_EQ(all, (std::vector<float>{0.0f, 5.0f, 10.0f}));
  });
}

TEST(NonblockingTest, IReduceScatter) {
  run_ranks(2, [](Communicator& comm) {
    const std::vector<float> send{1.0f, 2.0f, 3.0f, 4.0f};
    std::vector<float> recv(2);
    Request req = comm.ireduce_scatter(send, recv, ReduceOp::kSum);
    req.wait();
    if (comm.rank() == 0) {
      EXPECT_EQ(recv, (std::vector<float>{2.0f, 4.0f}));
    } else {
      EXPECT_EQ(recv, (std::vector<float>{6.0f, 8.0f}));
    }
  });
}

TEST(NonblockingTest, IReduceScattervAndIAllGatherv) {
  run_ranks(3, [](Communicator& comm) {
    const std::vector<std::size_t> counts{2, 1, 1};
    const std::vector<float> send{1, 1, 2, 3};
    std::vector<float> recv(counts[static_cast<std::size_t>(comm.rank())]);
    comm.ireduce_scatterv(send, recv, counts, ReduceOp::kSum).wait();

    std::vector<float> gathered(4);
    comm.iall_gatherv(recv, gathered, counts).wait();
    EXPECT_EQ(gathered, (std::vector<float>{3, 3, 6, 9}));
  });
}

TEST(NonblockingTest, MultipleInFlightSameCommFIFO) {
  // Two nonblocking all-reduces on the same communicator issued
  // back-to-back; matching is by issue order on every rank.
  run_ranks(4, [](Communicator& comm) {
    std::vector<float> a{static_cast<float>(comm.rank())};
    std::vector<float> b{static_cast<float>(comm.rank() * 10)};
    Request ra = comm.iall_reduce(a, ReduceOp::kSum);
    Request rb = comm.iall_reduce(b, ReduceOp::kMax);
    rb.wait();
    ra.wait();
    EXPECT_EQ(a[0], 6.0f);
    EXPECT_EQ(b[0], 30.0f);
  });
}

TEST(NonblockingTest, MixBlockingAndNonblockingOnSameComm) {
  run_ranks(3, [](Communicator& comm) {
    std::vector<float> async_buf{static_cast<float>(comm.rank())};
    Request req = comm.iall_reduce(async_buf, ReduceOp::kSum);
    // A blocking collective on the same communicator while the async one may
    // still be in flight: distinct sequence numbers keep them separate.
    std::vector<float> sync_buf{1.0f};
    comm.all_reduce(sync_buf, ReduceOp::kSum);
    EXPECT_EQ(sync_buf[0], 3.0f);
    req.wait();
    EXPECT_EQ(async_buf[0], 3.0f);
  });
}

TEST(NonblockingTest, WaitIsIdempotent) {
  run_ranks(2, [](Communicator& comm) {
    std::vector<float> buf{1.0f};
    Request req = comm.iall_reduce(buf, ReduceOp::kSum);
    req.wait();
    req.wait();  // second wait is a no-op
    EXPECT_EQ(buf[0], 2.0f);
    EXPECT_TRUE(req.test());
  });
}

TEST(NonblockingTest, DefaultRequestIsComplete) {
  Request req;
  EXPECT_FALSE(req.valid());
  EXPECT_TRUE(req.test());
  EXPECT_NO_THROW(req.wait());
}

TEST(NonblockingTest, ManyOverlappedIterationsStress) {
  // Emulates the ORS pattern: issue a reduce-scatter per "layer", wait for
  // all of them only at the end of the backward pass.
  run_ranks(4, [](Communicator& comm) {
    constexpr int kLayers = 12;
    std::vector<std::vector<float>> sends(kLayers);
    std::vector<std::vector<float>> recvs(kLayers);
    std::vector<Request> reqs;
    for (int layer = 0; layer < kLayers; ++layer) {
      sends[static_cast<std::size_t>(layer)].assign(
          8, static_cast<float>(layer + 1));
      recvs[static_cast<std::size_t>(layer)].resize(2);
      reqs.push_back(comm.ireduce_scatter(sends[static_cast<std::size_t>(layer)],
                                          recvs[static_cast<std::size_t>(layer)],
                                          ReduceOp::kSum));
    }
    for (auto& req : reqs) req.wait();
    for (int layer = 0; layer < kLayers; ++layer) {
      EXPECT_EQ(recvs[static_cast<std::size_t>(layer)][0],
                4.0f * static_cast<float>(layer + 1));
    }
  });
}

}  // namespace
}  // namespace axonn::comm
