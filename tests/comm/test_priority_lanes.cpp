// The priority comm-progress engine (DESIGN.md §12): each CommPriority class
// drains on its own dedicated FIFO lane per rank, so a critical-path
// collective (OAR) is never serialized behind a bulk transfer (ORS) that was
// issued first — the failure mode of the old single progress queue. Plus the
// alpha-beta ring segment model that replaces the flat segment size, and the
// end-to-end auto-segmented collectives it drives.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <numeric>
#include <span>
#include <thread>
#include <vector>

#include "axonn/comm/segment_model.hpp"
#include "axonn/comm/thread_comm.hpp"
#include "axonn/perf/comm_model.hpp"
#include "axonn/sim/machine.hpp"

namespace axonn::comm {
namespace {

TEST(PriorityLanesTest, HighPriorityBypassesBusyBulkLane) {
  run_ranks(2, [](Communicator& world) {
    // Occupy this rank's bulk lane with a host task that spins until
    // released — the stand-in for a large ORS reduce-scatter in flight.
    std::atomic<bool> release{false};
    std::atomic<bool> bulk_ran{false};
    Request bulk = world.run_on_stream(
        [&] {
          while (!release.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
          bulk_ran.store(true, std::memory_order_release);
        },
        CommPriority::kBulk);

    // A kHigh all-reduce must complete while the bulk lane is still held.
    // With the old single FIFO worker this wait() would deadlock: the
    // spinning task is ahead of the all-reduce in the only queue.
    std::vector<float> buf(64, world.rank() == 0 ? 1.0f : 2.0f);
    Request high =
        world.iall_reduce(std::span<float>(buf), ReduceOp::kSum,
                          CommPriority::kHigh);
    high.wait();
    EXPECT_FALSE(bulk_ran.load(std::memory_order_acquire));
    for (float v : buf) EXPECT_EQ(v, 3.0f);

    release.store(true, std::memory_order_release);
    bulk.wait();
    EXPECT_TRUE(bulk_ran.load(std::memory_order_acquire));
  });
}

TEST(PriorityLanesTest, HostTaskIsFifoAfterCollectiveOnSameLane) {
  // The OAG pre-pack contract: a run_on_stream() task posted to the same
  // lane after a nonblocking gather sees the gathered data (lane FIFO), and
  // waiting on the task implies the gather completed.
  run_ranks(4, [](Communicator& world) {
    const std::size_t n = 32;
    std::vector<float> send(n, static_cast<float>(world.rank() + 1));
    std::vector<float> recv(n * 4, 0.0f);
    world.iall_gather(send, std::span<float>(recv), CommPriority::kNormal);
    float sum = 0.0f;
    Request pack = world.run_on_stream(
        [&] { sum = std::accumulate(recv.begin(), recv.end(), 0.0f); },
        CommPriority::kNormal);
    pack.wait();
    // 32 * (1 + 2 + 3 + 4): every rank's contribution had landed before the
    // host task ran.
    EXPECT_EQ(sum, static_cast<float>(n * 10));
  });
}

TEST(PriorityLanesTest, AllLanesDrainAndAgreeWithBlockingResults) {
  // One collective per lane, concurrently in flight, all correct — and the
  // world tears down cleanly with three started lanes per rank.
  run_ranks(4, [](Communicator& world) {
    const float r = static_cast<float>(world.rank());
    std::vector<float> ar(16, r + 1.0f);
    std::vector<float> ag_send(8, r);
    std::vector<float> ag_recv(32, -1.0f);
    std::vector<float> rs_send(16);
    std::iota(rs_send.begin(), rs_send.end(), 0.0f);
    std::vector<float> rs_recv(4, 0.0f);

    Request a = world.iall_reduce(std::span<float>(ar), ReduceOp::kSum,
                                  CommPriority::kHigh);
    Request b = world.iall_gather(ag_send, std::span<float>(ag_recv),
                                  CommPriority::kNormal);
    Request c = world.ireduce_scatter(rs_send, std::span<float>(rs_recv),
                                      ReduceOp::kSum, CommPriority::kBulk);
    a.wait();
    b.wait();
    c.wait();

    for (float v : ar) EXPECT_EQ(v, 10.0f);  // 1+2+3+4
    for (int src = 0; src < 4; ++src) {
      for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_EQ(ag_recv[static_cast<std::size_t>(src) * 8 + i],
                  static_cast<float>(src));
      }
    }
    const auto base = static_cast<float>(world.rank() * 4);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(rs_recv[i], 4.0f * (base + static_cast<float>(i)));
    }
  });
}

TEST(SegmentModelTest, SmallRingsAreUnsegmented) {
  // p <= 2 means one ring hop: there is no pipeline to fill, segmentation is
  // pure startup overhead.
  EXPECT_EQ(model_ring_segment_elems(1 << 20, 2, {}), 0u);
  EXPECT_EQ(model_ring_segment_elems(1 << 20, 1, {}), 0u);
  EXPECT_EQ(model_ring_segment_elems(0, 8, {}), 0u);
}

TEST(SegmentModelTest, DegenerateCostTermsDisableSegmentation) {
  RingSegmentModel no_alpha;
  no_alpha.alpha_s = 0.0;
  EXPECT_EQ(model_ring_segment_elems(1 << 20, 8, no_alpha), 0u);
  RingSegmentModel no_beta;
  no_beta.beta_s_per_elem = 0.0;
  EXPECT_EQ(model_ring_segment_elems(1 << 20, 8, no_beta), 0u);
}

TEST(SegmentModelTest, OptimumScalesAsSqrtOfChunk) {
  // s* = sqrt(N * alpha / ((h-1) * beta)): quadrupling N doubles s*.
  RingSegmentModel m;
  m.alpha_s = 1e-6;
  m.beta_s_per_elem = 1e-9;
  m.min_segment_elems = 1;
  const std::size_t s1 = model_ring_segment_elems(1 << 16, 8, m);
  const std::size_t s4 = model_ring_segment_elems(1 << 18, 8, m);
  ASSERT_GT(s1, 0u);
  EXPECT_NEAR(static_cast<double>(s4) / static_cast<double>(s1), 2.0, 0.05);
  // And the closed form matches: sqrt(65536 * 1e-6 / (6 * 1e-9)).
  const auto expected = static_cast<std::size_t>(
      std::sqrt(65536.0 * 1e-6 / (6.0 * 1e-9)));
  EXPECT_EQ(s1, expected);
}

TEST(SegmentModelTest, ClampedToMinimumAndChunk) {
  RingSegmentModel m;
  m.alpha_s = 1e-9;  // near-free startup: raw optimum is tiny
  m.beta_s_per_elem = 1e-6;
  m.min_segment_elems = 256;
  EXPECT_EQ(model_ring_segment_elems(1 << 16, 8, m), 256u);

  // Raw optimum at or beyond the chunk: segmentation cannot help, fall back
  // to the unsegmented schedule.
  m.alpha_s = 1.0;
  m.beta_s_per_elem = 1e-12;
  EXPECT_EQ(model_ring_segment_elems(1 << 10, 8, m), 0u);
}

TEST(SegmentModelTest, PerfModelDerivesTransportTerms) {
  // The perf wrapper feeds the machine's startup latency and a dimension's
  // effective bandwidth into the transport model.
  sim::MachineConfig machine;
  machine.message_latency_s = 5e-6;
  machine.internode_bandwidth = 100e9;
  const RingSegmentModel m = perf::ring_segment_model(machine, 200e9);
  EXPECT_DOUBLE_EQ(m.alpha_s, 5e-6);
  EXPECT_DOUBLE_EQ(m.beta_s_per_elem, 4.0 / 200e9);
  // Non-positive bandwidth falls back to the inter-node figure.
  const RingSegmentModel fallback = perf::ring_segment_model(machine, 0.0);
  EXPECT_DOUBLE_EQ(fallback.beta_s_per_elem, 4.0 / 100e9);
}

TEST(SegmentModelTest, AutoSegmentedCollectivesMatchGolden) {
  // End to end: a world with model-driven segment sizing (alpha/beta chosen
  // so mid-size chunks really do segment) reproduces the exact results of
  // the unsegmented golden algorithms — blocking and nonblocking, uniform
  // and v-variant.
  WorldOptions options;
  options.ring_segment_auto = true;
  options.ring_segment_model.alpha_s = 1e-6;
  options.ring_segment_model.beta_s_per_elem = 1e-6;
  options.ring_segment_model.min_segment_elems = 4;

  run_ranks(
      4,
      [](Communicator& world) {
        const float r = static_cast<float>(world.rank());

        std::vector<float> ar(256);
        std::iota(ar.begin(), ar.end(), r);
        world.all_reduce(std::span<float>(ar), ReduceOp::kSum);
        for (std::size_t i = 0; i < ar.size(); ++i) {
          // sum over ranks of (i + r) = 4i + 6.
          EXPECT_EQ(ar[i], 4.0f * static_cast<float>(i) + 6.0f);
        }

        // v-variant with rank-dependent counts: the model's chunk hint must
        // be rank-invariant or the schedules deadlock — this is the
        // regression surface.
        const std::vector<std::size_t> counts{40, 24, 56, 8};
        std::vector<float> send(counts[static_cast<std::size_t>(world.rank())],
                                r + 1.0f);
        std::vector<float> recv(128, 0.0f);
        Request req = world.iall_gatherv(send, std::span<float>(recv), counts,
                                         CommPriority::kNormal);
        req.wait();
        std::size_t offset = 0;
        for (int src = 0; src < 4; ++src) {
          for (std::size_t i = 0; i < counts[static_cast<std::size_t>(src)];
               ++i) {
            EXPECT_EQ(recv[offset + i], static_cast<float>(src) + 1.0f);
          }
          offset += counts[static_cast<std::size_t>(src)];
        }

        std::vector<float> rs_send(128);
        std::iota(rs_send.begin(), rs_send.end(), 0.0f);
        std::vector<float> rs_recv(
            counts[static_cast<std::size_t>(world.rank())], 0.0f);
        Request rs = world.ireduce_scatterv(rs_send, std::span<float>(rs_recv),
                                            counts, ReduceOp::kSum,
                                            CommPriority::kBulk);
        rs.wait();
        std::size_t base = 0;
        for (int src = 0; src < world.rank(); ++src) {
          base += counts[static_cast<std::size_t>(src)];
        }
        for (std::size_t i = 0; i < rs_recv.size(); ++i) {
          EXPECT_EQ(rs_recv[i], 4.0f * static_cast<float>(base + i));
        }
      },
      options);
}

TEST(SegmentModelTest, AutoModeParsedFromEnvironment) {
  // AXONN_RING_SEGMENT=auto turns the model on; a numeric value keeps the
  // flat size and turns it back off. The variable is read once, at world
  // construction (set before run_ranks spawns any rank thread).
  ::setenv("AXONN_RING_SEGMENT", "auto", 1);
  run_ranks(2, [](Communicator& world) {
    auto& tc = dynamic_cast<ThreadComm&>(world);
    EXPECT_TRUE(tc.thread_world()->ring_segment_auto());
  });

  ::setenv("AXONN_RING_SEGMENT", "512", 1);
  run_ranks(2, [](Communicator& world) {
    auto& tc = dynamic_cast<ThreadComm&>(world);
    EXPECT_FALSE(tc.thread_world()->ring_segment_auto());
    EXPECT_EQ(tc.thread_world()->ring_segment_elems(), 512u);
  });
  ::unsetenv("AXONN_RING_SEGMENT");
}

}  // namespace
}  // namespace axonn::comm
