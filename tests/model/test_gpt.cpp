#include "axonn/model/gpt.hpp"

#include <gtest/gtest.h>

#include "axonn/base/error.hpp"

namespace axonn::model {
namespace {

TEST(GPTConfigTest, ZooHasNineModelsOfTableII) {
  const auto zoo = gpt_zoo();
  ASSERT_EQ(zoo.size(), 9u);
  EXPECT_EQ(zoo.front().name, "GPT-5B");
  EXPECT_EQ(zoo.back().name, "GPT-640B");
}

TEST(GPTConfigTest, TableIIHyperparameters) {
  const GPTConfig gpt80 = gpt_by_name("GPT-80B");
  EXPECT_EQ(gpt80.layers, 42);
  EXPECT_EQ(gpt80.hidden, 12288);
  EXPECT_EQ(gpt80.heads, 96);
  const GPTConfig gpt320 = gpt_by_name("GPT-320B");
  EXPECT_EQ(gpt320.layers, 96);
  EXPECT_EQ(gpt320.hidden, 16384);
  EXPECT_EQ(gpt320.heads, 128);
}

TEST(GPTConfigTest, UnknownModelThrows) {
  EXPECT_THROW(gpt_by_name("GPT-7T"), Error);
}

// The nominal parameter counts in the model names must match the exact
// layer-wise count within embedding-related slack.
class ParamCountMatchesName
    : public ::testing::TestWithParam<std::pair<const char*, double>> {};

TEST_P(ParamCountMatchesName, WithinTenPercent) {
  const auto [name, billions] = GetParam();
  const GPTConfig config = gpt_by_name(name);
  const double count = static_cast<double>(config.parameter_count());
  EXPECT_NEAR(count / 1e9, billions, billions * 0.10) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ParamCountMatchesName,
    ::testing::Values(std::pair{"GPT-5B", 5.0}, std::pair{"GPT-10B", 10.0},
                      std::pair{"GPT-20B", 20.0}, std::pair{"GPT-40B", 40.0},
                      std::pair{"GPT-60B", 60.0}, std::pair{"GPT-80B", 80.0},
                      std::pair{"GPT-160B", 160.0},
                      std::pair{"GPT-320B", 320.0},
                      std::pair{"GPT-640B", 640.0}));

TEST(GPTConfigTest, ApproxCountIsTwelveLHSquared) {
  const GPTConfig config = gpt_by_name("GPT-80B");
  EXPECT_EQ(config.parameter_count_approx(),
            12ull * 42 * 12288ull * 12288ull);
  // The exact count exceeds the approx count (embeddings, biases, norms).
  EXPECT_GT(config.parameter_count(), config.parameter_count_approx());
}

TEST(GPTConfigTest, FlopFormulaCheckpointingRatio) {
  const GPTConfig config = gpt_by_name("GPT-20B");
  const double with = config.flops_per_iteration(1e6, true);
  const double without = config.flops_per_iteration(1e6, false);
  // 96/72 = 4/3: recomputation adds exactly one forward pass.
  EXPECT_NEAR(with / without, 4.0 / 3.0, 1e-12);
}

TEST(GPTConfigTest, FlopFormulaScalesLinearlyInTokens) {
  const GPTConfig config = gpt_by_name("GPT-20B");
  EXPECT_NEAR(config.flops_per_iteration(2e6) / config.flops_per_iteration(1e6),
              2.0, 1e-12);
}

TEST(GPTConfigTest, FlopFormulaMatchesHandComputation) {
  // 96 B s l h^2 (1 + s/6h + V/16lh) for GPT-5B with batch of 1024 tokens.
  const GPTConfig c = gpt_by_name("GPT-5B");
  const double h = 4096, l = 24, s = 2048, v = 51200, tokens = 1024;
  const double expected =
      96.0 * tokens * l * h * h * (1.0 + s / (6 * h) + v / (16 * l * h));
  EXPECT_NEAR(c.flops_per_iteration(tokens, true), expected, expected * 1e-12);
}

TEST(GPTConfigTest, FCLayerShapes) {
  const GPTConfig config = gpt_by_name("GPT-5B");
  const auto fcs = config.fc_layers_per_block();
  ASSERT_EQ(fcs.size(), 4u);
  EXPECT_EQ(fcs[0].name, "qkv");
  EXPECT_EQ(fcs[0].in_features, 4096u);
  EXPECT_EQ(fcs[0].out_features, 3u * 4096u);
  EXPECT_EQ(fcs[3].name, "mlp_down");
  EXPECT_EQ(fcs[3].in_features, 4u * 4096u);
  EXPECT_EQ(fcs[3].out_features, 4096u);
  // Sum of FC weights = 12 h^2 per block.
  EXPECT_EQ(config.fc_params_per_block(), 12ull * 4096ull * 4096ull);
}

TEST(LlamaZooTest, MemorizationStudyModels) {
  const auto zoo = llama_zoo();
  ASSERT_EQ(zoo.size(), 7u);
  const GPTConfig l405 = gpt_by_name("Llama-3.1-405B");
  EXPECT_EQ(l405.layers, 126);
  EXPECT_EQ(l405.hidden, 16384);
  EXPECT_EQ(l405.vocab, 128256);
  const GPTConfig l7 = gpt_by_name("Llama-2-7B");
  EXPECT_EQ(l7.vocab, 32000);
}

TEST(TrainingJobTest, BatchSequences) {
  TrainingJob job{gpt_by_name("GPT-5B"), 16.8e6, true};
  EXPECT_NEAR(job.batch_sequences(), 16.8e6 / 2048.0, 1e-9);
}

TEST(MemoryModelTest, ShardingReducesFootprint) {
  TrainingJob job{gpt_by_name("GPT-20B"), 16.8e6, true};
  const auto serial = memory_per_gpu(job, 1, 1, 1, 1);
  const auto sharded = memory_per_gpu(job, 2, 2, 2, 4);
  EXPECT_LT(sharded.parameter_bytes, serial.parameter_bytes);
  EXPECT_LT(sharded.total(), serial.total());
  // Parameter-family terms shard by exactly Gx*Gy*Gz.
  EXPECT_NEAR(serial.parameter_bytes / sharded.parameter_bytes, 8.0, 1e-9);
  EXPECT_NEAR(serial.optimizer_bytes / sharded.optimizer_bytes, 8.0, 1e-9);
}

TEST(MemoryModelTest, MixedPrecisionAccounting) {
  TrainingJob job{gpt_by_name("GPT-5B"), 16.8e6, true};
  const auto est = memory_per_gpu(job, 1, 1, 1, 1);
  const double params = static_cast<double>(job.model.parameter_count());
  EXPECT_NEAR(est.parameter_bytes, 2.0 * params, 1.0);
  EXPECT_NEAR(est.gradient_bytes, 2.0 * params, 1.0);
  EXPECT_NEAR(est.optimizer_bytes, 12.0 * params, 1.0);
}

TEST(MemoryModelTest, CheckpointingShrinksActivations) {
  TrainingJob with{gpt_by_name("GPT-20B"), 16.8e6, true};
  TrainingJob without{gpt_by_name("GPT-20B"), 16.8e6, false};
  const auto a = memory_per_gpu(with, 2, 2, 2, 8);
  const auto b = memory_per_gpu(without, 2, 2, 2, 8);
  EXPECT_LT(a.activation_bytes, b.activation_bytes);
}

TEST(MemoryModelTest, DataParallelismShrinksActivationsOnlyBelowMicrobatch) {
  // With a batch small enough that the per-group share drops below the
  // micro-batch size, more data parallelism shrinks live activations.
  TrainingJob job{gpt_by_name("GPT-20B"), /*batch_tokens=*/32768, true};
  const auto d1 = memory_per_gpu(job, 2, 2, 2, 1);
  const auto d8 = memory_per_gpu(job, 2, 2, 2, 8);
  EXPECT_EQ(d1.parameter_bytes, d8.parameter_bytes);
  EXPECT_GT(d1.activation_bytes, d8.activation_bytes);
}

TEST(MemoryModelTest, MicrobatchingCapsActivations) {
  // Gradient accumulation: the huge 16.8M-token batch never lives in memory
  // at once, so activations are identical for any gdata whose share exceeds
  // the micro-batch size.
  TrainingJob job{gpt_by_name("GPT-20B"), 16.8e6, true};
  const auto a = memory_per_gpu(job, 2, 2, 2, 1);
  const auto b = memory_per_gpu(job, 2, 2, 2, 64);
  EXPECT_EQ(a.activation_bytes, b.activation_bytes);
  EXPECT_DOUBLE_EQ(job.live_tokens(1), job.microbatch_tokens);
}

TEST(MemoryModelTest, InvalidGridThrows) {
  TrainingJob job{gpt_by_name("GPT-5B"), 16.8e6, true};
  EXPECT_THROW(memory_per_gpu(job, 0, 1, 1, 1), Error);
}

}  // namespace
}  // namespace axonn::model
