// ABFT (Huang–Abraham) checksum verification: clean GEMMs never false-
// positive across shapes x modes x backends x precisions, an injected
// single-element fault is always detected (and localized), and heal mode
// recomputes to a bitwise-identical result — including through the
// TensorParallelFC hot path that production training runs.

#include "axonn/integrity/abft.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "axonn/base/rng.hpp"
#include "axonn/comm/thread_comm.hpp"
#include "axonn/core/fc_layer.hpp"
#include "axonn/tensor/gemm.hpp"
#include "axonn/tensor/gemm_dispatch.hpp"
#include "axonn/tensor/gemm_tiled.hpp"

namespace axonn::integrity {
namespace {

struct GemmCase {
  std::size_t m, n, k;
  GemmMode mode;
  GemmBackend backend;
  bool bf16;
};

// Shapes straddle the tiled backend's blocking: scalars, odd primes, exact
// tiles, and larger-than-one-tile.
const std::size_t kShapes[][3] = {
    {1, 1, 1}, {3, 5, 7}, {17, 9, 33}, {32, 32, 32}, {48, 40, 72}};

std::vector<GemmCase> all_cases() {
  std::vector<GemmCase> cases;
  for (const auto& s : kShapes) {
    for (GemmMode mode : {GemmMode::kNN, GemmMode::kNT, GemmMode::kTN}) {
      for (GemmBackend backend :
           {GemmBackend::kReference, GemmBackend::kTiled}) {
        for (bool bf16 : {false, true}) {
          cases.push_back({s[0], s[1], s[2], mode, backend, bf16});
        }
      }
    }
  }
  return cases;
}

// Operand matrices shaped for op(A) (m x k) and op(B) (k x n) under `mode`.
Matrix make_a(const GemmCase& c, Rng& rng) {
  const bool ta = gemm_transposes_a(c.mode);
  return Matrix::randn(ta ? c.k : c.m, ta ? c.m : c.k, rng);
}

Matrix make_b(const GemmCase& c, Rng& rng) {
  const bool tb = gemm_transposes_b(c.mode);
  return Matrix::randn(tb ? c.n : c.k, tb ? c.k : c.n, rng);
}

// The kernel under test, dispatched like the production call sites do.
void run_kernel(const GemmCase& c, const Matrix& a, const Matrix& b,
                Matrix& out) {
  if (c.backend == GemmBackend::kTiled) {
    gemm_tiled(c.mode, 1.0f, a, b, 0.0f, out, c.bf16);
  } else if (c.bf16) {
    gemm_bf16(c.mode, 1.0f, a, b, 0.0f, out);
  } else {
    gemm(c.mode, 1.0f, a, b, 0.0f, out);
  }
}

void checked(const GemmCase& c, const AbftOptions& opts, const Matrix& a,
             const Matrix& b, Matrix& out) {
  abft_checked_gemm(opts, "test", c.backend, c.mode, 1.0f, a, b, 0.0f, out,
                    c.bf16, [&](Matrix& dst) { run_kernel(c, a, b, dst); });
}

TEST(AbftTest, CleanGemmsNeverFalsePositive) {
  AbftOptions opts;
  opts.mode = IntegrityMode::kDetect;
  Rng rng(0xABF7);
  const CountersSnapshot before = counters().snapshot();
  std::uint64_t ran = 0;
  for (const GemmCase& c : all_cases()) {
    const Matrix a = make_a(c, rng);
    const Matrix b = make_b(c, rng);
    Matrix out(c.m, c.n);
    EXPECT_NO_THROW(checked(c, opts, a, b, out))
        << "m=" << c.m << " n=" << c.n << " k=" << c.k << " mode "
        << to_string(c.mode) << " backend " << to_string(c.backend)
        << " bf16=" << c.bf16;
    ++ran;
  }
  const CountersSnapshot after = counters().snapshot();
  EXPECT_EQ(after.abft_checks - before.abft_checks, ran);
  EXPECT_EQ(after.abft_mismatches, before.abft_mismatches);
}

TEST(AbftTest, OffModeIsBitIdenticalToUncheckedKernel) {
  Rng rng(7);
  for (const GemmCase& c : all_cases()) {
    const Matrix a = make_a(c, rng);
    const Matrix b = make_b(c, rng);
    Matrix plain(c.m, c.n), wrapped(c.m, c.n);
    run_kernel(c, a, b, plain);
    AbftOptions opts;  // kOff
    checked(c, opts, a, b, wrapped);
    EXPECT_EQ(plain.storage(), wrapped.storage());
  }
}

TEST(AbftTest, InjectedFaultIsDetectedAndLocalized) {
  AbftOptions opts;
  opts.mode = IntegrityMode::kDetect;
  Rng rng(21);
  for (const GemmCase& c : all_cases()) {
    const Matrix a = make_a(c, rng);
    const Matrix b = make_b(c, rng);
    Matrix out(c.m, c.n);
    AbftFaultPlan plan;
    plan.row = c.m / 2;
    plan.col = c.n / 2;
    arm_abft_fault(plan);
    try {
      checked(c, opts, a, b, out);
      ADD_FAILURE() << "bit-30 fault undetected at m=" << c.m << " n=" << c.n
                    << " k=" << c.k << " mode " << to_string(c.mode);
      disarm_abft_fault();
    } catch (const SdcError& e) {
      EXPECT_EQ(e.bad_row(), plan.row);
      EXPECT_EQ(e.bad_col(), plan.col);
      EXPECT_EQ(e.mode(), c.mode);
      EXPECT_EQ(e.backend(), c.backend);
    }
  }
  EXPECT_FALSE(disarm_abft_fault());  // every plan fired
}

TEST(AbftTest, HealRecoversBitIdenticalResult) {
  AbftOptions opts;
  opts.mode = IntegrityMode::kHeal;
  Rng rng(33);
  const CountersSnapshot before = counters().snapshot();
  std::uint64_t faults = 0;
  for (const GemmCase& c : all_cases()) {
    const Matrix a = make_a(c, rng);
    const Matrix b = make_b(c, rng);
    Matrix clean(c.m, c.n);
    run_kernel(c, a, b, clean);

    Matrix healed(c.m, c.n);
    arm_abft_fault({});
    EXPECT_NO_THROW(checked(c, opts, a, b, healed));
    EXPECT_EQ(clean.storage(), healed.storage());
    ++faults;
  }
  const CountersSnapshot after = counters().snapshot();
  EXPECT_EQ(after.sdc_detected - before.sdc_detected, faults);
  EXPECT_EQ(after.sdc_recovered - before.sdc_recovered, faults);
  EXPECT_GE(after.abft_recomputes - before.abft_recomputes, faults);
}

TEST(AbftTest, ThreadedTiledPathsDetectAndHealOnEveryIsaTier) {
  // ABFT checksums are computed on the finished C, so neither the worker-
  // lane count nor the dispatched micro-kernel tier may change detect/heal
  // behavior: clean threaded GEMMs never false-positive, an injected fault
  // heals to the threaded run's own bitwise result — on the forced-portable
  // oracle tier and on whatever this host dispatches natively, bf16 included.
  for (GemmIsa tier : {GemmIsa::kPortable, detected_gemm_isa()}) {
    force_gemm_isa(tier);
    GemmThreadScope lanes(4);
    Rng rng(0x7EAD);
    for (const GemmCase& c : all_cases()) {
      if (c.backend != GemmBackend::kTiled) continue;
      const Matrix a = make_a(c, rng);
      const Matrix b = make_b(c, rng);
      Matrix clean(c.m, c.n);
      run_kernel(c, a, b, clean);

      AbftOptions opts;
      opts.mode = IntegrityMode::kDetect;
      Matrix out(c.m, c.n);
      EXPECT_NO_THROW(checked(c, opts, a, b, out))
          << to_string(tier) << " m=" << c.m << " n=" << c.n << " k=" << c.k
          << " mode " << to_string(c.mode) << " bf16=" << c.bf16;
      EXPECT_EQ(out.storage(), clean.storage());

      opts.mode = IntegrityMode::kHeal;
      Matrix healed(c.m, c.n);
      arm_abft_fault({});
      EXPECT_NO_THROW(checked(c, opts, a, b, healed));
      EXPECT_EQ(healed.storage(), clean.storage())
          << to_string(tier) << " heal diverged at m=" << c.m << " n=" << c.n;
    }
  }
  reset_gemm_isa();
}

TEST(AbftTest, HealRestoresAccumulatorWhenBetaNonZero) {
  // C = A x B + C0: heal must re-run from the *original* C0, not the
  // corrupted C.
  Rng rng(44);
  const Matrix a = Matrix::randn(9, 13, rng);
  const Matrix b = Matrix::randn(13, 6, rng);
  Matrix c0 = Matrix::randn(9, 6, rng);

  Matrix clean = c0;
  gemm(GemmMode::kNN, 1.0f, a, b, 1.0f, clean);

  AbftOptions opts;
  opts.mode = IntegrityMode::kHeal;
  Matrix healed = c0;
  arm_abft_fault({});
  abft_checked_gemm(opts, "beta", GemmBackend::kReference, GemmMode::kNN, 1.0f,
                    a, b, 1.0f, healed, false, [&](Matrix& dst) {
                      gemm(GemmMode::kNN, 1.0f, a, b, 1.0f, dst);
                    });
  EXPECT_EQ(clean.storage(), healed.storage());
}

TEST(AbftTest, PersistentFaultExhaustsHealBudgetAndThrows) {
  AbftOptions opts;
  opts.mode = IntegrityMode::kHeal;
  opts.max_recomputes = 2;
  Rng rng(55);
  const Matrix a = Matrix::randn(8, 8, rng);
  const Matrix b = Matrix::randn(8, 8, rng);
  Matrix out(8, 8);
  // A fault in the *kernel itself* (not the one-shot plan): every attempt
  // reproduces the corruption, so heal must give up after max_recomputes.
  int runs = 0;
  EXPECT_THROW(
      abft_checked_gemm(opts, "stuck", GemmBackend::kReference, GemmMode::kNN,
                        1.0f, a, b, 0.0f, out, false,
                        [&](Matrix& dst) {
                          gemm(GemmMode::kNN, 1.0f, a, b, 0.0f, dst);
                          dst(0, 0) = dst(0, 0) * 1e20f;  // persistent SDC
                          ++runs;
                        }),
      SdcError);
  EXPECT_EQ(runs, 1 + opts.max_recomputes);
}

// --------------------------------------------------------------------------
// TensorParallelFC integration: the production hot path.
// --------------------------------------------------------------------------

struct FcCase {
  GemmBackend backend;
  bool tuning;
  bool bf16;
};

class AbftFcTest : public ::testing::TestWithParam<FcCase> {};

TEST_P(AbftFcTest, ForwardHealsInjectedFault) {
  const FcCase param = GetParam();
  comm::run_ranks(1, [&](comm::Communicator& world) {
    core::Grid4D grid(world, sim::GridShape{1, 1, 1, 1});

    core::FCOptions options;
    options.gemm_backend = param.backend;
    options.kernel_tuning = param.tuning;
    options.mixed_precision = param.bf16;

    Rng rng(9);
    const Matrix input = Matrix::randn(12, 16, rng);

    // Clean reference: same layer config, ABFT off.
    core::TensorParallelFC plain(grid, 16, 20, 77, options);
    const Matrix clean = plain.forward(plain.scatter_input(input));

    options.abft.mode = IntegrityMode::kHeal;
    core::TensorParallelFC fc(grid, 16, 20, 77, options);
    const CountersSnapshot before = counters().snapshot();
    AbftFaultPlan plan;
    plan.row = 3;
    plan.col = 4;
    arm_abft_fault(plan);
    const Matrix healed = fc.forward(fc.scatter_input(input));
    EXPECT_FALSE(disarm_abft_fault());  // the plan fired inside forward

    const CountersSnapshot after = counters().snapshot();
    EXPECT_EQ(after.sdc_detected - before.sdc_detected, 1u);
    EXPECT_EQ(after.sdc_recovered - before.sdc_recovered, 1u);

    if (param.tuning) {
      // The tuner's winner is timing-dependent, so the reference instance may
      // have locked a different backend; assert self-consistency instead —
      // a fault-free forward of the *same* layer must match the healed one.
      const Matrix again = fc.forward(fc.scatter_input(input));
      EXPECT_EQ(again.storage(), healed.storage());
    } else {
      EXPECT_EQ(clean.storage(), healed.storage());
    }
  });
}

TEST_P(AbftFcTest, CleanForwardBackwardNeverFalsePositives) {
  const FcCase param = GetParam();
  comm::run_ranks(1, [&](comm::Communicator& world) {
    core::Grid4D grid(world, sim::GridShape{1, 1, 1, 1});

    core::FCOptions options;
    options.gemm_backend = param.backend;
    options.kernel_tuning = param.tuning;
    options.mixed_precision = param.bf16;
    options.abft.mode = IntegrityMode::kDetect;
    core::TensorParallelFC fc(grid, 16, 20, 77, options);

    Rng rng(10);
    const Matrix input = Matrix::randn(12, 16, rng);
    const Matrix dout = Matrix::randn(12, 20, rng);
    const CountersSnapshot before = counters().snapshot();
    for (int step = 0; step < 3; ++step) {
      const Matrix out = fc.forward(fc.scatter_input(input));
      EXPECT_EQ(out.rows(), 12u);
      fc.backward(dout);
      fc.finish_gradients();
    }
    const CountersSnapshot after = counters().snapshot();
    // 3 steps x 3 GEMMs (forward NN, dI NT, dW TN), all checked, none flagged.
    EXPECT_EQ(after.abft_checks - before.abft_checks, 9u);
    EXPECT_EQ(after.abft_mismatches, before.abft_mismatches);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Paths, AbftFcTest,
    ::testing::Values(FcCase{GemmBackend::kReference, false, false},
                      FcCase{GemmBackend::kReference, false, true},
                      FcCase{GemmBackend::kTiled, false, false},
                      FcCase{GemmBackend::kTiled, false, true},
                      FcCase{GemmBackend::kReference, true, false}));

TEST(IntegrityModeTest, ParseAndToStringRoundTrip) {
  EXPECT_EQ(parse_mode("off"), IntegrityMode::kOff);
  EXPECT_EQ(parse_mode("detect"), IntegrityMode::kDetect);
  EXPECT_EQ(parse_mode("heal"), IntegrityMode::kHeal);
  EXPECT_THROW(parse_mode("maybe"), Error);
  for (IntegrityMode m : {IntegrityMode::kOff, IntegrityMode::kDetect,
                          IntegrityMode::kHeal}) {
    EXPECT_EQ(parse_mode(to_string(m)), m);
  }
}

TEST(IntegrityModeTest, EffectiveModeWithoutOverrideIsConfigured) {
  // The test binaries run with AXONN_INTEGRITY unset (the env override is
  // cached per process, so this asserts the default-path behavior).
  if (!env_mode_override()) {
    EXPECT_EQ(effective_mode(IntegrityMode::kHeal), IntegrityMode::kHeal);
    EXPECT_EQ(effective_mode(IntegrityMode::kOff), IntegrityMode::kOff);
  } else {
    EXPECT_EQ(effective_mode(IntegrityMode::kOff), *env_mode_override());
  }
}

}  // namespace
}  // namespace axonn::integrity
