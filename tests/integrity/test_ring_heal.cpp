// Self-healing ring transport: CRC-stamped segments, receiver-driven NACK /
// retransmit. Detect mode surfaces a corrupted segment as a structured
// error; heal mode retransmits from the sender's retained copy and finishes
// bitwise identical to a fault-free run, at chunk sizes that straddle the
// segment boundary. Also covers the ChaosComm wire-level fault schedule
// (deterministic targeted flips addressed by collective #, edge, segment #).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "axonn/comm/chaos_comm.hpp"
#include "axonn/comm/thread_comm.hpp"
#include "axonn/integrity/integrity.hpp"

namespace axonn::comm {
namespace {

using integrity::CountersSnapshot;
using integrity::IntegrityMode;

std::vector<float> contribution(int rank, std::size_t n) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = 0.37f * static_cast<float>(rank + 1) -
           0.11f * static_cast<float>(i % 17) +
           1e-3f * static_cast<float>((static_cast<int>(i) * (rank + 3)) % 7);
  }
  return v;
}

/// The golden result: the same collective over a CRC-free, fault-free world.
std::vector<float> clean_all_reduce(int ranks, std::size_t n,
                                    std::size_t segment_elems) {
  std::vector<float> result;
  WorldOptions options;
  options.ring_segment_elems = segment_elems;
  std::mutex mutex;
  run_ranks(
      ranks,
      [&](Communicator& world) {
        std::vector<float> buffer = contribution(world.rank(), n);
        world.all_reduce(buffer, ReduceOp::kSum);
        if (world.rank() == 0) {
          std::lock_guard<std::mutex> lock(mutex);
          result = buffer;
        }
      },
      options);
  return result;
}

TEST(RingCrcTest, CleanRunsVerifyEveryMessageWithNoRetransmits) {
  WorldOptions options;
  options.ring_segment_elems = 8;
  options.ring_crc = IntegrityMode::kHeal;
  const CountersSnapshot before = integrity::counters().snapshot();
  const std::vector<float> expected = clean_all_reduce(4, 33, 8);
  run_ranks(
      4,
      [&](Communicator& world) {
        std::vector<float> buffer = contribution(world.rank(), 33);
        world.all_reduce(buffer, ReduceOp::kSum);
        EXPECT_EQ(buffer, expected);
        EXPECT_GT(world.stats().crc_checks, 0u);
        EXPECT_GT(world.stats().crc_bytes_sent, 0u);
        EXPECT_EQ(world.stats().crc_retransmits, 0u);
      },
      options);
  const CountersSnapshot after = integrity::counters().snapshot();
  EXPECT_GT(after.ring_crc_checks, before.ring_crc_checks);
  EXPECT_EQ(after.ring_retransmits, before.ring_retransmits);
  EXPECT_EQ(after.sdc_detected, before.sdc_detected);
}

TEST(RingCrcTest, CrcFramingLeavesModeledWireBytesUnchanged) {
  // crc_bytes_sent accounts for the stamps; wire_bytes_sent must stay
  // payload-only so the Eq. 1-5 comm-model cross-check stays exact.
  auto wire_bytes = [](IntegrityMode crc) {
    WorldOptions options;
    options.ring_segment_elems = 8;
    options.ring_crc = crc;
    std::atomic<std::uint64_t> bytes{0};
    run_ranks(
        2,
        [&](Communicator& world) {
          std::vector<float> buffer = contribution(world.rank(), 24);
          world.all_reduce(buffer, ReduceOp::kSum);
          if (world.rank() == 0) bytes = world.stats().wire_bytes_sent;
        },
        options);
    return bytes.load();
  };
  EXPECT_EQ(wire_bytes(IntegrityMode::kOff), wire_bytes(IntegrityMode::kHeal));
}

TEST(RingCrcTest, DetectModeThrowsOnCorruptedSegment) {
  WorldOptions options;
  options.ring_segment_elems = 8;
  options.ring_crc = IntegrityMode::kDetect;
  ChaosConfig chaos;
  chaos.wire.target_seq = 0;  // the first collective on the world comm
  chaos.wire.target_msg_index = 0;
  chaos.wire.target_src_world_rank = 0;
  EXPECT_THROW(
      run_ranks(
          2,
          [&](Communicator& world) {
            ChaosComm wrapped(world, chaos);
            std::vector<float> buffer = contribution(world.rank(), 24);
            wrapped.all_reduce(buffer, ReduceOp::kSum);
          },
          options),
      DataCorruptionError);
}

struct HealCase {
  int ranks;
  std::size_t elems;
  std::size_t segment;
};

class RingHealSizes : public ::testing::TestWithParam<HealCase> {};

TEST_P(RingHealSizes, TargetedFlipHealsBitwiseIdentical) {
  const HealCase param = GetParam();
  const std::vector<float> expected =
      clean_all_reduce(param.ranks, param.elems, param.segment);

  WorldOptions options;
  options.ring_segment_elems = param.segment;
  options.ring_crc = IntegrityMode::kHeal;
  ChaosConfig chaos;
  chaos.wire.target_seq = 0;
  chaos.wire.target_msg_index = 0;
  chaos.wire.target_src_world_rank = 0;

  const CountersSnapshot before = integrity::counters().snapshot();
  run_ranks(
      param.ranks,
      [&](Communicator& world) {
        ChaosComm wrapped(world, chaos);
        std::vector<float> buffer = contribution(world.rank(), param.elems);
        wrapped.all_reduce(buffer, ReduceOp::kSum);
        EXPECT_EQ(buffer, expected) << "rank " << world.rank();
      },
      options);
  const CountersSnapshot after = integrity::counters().snapshot();
  // Rank 0 sends to exactly one ring neighbor, so exactly one message
  // matched the target: one injected fault, one detection, one retransmit,
  // one recovery.
  EXPECT_EQ(after.wire_faults_injected - before.wire_faults_injected, 1u);
  EXPECT_EQ(after.sdc_detected - before.sdc_detected, 1u);
  EXPECT_EQ(after.sdc_recovered - before.sdc_recovered, 1u);
  EXPECT_EQ(after.ring_retransmits - before.ring_retransmits, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    SegmentStraddle, RingHealSizes,
    ::testing::Values(HealCase{2, 2, 8},    // one element per rank chunk
                      HealCase{2, 8, 8},    // exactly one segment
                      HealCase{2, 9, 8},    // partial trailing segment
                      HealCase{4, 33, 8},   // partial chunks per rank
                      HealCase{3, 24, 0},   // unsegmented ring
                      HealCase{4, 64, 16}));

TEST(RingCrcTest, ProbabilisticWireChaosHealsUnderSustainedFaults) {
  // High per-message fault rate across *every* collective: retransmits
  // redraw (attempt is hashed into the schedule), so healing always makes
  // progress and the final state is still bitwise clean.
  const std::vector<float> expected = clean_all_reduce(3, 40, 8);
  WorldOptions options;
  options.ring_segment_elems = 8;
  options.ring_crc = IntegrityMode::kHeal;
  options.crc_max_retries = 16;  // p=0.3^16: escape failure is negligible
  ChaosConfig chaos;
  chaos.seed = 77;
  chaos.wire.corrupt_probability = 0.3;

  const CountersSnapshot before = integrity::counters().snapshot();
  run_ranks(
      3,
      [&](Communicator& world) {
        ChaosComm wrapped(world, chaos);
        std::vector<float> buffer = contribution(world.rank(), 40);
        for (int i = 0; i < 5; ++i) {
          std::vector<float> round = buffer;
          wrapped.all_reduce(round, ReduceOp::kSum);
          EXPECT_EQ(round, expected);
        }
      },
      options);
  const CountersSnapshot after = integrity::counters().snapshot();
  EXPECT_GT(after.wire_faults_injected, before.wire_faults_injected);
  EXPECT_GT(after.ring_retransmits, before.ring_retransmits);
  // Every detection healed (some faults may hit the same message twice
  // across retransmit redraws — recovery is still one per detection).
  EXPECT_EQ(after.sdc_detected - before.sdc_detected,
            after.sdc_recovered - before.sdc_recovered);
}

TEST(RingCrcTest, RetainedMessagesDrainToZero) {
  WorldOptions options;
  options.ring_segment_elems = 8;
  options.ring_crc = IntegrityMode::kHeal;
  ThreadWorld world(3, options);
  std::vector<std::thread> threads;
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&world, r] {
      auto comm = world.world_comm(r);
      std::vector<float> buffer = contribution(r, 40);
      comm->all_reduce(buffer, ReduceOp::kSum);
      std::vector<float> recv(3 * 8);
      comm->all_gather(contribution(r, 8), recv);
    });
  }
  for (auto& t : threads) t.join();
  // Every sent frame was verified by its receiver and released.
  EXPECT_EQ(world.retained_messages(), 0u);
}

TEST(RingCrcTest, PersistentCorruptionExhaustsRetriesAndEscalates) {
  WorldOptions options;
  options.ring_segment_elems = 8;
  options.ring_crc = IntegrityMode::kHeal;
  options.crc_max_retries = 3;
  std::atomic<int> attempts_seen{0};
  bool saw_escalation = false;
  try {
    run_ranks(
        2,
        [&](Communicator& world) {
          auto* tc = dynamic_cast<ThreadComm*>(&world);
          ASSERT_NE(tc, nullptr);
          // A stuck link: the first message from rank 0 is corrupted on
          // every attempt, so retransmission cannot help.
          tc->thread_world()->set_wire_fault_hook(
              [&attempts_seen](const ThreadWorld::WireContext& ctx,
                               std::span<float> payload) {
                if (ctx.seq == 0 && ctx.msg_index == 0 &&
                    ctx.src_world_rank == 0 && !payload.empty()) {
                  attempts_seen.fetch_add(1);
                  auto* words =
                      reinterpret_cast<std::uint32_t*>(payload.data());
                  words[0] ^= 0x40000000u;
                }
              });
          std::vector<float> buffer = contribution(world.rank(), 24);
          world.all_reduce(buffer, ReduceOp::kSum);
        },
        options);
  } catch (const DataCorruptionError&) {
    saw_escalation = true;
  }
  EXPECT_TRUE(saw_escalation);
  EXPECT_EQ(attempts_seen.load(), 1 + options.crc_max_retries);
}

TEST(RingCrcTest, WireScheduleIsDeterministicAcrossRuns) {
  // Same seed, same config => identical fault/retransmit counts — the
  // reproducibility contract the ChaosComm wire mode documents.
  auto run_once = [] {
    WorldOptions options;
    options.ring_segment_elems = 8;
    options.ring_crc = IntegrityMode::kHeal;
    options.crc_max_retries = 16;
    ChaosConfig chaos;
    chaos.seed = 4242;
    chaos.wire.corrupt_probability = 0.25;
    const CountersSnapshot before = integrity::counters().snapshot();
    run_ranks(
        3,
        [&](Communicator& world) {
          ChaosComm wrapped(world, chaos);
          std::vector<float> buffer = contribution(world.rank(), 40);
          for (int i = 0; i < 4; ++i) {
            wrapped.all_reduce(buffer, ReduceOp::kSum);
          }
        },
        options);
    const CountersSnapshot after = integrity::counters().snapshot();
    return after.wire_faults_injected - before.wire_faults_injected;
  };
  const std::uint64_t first = run_once();
  const std::uint64_t second = run_once();
  EXPECT_GT(first, 0u);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace axonn::comm
