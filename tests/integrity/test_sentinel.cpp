// Training health sentinel: journal/rollback restores bit-exact state,
// NaN/inf and gradient-spike detection reach world consensus, replay heals a
// one-shot memory corruption to a bit-identical final loss, and exhausted
// replay budgets escalate to the checkpoint/restart supervisor.

#include "axonn/train/sentinel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <limits>
#include <vector>

#include "axonn/comm/thread_comm.hpp"
#include "axonn/core/grid4d.hpp"
#include "axonn/train/resilient.hpp"

namespace axonn::train {
namespace {

namespace fs = std::filesystem;
using integrity::CountersSnapshot;
using integrity::IntegrityMode;

TinyGPTConfig tiny_model() {
  TinyGPTConfig config;
  config.vocab = 16;
  config.max_seq = 16;
  config.layers = 1;
  config.hidden = 16;
  config.heads = 2;
  config.seed = 7;
  return config;
}

CorpusConfig tiny_corpus() {
  CorpusConfig config;
  config.vocab = 16;
  config.doc_tokens = 16;
  config.docs_per_bucket = 2;
  return config;
}

/// Runs `body(model, adam, sentinel, corpus)` on a single-rank world.
template <typename Body>
void with_training_stack(const SentinelConfig& sentinel_config, Body&& body) {
  comm::run_ranks(1, [&](comm::Communicator& world) {
    core::Grid4D grid(world, sim::GridShape{1, 1, 1, 1});
    GPTModel model(grid, tiny_model());
    Adam adam;
    model.register_params(adam);
    TrainingSentinel sentinel(sentinel_config, world, model, adam);
    const BucketCorpus corpus(tiny_corpus());
    body(model, adam, sentinel, corpus);
  });
}

std::vector<TokenSeq> batch_for(const BucketCorpus& corpus, std::uint64_t doc) {
  return {corpus.background_doc(doc), corpus.background_doc(doc + 1)};
}

std::vector<Matrix> snapshot_weights(GPTModel& model) {
  std::vector<Matrix> weights;
  model.for_each_parameter([&](Matrix& w) { weights.push_back(w); });
  return weights;
}

TEST(SentinelTest, OffModeIsInertAndJournalFree) {
  SentinelConfig config;  // kOff
  with_training_stack(config, [](GPTModel& model, Adam& adam,
                                 TrainingSentinel& sentinel,
                                 const BucketCorpus& corpus) {
    EXPECT_FALSE(sentinel.enabled());
    const CountersSnapshot before = integrity::counters().snapshot();
    TrainCursor cursor;
    sentinel.journal(cursor);
    model.zero_grad();
    const float loss = model.train_step(batch_for(corpus, 0));
    EXPECT_TRUE(sentinel.check_step(loss, cursor));
    adam.step();
    const CountersSnapshot after = integrity::counters().snapshot();
    EXPECT_EQ(after.sentinel_checks, before.sentinel_checks);
  });
}

TEST(SentinelTest, HealthyStepsPassConsensus) {
  SentinelConfig config;
  config.mode = IntegrityMode::kHeal;
  with_training_stack(config, [](GPTModel& model, Adam& adam,
                                 TrainingSentinel& sentinel,
                                 const BucketCorpus& corpus) {
    const CountersSnapshot before = integrity::counters().snapshot();
    TrainCursor cursor;
    for (int step = 0; step < 4; ++step) {
      sentinel.journal(cursor);
      model.zero_grad();
      const float loss = model.train_step(batch_for(corpus, cursor.step * 2));
      ASSERT_TRUE(sentinel.check_step(loss, cursor));
      adam.step();
      cursor.step += 1;
    }
    const CountersSnapshot after = integrity::counters().snapshot();
    EXPECT_EQ(after.sentinel_checks - before.sentinel_checks, 4u);
    EXPECT_EQ(after.sentinel_unhealthy, before.sentinel_unhealthy);
    EXPECT_EQ(sentinel.replays(), 0u);
  });
}

TEST(SentinelTest, NonFiniteGradientRollsBackBitExact) {
  SentinelConfig config;
  config.mode = IntegrityMode::kHeal;
  with_training_stack(config, [](GPTModel& model, Adam& adam,
                                 TrainingSentinel& sentinel,
                                 const BucketCorpus& corpus) {
    TrainCursor cursor;
    cursor.rng = Rng(5);
    const std::vector<Matrix> before_weights = snapshot_weights(model);
    const TrainCursor before_cursor = cursor;

    sentinel.journal(cursor);
    model.zero_grad();
    const float loss = model.train_step(batch_for(corpus, 0));
    // The optimizer applies the (about to be poisoned) gradients — rollback
    // must undo the weight update, the moments, and the step counter.
    adam.step();
    cursor.step = 1;
    bool first = true;
    model.for_each_gradient([&first](Matrix& g) {
      if (first && g.rows() > 0) {
        g(0, 0) = std::numeric_limits<float>::quiet_NaN();
        first = false;
      }
    });

    EXPECT_FALSE(sentinel.check_step(loss, cursor));
    EXPECT_EQ(sentinel.replays(), 1u);
    EXPECT_EQ(cursor.step, before_cursor.step);
    {
      Rng restored = cursor.rng;  // copies: peeking must not advance state
      Rng original = before_cursor.rng;
      EXPECT_EQ(restored(), original());
    }
    EXPECT_EQ(adam.step_count(), 0);
    const std::vector<Matrix> after_weights = snapshot_weights(model);
    ASSERT_EQ(after_weights.size(), before_weights.size());
    for (std::size_t i = 0; i < after_weights.size(); ++i) {
      EXPECT_EQ(after_weights[i].storage(), before_weights[i].storage());
    }
  });
}

TEST(SentinelTest, GradientSpikeTriggersAfterWarmup) {
  SentinelConfig config;
  config.mode = IntegrityMode::kHeal;
  config.warmup_steps = 2;
  with_training_stack(config, [](GPTModel& model, Adam& adam,
                                 TrainingSentinel& sentinel,
                                 const BucketCorpus& corpus) {
    TrainCursor cursor;
    for (int step = 0; step < 3; ++step) {
      sentinel.journal(cursor);
      model.zero_grad();
      const float loss = model.train_step(batch_for(corpus, cursor.step * 2));
      ASSERT_TRUE(sentinel.check_step(loss, cursor));
      adam.step();
      cursor.step += 1;
    }
    // A finite but astronomically scaled gradient — the signature of a
    // high-exponent bit flip — must trip the EMA spike check.
    sentinel.journal(cursor);
    model.zero_grad();
    const float loss = model.train_step(batch_for(corpus, cursor.step * 2));
    model.for_each_gradient([](Matrix& g) {
      for (float& v : g.storage()) v *= 1e8f;
    });
    EXPECT_FALSE(sentinel.check_step(loss, cursor));
    EXPECT_EQ(sentinel.replays(), 1u);
  });
}

TEST(SentinelTest, DetectModeEscalatesImmediately) {
  SentinelConfig config;
  config.mode = IntegrityMode::kDetect;
  with_training_stack(config, [](GPTModel& model, Adam& adam,
                                 TrainingSentinel& sentinel,
                                 const BucketCorpus& corpus) {
    (void)adam;
    TrainCursor cursor;
    sentinel.journal(cursor);
    model.zero_grad();
    const float loss = model.train_step(batch_for(corpus, 0));
    bool first = true;
    model.for_each_gradient([&first](Matrix& g) {
      if (first && g.rows() > 0) {
        g(0, 0) = std::numeric_limits<float>::infinity();
        first = false;
      }
    });
    EXPECT_THROW(sentinel.check_step(loss, cursor), SdcEscalationError);
  });
}

TEST(SentinelTest, ReplayBudgetExhaustionEscalates) {
  SentinelConfig config;
  config.mode = IntegrityMode::kHeal;
  config.max_replays = 1;
  with_training_stack(config, [](GPTModel& model, Adam& adam,
                                 TrainingSentinel& sentinel,
                                 const BucketCorpus& corpus) {
    (void)adam;
    TrainCursor cursor;
    auto poisoned_step = [&] {
      model.zero_grad();
      const float loss = model.train_step(batch_for(corpus, 0));
      bool first = true;
      model.for_each_gradient([&first](Matrix& g) {
        if (first && g.rows() > 0) {
          g(0, 0) = std::numeric_limits<float>::quiet_NaN();
          first = false;
        }
      });
      return loss;
    };
    sentinel.journal(cursor);
    EXPECT_FALSE(sentinel.check_step(poisoned_step(), cursor));  // replay 1
    // A persistently-failing step (same step index) exceeds max_replays=1.
    EXPECT_THROW(sentinel.check_step(poisoned_step(), cursor),
                 SdcEscalationError);
  });
}

// ---------------------------------------------------------------------------
// End-to-end demonstrated heal (the PR's acceptance run, test-sized).
// ---------------------------------------------------------------------------

fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / ("axonn_sdc_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

ResilientTrainConfig sentinel_config(const fs::path& checkpoint_dir) {
  ResilientTrainConfig config;
  config.model = tiny_model();
  config.corpus = tiny_corpus();
  config.grid = sim::GridShape{1, 1, 1, 2};
  config.adam.lr = 5e-3f;
  config.total_steps = 6;
  config.batch_per_rank = 2;
  config.checkpoint_every = 3;
  config.checkpoint_dir = checkpoint_dir.string();
  config.collective_timeout = std::chrono::milliseconds(10000);
  config.sentinel.mode = IntegrityMode::kHeal;
  return config;
}

TEST(SentinelTest, OneShotMemoryCorruptionHealsBitIdentical) {
  const auto reference =
      run_resilient_training(sentinel_config(scratch_dir("reference")));
  EXPECT_EQ(reference.restarts, 0);
  EXPECT_EQ(reference.step_replays, 0u);
  EXPECT_EQ(reference.steps_executed, 6u);

  auto config = sentinel_config(scratch_dir("corrupted"));
  config.enable_chaos = true;
  config.chaos.seed = 13;
  // One high-exponent bit flip in a mid-training collective result — the
  // post-delivery memory-corruption class no transport CRC can see.
  config.chaos.corrupt_once_rank = 0;
  config.chaos.corrupt_once_collective = 12;

  const CountersSnapshot before = integrity::counters().snapshot();
  const auto healed = run_resilient_training(config);
  const CountersSnapshot after = integrity::counters().snapshot();

  // Healed in-run: no supervisor restart, at least one rollback+replay, and
  // a final loss bit-identical to the fault-free run.
  EXPECT_EQ(healed.restarts, 0);
  EXPECT_GE(healed.step_replays, 1u);
  // Replayed (unhealthy) executions don't count; every step completes once.
  EXPECT_EQ(healed.steps_executed, 6u);
  EXPECT_EQ(healed.final_loss, reference.final_loss);
  EXPECT_GT(after.sdc_detected, before.sdc_detected);
  EXPECT_EQ(after.sdc_detected - before.sdc_detected,
            after.sdc_recovered - before.sdc_recovered);
}

TEST(SentinelTest, EscalationFallsBackToCheckpointRestart) {
  // Detect mode cannot heal in-run: the sentinel escalates, and the PR 1
  // supervisor restarts from the latest checkpoint and still converges to
  // the fault-free loss.
  const auto reference =
      run_resilient_training(sentinel_config(scratch_dir("esc_reference")));

  auto config = sentinel_config(scratch_dir("esc_detect"));
  config.sentinel.mode = IntegrityMode::kDetect;
  config.enable_chaos = true;
  config.chaos.seed = 17;
  config.chaos.corrupt_once_rank = 0;
  config.chaos.corrupt_once_collective = 12;

  const auto recovered = run_resilient_training(config);
  EXPECT_EQ(recovered.restarts, 1);
  EXPECT_EQ(recovered.step_replays, 0u);
  EXPECT_EQ(recovered.final_loss, reference.final_loss);
}

}  // namespace
}  // namespace axonn::train
