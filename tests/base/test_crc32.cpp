// CRC-32: known-answer vectors, incremental == one-shot, bit-flip
// sensitivity (the property the checkpoint and chaos layers rely on).

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "axonn/base/crc32.hpp"

namespace axonn {
namespace {

TEST(Crc32Test, KnownAnswerVectors) {
  // The classic CRC-32/ISO-HDLC check value.
  const std::string check = "123456789";
  EXPECT_EQ(crc32(check.data(), check.size()), 0xCBF43926u);

  EXPECT_EQ(crc32(nullptr, 0), 0x00000000u);

  const std::string a = "a";
  EXPECT_EQ(crc32(a.data(), a.size()), 0xE8B7BE43u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  std::vector<unsigned char> data(1337);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<unsigned char>(i * 37 + 11);
  }
  const std::uint32_t one_shot = crc32(data.data(), data.size());

  std::uint32_t state = crc32_init();
  std::size_t pos = 0;
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{100}, std::size_t{1229}}) {
    state = crc32_update(state, data.data() + pos, chunk);
    pos += chunk;
  }
  ASSERT_EQ(pos, data.size());
  EXPECT_EQ(crc32_finish(state), one_shot);
}

TEST(Crc32Test, SingleBitFlipChangesChecksum) {
  std::vector<float> payload(256, 1.5f);
  const std::uint32_t clean =
      crc32(payload.data(), payload.size() * sizeof(float));
  std::uint32_t word;
  std::memcpy(&word, &payload[100], sizeof(word));
  word ^= (1u << 13);
  std::memcpy(&payload[100], &word, sizeof(word));
  EXPECT_NE(crc32(payload.data(), payload.size() * sizeof(float)), clean);
}

}  // namespace
}  // namespace axonn
