#include "axonn/base/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace axonn {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(RngTest, UniformIntOneAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_int(1), 0u);
  }
}

TEST(RngTest, NormalMomentsRoughlyStandard) {
  Rng rng(1234);
  const int n = 50000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, NormalWithParamsShiftsAndScales) {
  Rng rng(99);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += rng.normal(5.0, 0.5);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.02);
}

TEST(RngTest, Mix64IsDeterministicAndMixing) {
  EXPECT_EQ(mix64(0), mix64(0));
  // Avalanche sanity: flipping one input bit flips many output bits.
  const std::uint64_t a = mix64(0x1234);
  const std::uint64_t b = mix64(0x1235);
  EXPECT_GT(__builtin_popcountll(a ^ b), 16);
}

TEST(RngTest, HashCombineOrderSensitive) {
  const auto ab = hash_combine(hash_combine(0, 1), 2);
  const auto ba = hash_combine(hash_combine(0, 2), 1);
  EXPECT_NE(ab, ba);
}

}  // namespace
}  // namespace axonn
