#include "axonn/base/partition.hpp"

#include <gtest/gtest.h>

#include "axonn/base/error.hpp"

namespace axonn {
namespace {

TEST(PartitionTest, EvenSplit) {
  EXPECT_EQ(chunk_range(12, 4, 0), (Range{0, 3}));
  EXPECT_EQ(chunk_range(12, 4, 1), (Range{3, 6}));
  EXPECT_EQ(chunk_range(12, 4, 3), (Range{9, 12}));
}

TEST(PartitionTest, RemainderGoesToLeadingParts) {
  // 10 into 4: sizes 3, 3, 2, 2.
  EXPECT_EQ(chunk_size(10, 4, 0), 3u);
  EXPECT_EQ(chunk_size(10, 4, 1), 3u);
  EXPECT_EQ(chunk_size(10, 4, 2), 2u);
  EXPECT_EQ(chunk_size(10, 4, 3), 2u);
}

TEST(PartitionTest, SinglePartCoversEverything) {
  EXPECT_EQ(chunk_range(7, 1, 0), (Range{0, 7}));
}

TEST(PartitionTest, MorePartsThanItemsYieldsEmptyTails) {
  EXPECT_EQ(chunk_size(2, 5, 0), 1u);
  EXPECT_EQ(chunk_size(2, 5, 1), 1u);
  EXPECT_EQ(chunk_size(2, 5, 2), 0u);
  EXPECT_TRUE(chunk_range(2, 5, 4).empty());
}

TEST(PartitionTest, ZeroItems) {
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(chunk_range(0, 3, i).empty());
  }
}

TEST(PartitionTest, InvalidArgumentsThrow) {
  EXPECT_THROW(chunk_range(10, 0, 0), Error);
  EXPECT_THROW(chunk_range(10, 4, 4), Error);
}

TEST(PartitionTest, MaxChunkSizeIsChunkZero) {
  EXPECT_EQ(max_chunk_size(10, 4), 3u);
  EXPECT_EQ(max_chunk_size(12, 4), 3u);
  EXPECT_EQ(max_chunk_size(0, 4), 0u);
}

// Property: chunks tile [0, n) exactly, in order, for many (n, p) pairs.
class PartitionProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(PartitionProperty, ChunksTileTheRange) {
  const auto [n, p] = GetParam();
  std::size_t expected_begin = 0;
  for (std::size_t i = 0; i < p; ++i) {
    const Range r = chunk_range(n, p, i);
    EXPECT_EQ(r.begin, expected_begin);
    expected_begin = r.end;
    // Sizes are nearly equal: differ by at most 1 from the base size.
    EXPECT_GE(r.size() + 1, n / p + (n % p ? 1 : 0));
    EXPECT_LE(r.size(), n / p + 1);
  }
  EXPECT_EQ(expected_begin, n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionProperty,
    ::testing::Combine(::testing::Values<std::size_t>(0, 1, 2, 5, 16, 17, 100,
                                                      1023),
                       ::testing::Values<std::size_t>(1, 2, 3, 4, 7, 8, 16)));

}  // namespace
}  // namespace axonn
