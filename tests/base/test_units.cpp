#include "axonn/base/units.hpp"

#include <gtest/gtest.h>

namespace axonn::units {
namespace {

TEST(UnitsTest, FormatFlopsPicksMagnitude) {
  EXPECT_EQ(format_flops(1.381e18), "1.381 Exaflop/s");
  EXPECT_EQ(format_flops(620.1e15), "620.1 Pflop/s");
  EXPECT_EQ(format_flops(113e12), "113.0 Tflop/s");
}

TEST(UnitsTest, FormatCount) {
  EXPECT_EQ(format_count(16.8e6), "16.8M");
  EXPECT_EQ(format_count(2e12), "2.0T");
  EXPECT_EQ(format_count(320e9), "320.0B");
  EXPECT_EQ(format_count(512), "512");
}

TEST(UnitsTest, FormatDurationLong) {
  // 25.5 days stays in days; ~4 years flips to years.
  EXPECT_EQ(format_duration_long(25.5 * kSecondsPerDay), "25.5 days");
  EXPECT_EQ(format_duration_long(15 * kSecondsPerMonth), "15.0 months");
  EXPECT_EQ(format_duration_long(50 * kSecondsPerMonth), "4.2 years");
}

TEST(UnitsTest, FormatDurationShort) {
  EXPECT_EQ(format_duration_short(0.01234), "12.34 ms");
  EXPECT_EQ(format_duration_short(2.5), "2.50 s");
  EXPECT_EQ(format_duration_short(5e-6), "5.0 us");
}

TEST(UnitsTest, FormatBandwidth) {
  EXPECT_EQ(format_bandwidth(25e9), "25.0 GB/s");
}

TEST(UnitsTest, ConstantsAreConsistent) {
  EXPECT_DOUBLE_EQ(kGB, 1e9);
  EXPECT_DOUBLE_EQ(kGiB, 1073741824.0);
  EXPECT_DOUBLE_EQ(kExaflop / kPetaflop, 1000.0);
}

}  // namespace
}  // namespace axonn::units
