#include "axonn/base/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "axonn/base/error.hpp"

namespace axonn {
namespace {

TEST(TableTest, RendersHeaderAndRule) {
  Table t({"Model", "Pflop/s"});
  t.add_row({"GPT-40B", "620.1"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Model"), std::string::npos);
  EXPECT_NE(s.find("Pflop/s"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_NE(s.find("GPT-40B"), std::string::npos);
}

TEST(TableTest, NumericCellsRightAligned) {
  Table t({"N", "Value"});
  t.add_row({"1", "2.5"});
  t.add_row({"1000", "999.5"});
  const std::string s = t.to_string();
  // The short number must be padded on the left to the column width.
  EXPECT_NE(s.find("   1 |"), std::string::npos);
}

TEST(TableTest, TextCellsLeftAligned) {
  Table t({"Name", "X"});
  t.add_row({"ab", "1"});
  t.add_row({"abcdef", "2"});
  EXPECT_NE(t.to_string().find("ab     |"), std::string::npos);
}

TEST(TableTest, ShortRowsPadded) {
  Table t({"A", "B", "C"});
  t.add_row({"only"});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_NO_THROW(t.to_string());
}

TEST(TableTest, OverlongRowThrows) {
  Table t({"A"});
  EXPECT_THROW(t.add_row({"1", "2"}), Error);
}

TEST(TableTest, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), Error);
}

TEST(TableTest, CellFormatting) {
  EXPECT_EQ(Table::cell(3.14159, 2), "3.14");
  EXPECT_EQ(Table::cell(3.14159, 0), "3");
  EXPECT_EQ(Table::cell(42LL), "42");
}

TEST(TableTest, PrintStreams) {
  Table t({"H"});
  t.add_row({"v"});
  std::ostringstream oss;
  t.print(oss);
  EXPECT_EQ(oss.str(), t.to_string());
}

}  // namespace
}  // namespace axonn
