#include "axonn/base/aligned.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

namespace axonn {
namespace {

TEST(AlignedAllocator, EverySizeIsCacheAligned) {
  AlignedAllocator<float> alloc;
  // Odd, prime, power-of-two, tiny and tile-sized counts: the guarantee is
  // unconditional, not an artifact of round sizes.
  for (const std::size_t n : {1u, 2u, 3u, 7u, 13u, 16u, 17u, 63u, 64u, 65u,
                              96u, 1000u, 4096u, 4097u}) {
    float* p = alloc.allocate(n);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(is_cache_aligned(p)) << "n=" << n;
    p[0] = 1.0f;
    p[n - 1] = 2.0f;  // touch both ends: the span is really usable
    alloc.deallocate(p, n);
  }
}

TEST(AlignedAllocator, DoubleAndByteElementsAligned) {
  AlignedAllocator<double> d_alloc;
  double* d = d_alloc.allocate(5);
  EXPECT_TRUE(is_cache_aligned(d));
  d_alloc.deallocate(d, 5);

  AlignedAllocator<std::uint8_t> b_alloc;
  std::uint8_t* b = b_alloc.allocate(3);
  EXPECT_TRUE(is_cache_aligned(b));
  b_alloc.deallocate(b, 3);
}

TEST(AlignedAllocator, OverflowingCountThrowsBadAlloc) {
  AlignedAllocator<float> alloc;
  // n * sizeof(T) would wrap: must throw, not allocate a tiny block.
  const std::size_t huge = std::numeric_limits<std::size_t>::max() / 2;
  EXPECT_THROW(static_cast<void>(alloc.allocate(huge)), std::bad_alloc);
}

TEST(AlignedAllocator, RebindCompareEqualAndInterchangeable) {
  // All instances are stateless and equal: containers may splice/swap
  // storage across allocator copies and rebound types.
  AlignedAllocator<float> a;
  AlignedAllocator<float> b;
  EXPECT_TRUE(a == b);

  using Rebound = AlignedAllocator<float>::rebind<double>::other;
  static_assert(std::is_same_v<Rebound, AlignedAllocator<double>>);
  Rebound r(a);  // converting constructor compiles and is equal
  EXPECT_TRUE(r == AlignedAllocator<double>());
}

TEST(AlignedVector, StorageIsAligned) {
  AlignedVector<float> v(129, 1.0f);
  EXPECT_TRUE(is_cache_aligned(v.data()));
  v.resize(301);
  EXPECT_TRUE(is_cache_aligned(v.data()));
}

}  // namespace
}  // namespace axonn
