#include "axonn/base/arena.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include "axonn/base/error.hpp"
#include "axonn/base/metrics.hpp"

namespace axonn::mem {
namespace {

/// Restores the process mode on scope exit so tests compose in one binary.
class ModeGuard {
 public:
  explicit ModeGuard(Mode m) : prev_(mode()) { set_mode(m); }
  ~ModeGuard() { set_mode(prev_); }

 private:
  Mode prev_;
};

std::uint64_t live(Tag tag) { return tag_stats(tag).live_bytes; }

TEST(ArenaMode, ParseAndToString) {
  EXPECT_EQ(parse_mode("off"), Mode::kOff);
  EXPECT_EQ(parse_mode("track"), Mode::kTrack);
  EXPECT_EQ(parse_mode("arena"), Mode::kArena);
  EXPECT_THROW(parse_mode("pool"), Error);
  EXPECT_STREQ(to_string(Mode::kArena), "arena");
  EXPECT_STREQ(to_string(Tag::kPackedPanels), "packed_panels");
}

TEST(ArenaScopeTest, NestsAndRestores) {
  EXPECT_EQ(current_tag(), Tag::kUntagged);
  {
    ArenaScope outer(Tag::kWeights);
    EXPECT_EQ(current_tag(), Tag::kWeights);
    {
      ArenaScope inner(Tag::kGrads);
      EXPECT_EQ(current_tag(), Tag::kGrads);
    }
    EXPECT_EQ(current_tag(), Tag::kWeights);
  }
  EXPECT_EQ(current_tag(), Tag::kUntagged);
}

TEST(ArenaTracking, ChargesAmbientTagAndReleases) {
  ModeGuard guard(Mode::kTrack);
  const std::uint64_t before = live(Tag::kActivations);
  void* p = nullptr;
  {
    ArenaScope scope(Tag::kActivations);
    p = allocate(1 << 20);
  }
  EXPECT_EQ(live(Tag::kActivations), before + (1 << 20));
  // The header carries the tag: freeing outside the scope still credits it.
  deallocate(p);
  EXPECT_EQ(live(Tag::kActivations), before);
}

TEST(ArenaTracking, HighWaterMarkAndReset) {
  ModeGuard guard(Mode::kTrack);
  ArenaScope scope(Tag::kJournal);
  reset_high_water_marks();
  const std::uint64_t base = tag_stats(Tag::kJournal).hwm_bytes;
  void* a = allocate(1 << 16);
  void* b = allocate(1 << 16);
  deallocate(a);
  deallocate(b);
  EXPECT_GE(tag_stats(Tag::kJournal).hwm_bytes, base + (2u << 16));
  reset_high_water_marks();
  // After reset the HWM equals live again, not the old peak.
  EXPECT_LT(tag_stats(Tag::kJournal).hwm_bytes, base + (2u << 16));
  EXPECT_EQ(tag_stats(Tag::kJournal).hwm_bytes,
            tag_stats(Tag::kJournal).live_bytes);
}

TEST(ArenaTracking, TotalIsTrueHighWaterOfSum) {
  ModeGuard guard(Mode::kTrack);
  reset_high_water_marks();
  const std::uint64_t start = total_live_bytes();
  ArenaScope scope(Tag::kActivations);
  void* a = allocate(1 << 18);
  const std::uint64_t peak = total_hwm_bytes();
  EXPECT_GE(peak, start + (1u << 18));
  deallocate(a);
  EXPECT_EQ(total_live_bytes(), start);
  EXPECT_GE(total_hwm_bytes(), peak);  // HWM survives the free
}

TEST(ArenaTracking, OffModeSkipsAccounting) {
  ModeGuard guard(Mode::kOff);
  ArenaScope scope(Tag::kAdam);
  const TagStats before = tag_stats(Tag::kAdam);
  void* p = allocate(1 << 16);
  EXPECT_EQ(tag_stats(Tag::kAdam).live_bytes, before.live_bytes);
  EXPECT_EQ(tag_stats(Tag::kAdam).allocs, before.allocs);
  deallocate(p);
  EXPECT_EQ(tag_stats(Tag::kAdam).live_bytes, before.live_bytes);
}

TEST(ArenaTracking, ModeChangeMidFlightFreesCorrectly) {
  // A block allocated under track must un-account exactly once even when
  // the mode flips before the free: deallocate trusts the header.
  ModeGuard guard(Mode::kTrack);
  ArenaScope scope(Tag::kWeights);
  const std::uint64_t before = live(Tag::kWeights);
  void* p = allocate(4096);
  set_mode(Mode::kOff);
  deallocate(p);
  set_mode(Mode::kTrack);
  EXPECT_EQ(live(Tag::kWeights), before);
}

TEST(ArenaTracking, CrossThreadFreeKeepsAccountsBalanced) {
  ModeGuard guard(Mode::kTrack);
  const std::uint64_t before = live(Tag::kCommBuffers);
  void* p = nullptr;
  {
    ArenaScope scope(Tag::kCommBuffers);
    p = allocate(1 << 19);
  }
  std::thread other([p] { deallocate(p); });
  other.join();
  EXPECT_EQ(live(Tag::kCommBuffers), before);
}

TEST(ArenaPool, ReusesFreedBlocksWhenAvailable) {
  if (!pooling_available()) GTEST_SKIP() << "pooling disabled under ASan";
  ModeGuard guard(Mode::kArena);
  trim_pool();
  const PoolStats before = pool_stats();
  void* a = allocate(1 << 17);
  deallocate(a);  // parks the block in its size-class free list
  EXPECT_GT(pool_stats().pooled_bytes, before.pooled_bytes);
  void* b = allocate(1 << 17);  // same class: served from the pool
  EXPECT_GT(pool_stats().hits, before.hits);
  deallocate(b);
  trim_pool();
  EXPECT_EQ(pool_stats().pooled_bytes, 0u);
}

TEST(ArenaPool, TrackingStaysExactUnderPooling) {
  if (!pooling_available()) GTEST_SKIP() << "pooling disabled under ASan";
  ModeGuard guard(Mode::kArena);
  ArenaScope scope(Tag::kPackedPanels);
  const std::uint64_t before = live(Tag::kPackedPanels);
  void* a = allocate(100000);  // not a power of two: rounded up internally
  EXPECT_EQ(live(Tag::kPackedPanels), before + 100000);
  deallocate(a);
  EXPECT_EQ(live(Tag::kPackedPanels), before);
  trim_pool();
}

TEST(TrackedVectorTest, ChargesAndMovesAcrossScopes) {
  ModeGuard guard(Mode::kTrack);
  const std::uint64_t before = live(Tag::kActivations);
  TrackedVector<float> outside;
  {
    ArenaScope scope(Tag::kActivations);
    TrackedVector<float> v(1024, 1.0f);
    EXPECT_GE(live(Tag::kActivations), before + 1024 * sizeof(float));
    outside = std::move(v);  // storage moves out of the scope, tag sticks
  }
  EXPECT_GE(live(Tag::kActivations), before + 1024 * sizeof(float));
  outside.clear();
  outside.shrink_to_fit();
  EXPECT_EQ(live(Tag::kActivations), before);
}

TEST(TrackedVectorTest, AllocatorEqualityAndOverflow) {
  TrackedAllocator<float> a, b;
  EXPECT_TRUE(a == b);
  EXPECT_THROW(
      static_cast<void>(a.allocate(std::numeric_limits<std::size_t>::max() / 2)),
      std::bad_alloc);
}

TEST(ArenaTracking, ConcurrentAllocationBalances) {
  // Rank + progress threads allocate and free concurrently in production;
  // the relaxed-atomic accounting must balance exactly (ctest -L tsan runs
  // this under ThreadSanitizer).
  ModeGuard guard(Mode::kTrack);
  const std::uint64_t before = live(Tag::kActivations);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      ArenaScope scope(Tag::kActivations);
      for (int i = 0; i < 200; ++i) {
        void* p = allocate(static_cast<std::size_t>(1024 + 64 * i));
        deallocate(p);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(live(Tag::kActivations), before);
  EXPECT_GE(tag_stats(Tag::kActivations).allocs, 800u);
}

TEST(ArenaMetrics, PublishMirrorsIntoRegistry) {
  ModeGuard guard(Mode::kTrack);
  void* p = nullptr;
  {
    ArenaScope scope(Tag::kWeights);
    p = allocate(1 << 20);
  }
  publish_metrics();
  const auto snap = obs::metrics::snapshot();
  EXPECT_GE(snap.value_of("mem.weights.live_bytes"),
            static_cast<double>(1 << 20));
  EXPECT_GE(snap.value_of("mem.weights.hwm_bytes"),
            snap.value_of("mem.weights.live_bytes"));
  EXPECT_GE(snap.value_of("mem.total.live_bytes"),
            snap.value_of("mem.weights.live_bytes"));
  deallocate(p);
}

TEST(ArenaProcess, ProcStatusReadsWhenPresent) {
  const ProcessMemory pm = process_memory();
  // On Linux both numbers exist and RSS <= HWM; elsewhere both are zero.
  if (pm.vm_hwm_bytes > 0) {
    EXPECT_GT(pm.rss_bytes, 0u);
    EXPECT_LE(pm.rss_bytes, pm.vm_hwm_bytes + (64u << 20));
  }
}

}  // namespace
}  // namespace axonn::mem
