#include "axonn/base/error.hpp"

#include <gtest/gtest.h>

#include <string>

namespace axonn {
namespace {

TEST(ErrorTest, CheckPassesOnTrue) {
  EXPECT_NO_THROW(AXONN_CHECK(1 + 1 == 2));
}

TEST(ErrorTest, CheckThrowsOnFalse) {
  EXPECT_THROW(AXONN_CHECK(1 + 1 == 3), Error);
}

TEST(ErrorTest, CheckMessageContainsExpressionAndLocation) {
  try {
    AXONN_CHECK(false);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("false"), std::string::npos);
    EXPECT_NE(what.find("test_error.cpp"), std::string::npos);
  }
}

TEST(ErrorTest, CheckMsgIncludesUserMessage) {
  try {
    AXONN_CHECK_MSG(false, "grid mismatch: 3 != 4");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("grid mismatch: 3 != 4"),
              std::string::npos);
  }
}

TEST(ErrorTest, ErrorIsARuntimeError) {
  EXPECT_THROW(AXONN_CHECK(false), std::runtime_error);
}

TEST(ErrorTest, CheckEvaluatesExpressionOnce) {
  int calls = 0;
  auto bump = [&] {
    ++calls;
    return true;
  };
  AXONN_CHECK(bump());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace axonn
