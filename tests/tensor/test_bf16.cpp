#include "axonn/tensor/bf16.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace axonn {
namespace {

TEST(Bf16Test, ExactValuesRoundTrip) {
  // Values with <= 8 significant mantissa bits are exactly representable.
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 96.0f, -0.25f, 1.5f}) {
    EXPECT_EQ(Bf16(v).to_float(), v) << v;
  }
}

TEST(Bf16Test, RoundToNearestEven) {
  // 1 + 2^-8 lies exactly between bf16 neighbours 1.0 and 1 + 2^-7;
  // ties round to even mantissa, which is 1.0.
  const float tie = 1.0f + std::ldexp(1.0f, -8);
  EXPECT_EQ(bf16_round(tie), 1.0f);
  // Just above the tie rounds up.
  const float above = 1.0f + std::ldexp(1.0f, -8) + std::ldexp(1.0f, -12);
  EXPECT_EQ(bf16_round(above), 1.0f + std::ldexp(1.0f, -7));
}

TEST(Bf16Test, RelativeErrorBounded) {
  // Max relative rounding error for bf16 is 2^-8.
  for (float v : {3.14159f, 2.71828f, 1e10f, 1e-10f, 123456.789f}) {
    const float r = bf16_round(v);
    EXPECT_LE(std::fabs(r - v) / std::fabs(v), std::ldexp(1.0f, -8)) << v;
  }
}

TEST(Bf16Test, PreservesSign) {
  EXPECT_LT(bf16_round(-3.7f), 0.0f);
  EXPECT_GT(bf16_round(3.7f), 0.0f);
  EXPECT_TRUE(std::signbit(Bf16(-0.0f).to_float()));
}

TEST(Bf16Test, InfinityPassesThrough) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(Bf16(inf).to_float(), inf);
  EXPECT_EQ(Bf16(-inf).to_float(), -inf);
}

TEST(Bf16Test, NanStaysNan) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isnan(Bf16(nan).to_float()));
}

TEST(Bf16Test, SameDynamicRangeAsFp32) {
  // The paper picks bf16 over fp16 because it keeps the fp32 exponent range.
  const float big = 1e38f;
  EXPECT_FALSE(std::isinf(bf16_round(big)));
  const float tiny = 1e-38f;
  EXPECT_GT(bf16_round(tiny), 0.0f);
}

TEST(Bf16Test, BitsAccessors) {
  const Bf16 one(1.0f);
  EXPECT_EQ(one.bits(), 0x3F80);
  EXPECT_EQ(Bf16::from_bits(0x3F80).to_float(), 1.0f);
  EXPECT_EQ(Bf16::from_bits(one.bits()), one);
}

TEST(Bf16Test, LargeMagnitudeRoundingCarriesIntoExponent) {
  // Rounding up the mantissa of 255.75 (0x437F C000...) carries into the
  // exponent: nearest bf16 is 256.
  EXPECT_EQ(bf16_round(255.75f), 256.0f);
}

}  // namespace
}  // namespace axonn
