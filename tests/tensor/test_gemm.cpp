#include "axonn/tensor/gemm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "axonn/base/rng.hpp"
#include "axonn/tensor/bf16.hpp"

namespace axonn {
namespace {

// Straightforward reference: C = alpha * op(A) op(B) + beta * C.
Matrix reference_gemm(GemmMode mode, float alpha, const Matrix& a,
                      const Matrix& b, float beta, const Matrix& c_in) {
  const Matrix opa =
      (mode == GemmMode::kTN || mode == GemmMode::kTT) ? a.transposed() : a;
  const Matrix opb =
      (mode == GemmMode::kNT || mode == GemmMode::kTT) ? b.transposed() : b;
  Matrix c = c_in;
  for (std::size_t i = 0; i < opa.rows(); ++i) {
    for (std::size_t j = 0; j < opb.cols(); ++j) {
      float acc = 0.0f;
      for (std::size_t l = 0; l < opa.cols(); ++l) {
        acc += opa(i, l) * opb(l, j);
      }
      c(i, j) = alpha * acc + beta * c(i, j);
    }
  }
  return c;
}

TEST(GemmTest, IdentityIsNeutral) {
  Rng rng(1);
  const Matrix a = Matrix::randn(4, 4, rng);
  const Matrix c = gemm(GemmMode::kNN, a, Matrix::identity(4));
  EXPECT_LT(Matrix::max_abs_diff(c, a), 1e-6f);
}

TEST(GemmTest, KnownSmallProduct) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  float v = 1.0f;
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = v++;
  v = 1.0f;
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = v++;
  const Matrix c = gemm(GemmMode::kNN, a, b);
  // [[1,2,3],[4,5,6]] x [[1,2],[3,4],[5,6]] = [[22,28],[49,64]]
  EXPECT_EQ(c(0, 0), 22.0f);
  EXPECT_EQ(c(0, 1), 28.0f);
  EXPECT_EQ(c(1, 0), 49.0f);
  EXPECT_EQ(c(1, 1), 64.0f);
}

TEST(GemmTest, ShapeInference) {
  const Matrix a(5, 3);
  const Matrix b(3, 7);
  const GemmShape s = gemm_shape(GemmMode::kNN, a, b);
  EXPECT_EQ(s.m, 5u);
  EXPECT_EQ(s.n, 7u);
  EXPECT_EQ(s.k, 3u);
  EXPECT_EQ(gemm_flops(s), 2ull * 5 * 7 * 3);
}

TEST(GemmTest, ShapeMismatchThrows) {
  const Matrix a(5, 3);
  const Matrix b(4, 7);
  EXPECT_THROW(gemm_shape(GemmMode::kNN, a, b), Error);
  // But A^T (3x5) x B (4x7) is also invalid; A (5x3) x B^T (7x4) invalid...
  EXPECT_THROW(gemm_shape(GemmMode::kNT, a, b), Error);
  // ...while A^T with a 5-row B works.
  const Matrix b2(5, 2);
  EXPECT_NO_THROW(gemm_shape(GemmMode::kTN, a, b2));
}

TEST(GemmTest, ModeNames) {
  EXPECT_STREQ(to_string(GemmMode::kNN), "NN");
  EXPECT_STREQ(to_string(GemmMode::kNT), "NT");
  EXPECT_STREQ(to_string(GemmMode::kTN), "TN");
  EXPECT_STREQ(to_string(GemmMode::kTT), "TT");
}

// Property sweep: all four modes, several shapes, alpha/beta combos, against
// the reference implementation.
struct GemmCase {
  GemmMode mode;
  std::size_t m, k, n;
  float alpha, beta;
};

class GemmProperty : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmProperty, MatchesReference) {
  const GemmCase& p = GetParam();
  Rng rng(77);
  const bool ta = (p.mode == GemmMode::kTN || p.mode == GemmMode::kTT);
  const bool tb = (p.mode == GemmMode::kNT || p.mode == GemmMode::kTT);
  const Matrix a = ta ? Matrix::randn(p.k, p.m, rng) : Matrix::randn(p.m, p.k, rng);
  const Matrix b = tb ? Matrix::randn(p.n, p.k, rng) : Matrix::randn(p.k, p.n, rng);
  Matrix c = Matrix::randn(p.m, p.n, rng);
  const Matrix expected = reference_gemm(p.mode, p.alpha, a, b, p.beta, c);
  gemm(p.mode, p.alpha, a, b, p.beta, c);
  EXPECT_LT(Matrix::max_abs_diff(c, expected), 1e-4f)
      << to_string(p.mode) << " m=" << p.m << " k=" << p.k << " n=" << p.n;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GemmProperty,
    ::testing::Values(
        GemmCase{GemmMode::kNN, 4, 5, 6, 1.0f, 0.0f},
        GemmCase{GemmMode::kNT, 4, 5, 6, 1.0f, 0.0f},
        GemmCase{GemmMode::kTN, 4, 5, 6, 1.0f, 0.0f},
        GemmCase{GemmMode::kTT, 4, 5, 6, 1.0f, 0.0f},
        GemmCase{GemmMode::kNN, 1, 1, 1, 2.0f, 0.5f},
        GemmCase{GemmMode::kNT, 7, 3, 2, -1.0f, 1.0f},
        GemmCase{GemmMode::kTN, 2, 9, 8, 0.5f, 2.0f},
        GemmCase{GemmMode::kTT, 6, 2, 5, 1.5f, -0.5f},
        GemmCase{GemmMode::kNN, 16, 16, 16, 1.0f, 0.0f},
        GemmCase{GemmMode::kTN, 13, 11, 17, 1.0f, 1.0f}));

TEST(GemmTest, TransposeModesAgreeWithExplicitTranspose) {
  Rng rng(3);
  const Matrix a = Matrix::randn(6, 4, rng);
  const Matrix b = Matrix::randn(6, 5, rng);
  // A^T x B  ==  transpose(A) x B computed in NN mode.
  const Matrix tn = gemm(GemmMode::kTN, a, b);
  const Matrix nn = gemm(GemmMode::kNN, a.transposed(), b);
  EXPECT_LT(Matrix::max_abs_diff(tn, nn), 1e-5f);
}

TEST(GemmBf16Test, RoundsOperandsButAccumulatesFp32) {
  // A value that bf16 cannot represent must influence the result only via
  // its rounded form.
  Matrix a(1, 1);
  a(0, 0) = 1.0f + std::ldexp(1.0f, -9);  // rounds to exactly 1.0
  Matrix b = Matrix::identity(1);
  const Matrix c = gemm_bf16(GemmMode::kNN, a, b);
  EXPECT_EQ(c(0, 0), 1.0f);
}

TEST(GemmBf16Test, CloseToFp32ForWellScaledData) {
  Rng rng(21);
  const Matrix a = Matrix::randn(8, 8, rng);
  const Matrix b = Matrix::randn(8, 8, rng);
  const Matrix exact = gemm(GemmMode::kNN, a, b);
  const Matrix approx = gemm_bf16(GemmMode::kNN, a, b);
  // Relative error per element bounded by ~k * 2^-8 of operand magnitudes.
  EXPECT_LT(Matrix::max_abs_diff(exact, approx), 0.35f);
  EXPECT_GT(Matrix::max_abs_diff(exact, approx), 0.0f);  // it *is* lossy
}

TEST(GemmTest, BetaZeroOverwritesStaleValues) {
  Matrix c = Matrix::full(2, 2, 1e30f);  // garbage that must not survive
  const Matrix a = Matrix::identity(2);
  gemm(GemmMode::kNN, 1.0f, a, a, 0.0f, c);
  EXPECT_EQ(c(0, 0), 1.0f);
  EXPECT_EQ(c(0, 1), 0.0f);
}

TEST(GemmTest, ZeroTimesNonFinitePropagatesNaN) {
  // Regression: the kernel used to skip rows where the A element was exactly
  // zero as a throughput shortcut — but IEEE 754 says 0 * NaN and 0 * inf
  // are NaN. A poisoned activation multiplied by a zero weight must surface
  // as NaN in the loss, not silently vanish.
  Matrix a(1, 2);
  a(0, 0) = 0.0f;
  a(0, 1) = 1.0f;
  Matrix b(2, 1);
  b(0, 0) = std::numeric_limits<float>::quiet_NaN();
  b(1, 0) = 2.0f;
  for (GemmBackend backend : {GemmBackend::kReference, GemmBackend::kTiled}) {
    Matrix c(1, 1);
    gemm(backend, GemmMode::kNN, 1.0f, a, b, 0.0f, c);
    EXPECT_TRUE(std::isnan(c(0, 0))) << to_string(backend);
  }

  b(0, 0) = std::numeric_limits<float>::infinity();  // 0 * inf is also NaN
  for (GemmBackend backend : {GemmBackend::kReference, GemmBackend::kTiled}) {
    Matrix c(1, 1);
    gemm(backend, GemmMode::kNN, 1.0f, a, b, 0.0f, c);
    EXPECT_TRUE(std::isnan(c(0, 0))) << to_string(backend);
  }

  // alpha == 0 remains the BLAS fast path: C = beta*C, operands unread.
  Matrix c = Matrix::full(1, 1, 5.0f);
  gemm(GemmMode::kNN, 0.0f, a, b, 1.0f, c);
  EXPECT_EQ(c(0, 0), 5.0f);
}

}  // namespace
}  // namespace axonn
