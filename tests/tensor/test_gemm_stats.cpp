// Per-call GEMM dispatch statistics: every public entry point — plain,
// explicit-backend, tiled and prepacked — records (backend, mode, shape,
// flops, bf16) exactly once per call on the calling thread, with nested
// delegation (registry thunks, gemm_tiled -> gemm_tiled_packed) counted at
// the outermost frame only.

#include <gtest/gtest.h>

#include "axonn/tensor/gemm.hpp"
#include "axonn/tensor/gemm_tiled.hpp"

namespace axonn {
namespace {

Matrix filled(std::size_t rows, std::size_t cols, float scale) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      m(i, j) = scale * (0.25f + static_cast<float>((i * 31 + j * 7) % 13) -
                         6.0f * static_cast<float>((i + j) % 2));
    }
  }
  return m;
}

TEST(GemmStatsTest, PlainGemmRecordsReferenceDispatch) {
  const Matrix a = filled(5, 7, 0.01f);
  const Matrix b = filled(7, 3, 0.02f);
  reset_gemm_dispatch_stats();
  const Matrix c = gemm(GemmMode::kNN, a, b);
  EXPECT_EQ(c.rows(), 5u);
  EXPECT_EQ(gemm_dispatch_count(), 1u);
  const GemmStats& stats = last_gemm_stats();
  EXPECT_EQ(stats.backend, GemmBackend::kReference);
  EXPECT_EQ(stats.mode, GemmMode::kNN);
  EXPECT_EQ(stats.shape.m, 5u);
  EXPECT_EQ(stats.shape.n, 3u);
  EXPECT_EQ(stats.shape.k, 7u);
  EXPECT_EQ(stats.flops, 2ull * 5 * 3 * 7);
  EXPECT_FALSE(stats.bf16);
  EXPECT_EQ(gemm_dispatch_flops(), stats.flops);
}

TEST(GemmStatsTest, Bf16AndTransposeModesAreRecorded) {
  const Matrix a = filled(4, 6, 0.01f);  // op(A) = A^T under kTN
  const Matrix b = filled(4, 5, 0.02f);
  reset_gemm_dispatch_stats();
  Matrix c(6, 5);
  gemm_bf16(GemmMode::kTN, 1.0f, a, b, 0.0f, c);
  const GemmStats& stats = last_gemm_stats();
  EXPECT_EQ(stats.mode, GemmMode::kTN);
  EXPECT_EQ(stats.shape.m, 6u);
  EXPECT_EQ(stats.shape.n, 5u);
  EXPECT_EQ(stats.shape.k, 4u);
  EXPECT_TRUE(stats.bf16);
}

TEST(GemmStatsTest, TiledDispatchCountsOnceAtTheOutermostFrame) {
  // gemm_tiled packs op(B) and delegates to gemm_tiled_packed — one logical
  // GEMM, so one recorded dispatch, attributed to the tiled backend with the
  // caller's mode.
  const Matrix a = filled(9, 17, 0.01f);
  const Matrix b = filled(4, 17, 0.02f);  // op(B) = B^T under kNT
  reset_gemm_dispatch_stats();
  Matrix c(9, 4);
  gemm_tiled(GemmMode::kNT, 1.0f, a, b, 0.0f, c, /*round_bf16=*/false);
  EXPECT_EQ(gemm_dispatch_count(), 1u);
  const GemmStats& stats = last_gemm_stats();
  EXPECT_EQ(stats.backend, GemmBackend::kTiled);
  EXPECT_EQ(stats.mode, GemmMode::kNT);
  EXPECT_EQ(stats.shape.k, 17u);
  EXPECT_EQ(stats.flops, 2ull * 9 * 4 * 17);
}

TEST(GemmStatsTest, PrepackedCallRecordsResolvedMode) {
  // op(B)'s transposition is resolved at pack time, so a prepacked dispatch
  // reports only op(A)'s side: kTN here, with shape from the packed panels.
  const Matrix a = filled(12, 8, 0.01f);  // op(A) = A^T: m=8, k=12
  const Matrix b = filled(12, 6, 0.02f);
  const PackedB packed = pack_b(b, /*trans_b=*/false, /*round_bf16=*/false);
  reset_gemm_dispatch_stats();
  Matrix c(8, 6);
  gemm_tiled_packed(/*trans_a=*/true, 1.0f, a, packed, 0.0f, c,
                    /*round_bf16=*/false);
  EXPECT_EQ(gemm_dispatch_count(), 1u);
  const GemmStats& stats = last_gemm_stats();
  EXPECT_EQ(stats.backend, GemmBackend::kTiled);
  EXPECT_EQ(stats.mode, GemmMode::kTN);
  EXPECT_EQ(stats.shape.m, 8u);
  EXPECT_EQ(stats.shape.n, 6u);
  EXPECT_EQ(stats.shape.k, 12u);
}

TEST(GemmStatsTest, RegistryThunksCountOncePerCall) {
  const Matrix a = filled(3, 5, 0.01f);
  const Matrix b = filled(5, 4, 0.02f);
  Matrix c(3, 4);
  for (const GemmBackendInfo& info : gemm_backends()) {
    reset_gemm_dispatch_stats();
    info.run_fp32(GemmMode::kNN, 1.0f, a, b, 0.0f, c);
    EXPECT_EQ(gemm_dispatch_count(), 1u) << info.name;
    EXPECT_EQ(last_gemm_stats().backend, info.id) << info.name;
  }
}

TEST(GemmStatsTest, FlopsAccumulateAndResetClears) {
  const Matrix a = filled(5, 7, 0.01f);
  const Matrix b = filled(7, 3, 0.02f);
  reset_gemm_dispatch_stats();
  (void)gemm(GemmMode::kNN, a, b);
  (void)gemm(GemmMode::kNN, a, b);
  EXPECT_EQ(gemm_dispatch_count(), 2u);
  EXPECT_EQ(gemm_dispatch_flops(), 2u * (2ull * 5 * 3 * 7));
  reset_gemm_dispatch_stats();
  EXPECT_EQ(gemm_dispatch_count(), 0u);
  EXPECT_EQ(gemm_dispatch_flops(), 0u);
}

}  // namespace
}  // namespace axonn
