#include "axonn/tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "axonn/base/rng.hpp"

namespace axonn {
namespace {

// Central finite difference of a scalar function of one matrix entry.
template <typename F>
float numerical_grad(F&& f, Matrix& x, std::size_t r, std::size_t c,
                     float eps = 1e-3f) {
  const float orig = x(r, c);
  x(r, c) = orig + eps;
  const float fp = f();
  x(r, c) = orig - eps;
  const float fm = f();
  x(r, c) = orig;
  return (fp - fm) / (2.0f * eps);
}

TEST(GeluTest, KnownValues) {
  EXPECT_NEAR(gelu(0.0f), 0.0f, 1e-7f);
  EXPECT_NEAR(gelu(100.0f), 100.0f, 1e-4f);   // saturates to identity
  EXPECT_NEAR(gelu(-100.0f), 0.0f, 1e-4f);    // saturates to zero
  EXPECT_NEAR(gelu(1.0f), 0.8412f, 1e-3f);    // published value
}

TEST(GeluTest, GradMatchesFiniteDifference) {
  for (float x : {-3.0f, -1.0f, -0.1f, 0.0f, 0.5f, 2.0f, 4.0f}) {
    const float eps = 1e-3f;
    const float numeric = (gelu(x + eps) - gelu(x - eps)) / (2 * eps);
    EXPECT_NEAR(gelu_grad(x), numeric, 1e-3f) << x;
  }
}

TEST(GeluTest, MatrixFormMatchesScalar) {
  Rng rng(2);
  const Matrix x = Matrix::randn(3, 4, rng);
  const Matrix y = gelu(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(y.data()[i], gelu(x.data()[i]));
  }
}

TEST(SoftmaxTest, RowsSumToOne) {
  Rng rng(4);
  const Matrix logits = Matrix::randn(5, 9, rng, 0.0f, 3.0f);
  const Matrix p = softmax_rows(logits);
  for (std::size_t r = 0; r < p.rows(); ++r) {
    float sum = 0.0f;
    for (std::size_t c = 0; c < p.cols(); ++c) {
      EXPECT_GT(p(r, c), 0.0f);
      sum += p(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(SoftmaxTest, StableForHugeLogits) {
  Matrix logits(1, 3);
  logits(0, 0) = 1e4f;
  logits(0, 1) = 1e4f - 1.0f;
  logits(0, 2) = -1e4f;
  const Matrix p = softmax_rows(logits);
  EXPECT_FALSE(std::isnan(p(0, 0)));
  EXPECT_GT(p(0, 0), p(0, 1));
  EXPECT_NEAR(p(0, 2), 0.0f, 1e-6f);
}

TEST(SoftmaxTest, BackwardMatchesFiniteDifference) {
  Rng rng(8);
  Matrix x = Matrix::randn(2, 4, rng);
  // Scalar objective: sum of softmax output weighted by fixed coefficients.
  Matrix w = Matrix::randn(2, 4, rng);
  auto objective = [&] {
    const Matrix y = softmax_rows(x);
    float total = 0.0f;
    for (std::size_t i = 0; i < y.size(); ++i) {
      total += y.data()[i] * w.data()[i];
    }
    return total;
  };
  const Matrix y = softmax_rows(x);
  const Matrix dx = softmax_rows_backward(w, y);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_NEAR(dx(r, c), numerical_grad(objective, x, r, c), 2e-3f);
    }
  }
}

TEST(LayerNormTest, OutputIsNormalizedWithUnitGamma) {
  Rng rng(6);
  const Matrix x = Matrix::randn(4, 16, rng, 5.0f, 3.0f);
  std::vector<float> gamma(16, 1.0f);
  std::vector<float> beta(16, 0.0f);
  LayerNormCache cache;
  const Matrix y = layernorm(x, gamma, beta, cache);
  for (std::size_t r = 0; r < y.rows(); ++r) {
    double mean = 0.0;
    double var = 0.0;
    for (std::size_t c = 0; c < y.cols(); ++c) mean += y(r, c);
    mean /= 16.0;
    for (std::size_t c = 0; c < y.cols(); ++c) {
      var += (y(r, c) - mean) * (y(r, c) - mean);
    }
    var /= 16.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(LayerNormTest, GammaBetaApplied) {
  const Matrix x = Matrix::full(1, 4, 2.0f);  // zero variance rows
  std::vector<float> gamma{1.0f, 2.0f, 3.0f, 4.0f};
  std::vector<float> beta{0.5f, 0.5f, 0.5f, 0.5f};
  LayerNormCache cache;
  const Matrix y = layernorm(x, gamma, beta, cache);
  // normalized value is 0 everywhere, so output == beta.
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(y(0, c), 0.5f, 1e-5f);
  }
}

TEST(LayerNormTest, BackwardMatchesFiniteDifference) {
  Rng rng(10);
  Matrix x = Matrix::randn(2, 6, rng);
  std::vector<float> gamma{1.1f, 0.9f, 1.3f, 0.7f, 1.0f, 1.2f};
  std::vector<float> beta(6, 0.1f);
  Matrix w = Matrix::randn(2, 6, rng);
  auto objective = [&] {
    LayerNormCache cache;
    const Matrix y = layernorm(x, gamma, beta, cache);
    float total = 0.0f;
    for (std::size_t i = 0; i < y.size(); ++i) {
      total += y.data()[i] * w.data()[i];
    }
    return total;
  };
  LayerNormCache cache;
  layernorm(x, gamma, beta, cache);
  std::vector<float> dgamma, dbeta;
  const Matrix dx = layernorm_backward(w, cache, gamma, dgamma, dbeta);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 6; ++c) {
      EXPECT_NEAR(dx(r, c), numerical_grad(objective, x, r, c), 5e-3f);
    }
  }
}

TEST(CrossEntropyTest, PerfectPredictionNearZeroLoss) {
  Matrix logits(2, 3);
  logits(0, 0) = 50.0f;
  logits(1, 2) = 50.0f;
  Matrix dlogits;
  const float loss =
      cross_entropy(logits, {0, 2}, /*mask=*/{}, dlogits);
  EXPECT_NEAR(loss, 0.0f, 1e-4f);
}

TEST(CrossEntropyTest, UniformLogitsGiveLogV) {
  const std::size_t vocab = 8;
  Matrix logits(1, vocab);  // all zeros -> uniform
  Matrix dlogits;
  const float loss = cross_entropy(logits, {3}, {}, dlogits);
  EXPECT_NEAR(loss, std::log(static_cast<float>(vocab)), 1e-5f);
}

TEST(CrossEntropyTest, GradientMatchesFiniteDifference) {
  Rng rng(12);
  Matrix logits = Matrix::randn(3, 5, rng);
  const std::vector<std::int32_t> targets{1, 4, 0};
  auto objective = [&] { return cross_entropy_loss(logits, targets, {}); };
  Matrix dlogits;
  cross_entropy(logits, targets, {}, dlogits);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      EXPECT_NEAR(dlogits(r, c), numerical_grad(objective, logits, r, c), 2e-3f);
    }
  }
}

TEST(CrossEntropyTest, MaskedRowsContributeNothing) {
  Rng rng(14);
  Matrix logits = Matrix::randn(4, 6, rng);
  const std::vector<std::int32_t> targets{0, 1, 2, 3};
  // Mask out rows 1 and 3 (the Goldfish-loss mechanism).
  const std::vector<std::uint8_t> mask{1, 0, 1, 0};
  Matrix dlogits;
  const float masked_loss = cross_entropy(logits, targets, mask, dlogits);
  for (std::size_t c = 0; c < 6; ++c) {
    EXPECT_EQ(dlogits(1, c), 0.0f);
    EXPECT_EQ(dlogits(3, c), 0.0f);
  }
  // Equivalent to computing the loss on only the unmasked rows.
  Matrix two_rows(2, 6);
  two_rows.set_block(Range{0, 1}, Range{0, 6}, logits.block(Range{0, 1}, Range{0, 6}));
  two_rows.set_block(Range{1, 2}, Range{0, 6}, logits.block(Range{2, 3}, Range{0, 6}));
  const float direct = cross_entropy_loss(two_rows, {0, 2}, {});
  EXPECT_NEAR(masked_loss, direct, 1e-5f);
}

TEST(CrossEntropyTest, AllMaskedIsZeroLossZeroGrad) {
  Matrix logits = Matrix::full(2, 3, 1.0f);
  Matrix dlogits;
  const float loss =
      cross_entropy(logits, {0, 1}, {0, 0}, dlogits);
  EXPECT_EQ(loss, 0.0f);
  EXPECT_EQ(dlogits.max_abs(), 0.0f);
}

}  // namespace
}  // namespace axonn
