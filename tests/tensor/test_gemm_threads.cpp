// The intra-rank GEMM worker pool and runtime ISA dispatch (DESIGN.md §13).
//
// The load-bearing property is bitwise thread-count invariance: the tiled
// backend's task grid is a pure function of the problem shape, each task owns
// a disjoint C rectangle, and per element the += order over k-slabs never
// changes — so any lane budget must reproduce the serial result exactly, per
// dispatched ISA tier, for every mode x backend x precision. The sweeps here
// pin that, plus the WorkerTeam contract and the dispatch/override plumbing.
// (The sweep drives the budget through set_gemm_threads()/GemmThreadScope —
// the same resolution path AXONN_GEMM_THREADS feeds, which is process-cached
// and so not flippable per-case in one test binary.)

#include "axonn/tensor/gemm_dispatch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "axonn/base/rng.hpp"
#include "axonn/base/worker_pool.hpp"
#include "axonn/tensor/gemm.hpp"
#include "axonn/tensor/gemm_tiled.hpp"

namespace axonn {
namespace {

// ---------------------------------------------------------------------------
// WorkerTeam
// ---------------------------------------------------------------------------

TEST(WorkerTeamTest, SingleLaneRunsInlineWithoutSpawning) {
  WorkerTeam team;
  std::thread::id ran_on;
  team.run(1, [&](int lane) {
    EXPECT_EQ(lane, 0);
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, std::this_thread::get_id());
  EXPECT_EQ(team.spawned(), 0);
}

TEST(WorkerTeamTest, EveryLaneRunsExactlyOncePerJob) {
  WorkerTeam team;
  for (int lanes : {2, 4, 3, 7}) {
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(lanes));
    for (auto& h : hits) h.store(0);
    team.run(lanes, [&](int lane) {
      ASSERT_GE(lane, 0);
      ASSERT_LT(lane, lanes);
      hits[static_cast<std::size_t>(lane)].fetch_add(1);
    });
    for (int lane = 0; lane < lanes; ++lane) {
      EXPECT_EQ(hits[static_cast<std::size_t>(lane)].load(), 1)
          << "lanes=" << lanes << " lane=" << lane;
    }
  }
  // Helpers are spawned to the high-water mark and reused, never duplicated.
  EXPECT_EQ(team.spawned(), 6);
}

TEST(WorkerTeamTest, HelperExceptionPropagatesToCaller) {
  WorkerTeam team;
  EXPECT_THROW(
      team.run(4,
               [&](int lane) {
                 if (lane == 2) throw std::runtime_error("lane 2 failed");
               }),
      std::runtime_error);
  // The team survives a failed job.
  std::atomic<int> ok{0};
  team.run(4, [&](int) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 4);
}

TEST(WorkerTeamTest, ThisThreadReturnsAStableInstance) {
  WorkerTeam* first = &WorkerTeam::this_thread();
  EXPECT_EQ(first, &WorkerTeam::this_thread());
  WorkerTeam* other = nullptr;
  std::thread([&] { other = &WorkerTeam::this_thread(); }).join();
  EXPECT_NE(first, other);
}

// ---------------------------------------------------------------------------
// ISA dispatch
// ---------------------------------------------------------------------------

TEST(GemmIsaTest, ToStringCoversEveryTier) {
  EXPECT_STREQ(to_string(GemmIsa::kPortable), "portable");
  EXPECT_STREQ(to_string(GemmIsa::kAvx2), "avx2");
  EXPECT_STREQ(to_string(GemmIsa::kAvx512), "avx512");
}

TEST(GemmIsaTest, ActiveTierNeverExceedsDetected) {
  EXPECT_LE(static_cast<int>(active_gemm_isa()),
            static_cast<int>(detected_gemm_isa()));
}

TEST(GemmIsaTest, ForceClampsToDetectedAndResetRestores) {
  const GemmIsa ambient = active_gemm_isa();
  force_gemm_isa(GemmIsa::kAvx512);
  EXPECT_EQ(active_gemm_isa(),
            std::min(GemmIsa::kAvx512, detected_gemm_isa()));
  force_gemm_isa(GemmIsa::kPortable);
  EXPECT_EQ(active_gemm_isa(), GemmIsa::kPortable);
  // The portable tier never claims native bf16 rounding.
  EXPECT_FALSE(gemm_native_bf16());
  reset_gemm_isa();
  EXPECT_EQ(active_gemm_isa(), ambient);
}

TEST(GemmIsaTest, EveryCompiledTierMatchesPortableWithinTolerance) {
  // The portable tier is the correctness oracle: each wider tier computes
  // the same packed panels with the same per-element accumulation order, so
  // only FMA-contraction differences separate them.
  Rng rng(2024);
  const Matrix a = Matrix::randn(97, 131, rng);
  const Matrix b = Matrix::randn(131, 75, rng);
  force_gemm_isa(GemmIsa::kPortable);
  Matrix c_oracle(97, 75);
  gemm_tiled(GemmMode::kNN, 1.0f, a, b, 0.0f, c_oracle, false);
  for (GemmIsa tier : {GemmIsa::kAvx2, GemmIsa::kAvx512}) {
    if (static_cast<int>(tier) > static_cast<int>(detected_gemm_isa())) {
      continue;
    }
    force_gemm_isa(tier);
    ASSERT_EQ(active_gemm_isa(), tier);
    Matrix c(97, 75);
    gemm_tiled(GemmMode::kNN, 1.0f, a, b, 0.0f, c, false);
    EXPECT_LE(Matrix::max_abs_diff(c_oracle, c), 1e-4f) << to_string(tier);
  }
  reset_gemm_isa();
}

// ---------------------------------------------------------------------------
// Thread budget plumbing
// ---------------------------------------------------------------------------

TEST(GemmThreadsTest, ScopeOverridesGlobalAndRestoresOnExit) {
  set_gemm_threads(0);
  const int ambient = gemm_threads();
  set_gemm_threads(3);
  EXPECT_EQ(gemm_threads(), 3);
  {
    GemmThreadScope scope(5);
    EXPECT_EQ(gemm_threads(), 5);
    {
      GemmThreadScope inner(2);
      EXPECT_EQ(gemm_threads(), 2);
      GemmThreadScope noop(0);  // <= 0: keep the ambient budget
      EXPECT_EQ(gemm_threads(), 2);
    }
    EXPECT_EQ(gemm_threads(), 5);
  }
  EXPECT_EQ(gemm_threads(), 3);
  set_gemm_threads(0);
  EXPECT_EQ(gemm_threads(), ambient);
}

TEST(GemmThreadsTest, ScopeIsThreadLocal) {
  set_gemm_threads(0);
  GemmThreadScope scope(6);
  int seen_on_other_thread = -1;
  std::thread([&] { seen_on_other_thread = gemm_threads(); }).join();
  EXPECT_EQ(gemm_threads(), 6);
  EXPECT_NE(seen_on_other_thread, 6);
}

TEST(GemmThreadsTest, AutoBudgetReservesACommCore) {
  // auto = max(1, (hw - 1) / ranks); exact value is host-dependent, but the
  // invariants are not.
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  for (int ranks : {1, 2, 4, 64}) {
    const int budget = auto_gemm_threads(ranks);
    EXPECT_GE(budget, 1);
    if (hw > 1) EXPECT_LE(budget * ranks, hw - 1 + ranks - 1);
  }
  EXPECT_EQ(auto_gemm_threads(1 << 20), 1);
}

TEST(GemmThreadsTest, StatsRecordTierAndBudget) {
  Rng rng(7);
  const Matrix a = Matrix::randn(40, 24, rng);
  const Matrix b = Matrix::randn(24, 33, rng);
  Matrix c(40, 33);
  {
    GemmThreadScope scope(4);
    gemm(GemmBackend::kTiled, GemmMode::kNN, 1.0f, a, b, 0.0f, c);
  }
  EXPECT_EQ(last_gemm_stats().backend, GemmBackend::kTiled);
  EXPECT_EQ(last_gemm_stats().isa, active_gemm_isa());
  EXPECT_EQ(last_gemm_stats().threads, 4);
  // The reference backend has no lanes or tiers to report.
  gemm(GemmBackend::kReference, GemmMode::kNN, 1.0f, a, b, 0.0f, c);
  EXPECT_EQ(last_gemm_stats().isa, GemmIsa::kPortable);
  EXPECT_EQ(last_gemm_stats().threads, 1);
}

// ---------------------------------------------------------------------------
// Bitwise thread-count invariance
// ---------------------------------------------------------------------------

struct ShapeCase {
  std::size_t m, n, k;
};

// Multi-block shapes (kBlockM=96, kTileNR=16, kGroupNTiles=8 columns-of-
// tiles per task): the grid must span several row blocks AND several column
// groups so lanes genuinely interleave, plus edge overhangs in every
// dimension and a single-task degenerate case.
const ShapeCase kShapes[] = {
    {200, 300, 128},  // 3 row blocks x 3 column groups
    {97, 160, 300},   // k spans two slabs, ragged m
    {13, 40, 7},      // single task: all budgets collapse to one lane
    {192, 256, 64},   // exact tile multiples
};

const GemmMode kModes[] = {GemmMode::kNN, GemmMode::kNT, GemmMode::kTN,
                           GemmMode::kTT};

Matrix operand(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  return Matrix::randn(rows, cols, rng);
}

Matrix make_a(GemmMode mode, const ShapeCase& s, std::uint64_t seed) {
  return gemm_transposes_a(mode) ? operand(s.k, s.m, seed)
                                 : operand(s.m, s.k, seed);
}
Matrix make_b(GemmMode mode, const ShapeCase& s, std::uint64_t seed) {
  return gemm_transposes_b(mode) ? operand(s.n, s.k, seed)
                                 : operand(s.k, s.n, seed);
}

TEST(GemmThreadInvarianceTest, BitwiseIdenticalAcrossBudgetsForEveryTier) {
  std::uint64_t seed = 9000;
  for (GemmIsa tier : {GemmIsa::kPortable, GemmIsa::kAvx2, GemmIsa::kAvx512}) {
    if (static_cast<int>(tier) > static_cast<int>(detected_gemm_isa())) {
      continue;
    }
    force_gemm_isa(tier);
    for (const ShapeCase& s : kShapes) {
      for (GemmMode mode : kModes) {
        for (bool bf16 : {false, true}) {
          const Matrix a = make_a(mode, s, seed++);
          const Matrix b = make_b(mode, s, seed++);
          Matrix serial(s.m, s.n);
          {
            GemmThreadScope one(1);
            if (bf16) {
              gemm_bf16(GemmBackend::kTiled, mode, 1.0f, a, b, 0.0f, serial);
            } else {
              gemm(GemmBackend::kTiled, mode, 1.0f, a, b, 0.0f, serial);
            }
          }
          for (int threads : {2, 4, 7}) {
            GemmThreadScope scope(threads);
            Matrix c(s.m, s.n);
            if (bf16) {
              gemm_bf16(GemmBackend::kTiled, mode, 1.0f, a, b, 0.0f, c);
            } else {
              gemm(GemmBackend::kTiled, mode, 1.0f, a, b, 0.0f, c);
            }
            EXPECT_EQ(Matrix::max_abs_diff(serial, c), 0.0f)
                << to_string(tier) << " m=" << s.m << " n=" << s.n
                << " k=" << s.k << " " << to_string(mode) << " bf16=" << bf16
                << " threads=" << threads;
          }
        }
      }
    }
  }
  reset_gemm_isa();
}

TEST(GemmThreadInvarianceTest, ReferenceBackendIgnoresBudgetBitwise) {
  // The reference kernel never threads; the budget must be a strict no-op.
  const ShapeCase s{33, 47, 29};
  const Matrix a = make_a(GemmMode::kNN, s, 1);
  const Matrix b = make_b(GemmMode::kNN, s, 2);
  Matrix serial(s.m, s.n), budgeted(s.m, s.n);
  gemm(GemmBackend::kReference, GemmMode::kNN, 1.0f, a, b, 0.0f, serial);
  {
    GemmThreadScope scope(7);
    gemm(GemmBackend::kReference, GemmMode::kNN, 1.0f, a, b, 0.0f, budgeted);
  }
  EXPECT_EQ(Matrix::max_abs_diff(serial, budgeted), 0.0f);
}

TEST(GemmThreadInvarianceTest, PrepackedAndAlphaBetaStayBitwiseUnderThreads) {
  // The FC weight-cache path plus the beta != 0 accumulate path, threaded:
  // both must reproduce their serial results exactly.
  const ShapeCase s{200, 300, 128};
  const Matrix a = make_a(GemmMode::kNN, s, 41);
  const Matrix b = make_b(GemmMode::kNN, s, 42);
  const PackedB pack = pack_b(b, false, false);
  Matrix serial = operand(s.m, s.n, 43);
  Matrix threaded = serial;
  {
    GemmThreadScope one(1);
    gemm_tiled_packed(false, 0.5f, a, pack, 2.0f, serial, false);
  }
  {
    GemmThreadScope four(4);
    gemm_tiled_packed(false, 0.5f, a, pack, 2.0f, threaded, false);
  }
  EXPECT_EQ(Matrix::max_abs_diff(serial, threaded), 0.0f);
}

}  // namespace
}  // namespace axonn
