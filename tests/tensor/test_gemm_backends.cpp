// The GEMM backend layer: registry dispatch, and the tiled packed-panel
// backend against the reference kernel across a sweep of shapes (including
// non-tile-multiples and degenerate 1xN / Nx1 products), all four transpose
// modes, fp32 and bf16. The tiled backend accumulates each k-slab in
// registers before adding it to C, so it matches the reference within an
// accumulation-order tolerance rather than bitwise; the prepacked entry
// point, by contrast, must be bitwise identical to the pack-internally one.

#include "axonn/tensor/gemm.hpp"
#include "axonn/tensor/gemm_tiled.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "axonn/base/rng.hpp"

namespace axonn {
namespace {

struct ShapeCase {
  std::size_t m, n, k;
};

// Tile constants are MR=6, NR=16, MC=96, KC=256: the sweep covers exact
// multiples, off-by-one overhangs in every dimension, sub-tile shapes and
// row/column vectors.
const ShapeCase kShapes[] = {
    {1, 1, 1},      {1, 17, 5},   {5, 1, 9},     {6, 16, 8},
    {7, 17, 3},     {13, 40, 7},  {1, 64, 1},    {96, 16, 256},
    {97, 33, 300},  {200, 50, 3}, {31, 15, 257}, {12, 32, 96},
};

const GemmMode kModes[] = {GemmMode::kNN, GemmMode::kNT, GemmMode::kTN,
                           GemmMode::kTT};

Matrix operand(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  return Matrix::randn(rows, cols, rng);
}

// Operands for op(A) (m x k) and op(B) (k x n) under `mode`.
Matrix make_a(GemmMode mode, const ShapeCase& s, std::uint64_t seed) {
  return gemm_transposes_a(mode) ? operand(s.k, s.m, seed)
                                 : operand(s.m, s.k, seed);
}
Matrix make_b(GemmMode mode, const ShapeCase& s, std::uint64_t seed) {
  return gemm_transposes_b(mode) ? operand(s.n, s.k, seed)
                                 : operand(s.k, s.n, seed);
}

// Accumulation-order tolerance: each output element sums k products of
// N(0,1) draws; regrouping the sum perturbs it by O(k) ulps.
float tolerance(std::size_t k) { return 1e-5f * static_cast<float>(k + 8); }

TEST(GemmBackendTest, RegistryListsReferenceAndTiled) {
  const auto backends = gemm_backends();
  ASSERT_EQ(backends.size(), 2u);
  EXPECT_EQ(backends[0].id, GemmBackend::kReference);
  EXPECT_STREQ(backends[0].name, "reference");
  EXPECT_EQ(backends[1].id, GemmBackend::kTiled);
  EXPECT_STREQ(backends[1].name, "tiled");
  EXPECT_STREQ(to_string(GemmBackend::kReference), "reference");
  EXPECT_STREQ(to_string(GemmBackend::kTiled), "tiled");
  EXPECT_EQ(gemm_backend_info(GemmBackend::kTiled).id, GemmBackend::kTiled);
}

TEST(GemmBackendTest, ReferenceBackendDispatchIsBitIdenticalToPlainGemm) {
  // The registry's reference entry is the seed kernel, not a reimplementation:
  // dispatching through it must not change a single bit.
  const ShapeCase s{17, 23, 31};
  for (GemmMode mode : kModes) {
    const Matrix a = make_a(mode, s, 1);
    const Matrix b = make_b(mode, s, 2);
    Matrix c_plain(s.m, s.n), c_dispatch(s.m, s.n);
    gemm(mode, 1.0f, a, b, 0.0f, c_plain);
    gemm(GemmBackend::kReference, mode, 1.0f, a, b, 0.0f, c_dispatch);
    EXPECT_EQ(Matrix::max_abs_diff(c_plain, c_dispatch), 0.0f)
        << to_string(mode);
  }
}

TEST(GemmBackendTest, TiledMatchesReferenceAcrossShapesAndModesFp32) {
  std::uint64_t seed = 100;
  for (const ShapeCase& s : kShapes) {
    for (GemmMode mode : kModes) {
      const Matrix a = make_a(mode, s, seed++);
      const Matrix b = make_b(mode, s, seed++);
      Matrix c_ref(s.m, s.n), c_tiled(s.m, s.n);
      gemm(mode, 1.0f, a, b, 0.0f, c_ref);
      gemm(GemmBackend::kTiled, mode, 1.0f, a, b, 0.0f, c_tiled);
      EXPECT_LE(Matrix::max_abs_diff(c_ref, c_tiled), tolerance(s.k))
          << "m=" << s.m << " n=" << s.n << " k=" << s.k << " "
          << to_string(mode);
    }
  }
}

TEST(GemmBackendTest, TiledMatchesReferenceBf16) {
  // Both kernels consume identically bf16-rounded operands (the tiled
  // backend rounds at pack time), so the only difference is regrouped fp32
  // accumulation.
  std::uint64_t seed = 500;
  for (const ShapeCase& s : kShapes) {
    for (GemmMode mode : kModes) {
      const Matrix a = make_a(mode, s, seed++);
      const Matrix b = make_b(mode, s, seed++);
      Matrix c_ref(s.m, s.n), c_tiled(s.m, s.n);
      gemm_bf16(mode, 1.0f, a, b, 0.0f, c_ref);
      gemm_bf16(GemmBackend::kTiled, mode, 1.0f, a, b, 0.0f, c_tiled);
      EXPECT_LE(Matrix::max_abs_diff(c_ref, c_tiled),
                tolerance(s.k) + 1e-2f * static_cast<float>(s.k) / 64.0f)
          << "m=" << s.m << " n=" << s.n << " k=" << s.k << " "
          << to_string(mode);
    }
  }
}

TEST(GemmBackendTest, AlphaBetaSemantics) {
  const ShapeCase s{9, 21, 33};
  for (GemmMode mode : {GemmMode::kNN, GemmMode::kNT}) {
    const Matrix a = make_a(mode, s, 900);
    const Matrix b = make_b(mode, s, 901);
    Matrix c_ref = operand(s.m, s.n, 902);
    Matrix c_tiled = c_ref;
    gemm(mode, 0.5f, a, b, 2.0f, c_ref);
    gemm(GemmBackend::kTiled, mode, 0.5f, a, b, 2.0f, c_tiled);
    EXPECT_LE(Matrix::max_abs_diff(c_ref, c_tiled), tolerance(s.k));

    // alpha == 0: C = beta * C without reading the operands.
    Matrix c0_ref = operand(s.m, s.n, 903);
    Matrix c0_tiled = c0_ref;
    gemm(mode, 0.0f, a, b, 3.0f, c0_ref);
    gemm(GemmBackend::kTiled, mode, 0.0f, a, b, 3.0f, c0_tiled);
    EXPECT_EQ(Matrix::max_abs_diff(c0_ref, c0_tiled), 0.0f);
  }
}

TEST(GemmBackendTest, PrepackedPathIsBitIdenticalToDirectTiled) {
  // gemm_tiled packs op(B) and calls gemm_tiled_packed; supplying the same
  // pack externally (the FC layer's weight panel cache) must therefore be a
  // pure no-op numerically.
  std::uint64_t seed = 700;
  for (const ShapeCase& s : kShapes) {
    for (GemmMode mode : kModes) {
      for (bool bf16 : {false, true}) {
        const Matrix a = make_a(mode, s, seed++);
        const Matrix b = make_b(mode, s, seed++);
        Matrix c_direct(s.m, s.n), c_packed(s.m, s.n);
        gemm_tiled(mode, 1.0f, a, b, 0.0f, c_direct, bf16);
        const PackedB pack = pack_b(b, gemm_transposes_b(mode), bf16);
        EXPECT_EQ(pack.k(), s.k);
        EXPECT_EQ(pack.n(), s.n);
        EXPECT_EQ(pack.rounded_bf16(), bf16);
        gemm_tiled_packed(gemm_transposes_a(mode), 1.0f, a, pack, 0.0f,
                          c_packed, bf16);
        EXPECT_EQ(Matrix::max_abs_diff(c_direct, c_packed), 0.0f)
            << "m=" << s.m << " n=" << s.n << " k=" << s.k << " "
            << to_string(mode) << " bf16=" << bf16;
      }
    }
  }
}

TEST(GemmBackendTest, PackedBReportsGeometry) {
  const Matrix b = operand(300, 33, 42);
  const PackedB pack = pack_b(b, /*transpose=*/false, /*round_bf16=*/false);
  EXPECT_EQ(pack.k(), 300u);
  EXPECT_EQ(pack.n(), 33u);
  EXPECT_EQ(pack.k_blocks(), 2u);        // ceil(300 / 256)
  EXPECT_EQ(pack.k_block_rows(0), 256u);
  EXPECT_EQ(pack.k_block_rows(1), 44u);
  EXPECT_EQ(pack.n_tiles(), 3u);         // ceil(33 / 16)
  EXPECT_FALSE(pack.empty());

  PackedB cleared = pack_b(b, false, false);
  cleared.clear();
  EXPECT_TRUE(cleared.empty());
  EXPECT_EQ(cleared.k(), 0u);

  // Transposed pack: op(B) = B^T is 33 x 300.
  const PackedB tpack = pack_b(b, /*transpose=*/true, /*round_bf16=*/false);
  EXPECT_EQ(tpack.k(), 33u);
  EXPECT_EQ(tpack.n(), 300u);
}

}  // namespace
}  // namespace axonn
