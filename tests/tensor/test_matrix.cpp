#include "axonn/tensor/matrix.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "axonn/base/error.hpp"
#include "axonn/base/rng.hpp"

namespace axonn {
namespace {

Matrix iota(std::size_t rows, std::size_t cols) {
  Matrix m(rows, cols);
  float v = 0.0f;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m(r, c) = v++;
    }
  }
  return m;
}

TEST(MatrixTest, ConstructionAndShape) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  EXPECT_EQ(m(2, 3), 0.0f);
}

TEST(MatrixTest, IdentityHasOnesOnDiagonal) {
  const Matrix eye = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(eye(r, c), r == c ? 1.0f : 0.0f);
    }
  }
}

TEST(MatrixTest, BlockExtraction) {
  const Matrix m = iota(4, 4);
  const Matrix b = m.block(Range{1, 3}, Range{2, 4});
  EXPECT_EQ(b.rows(), 2u);
  EXPECT_EQ(b.cols(), 2u);
  EXPECT_EQ(b(0, 0), m(1, 2));
  EXPECT_EQ(b(1, 1), m(2, 3));
}

TEST(MatrixTest, SetBlockWritesBack) {
  Matrix m = Matrix::zeros(4, 4);
  Matrix b = Matrix::full(2, 2, 7.0f);
  m.set_block(Range{1, 3}, Range{1, 3}, b);
  EXPECT_EQ(m(1, 1), 7.0f);
  EXPECT_EQ(m(2, 2), 7.0f);
  EXPECT_EQ(m(0, 0), 0.0f);
  EXPECT_EQ(m(3, 3), 0.0f);
}

TEST(MatrixTest, SetBlockShapeMismatchThrows) {
  Matrix m(4, 4);
  Matrix b(3, 3);
  EXPECT_THROW(m.set_block(Range{0, 2}, Range{0, 2}, b), Error);
}

TEST(MatrixTest, GridBlocksTileTheMatrix) {
  const Matrix m = iota(5, 7);  // deliberately non-divisible
  Matrix rebuilt(5, 7);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      const Matrix b = m.grid_block(2, 3, i, j);
      rebuilt.set_block(chunk_range(5, 2, i), chunk_range(7, 3, j), b);
    }
  }
  EXPECT_EQ(Matrix::max_abs_diff(m, rebuilt), 0.0f);
}

TEST(MatrixTest, TransposeInvolution) {
  Rng rng(5);
  const Matrix m = Matrix::randn(3, 5, rng);
  EXPECT_EQ(Matrix::max_abs_diff(m.transposed().transposed(), m), 0.0f);
  EXPECT_EQ(m.transposed()(4, 2), m(2, 4));
}

TEST(MatrixTest, AddAndAxpy) {
  Matrix a = Matrix::full(2, 2, 1.0f);
  const Matrix b = Matrix::full(2, 2, 2.0f);
  a.add_inplace(b);
  EXPECT_EQ(a(0, 0), 3.0f);
  a.axpy_inplace(0.5f, b);
  EXPECT_EQ(a(1, 1), 4.0f);
  a.scale_inplace(0.25f);
  EXPECT_EQ(a(0, 1), 1.0f);
}

TEST(MatrixTest, ShapeMismatchThrows) {
  Matrix a(2, 2);
  Matrix b(2, 3);
  EXPECT_THROW(a.add_inplace(b), Error);
  EXPECT_THROW(Matrix::max_abs_diff(a, b), Error);
}

TEST(MatrixTest, MaxAbsAndSum) {
  Matrix m(2, 2);
  m(0, 0) = -5.0f;
  m(1, 1) = 3.0f;
  EXPECT_EQ(m.max_abs(), 5.0f);
  EXPECT_DOUBLE_EQ(m.sum(), -2.0);
}

TEST(MatrixTest, RandnIsSeeded) {
  Rng rng1(9);
  Rng rng2(9);
  const Matrix a = Matrix::randn(4, 4, rng1);
  const Matrix b = Matrix::randn(4, 4, rng2);
  EXPECT_EQ(Matrix::max_abs_diff(a, b), 0.0f);
}

TEST(MatrixTest, RoundToBf16LosesAtMostRelative2e8) {
  Rng rng(13);
  Matrix m = Matrix::randn(8, 8, rng);
  const Matrix orig = m;
  m.round_to_bf16();
  for (std::size_t i = 0; i < m.size(); ++i) {
    const float o = orig.data()[i];
    EXPECT_LE(std::abs(m.data()[i] - o), std::abs(o) * 0.00391f);
  }
}

TEST(MatrixTest, StorageIsCacheLineAligned) {
  // Matrix storage is 64-byte aligned so the tiled GEMM's vector loads hit
  // full cache lines; rows themselves stay unaligned for cols % 16 != 0
  // (row-major, no padding), which only the base pointer guarantee covers.
  for (auto [rows, cols] : {std::pair<std::size_t, std::size_t>{1, 1},
                            {3, 5},
                            {64, 64},
                            {7, 129}}) {
    Matrix m(rows, cols);
    EXPECT_TRUE(is_cache_aligned(m.data()))
        << rows << "x" << cols << " at " << static_cast<const void*>(m.data());
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.storage().data()) %
                  kCacheLineBytes,
              0u);
  }
  // Copies and moves re-allocate through the aligned allocator too.
  Matrix src = iota(9, 17);
  Matrix copy = src;
  EXPECT_TRUE(is_cache_aligned(copy.data()));
  Matrix moved = std::move(src);
  EXPECT_TRUE(is_cache_aligned(moved.data()));
}

}  // namespace
}  // namespace axonn
