#include "axonn/sim/grid_shape.hpp"

#include <gtest/gtest.h>

#include <set>

namespace axonn::sim {
namespace {

TEST(GridShapeTest, TotalsAndPreceding) {
  const GridShape g{2, 4, 8, 16};
  EXPECT_EQ(g.tensor(), 64);
  EXPECT_EQ(g.total(), 1024);
  EXPECT_EQ(g.preceding(0), 1);
  EXPECT_EQ(g.preceding(1), 2);
  EXPECT_EQ(g.preceding(2), 8);
  EXPECT_EQ(g.preceding(3), 64);
  EXPECT_EQ(g.dim(0), 2);
  EXPECT_EQ(g.dim(3), 16);
}

TEST(GridShapeTest, ToStringReadable) {
  EXPECT_EQ((GridShape{2, 2, 2, 2}).to_string(), "(2x2x2, d=2)");
}

TEST(EnumerateGridsTest, CountIsStarsAndBars) {
  // Ordered power-of-two factorizations of 2^k into 4 factors: C(k+3, 3).
  EXPECT_EQ(enumerate_grids(1).size(), 1u);
  EXPECT_EQ(enumerate_grids(2).size(), 4u);
  EXPECT_EQ(enumerate_grids(4).size(), 10u);
  EXPECT_EQ(enumerate_grids(8).size(), 20u);
  EXPECT_EQ(enumerate_grids(32).size(), 56u);   // GPT-20B validation run
  EXPECT_EQ(enumerate_grids(64).size(), 84u);   // GPT-40B validation run
}

TEST(EnumerateGridsTest, EveryGridMultipliesToTotal) {
  for (const auto& g : enumerate_grids(64)) {
    EXPECT_EQ(g.total(), 64);
    EXPECT_GE(g.gx, 1);
    EXPECT_GE(g.gy, 1);
    EXPECT_GE(g.gz, 1);
    EXPECT_GE(g.gdata, 1);
  }
}

TEST(EnumerateGridsTest, NoDuplicates) {
  const auto grids = enumerate_grids(128);
  std::set<std::tuple<int, int, int, int>> seen;
  for (const auto& g : grids) {
    EXPECT_TRUE(seen.insert({g.gx, g.gy, g.gz, g.gdata}).second);
  }
}

TEST(EnumerateGridsTest, NonPowerOfTwoCountsSupported) {
  // Alps runs at 6144 = 3 * 2^11 GPUs; ordered factorizations into four
  // factors of 2^a*3^b: C(a+3,3)*C(b+3,3) = C(14,3)*C(4,3) = 364 * 4.
  EXPECT_EQ(enumerate_grids(6144).size(), 1456u);
  for (const auto& g : enumerate_grids(24)) {
    EXPECT_EQ(g.total(), 24);
  }
  EXPECT_THROW(enumerate_grids(0), Error);
}

TEST(DegenerateGridsTest, ReductionsOfSectionVA) {
  // Only-Z == FSDP / ZeRO-3.
  const GridShape fsdp = fsdp_grid(16);
  EXPECT_EQ(fsdp.gz, 16);
  EXPECT_EQ(fsdp.gx * fsdp.gy * fsdp.gdata, 1);
  // Z + data == hybrid sharded DP / ZeRO++.
  const GridShape hybrid = hybrid_sharded_grid(8, 4);
  EXPECT_EQ(hybrid.gz, 8);
  EXPECT_EQ(hybrid.gdata, 4);
  // X + transpose == Megatron-LM tensor parallelism.
  const GridShape mega = megatron_grid(8, 64);
  EXPECT_EQ(mega.gx, 8);
  EXPECT_EQ(mega.gdata, 64);
  EXPECT_EQ(mega.gy * mega.gz, 1);
  // Pure DP.
  EXPECT_EQ(pure_data_parallel_grid(32).gdata, 32);
}

}  // namespace
}  // namespace axonn::sim
