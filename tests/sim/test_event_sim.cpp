#include "axonn/sim/event_sim.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace axonn::sim {
namespace {

TEST(EventSimTest, SingleTask) {
  EventSimulator sim;
  const StreamId s = sim.add_stream("compute");
  sim.add_task(s, 2.5);
  const auto r = sim.run();
  EXPECT_DOUBLE_EQ(r.makespan, 2.5);
  EXPECT_DOUBLE_EQ(r.stream_busy[s], 2.5);
}

TEST(EventSimTest, SameStreamSerializes) {
  EventSimulator sim;
  const StreamId s = sim.add_stream("compute");
  sim.add_task(s, 1.0);
  sim.add_task(s, 2.0);
  const auto r = sim.run();
  EXPECT_DOUBLE_EQ(r.makespan, 3.0);
  EXPECT_DOUBLE_EQ(r.tasks[1].start, 1.0);
}

TEST(EventSimTest, IndependentStreamsOverlap) {
  EventSimulator sim;
  const StreamId compute = sim.add_stream("compute");
  const StreamId comm = sim.add_stream("comm");
  sim.add_task(compute, 3.0);
  sim.add_task(comm, 2.0);
  const auto r = sim.run();
  EXPECT_DOUBLE_EQ(r.makespan, 3.0);  // fully hidden
  EXPECT_DOUBLE_EQ(r.exposed_time(compute), 0.0);
}

TEST(EventSimTest, CrossStreamDependencyDelays) {
  EventSimulator sim;
  const StreamId compute = sim.add_stream("compute");
  const StreamId comm = sim.add_stream("comm");
  const TaskId a = sim.add_task(compute, 1.0);
  const TaskId b = sim.add_task(comm, 2.0, {a});
  const TaskId c = sim.add_task(compute, 1.0, {b});
  const auto r = sim.run();
  EXPECT_DOUBLE_EQ(r.tasks[b].start, 1.0);
  EXPECT_DOUBLE_EQ(r.tasks[c].start, 3.0);
  EXPECT_DOUBLE_EQ(r.makespan, 4.0);
  // 2s of communication fully exposed: makespan - compute busy = 4 - 2.
  EXPECT_DOUBLE_EQ(r.exposed_time(compute), 2.0);
}

TEST(EventSimTest, OverlapHidesCommBehindCompute) {
  // The OAR pattern: comm of task X runs while an independent compute task
  // proceeds; a later compute task waits on the comm result.
  EventSimulator sim;
  const StreamId compute = sim.add_stream("compute");
  const StreamId comm = sim.add_stream("comm");
  const TaskId di = sim.add_task(compute, 1.0, {}, "dI");
  const TaskId arx = sim.add_task(comm, 1.5, {di}, "AR_x");
  sim.add_task(compute, 2.0, {di}, "dW");     // overlaps with AR_x
  const TaskId next = sim.add_task(compute, 1.0, {arx}, "next_dI");
  const auto r = sim.run();
  // dW runs 1..3; AR_x runs 1..2.5 (hidden); next_dI at 3 (stream busy).
  EXPECT_DOUBLE_EQ(r.tasks[next].start, 3.0);
  EXPECT_DOUBLE_EQ(r.makespan, 4.0);
  EXPECT_DOUBLE_EQ(r.exposed_time(compute), 0.0);
}

TEST(EventSimTest, MultipleDependenciesUseMax) {
  EventSimulator sim;
  const StreamId s1 = sim.add_stream("a");
  const StreamId s2 = sim.add_stream("b");
  const StreamId s3 = sim.add_stream("c");
  const TaskId t1 = sim.add_task(s1, 1.0);
  const TaskId t2 = sim.add_task(s2, 5.0);
  const TaskId t3 = sim.add_task(s3, 1.0, {t1, t2});
  const auto r = sim.run();
  EXPECT_DOUBLE_EQ(r.tasks[t3].start, 5.0);
}

TEST(EventSimTest, ZeroDurationTasksAllowed) {
  EventSimulator sim;
  const StreamId s = sim.add_stream("s");
  const TaskId a = sim.add_task(s, 0.0);
  const TaskId b = sim.add_task(s, 1.0, {a});
  const auto r = sim.run();
  EXPECT_DOUBLE_EQ(r.tasks[b].start, 0.0);
  EXPECT_DOUBLE_EQ(r.makespan, 1.0);
}

TEST(EventSimTest, InvalidInputsThrow) {
  EventSimulator sim;
  const StreamId s = sim.add_stream("s");
  EXPECT_THROW(sim.add_task(s + 1, 1.0), Error);
  EXPECT_THROW(sim.add_task(s, -1.0), Error);
  EXPECT_THROW(sim.add_task(s, 1.0, {99}), Error);  // forward dependency
}

TEST(EventSimTest, BusyTimeAccumulatesPerStream) {
  EventSimulator sim;
  const StreamId a = sim.add_stream("a");
  const StreamId b = sim.add_stream("b");
  sim.add_task(a, 1.0);
  sim.add_task(a, 2.0);
  sim.add_task(b, 4.0);
  const auto r = sim.run();
  EXPECT_DOUBLE_EQ(r.stream_busy[a], 3.0);
  EXPECT_DOUBLE_EQ(r.stream_busy[b], 4.0);
  EXPECT_DOUBLE_EQ(r.makespan, 4.0);
}

TEST(EventSimTest, TaskNamesPreserved) {
  EventSimulator sim;
  const StreamId s = sim.add_stream("compute");
  const TaskId t = sim.add_task(s, 1.0, {}, "fwd_gemm");
  const auto r = sim.run();
  EXPECT_EQ(r.tasks[t].name, "fwd_gemm");
  EXPECT_EQ(r.stream_names[s], "compute");
}

TEST(EventSimTest, ChromeTraceExportEmitsCompleteEvents) {
  EventSimulator sim;
  const StreamId compute = sim.add_stream("compute");
  const StreamId comm = sim.add_stream("comm");
  const TaskId ag = sim.add_task(comm, 0.5, {}, "AG_z \"layer0\"");
  sim.add_task(compute, 1.0, {ag}, "fwd_gemm");
  sim.add_task(compute, 0.25, {}, "");  // unnamed -> placeholder name
  const auto r = sim.run();

  std::ostringstream out;
  write_chrome_trace(r, out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // One thread-name metadata row per stream.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("fwd_gemm"), std::string::npos);
  EXPECT_NE(json.find("AG_z \\\"layer0\\\""), std::string::npos)
      << "names must be JSON-escaped";
  EXPECT_NE(json.find("\"task\""), std::string::npos);
  // Sim seconds scale to trace microseconds: the 1.0s GEMM starts at the
  // 0.5s mark = ts 500000.
  EXPECT_NE(json.find("\"ts\":500000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1e+06"), std::string::npos);
  long braces = 0, brackets = 0;
  for (char c : json) {
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

}  // namespace
}  // namespace axonn::sim
