#include "axonn/sim/iteration.hpp"

#include <gtest/gtest.h>

#include "axonn/model/gpt.hpp"

namespace axonn::sim {
namespace {

model::TrainingJob job_20b() {
  return model::TrainingJob{model::gpt_by_name("GPT-20B"), 16.8e6, true};
}

TEST(CollectiveCostTest, SingleRankIsFree) {
  const auto c = ring_collective_cost(CollectiveKind::kAllReduce, 1, 1e9,
                                      100e9, 10e-6);
  EXPECT_EQ(c.seconds, 0.0);
  EXPECT_EQ(c.steps, 0);
}

TEST(CollectiveCostTest, AllGatherMatchesRingFormula) {
  const auto c = ring_collective_cost(CollectiveKind::kAllGather, 4, 4e9,
                                      100e9, 0.0);
  // (p-1)/p * n / beta = 3/4 * 4 GB / 100 GB/s = 30 ms.
  EXPECT_NEAR(c.seconds, 0.030, 1e-9);
  EXPECT_EQ(c.steps, 3);
  EXPECT_DOUBLE_EQ(c.wire_bytes_per_rank, 3e9);
}

TEST(CollectiveCostTest, AllReduceIsTwiceReduceScatter) {
  const auto ar = ring_collective_cost(CollectiveKind::kAllReduce, 8, 1e9,
                                       50e9, 0.0);
  const auto rs = ring_collective_cost(CollectiveKind::kReduceScatter, 8, 1e9,
                                       50e9, 0.0);
  EXPECT_NEAR(ar.seconds, 2.0 * rs.seconds, 1e-12);
  EXPECT_EQ(ar.steps, 2 * rs.steps);
}

TEST(CollectiveCostTest, LatencyAddsPerStep) {
  const auto without = ring_collective_cost(CollectiveKind::kAllGather, 4,
                                            1e6, 100e9, 0.0);
  const auto with = ring_collective_cost(CollectiveKind::kAllGather, 4, 1e6,
                                         100e9, 1e-5);
  EXPECT_NEAR(with.seconds - without.seconds, 3e-5, 1e-12);
}

TEST(FitsInMemoryTest, BigModelNeedsSharding) {
  const auto machine = frontier();
  const auto job = job_20b();
  // 20B params: 16 bytes/param of states alone is 320 GB — one 64 GB GCD
  // cannot hold it, 512 GCDs with 3D sharding can.
  EXPECT_FALSE(fits_in_memory(job, machine, GridShape{1, 1, 1, 1}));
  EXPECT_TRUE(fits_in_memory(job, machine, GridShape{8, 4, 16, 1}));
}

TEST(SimulateIterationTest, ProducesConsistentBreakdown) {
  const auto machine = frontier();
  const auto db = IntraNodeBandwidthDB::profile(machine);
  const GridShape grid{4, 2, 8, 8};  // 512 GCDs
  const auto b = simulate_iteration(job_20b(), machine, db, grid);
  EXPECT_GT(b.total_s, 0.0);
  EXPECT_GT(b.compute_s, 0.0);
  EXPECT_GE(b.exposed_comm_s, 0.0);
  EXPECT_NEAR(b.total_s, b.compute_s + b.exposed_comm_s, 1e-9);
  EXPECT_GT(b.num_tasks, 100u);
}

TEST(SimulateIterationTest, OverlapNeverHurts) {
  const auto machine = frontier();
  const auto db = IntraNodeBandwidthDB::profile(machine);
  const GridShape grid{4, 2, 8, 8};
  SimOptions none;
  none.overlap = OverlapFlags::none();
  SimOptions all;
  all.overlap = OverlapFlags::all();
  const auto t_none = simulate_iteration(job_20b(), machine, db, grid, none);
  const auto t_all = simulate_iteration(job_20b(), machine, db, grid, all);
  EXPECT_LE(t_all.total_s, t_none.total_s * (1.0 + 1e-9));
  // Compute work is unchanged; only exposure shrinks (Fig. 5's key message).
  EXPECT_NEAR(t_all.compute_s, t_none.compute_s, t_none.compute_s * 1e-6);
  EXPECT_LT(t_all.exposed_comm_s, t_none.exposed_comm_s);
}

TEST(SimulateIterationTest, SuccessiveOverlapsMonotone) {
  // Fig. 5: baseline -> +OAR -> +ORS -> +OAG, each step reduces (or keeps)
  // the batch time.
  const auto machine = frontier();
  const auto db = IntraNodeBandwidthDB::profile(machine);
  const GridShape grid{4, 2, 8, 8};
  SimOptions opts;
  opts.overlap = OverlapFlags::none();
  const double t0 = simulate_iteration(job_20b(), machine, db, grid, opts).total_s;
  opts.overlap.all_reduce = true;
  const double t1 = simulate_iteration(job_20b(), machine, db, grid, opts).total_s;
  opts.overlap.reduce_scatter = true;
  const double t2 = simulate_iteration(job_20b(), machine, db, grid, opts).total_s;
  opts.overlap.all_gather = true;
  const double t3 = simulate_iteration(job_20b(), machine, db, grid, opts).total_s;
  EXPECT_LE(t1, t0 * (1 + 1e-9));
  EXPECT_LE(t2, t1 * (1 + 1e-9));
  EXPECT_LE(t3, t2 * (1 + 1e-9));
  EXPECT_LT(t3, t0);  // the combination must actually help
}

TEST(SimulateIterationTest, KernelTuningHelpsOnFrontier320B) {
  // §V-C: GPT-320B's TN matmuls hit the rocBLAS quirk; tuning must cut
  // compute time substantially (paper: 30.1 s -> 13.19 s).
  const auto machine = frontier();
  const auto db = IntraNodeBandwidthDB::profile(machine);
  model::TrainingJob job{model::gpt_by_name("GPT-320B"), 16.8e6, true};
  const GridShape grid{8, 8, 8, 64};  // 32768 GCDs
  SimOptions untuned;
  untuned.kernel_tuning = false;
  SimOptions tuned;
  tuned.kernel_tuning = true;
  const auto a = simulate_iteration(job, machine, db, grid, untuned);
  const auto b = simulate_iteration(job, machine, db, grid, tuned);
  EXPECT_LT(b.compute_s, a.compute_s * 0.7);
}

TEST(SimulateIterationTest, KernelTuningModestForSmallModels) {
  // Fig. 7: tuning gains are 2-4% for the 5B-80B series.
  const auto machine = frontier();
  const auto db = IntraNodeBandwidthDB::profile(machine);
  const GridShape grid{4, 2, 8, 8};
  SimOptions untuned;
  SimOptions tuned;
  tuned.kernel_tuning = true;
  const auto a = simulate_iteration(job_20b(), machine, db, grid, untuned);
  const auto b = simulate_iteration(job_20b(), machine, db, grid, tuned);
  EXPECT_LE(b.total_s, a.total_s);
  EXPECT_GT(b.total_s, a.total_s * 0.80);  // not a dramatic win
}

TEST(SimulateIterationTest, NoiseIsDeterministicPerSeed) {
  const auto machine = perlmutter();
  const auto db = IntraNodeBandwidthDB::profile(machine);
  const GridShape grid{2, 2, 2, 4};
  model::TrainingJob job{model::gpt_by_name("GPT-5B"), 1.05e6, true};
  SimOptions opts;
  opts.noise_sigma = 0.05;
  opts.noise_seed = 7;
  const auto a = simulate_iteration(job, machine, db, grid, opts);
  const auto b = simulate_iteration(job, machine, db, grid, opts);
  EXPECT_DOUBLE_EQ(a.total_s, b.total_s);
  opts.noise_seed = 8;
  const auto c = simulate_iteration(job, machine, db, grid, opts);
  EXPECT_NE(a.total_s, c.total_s);
}

TEST(SimulateIterationTest, MoreDataParallelismCutsActivationComm) {
  // With fixed total GPUs, trading tensor for data parallelism reduces
  // per-group activation traffic but adds gradient all-reduce volume — both
  // configurations must at least be simulable and differ.
  const auto machine = frontier();
  const auto db = IntraNodeBandwidthDB::profile(machine);
  const auto t1 =
      simulate_iteration(job_20b(), machine, db, GridShape{8, 8, 8, 1});
  const auto t2 =
      simulate_iteration(job_20b(), machine, db, GridShape{4, 2, 8, 8});
  EXPECT_NE(t1.total_s, t2.total_s);
}

TEST(SimulateIterationTest, CheckpointingAddsRecompute) {
  const auto machine = frontier();
  const auto db = IntraNodeBandwidthDB::profile(machine);
  const GridShape grid{4, 2, 8, 8};
  auto with = job_20b();
  auto without = job_20b();
  without.activation_checkpointing = false;
  const auto a = simulate_iteration(with, machine, db, grid);
  const auto b = simulate_iteration(without, machine, db, grid);
  EXPECT_GT(a.compute_s, b.compute_s * 1.2);  // ~4/3 of the GEMM work
}

}  // namespace
}  // namespace axonn::sim
