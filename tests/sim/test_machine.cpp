#include "axonn/sim/machine.hpp"

#include <gtest/gtest.h>

#include "axonn/base/error.hpp"

namespace axonn::sim {
namespace {

TEST(MachineTest, PaperPublishedPeaks) {
  EXPECT_DOUBLE_EQ(perlmutter().advertised_peak_flops, 312e12);
  EXPECT_DOUBLE_EQ(perlmutter().empirical_peak_flops, 280e12);
  EXPECT_DOUBLE_EQ(frontier().advertised_peak_flops, 191.5e12);
  EXPECT_DOUBLE_EQ(frontier().empirical_peak_flops, 125e12);
  EXPECT_DOUBLE_EQ(alps().advertised_peak_flops, 989e12);
  EXPECT_DOUBLE_EQ(alps().empirical_peak_flops, 813e12);
}

TEST(MachineTest, NodeShapes) {
  EXPECT_EQ(perlmutter().gpus_per_node, 4);
  EXPECT_EQ(frontier().gpus_per_node, 8);  // 4 MI250X = 8 GCDs
  EXPECT_EQ(alps().gpus_per_node, 4);
}

TEST(MachineTest, AllNodesHaveFourSlingshot11NICs) {
  for (const auto& machine : all_machines()) {
    EXPECT_DOUBLE_EQ(machine.internode_bandwidth, 100e9) << machine.name;
  }
}

TEST(MachineTest, LookupByName) {
  EXPECT_EQ(machine_by_name("Frontier").gpus_per_node, 8);
  EXPECT_THROW(machine_by_name("Summit"), Error);
}

TEST(GemmEfficiencyTest, GrowsWithSizeAndSaturates) {
  const auto machine = perlmutter();
  const double small = machine.gemm.efficiency(GemmMode::kNN, 512, 512, 512);
  const double medium = machine.gemm.efficiency(GemmMode::kNN, 4096, 4096, 4096);
  const double large =
      machine.gemm.efficiency(GemmMode::kNN, 32768, 32768, 32768);
  EXPECT_LT(small, medium);
  EXPECT_LT(medium, large);
  EXPECT_LE(large, machine.gemm.peak_fraction);
  // §VI-C: ~90% of advertised peak at 32768^2 on Perlmutter.
  EXPECT_NEAR(large, 280.0 / 312.0, 0.05);
}

TEST(GemmEfficiencyTest, FrontierLargeSquareHitsSixtyFivePercent) {
  const auto machine = frontier();
  const double eff =
      machine.gemm.efficiency(GemmMode::kNN, 32768, 32768, 32768);
  EXPECT_NEAR(eff, 125.0 / 191.5, 0.05);
}

TEST(GemmEfficiencyTest, ModePenaltiesOrderNNBest) {
  const auto machine = frontier();
  const double nn = machine.gemm.efficiency(GemmMode::kNN, 8192, 8192, 8192);
  const double nt = machine.gemm.efficiency(GemmMode::kNT, 8192, 8192, 8192);
  const double tn = machine.gemm.efficiency(GemmMode::kTN, 8192, 8192, 8192);
  EXPECT_GT(nn, nt);
  EXPECT_GT(nt, tn);
}

TEST(GemmEfficiencyTest, FrontierTNQuirkAtLargeHidden) {
  // §V-C: TN collapses to 6% of peak on MI250X for GPT-320B-scale matmuls,
  // while NN stays healthy — an ~8x gap the kernel tuner must fix.
  const auto machine = frontier();
  const double tn =
      machine.gemm.efficiency(GemmMode::kTN, 16384, 16384, 524288);
  EXPECT_DOUBLE_EQ(tn, 0.06);
  const double nn =
      machine.gemm.efficiency(GemmMode::kNN, 16384, 16384, 524288);
  EXPECT_GT(nn / tn, 7.0);
  // The quirk does not fire for smaller shapes.
  const double tn_small =
      machine.gemm.efficiency(GemmMode::kTN, 8192, 8192, 8192);
  EXPECT_GT(tn_small, 0.2);
}

TEST(GemmEfficiencyTest, PerlmutterHasNoTNQuirk) {
  const auto machine = perlmutter();
  const double tn =
      machine.gemm.efficiency(GemmMode::kTN, 16384, 16384, 524288);
  EXPECT_GT(tn, 0.5);
}

TEST(GemmSecondsTest, ConsistentWithFlopsAndEfficiency) {
  const auto machine = perlmutter();
  const std::uint64_t d = 8192;
  const double eff = machine.gemm.efficiency(GemmMode::kNN, d, d, d);
  const double expected = 2.0 * static_cast<double>(d) * d * d /
                          (machine.advertised_peak_flops * eff);
  EXPECT_NEAR(machine.gemm_seconds(GemmMode::kNN, d, d, d), expected, 1e-12);
}

TEST(GemmSecondsTest, FrontierTunerWinEightX) {
  // The §V-C anecdote: switching the pathological TN matmul to NN makes it
  // nearly 8x faster.
  const auto machine = frontier();
  const double tn = machine.gemm_seconds(GemmMode::kTN, 16384, 16384, 65536);
  const double nn = machine.gemm_seconds(GemmMode::kNN, 16384, 16384, 65536);
  EXPECT_GT(tn / nn, 7.0);
  EXPECT_LT(tn / nn, 12.0);
}

}  // namespace
}  // namespace axonn::sim
