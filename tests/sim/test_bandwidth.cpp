#include "axonn/sim/bandwidth.hpp"

#include <gtest/gtest.h>

#include "axonn/base/error.hpp"

namespace axonn::sim {
namespace {

TEST(BandwidthDBTest, ProfilesAllTuplesThatFitInANode) {
  const auto machine = frontier();  // 8 GPUs per node
  const auto db = IntraNodeBandwidthDB::profile(machine);
  // (g0, g1) integers with g0*g1 <= 8: 8+4+2+2+1+1+1+1 = 20 tuples
  // (non-power-of-two dimensions occur on Alps: 6144 = 3 * 2^11).
  EXPECT_EQ(db.num_entries(), 20u);
  EXPECT_TRUE(db.contains(1, 8));
  EXPECT_TRUE(db.contains(4, 2));
  EXPECT_TRUE(db.contains(1, 3));
  EXPECT_FALSE(db.contains(4, 4));  // spans 16 > 8
}

TEST(BandwidthDBTest, MissingTupleThrows) {
  const auto db = IntraNodeBandwidthDB::profile(perlmutter());
  EXPECT_THROW(db.lookup(8, 1), Error);  // 8 > 4 GPUs/node
}

TEST(BandwidthDBTest, ConcurrentRingsDegradeBandwidth) {
  const auto machine = frontier();
  const auto db = IntraNodeBandwidthDB::profile(machine);
  // More preceding groups -> more simultaneous rings -> lower bandwidth.
  EXPECT_GT(db.lookup(1, 8), db.lookup(2, 4));
  EXPECT_GT(db.lookup(2, 4), db.lookup(4, 2));
}

TEST(BandwidthDBTest, CustomMeasureIsUsed) {
  const auto machine = perlmutter();
  const auto db = IntraNodeBandwidthDB::profile(
      machine, [](int g0, int g1) { return 1000.0 * g0 + g1; });
  EXPECT_DOUBLE_EQ(db.lookup(2, 2), 2002.0);
}

TEST(BandwidthDBTest, SyntheticMeasureMatchesFormula) {
  const auto machine = frontier();
  EXPECT_DOUBLE_EQ(IntraNodeBandwidthDB::synthetic_measure(machine, 1, 8),
                   machine.intranode_link_bandwidth);
  EXPECT_DOUBLE_EQ(
      IntraNodeBandwidthDB::synthetic_measure(machine, 4, 2),
      machine.intranode_link_bandwidth / (1.0 + machine.fabric_sharing * 3.0));
}

TEST(EffectiveBandwidthTest, IntraNodeUsesDatabase) {
  const auto machine = frontier();
  const auto db = IntraNodeBandwidthDB::profile(machine);
  EXPECT_DOUBLE_EQ(effective_bandwidth(machine, db, 1, 8), db.lookup(1, 8));
  EXPECT_DOUBLE_EQ(effective_bandwidth(machine, db, 2, 4), db.lookup(2, 4));
}

TEST(EffectiveBandwidthTest, Equation7SingleRingGetsFullInterNode) {
  // Fig. 3 scenario: preceding product 1, group spans nodes -> beta_inter.
  const auto machine = frontier();
  const auto db = IntraNodeBandwidthDB::profile(machine);
  EXPECT_DOUBLE_EQ(effective_bandwidth(machine, db, 1, 16),
                   machine.internode_bandwidth);
}

TEST(EffectiveBandwidthTest, Equation7SharesAcrossRings) {
  // Fig. 4 scenario: two simultaneous rings between node pairs share
  // beta_inter.
  const auto machine = frontier();
  const auto db = IntraNodeBandwidthDB::profile(machine);
  EXPECT_DOUBLE_EQ(effective_bandwidth(machine, db, 2, 16),
                   machine.internode_bandwidth / 2.0);
  EXPECT_DOUBLE_EQ(effective_bandwidth(machine, db, 4, 16),
                   machine.internode_bandwidth / 4.0);
}

TEST(EffectiveBandwidthTest, Equation7CapsAtGPUsPerNode) {
  // "there can't be more inter-node ring links than GPUs on a node".
  const auto machine = frontier();  // 8 per node
  const auto db = IntraNodeBandwidthDB::profile(machine);
  EXPECT_DOUBLE_EQ(effective_bandwidth(machine, db, 64, 16),
                   machine.internode_bandwidth / 8.0);
  EXPECT_DOUBLE_EQ(effective_bandwidth(machine, db, 1024, 2),
                   machine.internode_bandwidth / 8.0);
}

TEST(EffectiveBandwidthTest, SizeOneGroupIsHarmless) {
  const auto machine = perlmutter();
  const auto db = IntraNodeBandwidthDB::profile(machine);
  EXPECT_GT(effective_bandwidth(machine, db, 1024, 1), 0.0);
}

TEST(EffectiveBandwidthTest, HierarchyExampleFromPaper) {
  // The paper's 8-GPU example with Gx=Gy=Gz=Gdata=2 on 4-GPU nodes:
  // X groups (preceding 1, size 2) and Y groups (preceding 2, size 2) are
  // intra-node; Z groups (preceding 4, size 2) and data groups (preceding 8,
  // size 2) cross node boundaries.
  const auto machine = perlmutter();  // 4 GPUs/node
  const auto db = IntraNodeBandwidthDB::profile(machine);
  EXPECT_DOUBLE_EQ(effective_bandwidth(machine, db, 1, 2), db.lookup(1, 2));
  EXPECT_DOUBLE_EQ(effective_bandwidth(machine, db, 2, 2), db.lookup(2, 2));
  EXPECT_DOUBLE_EQ(effective_bandwidth(machine, db, 4, 2),
                   machine.internode_bandwidth / 4.0);
  EXPECT_DOUBLE_EQ(effective_bandwidth(machine, db, 8, 2),
                   machine.internode_bandwidth / 4.0);
}

}  // namespace
}  // namespace axonn::sim
