// The stale-weight OAG prefetch regression (DESIGN.md §12): a weight
// all-gather issued by begin_weight_gather() and then invalidated by an
// optimizer step must be discarded — never adopted — so the next forward
// computes with the *updated* weights, bit-identically to the blocking
// gather path. Before the fix the prefetch landed directly in the weight
// cache while apply_sgd() mutated the very shard the progress thread was
// reading: silently-wrong output under OAG plus a data race on
// weight_shard_ (the tsan label on this binary pins the race half).

#include "axonn/core/fc_layer.hpp"

#include <gtest/gtest.h>

#include "axonn/comm/thread_comm.hpp"

namespace axonn::core {
namespace {

constexpr std::uint64_t kSeed = 4321;
constexpr std::size_t kRows = 12;
constexpr std::size_t kIn = 16;
constexpr std::size_t kOut = 20;

Matrix reference_input() {
  Rng rng(77);
  return Matrix::randn(kRows, kIn, rng);
}

Matrix reference_grad_output() {
  Rng rng(33);
  return Matrix::randn(kRows, kOut, rng);
}

// One fwd+bwd+SGD step to make the *next* forward depend on the update.
void take_training_step(TensorParallelFC& fc, const Matrix& full_input,
                        const Matrix& full_dout, float lr) {
  const Matrix input_local = fc.scatter_input(full_input);
  fc.forward(input_local);
  fc.backward(
      full_dout.block(fc.input_row_range(kRows), fc.output_col_range()));
  fc.apply_sgd(lr);
}

// Runs the scenario on a Z=4 grid and returns rank 0's post-update forward
// output. `scenario` controls what happens between the weight update and the
// forward that must see the new weights.
enum class Scenario {
  kBlocking,            // no prefetch at all: the golden path
  kStaleThenReissue,    // prefetch, update, begin_weight_gather() again
  kStaleConsumedDirect  // prefetch, update, forward() with no reissue
};

Matrix run_scenario(Scenario scenario, GemmBackend backend) {
  const Matrix full_input = reference_input();
  const Matrix full_dout = reference_grad_output();
  Matrix out0;
  comm::run_ranks(4, [&](comm::Communicator& world) {
    Grid4D grid(world, sim::GridShape{1, 1, 4, 1});
    FCOptions options;
    options.gemm_backend = backend;
    TensorParallelFC fc(grid, kIn, kOut, kSeed, options);

    if (scenario != Scenario::kBlocking) {
      // Prefetch of the PRE-update weights: made stale by apply_sgd below.
      fc.begin_weight_gather();
    }
    take_training_step(fc, full_input, full_dout, /*lr=*/0.1f);
    if (scenario == Scenario::kStaleThenReissue) {
      // The training loop's next-iteration prefetch: must drain and discard
      // the stale gather, then reissue against the updated shard.
      fc.begin_weight_gather();
    }

    const Matrix out = fc.forward(fc.scatter_input(full_input));
    if (world.rank() == 0) out0 = out;
  });
  return out0;
}

TEST(OagPrefetchTest, StalePrefetchDiscardedOnReissue) {
  const Matrix golden = run_scenario(Scenario::kBlocking, GemmBackend::kReference);
  const Matrix prefetched =
      run_scenario(Scenario::kStaleThenReissue, GemmBackend::kReference);
  ASSERT_GT(golden.max_abs(), 0.0f);
  EXPECT_EQ(Matrix::max_abs_diff(golden, prefetched), 0.0f);
}

TEST(OagPrefetchTest, StalePrefetchDiscardedWhenForwardConsumesIt) {
  // forward() itself must notice the version mismatch and fall back to a
  // fresh blocking gather — no reissue call to help it.
  const Matrix golden = run_scenario(Scenario::kBlocking, GemmBackend::kReference);
  const Matrix direct =
      run_scenario(Scenario::kStaleConsumedDirect, GemmBackend::kReference);
  EXPECT_EQ(Matrix::max_abs_diff(golden, direct), 0.0f);
}

TEST(OagPrefetchTest, StalePrefetchDiscardedWithTiledPrepack) {
  // The tiled backend adds the lane-side pre-pack to the prefetch; both the
  // gathered block and the packed panel must be discarded together.
  const Matrix golden = run_scenario(Scenario::kBlocking, GemmBackend::kTiled);
  const Matrix reissued =
      run_scenario(Scenario::kStaleThenReissue, GemmBackend::kTiled);
  const Matrix direct =
      run_scenario(Scenario::kStaleConsumedDirect, GemmBackend::kTiled);
  EXPECT_EQ(Matrix::max_abs_diff(golden, reissued), 0.0f);
  EXPECT_EQ(Matrix::max_abs_diff(golden, direct), 0.0f);
}

TEST(OagPrefetchTest, FreshPrefetchSurvivesTrainingLoop) {
  // Several iterations of the real usage pattern — prefetch next forward's
  // gather, step, forward — against the blocking path, bit-identical at
  // every step. Under TSan this is also the race regression: each in-flight
  // gather overlaps an apply_sgd() on the shard it snapshotted.
  const Matrix full_input = reference_input();
  const Matrix full_dout = reference_grad_output();

  Matrix out_blocking, out_prefetch;
  for (int pass = 0; pass < 2; ++pass) {
    const bool prefetch = pass == 1;
    Matrix last;
    comm::run_ranks(4, [&](comm::Communicator& world) {
      Grid4D grid(world, sim::GridShape{1, 1, 4, 1});
      FCOptions options;
      options.overlap_input_grad_all_reduce = prefetch;
      options.overlap_weight_grad_reduce_scatter = prefetch;
      TensorParallelFC fc(grid, kIn, kOut, kSeed, options);
      const Matrix input_local = fc.scatter_input(full_input);
      const Matrix dout_local =
          full_dout.block(fc.input_row_range(kRows), fc.output_col_range());
      Matrix out;
      for (int step = 0; step < 4; ++step) {
        if (prefetch) fc.begin_weight_gather();
        out = fc.forward(input_local);
        fc.backward(dout_local);
        // The prefetch a real loop would issue for the next forward — this
        // is the one apply_sgd() makes stale while it is in flight.
        if (prefetch) fc.begin_weight_gather();
        fc.apply_sgd(0.05f);
        fc.zero_grad();
      }
      if (world.rank() == 0) last = out;
    });
    (prefetch ? out_prefetch : out_blocking) = last;
  }
  ASSERT_GT(out_blocking.max_abs(), 0.0f);
  EXPECT_EQ(Matrix::max_abs_diff(out_blocking, out_prefetch), 0.0f);
}

TEST(OagPrefetchTest, RedundantBeginIsIdempotentWhileFresh) {
  // Two begin_weight_gather() calls with no intervening invalidation issue
  // exactly one collective (the second is a no-op) — the z-comm all_gather
  // counter pins it.
  comm::run_ranks(4, [&](comm::Communicator& world) {
    Grid4D grid(world, sim::GridShape{1, 1, 4, 1});
    TensorParallelFC fc(grid, kIn, kOut, kSeed);
    const std::uint64_t before = grid.z_comm().stats().all_gather_calls;
    fc.begin_weight_gather();
    fc.begin_weight_gather();
    const Matrix out = fc.forward(fc.scatter_input(reference_input()));
    EXPECT_GT(out.max_abs(), 0.0f);
    EXPECT_EQ(grid.z_comm().stats().all_gather_calls, before + 1);
  });
}

}  // namespace
}  // namespace axonn::core
