#include "axonn/core/grid4d.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "axonn/base/error.hpp"
#include "axonn/comm/thread_comm.hpp"

namespace axonn::core {
namespace {

TEST(Grid4DTest, CoordinatesFollowHierarchy) {
  comm::run_ranks(8, [](comm::Communicator& world) {
    Grid4D grid(world, sim::GridShape{2, 2, 2, 1});
    const int r = world.rank();
    EXPECT_EQ(grid.x(), r % 2);
    EXPECT_EQ(grid.y(), (r / 2) % 2);
    EXPECT_EQ(grid.z(), r / 4);
    EXPECT_EQ(grid.d(), 0);
  });
}

TEST(Grid4DTest, PaperEightGpuExample) {
  // §V-B: with Gx=Gy=Gz=Gdata=2 on 16 ranks... the paper's example uses 8
  // GPUs for (2,2,2) and describes X pairs (0,1),(2,3),(4,5),(6,7) and Y
  // pairs (0,2),(1,3),(4,6),(5,7). Verify group membership via collectives.
  comm::run_ranks(8, [](comm::Communicator& world) {
    Grid4D grid(world, sim::GridShape{2, 2, 2, 1});
    std::vector<float> probe{static_cast<float>(world.rank())};
    grid.x_comm().all_reduce(probe, comm::ReduceOp::kSum);
    // X pair of r is {r & ~1, r | 1}: sum = 2*(r/2*2) + 1.
    EXPECT_EQ(probe[0], static_cast<float>(2 * (world.rank() / 2 * 2) + 1));

    std::vector<float> probe_y{static_cast<float>(world.rank())};
    grid.y_comm().all_reduce(probe_y, comm::ReduceOp::kSum);
    const int base = (world.rank() / 4) * 4 + world.rank() % 2;
    EXPECT_EQ(probe_y[0], static_cast<float>(base + base + 2));
  });
}

TEST(Grid4DTest, DataGroupsSpanTensorBlocks) {
  comm::run_ranks(8, [](comm::Communicator& world) {
    Grid4D grid(world, sim::GridShape{2, 2, 1, 2});
    EXPECT_EQ(grid.data_comm().size(), 2);
    // Data peers differ by the full tensor block size (4).
    std::vector<float> probe{static_cast<float>(world.rank())};
    grid.data_comm().all_reduce(probe, comm::ReduceOp::kSum);
    const int peer = world.rank() < 4 ? world.rank() + 4 : world.rank() - 4;
    EXPECT_EQ(probe[0], static_cast<float>(world.rank() + peer));
  });
}

TEST(Grid4DTest, DegenerateDimensionsGiveSizeOneComms) {
  comm::run_ranks(4, [](comm::Communicator& world) {
    Grid4D grid(world, sim::GridShape{1, 1, 4, 1});
    EXPECT_EQ(grid.x_comm().size(), 1);
    EXPECT_EQ(grid.y_comm().size(), 1);
    EXPECT_EQ(grid.z_comm().size(), 4);
    EXPECT_EQ(grid.data_comm().size(), 1);
    EXPECT_EQ(grid.z(), world.rank());
  });
}

TEST(Grid4DTest, ShapeMismatchThrows) {
  EXPECT_THROW(comm::run_ranks(4,
                               [](comm::Communicator& world) {
                                 Grid4D grid(world, sim::GridShape{2, 2, 2, 1});
                               }),
               Error);
}

TEST(Grid4DTest, StatsAggregateAcrossSubcommunicators) {
  comm::run_ranks(4, [](comm::Communicator& world) {
    Grid4D grid(world, sim::GridShape{2, 1, 2, 1});
    std::vector<float> buf(8, 1.0f);
    grid.x_comm().all_reduce(buf, comm::ReduceOp::kSum);
    grid.z_comm().all_reduce(buf, comm::ReduceOp::kSum);
    const auto stats = grid.total_stats();
    EXPECT_EQ(stats.all_reduce_calls, 2u);
    EXPECT_GT(stats.wire_bytes_sent, 0u);
    grid.reset_stats();
    EXPECT_EQ(grid.total_stats().all_reduce_calls, 0u);
  });
}

}  // namespace
}  // namespace axonn::core
