// Threaded GEMM concurrent with live comm-progress lanes (DESIGN.md §13).
//
// The worst concurrency mix the runtime supports: every rank thread fans its
// tiled GEMMs out over a WorkerTeam while the §12 overlap engine's priority
// lanes are simultaneously gathering prefetched weights (OAG), reduce-
// scattering weight grads (ORS) and all-reducing input grads (OAR). The pool
// lanes touch only pack buffers and disjoint C tiles; the comm lanes touch
// only comm buffers — so under ThreadSanitizer (`ctest -L tsan` in an
// AXONN_SANITIZE=thread tree) this must be race-free, and because both
// threading and overlap are bitwise-neutral individually, the combined run
// must reproduce the serial non-overlapped output exactly.

#include <gtest/gtest.h>

#include "axonn/comm/thread_comm.hpp"
#include "axonn/core/mlp.hpp"
#include "axonn/tensor/gemm_dispatch.hpp"

namespace axonn::core {
namespace {

constexpr std::uint64_t kSeed = 777;
const std::vector<std::size_t> kDims{12, 16, 8};
constexpr std::size_t kRows = 8;

Matrix make_input(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  return Matrix::randn(rows, cols, rng);
}

TEST(GemmCommOverlapTest, ThreadedGemmWithActiveCommLanesStaysBitwise) {
  const Matrix full_input = make_input(kRows, kDims.front(), 31);
  const Matrix full_dout = make_input(kRows, kDims.back(), 32);
  Matrix serial_out, threaded_out;
  for (int pass = 0; pass < 2; ++pass) {
    const bool threaded = pass == 1;
    comm::WorldOptions world_options;
    // Pass 1: two worker lanes per rank (set through the world knob, the
    // production path) AND every overlap lane live at once.
    world_options.gemm_threads = threaded ? 2 : 1;
    comm::run_ranks(
        8,
        [&](comm::Communicator& world) {
          Grid4D grid(world, sim::GridShape{2, 2, 2, 1});
          MLPOptions options;
          options.gemm_backend = GemmBackend::kTiled;
          options.overlap_input_grad_all_reduce = threaded;
          options.overlap_weight_grad_reduce_scatter = threaded;
          options.overlap_weight_all_gather = threaded;
          TensorParallelMLP mlp(grid, kDims, kSeed, options);
          const Matrix out = mlp.forward(mlp.scatter_input(full_input));
          const auto& last = mlp.layer(1);
          mlp.backward(full_dout.block(last.input_row_range(kRows),
                                       last.output_col_range()));
          mlp.sync_gradients_data_parallel();
          if (world.rank() == 0) {
            (threaded ? threaded_out : serial_out) = out;
          }
        },
        world_options);
  }
  set_gemm_threads(0);  // the world knob writes the process-global budget
  EXPECT_EQ(Matrix::max_abs_diff(serial_out, threaded_out), 0.0f);
}

}  // namespace
}  // namespace axonn::core
