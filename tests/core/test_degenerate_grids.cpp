// §V-A equivalence claims: the 4D algorithm reduces to known parallel
// training algorithms on degenerate grids. Verified two ways: (a) the
// communication *pattern* — which process groups move bytes — matches the
// named algorithm; (b) numerics still match serial execution (covered more
// broadly in test_fc_layer.cpp).

#include <gtest/gtest.h>

#include "axonn/comm/thread_comm.hpp"
#include "axonn/core/fc_layer.hpp"

namespace axonn::core {
namespace {

constexpr std::size_t kRows = 8;
constexpr std::size_t kIn = 12;
constexpr std::size_t kOut = 8;

struct Traffic {
  std::uint64_t x = 0, y = 0, z = 0, data = 0;
};

// Runs fwd+bwd(+DP sync) of one FC layer on `shape` and reports which
// dimensions moved bytes.
Traffic measure_traffic(const sim::GridShape& shape) {
  Traffic traffic;
  comm::run_ranks(static_cast<int>(shape.total()), [&](comm::Communicator&
                                                           world) {
    Grid4D grid(world, shape);
    TensorParallelFC fc(grid, kIn, kOut, /*seed=*/5);
    Rng rng(9);
    const Matrix input = Matrix::randn(kRows, kIn, rng);
    const Matrix dout_full = Matrix::randn(kRows, kOut, rng);
    grid.reset_stats();
    fc.forward(fc.scatter_input(input));
    fc.backward(dout_full.block(fc.input_row_range(kRows),
                                fc.output_col_range()));
    fc.finish_gradients();
    if (shape.gdata > 1) {
      Matrix& g = fc.mutable_weight_grad_shard();
      grid.data_comm().all_reduce(std::span<float>(g.storage()),
                                  comm::ReduceOp::kSum);
    }
    if (world.rank() == 0) {
      traffic.x = grid.x_comm().stats().wire_bytes_sent;
      traffic.y = grid.y_comm().stats().wire_bytes_sent;
      traffic.z = grid.z_comm().stats().wire_bytes_sent;
      traffic.data = grid.data_comm().stats().wire_bytes_sent;
    }
  });
  return traffic;
}

TEST(DegenerateGridTest, OnlyZReducesToFSDP) {
  // FSDP/ZeRO-3: parameters sharded, gathered for compute, gradients
  // reduce-scattered — all traffic on the Z groups, none on X/Y/data.
  const Traffic t = measure_traffic(sim::fsdp_grid(4));
  EXPECT_EQ(t.x, 0u);
  EXPECT_EQ(t.y, 0u);
  EXPECT_GT(t.z, 0u);
  EXPECT_EQ(t.data, 0u);
}

TEST(DegenerateGridTest, ZPlusDataReducesToHybridShardedDP) {
  // ZeRO++/hybrid-sharded: weight gather/scatter within the shard group,
  // gradient all-reduce across data groups.
  const Traffic t = measure_traffic(sim::hybrid_sharded_grid(2, 2));
  EXPECT_EQ(t.x, 0u);
  EXPECT_EQ(t.y, 0u);
  EXPECT_GT(t.z, 0u);
  EXPECT_GT(t.data, 0u);
}

TEST(DegenerateGridTest, OnlyXReducesToMegatronTensorParallel) {
  // Megatron-LM 1D TP: no weight gathers or reduce-scatters (weights are
  // fully resident); activations all-reduced across the tensor group.
  const Traffic t = measure_traffic(sim::megatron_grid(4, 1));
  EXPECT_GT(t.x, 0u);
  EXPECT_EQ(t.y, 0u);
  EXPECT_EQ(t.z, 0u);
  EXPECT_EQ(t.data, 0u);
}

TEST(DegenerateGridTest, PureDataParallelMovesOnlyGradients) {
  const Traffic t = measure_traffic(sim::pure_data_parallel_grid(4));
  EXPECT_EQ(t.x, 0u);
  EXPECT_EQ(t.y, 0u);
  EXPECT_EQ(t.z, 0u);
  EXPECT_GT(t.data, 0u);
}

TEST(DegenerateGridTest, Full4DMovesOnEveryDimension) {
  const Traffic t = measure_traffic(sim::GridShape{2, 2, 2, 2});
  EXPECT_GT(t.x, 0u);
  EXPECT_GT(t.y, 0u);
  EXPECT_GT(t.z, 0u);
  EXPECT_GT(t.data, 0u);
}

TEST(DegenerateGridTest, MegatronTrafficIsActivationSized) {
  // In the X-only reduction with an untransposed layer (a column-parallel
  // Megatron layer), the forward needs no reduction (the contraction
  // dimension is unsplit); the only X traffic is the backward input-gradient
  // all-reduce of the full (m x k) activation gradient: ring factor
  // 2*(p-1)/p, fp32 on the wire.
  const Traffic t = measure_traffic(sim::megatron_grid(4, 1));
  const double ring = 2.0 * 3.0 / 4.0;
  const double bwd_bytes = ring * kRows * kIn * 4.0;
  EXPECT_DOUBLE_EQ(static_cast<double>(t.x), bwd_bytes);
}

}  // namespace
}  // namespace axonn::core
