// Multi-layer networks: the 'transpose' chaining trick, OAG prefetching,
// data parallelism, and end-to-end training on the 4D engine.

#include "axonn/core/mlp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "axonn/comm/thread_comm.hpp"
#include "axonn/tensor/ops.hpp"

namespace axonn::core {
namespace {

constexpr std::uint64_t kSeed = 777;
const std::vector<std::size_t> kDims{12, 16, 8};
constexpr std::size_t kRows = 8;

// Serial reference MLP sharing the layer seeds (hash_combine(seed, i)).
struct SerialMLP {
  std::vector<Matrix> weights;
  std::vector<Matrix> pre_acts;
  std::vector<Matrix> inputs;

  explicit SerialMLP(const std::vector<std::size_t>& dims, std::uint64_t seed) {
    for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
      Rng rng(hash_combine(seed, i));
      weights.push_back(
          Matrix::randn(dims[i], dims[i + 1], rng, 0.0f, 0.02f));
    }
  }

  Matrix forward(const Matrix& x) {
    inputs.assign(weights.size(), Matrix());
    pre_acts.assign(weights.size(), Matrix());
    Matrix act = x;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      inputs[i] = act;
      Matrix out = gemm(GemmMode::kNN, act, weights[i]);
      if (i + 1 < weights.size()) {
        pre_acts[i] = out;
        act = gelu(out);
      } else {
        act = std::move(out);
      }
    }
    return act;
  }

  // Returns dX; fills dws.
  Matrix backward(const Matrix& dout, std::vector<Matrix>& dws) {
    dws.assign(weights.size(), Matrix());
    Matrix grad = dout;
    for (std::size_t idx = weights.size(); idx-- > 0;) {
      if (idx + 1 < weights.size()) {
        grad = gelu_backward(grad, pre_acts[idx]);
      }
      dws[idx] = gemm(GemmMode::kTN, inputs[idx], grad);
      grad = gemm(GemmMode::kNT, grad, weights[idx]);
    }
    return grad;
  }
};

Matrix make_input(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  return Matrix::randn(rows, cols, rng);
}

TEST(MLPTest, TwoLayerForwardMatchesSerialOn3DGrid) {
  const Matrix full_input = make_input(kRows, kDims.front(), 31);
  SerialMLP ref(kDims, kSeed);
  const Matrix o_ref = ref.forward(full_input);

  comm::run_ranks(8, [&](comm::Communicator& world) {
    Grid4D grid(world, sim::GridShape{2, 2, 2, 1});
    TensorParallelMLP mlp(grid, kDims, kSeed);
    const Matrix out = mlp.forward(mlp.scatter_input(full_input));
    // Final layer (index 1) is transposed: output cols split over Y.
    const auto& last = mlp.layer(1);
    const Matrix expected = o_ref.block(last.input_row_range(kRows),
                                        last.output_col_range());
    EXPECT_LT(Matrix::max_abs_diff(out, expected), 5e-4f);
  });
}

TEST(MLPTest, BackwardMatchesSerialGradients) {
  const Matrix full_input = make_input(kRows, kDims.front(), 31);
  const Matrix full_dout = make_input(kRows, kDims.back(), 32);
  SerialMLP ref(kDims, kSeed);
  ref.forward(full_input);
  std::vector<Matrix> dws;
  const Matrix dx_ref = ref.backward(full_dout, dws);

  comm::run_ranks(8, [&](comm::Communicator& world) {
    Grid4D grid(world, sim::GridShape{2, 2, 2, 1});
    TensorParallelMLP mlp(grid, kDims, kSeed);
    mlp.forward(mlp.scatter_input(full_input));
    const auto& last = mlp.layer(1);
    const Matrix dout_local =
        full_dout.block(last.input_row_range(kRows), last.output_col_range());
    const Matrix dx = mlp.backward(dout_local);
    mlp.sync_gradients_data_parallel();

    const auto& first = mlp.layer(0);
    const Matrix dx_expected =
        dx_ref.block(first.input_row_range(kRows), first.input_col_range());
    EXPECT_LT(Matrix::max_abs_diff(dx, dx_expected), 5e-4f);

    for (std::size_t i = 0; i < 2; ++i) {
      const auto& layer = mlp.layer(i);
      const Matrix dw_block =
          dws[i].block(layer.input_col_range(), layer.output_col_range());
      const Range z_rows = chunk_range(dw_block.rows(), 2,
                                       static_cast<std::size_t>(grid.z()));
      const Matrix expected = dw_block.block(z_rows, Range{0, dw_block.cols()});
      EXPECT_LT(Matrix::max_abs_diff(layer.weight_grad_shard(), expected),
                5e-4f)
          << "layer " << i;
    }
  });
}

TEST(MLPTest, AllOverlapsPreserveNumericsExactly) {
  const Matrix full_input = make_input(kRows, kDims.front(), 31);
  const Matrix full_dout = make_input(kRows, kDims.back(), 32);
  Matrix plain_out, overlapped_out;
  for (int pass = 0; pass < 2; ++pass) {
    const bool overlapped = pass == 1;
    comm::run_ranks(8, [&](comm::Communicator& world) {
      Grid4D grid(world, sim::GridShape{2, 2, 2, 1});
      MLPOptions options;
      options.overlap_input_grad_all_reduce = overlapped;
      options.overlap_weight_grad_reduce_scatter = overlapped;
      options.overlap_weight_all_gather = overlapped;
      TensorParallelMLP mlp(grid, kDims, kSeed, options);
      const Matrix out = mlp.forward(mlp.scatter_input(full_input));
      const auto& last = mlp.layer(1);
      mlp.backward(full_dout.block(last.input_row_range(kRows),
                                   last.output_col_range()));
      mlp.sync_gradients_data_parallel();
      if (world.rank() == 0) {
        (overlapped ? overlapped_out : plain_out) = out;
      }
    });
  }
  EXPECT_EQ(Matrix::max_abs_diff(plain_out, overlapped_out), 0.0f);
}

TEST(MLPTest, DataParallelGradientEqualsFullBatchGradient) {
  // 2 data groups, each with half the batch; after the data-parallel
  // all-reduce (averaged), gradients must equal the serial full-batch mean.
  const std::size_t rows = 8;
  const Matrix full_input = make_input(rows, kDims.front(), 41);
  const Matrix full_dout = make_input(rows, kDims.back(), 42);
  SerialMLP ref(kDims, kSeed);
  ref.forward(full_input);
  std::vector<Matrix> dws;
  ref.backward(full_dout, dws);

  comm::run_ranks(8, [&](comm::Communicator& world) {
    Grid4D grid(world, sim::GridShape{2, 2, 1, 2});
    TensorParallelMLP mlp(grid, kDims, kSeed);
    // Each data group takes its half of the batch rows.
    const Range group_rows = chunk_range(rows, 2, static_cast<std::size_t>(grid.d()));
    const Matrix group_input =
        full_input.block(group_rows, Range{0, kDims.front()});
    const Matrix group_dout =
        full_dout.block(group_rows, Range{0, kDims.back()});

    mlp.forward(mlp.scatter_input(group_input));
    const auto& last = mlp.layer(1);
    mlp.backward(group_dout.block(last.input_row_range(group_rows.size()),
                                  last.output_col_range()));
    mlp.sync_gradients_data_parallel();

    for (std::size_t i = 0; i < 2; ++i) {
      const auto& layer = mlp.layer(i);
      // Serial gradient uses the whole batch; DP averaged over 2 groups, so
      // compare against dws/2 (each group's gradient is a half-batch sum).
      Matrix expected_full =
          dws[i].block(layer.input_col_range(), layer.output_col_range());
      expected_full.scale_inplace(0.5f);
      const Range z_rows =
          chunk_range(expected_full.rows(), 1, 0);  // gz == 1
      const Matrix expected =
          expected_full.block(z_rows, Range{0, expected_full.cols()});
      EXPECT_LT(Matrix::max_abs_diff(layer.weight_grad_shard(), expected),
                5e-4f);
    }
  });
}

TEST(MLPTest, TrainingReducesLossOn4DGrid) {
  // Full 4D: 2x2x2 tensor grid x 2 data groups = 16 ranks, regression onto
  // a fixed target. Loss must drop monotonically-ish under SGD.
  const std::size_t rows = 8;
  const Matrix inputs = make_input(2 * rows, kDims.front(), 51);
  const Matrix targets = make_input(2 * rows, kDims.back(), 52);

  comm::run_ranks(16, [&](comm::Communicator& world) {
    Grid4D grid(world, sim::GridShape{2, 2, 2, 2});
    MLPOptions options;
    options.overlap_weight_all_gather = true;
    options.overlap_input_grad_all_reduce = true;
    options.overlap_weight_grad_reduce_scatter = true;
    TensorParallelMLP mlp(grid, kDims, kSeed, options);

    const Range group_rows =
        chunk_range(2 * rows, 2, static_cast<std::size_t>(grid.d()));
    const Matrix group_input =
        inputs.block(group_rows, Range{0, kDims.front()});
    const Matrix group_target =
        targets.block(group_rows, Range{0, kDims.back()});

    float first_loss = 0.0f, last_loss = 0.0f;
    for (int step = 0; step < 40; ++step) {
      mlp.zero_grad();
      const Matrix out = mlp.forward(mlp.scatter_input(group_input));
      const auto& last = mlp.layer(1);
      const Matrix target_local = group_target.block(
          last.input_row_range(group_rows.size()), last.output_col_range());
      // L = 0.5 ||out - target||^2 on local block; dL/dout = out - target.
      Matrix diff = out;
      diff.axpy_inplace(-1.0f, target_local);
      float local_sq = 0.0f;
      for (std::size_t i = 0; i < diff.size(); ++i) {
        local_sq += diff.data()[i] * diff.data()[i];
      }
      // Aggregate the loss across the world for reporting.
      std::vector<float> loss_buf{local_sq};
      world.all_reduce(loss_buf, comm::ReduceOp::kSum);
      // Output blocks are replicated across the non-column dims; dividing by
      // the replication factor (gx for a transposed last layer) gives the
      // true sum, but a consistent scale suffices for a decreasing check.
      const float loss = loss_buf[0];
      if (step == 0) first_loss = loss;
      last_loss = loss;

      mlp.backward(diff);
      mlp.sync_gradients_data_parallel();
      mlp.apply_sgd(0.08f);
    }
    EXPECT_LT(last_loss, first_loss * 0.6f);
  });
}

TEST(MLPTest, CommModelCheckerValidatesFullIterations) {
  // validate_comm_model opens an Eq. 1-5 window per gradient step (forward
  // -> sync_gradients_data_parallel) and compares against the instrumented
  // wire bytes — on a Y x Z x data grid with every overlap on, so OAG
  // prefetches, deferred reduce-scatters and the Eq. 5 data-parallel
  // all-reduce all land inside the window they were predicted for.
  const std::size_t rows = 12;
  const std::vector<std::size_t> dims{16, 24, 16};
  const Matrix full_input = make_input(rows, dims.front(), 61);
  const Matrix full_dout = make_input(rows, dims.back(), 62);

  comm::run_ranks(8, [&](comm::Communicator& world) {
    Grid4D grid(world, sim::GridShape{1, 2, 2, 2});
    MLPOptions options;
    options.overlap_input_grad_all_reduce = true;
    options.overlap_weight_grad_reduce_scatter = true;
    options.overlap_weight_all_gather = true;
    options.validate_comm_model = true;
    options.comm_model_tolerance = 1e-6;
    TensorParallelMLP mlp(grid, dims, kSeed, options);
    ASSERT_NE(mlp.comm_checker(), nullptr);

    const Range group_rows =
        chunk_range(rows, 2, static_cast<std::size_t>(grid.d()));
    const Matrix group_input =
        full_input.block(group_rows, Range{0, dims.front()});
    const Matrix group_dout =
        full_dout.block(group_rows, Range{0, dims.back()});

    for (int step = 0; step < 2; ++step) {
      mlp.zero_grad();
      mlp.forward(mlp.scatter_input(group_input));
      const auto& last = mlp.layer(1);
      mlp.backward(group_dout.block(
          last.input_row_range(group_rows.size()), last.output_col_range()));
      mlp.sync_gradients_data_parallel();

      const auto& result = mlp.comm_checker()->last_result();
      EXPECT_TRUE(result.ok)
          << "step " << step << ": worst rel error " << result.worst_rel_error;
      EXPECT_GT(result.measured.total(), 0.0);
      EXPECT_GT(result.predicted.data, 0.0) << "Eq. 5 must be exercised";
      EXPECT_GT(result.predicted.z, 0.0);

      // Weight updates invalidate the gathered-weight caches, so the next
      // iteration's predicted all-gathers really happen.
      mlp.apply_sgd(0.05f);
    }
  });
}

TEST(MLPTest, DeepStackAlternatesTransposition) {
  comm::run_ranks(4, [](comm::Communicator& world) {
    Grid4D grid(world, sim::GridShape{2, 2, 1, 1});
    TensorParallelMLP mlp(grid, {8, 8, 8, 8, 8}, kSeed);
    ASSERT_EQ(mlp.num_layers(), 4u);
    EXPECT_FALSE(mlp.layer(0).options().transposed);
    EXPECT_TRUE(mlp.layer(1).options().transposed);
    EXPECT_FALSE(mlp.layer(2).options().transposed);
    EXPECT_TRUE(mlp.layer(3).options().transposed);
  });
}

TEST(MLPTest, SingleRankDegeneratesToSerial) {
  const Matrix full_input = make_input(kRows, kDims.front(), 31);
  SerialMLP ref(kDims, kSeed);
  const Matrix o_ref = ref.forward(full_input);
  comm::run_ranks(1, [&](comm::Communicator& world) {
    Grid4D grid(world, sim::GridShape{1, 1, 1, 1});
    TensorParallelMLP mlp(grid, kDims, kSeed);
    const Matrix out = mlp.forward(mlp.scatter_input(full_input));
    EXPECT_LT(Matrix::max_abs_diff(out, o_ref), 1e-5f);
  });
}

}  // namespace
}  // namespace axonn::core
