// Equivalence of Algorithm 1 with serial execution, across grid shapes —
// the central correctness claim of the 4D algorithm (§V-A).

#include "axonn/core/fc_layer.hpp"

#include <gtest/gtest.h>

#include <span>

#include "axonn/comm/thread_comm.hpp"
#include "axonn/core/comm_check.hpp"
#include "axonn/perf/comm_model.hpp"

namespace axonn::core {
namespace {

constexpr std::uint64_t kSeed = 1234;
constexpr std::size_t kRows = 12;   // group batch rows
constexpr std::size_t kIn = 16;
constexpr std::size_t kOut = 20;

// The exact full weight the layer constructs internally.
Matrix reference_weight(std::size_t in, std::size_t out, float init_std) {
  Rng rng(kSeed);
  return Matrix::randn(in, out, rng, 0.0f, init_std);
}

Matrix reference_input() {
  Rng rng(99);
  return Matrix::randn(kRows, kIn, rng);
}

Matrix reference_grad_output() {
  Rng rng(55);
  return Matrix::randn(kRows, kOut, rng);
}

struct GridCase {
  int gx, gy, gz;
  bool transposed;
};

class FCEquivalence : public ::testing::TestWithParam<GridCase> {};

TEST_P(FCEquivalence, ForwardAndBackwardMatchSerial) {
  const GridCase param = GetParam();
  const sim::GridShape shape{param.gx, param.gy, param.gz, 1};
  const Matrix full_input = reference_input();
  const Matrix full_dout = reference_grad_output();
  const Matrix w = reference_weight(kIn, kOut, 0.02f);

  // Serial references.
  const Matrix o_ref = gemm(GemmMode::kNN, full_input, w);
  const Matrix di_ref = gemm(GemmMode::kNT, full_dout, w);
  const Matrix dw_ref = gemm(GemmMode::kTN, full_input, full_dout);

  comm::run_ranks(static_cast<int>(shape.total()), [&](comm::Communicator&
                                                           world) {
    Grid4D grid(world, shape);
    FCOptions options;
    options.transposed = param.transposed;
    TensorParallelFC fc(grid, kIn, kOut, kSeed, options);

    const Matrix input_local = fc.scatter_input(full_input);
    const Matrix out_local = fc.forward(input_local);

    // The local output must equal the corresponding block of the serial
    // output: rows by Z coordinate, columns by the layer's column group.
    const Range row_range = fc.input_row_range(kRows);
    const Matrix expected_out = o_ref.block(row_range, fc.output_col_range());
    EXPECT_LT(Matrix::max_abs_diff(out_local, expected_out), 2e-4f);

    // Backward.
    const Matrix dout_local =
        full_dout.block(row_range, fc.output_col_range());
    const Matrix din_local = fc.backward(dout_local);
    fc.finish_gradients();

    const Matrix expected_din =
        di_ref.block(row_range, fc.input_col_range());
    EXPECT_LT(Matrix::max_abs_diff(din_local, expected_din), 2e-4f);

    // Weight gradient: this rank's Z-shard of its (row, col) block of dW.
    const Matrix dw_block =
        dw_ref.block(fc.input_col_range(), fc.output_col_range());
    const Range z_rows =
        chunk_range(dw_block.rows(), static_cast<std::size_t>(shape.gz),
                    static_cast<std::size_t>(grid.z()));
    const Matrix expected_dw =
        dw_block.block(z_rows, Range{0, dw_block.cols()});
    EXPECT_LT(Matrix::max_abs_diff(fc.weight_grad_shard(), expected_dw), 2e-4f);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Grids, FCEquivalence,
    ::testing::Values(GridCase{1, 1, 1, false},  // serial
                      GridCase{2, 1, 1, false},  // Megatron-like (X only)
                      GridCase{1, 2, 1, false},  // Y only
                      GridCase{1, 1, 2, false},  // FSDP/ZeRO-3-like (Z only)
                      GridCase{1, 1, 4, false},  // deeper Z sharding
                      GridCase{2, 2, 1, false},  // 2D tensor parallel
                      GridCase{2, 1, 2, false}, GridCase{1, 2, 2, false},
                      GridCase{2, 2, 2, false},  // full 3D
                      GridCase{2, 2, 2, true},   // transposed roles
                      GridCase{4, 2, 1, false},  // non-square grid
                      GridCase{1, 4, 2, true}));

TEST(FCLayerTest, OverlapModesAreNumericallyIdentical) {
  const Matrix full_input = reference_input();
  const Matrix full_dout = reference_grad_output();
  const sim::GridShape shape{2, 1, 2, 1};

  Matrix grad_sync, grad_async, din_sync, din_async;
  for (int pass = 0; pass < 2; ++pass) {
    const bool async = pass == 1;
    comm::run_ranks(4, [&](comm::Communicator& world) {
      Grid4D grid(world, shape);
      FCOptions options;
      options.overlap_input_grad_all_reduce = async;
      options.overlap_weight_grad_reduce_scatter = async;
      TensorParallelFC fc(grid, kIn, kOut, kSeed, options);
      if (async) fc.begin_weight_gather();  // OAG prefetch

      const Matrix input_local = fc.scatter_input(full_input);
      const Matrix out = fc.forward(input_local);
      const Matrix dout_local = full_dout.block(fc.input_row_range(kRows),
                                                fc.output_col_range());
      const Matrix din = fc.backward(dout_local);
      fc.finish_gradients();
      if (world.rank() == 0) {
        if (async) {
          grad_async = fc.weight_grad_shard();
          din_async = din;
        } else {
          grad_sync = fc.weight_grad_shard();
          din_sync = din;
        }
      }
    });
  }
  EXPECT_EQ(Matrix::max_abs_diff(grad_sync, grad_async), 0.0f);
  EXPECT_EQ(Matrix::max_abs_diff(din_sync, din_async), 0.0f);
}

TEST(FCLayerTest, GradientsAccumulateAcrossMicrobatches) {
  comm::run_ranks(4, [&](comm::Communicator& world) {
    Grid4D grid(world, sim::GridShape{2, 1, 2, 1});
    TensorParallelFC fc(grid, kIn, kOut, kSeed);
    const Matrix full_input = reference_input();
    const Matrix full_dout = reference_grad_output();
    const Matrix input_local = fc.scatter_input(full_input);
    const Matrix dout_local = full_dout.block(fc.input_row_range(kRows),
                                              fc.output_col_range());
    fc.forward(input_local);
    fc.backward(dout_local);
    const Matrix after_one = fc.weight_grad_shard();
    fc.forward(input_local);
    fc.backward(dout_local);
    Matrix doubled = after_one;
    doubled.scale_inplace(2.0f);
    EXPECT_LT(Matrix::max_abs_diff(fc.weight_grad_shard(), doubled), 1e-5f);
    fc.zero_grad();
    EXPECT_EQ(fc.weight_grad_shard().max_abs(), 0.0f);
  });
}

TEST(FCLayerTest, SgdStepMatchesSerial) {
  const float lr = 0.1f;
  const Matrix full_input = reference_input();
  const Matrix full_dout = reference_grad_output();
  // Serial update: W' = W - lr * I^T dO.
  Matrix w_ref = reference_weight(kIn, kOut, 0.02f);
  w_ref.axpy_inplace(-lr, gemm(GemmMode::kTN, full_input, full_dout));

  comm::run_ranks(8, [&](comm::Communicator& world) {
    Grid4D grid(world, sim::GridShape{2, 2, 2, 1});
    TensorParallelFC fc(grid, kIn, kOut, kSeed);
    fc.forward(fc.scatter_input(full_input));
    fc.backward(full_dout.block(fc.input_row_range(kRows),
                                fc.output_col_range()));
    fc.apply_sgd(lr);
    const Matrix block = fc.gather_weight_block();
    const Matrix expected =
        w_ref.block(fc.input_col_range(), fc.output_col_range());
    EXPECT_LT(Matrix::max_abs_diff(block, expected), 1e-5f);
  });
}

TEST(FCLayerTest, MixedPrecisionStaysCloseToFp32) {
  const Matrix full_input = reference_input();
  comm::run_ranks(2, [&](comm::Communicator& world) {
    Grid4D grid(world, sim::GridShape{2, 1, 1, 1});
    FCOptions fp32;
    FCOptions bf16;
    bf16.mixed_precision = true;
    TensorParallelFC exact(grid, kIn, kOut, kSeed, fp32);
    TensorParallelFC rounded(grid, kIn, kOut, kSeed, bf16);
    const Matrix a = exact.forward(exact.scatter_input(full_input));
    const Matrix b = rounded.forward(rounded.scatter_input(full_input));
    const float diff = Matrix::max_abs_diff(a, b);
    EXPECT_GT(diff, 0.0f);     // bf16 is lossy...
    EXPECT_LT(diff, 5e-2f);    // ...but bounded
  });
}

TEST(FCLayerTest, WireBytesMatchPerfModelEquations) {
  // The bytes ThreadComm actually moves for the Z all-gather and Z
  // reduce-scatter must equal Eqs. 1-2 of the performance model.
  const sim::GridShape shape{2, 1, 2, 1};
  comm::run_ranks(4, [&](comm::Communicator& world) {
    Grid4D grid(world, shape);
    TensorParallelFC fc(grid, kIn, kOut, kSeed);
    grid.reset_stats();
    fc.forward(fc.scatter_input(reference_input()));
    const auto z_after_fwd = grid.z_comm().stats().wire_bytes_sent;

    // The model counts bf16 (2-byte) elements; ThreadComm moves fp32
    // (4-byte) floats — same element counts, 2x the bytes.
    constexpr double kElemRatio = 4.0 / 2.0;
    perf::DimensionBandwidths beta{1, 1, 1, 1};
    const auto pred = perf::predict_layer(kRows, kIn, kOut, false, shape, beta);
    EXPECT_EQ(static_cast<double>(z_after_fwd), pred.bytes_ag_z * kElemRatio);

    fc.backward(Matrix::zeros(fc.input_row_range(kRows).size(), fc.out_local()));
    fc.finish_gradients();
    const auto z_total = grid.z_comm().stats().wire_bytes_sent;
    EXPECT_EQ(static_cast<double>(z_total - z_after_fwd),
              pred.bytes_rs_z * kElemRatio);

    // Eq. 4: the backward all-reduce over the column (X) group.
    const auto x_bytes = grid.x_comm().stats().wire_bytes_sent;
    EXPECT_EQ(static_cast<double>(x_bytes), pred.bytes_ar_bwd * kElemRatio);
  });
}

TEST(FCLayerTest, KernelTunerRunsInTrainingHotPath) {
  // FCOptions::kernel_tuning must route the real forward/backward GEMMs
  // through the tuner. At 320x320 the semantic-NT dI GEMM (dO x W^T) is the
  // paper's §V-C scenario: the NT kernel's inner loop strides through W, so
  // the tuner must not stay on the strided reference-NT variant — either a
  // transposed-copy reference variant or the tiled backend (which resolves
  // the transpose at pack time) must win. Reference-backend winners are
  // bit-identical to the untuned kernel; a tiled winner regroups the
  // fp32 accumulation, so outputs match within tolerance.
  const std::size_t in = 320, out = 320, rows = 32;
  Rng rng_i(11), rng_d(12);
  const Matrix full_input = Matrix::randn(rows, in, rng_i);
  const Matrix full_dout = Matrix::randn(rows, out, rng_d);

  comm::run_ranks(1, [&](comm::Communicator& world) {
    Grid4D grid(world, sim::GridShape{1, 1, 1, 1});
    FCOptions tuned_options;
    tuned_options.kernel_tuning = true;
    tuned_options.kernel_tuner_repeats = 2;
    TensorParallelFC tuned(grid, in, out, kSeed, tuned_options);
    TensorParallelFC plain(grid, in, out, kSeed);
    ASSERT_NE(tuned.kernel_tuner(), nullptr);
    EXPECT_EQ(plain.kernel_tuner(), nullptr);

    const Matrix out_tuned = tuned.forward(full_input);
    const Matrix din_tuned = tuned.backward(full_dout);
    tuned.finish_gradients();
    const Matrix out_plain = plain.forward(full_input);
    const Matrix din_plain = plain.backward(full_dout);
    plain.finish_gradients();

    // The training path exercised the tuner: one decision per GEMM shape
    // (NN forward, NT dI, TN dW).
    const auto& decisions = tuned.kernel_tuner()->decisions();
    EXPECT_EQ(decisions.size(), 3u);
    bool saw_nt = false;
    bool all_reference = true;
    for (const auto& [key, choice] : decisions) {
      if (choice.backend != GemmBackend::kReference) all_reference = false;
      if (key.semantic_mode != GemmMode::kNT) continue;
      saw_nt = true;
      EXPECT_TRUE(choice.kernel_mode != GemmMode::kNT ||
                  choice.backend == GemmBackend::kTiled)
          << "at 320x320 some variant must beat the strided reference NT "
             "kernel";
      EXPECT_GT(choice.speedup(), 1.0);
    }
    EXPECT_TRUE(saw_nt) << "backward dI GEMM must reach the tuner";

    // Reference variants are bit-exact; a tiled winner matches within
    // accumulation-order tolerance.
    const float tol = all_reference ? 0.0f : 1e-4f;
    EXPECT_LE(Matrix::max_abs_diff(out_tuned, out_plain), tol);
    EXPECT_LE(Matrix::max_abs_diff(din_tuned, din_plain), tol);
    EXPECT_LE(Matrix::max_abs_diff(tuned.weight_grad_shard(),
                                   plain.weight_grad_shard()),
              tol);
  });
}

TEST(FCLayerTest, TiledBackendMatchesReferenceAndRepacksAfterStep) {
  // With a fixed tiled backend the layer packs W once per gathered block and
  // reuses the panels across the forward (NN) and dI (NT) products. An
  // optimizer step must invalidate the packs along with the gathered-weight
  // cache, or the next iteration would multiply against stale panels — the
  // loop below would then diverge from the reference layer immediately.
  comm::run_ranks(1, [&](comm::Communicator& world) {
    Grid4D grid(world, sim::GridShape{1, 1, 1, 1});
    FCOptions tiled_options;
    tiled_options.gemm_backend = GemmBackend::kTiled;
    TensorParallelFC tiled(grid, kIn, kOut, kSeed, tiled_options);
    TensorParallelFC plain(grid, kIn, kOut, kSeed);
    const Matrix input = reference_input();
    const Matrix dout = reference_grad_output();
    for (int step = 0; step < 3; ++step) {
      const Matrix out_t = tiled.forward(input);
      const Matrix out_p = plain.forward(input);
      EXPECT_LE(Matrix::max_abs_diff(out_t, out_p), 1e-4f) << "step " << step;
      const Matrix din_t = tiled.backward(dout);
      const Matrix din_p = plain.backward(dout);
      tiled.finish_gradients();
      plain.finish_gradients();
      EXPECT_LE(Matrix::max_abs_diff(din_t, din_p), 1e-4f) << "step " << step;
      EXPECT_LE(Matrix::max_abs_diff(tiled.weight_grad_shard(),
                                     plain.weight_grad_shard()),
                1e-4f)
          << "step " << step;
      tiled.apply_sgd(0.05f);
      plain.apply_sgd(0.05f);
      tiled.zero_grad();
      plain.zero_grad();
    }
  });
}

TEST(FCLayerTest, BackwardIssuesNoWeightGather) {
  // Audit of the paper's backward-pass OAG: this runtime retains the
  // gathered weight block across forward+backward (see the backward() doc
  // comment), so the backward pass must not re-issue the Z all-gather — and
  // neither must a second forward while the weights are unchanged.
  comm::run_ranks(2, [&](comm::Communicator& world) {
    Grid4D grid(world, sim::GridShape{1, 1, 2, 1});
    TensorParallelFC fc(grid, kIn, kOut, kSeed);
    const Matrix input_local = fc.scatter_input(reference_input());
    const Matrix dout_local = reference_grad_output().block(
        fc.input_row_range(kRows), fc.output_col_range());

    fc.forward(input_local);
    const auto after_fwd = grid.z_comm().stats().all_gather_calls;
    EXPECT_GT(after_fwd, 0u);

    fc.backward(dout_local);
    fc.finish_gradients();
    EXPECT_EQ(grid.z_comm().stats().all_gather_calls, after_fwd)
        << "backward must reuse the cached weight block";

    fc.forward(input_local);
    EXPECT_EQ(grid.z_comm().stats().all_gather_calls, after_fwd)
        << "unchanged weights must not be re-gathered";

    // A weight update invalidates the cache; the next forward re-gathers.
    fc.apply_sgd(0.1f);
    fc.forward(input_local);
    EXPECT_GT(grid.z_comm().stats().all_gather_calls, after_fwd);
  });
}

TEST(FCLayerTest, PredictedWireBytesMatchInstrumentedOnFullGrid) {
  // Eqs. 1-5 vs the instrumented runtime for one fwd+bwd on the full 3D
  // grid, both weight decompositions, via the CommModelChecker machinery.
  for (const bool transposed : {false, true}) {
    comm::run_ranks(8, [&](comm::Communicator& world) {
      Grid4D grid(world, sim::GridShape{2, 2, 2, 1});
      FCOptions options;
      options.transposed = transposed;
      TensorParallelFC fc(grid, kIn, kOut, kSeed, options);
      CommModelChecker checker(grid, /*tolerance=*/1e-6);

      checker.begin();
      fc.forward(fc.scatter_input(reference_input()));
      fc.backward(reference_grad_output().block(fc.input_row_range(kRows),
                                                fc.output_col_range()));
      fc.finish_gradients();
      checker.expect(predicted_layer_wire_bytes(
          fc, kRows, /*include_data_grad_sync=*/false));
      const auto result = checker.finish();

      EXPECT_TRUE(result.ok) << "worst rel error " << result.worst_rel_error
                             << " (transposed=" << transposed << ")";
      EXPECT_LT(result.worst_rel_error, 1e-9);
      EXPECT_GT(result.measured.total(), 0.0);
      EXPECT_GT(result.predicted.z, 0.0);
      // The forward all-reduce runs over the row group: Y normally, X when
      // transposed.
      EXPECT_GT(transposed ? result.measured.x : result.measured.y, 0.0);
    });
  }
}

TEST(FCLayerTest, BackwardWithoutForwardThrows) {
  comm::run_ranks(2, [](comm::Communicator& world) {
    Grid4D grid(world, sim::GridShape{2, 1, 1, 1});
    TensorParallelFC fc(grid, kIn, kOut, kSeed);
    EXPECT_THROW(fc.backward(Matrix(kRows, fc.out_local())), Error);
  });
}

TEST(FCLayerTest, NonDivisibleDimensionsStillExact) {
  // 17 x 13 weights on a 2x2x2 grid: chunk_range gives uneven tiles and the
  // v-collectives must still reconstruct everything exactly.
  const std::size_t in = 17, out = 13, rows = 9;
  Rng rng_i(3), rng_d(4);
  const Matrix full_input = Matrix::randn(rows, in, rng_i);
  const Matrix full_dout = Matrix::randn(rows, out, rng_d);
  const Matrix w = reference_weight(in, out, 0.02f);
  const Matrix o_ref = gemm(GemmMode::kNN, full_input, w);

  comm::run_ranks(8, [&](comm::Communicator& world) {
    Grid4D grid(world, sim::GridShape{2, 2, 2, 1});
    TensorParallelFC fc(grid, in, out, kSeed);
    const Matrix out_local = fc.forward(fc.scatter_input(full_input));
    const Matrix expected =
        o_ref.block(fc.input_row_range(rows), fc.output_col_range());
    EXPECT_LT(Matrix::max_abs_diff(out_local, expected), 2e-4f);
  });
}

}  // namespace
}  // namespace axonn::core
