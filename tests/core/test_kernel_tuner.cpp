#include "axonn/core/kernel_tuner.hpp"

#include <gtest/gtest.h>

#include "axonn/base/error.hpp"
#include "axonn/base/rng.hpp"

namespace axonn::core {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  return Matrix::randn(rows, cols, rng);
}

TEST(KernelTunerTest, AllKernelVariantsComputeTheSameProduct) {
  KernelTuner tuner(1);
  const Matrix a = random_matrix(7, 5, 1);
  const Matrix b = random_matrix(5, 9, 2);
  const Matrix reference = gemm(GemmMode::kNN, a, b);
  // run() must return the correct product regardless of which kernel wins.
  const Matrix tuned = tuner.run(GemmMode::kNN, a, b);
  EXPECT_LT(Matrix::max_abs_diff(tuned, reference), 1e-5f);
}

TEST(KernelTunerTest, SemanticNTAndTNAreCorrect) {
  KernelTuner tuner(1);
  const Matrix a = random_matrix(6, 4, 3);   // used as A in NT: A x B^T
  const Matrix b = random_matrix(8, 4, 4);
  const Matrix nt_ref = gemm(GemmMode::kNT, a, b);
  EXPECT_LT(Matrix::max_abs_diff(tuner.run(GemmMode::kNT, a, b), nt_ref),
            1e-5f);

  const Matrix c = random_matrix(4, 6, 5);   // A^T x B
  const Matrix d = random_matrix(4, 7, 6);
  const Matrix tn_ref = gemm(GemmMode::kTN, c, d);
  EXPECT_LT(Matrix::max_abs_diff(tuner.run(GemmMode::kTN, c, d), tn_ref),
            1e-5f);
}

TEST(KernelTunerTest, DecisionIsCachedPerShape) {
  KernelTuner tuner(1);
  const Matrix a = random_matrix(8, 8, 7);
  const Matrix b = random_matrix(8, 8, 8);
  EXPECT_EQ(tuner.decisions().size(), 0u);
  tuner.run(GemmMode::kNN, a, b);
  EXPECT_EQ(tuner.decisions().size(), 1u);
  tuner.run(GemmMode::kNN, a, b);  // same shape: no re-tuning
  EXPECT_EQ(tuner.decisions().size(), 1u);
  tuner.run(GemmMode::kNT, a, b);  // different semantics: new entry
  EXPECT_EQ(tuner.decisions().size(), 2u);
  const Matrix big = random_matrix(16, 8, 9);
  tuner.run(GemmMode::kNN, big, b);  // different shape: new entry
  EXPECT_EQ(tuner.decisions().size(), 3u);
}

TEST(KernelTunerTest, TuneReportsDefaultAndBestTimes) {
  KernelTuner tuner(2);
  const Matrix a = random_matrix(32, 32, 10);
  const Matrix b = random_matrix(32, 32, 11);
  const auto choice = tuner.tune(GemmMode::kTN, a, b);
  EXPECT_GT(choice.default_seconds, 0.0);
  EXPECT_GT(choice.measured_seconds, 0.0);
  EXPECT_LE(choice.measured_seconds, choice.default_seconds * 1.5);
  EXPECT_GE(choice.speedup(), 0.5);
}

TEST(KernelTunerTest, TTIsRejected) {
  KernelTuner tuner(1);
  const Matrix a = random_matrix(4, 4, 12);
  EXPECT_THROW(tuner.tune(GemmMode::kTT, a, a), Error);
}

TEST(KernelTunerTest, ReportListsDecisions) {
  KernelTuner tuner(1);
  const Matrix a = random_matrix(8, 6, 13);
  const Matrix b = random_matrix(6, 8, 14);
  tuner.run(GemmMode::kNN, a, b);
  const auto lines = tuner.report();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("NN"), std::string::npos);
  EXPECT_NE(lines[0].find("m=8"), std::string::npos);
}

TEST(KernelTunerTest, RectangularShapesAllModes) {
  KernelTuner tuner(1);
  for (GemmMode mode : {GemmMode::kNN, GemmMode::kNT, GemmMode::kTN}) {
    const bool ta = mode == GemmMode::kTN;
    const bool tb = mode == GemmMode::kNT;
    const std::size_t m = 5, k = 11, n = 3;
    const Matrix a = ta ? random_matrix(k, m, 20) : random_matrix(m, k, 20);
    const Matrix b = tb ? random_matrix(n, k, 21) : random_matrix(k, n, 21);
    const Matrix ref = gemm(mode, a, b);
    EXPECT_LT(Matrix::max_abs_diff(tuner.run(mode, a, b), ref), 1e-5f)
        << to_string(mode);
  }
}

}  // namespace
}  // namespace axonn::core
