// End-to-end fault tolerance: training under ChaosComm with an injected rank
// crash restarts, restores the latest fully-valid checkpoint (skipping
// corrupted ones), replays, and finishes with a final loss bit-identical to
// the uninterrupted run.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "axonn/comm/fault.hpp"
#include "axonn/train/checkpoint.hpp"
#include "axonn/train/resilient.hpp"

namespace axonn::train {
namespace {

namespace fs = std::filesystem;

fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / ("axonn_resil_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

ResilientTrainConfig base_config(const fs::path& checkpoint_dir) {
  ResilientTrainConfig config;
  config.model.vocab = 16;
  config.model.max_seq = 16;
  config.model.layers = 1;
  config.model.hidden = 16;
  config.model.heads = 2;
  config.model.seed = 7;
  config.corpus.vocab = 16;
  config.corpus.doc_tokens = 16;
  config.corpus.docs_per_bucket = 2;
  config.grid = sim::GridShape{1, 1, 1, 2};
  config.adam.lr = 5e-3f;
  config.total_steps = 6;
  config.batch_per_rank = 2;
  config.checkpoint_every = 1;
  config.checkpoint_dir = checkpoint_dir.string();
  config.collective_timeout = std::chrono::milliseconds(10000);
  return config;
}

TEST(ResilientTrainingTest, CrashRecoveryIsBitIdentical) {
  // Reference: the same run with no faults injected.
  const auto reference =
      run_resilient_training(base_config(scratch_dir("reference")));
  EXPECT_EQ(reference.restarts, 0);
  EXPECT_EQ(reference.steps_executed, 6u);

  auto config = base_config(scratch_dir("chaos"));
  config.enable_chaos = true;
  config.chaos.seed = 11;
  config.chaos.crash_rank = 1;
  // Deep enough to land mid-training (each step issues one all-reduce per
  // parameter tensor), well before the run's final collective.
  config.chaos.crash_at_collective = 25;

  const auto recovered = run_resilient_training(config);
  EXPECT_EQ(recovered.restarts, 1);
  // checkpoint_every=1, so the restarted attempt resumes from the last
  // completed step: across both attempts rank 0 executes each of the 6
  // steps exactly once — the crashed partial step is not counted.
  EXPECT_EQ(recovered.steps_executed, 6u);
  // Every step checkpoints on both ranks, split across the two attempts.
  EXPECT_EQ(recovered.checkpoints_written, 12u);

  // The recovered run must be indistinguishable from the fault-free one —
  // bit-identical, not just close.
  EXPECT_EQ(recovered.final_loss, reference.final_loss);
}

TEST(ResilientTrainingTest, RestoreSkipsCorruptedNewestCheckpoint) {
  const fs::path dir = scratch_dir("skip_corrupt");
  auto config = base_config(dir);
  config.checkpoint_every = 2;  // checkpoints at steps 2, 4, 6

  const auto first = run_resilient_training(config);

  // Tear the newest checkpoint (step 6) on both ranks and plant a garbage
  // file pair under an even newer step name.
  for (int rank = 0; rank < 2; ++rank) {
    fs::resize_file(dir / checkpoint_filename(6, rank), 10);
    std::ofstream(dir / checkpoint_filename(999, rank), std::ios::binary)
        << "not a checkpoint";
  }

  // The rerun must fall back to step 4 and replay steps 5 and 6, landing on
  // the same final loss.
  const auto second = run_resilient_training(config);
  EXPECT_EQ(second.restarts, 0);
  EXPECT_EQ(second.steps_executed, 2u);
  EXPECT_EQ(second.final_loss, first.final_loss);
}

TEST(ResilientTrainingTest, FreshDirectoryTrainsFromScratch) {
  auto config = base_config(scratch_dir("fresh"));
  config.total_steps = 2;
  const auto result = run_resilient_training(config);
  EXPECT_EQ(result.restarts, 0);
  EXPECT_EQ(result.steps_executed, 2u);
  EXPECT_EQ(result.checkpoints_written, 4u);  // 2 steps x 2 ranks
  EXPECT_GT(result.final_loss, 0.0f);
}

TEST(ResilientTrainingTest, RestartBudgetExhaustionRethrows) {
  auto config = base_config(scratch_dir("budget"));
  config.total_steps = 2;
  config.enable_chaos = true;
  config.chaos.seed = 3;
  // Unrecoverable fault: every collective is corrupted and verification is
  // on, so every attempt (restarts keep corruption armed) dies the same way.
  config.chaos.corrupt_probability = 1.0;
  config.chaos.verify_replicated_results = true;
  config.max_restarts = 1;
  EXPECT_THROW(run_resilient_training(config), comm::DataCorruptionError);
}

}  // namespace
}  // namespace axonn::train
