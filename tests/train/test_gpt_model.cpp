#include "axonn/train/gpt_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "axonn/base/error.hpp"
#include "axonn/comm/thread_comm.hpp"

namespace axonn::train {
namespace {

TinyGPTConfig tiny_config() {
  TinyGPTConfig config;
  config.vocab = 16;
  config.max_seq = 24;
  config.layers = 2;
  config.hidden = 24;
  config.heads = 2;
  config.seed = 42;
  return config;
}

std::vector<TokenSeq> tiny_batch(std::size_t batch, std::size_t len,
                                 std::uint64_t seed, int vocab = 16) {
  Rng rng(seed);
  std::vector<TokenSeq> out(batch);
  for (auto& seq : out) {
    seq.resize(len);
    for (auto& t : seq) t = static_cast<std::int32_t>(rng.uniform_int(vocab));
  }
  return out;
}

TEST(GPTModelTest, ParameterCountMatchesRegisteredParams) {
  comm::run_ranks(1, [](comm::Communicator& world) {
    core::Grid4D grid(world, sim::GridShape{1, 1, 1, 1});
    GPTModel model(grid, tiny_config());
    Adam adam;
    model.register_params(adam);
    EXPECT_EQ(adam.total_parameter_count(), model.parameter_count());
  });
}

TEST(GPTModelTest, LossDecreasesOnFixedBatch) {
  comm::run_ranks(1, [](comm::Communicator& world) {
    core::Grid4D grid(world, sim::GridShape{1, 1, 1, 1});
    GPTModel model(grid, tiny_config());
    Adam adam(AdamConfig{.lr = 5e-3f});
    model.register_params(adam);
    const auto batch = tiny_batch(2, 24, 1);
    float first = 0, last = 0;
    for (int step = 0; step < 25; ++step) {
      model.zero_grad();
      const float loss = model.train_step(batch);
      adam.step();
      if (step == 0) first = loss;
      last = loss;
    }
    EXPECT_LT(last, first * 0.5f);
  });
}

TEST(GPTModelTest, InitialLossNearLogVocab) {
  comm::run_ranks(1, [](comm::Communicator& world) {
    core::Grid4D grid(world, sim::GridShape{1, 1, 1, 1});
    GPTModel model(grid, tiny_config());
    const float loss = model.evaluate_loss(tiny_batch(4, 24, 2));
    EXPECT_NEAR(loss, std::log(16.0f), 0.8f);
  });
}

TEST(GPTModelTest, ZShardingMatchesSerialTraining) {
  // FSDP semantics: 2 Z-ranks each process half the batch; the weight
  // updates must equal single-rank training on the full batch.
  const auto batch = tiny_batch(4, 24, 3);
  float serial_loss_after = 0;
  comm::run_ranks(1, [&](comm::Communicator& world) {
    core::Grid4D grid(world, sim::GridShape{1, 1, 1, 1});
    GPTModel model(grid, tiny_config());
    Adam adam(AdamConfig{.lr = 1e-3f});
    model.register_params(adam);
    for (int step = 0; step < 3; ++step) {
      model.zero_grad();
      model.train_step(batch);
      adam.step();
    }
    serial_loss_after = model.evaluate_loss(batch);
  });

  float sharded_loss_after = 0;
  comm::run_ranks(2, [&](comm::Communicator& world) {
    core::Grid4D grid(world, sim::GridShape{1, 1, 2, 1});
    GPTModel model(grid, tiny_config());
    Adam adam(AdamConfig{.lr = 1e-3f});
    model.register_params(adam);
    // Each Z rank takes its half of the batch.
    const std::vector<TokenSeq> half(
        batch.begin() + grid.z() * 2, batch.begin() + grid.z() * 2 + 2);
    for (int step = 0; step < 3; ++step) {
      model.zero_grad();
      model.train_step(half);
      adam.step();
    }
    // evaluate_loss is collective when gz > 1 (weight all-gathers): every
    // rank must participate.
    const float loss = model.evaluate_loss(batch);
    if (world.rank() == 0) {
      sharded_loss_after = loss;
    }
  });
  EXPECT_NEAR(sharded_loss_after, serial_loss_after, 5e-3f);
}

TEST(GPTModelTest, DataParallelMatchesSerialTraining) {
  const auto batch = tiny_batch(4, 24, 3);
  float serial_loss_after = 0;
  comm::run_ranks(1, [&](comm::Communicator& world) {
    core::Grid4D grid(world, sim::GridShape{1, 1, 1, 1});
    GPTModel model(grid, tiny_config());
    Adam adam(AdamConfig{.lr = 1e-3f});
    model.register_params(adam);
    model.zero_grad();
    model.train_step(batch);
    adam.step();
    serial_loss_after = model.evaluate_loss(batch);
  });

  float dp_loss_after = 0;
  comm::run_ranks(2, [&](comm::Communicator& world) {
    core::Grid4D grid(world, sim::GridShape{1, 1, 1, 2});
    GPTModel model(grid, tiny_config());
    Adam adam(AdamConfig{.lr = 1e-3f});
    model.register_params(adam);
    const std::vector<TokenSeq> shard(
        batch.begin() + grid.d() * 2, batch.begin() + grid.d() * 2 + 2);
    model.zero_grad();
    model.train_step(shard);
    adam.step();
    if (world.rank() == 0) {
      dp_loss_after = model.evaluate_loss(batch);
    }
  });
  EXPECT_NEAR(dp_loss_after, serial_loss_after, 5e-3f);
}

TEST(GPTModelTest, GreedyGenerationDeterministic) {
  comm::run_ranks(1, [](comm::Communicator& world) {
    core::Grid4D grid(world, sim::GridShape{1, 1, 1, 1});
    GPTModel model(grid, tiny_config());
    const TokenSeq prompt{1, 2, 3, 4};
    const TokenSeq a = model.greedy_generate(prompt, 6);
    const TokenSeq b = model.greedy_generate(prompt, 6);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.size(), 10u);
    // The prompt is preserved as a prefix.
    for (std::size_t i = 0; i < prompt.size(); ++i) {
      EXPECT_EQ(a[i], prompt[i]);
    }
  });
}

TEST(GPTModelTest, ExactMatchAgreesWithGreedyGeneration) {
  // The teacher-forced shortcut must decide exactly the same event as
  // actually generating the probe region greedily.
  comm::run_ranks(1, [](comm::Communicator& world) {
    core::Grid4D grid(world, sim::GridShape{1, 1, 1, 1});
    GPTModel model(grid, tiny_config());
    Adam adam(AdamConfig{.lr = 5e-3f});
    model.register_params(adam);
    const auto docs = tiny_batch(3, 20, 9);
    // Train on doc 0 heavily so at least one doc is memorized.
    for (int step = 0; step < 30; ++step) {
      model.zero_grad();
      model.train_step({docs[0]});
      adam.step();
    }
    for (const auto& doc : docs) {
      const int probe = 5;
      const TokenSeq prompt(doc.begin(), doc.end() - probe);
      const TokenSeq generated = model.greedy_generate(prompt, probe);
      EXPECT_EQ(model.exact_match(doc, probe), sequences_equal(generated, doc));
    }
  });
}

TEST(GPTModelTest, ProbeAccuracyBounds) {
  comm::run_ranks(1, [](comm::Communicator& world) {
    core::Grid4D grid(world, sim::GridShape{1, 1, 1, 1});
    GPTModel model(grid, tiny_config());
    const auto docs = tiny_batch(1, 20, 10);
    const double acc = model.probe_accuracy(docs[0], 8);
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 1.0);
    // exact_match true iff accuracy == 1.
    EXPECT_EQ(model.exact_match(docs[0], 8), acc == 1.0);
  });
}

TEST(GPTModelTest, GoldfishMaskReducesTrainedPositions) {
  // With goldfish on, the loss is computed over ~half the targets; training
  // still works and the step runs without error.
  comm::run_ranks(1, [](comm::Communicator& world) {
    core::Grid4D grid(world, sim::GridShape{1, 1, 1, 1});
    GPTModel model(grid, tiny_config());
    Adam adam(AdamConfig{.lr = 5e-3f});
    model.register_params(adam);
    GoldfishConfig goldfish{.k = 2, .h = 5};
    const auto batch = tiny_batch(2, 24, 11);
    float first = 0, last = 0;
    for (int step = 0; step < 20; ++step) {
      model.zero_grad();
      const float loss = model.train_step(batch, &goldfish);
      adam.step();
      if (step == 0) first = loss;
      last = loss;
    }
    EXPECT_LT(last, first);
  });
}

TEST(GPTModelTest, RejectsXYTensorParallelGrids) {
  EXPECT_THROW(
      comm::run_ranks(2,
                      [](comm::Communicator& world) {
                        core::Grid4D grid(world, sim::GridShape{2, 1, 1, 1});
                        GPTModel model(grid, tiny_config());
                      }),
      Error);
}

TEST(GPTModelTest, RaggedBatchThrows) {
  comm::run_ranks(1, [](comm::Communicator& world) {
    core::Grid4D grid(world, sim::GridShape{1, 1, 1, 1});
    GPTModel model(grid, tiny_config());
    std::vector<TokenSeq> ragged{{1, 2, 3}, {1, 2}};
    EXPECT_THROW(model.train_step(ragged), Error);
  });
}

}  // namespace
}  // namespace axonn::train
