// Integration tests of the memorization protocol (fast settings: the full
// calibrated sweep lives in bench_fig10/11).

#include "axonn/train/memorization.hpp"

#include <gtest/gtest.h>

#include "axonn/comm/thread_comm.hpp"

namespace axonn::train {
namespace {

MemorizationConfig fast_config() {
  MemorizationConfig config;
  config.model = memorization_model_zoo()[0].model;  // GPT-XS
  config.warmup_steps = 10;
  config.finalize();
  return config;
}

TEST(MemorizationTest, ProtocolRunsAndReportsAllBuckets) {
  const auto result = run_memorization_experiment_serial("GPT-XS", fast_config());
  EXPECT_EQ(result.model_name, "GPT-XS");
  EXPECT_GT(result.parameter_count, 0u);
  ASSERT_EQ(result.exact_match_per_bucket.size(), 4u);
  ASSERT_EQ(result.probe_accuracy_per_bucket.size(), 4u);
  EXPECT_EQ(result.epochs_per_bucket, (std::vector<int>{0, 1, 4, 6}));
  for (double em : result.exact_match_per_bucket) {
    EXPECT_GE(em, 0.0);
    EXPECT_LE(em, 1.0);
  }
  // Steps = warmup + ceil(44 injection instances / batch 1).
  EXPECT_EQ(result.total_steps, 10 + 4 * (1 + 4 + 6));
}

TEST(MemorizationTest, DeterministicPerTrial) {
  const auto a = run_memorization_experiment_serial("GPT-XS", fast_config());
  const auto b = run_memorization_experiment_serial("GPT-XS", fast_config());
  EXPECT_EQ(a.exact_match_per_bucket, b.exact_match_per_bucket);
  EXPECT_EQ(a.final_train_loss, b.final_train_loss);
}

TEST(MemorizationTest, TrialsChangeTheCorpus) {
  auto config = fast_config();
  config.trial = 1;
  config.finalize();
  const auto a = run_memorization_experiment_serial("GPT-XS", config);
  const auto b = run_memorization_experiment_serial("GPT-XS", fast_config());
  EXPECT_NE(a.final_train_loss, b.final_train_loss);
}

TEST(MemorizationTest, GoldfishVariantRuns) {
  auto config = fast_config();
  config.use_goldfish = true;
  const auto result = run_memorization_experiment_serial("GPT-XS", config);
  ASSERT_EQ(result.exact_match_per_bucket.size(), 4u);
}

TEST(MemorizationTest, ZooIsOrderedByCapacity) {
  const auto zoo = memorization_model_zoo();
  ASSERT_EQ(zoo.size(), 5u);
  for (std::size_t i = 1; i < zoo.size(); ++i) {
    EXPECT_GT(zoo[i].model.hidden, zoo[i - 1].model.hidden);
  }
}

TEST(MemorizationTest, RunsOnZShardedGrid) {
  // The paper runs this study with Z-tensor parallelism; 2 Z-ranks split the
  // warmup batches and each trains the shared model.
  comm::run_ranks(2, [](comm::Communicator& world) {
    core::Grid4D grid(world, sim::GridShape{1, 1, 2, 1});
    auto config = fast_config();
    config.warmup_batch_size = 2;  // per rank
    const auto result =
        run_memorization_experiment(grid, "GPT-XS", config);
    ASSERT_EQ(result.exact_match_per_bucket.size(), 4u);
  });
}

}  // namespace
}  // namespace axonn::train
